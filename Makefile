# Tier-1 gate and the concurrency-heavy race pass. `make tier1` is
# what CI runs; `make race` exercises the Go-plane optimistic queues
# and the network packet ring under the race detector.

GO ?= go

.PHONY: tier1 race bench tables

tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/queue/... ./internal/net/...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

tables:
	$(GO) run ./cmd/synbench
