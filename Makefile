# Tier-1 gate and the concurrency-heavy race pass. `make tier1` is
# what CI runs; `make race` exercises the Go-plane optimistic queues,
# the network packet ring, and the measurement plane under the race
# detector. `make profile` runs one Table 1 program under the profiler
# and emits a Chrome trace (load trace.json in about:tracing or
# ui.perfetto.dev).

GO ?= go

.PHONY: tier1 race bench tables profile

tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/queue/... ./internal/net/... ./internal/prof/...

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

tables:
	$(GO) run ./cmd/synbench

profile:
	$(GO) run ./cmd/synbench -profile-run "open-close tty" -top 15 -trace-json trace.json
