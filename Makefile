# Tier-1 gate and the concurrency-heavy race pass. `make tier1` is
# what CI runs; `make race` exercises the Go-plane optimistic queues,
# the network packet ring, and the measurement plane under the race
# detector. `make soak` runs the seeded fault-injection soak (lossy
# wire + corruption + spurious IRQs + one bus error) under the race
# detector; it is bounded (seconds) and deterministic, so a failure
# replays. `make profile` runs one Table 1 program under the profiler
# and emits a Chrome trace (load trace.json in about:tracing or
# ui.perfetto.dev). `make cluster-soak` runs the bounded 2-VM fleet
# soak (churn under live traffic) and the re-echo regression test
# under the race detector. `make chaos-soak` runs the bounded fleet
# chaos soak: 2 VMs under seeded link loss/corruption/dup/delay plus a
# VM wire injector, through a partition/heal cycle, under the race
# detector — it asserts the frame conservation identity, zero
# abandoned connections, and a recovery observation for every severed
# one. `make bench-json` regenerates every table as machine-readable
# BENCH_*.json artifacts in bench/out (three runs per table, so each
# row carries its min/median/max spread); `make benchdiff` gates them
# against the committed bench/baseline set: a deterministic row that
# moved past the threshold fails, while the wall-clock cluster and
# recovery tables are warn-listed and their medians get a noise band
# over the recorded spread. Refresh the baseline with `make
# bench-baseline` when a change legitimately moves the numbers.

GO ?= go

.PHONY: tier1 race soak cluster-soak chaos-soak bench tables profile bench-json benchdiff bench-baseline

tier1:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/queue/... ./internal/net/... ./internal/prof/... ./internal/metrics/...

soak:
	$(GO) test -race -count 1 -timeout 120s \
		-run 'TestFaultSoak|TestSendGivesUp|TestSendRetries|TestCorruptFrame|TestWatchdog' \
		./internal/kio/
	$(GO) test -race -count 1 -timeout 120s -run 'TestConcurrentFullEmptyRaces' ./internal/queue/

cluster-soak:
	$(GO) test -race -count 1 -timeout 180s \
		-run 'TestClusterSoak|TestNoReecho|TestSnapshotDuringRun' ./internal/cluster/

# FLIGHT_DIR makes a failing soak write the fleet's flight-recorder
# dumps there (CI uploads the directory as an artifact).
FLIGHT_DIR ?= bench/flight

chaos-soak:
	FLIGHT_DIR=$(FLIGHT_DIR) $(GO) test -race -count 1 -timeout 180s \
		-run 'TestChaosSoak|TestFabricDropAccountingExact' ./internal/cluster/

bench:
	$(GO) test -bench . -benchtime 1x -run ^$$ .

tables:
	$(GO) run ./cmd/synbench

profile:
	$(GO) run ./cmd/synbench -profile-run "open-close tty" -top 15 -trace-json trace.json

bench-json:
	$(GO) run ./cmd/synbench -json bench/out -runs 3

benchdiff:
	$(GO) run ./cmd/benchdiff -noise 2 -warn-tables cluster,recovery,rtt,mips bench/baseline bench/out

bench-baseline:
	$(GO) run ./cmd/synbench -json bench/baseline -runs 3
