// synsh is a small interactive demonstration: it boots the Synthesis
// kernel, types a scripted command line into the simulated tty
// (including erase and kill control characters so the cooked filter
// has work to do), and shows a shell thread reading the cooked line,
// resolving it against the memory-resident file system, and writing
// the file back out through the tty.
//
// Usage:
//
//	synsh                       # scripted demo
//	synsh -type "cat /etc/motd" # choose the typed command
package main

import (
	"flag"
	"fmt"

	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
	"synthesis/internal/unixemu"
)

func main() {
	typed := flag.String("type", "cat /ets\b\btc/motd", "command typed at the tty (supports \\b erase)")
	flag.Parse()

	k := kernel.Boot(kernel.Config{Machine: m68k.Sun3Config(), ChargeSynthesis: true})
	kio.Install(k)
	unixemu.Install(k)
	if _, err := k.FS.CreateSized("/etc/motd", []byte("Synthesis: kernel code synthesis + optimistic synchronization\n"), 256); err != nil {
		panic(err)
	}

	const (
		ttyName  = 0xA000
		lineBuf  = 0xB000
		fileBuf  = 0xB200
		nameCell = 0xB100 // the parsed path, NUL terminated
	)
	for i, c := range []byte("/dev/tty\x00") {
		k.M.Poke(ttyName+uint32(i), 1, uint32(c))
	}

	// Type the command, ending with newline. Characters arrive at a
	// realistic pace so the interrupt handler and cooked filter do
	// their jobs.
	gap := uint64(2000)
	k.TTY.InputString(*typed+"\n", 5000, gap)

	// The "shell": read a cooked line, take everything after the
	// first space as a path, open it, stream it to the tty.
	shell := k.C.Synthesize(nil, "shell", nil, func(e *synth.Emitter) {
		// fd 0 = /dev/tty (cooked).
		e.MoveL(m68k.Imm(kernel.SysOpen), m68k.D(0))
		e.MoveL(m68k.Imm(ttyName), m68k.D(1))
		e.Trap(kernel.TrapSys)
		// Read one line.
		e.MoveL(m68k.Imm(lineBuf), m68k.D(1))
		e.MoveL(m68k.Imm(120), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.D(5)) // line length
		// Parse: find the space, copy the rest (minus newline) to
		// nameCell.
		e.Lea(m68k.Abs(lineBuf), 0)
		e.Label("findsp")
		e.Clr(4, m68k.D(0))
		e.MoveB(m68k.PostInc(0), m68k.D(0))
		e.Beq("nopath")
		e.CmpL(m68k.Imm(' '), m68k.D(0))
		e.Bne("findsp")
		e.Lea(m68k.Abs(nameCell), 1)
		e.Label("cppath")
		e.Clr(4, m68k.D(0))
		e.MoveB(m68k.PostInc(0), m68k.D(0))
		e.CmpL(m68k.Imm('\n'), m68k.D(0))
		e.Beq("cpdone")
		e.TstL(m68k.D(0))
		e.Beq("cpdone")
		e.MoveB(m68k.D(0), m68k.PostInc(1))
		e.Bra("cppath")
		e.Label("cpdone")
		e.Clr(1, m68k.Ind(1))
		// fd 1 = the file.
		e.MoveL(m68k.Imm(kernel.SysOpen), m68k.D(0))
		e.MoveL(m68k.Imm(nameCell), m68k.D(1))
		e.Trap(kernel.TrapSys)
		e.TstL(m68k.D(0))
		e.Bmi("nopath")
		// Stream it out.
		e.MoveL(m68k.Imm(fileBuf), m68k.D(1))
		e.MoveL(m68k.Imm(200), m68k.D(2))
		e.Trap(kernel.TrapRead + 1)
		e.MoveL(m68k.D(0), m68k.D(2))
		e.MoveL(m68k.Imm(fileBuf), m68k.D(1))
		e.Trap(kernel.TrapWrite + 0)
		e.Label("nopath")
		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Trap(kernel.TrapSys)
	})
	th := k.SpawnKernel("shell", shell)
	k.Start(th)
	if err := k.Run(2_000_000_000); err != nil {
		fmt.Println("run:", err)
	}
	fmt.Printf("typed (with control characters): %q\n", *typed+"\n")
	fmt.Printf("tty transcript:\n%s\n", string(k.TTY.Output()))
	fmt.Printf("(%d instructions, %.0f usec simulated)\n", k.M.Instrs, k.M.Now())
}
