// synbench regenerates the evaluation of "Threads and Input/Output in
// the Synthesis Kernel" (Massalin & Pu, SOSP 1989): Tables 1-5, the
// Section 6.4 size accounting, and the design-choice ablations, all on
// the simulated Quamachine at the SUN 3/160 emulation point. Table 6
// extends the evaluation to the network subsystem: loopback sockets,
// synthesized vs generic layered paths.
//
// Usage:
//
//	synbench                 # everything
//	synbench -table 1        # one table (1..6, pathlen, size, ablations)
//	synbench -iters 500      # heavier Table 1 loops
package main

import (
	"flag"
	"fmt"
	"os"

	"synthesis/internal/bench"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1,2,3,4,5,6,pathlen,size,ablations,all")
	iters := flag.Int("iters", 200, "loop count for the Table 1 programs")
	flag.Parse()

	type job struct {
		name string
		run  func() (bench.Table, error)
	}
	jobs := []job{
		{"1", func() (bench.Table, error) { return bench.Table1(bench.Table1Config{Iters: int32(*iters)}) }},
		{"2", bench.Table2},
		{"3", bench.Table3},
		{"4", bench.Table4},
		{"5", bench.Table5},
		{"6", bench.Table6},
		{"pathlen", bench.PathLengths},
		{"size", bench.SizeTable},
		{"ablations", bench.Ablations},
	}

	ran := false
	for _, j := range jobs {
		if *table != "all" && *table != j.name {
			continue
		}
		ran = true
		t, err := j.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "synbench: table %s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "synbench: unknown table %q\n", *table)
		os.Exit(2)
	}
}
