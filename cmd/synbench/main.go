// synbench regenerates the evaluation of "Threads and Input/Output in
// the Synthesis Kernel" (Massalin & Pu, SOSP 1989): Tables 1-5, the
// Section 6.4 size accounting, and the design-choice ablations, all on
// the simulated Quamachine at the SUN 3/160 emulation point. Table 6
// extends the evaluation to the network subsystem: loopback sockets,
// synthesized vs generic layered paths.
//
// Tables come from the bench registry, so a newly registered table is
// runnable here without touching this command.
//
// Usage:
//
//	synbench                          # everything
//	synbench -table 1                 # one table (see -table help for names)
//	synbench -iters 500               # heavier Table 1 loops
//	synbench -table 1 -profile        # Table 1 with attribution coverage row
//	synbench -json bench/out          # also write BENCH_*.json artifacts
//	synbench -profile-run "open-close tty" -top 15 -trace-json trace.json
//	synbench -table 7 -faults drop=0.2,spurious=7:50000 -fault-seed 42
//
// The -json artifacts are the machine-readable side of the tables:
// one BENCH_<table>.json per table run, comparable across runs with
// cmd/benchdiff (see `make bench-json` / `make benchdiff`).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"synthesis/internal/bench"
	"synthesis/internal/fault"
)

func main() {
	table := flag.String("table", "all",
		"which table to regenerate: all or one of "+strings.Join(bench.Names(), ",")+
			" (8 is an alias for cluster, 9 for recovery)")
	iters := flag.Int("iters", 200, "loop count for the Table 1 programs (for the cluster table: measurement window in ms)")
	runs := flag.Int("runs", 1, "generate each table this many times; rows report the median with min/max spread")
	profile := flag.Bool("profile", false, "attach the profiler to Table 1 runs (adds a coverage row)")
	profileRun := flag.String("profile-run", "",
		"run one Table 1 program profiled and report attribution: one of "+
			strings.Join(bench.Table1ProgramNames(), ", "))
	top := flag.Int("top", 10, "regions to show in the -profile-run report")
	traceJSON := flag.String("trace-json", "", "write the -profile-run Chrome trace (about:tracing JSON) here")
	jsonDir := flag.String("json", "", "also write each table as a BENCH_*.json artifact into this directory")
	faults := flag.String("faults", "", "inject faults into every machine the tables boot; "+
		"fleet clauses (link=/part=/vmfault=) apply to the cluster tables' fabric (see grammar below)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the -faults schedule; a seed replays exactly")
	defaultUsage := flag.Usage
	flag.Usage = func() {
		defaultUsage()
		fmt.Fprintf(flag.CommandLine.Output(), "\n%s\n\n%s\n", fault.SpecHelp, fault.FleetSpecHelp)
	}
	flag.Parse()

	if *faults != "" {
		if _, err := fault.ParseFleet(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "synbench: %v\n%s\n%s\n", err, fault.SpecHelp, fault.FleetSpecHelp)
			os.Exit(2)
		}
	}

	if *profileRun != "" {
		p, err := bench.RunProfiled(*profileRun, int32(*iters))
		if err != nil {
			fmt.Fprintf(os.Stderr, "synbench: profile-run: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("profile: %s (%d iterations)\n", *profileRun, *iters)
		fmt.Print(p.Report(*top))
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "synbench: %v\n", err)
				os.Exit(1)
			}
			if err := p.WriteChromeTrace(f); err != nil {
				fmt.Fprintf(os.Stderr, "synbench: trace export: %v\n", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("trace written to %s (load in about:tracing or ui.perfetto.dev)\n", *traceJSON)
		}
		return
	}

	cfg := bench.RunConfig{Iters: int32(*iters), Profile: *profile, FaultSpec: *faults, FaultSeed: *faultSeed}
	names := bench.Names()
	if *table != "all" {
		// Aliases ("8" -> "cluster") resolve to their canonical name,
		// so the artifact filename is the canonical one either way.
		want := bench.Resolve(*table)
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "synbench: unknown table %q\n", *table)
			os.Exit(2)
		}
		names = []string{want}
	}
	for _, name := range names {
		t, err := bench.RunN(name, cfg, *runs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "synbench: table %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		if *jsonDir != "" {
			path, err := bench.WriteArtifact(*jsonDir, name, t)
			if err != nil {
				fmt.Fprintf(os.Stderr, "synbench: table %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("artifact written to %s\n\n", path)
		}
	}
}
