// Cluster mode: `quamon -cluster` boots an N-Quamachine fleet on the
// switch fabric (internal/cluster), drives it with the host load
// generator, and streams wall-clock metric windows in the same format
// as -watch. With -listen the live fleet is scrapeable over HTTP
// while it runs:
//
//	GET /metrics       Prometheus text exposition
//	GET /metrics.json  the same snapshot as JSON
//	GET /healthz       200 while the fleet is healthy, 503 with the error after a VM dies
//	GET /trace.json    the merged fleet Chrome trace (load in ui.perfetto.dev)
//
// Cluster windows are wall time, not simulated time: the fleet runs
// on real goroutines and the load generator stamps RTTs with the host
// clock. With -windows 0 the fleet runs until interrupted (^C), which
// is the mode to pair with -listen and an external scraper.
//
// -trace-every N arms the fleet trace plane (1-in-N request
// sampling); -trace-json then writes the merged Chrome trace at exit,
// and /trace.json serves it live. -flight arms the per-VM flight
// recorder: if a guest dies, its dump goes to stderr.
package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"time"

	"synthesis/internal/cluster"
	"synthesis/internal/fault"
)

// clusterOpts carries the -cluster flag set.
type clusterOpts struct {
	vms, conns, churn int
	seed              int64
	listen            string
	intervalUS        float64
	windows           int
	metricsJSON, prom string
	faults            fault.FleetPlan
	timeout           time.Duration
	maxResends        int
	traceEvery        int
	traceJSON         string
	flight            bool
}

// clusterMux serves the live cluster's observability surface.
// Snapshot() quiesces each VM briefly, so every scrape is a coherent
// fleet-wide view; WriteTrace holds the same locks per VM while
// mapping its timeline.
func clusterMux(c *cluster.Cluster) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := c.Snapshot().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := c.Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := c.Err(); err != nil {
			http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := c.WriteTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	return mux
}

func runCluster(o clusterOpts) int {
	// Long-running monitoring defaults to patient clients for the same
	// reason the cluster bench table does: under heavy load the
	// queueing RTT can exceed an impatient resend timeout, and the
	// resulting resend storm is congestion collapse, not insight.
	// -timeout and -max-resends override for fault experiments.
	c := cluster.New(cluster.Config{
		VMs:        o.vms,
		Conns:      o.conns,
		Timeout:    o.timeout,
		MaxResends: o.maxResends,
		ChurnEvery: o.churn,
		Seed:       o.seed,
		Faults:     o.faults,
		TraceEvery: o.traceEvery,
		Flight:     o.flight,
	})
	c.Start()
	defer c.Stop()

	if o.listen != "" {
		srv := &http.Server{Addr: o.listen, Handler: clusterMux(c)}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "quamon: -listen: %v\n", err)
			}
		}()
		// Drain in-flight scrapes before exiting — a scraper mid-GET
		// at shutdown gets its response, not a reset connection.
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				srv.Close()
			}
		}()
		fmt.Printf("serving fleet metrics on http://%s/metrics (also /metrics.json /healthz /trace.json)\n", o.listen)
	}

	// finish exports the final snapshot and, when armed, the merged
	// fleet trace — every exit path (window count, ^C, VM death) runs
	// through it so a traced run never loses its trace.
	finish := func(rc int) int {
		if o.traceJSON != "" {
			f, err := os.Create(o.traceJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quamon: %v\n", err)
				return 1
			}
			err = c.WriteTrace(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "quamon: trace export: %v\n", err)
				return 1
			}
			sampled, completed, _, _ := c.TraceCounts()
			fmt.Printf("merged fleet trace written to %s (%d/%d sampled requests completed; load in ui.perfetto.dev)\n",
				o.traceJSON, completed, sampled)
		}
		if erc := exportSnapshot(c.Snapshot(), o.metricsJSON, o.prom); erc != 0 {
			return erc
		}
		return rc
	}

	interrupt := make(chan os.Signal, 1)
	signal.Notify(interrupt, os.Interrupt)
	defer signal.Stop(interrupt)

	interval := time.Duration(o.intervalUS) * time.Microsecond
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	if o.windows > 0 {
		fmt.Printf("cluster: %d VM(s), %d connection(s), %d windows of %v wall\n\n",
			o.vms, o.conns, o.windows, interval)
	} else {
		fmt.Printf("cluster: %d VM(s), %d connection(s), windows of %v wall until interrupted\n\n",
			o.vms, o.conns, interval)
	}

	tick := time.NewTicker(interval)
	defer tick.Stop()
	prev := c.Snapshot()
	for w := 1; o.windows <= 0 || w <= o.windows; w++ {
		select {
		case <-tick.C:
		case <-interrupt:
			fmt.Println("interrupted")
			return finish(0)
		}
		if err := c.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "quamon: cluster: %v\n", err)
			if o.flight {
				// The flight recorder captured the dying VM's tail at
				// the moment of failure; the post-mortem goes with the
				// error, not into a file the operator must know about.
				c.DumpFlight(os.Stderr)
			}
			finish(1)
			return 1
		}
		snap := c.Snapshot()
		printWindow(w, snap, snap.Delta(prev))
		prev = snap
	}
	return finish(0)
}
