// quamon is the kernel monitor (Section 6.1: "measurement facilities
// include an instruction counter, a memory reference counter, hardware
// program tracing"): it boots a Synthesis kernel, runs a small
// demonstration workload, and dumps the execution trace, the
// per-quaject disassembly, and the machine counters. With -profile it
// attaches the measurement plane and reports which named quaject
// regions the cycles went to, with optional Chrome trace export. With
// -table it regenerates a bench table through the shared registry.
//
// Usage:
//
//	quamon                      # run the demo workload with tracing
//	quamon -disasm              # also disassemble the synthesized quajects
//	quamon -trace 64            # show the last N trace entries
//	quamon -profile -top 12     # per-region cycle attribution
//	quamon -profile -trace-json trace.json
//	quamon -table 2             # regenerate one bench table
//	quamon -faults spurious=7:20000,buserr=disk@3 -fault-seed 7
//	quamon -watch               # live metrics: loopback traffic, per-window deltas
//	quamon -watch -interval-us 1000 -windows 20 -prom metrics.prom
//	quamon -watch -program procread      # named bench workload instead
//	quamon -watch -program workload.s    # or an assembly text file
//	quamon -cluster -vms 4 -conns 128    # boot a fleet on the switch fabric
//	quamon -cluster -windows 0 -listen :9090   # serve live fleet metrics over HTTP
//	quamon -cluster -trace-every 8 -trace-json fleet.json   # merged per-hop fleet trace
//	quamon -cluster -flight              # arm the flight recorder (dump on VM death)
//
// -cluster boots N Quamachines bridged by the switch fabric under
// multiplexed echo load (the Table 8 rig) and streams wall-clock
// metric windows; -listen serves the live fleet's metrics over HTTP
// as Prometheus text (/metrics), JSON (/metrics.json), a liveness
// probe (/healthz), and the merged Chrome trace (/trace.json).
// -trace-every samples echo round trips through the fleet trace
// plane, attributing each to its eight hops; -trace-json writes the
// merged fleet timeline at exit. -flight keeps a per-VM flight
// recorder armed and dumps the dying VM's tail to stderr on failure.
//
// -watch boots the full kernel (network, UNIX emulator, watchdog),
// drives a workload, and streams metric deltas every -interval-us of
// simulated time: counter rates, histogram percentiles, recovery
// events. The default workload is a loopback socket exchange;
// -program substitutes a named bench program (compute, pipe-1b,
// pipe-1k, pipe-4k, file-rw, open-null, open-tty, procread) or a file
// assembled with the asmkit text assembler. -metrics-json and -prom
// write the final snapshot (use "-" for stdout).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"synthesis/internal/bench"
	"synthesis/internal/fault"
	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/metrics"
	"synthesis/internal/synth"
	"synthesis/internal/unixemu"
)

func main() {
	disasm := flag.Bool("disasm", false, "disassemble the synthesized quajects")
	traceN := flag.Int("trace", 48, "trace entries to display")
	profile := flag.Bool("profile", false, "attach the measurement plane and report cycle attribution")
	top := flag.Int("top", 10, "regions to show in the -profile report")
	traceJSON := flag.String("trace-json", "",
		"write the Chrome trace (about:tracing JSON) here: the profile's with -profile, the merged fleet trace with -cluster")
	table := flag.String("table", "",
		"regenerate a bench table instead of the demo: one of "+strings.Join(bench.Names(), ","))
	iters := flag.Int("iters", 200, "loop count for -table 1 and finite -program workloads")
	faults := flag.String("faults", "", "inject faults into the demo or table machines; with -cluster, "+
		"fleet clauses (link=/part=/vmfault=) drive the fabric fault plane (see grammar below)")
	faultSeed := flag.Int64("fault-seed", 1, "seed for the -faults schedule; a seed replays exactly")
	watch := flag.Bool("watch", false, "live-monitor a workload, streaming metric deltas")
	program := flag.String("program", "",
		"workload for -watch: a named bench program ("+strings.Join(bench.WatchProgramNames(), ",")+
			") or an assembly text file; default is the loopback socket exchange")
	intervalUS := flag.Float64("interval-us", 2000,
		"microseconds per sampling window: simulated time for -watch, wall time for -cluster (default 500000 there)")
	windows := flag.Int("windows", 8, "number of -watch/-cluster windows before stopping (0 with -cluster: run until ^C)")
	clusterMode := flag.Bool("cluster", false, "boot an N-Quamachine fleet on the switch fabric under echo load")
	vms := flag.Int("vms", 4, "Quamachine count for -cluster")
	conns := flag.Int("conns", 128, "logical connection count for -cluster")
	churn := flag.Int("churn", 0, "with -cluster, close and reopen each guest socket every N echoes (0 = never)")
	seed := flag.Int64("seed", 1, "payload and fault seed for the -cluster load generator")
	timeout := flag.Duration("timeout", 500*time.Millisecond,
		"with -cluster, resend timeout per in-flight echo (backoff doubles it per resend)")
	maxResends := flag.Int("max-resends", 0,
		"with -cluster, resends before a connection gives up (0 = never give up)")
	listen := flag.String("listen", "",
		"with -cluster, serve the live fleet over HTTP on this address (/metrics, /metrics.json, /healthz, /trace.json)")
	traceEvery := flag.Int("trace-every", 0,
		"with -cluster, sample one echo round trip in N through the per-hop trace plane (0 = off)")
	flight := flag.Bool("flight", false,
		"with -cluster, arm the per-VM flight recorder; a dying VM dumps its tail to stderr")
	metricsJSON := flag.String("metrics-json", "", "write the final metrics snapshot as JSON here (\"-\" for stdout)")
	promOut := flag.String("prom", "", "write the final metrics snapshot as Prometheus text here (\"-\" for stdout)")
	defaultUsage := flag.Usage
	flag.Usage = func() {
		defaultUsage()
		fmt.Fprintf(flag.CommandLine.Output(), "\n%s\n\n%s\n", fault.SpecHelp, fault.FleetSpecHelp)
	}
	flag.Parse()

	var fleet fault.FleetPlan
	if *faults != "" {
		var err error
		if fleet, err = fault.ParseFleet(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "quamon: %v\n%s\n%s\n", err, fault.SpecHelp, fault.FleetSpecHelp)
			os.Exit(2)
		}
		if fleet.FleetOnly() && !*clusterMode && *table == "" {
			fmt.Fprintln(os.Stderr, "quamon: link=/part=/vmfault= clauses need -cluster (or a cluster -table)")
			os.Exit(2)
		}
	}

	if *program != "" && !*watch {
		fmt.Fprintln(os.Stderr, "quamon: -program requires -watch")
		os.Exit(2)
	}
	if *listen != "" && !*clusterMode {
		fmt.Fprintln(os.Stderr, "quamon: -listen requires -cluster")
		os.Exit(2)
	}
	if (*traceEvery != 0 || *flight) && !*clusterMode {
		fmt.Fprintln(os.Stderr, "quamon: -trace-every and -flight require -cluster")
		os.Exit(2)
	}
	if *clusterMode {
		// The -watch default window (2ms simulated) is far too fine for
		// wall-clock fleet sampling; only an explicit -interval-us
		// overrides the 500ms cluster default.
		iv := 500_000.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "interval-us" {
				iv = *intervalUS
			}
		})
		os.Exit(runCluster(clusterOpts{
			vms: *vms, conns: *conns, churn: *churn, seed: *seed,
			listen: *listen, intervalUS: iv, windows: *windows,
			metricsJSON: *metricsJSON, prom: *promOut,
			faults: fleet, timeout: *timeout, maxResends: *maxResends,
			traceEvery: *traceEvery, traceJSON: *traceJSON, flight: *flight,
		}))
	}
	if *watch {
		os.Exit(runWatch(*intervalUS, *windows, *program, int32(*iters),
			*faults, *faultSeed, *metricsJSON, *promOut))
	}

	if *table != "" {
		t, err := bench.Run(*table, bench.RunConfig{
			Iters: int32(*iters), Profile: *profile,
			FaultSpec: *faults, FaultSeed: *faultSeed,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "quamon: table %s: %v\n", *table, err)
			os.Exit(1)
		}
		fmt.Println(t.String())
		return
	}

	cfg := m68k.Sun3Config()
	cfg.TraceDepth = 4096
	reg := metrics.New()
	k := kernel.Boot(kernel.Config{
		Machine:         cfg,
		ChargeSynthesis: true,
		Profile:         *profile || *traceJSON != "",
		Metrics:         reg,
	})
	io := kio.Install(k)
	unixemu.Install(k)
	_ = io
	var inj *fault.Injector
	if *faults != "" {
		inj, _ = fault.FromSpec(*faults, *faultSeed) // validated above
		inj.Attach(k.M)
	}

	if _, err := k.FS.CreateSized("/etc/motd", []byte("welcome to synthesis\n"), 256); err != nil {
		panic(err)
	}
	nameAddr := uint32(0xA000)
	for i, c := range []byte("/etc/motd\x00") {
		k.M.Poke(nameAddr+uint32(i), 1, uint32(c))
	}

	// Demo workload: open the file natively, read it, write it to the
	// tty, and exit.
	prog := k.C.Synthesize(nil, "demo", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(kernel.SysOpen), m68k.D(0))
		e.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
		e.Trap(kernel.TrapSys)
		e.MoveL(m68k.Imm(0xB000), m68k.D(1))
		e.MoveL(m68k.Imm(64), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.D(5)) // length read
		// Write it to the tty (open -> fd 1).
		e.MoveL(m68k.Imm(kernel.SysOpen), m68k.D(0))
		e.MoveL(m68k.Imm(0xA010), m68k.D(1))
		e.Trap(kernel.TrapSys)
		e.MoveL(m68k.Imm(0xB000), m68k.D(1))
		e.MoveL(m68k.D(5), m68k.D(2))
		e.Trap(kernel.TrapWrite + 1)
		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Trap(kernel.TrapSys)
	})
	for i, c := range []byte("/dev/tty\x00") {
		k.M.Poke(0xA010+uint32(i), 1, uint32(c))
	}

	th := k.SpawnKernel("demo", prog)
	k.Start(th)
	if err := k.Run(50_000_000); err != nil {
		fmt.Println("run:", err)
	}

	fmt.Printf("tty output: %q\n\n", string(k.TTY.Output()))
	fmt.Printf("machine counters: %d instructions, %d memory references, %d cycles (%.1f usec simulated)\n\n",
		k.M.Instrs, k.M.MemRefs, k.M.Cycles, k.M.Now())
	if inj != nil {
		fmt.Printf("fault injector: %+v\n", inj.Stats)
		if len(k.Faults) > 0 {
			fmt.Printf("threads killed by injected faults: %+v\n", k.Faults)
		}
		if n := k.SpuriousIRQs(); n > 0 {
			fmt.Printf("spurious interrupts absorbed: %d\n", n)
		}
		fmt.Println()
	}

	if k.Prof != nil {
		fmt.Printf("top regions by cycles:\n%s\n", k.Prof.Report(*top))
		if *traceJSON != "" {
			f, err := os.Create(*traceJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quamon: %v\n", err)
				os.Exit(1)
			}
			if err := k.Prof.WriteChromeTrace(f); err != nil {
				fmt.Fprintf(os.Stderr, "quamon: trace export: %v\n", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("trace written to %s (load in about:tracing or ui.perfetto.dev)\n\n", *traceJSON)
		}
	}

	if rc := exportSnapshot(reg.Snapshot(), *metricsJSON, *promOut); rc != 0 {
		os.Exit(rc)
	}

	fmt.Printf("execution trace (last %d entries):\n", *traceN)
	entries := k.M.Trace.Entries()
	if len(entries) > *traceN {
		entries = entries[len(entries)-*traceN:]
	}
	for _, e := range entries {
		if e.Exc >= 0 {
			fmt.Printf("%10d  ** exception vector %d (from pc %d)\n", e.Cycles, e.Exc, e.PC)
			continue
		}
		fmt.Printf("%10d  %6d: %s\n", e.Cycles, e.PC, e.Instr)
	}

	if *disasm {
		fmt.Println("\nsynthesized quajects:")
		type named struct {
			name string
			t    *kernel.Thread
		}
		var list []named
		for _, t := range k.Threads {
			list = append(list, named{t.Name, t})
		}
		sort.Slice(list, func(i, j int) bool { return list[i].name < list[j].name })
		for _, n := range list {
			fmt.Printf("\n--- thread %s ---\n", n.name)
			for _, entry := range n.t.Q.EntryNames() {
				addr := n.t.Q.Entries[entry]
				fmt.Printf("%s @ %d:\n%s", entry, addr, m68k.Disassemble(k.M.Code, addr, 18))
			}
		}
	}
}
