package main

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"synthesis/internal/asmkit"
	"synthesis/internal/bench"
	"synthesis/internal/fault"
	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/metrics"
	"synthesis/internal/unixemu"
)

// Live monitoring mode: boot a full kernel (network, UNIX emulator,
// watchdog), drive a workload, and sample the metrics registry on a
// VM-time interval — the chunked Run makes the machine pause every
// intervalUS simulated microseconds so a snapshot delta can be
// streamed: counter rates, histogram percentiles, recovery events.
// Everything is keyed to Machine.Clock() cycles; µs = cycles /
// ClockMHz (the snapshot carries both).
//
// The workload is the loopback socket exchange by default; -program
// substitutes a named bench program or an assembly text file (see
// resolveProgram).

// trafficPorts is the loopback pair the watch workload drives.
var trafficPorts = [2]uint32{5, 9}

const (
	watchBufA    = 0xB000
	watchBufB    = 0xD000
	watchPayload = 128
)

// buildTraffic emits the workload: open the loopback pair, then
// exchange datagrams forever. The monitor stops it by simply not
// running the machine any further.
func buildTraffic(b *asmkit.Builder) {
	call := func(no int32) {
		b.MoveL(m68k.Imm(no), m68k.D(0))
		b.Trap(0)
	}
	open := func(local, remote int32) {
		b.MoveL(m68k.Imm(local), m68k.D(1))
		b.MoveL(m68k.Imm(remote), m68k.D(2))
		call(unixemu.SysSocket)
	}
	open(int32(trafficPorts[0]), int32(trafficPorts[1]))
	b.MoveL(m68k.D(0), m68k.D(6))
	open(int32(trafficPorts[1]), int32(trafficPorts[0]))
	b.MoveL(m68k.D(0), m68k.D(7))
	b.Label("loop")
	b.MoveL(m68k.D(6), m68k.D(1))
	b.MoveL(m68k.Imm(watchBufA), m68k.D(2))
	b.MoveL(m68k.Imm(watchPayload), m68k.D(3))
	call(unixemu.SysWrite)
	b.MoveL(m68k.D(7), m68k.D(1))
	b.MoveL(m68k.Imm(watchBufB), m68k.D(2))
	b.MoveL(m68k.Imm(watchPayload), m68k.D(3))
	call(unixemu.SysRead)
	b.Bra("loop")
}

// resolveProgram turns the -program flag value into a linked-ready
// builder and a display name: "" is the loopback traffic workload, a
// known bench name resolves through the bench registry, anything else
// is read as a file and fed to the asmkit text assembler.
func resolveProgram(program string, iters int32) (*asmkit.Builder, string, error) {
	if program == "" {
		b := asmkit.New()
		buildTraffic(b)
		return b, "traffic", nil
	}
	if build, ok := bench.BuildWatchProgram(program, iters); ok {
		b := asmkit.New()
		build(b)
		return b, program, nil
	}
	src, err := os.ReadFile(program)
	if err != nil {
		return nil, "", fmt.Errorf("%q is neither a named workload (%s) nor a readable file: %w",
			program, strings.Join(bench.WatchProgramNames(), ","), err)
	}
	b, err := asmkit.Assemble(string(src))
	if err != nil {
		return nil, "", fmt.Errorf("%s: %w", program, err)
	}
	return b, program, nil
}

// runWatch is the -watch entry point; returns the process exit code.
func runWatch(intervalUS float64, windows int, program string, iters int32, faults string, faultSeed int64, metricsJSON, promOut string) int {
	reg := metrics.New()
	cfg := m68k.Sun3Config()
	k := kernel.Boot(kernel.Config{
		Machine:         cfg,
		ChargeSynthesis: true,
		Profile:         true, // Boot publishes prof.irq.* through reg
		Metrics:         reg,
	})
	io := kio.Install(k)
	unixemu.Install(k)
	io.InstallWatchdog(kio.DefaultWatchdogConfig())
	if faults != "" {
		inj, _ := fault.FromSpec(faults, faultSeed) // validated by the caller
		inj.Attach(k.M)
	}
	// Name strings, scratch buffer, and the benchmark file the named
	// (and hand-assembled) workloads expect.
	if err := bench.PrepareWatchKernel(k); err != nil {
		fmt.Fprintf(os.Stderr, "quamon: watch: %v\n", err)
		return 1
	}
	for i := uint32(0); i < watchPayload; i += 4 {
		k.M.Poke(watchBufA+i, 4, 0x5a5a0000+i)
	}

	b, progName, err := resolveProgram(program, iters)
	if err != nil {
		fmt.Fprintf(os.Stderr, "quamon: -program %v\n", err)
		return 2
	}
	entry := b.Link(k.M)
	if k.Prof != nil {
		k.Prof.RegisterRegion("watch."+progName, entry, b.Len())
	}
	th := k.SpawnKernel(progName, entry)
	k.Start(th)

	intervalCycles := uint64(intervalUS * cfg.ClockMHz)
	if intervalCycles == 0 {
		intervalCycles = 1
	}
	fmt.Printf("watching %q for %d windows of %.0f µs simulated (%d cycles at %.0f MHz)\n\n",
		progName, windows, intervalUS, intervalCycles, cfg.ClockMHz)

	prev := reg.Snapshot()
	for w := 1; w <= windows; w++ {
		err := k.Run(intervalCycles)
		snap := reg.Snapshot()
		printWindow(w, snap, snap.Delta(prev))
		prev = snap
		if err == nil {
			fmt.Println("workload exited")
			break
		}
		if !errors.Is(err, m68k.ErrCycleLimit) {
			fmt.Fprintf(os.Stderr, "quamon: watch: %v\n", err)
			return 1
		}
	}
	return exportSnapshot(reg.Snapshot(), metricsJSON, promOut)
}

// printWindow streams one delta: the busiest counters as rates, any
// nonzero gauges, and percentile lines for histograms that saw
// observations this window.
func printWindow(w int, snap metrics.Snapshot, d metrics.Delta) {
	fmt.Printf("window %d: t=%.0f µs (+%.0f µs, %d cycles)\n",
		w, snap.Micros(), d.Micros(), d.Cycles)
	type kv struct {
		name string
		n    uint64
	}
	var hot []kv
	for n, v := range d.Counters {
		if v > 0 {
			hot = append(hot, kv{n, v})
		}
	}
	sort.Slice(hot, func(i, j int) bool {
		if hot[i].n != hot[j].n {
			return hot[i].n > hot[j].n
		}
		return hot[i].name < hot[j].name
	})
	const maxRows = 14
	shown := hot
	if len(shown) > maxRows {
		shown = shown[:maxRows]
	}
	for _, c := range shown {
		fmt.Printf("  %-36s +%-10d %12.0f /s\n", c.name, c.n, d.Rate(c.name))
	}
	if len(hot) > maxRows {
		fmt.Printf("  (%d more nonzero counters)\n", len(hot)-maxRows)
	}
	var gnames []string
	for n, v := range d.Gauges {
		if v != 0 {
			gnames = append(gnames, n)
		}
	}
	sort.Strings(gnames)
	for _, n := range gnames {
		fmt.Printf("  %-36s = %g\n", n, d.Gauges[n])
	}
	var hnames []string
	for n, h := range d.Hists {
		if h.Count > 0 {
			hnames = append(hnames, n)
		}
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := d.Hists[n]
		fmt.Printf("  %-36s n=%-8d p50=%-8.0f p99=%-8.0f max=%d\n",
			n, h.Count, h.Quantile(0.5), h.Quantile(0.99), h.Max)
	}
	if ev := d.Counters["kio.net.recovery_events"]; ev > 0 {
		fmt.Printf("  ** %d recovery event(s) this window\n", ev)
	}
	fmt.Println()
}

// exportSnapshot writes the final snapshot in the requested formats
// ("-" selects stdout).
func exportSnapshot(snap metrics.Snapshot, metricsJSON, promOut string) int {
	write := func(path, what string, emit func(f *os.File) error) int {
		f := os.Stdout
		if path != "-" {
			var err error
			f, err = os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "quamon: %v\n", err)
				return 1
			}
			defer f.Close()
		}
		if err := emit(f); err != nil {
			fmt.Fprintf(os.Stderr, "quamon: %s export: %v\n", what, err)
			return 1
		}
		if path != "-" {
			fmt.Printf("%s snapshot written to %s\n", what, path)
		}
		return 0
	}
	if metricsJSON != "" {
		if rc := write(metricsJSON, "metrics JSON", func(f *os.File) error {
			return snap.WriteJSON(f)
		}); rc != 0 {
			return rc
		}
	}
	if promOut != "" {
		if rc := write(promOut, "Prometheus", func(f *os.File) error {
			return snap.WritePrometheus(f)
		}); rc != 0 {
			return rc
		}
	}
	return 0
}
