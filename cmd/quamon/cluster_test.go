package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"synthesis/internal/cluster"
)

// The -listen acceptance path: a live fleet's metrics must be
// scrapeable over HTTP as Prometheus text and as JSON, with the
// per-VM prefixes intact, the liveness probe answering, and the
// merged trace endpoint serving valid Chrome-trace JSON.
func TestClusterMuxServesFleetMetrics(t *testing.T) {
	c := cluster.New(cluster.Config{VMs: 1, Conns: 8, Seed: 1, TraceEvery: 4})
	c.Start()
	defer c.Stop()

	srv := httptest.NewServer(clusterMux(c))
	defer srv.Close()

	// Let some echo traffic flow so the counters are nonzero.
	deadline := time.Now().Add(5 * time.Second)
	for c.Replies() == 0 && time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	prom, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{"cluster_fabric_routed", "cluster_loadgen_replies", "vm1_"} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q:\n%.400s", want, prom)
		}
	}

	body, ctype := get("/metrics.json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/metrics.json content type = %q", ctype)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}

	if health, _ := get("/healthz"); !strings.Contains(health, "ok") {
		t.Errorf("/healthz = %q, want ok", health)
	}

	trace, ctype := get("/trace.json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/trace.json content type = %q", ctype)
	}
	var tf map[string]any
	if err := json.Unmarshal([]byte(trace), &tf); err != nil {
		t.Fatalf("/trace.json is not valid JSON: %v", err)
	}
	if _, ok := tf["traceEvents"]; !ok {
		t.Error("/trace.json has no traceEvents array")
	}
	for _, want := range []string{`"fabric/loadgen"`, `"vm1"`} {
		if !strings.Contains(trace, want) {
			t.Errorf("/trace.json missing process row %s", want)
		}
	}
}

// The /healthz probe flips to 503 once a fleet member dies; the body
// carries the fatal error so the prober's log says what happened.
func TestClusterMuxHealthzUnhealthy(t *testing.T) {
	c := cluster.New(cluster.Config{VMs: 1, Conns: 4, Seed: 2, Flight: true})
	c.Start()
	defer c.Stop()

	srv := httptest.NewServer(clusterMux(c))
	defer srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for c.Replies() == 0 && time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	c.KillVM(1, "probe test")
	deadline = time.Now().Add(10 * time.Second)
	for c.Err() == nil && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if c.Err() == nil {
		t.Fatal("KillVM did not surface a fleet error")
	}

	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 503 {
		t.Fatalf("/healthz status = %d after VM death, want 503 (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "unhealthy") {
		t.Errorf("/healthz body = %q, want the error", body)
	}
}
