package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"synthesis/internal/cluster"
)

// The -listen acceptance path: a live fleet's metrics must be
// scrapeable over HTTP as Prometheus text and as JSON, with the
// per-VM prefixes intact.
func TestClusterMuxServesFleetMetrics(t *testing.T) {
	c := cluster.New(cluster.Config{VMs: 1, Conns: 8, Seed: 1})
	c.Start()
	defer c.Stop()

	srv := httptest.NewServer(clusterMux(c))
	defer srv.Close()

	// Let some echo traffic flow so the counters are nonzero.
	deadline := time.Now().Add(5 * time.Second)
	for c.Replies() == 0 && time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(time.Millisecond)
	}

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	prom, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{"cluster_fabric_routed", "cluster_loadgen_replies", "vm1_"} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q:\n%.400s", want, prom)
		}
	}

	body, ctype := get("/metrics.json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/metrics.json content type = %q", ctype)
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json is not valid JSON: %v", err)
	}
}
