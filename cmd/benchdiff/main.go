// benchdiff compares two directories of BENCH_*.json artifacts (as
// written by `synbench -json`) and flags rows that regressed past a
// percent threshold in the direction their unit declares worse:
// latency/instruction/size rows regress upward, throughput ("fr/s")
// and speedup ("x") rows regress downward.
//
// Usage:
//
//	benchdiff [-threshold 10] [-warn-only] <baseline-dir> <new-dir>
//
// Exit status: 0 when no row regressed (or -warn-only), 1 on
// regression, 2 on usage or artifact errors. CI runs it warn-only
// against the committed bench/baseline artifacts; drop -warn-only to
// turn the perf gate hard.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"synthesis/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit status lifted out, so the
// regression-gate behavior is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10,
		"percent a row may move in its worse direction before it counts as a regression")
	warnOnly := fs.Bool("warn-only", false, "report regressions but exit 0 anyway")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff [flags] <baseline-dir> <new-dir>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	base, err := bench.LoadArtifactDir(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: baseline: %v\n", err)
		return 2
	}
	fresh, err := bench.LoadArtifactDir(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: new run: %v\n", err)
		return 2
	}
	res := bench.DiffTables(base, fresh, *threshold)
	fmt.Fprint(stdout, res.Format())
	if res.Regressions > 0 {
		if *warnOnly {
			fmt.Fprintf(stderr, "benchdiff: %d regression(s) past %.1f%% (warn-only)\n",
				res.Regressions, *threshold)
			return 0
		}
		fmt.Fprintf(stderr, "benchdiff: %d regression(s) past %.1f%%\n", res.Regressions, *threshold)
		return 1
	}
	return 0
}
