// benchdiff compares two directories of BENCH_*.json artifacts (as
// written by `synbench -json`) and flags rows that regressed past a
// percent threshold in the direction their unit declares worse:
// latency/instruction/size rows regress upward, throughput ("fr/s")
// and speedup ("x") rows regress downward.
//
// Usage:
//
//	benchdiff [-threshold 10] [-noise 2] [-warn-tables cluster] [-warn-only] <baseline-dir> <new-dir>
//
// Rows whose baseline artifact carries a min/max spread (written by
// `synbench -runs N`) are gated on the median with a noise band: past
// the threshold, the fresh median must also land outside the observed
// spread by more than -noise percent before it counts. -warn-tables
// names tables (comma-separated) whose regressions are reported but
// never fail the run — the escape hatch for wall-clock tables like
// `cluster`.
//
// Exit status: 0 when no gating row regressed (or -warn-only), 1 on
// regression, 2 on usage or artifact errors. CI runs the gate hard
// against the committed bench/baseline artifacts with the cluster
// table warn-listed; -warn-only downgrades everything to warnings.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"synthesis/internal/bench"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its streams and exit status lifted out, so the
// regression-gate behavior is testable in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 10,
		"percent a row may move in its worse direction before it counts as a regression")
	noise := fs.Float64("noise", 2,
		"extra percent past the baseline's recorded min/max spread a multi-run row may move before it gates")
	warnTables := fs.String("warn-tables", "",
		"comma-separated tables whose regressions warn but never fail the run")
	warnOnly := fs.Bool("warn-only", false, "report regressions but exit 0 anyway")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff [flags] <baseline-dir> <new-dir>\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	base, err := bench.LoadArtifactDir(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: baseline: %v\n", err)
		return 2
	}
	fresh, err := bench.LoadArtifactDir(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: new run: %v\n", err)
		return 2
	}
	opt := bench.DiffOptions{ThresholdPct: *threshold, NoisePct: *noise}
	if *warnTables != "" {
		opt.WarnTables = make(map[string]bool)
		for _, t := range strings.Split(*warnTables, ",") {
			if t = strings.TrimSpace(t); t != "" {
				opt.WarnTables[bench.Resolve(t)] = true
			}
		}
	}
	res := bench.DiffTablesOpt(base, fresh, opt)
	fmt.Fprint(stdout, res.Format())
	if res.Warnings > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d warn-only regression(s) in {%s}\n", res.Warnings, *warnTables)
	}
	if res.Regressions > 0 {
		if *warnOnly {
			fmt.Fprintf(stderr, "benchdiff: %d regression(s) past %.1f%% (warn-only)\n",
				res.Regressions, *threshold)
			return 0
		}
		fmt.Fprintf(stderr, "benchdiff: %d regression(s) past %.1f%%\n", res.Regressions, *threshold)
		return 1
	}
	return 0
}
