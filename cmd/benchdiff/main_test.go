package main

import (
	"bytes"
	"strings"
	"testing"

	"synthesis/internal/bench"
)

// writeSet writes one artifact set into a fresh directory.
func writeSet(t *testing.T, tab bench.Table) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := bench.WriteArtifact(dir, "1", tab); err != nil {
		t.Fatal(err)
	}
	return dir
}

func baselineTable() bench.Table {
	return bench.Table{
		Title: "Table 1: system-call times",
		Rows: []bench.Row{
			{Name: "emulated read 1 byte", Paper: 12, Measured: 11.0, Unit: "usec"},
			{Name: "loopback throughput", Paper: 1000, Measured: 950, Unit: "fr/s"},
		},
	}
}

// The acceptance criterion: a synthetically inflated latency row must
// drive the exit status nonzero.
func TestBenchdiffFlagsInflatedLatency(t *testing.T) {
	baseDir := writeSet(t, baselineTable())

	inflated := baselineTable()
	inflated.Rows[0].Measured *= 1.5 // +50% latency
	newDir := writeSet(t, inflated)

	var out, errb bytes.Buffer
	if code := run([]string{"-threshold", "10", baseDir, newDir}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "emulated read 1 byte") {
		t.Fatalf("report does not name the regressed row:\n%s", out.String())
	}

	// Same inflated run under -warn-only still reports but exits 0.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-threshold", "10", "-warn-only", baseDir, newDir}, &out, &errb); code != 0 {
		t.Fatalf("warn-only exit = %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "regression") {
		t.Fatalf("warn-only did not report the regression:\n%s", errb.String())
	}
}

func TestBenchdiffCleanRunExitsZero(t *testing.T) {
	baseDir := writeSet(t, baselineTable())

	improved := baselineTable()
	improved.Rows[0].Measured *= 0.9 // latency down: better
	improved.Rows[1].Measured *= 1.2 // throughput up: better
	newDir := writeSet(t, improved)

	var out, errb bytes.Buffer
	if code := run([]string{baseDir, newDir}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestBenchdiffThroughputDropRegresses(t *testing.T) {
	baseDir := writeSet(t, baselineTable())

	dropped := baselineTable()
	dropped.Rows[1].Measured *= 0.5 // throughput halved
	newDir := writeSet(t, dropped)

	var out, errb bytes.Buffer
	if code := run([]string{baseDir, newDir}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, out.String())
	}
}

func TestBenchdiffUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one-dir"}, &out, &errb); code != 2 {
		t.Fatalf("bad argc exit = %d, want 2", code)
	}
	if code := run([]string{t.TempDir(), t.TempDir()}, &out, &errb); code != 2 {
		t.Fatalf("empty dirs exit = %d, want 2", code)
	}
}

// A multi-run baseline records its min/max spread; a fresh median past
// the threshold but inside that spread plus the noise band must not
// gate — that is the whole point of gating wall-clock rows on medians.
func TestBenchdiffNoiseBandAbsorbsSpread(t *testing.T) {
	noisy := bench.Table{
		Title: "Table 1: system-call times",
		Rows: []bench.Row{
			// Median 100, observed up to 118 across runs.
			{Name: "wall-clock latency", Measured: 100, Min: 92, Max: 118, Unit: "usec"},
		},
	}
	baseDir := writeSet(t, noisy)

	fresh := noisy
	fresh.Rows = []bench.Row{{Name: "wall-clock latency", Measured: 119, Unit: "usec"}}
	newDir := writeSet(t, fresh)

	// +19% vs the median is past the 10% threshold, but only ~0.8%
	// past the worst observed run — inside the 2% noise band.
	var out, errb bytes.Buffer
	if code := run([]string{"-threshold", "10", "-noise", "2", baseDir, newDir}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (inside noise band)\nstdout:\n%s", code, out.String())
	}

	// Shrink the band to zero and the same row gates.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-threshold", "10", "-noise", "0", baseDir, newDir}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (outside spread, no noise allowance)\nstdout:\n%s", code, out.String())
	}
}

// Rows without a recorded spread (single-run baselines) are gated by
// the threshold alone — the noise band never applies.
func TestBenchdiffNoiseIgnoredWithoutSpread(t *testing.T) {
	baseDir := writeSet(t, baselineTable())
	inflated := baselineTable()
	inflated.Rows[0].Measured *= 1.5
	newDir := writeSet(t, inflated)

	var out, errb bytes.Buffer
	if code := run([]string{"-threshold", "10", "-noise", "50", baseDir, newDir}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (no spread recorded, noise must not apply)\nstdout:\n%s", code, out.String())
	}
}

// -warn-tables downgrades a named table's regressions to warnings
// (reported, exit 0) while other tables still gate; aliases resolve.
func TestBenchdiffWarnTables(t *testing.T) {
	tab := bench.Table{
		Title: "Table 8. Cluster fabric",
		Rows:  []bench.Row{{Name: "aggregate", Measured: 1000, Unit: "fr/s"}},
	}
	dirFor := func(t *testing.T, name string, tab bench.Table) string {
		t.Helper()
		dir := t.TempDir()
		if _, err := bench.WriteArtifact(dir, name, tab); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	baseDir := dirFor(t, "cluster", tab)
	dropped := tab
	dropped.Rows = []bench.Row{{Name: "aggregate", Measured: 400, Unit: "fr/s"}}
	newDir := dirFor(t, "cluster", dropped)

	var out, errb bytes.Buffer
	if code := run([]string{"-warn-tables", "cluster", baseDir, newDir}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0 (cluster warn-listed)\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "warn-only regression") {
		t.Fatalf("warn-listed regression not reported:\n%s", errb.String())
	}

	// The alias "8" names the same table.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-warn-tables", "8", baseDir, newDir}, &out, &errb); code != 0 {
		t.Fatalf("alias warn-tables exit = %d, want 0\nstderr:\n%s", code, errb.String())
	}

	// Without the warn list the same drop gates.
	out.Reset()
	errb.Reset()
	if code := run([]string{baseDir, newDir}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1 (not warn-listed)", code)
	}
}
