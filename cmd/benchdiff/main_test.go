package main

import (
	"bytes"
	"strings"
	"testing"

	"synthesis/internal/bench"
)

// writeSet writes one artifact set into a fresh directory.
func writeSet(t *testing.T, tab bench.Table) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := bench.WriteArtifact(dir, "1", tab); err != nil {
		t.Fatal(err)
	}
	return dir
}

func baselineTable() bench.Table {
	return bench.Table{
		Title: "Table 1: system-call times",
		Rows: []bench.Row{
			{Name: "emulated read 1 byte", Paper: 12, Measured: 11.0, Unit: "usec"},
			{Name: "loopback throughput", Paper: 1000, Measured: 950, Unit: "fr/s"},
		},
	}
}

// The acceptance criterion: a synthetically inflated latency row must
// drive the exit status nonzero.
func TestBenchdiffFlagsInflatedLatency(t *testing.T) {
	baseDir := writeSet(t, baselineTable())

	inflated := baselineTable()
	inflated.Rows[0].Measured *= 1.5 // +50% latency
	newDir := writeSet(t, inflated)

	var out, errb bytes.Buffer
	if code := run([]string{"-threshold", "10", baseDir, newDir}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "emulated read 1 byte") {
		t.Fatalf("report does not name the regressed row:\n%s", out.String())
	}

	// Same inflated run under -warn-only still reports but exits 0.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-threshold", "10", "-warn-only", baseDir, newDir}, &out, &errb); code != 0 {
		t.Fatalf("warn-only exit = %d, want 0", code)
	}
	if !strings.Contains(errb.String(), "regression") {
		t.Fatalf("warn-only did not report the regression:\n%s", errb.String())
	}
}

func TestBenchdiffCleanRunExitsZero(t *testing.T) {
	baseDir := writeSet(t, baselineTable())

	improved := baselineTable()
	improved.Rows[0].Measured *= 0.9 // latency down: better
	improved.Rows[1].Measured *= 1.2 // throughput up: better
	newDir := writeSet(t, improved)

	var out, errb bytes.Buffer
	if code := run([]string{baseDir, newDir}, &out, &errb); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestBenchdiffThroughputDropRegresses(t *testing.T) {
	baseDir := writeSet(t, baselineTable())

	dropped := baselineTable()
	dropped.Rows[1].Measured *= 0.5 // throughput halved
	newDir := writeSet(t, dropped)

	var out, errb bytes.Buffer
	if code := run([]string{baseDir, newDir}, &out, &errb); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s", code, out.String())
	}
}

func TestBenchdiffUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"only-one-dir"}, &out, &errb); code != 2 {
		t.Fatalf("bad argc exit = %d, want 2", code)
	}
	if code := run([]string{t.TempDir(), t.TempDir()}, &out, &errb); code != 2 {
		t.Fatalf("empty dirs exit = %d, want 2", code)
	}
}
