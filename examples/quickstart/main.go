// Quickstart: boot a Synthesis kernel on the simulated Quamachine,
// create a file, and watch open synthesize the read/write routines
// that later calls jump straight into.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
	"synthesis/internal/unixemu"
)

func main() {
	// Boot at the paper's SUN 3/160 emulation point: 16 MHz, one
	// memory wait state, code-synthesis time charged to the machine
	// clock.
	k := kernel.Boot(kernel.Config{
		Machine:         m68k.Sun3Config(),
		ChargeSynthesis: true,
	})
	kio.Install(k)
	unixemu.Install(k)

	if _, err := k.FS.CreateSized("/notes/hello", []byte("hello from the synthesis kernel\n"), 256); err != nil {
		log.Fatal(err)
	}

	// Stage the file name and a buffer in machine memory.
	const nameAddr, buf = 0xA000, 0xB000
	for i, c := range []byte("/notes/hello\x00") {
		k.M.Poke(nameAddr+uint32(i), 1, uint32(c))
	}

	// A program using native Synthesis calls: open (which synthesizes
	// the read), read, close, exit — with microsecond marks around
	// each step.
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.Imm(kernel.SysOpen), m68k.D(0))
		e.MoveL(m68k.Imm(nameAddr), m68k.D(1))
		e.Trap(kernel.TrapSys)
		e.Kcall(kernel.SvcMark)

		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.Imm(buf), m68k.D(1))
		e.MoveL(m68k.Imm(64), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.D(0), m68k.D(5))

		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.Imm(kernel.SysClose), m68k.D(0))
		e.MoveL(m68k.Imm(0), m68k.D(1))
		e.Trap(kernel.TrapSys)
		e.Kcall(kernel.SvcMark)

		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Trap(kernel.TrapSys)
	})
	th := k.SpawnKernel("main", prog)
	k.Start(th)
	if err := k.Run(50_000_000); err != nil {
		log.Fatal(err)
	}

	d := k.MarkDeltasMicros()
	fmt.Println("Synthesis quickstart (simulated SUN 3/160):")
	fmt.Printf("  open  (name lookup + code synthesis): %6.2f usec\n", d[0])
	fmt.Printf("  read  (open-specialized routine):     %6.2f usec\n", d[1])
	fmt.Printf("  close:                                %6.2f usec\n", d[2])
	fmt.Printf("  file contents: %q\n", string(k.M.PeekBytes(buf, 32)))
	fmt.Printf("  machine: %d instructions, %d memory references, %.0f usec simulated\n",
		k.M.Instrs, k.M.MemRefs, k.M.Now())

	// Show what open synthesized for this thread.
	fmt.Println("\nsynthesized read routine (installed in the thread's trap vector):")
	addr := th.Q.Entries["file_read"]
	fmt.Print(m68k.Disassemble(k.M.Code, addr, 12))
}
