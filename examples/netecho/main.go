// Network echo: boot both kernels, open a loopback socket pair
// (ports 5 <-> 9), bounce a datagram through the full stack and
// report the per-packet cost — the synthesized Synthesis path (frames
// DMA through the memory-mapped NIC, the receive interrupt deposits
// into the destination socket's optimistic queue) against the generic
// layered baseline (descriptor validation, table-scan demultiplexing
// and a sleep-locked ring on every call).
//
//	go run ./examples/netecho
package main

import (
	"fmt"
	"os"

	"synthesis/internal/asmkit"
	"synthesis/internal/bench"
	"synthesis/internal/m68k"
	"synthesis/internal/unixemu"
)

const (
	wbuf    = 0xB000 // the outbound message
	rbuf    = 0xD000 // where the echo lands
	rounds  = 50
	message = "Hello, Quamachine!"
)

// buildEcho emits the echo program against the UNIX trap convention
// (identical binary for both kernels): open the pair, then rounds
// times send the message 5->9, receive it on 9, send it back 9->5 and
// receive the echo on 5, with marks around the loop.
func buildEcho(b *asmkit.Builder) {
	call := func(no int32) {
		b.MoveL(m68k.Imm(no), m68k.D(0))
		b.Trap(0)
	}
	xfer := func(fdReg int, sysno int32, buf int32) {
		b.MoveL(m68k.D(uint8(fdReg)), m68k.D(1))
		b.MoveL(m68k.Imm(buf), m68k.D(2))
		b.MoveL(m68k.Imm(int32(len(message))), m68k.D(3))
		call(sysno)
	}
	b.MoveL(m68k.Imm(5), m68k.D(1))
	b.MoveL(m68k.Imm(9), m68k.D(2))
	call(unixemu.SysSocket)
	b.MoveL(m68k.D(0), m68k.D(6))
	b.MoveL(m68k.Imm(9), m68k.D(1))
	b.MoveL(m68k.Imm(5), m68k.D(2))
	call(unixemu.SysSocket)
	b.MoveL(m68k.D(0), m68k.D(7))
	b.Kcall(100) // mark
	b.MoveL(m68k.Imm(rounds), m68k.D(5))
	b.Label("loop")
	xfer(6, unixemu.SysWrite, wbuf) // 5 -> 9
	xfer(7, unixemu.SysRead, rbuf)
	xfer(7, unixemu.SysWrite, rbuf) // echo 9 -> 5
	xfer(6, unixemu.SysRead, rbuf)
	b.SubL(m68k.Imm(1), m68k.D(5))
	b.Bne("loop")
	b.Kcall(100) // mark
	b.MoveL(m68k.Imm(0), m68k.D(1))
	call(unixemu.SysExit)
}

// run executes the echo program on a rig and returns the per-packet
// microseconds (four packets cross the stack per round trip... two
// datagrams, each sent and received once).
func run(r bench.Rig) (float64, error) {
	m := r.Machine()
	for i, c := range []byte(message) {
		m.Poke(uint32(wbuf)+uint32(i), 1, uint32(c))
	}
	b := asmkit.New()
	buildEcho(b)
	entry := b.Link(m)
	if err := r.Run(entry, 4_000_000_000); err != nil {
		return 0, fmt.Errorf("%s: %w", r.Name(), err)
	}
	marks := r.Marks()
	if len(marks) != 1 {
		return 0, fmt.Errorf("%s: %d marked intervals, want 1", r.Name(), len(marks))
	}
	echoed := make([]byte, len(message))
	for i := range echoed {
		echoed[i] = byte(m.Peek(uint32(rbuf)+uint32(i), 1))
	}
	if string(echoed) != message {
		return 0, fmt.Errorf("%s: echoed %q, want %q", r.Name(), echoed, message)
	}
	return marks[0] / (2 * rounds), nil
}

func main() {
	fmt.Printf("echoing %q over the loopback pair 5 <-> 9, %d round trips\n\n", message, rounds)

	synth, err := run(bench.NewSynthRig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "netecho:", err)
		os.Exit(1)
	}
	fmt.Printf("synthesis (synthesized sockets, NIC DMA + rx interrupt): %7.1f usec/packet\n", synth)

	sun, err := run(bench.NewSunRig())
	if err != nil {
		fmt.Fprintln(os.Stderr, "netecho:", err)
		os.Exit(1)
	}
	fmt.Printf("sunos baseline (generic layers, no NIC in the path):     %7.1f usec/packet\n", sun)
	fmt.Printf("\nspeedup: %.2fx — the open-time synthesis pays off per packet\n", sun/synth)
}
