// Audio: the Section 5.4 workload — the A/D converter interrupts the
// machine 44,100 times per second and the synthesized handler packs
// eight samples per queue element, so the per-sample cost is a couple
// of instructions. A reader thread drains whole elements through the
// synthesized /dev/ad read and computes a running peak level, all on
// the simulated machine.
//
//	go run ./examples/audio
package main

import (
	"fmt"
	"log"

	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
	"synthesis/internal/unixemu"
)

func main() {
	// The 44.1 kHz sampler is the paper's native-mode workload: run
	// the Quamachine at its full 50 MHz so the handler keeps up.
	k := kernel.Boot(kernel.Config{Machine: m68k.NativeConfig(), ChargeSynthesis: true})
	io := kio.Install(k)
	unixemu.Install(k)

	const (
		nameAddr = 0xA000
		buf      = 0xB000
		peakCell = 0x9000
		sumCell  = 0x9004
		gotCell  = 0x9008
		chunks   = 64 // read 64 elements = 512 samples (~11.6 ms of audio)
	)
	for i, c := range []byte("/dev/ad\x00") {
		k.M.Poke(nameAddr+uint32(i), 1, uint32(c))
	}

	prog := k.C.Synthesize(nil, "audio", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(kernel.SysOpen), m68k.D(0))
		e.MoveL(m68k.Imm(nameAddr), m68k.D(1))
		e.Trap(kernel.TrapSys)
		// Start the sampler.
		e.MoveL(m68k.Imm(1), m68k.Abs(m68k.ADBase+m68k.ADRegCtl))
		e.Kcall(kernel.SvcMark)
		// Drain `chunks` elements, folding a peak detector over the
		// channel-0 samples.
		e.MoveL(m68k.Imm(chunks*32), m68k.D(6)) // bytes wanted
		e.Label("more")
		e.MoveL(m68k.Imm(buf), m68k.D(1))
		e.MoveL(m68k.D(6), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.SubL(m68k.D(0), m68k.D(6))
		// Scan what arrived: D0 bytes at buf.
		e.Lea(m68k.Abs(buf), 0)
		e.LsrL(m68k.Imm(2), m68k.D(0)) // samples
		e.Beq("checkdone")
		e.SubL(m68k.Imm(1), m68k.D(0))
		e.Label("scan")
		e.MoveL(m68k.PostInc(0), m68k.D(1))
		e.LsrL(m68k.Imm(16), m68k.D(1)) // channel 0
		e.AddL(m68k.Imm(1), m68k.Abs(gotCell))
		e.AddL(m68k.D(1), m68k.Abs(sumCell))
		e.Cmp(4, m68k.Abs(peakCell), m68k.D(1))
		e.Bls("nopeak")
		e.MoveL(m68k.D(1), m68k.Abs(peakCell))
		e.Label("nopeak")
		e.Dbra(0, "scan")
		e.Label("checkdone")
		e.TstL(m68k.D(6))
		e.Bne("more")
		e.Kcall(kernel.SvcMark)
		// Stop the sampler and exit.
		e.MoveL(m68k.Imm(0), m68k.Abs(m68k.ADBase+m68k.ADRegCtl))
		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Trap(kernel.TrapSys)
	})
	th := k.SpawnKernel("audio", prog)
	k.Start(th)
	if err := k.Run(5_000_000_000); err != nil {
		log.Fatal(err)
	}

	d := k.MarkDeltasMicros()
	samples := k.M.Peek(0x9008, 4)
	fmt.Println("A/D buffered-queue audio capture (simulated SUN 3/160):")
	fmt.Printf("  %d samples captured in %.1f ms simulated (rate %.0f Hz; device nominal 44100)\n",
		samples, d[0]/1000, float64(samples)/(d[0]/1e6))
	fmt.Printf("  channel-0 peak %d, mean %.1f\n",
		k.M.Peek(0x9000, 4), float64(k.M.Peek(0x9004, 4))/float64(samples))
	fmt.Printf("  elements completed by the interrupt handler: %d (blocking factor %d)\n",
		io.ADQ().Completed(k.M), kio.ADBlockingFactor)
	fmt.Printf("  samples dropped by the device: %d\n", k.AD.Dropped)
}
