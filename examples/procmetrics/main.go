// Procmetrics: the kernel reads its own dashboard. A guest program —
// written as assembly text and run through the asmkit text assembler —
// opens /proc/metrics through the UNIX emulator, reads the kernel's
// metrics snapshot chunk by chunk, and echoes it to the tty. The host
// then checks that the bytes the guest saw are exactly the snapshot
// the kernel cut at open time, and decodes them with the same JSON
// schema the host-side exporters use.
//
//	go run ./examples/procmetrics
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"synthesis/internal/asmkit"
	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/metrics"
	"synthesis/internal/unixemu"
)

// The guest workload in the text-assembler dialect. UNIX trap
// convention: trap #0, syscall number in D0, arguments in D1-D3.
const guestSrc = `
; open the kernel's own metrics snapshot
        move.l  #0xA030, d1     ; name: "/proc/metrics"
        move.l  #5, d0          ; SYS_open
        trap    #0
        move.l  d0, d6          ; proc fd

; open the console
        move.l  #0xA010, d1     ; name: "/dev/tty"
        move.l  #5, d0
        trap    #0
        move.l  d0, d7          ; tty fd

; copy the snapshot to the tty, 256 bytes at a time
loop:   move.l  d6, d1
        move.l  #0xB000, d2
        move.l  #256, d3
        move.l  #3, d0          ; SYS_read
        trap    #0
        tst.l   d0
        beq     done            ; read returned 0: snapshot drained
        move.l  d0, d3          ; echo exactly what we got
        move.l  d7, d1
        move.l  #0xB000, d2
        move.l  #4, d0          ; SYS_write
        trap    #0
        bra     loop

done:   move.l  d6, d1
        move.l  #6, d0          ; SYS_close
        trap    #0
        move.l  #0, d1
        move.l  #1, d0          ; SYS_exit
        trap    #0
`

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the demo, writing the report to w. It returns an error
// instead of exiting so the tier-1 test suite can run the example
// end to end (see main_test.go).
func run(w io.Writer) error {
	reg := metrics.New()
	k := kernel.Boot(kernel.Config{
		Machine:         m68k.Sun3Config(),
		ChargeSynthesis: true,
		Metrics:         reg,
	})
	plane := kio.Install(k)
	unixemu.Install(k)

	// The two names the guest passes to open.
	poke := func(addr uint32, s string) {
		for i := 0; i < len(s); i++ {
			k.M.Poke(addr+uint32(i), 1, uint32(s[i]))
		}
		k.M.Poke(addr+uint32(len(s)), 1, 0)
	}
	poke(0xA030, kio.ProcMetricsPath)
	poke(0xA010, "/dev/tty")

	prog, err := asmkit.Assemble(guestSrc)
	if err != nil {
		return fmt.Errorf("assemble: %w", err)
	}
	th := k.SpawnKernel("procmetrics", prog.Link(k.M))
	k.Start(th)
	if err := k.Run(50_000_000); err != nil {
		return fmt.Errorf("run: %w", err)
	}

	guest := k.TTY.Output()
	want := plane.ProcLast()
	fmt.Fprintf(w, "guest read %d bytes of /proc/metrics through the UNIX emulator\n", len(guest))
	if string(guest) != string(want) {
		return fmt.Errorf("guest bytes differ from the snapshot the open cut (%d vs %d bytes)",
			len(guest), len(want))
	}
	fmt.Fprintln(w, "guest bytes == the snapshot cut at open time, byte for byte")

	var snap metrics.Snapshot
	if err := json.Unmarshal(guest, &snap); err != nil {
		return fmt.Errorf("decode: %w", err)
	}
	fmt.Fprintf(w, "decoded: %d counters, %d gauges at t=%.0f µs simulated\n",
		len(snap.Counters), len(snap.Gauges), snap.Micros())
	for _, name := range []string{
		"unixemu.sys.open.calls", // the guest's own open, as of the snapshot
		"kernel.thread.creates",
		"kio.tty.rx_chars",
	} {
		if v, ok := snap.Counters[name]; ok {
			fmt.Fprintf(w, "  %-28s %d\n", name, v)
		}
	}
	return nil
}
