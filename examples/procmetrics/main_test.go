package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExampleRuns executes the example end to end under `go test`, so
// the tier-1 suite exercises the guest round trip, not just the build.
func TestExampleRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{
		"byte for byte",
		"unixemu.sys.open.calls",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}
