// TTY pipeline: the Section 5.1 cooked-tty server built on the Go
// plane from the quaject building blocks — a raw character producer,
// the erase/kill line-discipline filter, and a consumer — wired
// together by the interfacer's producer/consumer case analysis
// (Section 5.2: procedure call, monitor, queue or pump).
//
//	go run ./examples/ttypipeline
package main

import (
	"fmt"
	"strings"

	"synthesis/internal/stream"
)

func main() {
	// The "keyboard": a passive producer handing out typed bytes,
	// including erase (\b) and kill (^U = \x15) control characters.
	typed := "cat /ets\b\btc/passwd\x15ls /dev\n" +
		"echo hello wrold\b\b\b\borld\n"
	pos := 0
	keyboard := stream.ProducerFunc[byte](func() (byte, error) {
		if pos >= len(typed) {
			return 0, stream.ErrEndOfStream
		}
		c := typed[pos]
		pos++
		return c, nil
	})

	// The cooked filter: erase and kill processing, emitting complete
	// lines.
	var line []byte
	var lines []string
	cooked := &stream.Filter[byte, string]{
		Fn: func(c byte, emit func(string) error) error {
			switch c {
			case 0x08: // erase
				if len(line) > 0 {
					line = line[:len(line)-1]
				}
			case 0x15: // kill
				line = line[:0]
			case '\n':
				s := string(line)
				line = line[:0]
				return emit(s)
			default:
				line = append(line, c)
			}
			return nil
		},
		Out: stream.ConsumerFunc[string](func(s string) error {
			lines = append(lines, s)
			return nil
		}),
	}

	// Both ends are passive, so the interfacer picks a pump — a
	// thread that actively moves the data (the xclock case).
	var g stream.Gauge
	link := stream.Connect[byte](stream.ConnectOptions{}, keyboard, stream.Metered[byte](cooked, &g))
	fmt.Printf("interfacer chose: %s\n", link.Kind)
	if err := link.Pump.Wait(); err != nil {
		fmt.Println("pump:", err)
		return
	}

	fmt.Printf("raw characters pumped: %d (gauge)\n", g.Read())
	fmt.Printf("typed (with control chars): %q\n", typed)
	fmt.Println("cooked lines:")
	for i, l := range lines {
		fmt.Printf("  %d: %q\n", i+1, l)
	}

	// The same filter behind a monitor serializes multiple echo
	// sources (Section 5.1: screen output comes from both user
	// programs and input echo), demonstrated with the active-passive
	// multiple case.
	multi := stream.Connect[byte](stream.ConnectOptions{ProdActive: true, ProdMultiple: true},
		nil, stream.ConsumerFunc[byte](func(byte) error { return nil }))
	fmt.Printf("\nmultiple active producers -> passive consumer: interfacer chose %q\n", multi.Kind)

	// And two active parties get an optimistic queue.
	aa := stream.Connect[byte](stream.ConnectOptions{ProdActive: true, ConsActive: true}, nil, nil)
	fmt.Printf("active producer + active consumer: interfacer chose %q\n", aa.Kind)
	_ = strings.TrimSpace("")
}
