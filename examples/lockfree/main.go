// Lockfree: the optimistic queues of Section 3.2 under real goroutine
// concurrency — single-producer/single-consumer (Figure 1),
// multiple-producer with compare-and-swap claims and atomic batch
// insert (Figure 2), and the optimistic-vs-locking comparison that
// motivates the whole exercise.
//
//	go run ./examples/lockfree
package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"synthesis/internal/queue"
)

func main() {
	fmt.Println("Synthesis optimistic queues on the Go plane")
	fmt.Printf("GOMAXPROCS = %d\n\n", runtime.GOMAXPROCS(0))

	// Figure 1: SP-SC. One producer, one consumer, no locks anywhere:
	// head is the producer's, tail is the consumer's (Code
	// Isolation), and the final index store publishes the item.
	spsc := queue.NewSPSC[int](256)
	const n = 200_000
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sum := 0
		for got := 0; got < n; {
			if v, ok := spsc.TryGet(); ok {
				sum += v
				got++
			} else {
				runtime.Gosched()
			}
		}
		fmt.Printf("  consumer checksum: %d\n", sum)
	}()
	for i := 0; i < n; i++ {
		for !spsc.TryPut(i) {
			runtime.Gosched()
		}
	}
	wg.Wait()
	fmt.Printf("SP-SC (Figure 1): %d items in %v\n\n", n, time.Since(start))

	// Figure 2: MP-SC. Producers stake claims with one CAS; the
	// valid-flag array tells the consumer which slots are filled.
	mpsc := queue.NewMPSC[int](1024)
	const producers, per = 4, 50_000
	start = time.Now()
	var pwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		pwg.Add(1)
		go func(p int) {
			defer pwg.Done()
			for i := 0; i < per; i++ {
				for !mpsc.TryPut(p*per + i) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	seen := make([]bool, producers*per)
	got := 0
	for got < producers*per {
		if v, ok := mpsc.TryGet(); ok {
			if seen[v] {
				panic("duplicate item: the queue lost its mind")
			}
			seen[v] = true
			got++
		} else {
			runtime.Gosched()
		}
	}
	pwg.Wait()
	fmt.Printf("MP-SC (Figure 2): %d producers x %d items, no losses, no duplicates, %v\n",
		producers, per, time.Since(start))

	// Figure 2's atomic multi-item insert: a whole batch claims its
	// space with one CAS and can never interleave with another
	// producer's batch.
	batchq := queue.NewMPSC[int](1024)
	batch := []int{1, 2, 3, 4, 5, 6, 7, 8}
	batchq.PutBatch(batch)
	fmt.Printf("PutBatch: %d items claimed atomically, queue length %d\n\n", len(batch), batchq.Len())

	// The ablation: optimistic MP-MC vs the traditional locked queue,
	// same workload.
	race := func(q interface {
		TryPut(int) bool
		TryGet() (int, bool)
	}) time.Duration {
		start := time.Now()
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 50_000; i++ {
					for !q.TryPut(i) {
						q.TryGet()
					}
					q.TryGet()
				}
			}()
		}
		wg.Wait()
		return time.Since(start)
	}
	opt := race(queue.NewMPMC[int](1024))
	locked := race(queue.NewLocked[int](1024))
	fmt.Printf("contended 4x50k put/get pairs:\n")
	fmt.Printf("  optimistic MP-MC: %v\n", opt)
	fmt.Printf("  mutex+cond queue: %v (%.1fx)\n", locked, float64(locked)/float64(opt))
}
