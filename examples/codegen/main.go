// Codegen: watch the quaject creator work. The same code template is
// instantiated twice — once with its holes bound to memory cells (the
// generic kernel routine a traditional system would ship) and once
// with the invariants folded in and the optimizer run (what the
// Synthesis open synthesizes) — and both versions run on the
// Quamachine so the cycle counts are directly comparable.
//
//	go run ./examples/codegen
package main

import (
	"errors"
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

func main() {
	m := m68k.New(m68k.Sun3Config())
	stub := m.Emit([]m68k.Instr{{Op: m68k.HALT}})
	m.VBR = 0x100
	for v := 0; v < m68k.NumVectors; v++ {
		m.Poke(m.VBR+uint32(v)*4, 4, stub)
	}
	m.A[7] = 0x8000
	m.SSP = 0x8000
	c := synth.NewCreator(m)

	// Parameter cells for the generic instantiation.
	const cells = 0x4000
	m.Poke(cells+0, 4, 0x5000) // buffer address
	m.Poke(cells+4, 4, 16)     // element count
	m.Poke(cells+8, 4, 3)      // scale factor
	for i := uint32(0); i < 16; i++ {
		m.Poke(0x5000+i*4, 4, i+1)
	}

	// The template: sum scale*buf[i] over the elements. With constant
	// bindings the scale multiply strength-reduces and the count
	// check folds away — Factoring Invariants plus the optimization
	// stage of the quaject creator.
	tmpl := func(e *synth.Emitter) {
		e.LeaHole("buf", 0)
		e.Clr(4, m68k.D(0)) // sum
		e.LoadHole("count", m68k.D(1))
		e.SubL(m68k.Imm(1), m68k.D(1))
		e.Label("loop")
		e.MoveL(m68k.PostInc(0), m68k.D(2))
		e.LoadHole("scale", m68k.D(3))
		e.Mulu(m68k.D(3), m68k.D(2))
		e.AddL(m68k.D(2), m68k.D(0))
		e.Dbra(1, "loop")
		e.Rts()
	}

	generic := synth.Env{
		"buf":   synth.CellAt(cells + 0),
		"count": synth.CellAt(cells + 4),
		"scale": synth.CellAt(cells + 8),
	}
	special := synth.Env{
		"buf":   synth.ConstOf(0x5000),
		"count": synth.ConstOf(16),
		"scale": synth.ConstOf(4), // power of two: the multiply becomes a shift
	}

	gAddr := c.Synthesize(nil, "sum_generic", generic, tmpl)
	gStats := c.LastStats
	sAddr := c.Synthesize(nil, "sum_special", special, tmpl)
	sStats := c.LastStats

	fmt.Println("generic instantiation (holes bound to memory cells):")
	fmt.Print(m68k.Disassemble(m.Code, gAddr, gStats.InstrsAfter))
	fmt.Printf("  %d instructions, %d bytes\n\n", gStats.InstrsAfter, gStats.BytesAfter)

	fmt.Println("specialized instantiation (invariants folded, optimizer run):")
	fmt.Print(m68k.Disassemble(m.Code, sAddr, sStats.InstrsAfter))
	fmt.Printf("  %d instructions, %d bytes; optimizer: %d folded, %d substituted, %d strength-reduced, %d removed\n\n",
		sStats.InstrsAfter, sStats.BytesAfter,
		sStats.Folded, sStats.Substituted, sStats.StrengthRed, sStats.Removed)

	run := func(addr uint32) (uint32, uint64) {
		b := asmkit.New()
		b.Jsr(addr)
		b.Halt()
		entry := b.Link(m)
		m.ClearHalt()
		m.PC = entry
		start := m.Cycles
		if err := m.Run(1_000_000); !errors.Is(err, m68k.ErrHalted) {
			panic(err)
		}
		return m.D[0], m.Cycles - start
	}
	// Scale cell says 3, the specialized one folded 4: align them.
	m.Poke(cells+8, 4, 4)
	gSum, gCycles := run(gAddr)
	sSum, sCycles := run(sAddr)
	fmt.Printf("generic:     sum=%d in %d cycles (%.2f usec at 16 MHz)\n", gSum, gCycles, m.Micros(gCycles))
	fmt.Printf("specialized: sum=%d in %d cycles (%.2f usec at 16 MHz)\n", sSum, sCycles, m.Micros(sCycles))
	fmt.Printf("speedup: %.2fx for identical results\n", float64(gCycles)/float64(sCycles))
}
