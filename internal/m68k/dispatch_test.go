package m68k

import "testing"

// Self-modifying code is the kernel's normal mode of operation, so the
// translation cache must never serve a stale handler: a write into
// code space has to be visible on the very next fetch of that slot.
// These tests drive the `instr` cell pattern from Table 1 — code that
// patches an instruction it is about to execute — under both a cold
// cache (slot never translated) and a warm one (stale translation
// installed and hot).

// patchService returns a KCALL service that overwrites code slot at
// with a MOVE #v, D1 when invoked.
func patchService(at uint32, v int32) Service {
	return func(m *Machine) uint64 {
		m.PatchCode(at, Instr{Op: MOVE, Src: Imm(v), Dst: D(1)})
		return 0
	}
}

// TestSelfModifyingCodeColdCache patches the next instruction before
// it has ever executed (and therefore before it has ever been
// translated): the patched form must run.
func TestSelfModifyingCodeColdCache(t *testing.T) {
	m := New(Config{})
	entry := m.Emit([]Instr{
		{Op: KCALL, Vec: 1}, // patches slot entry+1
		{Op: MOVE, Src: Imm(111), Dst: D(1)}, // will be overwritten
		{Op: HALT},
	})
	m.RegisterService(1, patchService(entry+1, 222))
	m.PC = entry
	if err := m.Run(1 << 20); err != ErrHalted {
		t.Fatal(err)
	}
	if m.D[1] != 222 {
		t.Fatalf("cold cache: executed stale instruction, D1=%d want 222", m.D[1])
	}
}

// TestSelfModifyingCodeWarmCache runs a patch loop: each iteration
// executes the target slot (heating its cache line), then patches it
// and executes it again. Every fetch after a patch must see the new
// instruction even though the previous translation was hot.
func TestSelfModifyingCodeWarmCache(t *testing.T) {
	m := New(Config{})
	entry := m.Emit([]Instr{
		{Op: MOVE, Src: Imm(0), Dst: D(1)}, // 0: the patch target
		{Op: KCALL, Vec: 1},                // 1: patch slot 0 to load next value
		{Op: ADD, Src: D(1), Dst: D(2)},    // 2: accumulate what slot 0 loaded
		{Op: DBRA, Src: D(0), Dst: Abs(0)}, // 3: loop back through slot 0
		{Op: HALT},                         // 4
	})
	next := int32(0)
	m.RegisterService(1, func(mm *Machine) uint64 {
		next++
		mm.PatchCode(entry, Instr{Op: MOVE, Src: Imm(next), Dst: D(1)})
		return 0
	})
	const rounds = 64
	m.D[0] = rounds
	m.D[2] = 0
	m.PC = entry
	if err := m.Run(1 << 30); err != ErrHalted {
		t.Fatal(err)
	}
	// DBRA from rounds runs rounds+1 iterations. Iteration k executes
	// slot 0 as MOVE #k-1 (patched by the previous iteration; the
	// first sees the original #0), then patches it to #k, so the
	// accumulator collects 0+1+...+rounds.
	want := uint32(rounds * (rounds + 1) / 2)
	if m.D[2] != want {
		t.Fatalf("warm cache: accumulated %d, want %d (a stale translation executed)", m.D[2], want)
	}
	if next != rounds+1 {
		t.Fatalf("patch service ran %d times, want %d", next, rounds+1)
	}
}

// TestPatchHelpersInvalidate covers the asmkit-style patch entry
// points: SetCode over an executed region must retranslate every
// covered slot.
func TestPatchHelpersInvalidate(t *testing.T) {
	m := New(Config{})
	entry := m.Emit([]Instr{
		{Op: MOVE, Src: Imm(1), Dst: D(3)},
		{Op: HALT},
	})
	run := func() {
		m.ClearHalt()
		m.PC = entry
		if err := m.Run(1 << 20); err != ErrHalted {
			t.Fatal(err)
		}
	}
	run()
	if m.D[3] != 1 {
		t.Fatalf("D3=%d want 1", m.D[3])
	}
	m.SetCode(entry, []Instr{{Op: MOVE, Src: Imm(7), Dst: D(3)}})
	run()
	if m.D[3] != 7 {
		t.Fatalf("after SetCode: D3=%d want 7 (stale translation)", m.D[3])
	}
}
