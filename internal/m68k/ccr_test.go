package m68k_test

import (
	"errors"
	"testing"
	"testing/quick"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// Property test: the machine's condition codes after ADD, SUB and CMP
// match first-principles 64-bit arithmetic for every flag the kernel
// code branches on (Z, C, N, and the signed less-than predicate that
// combines N and V). The probe captures flags with LEA-based
// accumulation, which touches no condition codes.

// ccrProbe runs `move #a,d0; op #b,d0` and returns (result, flags)
// where flags bit0=Z, bit1=C, bit2=N, bit3=LT.
func ccrProbe(t *testing.T, op m68k.Op, a, b uint32) (uint32, uint32) {
	t.Helper()
	m := m68k.New(m68k.Config{MemSize: 1 << 14})
	stub := m.Emit([]m68k.Instr{{Op: m68k.HALT}})
	m.VBR = 0x100
	for v := 0; v < m68k.NumVectors; v++ {
		m.Poke(m.VBR+uint32(v)*4, 4, stub)
	}
	m.A[7] = 0x2000
	m.SSP = 0x2000

	bld := asmkit.New()
	bld.MoveL(m68k.Imm(int32(a)), m68k.D(0))
	bld.I(m68k.Instr{Op: op, Sz: 4, Src: m68k.Imm(int32(b)), Dst: m68k.D(0)})
	bld.Lea(m68k.Abs(0), 6) // flag accumulator, no CCR effect
	bld.Beq("z1")
	bld.Bra("z2")
	bld.Label("z1")
	bld.Lea(m68k.Disp(1, 6), 6)
	bld.Label("z2")
	bld.Bcs("c1")
	bld.Bra("c2")
	bld.Label("c1")
	bld.Lea(m68k.Disp(2, 6), 6)
	bld.Label("c2")
	bld.Bmi("n1")
	bld.Bra("n2")
	bld.Label("n1")
	bld.Lea(m68k.Disp(4, 6), 6)
	bld.Label("n2")
	bld.Blt("l1")
	bld.Bra("l2")
	bld.Label("l1")
	bld.Lea(m68k.Disp(8, 6), 6)
	bld.Label("l2")
	bld.Halt()
	m.PC = bld.Link(m)
	if err := m.Run(10000); !errors.Is(err, m68k.ErrHalted) {
		t.Fatalf("probe run: %v", err)
	}
	return m.D[0], m.A[6]
}

// model computes the expected result and flags from 64-bit math.
func model(op m68k.Op, a, b uint32) (uint32, uint32) {
	var r uint32
	var carry, overflow bool
	switch op {
	case m68k.ADD:
		wide := uint64(a) + uint64(b)
		r = uint32(wide)
		carry = wide>>32 != 0
		overflow = (int32(a) >= 0) == (int32(b) >= 0) &&
			(int32(r) >= 0) != (int32(a) >= 0)
	case m68k.SUB, m68k.CMP:
		r = a - b
		carry = b > a
		overflow = (int32(a) >= 0) != (int32(b) >= 0) &&
			(int32(r) >= 0) == (int32(b) >= 0)
	}
	var f uint32
	if r == 0 {
		f |= 1
	}
	if carry {
		f |= 2
	}
	if int32(r) < 0 {
		f |= 4
	}
	if (int32(r) < 0) != overflow { // LT = N xor V
		f |= 8
	}
	res := r
	if op == m68k.CMP {
		res = a // CMP does not store
	}
	return res, f
}

func TestCCRMatchesModel(t *testing.T) {
	check := func(a, b uint32, sel uint8) bool {
		ops := []m68k.Op{m68k.ADD, m68k.SUB, m68k.CMP}
		op := ops[int(sel)%len(ops)]
		gotR, gotF := ccrProbe(t, op, a, b)
		wantR, wantF := model(op, a, b)
		if gotR != wantR || gotF != wantF {
			t.Logf("%v a=%#x b=%#x: got r=%#x f=%04b, want r=%#x f=%04b",
				op, a, b, gotR, gotF, wantR, wantF)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
	// Directed edge cases quick.Check may miss.
	edges := []struct{ a, b uint32 }{
		{0, 0}, {0xffffffff, 1}, {0x7fffffff, 1}, {0x80000000, 1},
		{0x80000000, 0x80000000}, {1, 0xffffffff}, {0, 0x80000000},
	}
	for _, e := range edges {
		for _, op := range []m68k.Op{m68k.ADD, m68k.SUB, m68k.CMP} {
			gotR, gotF := ccrProbe(t, op, e.a, e.b)
			wantR, wantF := model(op, e.a, e.b)
			if gotR != wantR || gotF != wantF {
				t.Errorf("%v a=%#x b=%#x: got r=%#x f=%04b, want r=%#x f=%04b",
					op, e.a, e.b, gotR, gotF, wantR, wantF)
			}
		}
	}
}
