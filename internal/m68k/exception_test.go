package m68k_test

import (
	"testing"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// oneShotFaulter is a minimal m68k.Injector that bus-errors the first
// device-window access it sees and counts consultations.
type oneShotFaulter struct {
	armed bool
	hits  int
	dev   string
	off   uint32
	write bool
}

func (f *oneShotFaulter) AccessFault(dev m68k.Device, off uint32, write bool) bool {
	if !f.armed {
		return false
	}
	f.armed = false
	f.hits++
	f.dev, f.off, f.write = dev.Name(), off, write
	return true
}
func (f *oneShotFaulter) Frame(frame []byte) ([][]byte, uint64) { return [][]byte{frame}, 0 }
func (f *oneShotFaulter) RingFull() bool                        { return false }
func (f *oneShotFaulter) TimerArm(cycles uint64) uint64         { return cycles }

// TestBusErrorOnDeviceWindow: an injected bus error on a device
// register store must vector through VecBusError without the store
// reaching the device, and RTE from the handler must resume execution
// after the faulting instruction.
func TestBusErrorOnDeviceWindow(t *testing.T) {
	m := newM(t)
	m.Attach(m68k.NewTimer(m))
	f := &oneShotFaulter{armed: true}
	m.Inj = f

	h := asmkit.New()
	h.AddL(m68k.Imm(1), m68k.D(6)) // count handler entries
	h.Rte()
	m.Poke(m.VBR+uint32(m68k.VecBusError)*4, 4, h.Link(m))

	b := asmkit.New()
	b.MoveL(m68k.Imm(1), m68k.D(5))
	b.MoveL(m68k.Imm(1234), m68k.Abs(m68k.TimerBase+m68k.TimerRegQuantum)) // faults
	b.MoveL(m68k.Imm(2), m68k.D(5))                                        // resume lands here
	b.Halt()
	run(t, m, b.Link(m))

	if m.D[6] != 1 {
		t.Errorf("bus-error handler ran %d times, want 1", m.D[6])
	}
	if m.D[5] != 2 {
		t.Errorf("D5 = %d: execution did not resume after the faulting store", m.D[5])
	}
	if f.dev != "timer" || !f.write {
		t.Errorf("fault consulted for %s write=%v, want timer write", f.dev, f.write)
	}
	// The store never reached the device: no quantum was armed, so no
	// timer interrupt is pending.
	if got, _ := m.Load(m68k.TimerBase+m68k.TimerRegQuantum, 4); got == 1234 {
		t.Error("bus-erred store reached the timer register")
	}
}

// TestIllegalInstructionVector: both an undecodable opcode and a
// KCALL on an unregistered service slot must vector through
// VecIllegal.
func TestIllegalInstructionVector(t *testing.T) {
	cases := []struct {
		name string
		prog func(m *m68k.Machine) uint32
	}{
		{"undecodable-opcode", func(m *m68k.Machine) uint32 {
			return m.Emit([]m68k.Instr{{Op: m68k.Op(0xF0)}, {Op: m68k.HALT}})
		}},
		{"unregistered-kcall", func(m *m68k.Machine) uint32 {
			b := asmkit.New()
			b.Kcall(99)
			b.Halt()
			return b.Link(m)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := newM(t)
			h := asmkit.New()
			h.MoveL(m68k.Imm(0xdead), m68k.D(6))
			h.Halt()
			m.Poke(m.VBR+uint32(m68k.VecIllegal)*4, 4, h.Link(m))
			run(t, m, tc.prog(m))
			if m.D[6] != 0xdead {
				t.Error("illegal instruction did not reach VecIllegal")
			}
		})
	}
}

// spuriousDev is an interrupt source with no register window: it
// asserts one interrupt at a fixed cycle, modeling a device that
// screams once for no reason.
type spuriousDev struct {
	level int
	at    uint64
	done  bool
}

func (d *spuriousDev) Name() string                        { return "spurious" }
func (d *spuriousDev) Base() uint32                        { return 0xffff_fe00 }
func (d *spuriousDev) Size() uint32                        { return 0 }
func (d *spuriousDev) Load(off uint32, sz uint8) uint32    { return 0 }
func (d *spuriousDev) Store(off uint32, sz uint8, v uint32) {}
func (d *spuriousDev) Tick(now uint64) (int, uint64) {
	if !d.done && now >= d.at {
		d.done = true
		return d.level, 0
	}
	if d.done {
		return 0, 0
	}
	return 0, d.at
}

// TestSpuriousInterruptAutovector: an interrupt asserted at a level no
// driver claims must dispatch through its autovector slot, and only
// once the mask admits it — the assertion stays pending while the IPL
// blocks the level.
func TestSpuriousInterruptAutovector(t *testing.T) {
	m := newM(t)
	m.Attach(&spuriousDev{level: 3, at: 50})

	h := asmkit.New()
	h.AddL(m68k.Imm(1), m68k.D(6)) // count deliveries
	h.MoveL(m68k.D(4), m68k.D(3))  // snapshot the phase flag
	h.Rte()
	m.Poke(m.VBR+uint32(m68k.VecAutovector+3)*4, 4, h.Link(m))

	b := asmkit.New()
	// Phase 0: masked. The device asserts at cycle 50; spin well past
	// it with the IPL at 7 so the interrupt must stay pending.
	b.MoveL(m68k.Imm(0), m68k.D(4))
	b.MoveL(m68k.Imm(200), m68k.D(0))
	b.Label("masked")
	b.SubL(m68k.Imm(1), m68k.D(0))
	b.Bne("masked")
	// Phase 1: unmask and give the pending interrupt room to land.
	b.MoveL(m68k.Imm(1), m68k.D(4))
	b.AndSR(^uint16(7 << 8))
	b.MoveL(m68k.Imm(200), m68k.D(0))
	b.Label("open")
	b.SubL(m68k.Imm(1), m68k.D(0))
	b.Bne("open")
	b.Halt()
	run(t, m, b.Link(m))

	if m.D[6] != 1 {
		t.Fatalf("spurious interrupt delivered %d times, want 1", m.D[6])
	}
	if m.D[3] != 1 {
		t.Error("interrupt was delivered while its level was masked")
	}
}
