package m68k

import (
	"fmt"
	"strings"
)

// Trace is the Quamachine's hardware program-trace facility
// (Section 6.1). It records the most recent executed instructions and
// exceptions in a ring buffer; Section 6.3 explains that kernel call
// timings were calculated from exactly such a trace by counting
// instructions and memory references.
type Trace struct {
	ents []TraceEntry
	next int
	n    int
}

// TraceEntry is one recorded event.
type TraceEntry struct {
	PC     uint32
	Instr  Instr
	Cycles uint64
	Exc    int // exception vector, or -1 for a normal instruction
}

// NewTrace creates a trace ring holding depth entries.
func NewTrace(depth int) *Trace {
	return &Trace{ents: make([]TraceEntry, depth)}
}

// Record logs one executed instruction.
func (t *Trace) Record(pc uint32, i Instr, cycles uint64) {
	t.ents[t.next] = TraceEntry{PC: pc, Instr: i, Cycles: cycles, Exc: -1}
	t.advance()
}

// RecordException logs an exception dispatch.
func (t *Trace) RecordException(vec int, pc uint32) {
	t.ents[t.next] = TraceEntry{PC: pc, Exc: vec}
	t.advance()
}

func (t *Trace) advance() {
	t.next = (t.next + 1) % len(t.ents)
	if t.n < len(t.ents) {
		t.n++
	}
}

// Len returns the number of recorded entries.
func (t *Trace) Len() int { return t.n }

// Entries returns the recorded entries, oldest first.
func (t *Trace) Entries() []TraceEntry {
	out := make([]TraceEntry, 0, t.n)
	start := t.next - t.n
	if start < 0 {
		start += len(t.ents)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ents[(start+i)%len(t.ents)])
	}
	return out
}

// Reset clears the trace.
func (t *Trace) Reset() { t.next, t.n = 0, 0 }

// String renders the trace as a disassembly listing.
func (t *Trace) String() string {
	var b strings.Builder
	for _, e := range t.Entries() {
		if e.Exc >= 0 {
			fmt.Fprintf(&b, "%10d  ** exception vector %d (from pc %d)\n", e.Cycles, e.Exc, e.PC)
			continue
		}
		fmt.Fprintf(&b, "%10d  %6d: %s\n", e.Cycles, e.PC, e.Instr)
	}
	return b.String()
}

// Disassemble renders n instructions of code space starting at addr.
func Disassemble(code []Instr, addr uint32, n int) string {
	var b strings.Builder
	for i := 0; i < n && int(addr)+i < len(code); i++ {
		fmt.Fprintf(&b, "%6d: %s\n", addr+uint32(i), code[addr+uint32(i)])
	}
	return b.String()
}
