package m68k

// Cycle cost model.
//
// The paper's measurements are instruction path lengths multiplied by
// a 68020-style cost per instruction at a configured clock rate
// (Section 6.1: the Quamachine runs 1-50 MHz; 16 MHz with one memory
// wait state emulates a SUN 3/160). We use base costs in the style of
// the published 68020 cache-case timings; every memory reference adds
// cycMemRef plus the configured wait states (charged in
// Machine.Load/Store, so instructions with more memory operands cost
// proportionally more, as on real hardware). The model is documented
// rather than cycle-exact; DESIGN.md Section 4 states the calibration
// policy.
const (
	cycMemRef = 3 // bus cost of one memory reference before wait states

	// The base costs follow the published 68020 cache-case timings,
	// where instruction prefetch overlaps execution: register
	// operations are 2 cycles and operand-address calculation mostly
	// hides behind the bus.
	cycReg       = 2 // register-to-register ALU / move
	cycImm       = 1 // extra cost of an immediate extension word
	cycEA        = 1 // effective-address calculation for memory modes
	cycBranchTak = 5 // taken branch
	cycBranchNot = 3 // untaken branch
	cycDBRATaken = 5 // DBRA that loops
	cycDBRAExit  = 8 // DBRA that falls through
	cycJmp       = 4
	cycJsr       = 4 // plus the push memory reference
	cycRts       = 8 // includes internal sequencing beyond the pop
	cycRte       = 14
	cycTrap      = 14 // plus stack pushes and vector fetch
	cycException = 20 // interrupt/exception dispatch internal cost
	cycStop      = 8
	cycMovemBase = 6 // plus per-register memory references
	cycMovec     = 8
	cycSRop      = 8
	cycMulu      = 27
	cycDivu      = 42
	cycTas       = 10 // read-modify-write bus lock
	cycCas       = 12 // plus its memory references
	cycBitOp     = 4
	cycFpu       = 30 // FP arithmetic (coprocessor protocol + execute)
	cycFpuMove   = 20
	cycFpuMovem  = 14 // per register, plus its memory references; the
	// paper quotes "hundred-plus bytes ... about 10 microseconds" for
	// a full FP context save at SUN 3/160 speed.
)

// baseCost returns the fixed cycle cost of an instruction, excluding
// memory references (those are charged as they happen).
func baseCost(i *Instr) uint64 {
	c := uint64(cycReg)
	switch i.Op {
	case NOP:
		c = 2
	case MULU:
		c = cycMulu
	case DIVU:
		c = cycDivu
	case JMP:
		c = cycJmp
	case JSR:
		c = cycJsr
	case RTS:
		c = cycRts
	case RTE:
		c = cycRte
	case TRAP:
		c = cycTrap
	case STOP:
		c = cycStop
	case MOVEM:
		c = cycMovemBase
	case MOVEC:
		c = cycMovec
	case ORSR, ANDSR, MOVEFSR, MOVETSR:
		c = cycSRop
	case TAS:
		c = cycTas
	case CAS:
		c = cycCas
	case BTST, BSET, BCLR:
		c = cycBitOp
	case FADD, FSUB, FMUL, FDIV:
		c = cycFpu
	case FMOVE:
		c = cycFpuMove
	case FMOVEM:
		c = cycMovemBase
	case KCALL:
		c = 4
	case HALT:
		c = 2
	}
	if i.Src.Mode == ModeImm {
		c += cycImm
	}
	if i.Src.Mode.IsMemory() {
		c += cycEA
	}
	if i.Dst.Mode.IsMemory() {
		c += cycEA
	}
	return c
}
