package m68k

// Threaded-code dispatch: the Synthesis trick applied to the machine
// that hosts Synthesis. Instead of re-decoding every instruction on
// every step — one big opcode switch plus an addressing-mode switch
// per operand — each code-space slot is translated ONCE, on first
// fetch, into a chain of Go closures with the decode decisions baked
// in: the register numbers, immediates, operand sizes, masks and base
// cycle cost are captured at translate time, and execution thereafter
// is one indirect call per instruction. The translation is cached per
// PC in Machine.xcache and invalidated by any write into code space
// (SetCode / PatchCode), so self-modifying synthesized code — the
// kernel's bread and butter — observes new instructions on the very
// next fetch, exactly as the switch interpreter did.
//
// Granularity is deliberately one instruction, not one basic block:
// the machine checks devices and pending interrupts between every two
// instructions, and the kernel's preemption-window story (DESIGN.md
// §3a) depends on every instruction boundary being an interrupt
// point. A block-chained dispatcher would have to re-insert those
// checks at every step anyway, so per-PC handlers lose nothing.
//
// Invariant: cycle accounting, flag results, fault ordering and
// side-effect ordering are bit-identical to the reference switch in
// exec.go. Every specialized handler replicates its exec.go case's
// memory-access order and flag call; ops off the hot path fall back
// to exec.go itself (cSlow), which remains the reference
// implementation. `benchdiff` against bench/baseline enforces the
// invariant: every deterministic row must stay at +0.0%.

// EmitBenchProgram emits the canonical dispatcher benchmark: a
// representative mix of register ALU, memory read-modify-write,
// compare/branch, and a DBRA loop — the shape of the synthesized
// kernel paths whose host-side cost bounds every wall-clock number
// above the VM. BenchmarkStepLoop and Table 11's "step loop floor"
// row both run exactly this program, so the committed pre-dispatch
// ns/instr measurement stays comparable.
func EmitBenchProgram(m *Machine) uint32 {
	return m.Emit([]Instr{
		{Op: MOVE, Src: Imm(1000), Dst: D(0)},                              // 0: loop counter
		{Op: MOVE, Src: Imm(0x9000), Dst: Operand{Mode: ModeAReg, Reg: 0}}, // 1
		{Op: ADD, Src: Imm(1), Dst: Ind(0)},                                // 2: memory RMW
		{Op: MOVE, Src: Ind(0), Dst: D(1)},                                 // 3: load
		{Op: ADD, Src: D(1), Dst: D(2)},                                    // 4: reg ALU
		{Op: CMP, Src: Imm(0), Dst: D(2)},                                  // 5
		{Op: BEQ, Dst: Abs(2)},                                             // 6: never taken
		{Op: DBRA, Src: D(0), Dst: Abs(2)},                                 // 7: loop
		{Op: HALT},                                                         // 8
	})
}

// xent is one translation cache line: the compiled handler, the
// precomputed base cycle cost (baseCost is pure in the instruction),
// and the opcode (the step loop's trace-bit handling needs to know
// RTE without re-reading code space). A zero xent is cold.
type xent struct {
	run  runFn
	cost uint64
	op   Op
}

// runFn executes one translated instruction. It runs with PC already
// advanced past the instruction (as exec.go does) and returns the
// same errors exec would: a *BusFault to vector through the bus-error
// exception, or a terminal simulation error.
type runFn func(m *Machine) error

// readFn/writeFn/eaFn are compiled operand accessors.
type (
	readFn  func(m *Machine) (uint32, error)
	writeFn func(m *Machine, v uint32) error
	eaFn    func(m *Machine) (uint32, error)
)

// translate fills the cache line for pc from the instruction
// currently installed there.
func (m *Machine) translate(pc uint32, e *xent) {
	in := &m.Code[pc]
	e.cost = baseCost(in)
	e.op = in.Op
	e.run = compile(in, pc)
}

// maskFor returns the value mask and sign-bit mask for an operand
// size, letting one flag helper serve all sizes without a per-call
// size switch.
func maskFor(sz uint8) (mask, sign uint32) {
	switch sz {
	case 1:
		return 0xff, 0x80
	case 2:
		return 0xffff, 0x8000
	default:
		return 0xffff_ffff, 0x8000_0000
	}
}

// setNZMask is setNZ with the size switch folded into masks.
func (m *Machine) setNZMask(v, mask, sign uint32) {
	m.SR &^= FlagN | FlagZ | FlagV | FlagC
	if v&mask == 0 {
		m.SR |= FlagZ
	}
	if v&sign != 0 {
		m.SR |= FlagN
	}
}

// setAddFlagsMask is setAddFlags with the size switch folded into
// masks: identical SR results for every input.
func (m *Machine) setAddFlagsMask(a, b, r, mask, sign uint32) {
	m.SR &^= FlagN | FlagZ | FlagV | FlagC | FlagX
	a, b, r = a&mask, b&mask, r&mask
	if r == 0 {
		m.SR |= FlagZ
	}
	if r&sign != 0 {
		m.SR |= FlagN
	}
	if (a^b)&sign == 0 && (r^a)&sign != 0 {
		m.SR |= FlagV
	}
	if r < a {
		m.SR |= FlagC | FlagX
	}
}

// setSubFlagsMask is setSubFlags with the size switch folded into
// masks.
func (m *Machine) setSubFlagsMask(a, b, r, mask, sign uint32) {
	m.SR &^= FlagN | FlagZ | FlagV | FlagC | FlagX
	a, b, r = a&mask, b&mask, r&mask
	if r == 0 {
		m.SR |= FlagZ
	}
	if r&sign != 0 {
		m.SR |= FlagN
	}
	if (a^b)&sign != 0 && (r^b)&sign == 0 {
		m.SR |= FlagV
	}
	if b > a {
		m.SR |= FlagC | FlagX
	}
}

// cEA compiles an effective-address computation, including the
// post-increment/pre-decrement side effects, mirroring Machine.ea.
func cEA(o Operand, sz uint8) eaFn {
	switch o.Mode {
	case ModeInd:
		r := o.Reg
		return func(m *Machine) (uint32, error) { return m.A[r], nil }
	case ModePostInc:
		r, d := o.Reg, uint32(sz)
		return func(m *Machine) (uint32, error) {
			a := m.A[r]
			m.A[r] += d
			return a, nil
		}
	case ModePreDec:
		r, d := o.Reg, uint32(sz)
		return func(m *Machine) (uint32, error) {
			m.A[r] -= d
			return m.A[r], nil
		}
	case ModeDisp:
		r, d := o.Reg, uint32(o.Imm)
		return func(m *Machine) (uint32, error) { return m.A[r] + d, nil }
	case ModeIdx:
		r, d := o.Reg, uint32(o.Imm)
		scale := uint32(o.Scale)
		if scale == 0 {
			scale = 1
		}
		ir := o.Idx & 7
		if o.Idx >= 8 {
			return func(m *Machine) (uint32, error) { return m.A[r] + d + m.A[ir]*scale, nil }
		}
		return func(m *Machine) (uint32, error) { return m.A[r] + d + m.D[ir]*scale, nil }
	case ModeAbs:
		a := uint32(o.Imm)
		return func(m *Machine) (uint32, error) { return a, nil }
	}
	return func(m *Machine) (uint32, error) {
		return 0, &BusFault{Addr: 0xffff_ffff, PC: m.PC}
	}
}

// cRead compiles an operand read, mirroring Machine.readOp.
func cRead(o Operand, sz uint8) readFn {
	switch o.Mode {
	case ModeImm:
		v := trunc(uint32(o.Imm), sz)
		return func(*Machine) (uint32, error) { return v, nil }
	case ModeDReg:
		r := o.Reg
		switch sz {
		case 1:
			return func(m *Machine) (uint32, error) { return m.D[r] & 0xff, nil }
		case 2:
			return func(m *Machine) (uint32, error) { return m.D[r] & 0xffff, nil }
		default:
			return func(m *Machine) (uint32, error) { return m.D[r], nil }
		}
	case ModeAReg:
		r := o.Reg
		return func(m *Machine) (uint32, error) { return m.A[r], nil }
	case ModeInd:
		r, s := o.Reg, sz
		return func(m *Machine) (uint32, error) {
			addr := m.A[r]
			if err := m.checkUserAccess(addr); err != nil {
				return 0, err
			}
			return m.Load(addr, s)
		}
	default:
		ea := cEA(o, sz)
		s := sz
		return func(m *Machine) (uint32, error) {
			addr, err := ea(m)
			if err != nil {
				return 0, err
			}
			if err := m.checkUserAccess(addr); err != nil {
				return 0, err
			}
			return m.Load(addr, s)
		}
	}
}

// cWrite compiles an operand write, mirroring Machine.writeOp.
func cWrite(o Operand, sz uint8) writeFn {
	switch o.Mode {
	case ModeDReg:
		r := o.Reg
		switch sz {
		case 1:
			return func(m *Machine, v uint32) error {
				m.D[r] = m.D[r]&^0xff | v&0xff
				return nil
			}
		case 2:
			return func(m *Machine, v uint32) error {
				m.D[r] = m.D[r]&^0xffff | v&0xffff
				return nil
			}
		default:
			return func(m *Machine, v uint32) error {
				m.D[r] = v
				return nil
			}
		}
	case ModeAReg:
		r := o.Reg
		return func(m *Machine, v uint32) error {
			m.A[r] = v
			return nil
		}
	case ModeImm:
		return func(m *Machine, v uint32) error {
			return &BusFault{Addr: 0xffff_fffe, PC: m.PC}
		}
	case ModeInd:
		r, s := o.Reg, sz
		return func(m *Machine, v uint32) error {
			addr := m.A[r]
			if err := m.checkUserAccess(addr); err != nil {
				return err
			}
			return m.Store(addr, s, v)
		}
	default:
		ea := cEA(o, sz)
		s := sz
		return func(m *Machine, v uint32) error {
			addr, err := ea(m)
			if err != nil {
				return err
			}
			if err := m.checkUserAccess(addr); err != nil {
				return err
			}
			return m.Store(addr, s, v)
		}
	}
}

// cCond compiles a branch condition, mirroring Machine.condition.
func cCond(op Op) func(m *Machine) bool {
	switch op {
	case BEQ:
		return func(m *Machine) bool { return m.SR&FlagZ != 0 }
	case BNE:
		return func(m *Machine) bool { return m.SR&FlagZ == 0 }
	case BLT:
		return func(m *Machine) bool { return (m.SR&FlagN != 0) != (m.SR&FlagV != 0) }
	case BLE:
		return func(m *Machine) bool {
			return m.SR&FlagZ != 0 || (m.SR&FlagN != 0) != (m.SR&FlagV != 0)
		}
	case BGT:
		return func(m *Machine) bool {
			return m.SR&FlagZ == 0 && (m.SR&FlagN != 0) == (m.SR&FlagV != 0)
		}
	case BGE:
		return func(m *Machine) bool { return (m.SR&FlagN != 0) == (m.SR&FlagV != 0) }
	case BHI:
		return func(m *Machine) bool { return m.SR&(FlagC|FlagZ) == 0 }
	case BLS:
		return func(m *Machine) bool { return m.SR&(FlagC|FlagZ) != 0 }
	case BCC:
		return func(m *Machine) bool { return m.SR&FlagC == 0 }
	case BCS:
		return func(m *Machine) bool { return m.SR&FlagC != 0 }
	case BMI:
		return func(m *Machine) bool { return m.SR&FlagN != 0 }
	case BPL:
		return func(m *Machine) bool { return m.SR&FlagN == 0 }
	}
	return func(*Machine) bool { return false }
}

// cJumpTarget compiles a JMP/JSR target resolution, mirroring
// Machine.jumpTarget.
func cJumpTarget(o Operand) readFn {
	switch o.Mode {
	case ModeAbs, ModeImm:
		t := uint32(o.Imm)
		return func(*Machine) (uint32, error) { return t, nil }
	case ModeAReg, ModeInd:
		r := o.Reg
		return func(m *Machine) (uint32, error) { return m.A[r], nil }
	case ModeDReg:
		r := o.Reg
		return func(m *Machine) (uint32, error) { return m.D[r], nil }
	case ModeDisp:
		r, d := o.Reg, uint32(o.Imm)
		return func(m *Machine) (uint32, error) { return m.A[r] + d, nil }
	default:
		// Indirect through memory: the executable-data-structure ready
		// queue jumps through addresses stored in TTEs.
		ea := cEA(o, 4)
		return func(m *Machine) (uint32, error) {
			addr, err := ea(m)
			if err != nil {
				return 0, err
			}
			return m.Load(addr, 4)
		}
	}
}

// cSlow defers to the reference switch interpreter, re-reading the
// instruction from code space at run time (never a cached pointer:
// AllocCode may have reallocated the backing array since translate).
// Used for ops off the hot path, where specialization buys nothing
// and the duplicated logic would be pure risk.
func cSlow(pc uint32) runFn {
	return func(m *Machine) error { return m.exec(&m.Code[pc]) }
}

// cRMW compiles the generic read-modify-write fallback over a copied
// operand (exactly Machine.rmw, including the address-register case),
// for specialized handlers whose destination is not a data register.
func cRMW(o Operand, sz uint8) func(m *Machine, f func(uint32) uint32) (old, nw uint32, err error) {
	dst := o
	return func(m *Machine, f func(uint32) uint32) (uint32, uint32, error) {
		return m.rmw(&dst, sz, f)
	}
}

// compile translates one instruction into its handler. The handler
// captures only values (never pointers into m.Code), so a cached
// translation is correct until its cache line is invalidated.
func compile(in *Instr, pc uint32) runFn {
	sz := in.Size()
	mask, sign := maskFor(sz)
	switch in.Op {
	case NOP:
		return func(*Machine) error { return nil }

	case MOVE:
		rd := cRead(in.Src, sz)
		if in.Dst.Mode == ModeAReg {
			r := in.Dst.Reg
			return func(m *Machine) error {
				v, err := rd(m)
				if err != nil {
					return err
				}
				m.A[r] = v
				return nil
			}
		}
		wr := cWrite(in.Dst, sz)
		return func(m *Machine) error {
			v, err := rd(m)
			if err != nil {
				return err
			}
			if err := wr(m, v); err != nil {
				return err
			}
			m.setNZMask(v, mask, sign)
			return nil
		}

	case LEA:
		ea := cEA(in.Src, sz)
		r := in.Dst.Reg
		return func(m *Machine) error {
			addr, err := ea(m)
			if err != nil {
				return err
			}
			m.A[r] = addr
			return nil
		}

	case PEA:
		ea := cEA(in.Src, sz)
		return func(m *Machine) error {
			addr, err := ea(m)
			if err != nil {
				return err
			}
			return m.push(addr)
		}

	case CLR:
		wr := cWrite(in.Dst, sz)
		return func(m *Machine) error {
			if err := wr(m, 0); err != nil {
				return err
			}
			m.SR = m.SR&^(FlagN|FlagZ|FlagV|FlagC) | FlagZ
			return nil
		}

	case ADD, SUB:
		rd := cRead(in.Src, sz)
		sub := in.Op == SUB
		switch in.Dst.Mode {
		case ModeDReg:
			r := in.Dst.Reg
			return func(m *Machine) error {
				s, err := rd(m)
				if err != nil {
					return err
				}
				old := m.D[r] & mask
				var nw uint32
				if sub {
					nw = old - s
				} else {
					nw = old + s
				}
				m.D[r] = m.D[r]&^mask | nw&mask
				if sub {
					m.setSubFlagsMask(old, s, nw, mask, sign)
				} else {
					m.setAddFlagsMask(old, s, nw, mask, sign)
				}
				return nil
			}
		case ModeAReg:
			r := in.Dst.Reg
			return func(m *Machine) error {
				s, err := rd(m)
				if err != nil {
					return err
				}
				if sub {
					m.A[r] -= s
				} else {
					m.A[r] += s
				}
				return nil
			}
		case ModeInd:
			r, s8 := in.Dst.Reg, sz
			return func(m *Machine) error {
				s, err := rd(m)
				if err != nil {
					return err
				}
				addr := m.A[r]
				if err := m.checkUserAccess(addr); err != nil {
					return err
				}
				old, err := m.Load(addr, s8)
				if err != nil {
					return err
				}
				var nw uint32
				if sub {
					nw = old - s
				} else {
					nw = old + s
				}
				if err := m.Store(addr, s8, nw); err != nil {
					return err
				}
				if sub {
					m.setSubFlagsMask(old, s, nw, mask, sign)
				} else {
					m.setAddFlagsMask(old, s, nw, mask, sign)
				}
				return nil
			}
		default:
			ea := cEA(in.Dst, sz)
			s8 := sz
			return func(m *Machine) error {
				s, err := rd(m)
				if err != nil {
					return err
				}
				addr, err := ea(m)
				if err != nil {
					return err
				}
				if err := m.checkUserAccess(addr); err != nil {
					return err
				}
				old, err := m.Load(addr, s8)
				if err != nil {
					return err
				}
				var nw uint32
				if sub {
					nw = old - s
				} else {
					nw = old + s
				}
				if err := m.Store(addr, s8, nw); err != nil {
					return err
				}
				if sub {
					m.setSubFlagsMask(old, s, nw, mask, sign)
				} else {
					m.setAddFlagsMask(old, s, nw, mask, sign)
				}
				return nil
			}
		}

	case MULU, DIVU:
		rd := cRead(in.Src, sz)
		div := in.Op == DIVU
		if in.Dst.Mode == ModeDReg {
			r := in.Dst.Reg
			return func(m *Machine) error {
				s, err := rd(m)
				if err != nil {
					return err
				}
				if div {
					if s == 0 {
						return m.Exception(VecZeroDivide)
					}
				}
				old := m.D[r]
				var nw uint32
				if div {
					nw = old / s
				} else {
					nw = old * s
				}
				m.D[r] = nw
				m.setNZMask(nw, 0xffff_ffff, 0x8000_0000)
				return nil
			}
		}
		rmw := cRMW(in.Dst, 4)
		return func(m *Machine) error {
			s, err := rd(m)
			if err != nil {
				return err
			}
			if div && s == 0 {
				return m.Exception(VecZeroDivide)
			}
			var f func(uint32) uint32
			if div {
				f = func(o uint32) uint32 { return o / s }
			} else {
				f = func(o uint32) uint32 { return o * s }
			}
			_, nw, err := rmw(m, f)
			if err != nil {
				return err
			}
			m.setNZ(nw, 4)
			return nil
		}

	case AND, OR, EOR:
		rd := cRead(in.Src, sz)
		op := in.Op
		if in.Dst.Mode == ModeDReg {
			r := in.Dst.Reg
			return func(m *Machine) error {
				s, err := rd(m)
				if err != nil {
					return err
				}
				old := m.D[r] & mask
				var nw uint32
				switch op {
				case AND:
					nw = old & s
				case OR:
					nw = old | s
				default:
					nw = old ^ s
				}
				m.D[r] = m.D[r]&^mask | nw&mask
				m.setNZMask(nw, mask, sign)
				return nil
			}
		}
		rmw := cRMW(in.Dst, sz)
		return func(m *Machine) error {
			s, err := rd(m)
			if err != nil {
				return err
			}
			_, nw, err := rmw(m, func(o uint32) uint32 {
				switch op {
				case AND:
					return o & s
				case OR:
					return o | s
				default:
					return o ^ s
				}
			})
			if err != nil {
				return err
			}
			m.setNZMask(nw, mask, sign)
			return nil
		}

	case NOT:
		if in.Dst.Mode == ModeDReg {
			r := in.Dst.Reg
			return func(m *Machine) error {
				nw := ^(m.D[r] & mask)
				m.D[r] = m.D[r]&^mask | nw&mask
				m.setNZMask(nw, mask, sign)
				return nil
			}
		}
		rmw := cRMW(in.Dst, sz)
		return func(m *Machine) error {
			_, nw, err := rmw(m, func(o uint32) uint32 { return ^o })
			if err != nil {
				return err
			}
			m.setNZMask(nw, mask, sign)
			return nil
		}

	case NEG:
		if in.Dst.Mode == ModeDReg {
			r := in.Dst.Reg
			return func(m *Machine) error {
				old := m.D[r] & mask
				nw := -old
				m.D[r] = m.D[r]&^mask | nw&mask
				m.setSubFlagsMask(0, old, nw, mask, sign)
				return nil
			}
		}
		rmw := cRMW(in.Dst, sz)
		return func(m *Machine) error {
			old, nw, err := rmw(m, func(o uint32) uint32 { return -o })
			if err != nil {
				return err
			}
			m.setSubFlagsMask(0, old, nw, mask, sign)
			return nil
		}

	case EXT:
		r := in.Dst.Reg
		s8 := sz
		return func(m *Machine) error {
			v := m.D[r]
			switch s8 {
			case 1:
				v = uint32(int32(int8(v)))
			case 2:
				v = uint32(int32(int16(v)))
			}
			m.D[r] = v
			m.setNZMask(v, 0xffff_ffff, 0x8000_0000)
			return nil
		}

	case LSL, LSR, ASR:
		rd := cRead(in.Src, sz)
		var sh func(o, s uint32) uint32
		switch in.Op {
		case LSL:
			sh = func(o, s uint32) uint32 { return o << s }
		case LSR:
			sh = func(o, s uint32) uint32 { return (o & mask) >> s }
		default: // ASR: arithmetic shift at the operand width
			switch sz {
			case 1:
				sh = func(o, s uint32) uint32 { return uint32(int32(int8(o)) >> s) }
			case 2:
				sh = func(o, s uint32) uint32 { return uint32(int32(int16(o)) >> s) }
			default:
				sh = func(o, s uint32) uint32 { return uint32(int32(o) >> s) }
			}
		}
		if in.Dst.Mode == ModeDReg {
			r := in.Dst.Reg
			return func(m *Machine) error {
				s, err := rd(m)
				if err != nil {
					return err
				}
				s &= 63
				m.Cycles += uint64(s) / 2 // shifts cost ~2 cycles per 4 bits
				nw := sh(m.D[r]&mask, s)
				m.D[r] = m.D[r]&^mask | nw&mask
				m.setNZMask(nw, mask, sign)
				return nil
			}
		}
		rmw := cRMW(in.Dst, sz)
		return func(m *Machine) error {
			s, err := rd(m)
			if err != nil {
				return err
			}
			s &= 63
			m.Cycles += uint64(s) / 2
			_, nw, err := rmw(m, func(o uint32) uint32 { return sh(o, s) })
			if err != nil {
				return err
			}
			m.setNZMask(nw, mask, sign)
			return nil
		}

	case CMP:
		rs := cRead(in.Src, sz)
		rdd := cRead(in.Dst, sz)
		return func(m *Machine) error {
			s, err := rs(m)
			if err != nil {
				return err
			}
			d, err := rdd(m)
			if err != nil {
				return err
			}
			m.setSubFlagsMask(d, s, d-s, mask, sign)
			return nil
		}

	case TST:
		rd := cRead(in.Src, sz)
		return func(m *Machine) error {
			v, err := rd(m)
			if err != nil {
				return err
			}
			m.setNZMask(v, mask, sign)
			return nil
		}

	case BTST:
		rd := cRead(in.Src, 4)
		rdd := cRead(in.Dst, sz)
		width := uint32(sz) * 8
		return func(m *Machine) error {
			bitn, err := rd(m)
			if err != nil {
				return err
			}
			bit := uint32(1) << (bitn % width)
			v, err := rdd(m)
			if err != nil {
				return err
			}
			m.SR &^= FlagZ
			if v&bit == 0 {
				m.SR |= FlagZ
			}
			return nil
		}

	case BSET, BCLR:
		rd := cRead(in.Src, 4)
		rmw := cRMW(in.Dst, sz)
		set := in.Op == BSET
		width := uint32(sz) * 8
		return func(m *Machine) error {
			bitn, err := rd(m)
			if err != nil {
				return err
			}
			bit := uint32(1) << (bitn % width)
			old, _, err := rmw(m, func(o uint32) uint32 {
				if set {
					return o | bit
				}
				return o &^ bit
			})
			if err != nil {
				return err
			}
			m.SR &^= FlagZ
			if old&bit == 0 {
				m.SR |= FlagZ
			}
			return nil
		}

	case TAS:
		rmw := cRMW(in.Dst, 1)
		return func(m *Machine) error {
			old, _, err := rmw(m, func(o uint32) uint32 { return o | 0x80 })
			if err != nil {
				return err
			}
			m.setNZMask(old, 0xff, 0x80)
			return nil
		}

	case BRA:
		tgt := uint32(in.Dst.Imm)
		return func(m *Machine) error {
			m.Cycles += cycBranchTak - cycReg
			m.PC = tgt
			return nil
		}

	case BEQ, BNE, BLT, BLE, BGT, BGE, BHI, BLS, BCC, BCS, BMI, BPL:
		cond := cCond(in.Op)
		tgt := uint32(in.Dst.Imm)
		return func(m *Machine) error {
			if cond(m) {
				m.Cycles += cycBranchTak - cycReg
				m.PC = tgt
			} else {
				m.Cycles += cycBranchNot - cycReg
			}
			return nil
		}

	case DBRA:
		r := in.Src.Reg
		tgt := uint32(in.Dst.Imm)
		return func(m *Machine) error {
			m.D[r]--
			if m.D[r] != 0xffff_ffff {
				m.Cycles += cycDBRATaken - cycReg
				m.PC = tgt
			} else {
				m.Cycles += cycDBRAExit - cycReg
			}
			return nil
		}

	case JMP:
		tf := cControlTarget(in)
		return func(m *Machine) error {
			t, err := tf(m)
			if err != nil {
				return err
			}
			m.PC = t
			return nil
		}

	case JSR:
		tf := cControlTarget(in)
		return func(m *Machine) error {
			t, err := tf(m)
			if err != nil {
				return err
			}
			if err := m.push(m.PC); err != nil {
				return err
			}
			m.PC = t
			return nil
		}

	case RTS:
		return func(m *Machine) error {
			pc, err := m.pop()
			if err != nil {
				return err
			}
			m.PC = pc
			return nil
		}

	case HALT:
		return func(m *Machine) error {
			m.halted = true
			return ErrHalted
		}

	case KCALL:
		vec := in.Vec
		return func(m *Machine) error {
			s := m.services[vec]
			if s == nil {
				return m.Exception(VecIllegal)
			}
			m.Cycles += s(m)
			return nil
		}
	}

	// Everything else — exception returns, traps, supervisor state,
	// block moves, FP, CAS — executes through the reference switch.
	return cSlow(pc)
}

// cControlTarget compiles JMP/JSR target resolution, mirroring
// Machine.controlTarget: a populated Src operand selects the 68020
// memory-indirect form.
func cControlTarget(in *Instr) readFn {
	if in.Src.Mode != ModeNone {
		ea := cEA(in.Src, 4)
		return func(m *Machine) (uint32, error) {
			addr, err := ea(m)
			if err != nil {
				return 0, err
			}
			return m.Load(addr, 4)
		}
	}
	return cJumpTarget(in.Dst)
}
