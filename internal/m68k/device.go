package m68k

// The Quamachine's unusual I/O complement (Section 6.1): a console
// tty, a hard disk, a two-channel analog input sampler (the A/D that
// interrupts 44,100 times per second in Section 5.4), and an interval
// timer with microsecond resolution used both for scheduling quanta
// and alarms. All devices are memory mapped in the window starting at
// IOBase.

// Device window bases. Each device gets a 256-byte register window.
const (
	IOBase    uint32 = 0x00f0_0000
	TimerBase        = IOBase + 0x000
	TTYBase          = IOBase + 0x100
	DiskBase         = IOBase + 0x200
	ADBase           = IOBase + 0x300
	ConsBase         = IOBase + 0x400
)

// Interrupt priority levels, descending urgency per the 68k scheme.
const (
	IRQTimer = 6 // quantum expiry: vectors straight to the thread's sw_out
	IRQTTY   = 5
	IRQAD    = 4
	IRQDisk  = 3
	IRQAlarm = 2 // alarm channel of the interval timer
)

// ---------------------------------------------------------------- timer

// Timer register offsets.
const (
	TimerRegQuantum uint32 = 0x00 // write: cycles until quantum interrupt (0 disables)
	TimerRegAlarm   uint32 = 0x04 // write: cycles until alarm interrupt (0 disables)
	TimerRegNowLo   uint32 = 0x08 // read: low 32 bits of cycle counter
	TimerRegNowHi   uint32 = 0x0c // read: high 32 bits of cycle counter
	TimerRegAck     uint32 = 0x10 // read: pending cause bits, cleared on read
)

// Timer cause bits delivered through TimerRegAck.
const (
	TimerCauseQuantum = 1 << 0
	TimerCauseAlarm   = 1 << 1
)

// Timer is the interval timer: one channel drives the scheduler
// quantum (IRQ 6, one-shot, re-armed by each thread's sw_in), a
// second channel drives alarms (IRQ 2; Table 5: set alarm, alarm
// interrupt).
type Timer struct {
	m        *Machine
	quantumA uint64 // absolute cycle of next quantum interrupt (0 = off)
	alarmA   uint64
	qPend    bool
	aPend    bool
	cause    uint32
}

// NewTimer creates the interval timer for machine m.
func NewTimer(m *Machine) *Timer { return &Timer{m: m} }

// Name implements Device.
func (t *Timer) Name() string { return "timer" }

// Base implements Device.
func (t *Timer) Base() uint32 { return TimerBase }

// Size implements Device.
func (t *Timer) Size() uint32 { return 0x100 }

// Load implements Device.
func (t *Timer) Load(off uint32, sz uint8) uint32 {
	switch off {
	case TimerRegNowLo:
		return uint32(t.m.Clock())
	case TimerRegNowHi:
		return uint32(t.m.Clock() >> 32)
	case TimerRegAck:
		c := t.cause
		t.cause = 0
		return c
	}
	return 0
}

// Store implements Device.
func (t *Timer) Store(off uint32, sz uint8, val uint32) {
	switch off {
	case TimerRegQuantum:
		if val == 0 {
			t.quantumA = 0
		} else {
			t.quantumA = t.m.Clock() + t.arm(uint64(val))
		}
	case TimerRegAlarm:
		if val == 0 {
			t.alarmA = 0
		} else {
			t.alarmA = t.m.Clock() + t.arm(uint64(val))
		}
	}
}

// arm runs an arming interval through the fault injector's clock
// jitter, keeping it at least one cycle so an armed channel fires.
func (t *Timer) arm(cycles uint64) uint64 {
	if t.m.Inj != nil {
		cycles = t.m.Inj.TimerArm(cycles)
		if cycles == 0 {
			cycles = 1
		}
	}
	return cycles
}

// Tick implements Device. The two channels assert distinct interrupt
// levels; when both fire in the same instant the quantum goes first
// and the alarm is delivered on an immediate re-tick.
func (t *Timer) Tick(now uint64) (int, uint64) {
	if t.quantumA != 0 && now >= t.quantumA {
		t.quantumA = 0
		t.qPend = true
		t.cause |= TimerCauseQuantum
	}
	if t.alarmA != 0 && now >= t.alarmA {
		t.alarmA = 0
		t.aPend = true
		t.cause |= TimerCauseAlarm
	}
	if t.qPend {
		t.qPend = false
		if t.aPend {
			return IRQTimer, now // re-tick immediately for the alarm
		}
		return IRQTimer, t.nextEvent()
	}
	if t.aPend {
		t.aPend = false
		return IRQAlarm, t.nextEvent()
	}
	return 0, t.nextEvent()
}

func (t *Timer) nextEvent() uint64 {
	next := t.quantumA
	if next == 0 || (t.alarmA != 0 && t.alarmA < next) {
		next = t.alarmA
	}
	return next
}

// ----------------------------------------------------------------- tty

// TTY register offsets.
const (
	TTYRegData   uint32 = 0x00 // read: next input char; write: output char
	TTYRegStatus uint32 = 0x04 // read: bit0 = input ready
)

// TTY is the console serial device. Input characters are queued by
// the host (or by a scripted arrival schedule) and raise IRQ 5 as
// they become available, like a real UART.
type TTY struct {
	m       *Machine
	in      []byte
	inAt    []uint64 // absolute cycle each queued char arrives
	out     []byte
	pending bool
}

// NewTTY creates the console device.
func NewTTY(m *Machine) *TTY { return &TTY{m: m} }

// Name implements Device.
func (t *TTY) Name() string { return "tty" }

// Base implements Device.
func (t *TTY) Base() uint32 { return TTYBase }

// Size implements Device.
func (t *TTY) Size() uint32 { return 0x100 }

// InputNow queues an input character arriving immediately.
func (t *TTY) InputNow(c byte) { t.InputAt(c, t.m.Clock()) }

// InputAt schedules an input character to arrive at the given
// absolute cycle time.
func (t *TTY) InputAt(c byte, at uint64) {
	t.in = append(t.in, c)
	t.inAt = append(t.inAt, at)
	t.m.Kick(t)
}

// InputString schedules a whole string with the given cycle gap
// between characters, starting at cycle start.
func (t *TTY) InputString(s string, start, gap uint64) {
	at := start
	for i := 0; i < len(s); i++ {
		t.InputAt(s[i], at)
		at += gap
	}
}

// Output returns everything written to the tty so far.
func (t *TTY) Output() []byte { return t.out }

// Load implements Device.
func (t *TTY) Load(off uint32, sz uint8) uint32 {
	switch off {
	case TTYRegData:
		if len(t.in) > 0 && t.inAt[0] <= t.m.Clock() {
			c := t.in[0]
			t.in = t.in[1:]
			t.inAt = t.inAt[1:]
			t.pending = false
			return uint32(c)
		}
		return 0
	case TTYRegStatus:
		if len(t.in) > 0 && t.inAt[0] <= t.m.Clock() {
			return 1
		}
		return 0
	}
	return 0
}

// Store implements Device.
func (t *TTY) Store(off uint32, sz uint8, val uint32) {
	if off == TTYRegData {
		t.out = append(t.out, byte(val))
	}
}

// Tick implements Device.
func (t *TTY) Tick(now uint64) (int, uint64) {
	if len(t.in) == 0 {
		t.pending = false
		return 0, 0
	}
	if t.inAt[0] <= now {
		if !t.pending {
			t.pending = true
			return IRQTTY, now + 1
		}
		// Interrupt already raised for the head character; re-check
		// shortly in case it is never consumed before the next one.
		return 0, t.inAt[0] + 1<<16
	}
	return 0, t.inAt[0]
}

// ---------------------------------------------------------------- disk

// Disk register offsets.
const (
	DiskRegBlock  uint32 = 0x00 // write: block number
	DiskRegAddr   uint32 = 0x04 // write: memory address for DMA
	DiskRegCmd    uint32 = 0x08 // write: 1 = read, 2 = write
	DiskRegStatus uint32 = 0x0c // read: bit0 = busy, bit1 = done (clears on read)
)

// DiskBlockSize is the transfer unit.
const DiskBlockSize = 1024

// Disk is a DMA block device with a fixed access latency, standing in
// for the Quamachine's 390 MB hard disk. Transfers complete after
// LatencyCycles and raise IRQ 3.
type Disk struct {
	m             *Machine
	Blocks        [][]byte
	LatencyCycles uint64
	block         uint32
	addr          uint32
	busyUntil     uint64
	cmd           uint32
	done          bool
}

// NewDisk creates a disk with the given number of blocks. The default
// latency models a fast controller with the data already under the
// head (the paper's file benchmarks run from the in-memory cache, so
// disk latency only matters for cache misses).
func NewDisk(m *Machine, blocks int) *Disk {
	d := &Disk{m: m, LatencyCycles: 20000}
	d.Blocks = make([][]byte, blocks)
	for i := range d.Blocks {
		d.Blocks[i] = make([]byte, DiskBlockSize)
	}
	return d
}

// Name implements Device.
func (d *Disk) Name() string { return "disk" }

// Base implements Device.
func (d *Disk) Base() uint32 { return DiskBase }

// Size implements Device.
func (d *Disk) Size() uint32 { return 0x100 }

// Load implements Device.
func (d *Disk) Load(off uint32, sz uint8) uint32 {
	if off == DiskRegStatus {
		var s uint32
		if d.busyUntil != 0 {
			s |= 1
		}
		if d.done {
			s |= 2
			d.done = false
		}
		return s
	}
	return 0
}

// Store implements Device.
func (d *Disk) Store(off uint32, sz uint8, val uint32) {
	switch off {
	case DiskRegBlock:
		d.block = val
	case DiskRegAddr:
		d.addr = val
	case DiskRegCmd:
		d.cmd = val
		d.busyUntil = d.m.Clock() + d.LatencyCycles
	}
}

// Tick implements Device.
func (d *Disk) Tick(now uint64) (int, uint64) {
	if d.busyUntil == 0 {
		return 0, 0
	}
	if now < d.busyUntil {
		return 0, d.busyUntil
	}
	// Complete the transfer by DMA.
	if int(d.block) < len(d.Blocks) {
		switch d.cmd {
		case 1:
			d.m.PokeBytes(d.addr, d.Blocks[d.block])
		case 2:
			copy(d.Blocks[d.block], d.m.PeekBytes(d.addr, DiskBlockSize))
		}
	}
	d.busyUntil = 0
	d.done = true
	return IRQDisk, 0
}

// ----------------------------------------------------------------- A/D

// AD register offsets.
const (
	ADRegData   uint32 = 0x00 // read: latest sample (two 16-bit channels packed)
	ADRegCtl    uint32 = 0x04 // write: 1 = start sampling, 0 = stop
	ADRegStatus uint32 = 0x08 // read: samples dropped because not consumed in time
)

// AD is the two-channel 16-bit analog input sampler. While running it
// raises IRQ 4 once per sample period; the paper's configuration is
// 44,100 interrupts per second (Section 5.4).
type AD struct {
	m       *Machine
	Rate    float64 // samples per second
	running bool
	nextAt  uint64
	seq     uint32
	sample  uint32
	fresh   bool
	Dropped uint64
}

// NewAD creates the sampler at the paper's 44.1 kHz rate.
func NewAD(m *Machine) *AD { return &AD{m: m, Rate: 44100} }

// Name implements Device.
func (a *AD) Name() string { return "ad" }

// Base implements Device.
func (a *AD) Base() uint32 { return ADBase }

// Size implements Device.
func (a *AD) Size() uint32 { return 0x100 }

// periodCycles converts the sample rate to cycles.
func (a *AD) periodCycles() uint64 {
	return uint64(a.m.ClockMHz * 1e6 / a.Rate)
}

// Load implements Device.
func (a *AD) Load(off uint32, sz uint8) uint32 {
	switch off {
	case ADRegData:
		a.fresh = false
		return a.sample
	case ADRegStatus:
		return uint32(a.Dropped)
	}
	return 0
}

// Store implements Device.
func (a *AD) Store(off uint32, sz uint8, val uint32) {
	if off == ADRegCtl {
		if val != 0 && !a.running {
			a.running = true
			a.nextAt = a.m.Clock() + a.periodCycles()
		} else if val == 0 {
			a.running = false
		}
	}
}

// Tick implements Device.
func (a *AD) Tick(now uint64) (int, uint64) {
	if !a.running {
		return 0, 0
	}
	if now < a.nextAt {
		return 0, a.nextAt
	}
	if a.fresh {
		a.Dropped++
	}
	// Two 16-bit channels packed in one 32-bit word: a deterministic
	// synthetic waveform (sawtooth on channel 0, its complement on
	// channel 1) standing in for the analog inputs we do not have.
	a.seq++
	ch0 := a.seq & 0xffff
	ch1 := 0xffff - ch0
	a.sample = ch0<<16 | ch1
	a.fresh = true
	a.nextAt = now + a.periodCycles()
	return IRQAD, a.nextAt
}

// ------------------------------------------------------------- console

// Cons is a write-only debug console, separate from the tty so kernel
// diagnostics do not disturb tty experiments.
type Cons struct {
	out []byte
}

// NewCons creates the debug console.
func NewCons() *Cons { return &Cons{} }

// Name implements Device.
func (c *Cons) Name() string { return "cons" }

// Base implements Device.
func (c *Cons) Base() uint32 { return ConsBase }

// Size implements Device.
func (c *Cons) Size() uint32 { return 0x100 }

// Load implements Device.
func (c *Cons) Load(off uint32, sz uint8) uint32 { return 0 }

// Store implements Device.
func (c *Cons) Store(off uint32, sz uint8, val uint32) {
	if off == 0 {
		c.out = append(c.out, byte(val))
	}
}

// Tick implements Device.
func (c *Cons) Tick(now uint64) (int, uint64) { return 0, 0 }

// Output returns everything written to the console.
func (c *Cons) Output() string { return string(c.out) }
