package m68k

import "testing"

// BenchmarkStepLoop measures host nanoseconds per simulated
// instruction through the full Run path (devices polled, interrupts
// checked) on the canonical mixed program (EmitBenchProgram) — the
// number Table 11 ("mips") regression-tracks. The committed
// pre-dispatch measurement was 31.64 ns/instr (switch interpreter,
// commit b5e4f6b).
func BenchmarkStepLoop(b *testing.B) {
	m := New(Config{})
	entry := EmitBenchProgram(m)
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		m.ClearHalt()
		m.stopped = false
		m.PC = entry
		i0 := m.Instrs
		if err := m.Run(1 << 40); err != ErrHalted {
			b.Fatal(err)
		}
		instrs += m.Instrs - i0
	}
	b.StopTimer()
	if instrs > 0 {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
	}
}
