package m68k

// The network interface: a DMA frame device in the style of the
// Quamachine's disk controller, rounding out the device complement for
// packet I/O. Transmit is a two-register fire: software stages a frame
// anywhere in memory, writes its address and then its length (the
// length store launches the frame). Receive is a descriptor ring:
// software hands the device a ring of fixed-size slots in machine
// memory and the device DMAs each arriving frame into the next free
// slot — [length (4)][frame bytes] — advancing a free-running head
// count and raising IRQNet. Software consumes slots in order and
// returns them by advancing the tail register.
//
// Wiring is a loopback link: a NIC delivers into its peer, which by
// default is itself, so two sockets on one machine exchange frames;
// ConnectNet cross-wires two machines.

// NetBase is the NIC's 256-byte register window.
const NetBase = IOBase + 0x500

// IRQNet is the NIC's interrupt priority: below the disk — bulk frame
// DMA tolerates latency that the byte-at-a-time devices do not.
const IRQNet = 1

// NIC register offsets.
const (
	NetRegTxAddr  uint32 = 0x00 // write: staged frame address
	NetRegTxLen   uint32 = 0x04 // write: frame length; the store launches the frame
	NetRegRxBase  uint32 = 0x08 // write: receive ring base address
	NetRegRxSlots uint32 = 0x0c // write: ring slot count (power of two)
	NetRegSlotSz  uint32 = 0x10 // write: bytes per ring slot
	NetRegCtl     uint32 = 0x14 // write: bit0 = receive enable
	NetRegRxHead  uint32 = 0x18 // read: frames DMA'd so far (free-running)
	NetRegRxTail  uint32 = 0x1c // write: frames consumed so far (frees slots)
	NetRegTxCount uint32 = 0x20 // read: frames launched so far
	NetRegDrops   uint32 = 0x24 // read: frames dropped (ring full/oversize/disabled)
	NetRegTxStat  uint32 = 0x28 // read: 1 = last launched frame was accepted by the receiver
)

// Net is the network interface device.
type Net struct {
	m *Machine

	// LatencyCycles delays the receive interrupt after a frame lands.
	// The default of zero models cut-through loopback: the frame is in
	// the ring before the transmitting store completes.
	LatencyCycles uint64

	// Tx, when set, intercepts every launched frame instead of the
	// peer/loopback delivery: this is how a switch fabric attaches a
	// NIC to N peers instead of one. Its return value reports whether
	// the fabric accepted the frame and lands in NetRegTxStat, so the
	// synthesized send's retry/backoff sees fabric backpressure exactly
	// as it sees a full peer ring. The frame slice is freshly allocated
	// per launch (PeekBytes copies), so the hook may retain it.
	Tx func(frame []byte) bool

	peer *Net // delivery target; nil = self (loopback)

	txAddr  uint32
	rxBase  uint32
	rxSlots uint32
	slotSz  uint32
	enabled bool

	rxHead uint32 // free-running count of frames DMA'd in
	rxTail uint32 // free-running count of frames consumed
	txCnt  uint32
	drops  uint32
	txStat uint32 // 1 after a launch the receiving ring accepted

	irqAt uint64 // absolute cycle of the pending receive interrupt (0 = none)
}

// NewNet creates a NIC looped back onto itself.
func NewNet(m *Machine) *Net { return &Net{m: m} }

// ConnectNet cross-wires two NICs (typically on two machines): frames
// launched on one land in the other's receive ring.
func ConnectNet(a, b *Net) {
	a.peer = b
	b.peer = a
}

// Name implements Device.
func (n *Net) Name() string { return "net" }

// Base implements Device.
func (n *Net) Base() uint32 { return NetBase }

// Size implements Device.
func (n *Net) Size() uint32 { return 0x100 }

// Load implements Device.
func (n *Net) Load(off uint32, sz uint8) uint32 {
	switch off {
	case NetRegRxHead:
		return n.rxHead
	case NetRegTxCount:
		return n.txCnt
	case NetRegDrops:
		return n.drops
	case NetRegTxStat:
		return n.txStat
	}
	return 0
}

// Store implements Device.
func (n *Net) Store(off uint32, sz uint8, val uint32) {
	switch off {
	case NetRegTxAddr:
		n.txAddr = val
	case NetRegTxLen:
		n.txCnt++
		frame := n.m.PeekBytes(n.txAddr, int(val))
		if n.Tx != nil {
			if n.Tx(frame) {
				n.txStat = 1
			} else {
				n.txStat = 0
			}
			return
		}
		target := n.peer
		if target == nil {
			target = n
		}
		if target.Deliver(frame) {
			n.txStat = 1
		} else {
			n.txStat = 0
		}
	case NetRegRxBase:
		n.rxBase = val
	case NetRegRxSlots:
		n.rxSlots = val
	case NetRegSlotSz:
		n.slotSz = val
	case NetRegCtl:
		n.enabled = val&1 != 0
	case NetRegRxTail:
		// The tail only ever moves forward, and never past the head: a
		// preempted handler activation may publish a stale (old) tail
		// long after its siblings advanced it, and a runaway driver
		// could overshoot the head — either store, taken literally,
		// wedges the ring-fullness arithmetic (rxHead - rxTail) for
		// good. Taken as free-running counts, "forward but not past
		// the head" is the whole legal range.
		if int32(val-n.rxTail) > 0 && int32(n.rxHead-val) >= 0 {
			n.rxTail = val
		}
	}
}

// Deliver puts a frame on the wire toward this NIC's receive ring and
// schedules the receive interrupt. An attached fault injector sees the
// frame first and may lose, corrupt, duplicate or delay it. Deliver
// reports whether the receive ring accepted every frame that survived
// the wire: ring backpressure is visible to the transmitter (via
// NetRegTxStat), silent wire loss is not — that is what checksums and
// retransmission are for. InjectFrame is the host-facing alias for
// tests and traffic generators.
func (n *Net) Deliver(frame []byte) bool {
	if n.m.Inj != nil {
		out, delay := n.m.Inj.Frame(frame)
		ok := true
		for _, f := range out {
			if !n.deliverRaw(f, delay) {
				ok = false
			}
		}
		return ok
	}
	return n.deliverRaw(frame, 0)
}

// deliverRaw DMAs one post-injection frame into the receive ring.
func (n *Net) deliverRaw(frame []byte, delay uint64) bool {
	if !n.enabled || n.rxSlots == 0 || n.slotSz == 0 ||
		uint32(len(frame))+4 > n.slotSz ||
		n.rxHead-n.rxTail >= n.rxSlots ||
		(n.m.Inj != nil && n.m.Inj.RingFull()) {
		n.drops++
		return false
	}
	slot := n.rxBase + (n.rxHead&(n.rxSlots-1))*n.slotSz
	n.m.Poke(slot, 4, uint32(len(frame)))
	n.m.PokeBytes(slot+4, frame)
	// The DMA engine writes whole long words: zero the pad up to the
	// next long boundary so a long-wise payload checksum over the slot
	// never reads a stale byte from an earlier, longer frame.
	for off := uint32(len(frame)); off%4 != 0; off++ {
		n.m.Poke(slot+4+off, 1, 0)
	}
	n.rxHead++
	if n.irqAt == 0 {
		n.irqAt = n.m.Clock() + n.LatencyCycles + delay
		if n.irqAt == 0 {
			n.irqAt = 1 // cycle 0 would read as "no interrupt pending"
		}
	}
	n.m.Kick(n)
	return true
}

// InjectFrame delivers a frame as if it arrived from the network.
func (n *Net) InjectFrame(frame []byte) bool { return n.Deliver(frame) }

// RxPending returns how many DMA'd frames await consumption (host
// view, for tests).
func (n *Net) RxPending() uint32 { return n.rxHead - n.rxTail }

// TxLaunched returns the free-running launched-frame count (host
// view): a delta across an execution chunk tells a driving harness
// whether the guest transmitted, i.e. whether the VM is doing useful
// network work or idling.
func (n *Net) TxLaunched() uint32 { return n.txCnt }

// Dropped returns the drop count (host view).
func (n *Net) Dropped() uint32 { return n.drops }

// Tick implements Device: one interrupt per delivery batch — the
// handler drains every frame up to the head count, so a new interrupt
// is only scheduled by the next Deliver.
func (n *Net) Tick(now uint64) (int, uint64) {
	if n.irqAt == 0 {
		return 0, 0
	}
	if now < n.irqAt {
		return 0, n.irqAt
	}
	n.irqAt = 0
	return IRQNet, 0
}
