package m68k

import (
	"errors"
	"math"
)

// ErrIdle is returned when the CPU is stopped waiting for an
// interrupt and no device has a scheduled event: simulated deadlock.
var ErrIdle = errors.New("m68k: stopped with no pending device events")

// Step executes one instruction (or dispatches one interrupt, or
// advances stopped time to the next device event). With a probe
// attached, each step's cycle and instruction delta is reported
// against the PC the step began at; without one, the wrapper is a
// single nil check.
func (m *Machine) Step() error {
	if m.Probe == nil {
		return m.step()
	}
	pc, c0, i0, idle := m.PC, m.Cycles, m.Instrs, m.stopped
	m.inStep = true
	err := m.step()
	m.inStep = false
	m.Probe.StepDone(pc, m.Cycles-c0, m.Instrs-i0, idle)
	return err
}

func (m *Machine) step() error {
	if m.halted {
		return ErrHalted
	}
	// Device poll fast path: nextPoll is a conservative lower bound on
	// the earliest pending device event (see tickDevice), so a single
	// compare replaces the per-device scan on the vast majority of
	// steps without ever missing a due tick.
	if m.nextPoll != 0 && m.nextPoll <= m.Cycles {
		m.pollDevices()
	}
	if m.pendIRQ != 0 {
		took, err := m.takeInterrupt()
		if err != nil {
			return err
		}
		if took {
			return nil
		}
	}
	if m.stopped {
		next := m.nextDeviceEvent()
		if next == 0 {
			return ErrIdle
		}
		if next > m.Cycles {
			m.Cycles = next
		}
		m.pollDevices()
		return nil
	}
	pc := m.PC
	if int(pc) >= len(m.Code) {
		return m.fault(&BusFault{Addr: pc, PC: pc})
	}
	e := &m.xcache[pc]
	if e.run == nil {
		m.translate(pc, e)
	}
	// Copy the cache line before running it: the handler itself may
	// grow code space (KCALL services synthesize code), reallocating
	// the xcache backing array out from under the pointer.
	run, op := e.run, e.op
	m.PC++
	m.Instrs++
	m.Cycles += e.cost
	if m.Trace != nil {
		m.Trace.Record(pc, m.Code[pc], m.Cycles)
	}
	traced := m.SR&FlagT != 0
	if err := run(m); err != nil {
		var bf *BusFault
		if errors.As(err, &bf) {
			return m.fault(bf)
		}
		return err
	}
	// Trace exception after the traced instruction completes (the
	// debugger's step system call runs a stopped thread for exactly
	// one instruction this way, Section 4.3). RTE itself is not
	// traced so the stepper can return to the stepped thread cleanly.
	if traced && m.SR&FlagT != 0 && op != RTE {
		return m.Exception(VecTrace)
	}
	return nil
}

// fault converts a bus fault into a VM bus-error exception. If
// vectoring itself faults (no usable vector table) the fault is
// returned to the host: a double fault halts the simulation.
func (m *Machine) fault(bf *BusFault) error {
	if err := m.Exception(VecBusError); err != nil {
		m.halted = true
		return bf
	}
	return nil
}

// nextDeviceEvent returns the earliest scheduled device event time,
// or 0 if none.
func (m *Machine) nextDeviceEvent() uint64 {
	var next uint64
	for _, n := range m.devNext {
		if n != 0 && (next == 0 || n < next) {
			next = n
		}
	}
	return next
}

// Run executes until HALT, an unrecoverable error, or the cycle
// budget is exhausted.
//
// The loop body open-codes step()'s common case — translated handler,
// no probe, no pending interrupt, no due device event, trace bit
// clear — so the hot path runs with zero call frames between
// instructions. Anything off that path (and the first execution of
// every PC) falls through to Step(), the reference path; the two must
// stay behaviorally identical.
func (m *Machine) Run(maxCycles uint64) error {
	limit := m.Cycles + maxCycles
	for {
		if m.Probe == nil && !m.halted && !m.stopped && m.pendIRQ == 0 &&
			(m.nextPoll == 0 || m.nextPoll > m.Cycles) &&
			m.SR&FlagT == 0 && int(m.PC) < len(m.Code) {
			pc := m.PC
			if e := &m.xcache[pc]; e.run != nil {
				run := e.run
				m.PC++
				m.Instrs++
				m.Cycles += e.cost
				if m.Trace != nil {
					m.Trace.Record(pc, m.Code[pc], m.Cycles)
				}
				if err := run(m); err != nil {
					var bf *BusFault
					if !errors.As(err, &bf) {
						return err
					}
					if err := m.fault(bf); err != nil {
						return err
					}
				}
				if m.Cycles >= limit {
					return ErrCycleLimit
				}
				continue
			}
		}
		if err := m.Step(); err != nil {
			return err
		}
		if m.Cycles >= limit {
			return ErrCycleLimit
		}
	}
}

// RunUntil executes until the PC reaches target in non-supervisor...
// (diagnostic helper) until the given code address is about to
// execute, or the cycle budget is exhausted.
func (m *Machine) RunUntil(target uint32, maxCycles uint64) error {
	limit := m.Cycles + maxCycles
	for m.PC != target {
		if err := m.Step(); err != nil {
			return err
		}
		if m.Cycles >= limit {
			return ErrCycleLimit
		}
	}
	return nil
}

func trunc(v uint32, sz uint8) uint32 {
	switch sz {
	case 1:
		return v & 0xff
	case 2:
		return v & 0xffff
	default:
		return v
	}
}

func signBit(v uint32, sz uint8) bool {
	switch sz {
	case 1:
		return v&0x80 != 0
	case 2:
		return v&0x8000 != 0
	default:
		return v&0x8000_0000 != 0
	}
}

func (m *Machine) setNZ(v uint32, sz uint8) {
	m.SR &^= FlagN | FlagZ | FlagV | FlagC
	if trunc(v, sz) == 0 {
		m.SR |= FlagZ
	}
	if signBit(v, sz) {
		m.SR |= FlagN
	}
}

// setAddFlags sets CCR after r = a + b.
func (m *Machine) setAddFlags(a, b, r uint32, sz uint8) {
	m.SR &^= FlagN | FlagZ | FlagV | FlagC | FlagX
	a, b, r = trunc(a, sz), trunc(b, sz), trunc(r, sz)
	if r == 0 {
		m.SR |= FlagZ
	}
	if signBit(r, sz) {
		m.SR |= FlagN
	}
	if signBit(a, sz) == signBit(b, sz) && signBit(r, sz) != signBit(a, sz) {
		m.SR |= FlagV
	}
	// Unsigned carry: r < a means the add wrapped (b is truncated to
	// the operand size, so r == a happens only when b == 0).
	if r < a {
		m.SR |= FlagC | FlagX
	}
}

// setSubFlags sets CCR after r = a - b (also used by CMP with a=dst,
// b=src).
func (m *Machine) setSubFlags(a, b, r uint32, sz uint8) {
	m.SR &^= FlagN | FlagZ | FlagV | FlagC | FlagX
	a, b, r = trunc(a, sz), trunc(b, sz), trunc(r, sz)
	if r == 0 {
		m.SR |= FlagZ
	}
	if signBit(r, sz) {
		m.SR |= FlagN
	}
	if signBit(a, sz) != signBit(b, sz) && signBit(r, sz) == signBit(b, sz) {
		m.SR |= FlagV
	}
	if b > a {
		m.SR |= FlagC | FlagX
	}
}

func (m *Machine) condition(op Op) bool {
	n := m.SR&FlagN != 0
	z := m.SR&FlagZ != 0
	v := m.SR&FlagV != 0
	c := m.SR&FlagC != 0
	switch op {
	case BRA:
		return true
	case BEQ:
		return z
	case BNE:
		return !z
	case BLT:
		return n != v
	case BLE:
		return z || n != v
	case BGT:
		return !z && n == v
	case BGE:
		return n == v
	case BHI:
		return !c && !z
	case BLS:
		return c || z
	case BCC:
		return !c
	case BCS:
		return c
	case BMI:
		return n
	case BPL:
		return !n
	}
	return false
}

// ea computes the memory address of a memory-mode operand, applying
// post-increment/pre-decrement side effects.
func (m *Machine) ea(o *Operand, sz uint8) (uint32, error) {
	switch o.Mode {
	case ModeInd:
		return m.A[o.Reg], nil
	case ModePostInc:
		a := m.A[o.Reg]
		m.A[o.Reg] += uint32(sz)
		return a, nil
	case ModePreDec:
		m.A[o.Reg] -= uint32(sz)
		return m.A[o.Reg], nil
	case ModeDisp:
		return m.A[o.Reg] + uint32(o.Imm), nil
	case ModeIdx:
		idx := m.D[o.Idx&7]
		if o.Idx >= 8 {
			idx = m.A[o.Idx&7]
		}
		scale := uint32(o.Scale)
		if scale == 0 {
			scale = 1
		}
		return m.A[o.Reg] + uint32(o.Imm) + idx*scale, nil
	case ModeAbs:
		return uint32(o.Imm), nil
	}
	return 0, &BusFault{Addr: 0xffff_ffff, PC: m.PC}
}

// checkUserAccess enforces the quaspace bounds in user state.
func (m *Machine) checkUserAccess(addr uint32) error {
	if m.SR&FlagS == 0 && m.ULimit != 0 {
		if addr < m.UBase || addr >= m.ULimit {
			return &BusFault{Addr: addr, PC: m.PC}
		}
	}
	return nil
}

func (m *Machine) readOp(o *Operand, sz uint8) (uint32, error) {
	switch o.Mode {
	case ModeImm:
		return trunc(uint32(o.Imm), sz), nil
	case ModeDReg:
		return trunc(m.D[o.Reg], sz), nil
	case ModeAReg:
		return m.A[o.Reg], nil
	default:
		addr, err := m.ea(o, sz)
		if err != nil {
			return 0, err
		}
		if err := m.checkUserAccess(addr); err != nil {
			return 0, err
		}
		return m.Load(addr, sz)
	}
}

func (m *Machine) writeReg(o *Operand, sz uint8, v uint32) {
	if o.Mode == ModeAReg {
		m.A[o.Reg] = v
		return
	}
	switch sz {
	case 1:
		m.D[o.Reg] = m.D[o.Reg]&^0xff | v&0xff
	case 2:
		m.D[o.Reg] = m.D[o.Reg]&^0xffff | v&0xffff
	default:
		m.D[o.Reg] = v
	}
}

func (m *Machine) writeOp(o *Operand, sz uint8, v uint32) error {
	switch o.Mode {
	case ModeDReg, ModeAReg:
		m.writeReg(o, sz, v)
		return nil
	case ModeImm:
		return &BusFault{Addr: 0xffff_fffe, PC: m.PC}
	default:
		addr, err := m.ea(o, sz)
		if err != nil {
			return err
		}
		if err := m.checkUserAccess(addr); err != nil {
			return err
		}
		return m.Store(addr, sz, v)
	}
}

// rmw performs a read-modify-write on the destination operand,
// computing the EA only once (as the hardware does).
func (m *Machine) rmw(o *Operand, sz uint8, f func(old uint32) uint32) (old, nw uint32, err error) {
	switch o.Mode {
	case ModeDReg:
		old = trunc(m.D[o.Reg], sz)
		nw = f(old)
		m.writeReg(o, sz, nw)
		return old, nw, nil
	case ModeAReg:
		old = m.A[o.Reg]
		nw = f(old)
		m.A[o.Reg] = nw
		return old, nw, nil
	default:
		addr, err := m.ea(o, sz)
		if err != nil {
			return 0, 0, err
		}
		if err := m.checkUserAccess(addr); err != nil {
			return 0, 0, err
		}
		old, err = m.Load(addr, sz)
		if err != nil {
			return 0, 0, err
		}
		nw = f(old)
		return old, nw, m.Store(addr, sz, nw)
	}
}

func (m *Machine) privileged() error {
	if m.SR&FlagS == 0 {
		return m.Exception(VecPrivilege)
	}
	return nil
}

func (m *Machine) exec(in *Instr) error {
	sz := in.Size()
	switch in.Op {
	case NOP:
		return nil

	case MOVE:
		v, err := m.readOp(&in.Src, sz)
		if err != nil {
			return err
		}
		if err := m.writeOp(&in.Dst, sz, v); err != nil {
			return err
		}
		if in.Dst.Mode != ModeAReg {
			m.setNZ(v, sz)
		}
		return nil

	case LEA:
		addr, err := m.ea(&in.Src, sz)
		if err != nil {
			return err
		}
		m.A[in.Dst.Reg] = addr
		return nil

	case PEA:
		addr, err := m.ea(&in.Src, sz)
		if err != nil {
			return err
		}
		return m.push(addr)

	case CLR:
		if err := m.writeOp(&in.Dst, sz, 0); err != nil {
			return err
		}
		m.setNZ(0, sz)
		return nil

	case ADD:
		s, err := m.readOp(&in.Src, sz)
		if err != nil {
			return err
		}
		old, nw, err := m.rmw(&in.Dst, sz, func(o uint32) uint32 { return o + s })
		if err != nil {
			return err
		}
		if in.Dst.Mode != ModeAReg {
			m.setAddFlags(old, s, nw, sz)
		}
		return nil

	case SUB:
		s, err := m.readOp(&in.Src, sz)
		if err != nil {
			return err
		}
		old, nw, err := m.rmw(&in.Dst, sz, func(o uint32) uint32 { return o - s })
		if err != nil {
			return err
		}
		if in.Dst.Mode != ModeAReg {
			m.setSubFlags(old, s, nw, sz)
		}
		return nil

	case MULU:
		s, err := m.readOp(&in.Src, sz)
		if err != nil {
			return err
		}
		_, nw, err := m.rmw(&in.Dst, 4, func(o uint32) uint32 { return o * s })
		if err != nil {
			return err
		}
		m.setNZ(nw, 4)
		return nil

	case DIVU:
		s, err := m.readOp(&in.Src, sz)
		if err != nil {
			return err
		}
		if s == 0 {
			return m.Exception(VecZeroDivide)
		}
		_, nw, err := m.rmw(&in.Dst, 4, func(o uint32) uint32 { return o / s })
		if err != nil {
			return err
		}
		m.setNZ(nw, 4)
		return nil

	case AND, OR, EOR:
		s, err := m.readOp(&in.Src, sz)
		if err != nil {
			return err
		}
		op := in.Op
		_, nw, err := m.rmw(&in.Dst, sz, func(o uint32) uint32 {
			switch op {
			case AND:
				return o & s
			case OR:
				return o | s
			default:
				return o ^ s
			}
		})
		if err != nil {
			return err
		}
		m.setNZ(nw, sz)
		return nil

	case NOT:
		_, nw, err := m.rmw(&in.Dst, sz, func(o uint32) uint32 { return ^o })
		if err != nil {
			return err
		}
		m.setNZ(nw, sz)
		return nil

	case NEG:
		old, nw, err := m.rmw(&in.Dst, sz, func(o uint32) uint32 { return -o })
		if err != nil {
			return err
		}
		m.setSubFlags(0, old, nw, sz)
		return nil

	case EXT:
		v := m.D[in.Dst.Reg]
		switch sz {
		case 1:
			v = uint32(int32(int8(v)))
		case 2:
			v = uint32(int32(int16(v)))
		}
		m.D[in.Dst.Reg] = v
		m.setNZ(v, 4)
		return nil

	case LSL, LSR, ASR:
		s, err := m.readOp(&in.Src, sz)
		if err != nil {
			return err
		}
		s &= 63
		m.Cycles += uint64(s) / 2 // shifts cost ~2 cycles per 4 bits
		op := in.Op
		_, nw, err := m.rmw(&in.Dst, sz, func(o uint32) uint32 {
			switch op {
			case LSL:
				return o << s
			case LSR:
				return trunc(o, sz) >> s
			default:
				switch sz {
				case 1:
					return uint32(int32(int8(o)) >> s)
				case 2:
					return uint32(int32(int16(o)) >> s)
				default:
					return uint32(int32(o) >> s)
				}
			}
		})
		if err != nil {
			return err
		}
		m.setNZ(nw, sz)
		return nil

	case CMP:
		s, err := m.readOp(&in.Src, sz)
		if err != nil {
			return err
		}
		d, err := m.readOp(&in.Dst, sz)
		if err != nil {
			return err
		}
		m.setSubFlags(d, s, d-s, sz)
		return nil

	case TST:
		v, err := m.readOp(&in.Src, sz)
		if err != nil {
			return err
		}
		m.setNZ(v, sz)
		return nil

	case BTST, BSET, BCLR:
		bitn, err := m.readOp(&in.Src, 4)
		if err != nil {
			return err
		}
		width := uint32(sz) * 8
		bit := uint32(1) << (bitn % width)
		op := in.Op
		if op == BTST {
			v, err := m.readOp(&in.Dst, sz)
			if err != nil {
				return err
			}
			m.SR &^= FlagZ
			if v&bit == 0 {
				m.SR |= FlagZ
			}
			return nil
		}
		old, _, err := m.rmw(&in.Dst, sz, func(o uint32) uint32 {
			if op == BSET {
				return o | bit
			}
			return o &^ bit
		})
		if err != nil {
			return err
		}
		m.SR &^= FlagZ
		if old&bit == 0 {
			m.SR |= FlagZ
		}
		return nil

	case TAS:
		old, _, err := m.rmw(&in.Dst, 1, func(o uint32) uint32 { return o | 0x80 })
		if err != nil {
			return err
		}
		m.setNZ(old, 1)
		return nil

	case CAS:
		// cas Dc,Du,<ea>: if <ea> == Dc { <ea> = Du; Z=1 } else { Dc = <ea>; Z=0 }
		dc := trunc(m.D[in.Src.Reg], sz)
		du := trunc(m.D[in.Fp], sz)
		addr, err := m.ea(&in.Dst, sz)
		if err != nil {
			return err
		}
		if err := m.checkUserAccess(addr); err != nil {
			return err
		}
		cur, err := m.Load(addr, sz)
		if err != nil {
			return err
		}
		m.SR &^= FlagZ | FlagN | FlagV | FlagC
		if cur == dc {
			m.SR |= FlagZ
			return m.Store(addr, sz, du)
		}
		m.writeReg(&Operand{Mode: ModeDReg, Reg: in.Src.Reg}, sz, cur)
		if signBit(cur-dc, sz) {
			m.SR |= FlagN
		}
		return nil

	case BRA, BEQ, BNE, BLT, BLE, BGT, BGE, BHI, BLS, BCC, BCS, BMI, BPL:
		if m.condition(in.Op) {
			m.Cycles += cycBranchTak - cycReg
			m.PC = uint32(in.Dst.Imm)
		} else {
			m.Cycles += cycBranchNot - cycReg
		}
		return nil

	case DBRA:
		// Decrement the full register and loop while it has not
		// passed zero. (The hardware uses the low word; templates in
		// this codebase always use counts < 2^16 so the semantics
		// coincide.)
		m.D[in.Src.Reg]--
		if m.D[in.Src.Reg] != 0xffff_ffff {
			m.Cycles += cycDBRATaken - cycReg
			m.PC = uint32(in.Dst.Imm)
		} else {
			m.Cycles += cycDBRAExit - cycReg
		}
		return nil

	case JMP:
		t, err := m.controlTarget(in)
		if err != nil {
			return err
		}
		m.PC = t
		return nil

	case JSR:
		t, err := m.controlTarget(in)
		if err != nil {
			return err
		}
		if err := m.push(m.PC); err != nil {
			return err
		}
		m.PC = t
		return nil

	case RTS:
		pc, err := m.pop()
		if err != nil {
			return err
		}
		m.PC = pc
		return nil

	case RTE:
		if err := m.privileged(); err != nil {
			return err
		}
		sr, err := m.pop()
		if err != nil {
			return err
		}
		pc, err := m.pop()
		if err != nil {
			return err
		}
		m.applySR(uint16(sr))
		m.PC = pc
		return nil

	case TRAP:
		return m.Exception(VecTrapBase + int(in.Vec))

	case STOP:
		if err := m.privileged(); err != nil {
			return err
		}
		m.applySR(uint16(in.Src.Imm))
		m.stopped = true
		return nil

	case HALT:
		m.halted = true
		return ErrHalted

	case MOVEM:
		return m.execMovem(in)

	case MOVEC:
		if err := m.privileged(); err != nil {
			return err
		}
		if in.Src.Mode != ModeNone {
			v, err := m.readOp(&in.Src, 4)
			if err != nil {
				return err
			}
			switch in.Vec {
			case CtrlVBR:
				m.VBR = v
			case CtrlUSP:
				m.USP = v
			case CtrlSSP:
				m.SSP = v
			case CtrlUBase:
				m.UBase = v
			case CtrlULimit:
				m.ULimit = v
			case CtrlFPTrap:
				m.FPTrap = v != 0
			}
			return nil
		}
		var v uint32
		switch in.Vec {
		case CtrlVBR:
			v = m.VBR
		case CtrlUSP:
			v = m.USP
		case CtrlSSP:
			v = m.SSP
		case CtrlUBase:
			v = m.UBase
		case CtrlULimit:
			v = m.ULimit
		case CtrlFPTrap:
			if m.FPTrap {
				v = 1
			}
		}
		return m.writeOp(&in.Dst, 4, v)

	case ORSR:
		if err := m.privileged(); err != nil {
			return err
		}
		m.applySR(m.SR | uint16(in.Src.Imm))
		return nil

	case ANDSR:
		if err := m.privileged(); err != nil {
			return err
		}
		m.applySR(m.SR & uint16(in.Src.Imm))
		return nil

	case MOVEFSR:
		if err := m.privileged(); err != nil {
			return err
		}
		return m.writeOp(&in.Dst, 4, uint32(m.SR))

	case MOVETSR:
		if err := m.privileged(); err != nil {
			return err
		}
		v, err := m.readOp(&in.Src, 4)
		if err != nil {
			return err
		}
		m.applySR(uint16(v))
		return nil

	case FMOVE, FADD, FSUB, FMUL, FDIV:
		if m.FPTrap {
			m.PC-- // re-execute this instruction after the handler returns
			return m.Exception(VecLineF)
		}
		return m.execFP(in)

	case FMOVEM:
		if m.FPTrap {
			m.PC--
			return m.Exception(VecLineF)
		}
		return m.execFmovem(in)

	case KCALL:
		s := m.services[in.Vec]
		if s == nil {
			return m.Exception(VecIllegal)
		}
		m.Cycles += s(m)
		return nil
	}
	return m.Exception(VecIllegal)
}

// controlTarget resolves a JMP/JSR target. A populated Src operand
// selects the 68020 memory-indirect form: the target address is
// loaded from the memory cell Src designates. The executable ready
// queue (Figure 3) uses "jmp ([next])" through a TTE cell so queue
// manipulation is a plain memory store.
func (m *Machine) controlTarget(in *Instr) (uint32, error) {
	if in.Src.Mode != ModeNone {
		addr, err := m.ea(&in.Src, 4)
		if err != nil {
			return 0, err
		}
		return m.Load(addr, 4)
	}
	return m.jumpTarget(&in.Dst)
}

// jumpTarget resolves a control-transfer target to a code address.
func (m *Machine) jumpTarget(o *Operand) (uint32, error) {
	switch o.Mode {
	case ModeAbs, ModeImm:
		return uint32(o.Imm), nil
	case ModeAReg, ModeInd:
		return m.A[o.Reg], nil
	case ModeDReg:
		return m.D[o.Reg], nil
	case ModeDisp:
		return m.A[o.Reg] + uint32(o.Imm), nil
	default:
		// Indirect through memory: the executable-data-structure
		// ready queue jumps through addresses stored in TTEs.
		addr, err := m.ea(o, 4)
		if err != nil {
			return 0, err
		}
		return m.Load(addr, 4)
	}
}

// execMovem transfers the masked register set to or from memory.
// Mask bits 0-7 select D0-D7, bits 8-15 select A0-A7. Registers are
// transferred in ascending order at ascending addresses.
func (m *Machine) execMovem(in *Instr) error {
	if in.Dir == 0 { // registers -> memory
		addr, err := m.ea(&in.Dst, 4)
		if err != nil {
			return err
		}
		if in.Dst.Mode == ModePreDec {
			// EA already decremented by 4; extend to full block.
			n := popcount16(in.Mask)
			m.A[in.Dst.Reg] -= uint32(4 * (n - 1))
			addr = m.A[in.Dst.Reg]
		}
		for r := 0; r < 16; r++ {
			if in.Mask&(1<<uint(r)) == 0 {
				continue
			}
			v := m.D[r&7]
			if r >= 8 {
				v = m.A[r&7]
			}
			if err := m.Store(addr, 4, v); err != nil {
				return err
			}
			addr += 4
		}
		return nil
	}
	// memory -> registers
	addr, err := m.ea(&in.Src, 4)
	if err != nil {
		return err
	}
	for r := 0; r < 16; r++ {
		if in.Mask&(1<<uint(r)) == 0 {
			continue
		}
		v, err := m.Load(addr, 4)
		if err != nil {
			return err
		}
		if r >= 8 {
			m.A[r&7] = v
		} else {
			m.D[r&7] = v
		}
		addr += 4
	}
	if in.Src.Mode == ModePostInc {
		m.A[in.Src.Reg] = addr
	}
	return nil
}

func popcount16(v uint16) int {
	n := 0
	for ; v != 0; v &= v - 1 {
		n++
	}
	return n
}

// loadF64 reads an 8-byte IEEE 754 value.
func (m *Machine) loadF64(addr uint32) (float64, error) {
	hi, err := m.Load(addr, 4)
	if err != nil {
		return 0, err
	}
	lo, err := m.Load(addr+4, 4)
	if err != nil {
		return 0, err
	}
	return math.Float64frombits(uint64(hi)<<32 | uint64(lo)), nil
}

// storeF64 writes an 8-byte IEEE 754 value.
func (m *Machine) storeF64(addr uint32, f float64) error {
	b := math.Float64bits(f)
	if err := m.Store(addr, 4, uint32(b>>32)); err != nil {
		return err
	}
	return m.Store(addr+4, 4, uint32(b))
}

func (m *Machine) fpSrc(in *Instr) (float64, error) {
	switch in.Src.Mode {
	case ModeImm:
		return float64(in.Src.Imm), nil
	case ModeDReg:
		return float64(int32(m.D[in.Src.Reg])), nil
	case ModeNone:
		return m.FP[in.Fp], nil
	default:
		addr, err := m.ea(&in.Src, 8)
		if err != nil {
			return 0, err
		}
		return m.loadF64(addr)
	}
}

func (m *Machine) execFP(in *Instr) error {
	if in.Op == FMOVE && in.Dst.Mode != ModeNone {
		// fmove fpN,<ea>
		addr, err := m.ea(&in.Dst, 8)
		if err != nil {
			return err
		}
		return m.storeF64(addr, m.FP[in.Fp])
	}
	s, err := m.fpSrc(in)
	if err != nil {
		return err
	}
	switch in.Op {
	case FMOVE:
		m.FP[in.Fp] = s
	case FADD:
		m.FP[in.Fp] += s
	case FSUB:
		m.FP[in.Fp] -= s
	case FMUL:
		m.FP[in.Fp] *= s
	case FDIV:
		if s == 0 {
			return m.Exception(VecZeroDivide)
		}
		m.FP[in.Fp] /= s
	}
	return nil
}

// execFmovem saves or restores the masked FP register set. Each
// register occupies a 12-byte extended-precision slot as on the
// MC68881 (the paper: "the hundred-plus bytes of information takes
// about 10 microseconds to save"); we store the float64 image in the
// first 8 bytes and charge the third memory reference for the
// remaining 4.
func (m *Machine) execFmovem(in *Instr) error {
	if in.Dir == 0 { // registers -> memory
		addr, err := m.ea(&in.Dst, 4)
		if err != nil {
			return err
		}
		for r := 0; r < 8; r++ {
			if in.Mask&(1<<uint(r)) == 0 {
				continue
			}
			m.Cycles += cycFpuMovem
			if err := m.storeF64(addr, m.FP[r]); err != nil {
				return err
			}
			m.chargeMem(1) // third reference of the 12-byte slot
			addr += 12
		}
		return nil
	}
	addr, err := m.ea(&in.Src, 4)
	if err != nil {
		return err
	}
	for r := 0; r < 8; r++ {
		if in.Mask&(1<<uint(r)) == 0 {
			continue
		}
		m.Cycles += cycFpuMovem
		f, err := m.loadF64(addr)
		if err != nil {
			return err
		}
		m.FP[r] = f
		m.chargeMem(1)
		addr += 12
	}
	return nil
}
