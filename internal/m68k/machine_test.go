package m68k_test

import (
	"errors"
	"testing"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// newM builds a machine with a vector table at address 0x100, all
// vectors pointing at a HALT stub, supervisor stack at 0x8000.
func newM(t *testing.T) *m68k.Machine {
	t.Helper()
	m := m68k.New(m68k.Config{MemSize: 1 << 16, TraceDepth: 64})
	stub := m.Emit([]m68k.Instr{{Op: m68k.HALT}})
	m.VBR = 0x100
	for v := 0; v < m68k.NumVectors; v++ {
		m.Poke(m.VBR+uint32(v)*4, 4, stub)
	}
	m.A[7] = 0x8000
	m.SSP = 0x8000
	return m
}

// run executes starting at entry until HALT, failing the test on any
// other error.
func run(t *testing.T, m *m68k.Machine, entry uint32) {
	t.Helper()
	m.PC = entry
	if err := m.Run(10_000_000); !errors.Is(err, m68k.ErrHalted) {
		t.Fatalf("run: %v\ntrace:\n%s", err, traceOf(m))
	}
}

func traceOf(m *m68k.Machine) string {
	if m.Trace == nil {
		return "(no trace)"
	}
	return m.Trace.String()
}

func TestMoveImmediateAndFlags(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(42), m68k.D(0))
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(-7), m68k.D(2))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 42 {
		t.Errorf("D0 = %d, want 42", m.D[0])
	}
	if m.D[1] != 0 {
		t.Errorf("D1 = %d, want 0", m.D[1])
	}
	if m.D[2] != 0xffff_fff9 {
		t.Errorf("D2 = %#x, want 0xfffffff9", m.D[2])
	}
	if m.SR&m68k.FlagN == 0 {
		t.Error("N flag not set after moving negative value")
	}
}

func TestBigEndianMemory(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(0x11223344), m68k.D(0))
	b.MoveL(m68k.D(0), m68k.Abs(0x1000))
	b.MoveB(m68k.Abs(0x1000), m68k.D(1)) // high byte first: big endian
	b.MoveW(m68k.Abs(0x1002), m68k.D(2))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[1]&0xff != 0x11 {
		t.Errorf("byte at 0x1000 = %#x, want 0x11 (big endian)", m.D[1]&0xff)
	}
	if m.D[2]&0xffff != 0x3344 {
		t.Errorf("word at 0x1002 = %#x, want 0x3344", m.D[2]&0xffff)
	}
}

func TestArithmeticFlags(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(5), m68k.D(0))
	b.SubL(m68k.Imm(5), m68k.D(0)) // Z
	b.Beq("zeroOK")
	b.MoveL(m68k.Imm(1), m68k.D(7))
	b.Halt()
	b.Label("zeroOK")
	b.MoveL(m68k.Imm(3), m68k.D(1))
	b.CmpL(m68k.Imm(5), m68k.D(1)) // 3 - 5: negative, carry
	b.Bcs("borrowOK")
	b.MoveL(m68k.Imm(2), m68k.D(7))
	b.Halt()
	b.Label("borrowOK")
	b.MoveL(m68k.Imm(0), m68k.D(7))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[7] != 0 {
		t.Errorf("flag checks failed at stage %d", m.D[7])
	}
}

func TestAddressingModes(t *testing.T) {
	m := newM(t)
	// Fill an array of 4 longs via (An)+, read back via d(An) and
	// indexed mode.
	b := asmkit.New()
	b.Lea(m68k.Abs(0x2000), 0)
	b.MoveL(m68k.Imm(10), m68k.PostInc(0))
	b.MoveL(m68k.Imm(20), m68k.PostInc(0))
	b.MoveL(m68k.Imm(30), m68k.PostInc(0))
	b.MoveL(m68k.Imm(40), m68k.PostInc(0))
	b.Lea(m68k.Abs(0x2000), 1)
	b.MoveL(m68k.Disp(8, 1), m68k.D(0)) // third element = 30
	b.MoveL(m68k.Imm(3), m68k.D(1))
	b.MoveL(m68k.Idx(0, 1, 1, 4), m68k.D(2)) // arr[3] = 40
	b.MoveL(m68k.PreDec(0), m68k.D(3))       // last written = 40
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 30 {
		t.Errorf("disp load = %d, want 30", m.D[0])
	}
	if m.D[2] != 40 {
		t.Errorf("indexed load = %d, want 40", m.D[2])
	}
	if m.D[3] != 40 {
		t.Errorf("predec load = %d, want 40", m.D[3])
	}
	if m.A[0] != 0x200c {
		t.Errorf("A0 after predec = %#x, want 0x200c", m.A[0])
	}
}

func TestDbraLoop(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(0), m68k.D(0))
	b.MoveL(m68k.Imm(9), m68k.D(1)) // 10 iterations
	b.Label("loop")
	b.AddL(m68k.Imm(3), m68k.D(0))
	b.Dbra(1, "loop")
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 30 {
		t.Errorf("loop sum = %d, want 30", m.D[0])
	}
}

func TestJsrRts(t *testing.T) {
	m := newM(t)
	sub := asmkit.New()
	sub.AddL(m68k.Imm(100), m68k.D(0))
	sub.Rts()
	subAddr := sub.Link(m)

	b := asmkit.New()
	b.MoveL(m68k.Imm(1), m68k.D(0))
	b.Jsr(subAddr)
	b.Jsr(subAddr)
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 201 {
		t.Errorf("D0 = %d, want 201", m.D[0])
	}
	if m.A[7] != 0x8000 {
		t.Errorf("stack not balanced: SP = %#x", m.A[7])
	}
}

func TestMulDivAndZeroDivideTrap(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(7), m68k.D(0))
	b.Mulu(m68k.Imm(6), m68k.D(0))
	b.MoveL(m68k.Imm(100), m68k.D(1))
	b.Divu(m68k.Imm(7), m68k.D(1))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 42 {
		t.Errorf("mulu = %d, want 42", m.D[0])
	}
	if m.D[1] != 14 {
		t.Errorf("divu = %d, want 14", m.D[1])
	}

	// Division by zero vectors through VecZeroDivide.
	m2 := newM(t)
	handler := asmkit.New()
	handler.MoveL(m68k.Imm(0xdead), m68k.D(5))
	handler.Halt()
	m2.Poke(m2.VBR+uint32(m68k.VecZeroDivide)*4, 4, handler.Link(m2))
	b2 := asmkit.New()
	b2.MoveL(m68k.Imm(1), m68k.D(1))
	b2.Divu(m68k.Imm(0), m68k.D(1))
	b2.Halt()
	run(t, m2, b2.Link(m2))
	if m2.D[5] != 0xdead {
		t.Error("zero divide did not vector to handler")
	}
}

func TestTrapAndRte(t *testing.T) {
	m := newM(t)
	// TRAP #3 handler adds 1 to D0 and returns.
	h := asmkit.New()
	h.AddL(m68k.Imm(1), m68k.D(0))
	h.Rte()
	m.Poke(m.VBR+uint32(m68k.VecTrapBase+3)*4, 4, h.Link(m))

	b := asmkit.New()
	b.MoveL(m68k.Imm(0), m68k.D(0))
	b.Trap(3)
	b.Trap(3)
	b.Trap(3)
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 3 {
		t.Errorf("D0 = %d, want 3 after three traps", m.D[0])
	}
}

func TestUserSupervisorStackSwitch(t *testing.T) {
	m := newM(t)
	// Handler records the fact it ran on the supervisor stack.
	h := asmkit.New()
	h.MovecFrom(m68k.CtrlUSP, m68k.D(3)) // user SP visible from handler
	h.MoveL(m68k.A(7), m68k.D(4))        // supervisor SP
	h.Rte()
	m.Poke(m.VBR+uint32(m68k.VecTrapBase)*4, 4, h.Link(m))

	// Supervisor code drops to user state, then traps back in.
	b := asmkit.New()
	b.MoveL(m68k.Imm(0x4000), m68k.D(0))
	b.MovecTo(m68k.CtrlUSP, m68k.D(0)) // user stack at 0x4000
	// Build an exception frame by hand (push PC, then SR as a long,
	// matching what Exception pushes) and RTE into user state.
	b.MoveLabelL("user", m68k.PreDec(7))
	b.MoveL(m68k.Imm(0), m68k.PreDec(7)) // SR = 0 (user state, IPL 0)
	b.Rte()
	// User-state code:
	b.Label("user")
	b.Trap(0)
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[3] != 0x4000 {
		t.Errorf("user SP seen by handler = %#x, want 0x4000", m.D[3])
	}
	if m.D[4] == 0x4000 {
		t.Error("handler ran on the user stack")
	}
}

func TestCasSuccessAndFailure(t *testing.T) {
	m := newM(t)
	m.Poke(0x3000, 4, 7)
	b := asmkit.New()
	// Success: expect 7, swap in 9.
	b.MoveL(m68k.Imm(7), m68k.D(0))
	b.MoveL(m68k.Imm(9), m68k.D(1))
	b.Cas(4, 0, 1, m68k.Abs(0x3000))
	b.Beq("ok1")
	b.MoveL(m68k.Imm(1), m68k.D(7))
	b.Halt()
	b.Label("ok1")
	// Failure: expect 7 again (now 9), D0 must be reloaded with 9.
	b.MoveL(m68k.Imm(7), m68k.D(0))
	b.Cas(4, 0, 1, m68k.Abs(0x3000))
	b.Bne("ok2")
	b.MoveL(m68k.Imm(2), m68k.D(7))
	b.Halt()
	b.Label("ok2")
	b.MoveL(m68k.Imm(0), m68k.D(7))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[7] != 0 {
		t.Fatalf("cas semantics failed at stage %d", m.D[7])
	}
	if got := m.Peek(0x3000, 4); got != 9 {
		t.Errorf("memory after cas = %d, want 9", got)
	}
	if m.D[0] != 9 {
		t.Errorf("Dc after failed cas = %d, want 9 (reloaded)", m.D[0])
	}
}

func TestTas(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.Tas(m68k.Abs(0x3000)) // first: was 0 -> Z set
	b.Beq("first")
	b.MoveL(m68k.Imm(1), m68k.D(7))
	b.Halt()
	b.Label("first")
	b.Tas(m68k.Abs(0x3000)) // second: high bit set -> N
	b.Bmi("second")
	b.MoveL(m68k.Imm(2), m68k.D(7))
	b.Halt()
	b.Label("second")
	b.MoveL(m68k.Imm(0), m68k.D(7))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[7] != 0 {
		t.Fatalf("tas semantics failed at stage %d", m.D[7])
	}
	if m.Peek(0x3000, 1) != 0x80 {
		t.Errorf("tas byte = %#x, want 0x80", m.Peek(0x3000, 1))
	}
}

func TestMovemRoundTrip(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	for i := uint8(0); i < 8; i++ {
		b.MoveL(m68k.Imm(int32(i)*11+1), m68k.D(i))
	}
	b.Lea(m68k.Abs(0x5000), 0)
	b.MovemSave(0x00ff, m68k.Ind(0)) // save D0-D7
	for i := uint8(0); i < 8; i++ {
		b.Clr(4, m68k.D(i))
	}
	b.MovemRest(m68k.Ind(0), 0x00ff)
	b.Halt()
	run(t, m, b.Link(m))
	for i := 0; i < 8; i++ {
		want := uint32(i)*11 + 1
		if m.D[i] != want {
			t.Errorf("D%d = %d, want %d", i, m.D[i], want)
		}
	}
}

func TestBitOps(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.Clr(1, m68k.Abs(0x3000))
	b.Bset(m68k.Imm(3), m68k.Abs(0x3000))
	b.Btst(m68k.Imm(3), m68k.Abs(0x3000))
	b.Bne("set")
	b.MoveL(m68k.Imm(1), m68k.D(7))
	b.Halt()
	b.Label("set")
	b.Bclr(m68k.Imm(3), m68k.Abs(0x3000))
	b.Btst(m68k.Imm(3), m68k.Abs(0x3000))
	b.Beq("clear")
	b.MoveL(m68k.Imm(2), m68k.D(7))
	b.Halt()
	b.Label("clear")
	b.MoveL(m68k.Imm(0), m68k.D(7))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[7] != 0 {
		t.Fatalf("bit ops failed at stage %d", m.D[7])
	}
}

func TestQuaspaceProtection(t *testing.T) {
	m := newM(t)
	busErr := asmkit.New()
	busErr.MoveL(m68k.Imm(0xbad), m68k.D(6))
	busErr.Halt()
	m.Poke(m.VBR+uint32(m68k.VecBusError)*4, 4, busErr.Link(m))

	// Enter user state restricted to [0x2000, 0x3000) and poke
	// outside it.
	b := asmkit.New()
	b.MoveL(m68k.Imm(0x2000), m68k.D(0))
	b.MovecTo(m68k.CtrlUBase, m68k.D(0))
	b.MoveL(m68k.Imm(0x3000), m68k.D(0))
	b.MovecTo(m68k.CtrlULimit, m68k.D(0))
	b.MoveL(m68k.Imm(0x2800), m68k.D(0))
	b.MovecTo(m68k.CtrlUSP, m68k.D(0))
	// Drop to user state via hand-built frame.
	b.MoveLabelL("user", m68k.PreDec(7))
	b.MoveL(m68k.Imm(0), m68k.PreDec(7))
	b.Rte()
	b.Label("user")
	b.MoveL(m68k.Imm(1), m68k.Abs(0x2800)) // inside: fine
	b.MoveL(m68k.Imm(1), m68k.Abs(0x4000)) // outside: bus error
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[6] != 0xbad {
		t.Error("out-of-quaspace access did not raise a bus error")
	}
	if m.Peek(0x2800, 4) != 1 {
		t.Error("in-quaspace access failed")
	}
	if m.Peek(0x4000, 4) != 0 {
		t.Error("out-of-quaspace store went through")
	}
}

func TestTimerInterrupt(t *testing.T) {
	m := newM(t)
	timer := m68k.NewTimer(m)
	m.Attach(timer)

	h := asmkit.New()
	h.AddL(m68k.Imm(1), m68k.D(5))
	h.Rte()
	hAddr := h.Link(m)
	m.Poke(m.VBR+uint32(m68k.VecAutovector+m68k.IRQTimer)*4, 4, hAddr)

	b := asmkit.New()
	b.MoveL(m68k.Imm(500), m68k.Abs(m68k.TimerBase+m68k.TimerRegQuantum))
	b.AndSR(^uint16(7 << 8)) // unmask interrupts
	b.MoveL(m68k.Imm(100000), m68k.D(0))
	b.Label("spin")
	b.Dbra(0, "spin")
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[5] != 1 {
		t.Errorf("timer interrupt count = %d, want 1", m.D[5])
	}
}

func TestStopWaitsForInterrupt(t *testing.T) {
	m := newM(t)
	timer := m68k.NewTimer(m)
	m.Attach(timer)

	h := asmkit.New()
	h.MoveL(m68k.Imm(7), m68k.D(5))
	h.Halt()
	m.Poke(m.VBR+uint32(m68k.VecAutovector+m68k.IRQAlarm)*4, 4, h.Link(m))

	b := asmkit.New()
	b.MoveL(m68k.Imm(2000), m68k.Abs(m68k.TimerBase+m68k.TimerRegAlarm))
	b.Stop(m68k.FlagS) // supervisor, IPL 0: wait for the alarm
	b.Halt()
	start := m.Cycles
	run(t, m, b.Link(m))
	if m.D[5] != 7 {
		t.Error("alarm interrupt did not fire out of STOP")
	}
	if m.Cycles-start < 2000 {
		t.Errorf("time did not advance across STOP: %d cycles", m.Cycles-start)
	}
}

func TestStopWithNoEventsIsIdle(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.Stop(m68k.FlagS)
	entry := b.Link(m)
	m.PC = entry
	err := m.Run(1000)
	if !errors.Is(err, m68k.ErrIdle) {
		t.Errorf("got %v, want ErrIdle", err)
	}
}

func TestLazyFPTrap(t *testing.T) {
	m := newM(t)
	m.FPTrap = true
	// Line-F handler clears the trap flag (standing in for the
	// kernel's context-switch resynthesis) and returns to re-execute
	// the faulting instruction.
	m.RegisterService(1, func(mm *m68k.Machine) uint64 {
		mm.FPTrap = false
		return 0
	})
	h := asmkit.New()
	h.Kcall(1)
	h.AddL(m68k.Imm(1), m68k.D(5)) // count trap occurrences
	h.Rte()
	m.Poke(m.VBR+uint32(m68k.VecLineF)*4, 4, h.Link(m))

	b := asmkit.New()
	b.FmoveTo(m68k.Imm(2), 0)
	b.Fadd(m68k.Imm(3), 0)
	b.FmoveFrom(0, m68k.Abs(0x6000))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[5] != 1 {
		t.Errorf("FP trap fired %d times, want exactly 1", m.D[5])
	}
	if m.FP[0] != 5 {
		t.Errorf("FP0 = %v, want 5", m.FP[0])
	}
	hi := uint64(m.Peek(0x6000, 4))<<32 | uint64(m.Peek(0x6004, 4))
	if hi == 0 {
		t.Error("fmove to memory stored nothing")
	}
}

func TestTTYDevice(t *testing.T) {
	m := newM(t)
	tty := m68k.NewTTY(m)
	m.Attach(tty)
	tty.InputString("hi", 0, 0)

	h := asmkit.New()
	h.MoveL(m68k.Abs(m68k.TTYBase+m68k.TTYRegData), m68k.D(0))
	h.MoveB(m68k.D(0), m68k.Abs(m68k.TTYBase+m68k.TTYRegData)) // echo
	h.AddL(m68k.Imm(1), m68k.D(5))
	h.Rte()
	m.Poke(m.VBR+uint32(m68k.VecAutovector+m68k.IRQTTY)*4, 4, h.Link(m))

	b := asmkit.New()
	b.AndSR(^uint16(7 << 8))
	b.MoveL(m68k.Imm(50000), m68k.D(0))
	b.Label("spin")
	b.Dbra(0, "spin")
	b.Halt()
	run(t, m, b.Link(m))
	if string(tty.Output()) != "hi" {
		t.Errorf("tty echo = %q, want \"hi\"", tty.Output())
	}
}

func TestDiskDMA(t *testing.T) {
	m := newM(t)
	disk := m68k.NewDisk(m, 16)
	m.Attach(disk)
	copy(disk.Blocks[3], []byte("hello disk"))

	h := asmkit.New()
	h.MoveL(m68k.Imm(1), m68k.D(5))
	h.Rte()
	m.Poke(m.VBR+uint32(m68k.VecAutovector+m68k.IRQDisk)*4, 4, h.Link(m))

	b := asmkit.New()
	b.MoveL(m68k.Imm(3), m68k.Abs(m68k.DiskBase+m68k.DiskRegBlock))
	b.MoveL(m68k.Imm(0x7000), m68k.Abs(m68k.DiskBase+m68k.DiskRegAddr))
	b.MoveL(m68k.Imm(1), m68k.Abs(m68k.DiskBase+m68k.DiskRegCmd))
	b.AndSR(^uint16(7 << 8))
	b.Label("wait")
	b.TstL(m68k.D(5))
	b.Beq("wait")
	b.Halt()
	run(t, m, b.Link(m))
	if got := string(m.PeekBytes(0x7000, 10)); got != "hello disk" {
		t.Errorf("DMA read = %q", got)
	}
}

func TestADSampler(t *testing.T) {
	m := newM(t)
	ad := m68k.NewAD(m)
	m.Attach(ad)

	h := asmkit.New()
	h.MoveL(m68k.Abs(m68k.ADBase+m68k.ADRegData), m68k.D(0))
	h.AddL(m68k.Imm(1), m68k.D(5))
	h.Rte()
	m.Poke(m.VBR+uint32(m68k.VecAutovector+m68k.IRQAD)*4, 4, h.Link(m))

	b := asmkit.New()
	b.MoveL(m68k.Imm(1), m68k.Abs(m68k.ADBase+m68k.ADRegCtl))
	b.AndSR(^uint16(7 << 8))
	b.Label("spin")
	b.CmpL(m68k.Imm(5), m68k.D(5))
	b.Bne("spin")
	b.MoveL(m68k.Imm(0), m68k.Abs(m68k.ADBase+m68k.ADRegCtl))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[5] != 5 {
		t.Errorf("sample interrupts = %d, want 5", m.D[5])
	}
	if ad.Dropped != 0 {
		t.Errorf("dropped %d samples", ad.Dropped)
	}
	// At 50 MHz and 44.1 kHz the period is ~1134 cycles; five samples
	// must take at least 5 periods.
	if m.Cycles < 5*1000 {
		t.Errorf("five samples arrived implausibly fast: %d cycles", m.Cycles)
	}
}

func TestCycleAccountingMonotonicAndCharged(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(1), m68k.D(0))      // register: cheap
	b.MoveL(m68k.D(0), m68k.Abs(0x3000)) // memory: charged
	b.Halt()
	entry := b.Link(m)
	m.PC = entry
	c0 := m.Cycles
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	regCost := m.Cycles - c0
	c1 := m.Cycles
	if err := m.Step(); err != nil {
		t.Fatal(err)
	}
	memCost := m.Cycles - c1
	if memCost <= regCost {
		t.Errorf("memory move (%d cyc) not more expensive than register move (%d cyc)", memCost, regCost)
	}
	if m.MemRefs == 0 {
		t.Error("memory reference counter did not advance")
	}
}

func TestMicrosConversion(t *testing.T) {
	m := m68k.New(m68k.Sun3Config())
	if got := m.Micros(160); got != 10 {
		t.Errorf("160 cycles at 16 MHz = %v µs, want 10", got)
	}
	n := m68k.New(m68k.NativeConfig())
	if got := n.Micros(500); got != 10 {
		t.Errorf("500 cycles at 50 MHz = %v µs, want 10", got)
	}
}

func TestTraceRecords(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(1), m68k.D(0))
	b.AddL(m68k.Imm(2), m68k.D(0))
	b.Halt()
	run(t, m, b.Link(m))
	if m.Trace.Len() < 3 {
		t.Errorf("trace recorded %d entries, want >= 3", m.Trace.Len())
	}
	s := m.Trace.String()
	if s == "" {
		t.Error("empty trace listing")
	}
}

func TestBusFaultDoubleFaultReturnsToHost(t *testing.T) {
	m := m68k.New(m68k.Config{MemSize: 1 << 12})
	// No vector table: a bus fault while vectoring must come back to
	// the host rather than loop.
	m.VBR = 0xffff_0000
	b := asmkit.New()
	b.MoveL(m68k.Imm(1), m68k.Abs(0xfff0)) // out of range
	b.Halt()
	m.PC = b.Link(m)
	err := m.Run(1000)
	var bf *m68k.BusFault
	if !errors.As(err, &bf) {
		t.Fatalf("got %v, want BusFault", err)
	}
}

func TestExtSignExtend(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(0x80), m68k.D(0))
	b.I(m68k.Instr{Op: m68k.EXT, Sz: 1, Dst: m68k.D(0)})
	b.MoveL(m68k.Imm(0x8000), m68k.D(1))
	b.I(m68k.Instr{Op: m68k.EXT, Sz: 2, Dst: m68k.D(1)})
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 0xffff_ff80 {
		t.Errorf("ext.b = %#x", m.D[0])
	}
	if m.D[1] != 0xffff_8000 {
		t.Errorf("ext.w = %#x", m.D[1])
	}
}

func TestShifts(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(1), m68k.D(0))
	b.LslL(m68k.Imm(4), m68k.D(0))
	b.MoveL(m68k.Imm(-16), m68k.D(1))
	b.I(m68k.Instr{Op: m68k.ASR, Sz: 4, Src: m68k.Imm(2), Dst: m68k.D(1)})
	b.MoveL(m68k.Imm(int32(-0x80000000)), m68k.D(2))
	b.LsrL(m68k.Imm(31), m68k.D(2))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 16 {
		t.Errorf("lsl = %d", m.D[0])
	}
	if int32(m.D[1]) != -4 {
		t.Errorf("asr = %d", int32(m.D[1]))
	}
	if m.D[2] != 1 {
		t.Errorf("lsr = %d", m.D[2])
	}
}

func TestInterruptPriorityMasking(t *testing.T) {
	m := newM(t)
	// Handler at level 5 records; while it runs, a level-3 interrupt
	// must wait, a level-6 must preempt.
	var order []int
	m.RegisterService(10, func(mm *m68k.Machine) uint64 { order = append(order, 5); return 0 })
	m.RegisterService(11, func(mm *m68k.Machine) uint64 { order = append(order, 3); return 0 })
	m.RegisterService(12, func(mm *m68k.Machine) uint64 { order = append(order, 6); return 0 })

	h5 := asmkit.New()
	h5.Kcall(10)
	// While still at IPL 5, post levels 3 and 6.
	h5.Kcall(20)
	h5.MoveL(m68k.Imm(200), m68k.D(0))
	h5.Label("spin")
	h5.Dbra(0, "spin") // level 6 should preempt during this spin
	h5.Rte()
	m.Poke(m.VBR+uint32(m68k.VecAutovector+5)*4, 4, h5.Link(m))

	h3 := asmkit.New()
	h3.Kcall(11)
	h3.Rte()
	m.Poke(m.VBR+uint32(m68k.VecAutovector+3)*4, 4, h3.Link(m))

	h6 := asmkit.New()
	h6.Kcall(12)
	h6.Rte()
	m.Poke(m.VBR+uint32(m68k.VecAutovector+6)*4, 4, h6.Link(m))

	m.RegisterService(20, func(mm *m68k.Machine) uint64 {
		mm.PostInterrupt(3)
		mm.PostInterrupt(6)
		return 0
	})

	b := asmkit.New()
	b.AndSR(^uint16(7 << 8))
	b.Kcall(21) // post level 5
	b.MoveL(m68k.Imm(2000), m68k.D(1))
	b.Label("wait")
	b.Dbra(1, "wait")
	b.Halt()
	m.RegisterService(21, func(mm *m68k.Machine) uint64 {
		mm.PostInterrupt(5)
		return 0
	})
	run(t, m, b.Link(m))

	if len(order) != 3 {
		t.Fatalf("handler order = %v, want 3 entries", order)
	}
	if order[0] != 5 || order[1] != 6 || order[2] != 3 {
		t.Errorf("handler order = %v, want [5 6 3]", order)
	}
}

func TestNotNegAndARegIndex(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(0x0f0f0f0f), m68k.D(0))
	b.I(m68k.Instr{Op: m68k.NOT, Sz: 4, Dst: m68k.D(0)})
	b.MoveL(m68k.Imm(5), m68k.D(1))
	b.I(m68k.Instr{Op: m68k.NEG, Sz: 4, Dst: m68k.D(1)})
	// Indexed addressing with an ADDRESS register index (Idx >= 8).
	b.Lea(m68k.Abs(0x4000), 0)
	b.Lea(m68k.Abs(8), 1) // index value 8 in A1
	b.MoveL(m68k.Imm(77), m68k.Operand{Mode: m68k.ModeIdx, Reg: 0, Idx: 8 + 1, Scale: 1})
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 0xf0f0f0f0 {
		t.Errorf("not = %#x", m.D[0])
	}
	if int32(m.D[1]) != -5 {
		t.Errorf("neg = %d", int32(m.D[1]))
	}
	if got := m.Peek(0x4008, 4); got != 77 {
		t.Errorf("a-reg indexed store: mem[0x4008] = %d", got)
	}
}

func TestPeaPushesEffectiveAddress(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.Lea(m68k.Abs(0x1234), 0)
	b.I(m68k.Instr{Op: m68k.PEA, Src: m68k.Disp(0x10, 0)})
	b.MoveL(m68k.PostInc(7), m68k.D(0))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 0x1244 {
		t.Errorf("pea pushed %#x, want 0x1244", m.D[0])
	}
}
