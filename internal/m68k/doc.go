// Package m68k implements the Quamachine: a cycle-accounted virtual
// machine in the style of the Motorola 68020 CPU used by the Synthesis
// kernel (Massalin & Pu, SOSP 1989). The machine models the features
// the paper's measurements depend on: a register architecture with
// data/address registers, big-endian byte-addressable memory with
// configurable wait states, prioritized vectored interrupts dispatched
// through a relocatable vector base register (one vector table per
// Synthesis thread), TRAP/RTE kernel entry and exit, compare-and-swap
// for optimistic synchronization, MOVEM block register transfer for
// context switching, lazy floating-point context via a trap on first
// FP use, memory-mapped devices, and hardware measurement facilities
// (instruction counter, memory-reference counter, microsecond clock,
// execution trace) matching Section 6.1 of the paper.
//
// Code is held in a separate code space addressed by instruction index
// rather than encoded bytes; this keeps run-time code synthesis (the
// point of the exercise) structured while preserving the quantity the
// paper measures, which is path length in instructions and cycles.
//
// Two clocks govern the package. The simulated cycle clock
// (Machine.Cycles, read via Clock) is deterministic and
// host-independent: it is the clock every paper-facing table is
// denominated in. The host-side cost of advancing it is separate, and
// is kept low by a threaded-code dispatcher (dispatch.go): each code
// slot is translated once into a specialized Go closure, cached per
// PC, and invalidated by any code-space write (SetCode, PatchCode) —
// so self-modifying synthesized code stays bit-identical to the
// reference switch interpreter in exec.go while executing several
// times faster on the host. See docs/PERFORMANCE.md for the
// measurement story and DESIGN.md §3b for the design narrative.
package m68k
