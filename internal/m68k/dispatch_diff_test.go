package m68k

import (
	"math/rand"
	"testing"
)

// TestDispatchMatchesExec differentially tests the threaded-code
// handlers against the reference switch interpreter: for thousands of
// randomly generated single instructions and machine states, running
// the compiled handler must leave the machine in exactly the state
// the reference exec leaves it in — registers, SR, PC, cycle and
// memory-reference counters, and memory.
func TestDispatchMatchesExec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))

	ops := []Op{
		NOP, MOVE, LEA, PEA, CLR, ADD, SUB, MULU, DIVU, AND, OR, EOR,
		NOT, NEG, EXT, LSL, LSR, ASR, CMP, TST, BTST, BSET, BCLR, TAS,
		BRA, BEQ, BNE, BLT, BLE, BGT, BGE, BHI, BLS, BCC, BCS, BMI, BPL,
		DBRA, JMP, JSR, RTS,
	}
	sizes := []uint8{0, 1, 2, 4}
	srcModes := []AddrMode{ModeNone, ModeImm, ModeDReg, ModeAReg, ModeInd,
		ModePostInc, ModePreDec, ModeDisp, ModeIdx, ModeAbs}

	randOperand := func(modes []AddrMode) Operand {
		o := Operand{Mode: modes[rng.Intn(len(modes))]}
		switch o.Mode {
		case ModeImm:
			o.Imm = int32(rng.Uint32())
		case ModeDReg, ModeAReg, ModeInd, ModePostInc, ModePreDec:
			o.Reg = uint8(rng.Intn(7)) // not A7: keep the stack usable
		case ModeDisp:
			o.Reg = uint8(rng.Intn(7))
			o.Imm = int32(rng.Intn(64)) - 32
		case ModeIdx:
			o.Reg = uint8(rng.Intn(7))
			o.Imm = int32(rng.Intn(32))
			o.Idx = uint8(rng.Intn(16))
			o.Scale = []uint8{0, 1, 2, 4}[rng.Intn(4)]
		case ModeAbs:
			o.Imm = int32(0x4000 + rng.Intn(0x800))
		}
		return o
	}

	newPair := func() (*Machine, *Machine) {
		a := New(Config{MemSize: 0x10000, CodeSize: 64})
		for i := range a.D {
			a.D[i] = rng.Uint32()
			// Address registers point into a safe middle of memory so
			// indirect modes mostly hit valid addresses (invalid ones
			// are fine too: both machines must fault identically).
			a.A[i] = 0x4000 + rng.Uint32()%0x800
		}
		a.A[7] = 0x8000
		for i := 0; i < 0x1000; i++ {
			a.Poke(0x4000+uint32(i*4), 4, rng.Uint32())
		}
		b := New(Config{MemSize: 0x10000, CodeSize: 64})
		b.D, b.A = a.D, a.A
		b.SR = a.SR
		copy(b.Mem, a.Mem)
		b.Cycles, b.MemRefs = a.Cycles, a.MemRefs
		return a, b
	}

	for iter := 0; iter < 20000; iter++ {
		in := Instr{
			Op:  ops[rng.Intn(len(ops))],
			Sz:  sizes[rng.Intn(len(sizes))],
			Src: randOperand(srcModes),
			Dst: randOperand(srcModes),
		}
		// Keep control transfers inside code space and avoid the
		// memory-indirect JMP/JSR form pulling a wild target: point
		// branch/jump destinations at slot 1 (a HALT).
		switch in.Op {
		case BRA, BEQ, BNE, BLT, BLE, BGT, BGE, BHI, BLS, BCC, BCS, BMI, BPL, DBRA:
			in.Dst = Abs(1)
		case JMP, JSR:
			in.Src = Operand{}
			in.Dst = Abs(1)
		case LEA, PEA:
			if !in.Src.Mode.IsMemory() {
				in.Src = Abs(0x4000)
			}
		case EXT:
			in.Dst = Operand{Mode: ModeDReg, Reg: uint8(rng.Intn(8))}
		}

		ma, mb := newPair()
		// Randomize flags; sometimes set N/Z/V/C to exercise branches.
		sr := uint16(rng.Intn(32))
		ma.SR, mb.SR = sr, sr

		// ma executes through the reference switch, mb through a fresh
		// translation of the same instruction.
		prog := []Instr{in, {Op: HALT}}
		ea := ma.Emit(prog)
		eb := mb.Emit(prog)
		ma.PC, mb.PC = ea, eb

		// Reference: replicate the old step loop body (decode every
		// time, run exec).
		ia := &ma.Code[ma.PC]
		ma.PC++
		ma.Instrs++
		ma.Cycles += baseCost(ia)
		errA := ma.exec(ia)

		eb2 := &mb.xcache[mb.PC]
		mb.translate(mb.PC, eb2)
		mb.PC++
		mb.Instrs++
		mb.Cycles += eb2.cost
		errB := eb2.run(mb)

		if (errA == nil) != (errB == nil) {
			t.Fatalf("iter %d op %v %+v: err mismatch exec=%v dispatch=%v", iter, in.Op, in, errA, errB)
		}
		if errA != nil && errA.Error() != errB.Error() {
			t.Fatalf("iter %d op %v %+v: err mismatch exec=%v dispatch=%v", iter, in.Op, in, errA, errB)
		}
		if ma.D != mb.D || ma.A != mb.A {
			t.Fatalf("iter %d op %v %+v: register mismatch\nexec     D=%x A=%x\ndispatch D=%x A=%x",
				iter, in.Op, in, ma.D, ma.A, mb.D, mb.A)
		}
		if ma.SR != mb.SR {
			t.Fatalf("iter %d op %v %+v: SR mismatch exec=%04x dispatch=%04x", iter, in.Op, in, ma.SR, mb.SR)
		}
		if ma.PC-ea != mb.PC-eb {
			t.Fatalf("iter %d op %v %+v: PC mismatch exec=+%d dispatch=+%d", iter, in.Op, in, ma.PC-ea, mb.PC-eb)
		}
		if ma.Cycles != mb.Cycles || ma.MemRefs != mb.MemRefs {
			t.Fatalf("iter %d op %v %+v: accounting mismatch exec=(%d,%d) dispatch=(%d,%d)",
				iter, in.Op, in, ma.Cycles, ma.MemRefs, mb.Cycles, mb.MemRefs)
		}
		for i := 0; i < 0x10000; i += 4 {
			if va, vb := ma.loadRaw(uint32(i), 4), mb.loadRaw(uint32(i), 4); va != vb {
				t.Fatalf("iter %d op %v %+v: mem mismatch at %#x exec=%08x dispatch=%08x",
					iter, in.Op, in, i, va, vb)
			}
		}
	}
}
