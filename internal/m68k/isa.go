package m68k

import "fmt"

// Op identifies an instruction opcode.
type Op uint8

// Opcodes. The set follows the 68020 subset the Synthesis kernel
// actually relies on, plus KCALL, an escape to host services used to
// charge modeled costs for operations that are not expressed as VM
// code (documented where used).
const (
	NOP     Op = iota
	MOVE       // move src to dst
	LEA        // load effective address of src into dst (address register)
	PEA        // push effective address of src
	CLR        // clear dst
	ADD        // dst += src
	SUB        // dst -= src
	MULU       // dst = dst * src (unsigned)
	DIVU       // dst = dst / src, remainder in upper word semantics simplified: quotient only
	AND        // dst &= src
	OR         // dst |= src
	EOR        // dst ^= src
	NOT        // dst = ^dst
	NEG        // dst = -dst
	EXT        // sign-extend dst from Sz to long
	LSL        // dst <<= src
	LSR        // dst >>= src (logical)
	ASR        // dst >>= src (arithmetic)
	CMP        // set CCR from dst - src
	TST        // set CCR from src
	BTST       // test bit src of dst into Z
	BSET       // set bit src of dst
	BCLR       // clear bit src of dst
	TAS        // test and set high bit of byte dst (atomic)
	CAS        // compare and swap: if dst == Dc then dst = Du; CCR.Z on success
	BRA        // branch always
	BEQ        // branch if Z
	BNE        // branch if !Z
	BLT        // branch if N != V
	BLE        // branch if Z or N != V
	BGT        // branch if !Z and N == V
	BGE        // branch if N == V
	BHI        // branch if !C and !Z (unsigned >)
	BLS        // branch if C or Z (unsigned <=)
	BCC        // branch if !C (unsigned >=)
	BCS        // branch if C (unsigned <)
	BMI        // branch if N
	BPL        // branch if !N
	DBRA       // decrement Dn; branch if result != -1 (loop primitive)
	JMP        // jump to effective address
	JSR        // jump to subroutine
	RTS        // return from subroutine
	RTE        // return from exception (privileged)
	TRAP       // software trap through vector 32+n
	STOP       // load SR and wait for interrupt (privileged)
	HALT       // stop the machine (simulation control)
	MOVEM      // move multiple registers; Dir selects save/restore
	MOVEC      // move to/from control register (VBR, USP, SSP)
	ORSR       // SR |= imm (privileged; raise interrupt mask)
	ANDSR      // SR &= imm (privileged; lower interrupt mask)
	MOVEFSR    // move SR to dst (privileged)
	MOVETSR    // move src to SR (privileged)
	FMOVE      // FP move between FP register and memory/register
	FADD       // FP add
	FSUB       // FP subtract
	FMUL       // FP multiply
	FDIV       // FP divide
	FMOVEM     // FP move multiple registers (context switch)
	KCALL      // host service escape with modeled cycle charge
	opCount
)

var opNames = [opCount]string{
	NOP: "nop", MOVE: "move", LEA: "lea", PEA: "pea", CLR: "clr",
	ADD: "add", SUB: "sub", MULU: "mulu", DIVU: "divu",
	AND: "and", OR: "or", EOR: "eor", NOT: "not", NEG: "neg", EXT: "ext",
	LSL: "lsl", LSR: "lsr", ASR: "asr",
	CMP: "cmp", TST: "tst", BTST: "btst", BSET: "bset", BCLR: "bclr",
	TAS: "tas", CAS: "cas",
	BRA: "bra", BEQ: "beq", BNE: "bne", BLT: "blt", BLE: "ble",
	BGT: "bgt", BGE: "bge", BHI: "bhi", BLS: "bls", BCC: "bcc",
	BCS: "bcs", BMI: "bmi", BPL: "bpl", DBRA: "dbra",
	JMP: "jmp", JSR: "jsr", RTS: "rts", RTE: "rte", TRAP: "trap",
	STOP: "stop", HALT: "halt", MOVEM: "movem", MOVEC: "movec",
	ORSR: "orsr", ANDSR: "andsr", MOVEFSR: "movefsr", MOVETSR: "movetsr",
	FMOVE: "fmove", FADD: "fadd", FSUB: "fsub", FMUL: "fmul",
	FDIV: "fdiv", FMOVEM: "fmovem", KCALL: "kcall",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether the opcode is a conditional or
// unconditional PC-relative branch (target in Dst as code address).
func (o Op) IsBranch() bool { return o >= BRA && o <= DBRA }

// AddrMode selects how an operand is interpreted.
type AddrMode uint8

// Addressing modes (68020 subset plus scaled indexing).
const (
	ModeNone    AddrMode = iota
	ModeImm              // #imm
	ModeDReg             // Dn
	ModeAReg             // An
	ModeInd              // (An)
	ModePostInc          // (An)+
	ModePreDec           // -(An)
	ModeDisp             // d16(An)
	ModeIdx              // d8(An,Xn.L*scale)
	ModeAbs              // absolute address
)

var modeNames = []string{
	ModeNone: "none", ModeImm: "imm", ModeDReg: "dreg", ModeAReg: "areg",
	ModeInd: "ind", ModePostInc: "postinc", ModePreDec: "predec",
	ModeDisp: "disp", ModeIdx: "idx", ModeAbs: "abs",
}

// String returns a short name for the addressing mode.
func (m AddrMode) String() string {
	if int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// IsMemory reports whether evaluating the operand touches memory.
func (m AddrMode) IsMemory() bool { return m >= ModeInd }

// Control registers addressable by MOVEC.
const (
	CtrlVBR    uint8 = iota // vector base register
	CtrlUSP                 // user stack pointer
	CtrlSSP                 // supervisor stack pointer
	CtrlUBase               // quaspace lower bound for user-state accesses
	CtrlULimit              // quaspace upper bound (0 disables checking)
	CtrlFPTrap              // nonzero: first FP instruction raises line-F
)

// Operand describes one instruction operand.
type Operand struct {
	Mode  AddrMode
	Reg   uint8 // base register: 0-7 = D0-D7 or A0-A7 depending on mode
	Idx   uint8 // index register for ModeIdx: 0-7 = Dn, 8-15 = An
	Scale uint8 // 1, 2, 4 or 8 for ModeIdx
	Imm   int32 // immediate value, displacement, or absolute address
}

// Convenience operand constructors used pervasively by the assembler
// and code templates.

// Imm returns an immediate operand.
func Imm(v int32) Operand { return Operand{Mode: ModeImm, Imm: v} }

// D returns a data-register operand Dn.
func D(n uint8) Operand { return Operand{Mode: ModeDReg, Reg: n} }

// A returns an address-register operand An.
func A(n uint8) Operand { return Operand{Mode: ModeAReg, Reg: n} }

// Ind returns an (An) operand.
func Ind(n uint8) Operand { return Operand{Mode: ModeInd, Reg: n} }

// PostInc returns an (An)+ operand.
func PostInc(n uint8) Operand { return Operand{Mode: ModePostInc, Reg: n} }

// PreDec returns a -(An) operand.
func PreDec(n uint8) Operand { return Operand{Mode: ModePreDec, Reg: n} }

// Disp returns a d(An) operand.
func Disp(d int32, n uint8) Operand { return Operand{Mode: ModeDisp, Reg: n, Imm: d} }

// Idx returns a d(An,Dx.L*scale) operand. The index register is a data
// register.
func Idx(d int32, an, dx, scale uint8) Operand {
	return Operand{Mode: ModeIdx, Reg: an, Idx: dx, Scale: scale, Imm: d}
}

// Abs returns an absolute-address operand.
func Abs(addr uint32) Operand { return Operand{Mode: ModeAbs, Imm: int32(addr)} }

// String renders the operand in 68k-style assembly syntax.
func (o Operand) String() string {
	switch o.Mode {
	case ModeNone:
		return ""
	case ModeImm:
		return fmt.Sprintf("#%d", o.Imm)
	case ModeDReg:
		return fmt.Sprintf("d%d", o.Reg)
	case ModeAReg:
		return fmt.Sprintf("a%d", o.Reg)
	case ModeInd:
		return fmt.Sprintf("(a%d)", o.Reg)
	case ModePostInc:
		return fmt.Sprintf("(a%d)+", o.Reg)
	case ModePreDec:
		return fmt.Sprintf("-(a%d)", o.Reg)
	case ModeDisp:
		return fmt.Sprintf("%d(a%d)", o.Imm, o.Reg)
	case ModeIdx:
		return fmt.Sprintf("%d(a%d,d%d*%d)", o.Imm, o.Reg, o.Idx, o.Scale)
	case ModeAbs:
		return fmt.Sprintf("($%x)", uint32(o.Imm))
	}
	return "?"
}

// Instr is one decoded instruction in code space.
type Instr struct {
	Op   Op
	Sz   uint8   // operand size in bytes: 1, 2 or 4 (0 means 4)
	Src  Operand // source operand
	Dst  Operand // destination operand
	Mask uint16  // register mask for MOVEM/FMOVEM
	Dir  uint8   // MOVEM direction: 0 = registers to memory, 1 = memory to registers
	Vec  uint8   // TRAP vector number / KCALL service id / MOVEC control register
	Fp   uint8   // FP register number for FMOVE/FADD/...
}

// Size returns the effective operand size in bytes.
func (i Instr) Size() uint8 {
	if i.Sz == 0 {
		return 4
	}
	return i.Sz
}

// ByteSize approximates the encoded size of the instruction in bytes,
// used for the kernel-size accounting in Section 6.4 of the paper.
func (i Instr) ByteSize() int {
	n := 2 // opcode word
	n += operandBytes(i.Src)
	n += operandBytes(i.Dst)
	if i.Op == MOVEM || i.Op == FMOVEM {
		n += 2 // register mask word
	}
	return n
}

func operandBytes(o Operand) int {
	switch o.Mode {
	case ModeImm, ModeAbs:
		return 4
	case ModeDisp:
		return 2
	case ModeIdx:
		return 2
	default:
		return 0
	}
}

func szSuffix(sz uint8) string {
	switch sz {
	case 1:
		return ".b"
	case 2:
		return ".w"
	default:
		return ".l"
	}
}

// String disassembles the instruction.
func (i Instr) String() string {
	switch i.Op {
	case NOP, RTS, RTE, HALT:
		return i.Op.String()
	case TRAP:
		return fmt.Sprintf("trap #%d", i.Vec)
	case KCALL:
		return fmt.Sprintf("kcall #%d", i.Vec)
	case STOP:
		return fmt.Sprintf("stop #$%04x", uint16(i.Src.Imm))
	case MOVEM:
		if i.Dir == 0 {
			return fmt.Sprintf("movem.l #$%04x,%s", i.Mask, i.Dst)
		}
		return fmt.Sprintf("movem.l %s,#$%04x", i.Src, i.Mask)
	case FMOVEM:
		if i.Dir == 0 {
			return fmt.Sprintf("fmovem #$%04x,%s", i.Mask, i.Dst)
		}
		return fmt.Sprintf("fmovem %s,#$%04x", i.Src, i.Mask)
	case MOVEC:
		return fmt.Sprintf("movec %s,ctrl%d", i.Src, i.Vec)
	case ORSR:
		return fmt.Sprintf("or.w %s,sr", i.Src)
	case ANDSR:
		return fmt.Sprintf("and.w %s,sr", i.Src)
	case CAS:
		return fmt.Sprintf("cas%s d%d,d%d,%s", szSuffix(i.Size()), i.Src.Reg, i.Fp, i.Dst)
	case FMOVE, FADD, FSUB, FMUL, FDIV:
		if i.Dst.Mode == ModeNone {
			return fmt.Sprintf("%s %s,fp%d", i.Op, i.Src, i.Fp)
		}
		return fmt.Sprintf("%s fp%d,%s", i.Op, i.Fp, i.Dst)
	}
	if i.Op.IsBranch() {
		if i.Op == DBRA {
			return fmt.Sprintf("dbra d%d,%d", i.Src.Reg, i.Dst.Imm)
		}
		return fmt.Sprintf("%s %d", i.Op, i.Dst.Imm)
	}
	if i.Src.Mode == ModeNone && i.Dst.Mode == ModeNone {
		return i.Op.String()
	}
	if i.Src.Mode == ModeNone {
		return fmt.Sprintf("%s%s %s", i.Op, szSuffix(i.Size()), i.Dst)
	}
	if i.Dst.Mode == ModeNone {
		return fmt.Sprintf("%s%s %s", i.Op, szSuffix(i.Size()), i.Src)
	}
	return fmt.Sprintf("%s%s %s,%s", i.Op, szSuffix(i.Size()), i.Src, i.Dst)
}
