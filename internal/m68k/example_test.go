package m68k_test

import (
	"fmt"

	"synthesis/internal/m68k"
)

// Example boots a bare Quamachine, runs a three-instruction program,
// then patches an instruction in place and runs it again — the
// smallest demonstration of the property the whole repository is
// built on: code space is data, and the machine (including its
// threaded-code translation cache) observes a patch on the very next
// fetch.
func Example() {
	m := m68k.New(m68k.Config{})
	entry := m.Emit([]m68k.Instr{
		{Op: m68k.MOVE, Src: m68k.Imm(6), Dst: m68k.D(0)},
		{Op: m68k.MULU, Src: m68k.Imm(7), Dst: m68k.D(0)},
		{Op: m68k.HALT},
	})
	m.PC = entry
	if err := m.Run(1 << 20); err != m68k.ErrHalted {
		fmt.Println(err)
		return
	}
	fmt.Printf("D0=%d after %d instructions, %d cycles\n", m.D[0], m.Instrs, m.Cycles)

	m.PatchCode(entry+1, m68k.Instr{Op: m68k.ADD, Src: m68k.Imm(100), Dst: m68k.D(0)})
	m.ClearHalt()
	m.PC = entry
	if err := m.Run(1 << 20); err != m68k.ErrHalted {
		fmt.Println(err)
		return
	}
	fmt.Printf("D0=%d after the patch\n", m.D[0])
	// Output:
	// D0=42 after 3 instructions, 33 cycles
	// D0=106 after the patch
}
