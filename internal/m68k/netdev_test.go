package m68k_test

import (
	"errors"
	"testing"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// newDeviceM builds a machine with the full device complement
// attached, as kernel.Boot does.
func newDeviceM(t *testing.T) *m68k.Machine {
	t.Helper()
	m := m68k.New(m68k.Config{MemSize: 1 << 16})
	m.Attach(m68k.NewTimer(m))
	m.Attach(m68k.NewTTY(m))
	m.Attach(m68k.NewDisk(m, 4))
	m.Attach(m68k.NewAD(m))
	m.Attach(m68k.NewCons())
	m.Attach(m68k.NewNet(m))
	return m
}

// TestDeviceWindowDispatch drives every registered device window
// through the machine's Load/Store device routing: accesses anywhere
// inside a window must reach the device (never RAM, never a fault),
// and addresses in the I/O region that no device claims must bus
// fault cleanly.
func TestDeviceWindowDispatch(t *testing.T) {
	m := newDeviceM(t)

	cases := []struct {
		name string
		base uint32
	}{
		{"timer", m68k.TimerBase},
		{"tty", m68k.TTYBase},
		{"disk", m68k.DiskBase},
		{"ad", m68k.ADBase},
		{"cons", m68k.ConsBase},
		{"net", m68k.NetBase},
	}
	for _, c := range cases {
		d := m.FindDevice(c.name)
		if d == nil {
			t.Fatalf("%s: not attached", c.name)
		}
		if d.Base() != c.base {
			t.Errorf("%s: base = %#x, want %#x", c.name, d.Base(), c.base)
		}
		// Probe the first and last longword of the window: both loads
		// and stores must dispatch to the device without faulting.
		for _, addr := range []uint32{c.base, c.base + d.Size() - 4} {
			if _, err := m.Load(addr, 4); err != nil {
				t.Errorf("%s: load %#x: %v", c.name, addr, err)
			}
			if err := m.Store(addr, 4, 0); err != nil {
				t.Errorf("%s: store %#x: %v", c.name, addr, err)
			}
		}
	}

	// Gaps in the I/O region — past the last window and far into the
	// unclaimed space — must fault, not fall through to RAM.
	for _, addr := range []uint32{
		m68k.NetBase + 0x100, // first byte past the last window
		m68k.IOBase + 0x800,
		m68k.IOBase + 0xfffc,
	} {
		var bf *m68k.BusFault
		if _, err := m.Load(addr, 4); !errors.As(err, &bf) {
			t.Errorf("load %#x: got %v, want bus fault", addr, err)
		}
		if err := m.Store(addr, 4, 0); !errors.As(err, &bf) {
			t.Errorf("store %#x: got %v, want bus fault", addr, err)
		}
	}
}

// configureNet programs the receive ring registers the way a driver
// would.
func configureNet(m *m68k.Machine, base, slots, slotSz uint32) {
	m.Store(m68k.NetBase+m68k.NetRegRxBase, 4, base)
	m.Store(m68k.NetBase+m68k.NetRegRxSlots, 4, slots)
	m.Store(m68k.NetBase+m68k.NetRegSlotSz, 4, slotSz)
	m.Store(m68k.NetBase+m68k.NetRegCtl, 4, 1)
}

func TestNetLoopbackDMA(t *testing.T) {
	m := newDeviceM(t)
	n := m.FindDevice("net").(*m68k.Net)

	const ring, slots, slotSz = 0x4000, 4, 256
	configureNet(m, ring, slots, slotSz)

	// Stage a frame and launch it: the length store fires the DMA.
	frame := []byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}
	m.PokeBytes(0x2000, frame)
	m.Store(m68k.NetBase+m68k.NetRegTxAddr, 4, 0x2000)
	m.Store(m68k.NetBase+m68k.NetRegTxLen, 4, uint32(len(frame)))

	if got, _ := m.Load(m68k.NetBase+m68k.NetRegRxHead, 4); got != 1 {
		t.Fatalf("rx head = %d, want 1", got)
	}
	if got := m.Peek(ring, 4); got != uint32(len(frame)) {
		t.Fatalf("slot length = %d, want %d", got, len(frame))
	}
	if got := m.PeekBytes(ring+4, len(frame)); string(got) != string(frame) {
		t.Fatalf("slot bytes = % x, want % x", got, frame)
	}

	// The delivery must have latched a level-IRQNet interrupt: a
	// spinning program with the mask open gets preempted into the
	// autovector handler (a halt stub here).
	stub := m.Emit([]m68k.Instr{{Op: m68k.HALT}})
	m.VBR = 0x100
	for v := 0; v < m68k.NumVectors; v++ {
		m.Poke(m.VBR+uint32(v)*4, 4, stub)
	}
	m.A[7] = 0x8000
	m.SSP = 0x8000
	b := asmkit.New()
	b.Label("spin")
	b.Nop()
	b.Bra("spin")
	m.PC = b.Link(m)
	m.SR = m68k.FlagS // supervisor, interrupt mask open
	if err := m.Run(10_000); !errors.Is(err, m68k.ErrHalted) {
		t.Fatalf("receive interrupt never delivered: %v", err)
	}

	// Consuming the slot via the tail register frees it.
	m.Store(m68k.NetBase+m68k.NetRegRxTail, 4, 1)
	if n.RxPending() != 0 {
		t.Fatalf("rx pending = %d after tail advance", n.RxPending())
	}
}

func TestNetRingFullDrops(t *testing.T) {
	m := newDeviceM(t)
	n := m.FindDevice("net").(*m68k.Net)
	configureNet(m, 0x4000, 2, 64)

	for i := 0; i < 3; i++ {
		n.InjectFrame([]byte{byte(i)})
	}
	if n.RxPending() != 2 {
		t.Fatalf("rx pending = %d, want 2 (ring size)", n.RxPending())
	}
	if n.Dropped() != 1 {
		t.Fatalf("drops = %d, want 1", n.Dropped())
	}
	// Oversize frames and frames while disabled also count as drops.
	n.InjectFrame(make([]byte, 64))
	m.Store(m68k.NetBase+m68k.NetRegCtl, 4, 0)
	n.InjectFrame([]byte{9})
	if n.Dropped() != 3 {
		t.Fatalf("drops = %d, want 3", n.Dropped())
	}
}

// TestNetTxHook: a fabric-attached NIC hands every launched frame to
// the Tx hook instead of the peer, and the hook's verdict lands in
// NetRegTxStat so guest-side retry/backoff sees fabric backpressure.
func TestNetTxHook(t *testing.T) {
	m := newDeviceM(t)
	n := m.FindDevice("net").(*m68k.Net)
	configureNet(m, 0x4000, 4, 64)

	var got [][]byte
	accept := true
	n.Tx = func(frame []byte) bool {
		got = append(got, frame)
		return accept
	}

	launch := func(frame []byte) uint32 {
		m.PokeBytes(0x2000, frame)
		m.Store(m68k.NetBase+m68k.NetRegTxAddr, 4, 0x2000)
		m.Store(m68k.NetBase+m68k.NetRegTxLen, 4, uint32(len(frame)))
		stat, _ := m.Load(m68k.NetBase+m68k.NetRegTxStat, 4)
		return stat
	}

	if stat := launch([]byte("to the fabric")); stat != 1 {
		t.Fatalf("tx stat = %d, want 1 (hook accepted)", stat)
	}
	accept = false
	if stat := launch([]byte("congested")); stat != 0 {
		t.Fatalf("tx stat = %d, want 0 (hook refused)", stat)
	}

	if len(got) != 2 || string(got[0]) != "to the fabric" || string(got[1]) != "congested" {
		t.Fatalf("hook saw %q", got)
	}
	// Frame slices are per-launch copies: the second launch overwrote
	// the staging area, the first capture must be intact.
	if string(got[0]) != "to the fabric" {
		t.Fatalf("hook frame aliased staging memory: %q", got[0])
	}
	// Hooked launches bypass local loopback delivery entirely.
	if n.RxPending() != 0 {
		t.Fatalf("rx pending = %d, want 0 (no loopback when hooked)", n.RxPending())
	}
	if cnt, _ := m.Load(m68k.NetBase+m68k.NetRegTxCount, 4); cnt != 2 {
		t.Fatalf("tx count = %d, want 2", cnt)
	}

	// Detaching the hook restores loopback delivery.
	n.Tx = nil
	if stat := launch([]byte("local again")); stat != 1 {
		t.Fatalf("tx stat after detach = %d, want 1", stat)
	}
	if n.RxPending() != 1 {
		t.Fatalf("rx pending after detach = %d, want 1", n.RxPending())
	}
}

func TestNetCrossMachine(t *testing.T) {
	ma := m68k.New(m68k.Config{MemSize: 1 << 16})
	mb := m68k.New(m68k.Config{MemSize: 1 << 16})
	na, nb := m68k.NewNet(ma), m68k.NewNet(mb)
	ma.Attach(na)
	mb.Attach(nb)
	m68k.ConnectNet(na, nb)

	configureNet(mb, 0x4000, 4, 64)

	frame := []byte("hello, peer")
	ma.PokeBytes(0x2000, frame)
	ma.Store(m68k.NetBase+m68k.NetRegTxAddr, 4, 0x2000)
	ma.Store(m68k.NetBase+m68k.NetRegTxLen, 4, uint32(len(frame)))

	if nb.RxPending() != 1 {
		t.Fatalf("peer rx pending = %d, want 1", nb.RxPending())
	}
	if got := mb.PeekBytes(0x4000+4, len(frame)); string(got) != string(frame) {
		t.Fatalf("peer slot = %q, want %q", got, frame)
	}
	if na.RxPending() != 0 {
		t.Fatal("frame delivered to sender, not peer")
	}
}
