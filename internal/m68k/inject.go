package m68k

// Injector is the fault-injection hook into the device layer. It
// follows the Probe pattern exactly: a nil Inj — the default — means
// no fault plane is attached, and the only cost the feature adds to a
// healthy machine is one nil check on the paths below. A non-nil
// injector sees every device-window access, every NIC frame on the
// wire, every receive-ring deposit and every timer arming, and may
// perturb each one deterministically (implementations seed their own
// RNG so a fault schedule replays exactly).
type Injector interface {
	// AccessFault is consulted on every load or store that lands in a
	// device register window. Returning true makes the access take a
	// bus-error exception instead of reaching the device — a modeled
	// bus error on the device's select line.
	AccessFault(dev Device, off uint32, write bool) bool

	// Frame intercepts one NIC frame on the wire. It returns the
	// frames that actually arrive (an empty slice models loss, more
	// than one models duplication, and the bytes may be corrupted)
	// plus extra delivery latency in cycles added to the receive
	// interrupt. The input slice must not be retained.
	Frame(frame []byte) (out [][]byte, delayCycles uint64)

	// RingFull is consulted per receive-ring deposit; returning true
	// forces the NIC to behave as if its ring were full, dropping the
	// frame and counting it as an overrun.
	RingFull() bool

	// TimerArm adjusts a timer arming interval (quantum or alarm),
	// modeling clock jitter. The returned interval replaces cycles.
	TimerArm(cycles uint64) uint64
}
