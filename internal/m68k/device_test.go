package m68k_test

import (
	"errors"
	"testing"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

func TestDiskWriteCommand(t *testing.T) {
	m := newM(t)
	disk := m68k.NewDisk(m, 8)
	m.Attach(disk)
	m.PokeBytes(0x7000, []byte("write me to block 5"))

	h := asmkit.New()
	h.MoveL(m68k.Imm(1), m68k.D(5))
	h.Rte()
	m.Poke(m.VBR+uint32(m68k.VecAutovector+m68k.IRQDisk)*4, 4, h.Link(m))

	b := asmkit.New()
	b.MoveL(m68k.Imm(5), m68k.Abs(m68k.DiskBase+m68k.DiskRegBlock))
	b.MoveL(m68k.Imm(0x7000), m68k.Abs(m68k.DiskBase+m68k.DiskRegAddr))
	b.MoveL(m68k.Imm(2), m68k.Abs(m68k.DiskBase+m68k.DiskRegCmd)) // write
	b.AndSR(^uint16(7 << 8))
	b.Label("wait")
	b.TstL(m68k.D(5))
	b.Beq("wait")
	b.Halt()
	run(t, m, b.Link(m))
	if got := string(disk.Blocks[5][:19]); got != "write me to block 5" {
		t.Errorf("disk block 5 = %q", got)
	}
}

func TestADDropCounting(t *testing.T) {
	m := newM(t)
	ad := m68k.NewAD(m)
	m.Attach(ad)
	// Start the sampler but never read the data register: every
	// sample after the first overwrites an unread one.
	b := asmkit.New()
	b.MoveL(m68k.Imm(1), m68k.Abs(m68k.ADBase+m68k.ADRegCtl))
	// Interrupts stay masked; just burn time for ~6 sample periods.
	b.MoveL(m68k.Imm(2000), m68k.D(0))
	b.Label("spin")
	b.Dbra(0, "spin")
	b.MoveL(m68k.Abs(m68k.ADBase+m68k.ADRegStatus), m68k.D(6))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[6] == 0 {
		t.Error("unconsumed samples were not counted as dropped")
	}
	if ad.Dropped != uint64(m.D[6]) {
		t.Errorf("host view %d != device register %d", ad.Dropped, m.D[6])
	}
}

func TestConsoleDevice(t *testing.T) {
	m := newM(t)
	cons := m68k.NewCons()
	m.Attach(cons)
	b := asmkit.New()
	for _, c := range []byte("ok") {
		b.MoveB(m68k.Imm(int32(c)), m68k.Abs(m68k.ConsBase))
	}
	b.Halt()
	run(t, m, b.Link(m))
	if cons.Output() != "ok" {
		t.Errorf("console output %q", cons.Output())
	}
}

func TestMoveFromToSR(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveFromSR(m68k.D(0))
	b.OrSR(0x0700) // raise the mask
	b.MoveFromSR(m68k.D(1))
	b.MoveToSR(m68k.D(0)) // restore
	b.MoveFromSR(m68k.D(2))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[1]&0x0700 != 0x0700 {
		t.Errorf("mask not raised: SR copy %#x", m.D[1])
	}
	if m.D[2] != m.D[0] {
		t.Errorf("SR not restored: %#x vs %#x", m.D[2], m.D[0])
	}
}

func TestPrivilegedOpsTrapInUserMode(t *testing.T) {
	m := newM(t)
	h := asmkit.New()
	h.MoveL(m68k.Imm(0xbad), m68k.D(6))
	h.Halt()
	m.Poke(m.VBR+uint32(m68k.VecPrivilege)*4, 4, h.Link(m))

	b := asmkit.New()
	b.MoveL(m68k.Imm(0x4000), m68k.D(0))
	b.MovecTo(m68k.CtrlUSP, m68k.D(0))
	b.MoveLabelL("user", m68k.PreDec(7))
	b.MoveL(m68k.Imm(0), m68k.PreDec(7))
	b.Rte()
	b.Label("user")
	b.OrSR(0x0700) // privileged in user mode: traps
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[6] != 0xbad {
		t.Error("privileged instruction in user mode did not trap")
	}
}

func TestCASWordAndByteSizes(t *testing.T) {
	m := newM(t)
	m.Poke(0x3000, 2, 0x1234)
	b := asmkit.New()
	b.MoveL(m68k.Imm(0x1234), m68k.D(0))
	b.MoveL(m68k.Imm(0x5678), m68k.D(1))
	b.Cas(2, 0, 1, m68k.Abs(0x3000))
	b.Beq("ok")
	b.MoveL(m68k.Imm(1), m68k.D(7))
	b.Halt()
	b.Label("ok")
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[7] != 0 {
		t.Fatal("word cas failed")
	}
	if got := m.Peek(0x3000, 2); got != 0x5678 {
		t.Errorf("word cas stored %#x", got)
	}
}

func TestTimerNowRegisters(t *testing.T) {
	m := newM(t)
	m.Attach(m68k.NewTimer(m))
	b := asmkit.New()
	b.MoveL(m68k.Abs(m68k.TimerBase+m68k.TimerRegNowLo), m68k.D(0))
	b.MoveL(m68k.Imm(100), m68k.D(2))
	b.Label("spin")
	b.Dbra(2, "spin")
	b.MoveL(m68k.Abs(m68k.TimerBase+m68k.TimerRegNowLo), m68k.D(1))
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[1] <= m.D[0] {
		t.Errorf("cycle counter did not advance: %d -> %d", m.D[0], m.D[1])
	}
}

func TestRunUntilStopsAtTarget(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(1), m68k.D(0))
	b.Label("target")
	b.MoveL(m68k.Imm(2), m68k.D(0))
	b.Halt()
	base := b.Link(m)
	m.PC = base
	if err := m.RunUntil(b.AddrOf("target", base), 1000); err != nil {
		t.Fatal(err)
	}
	if m.D[0] != 1 {
		t.Errorf("RunUntil overshot: D0 = %d", m.D[0])
	}
	if m.PC != b.AddrOf("target", base) {
		t.Errorf("PC = %d", m.PC)
	}
}

func TestCycleLimit(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.Label("forever")
	b.Bra("forever")
	m.PC = b.Link(m)
	if err := m.Run(500); !errors.Is(err, m68k.ErrCycleLimit) {
		t.Errorf("got %v, want ErrCycleLimit", err)
	}
}

func TestDisassembleOutput(t *testing.T) {
	m := newM(t)
	b := asmkit.New()
	b.MoveL(m68k.Imm(5), m68k.D(0))
	b.Cas(4, 0, 1, m68k.Abs(0x3000))
	b.MovemSave(0x7fff, m68k.PreDec(7))
	b.Trap(3)
	b.Halt()
	addr := b.Link(m)
	s := m68k.Disassemble(m.Code, addr, 5)
	for _, want := range []string{"move.l #5,d0", "cas", "movem", "trap #3", "halt"} {
		if !containsStr(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
