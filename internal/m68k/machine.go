package m68k

import (
	"errors"
	"fmt"
)

// Status register bits.
const (
	FlagC uint16 = 1 << 0 // carry
	FlagV uint16 = 1 << 1 // overflow
	FlagZ uint16 = 1 << 2 // zero
	FlagN uint16 = 1 << 3 // negative
	FlagX uint16 = 1 << 4 // extend

	iplShift        = 8
	iplMask  uint16 = 7 << iplShift
	FlagS    uint16 = 1 << 13 // supervisor state
	FlagT    uint16 = 1 << 15 // trace
)

// Exception vector numbers (68k conventions).
const (
	VecBusError     = 2
	VecAddressError = 3
	VecIllegal      = 4
	VecZeroDivide   = 5
	VecPrivilege    = 8
	VecTrace        = 9
	VecLineF        = 11 // co-processor protocol violation: first FP use
	VecAutovector   = 24 // +level 1..7 for interrupt autovectors
	VecTrapBase     = 32 // +n for TRAP #n
	NumVectors      = 64
)

// VectorTableBytes is the size of one vector table in memory. Each
// Synthesis thread carries its own table (the TTE's vector table).
const VectorTableBytes = NumVectors * 4

// Errors returned by execution. ErrHalted is the normal "machine
// executed HALT" condition; the others indicate simulation bugs or
// deliberately provoked faults in tests.
var (
	ErrHalted     = errors.New("m68k: machine halted")
	ErrCycleLimit = errors.New("m68k: cycle limit reached")
)

// BusFault describes an access outside mapped memory. It doubles as
// the Go-visible form of a double fault: the interpreter converts a
// fault into a VM exception when a handler is installed, and returns
// the fault to the caller when vectoring itself faults.
type BusFault struct {
	Addr  uint32
	Write bool
	PC    uint32
}

func (b *BusFault) Error() string {
	k := "read"
	if b.Write {
		k = "write"
	}
	return fmt.Sprintf("m68k: bus fault: %s at $%08x (pc %d)", k, b.Addr, b.PC)
}

// Service is a host escape invoked by KCALL. It may inspect and
// modify the machine, and returns the number of additional cycles to
// charge (a modeled cost for work not expressed as VM code).
type Service func(m *Machine) uint64

// Probe receives execution events for a measurement plane (the
// Quamachine's Section 6.1 instrumentation: cycle attribution,
// interrupt-latency tracing). A nil Probe — the default — disables
// all event delivery; the only cost the feature adds to an unprobed
// machine is one nil check per Step.
type Probe interface {
	// StepDone reports one completed Step: the PC the step started
	// at, the cycles and instructions it consumed, and whether the
	// CPU was stopped when the step began (stopped steps advance
	// time to the next device event rather than executing code).
	StepDone(pc uint32, cycles, instrs uint64, idle bool)
	// ExceptionTaken reports entry into an exception handler: the
	// vector, the interrupted PC, and the cycle of handler entry.
	ExceptionTaken(vec int, pc uint32, at uint64)
	// InterruptTaken reports a dispatched interrupt with the cycle
	// the level was first asserted and the cycle the handler was
	// entered (raise-to-entry latency is takenAt - raisedAt).
	InterruptTaken(level, vec int, raisedAt, takenAt uint64)
	// Charged reports modeled host-side cost added to the clock
	// outside instruction execution (see Machine.Charge).
	Charged(cycles uint64, what string)
}

// Device models a memory-mapped peripheral. Loads and stores in the
// device's address window are routed to it; Tick lets the device act
// on the advance of simulated time and request interrupts.
type Device interface {
	// Name identifies the device in diagnostics.
	Name() string
	// Base and Size define the register window in physical memory.
	Base() uint32
	Size() uint32
	// Load reads a device register (offset relative to Base).
	Load(off uint32, sz uint8) uint32
	// Store writes a device register.
	Store(off uint32, sz uint8, val uint32)
	// Tick advances the device to absolute cycle time t. It returns
	// the interrupt priority level (1-7) it wants to assert, or 0,
	// plus the cycle time of its next event (0 = no scheduled event).
	Tick(t uint64) (irq int, next uint64)
}

// Config sets the machine's hardware parameters. The zero value is
// adjusted to the Quamachine's native configuration; SUN 3/160
// emulation mode is 16 MHz with one wait state (Section 6.1).
type Config struct {
	MemSize    uint32  // bytes of RAM (default 4 MiB)
	CodeSize   uint32  // instructions of code space (default 1 Mi)
	ClockMHz   float64 // CPU clock (default 50)
	WaitStates int     // extra cycles per memory reference (default 0)
	TraceDepth int     // execution trace ring size (0 = tracing off)
}

// Sun3Config returns the configuration that emulates a SUN 3/160 as
// in the paper: 16 MHz and one memory wait state.
func Sun3Config() Config {
	return Config{ClockMHz: 16, WaitStates: 1}
}

// NativeConfig returns the Quamachine's native 50 MHz no-wait-state
// configuration.
func NativeConfig() Config {
	return Config{ClockMHz: 50, WaitStates: 0}
}

// Machine is one Quamachine CPU with its memory, code space and
// devices.
type Machine struct {
	// CPU state.
	D   [8]uint32 // data registers
	A   [8]uint32 // address registers; A[7] is the active stack pointer
	FP  [8]float64
	PC  uint32
	SR  uint16
	VBR uint32
	USP uint32 // saved user stack pointer while in supervisor state
	SSP uint32 // saved supervisor stack pointer while in user state

	// Quaspace protection: in user state, accesses outside
	// [UBase, ULimit) take a bus-error exception (the kernel "blanks
	// out the part of the address space that each quaspace is not
	// supposed to see", Section 2.1). ULimit == 0 disables the check.
	UBase  uint32
	ULimit uint32

	// FPTrap makes the first FP instruction raise a line-F exception,
	// implementing the lazy floating-point context switch of
	// Section 4.2: the kernel's handler resynthesizes the context
	// switch code to include FP state and clears the flag.
	FPTrap bool

	// Memory and code.
	Mem     []byte
	Code    []Instr
	CodeTop uint32 // next free code-space slot (bump allocated)

	// Timing model.
	ClockMHz   float64
	WaitStates int

	// Measurement facilities (Section 6.1: the Quamachine is
	// instrumented with an instruction counter, a memory reference
	// counter and a microsecond-resolution interval timer).
	Cycles  uint64
	Instrs  uint64
	MemRefs uint64
	Trace   *Trace

	// Probe is the attached measurement plane, nil when profiling is
	// off (see the Probe interface).
	Probe Probe

	// Inj is the attached fault-injection plane, nil when fault
	// injection is off (see the Injector interface).
	Inj Injector

	// Interrupts and devices.
	devices     []Device
	devNext     []uint64  // per-device next event time (0 = none)
	devFloor    uint32    // lowest device window base (max uint32 = none)
	nextPoll    uint64    // cached earliest devNext (0 = none); see tickDevice
	pendIRQ     uint8     // bitmask of pending interrupt levels
	irqRaisedAt [8]uint64 // cycle each pending level was first asserted
	stopped     bool      // STOP executed; waiting for interrupt
	halted      bool
	inStep      bool // executing inside Step (probe bookkeeping)
	services    [256]Service

	// xcache is the threaded-code translation cache, one entry per
	// code-space slot (see dispatch.go). An entry with a nil run
	// function is cold; the step loop translates it on first fetch.
	// Every write into code space MUST invalidate the covered slots
	// (SetCode, PatchCode), or a stale translation would keep
	// executing the old instruction — self-modifying synthesized code
	// is the kernel's normal mode of operation, not a corner case.
	xcache []xent
}

// New creates a machine with the given configuration.
func New(cfg Config) *Machine {
	if cfg.MemSize == 0 {
		cfg.MemSize = 4 << 20
	}
	if cfg.CodeSize == 0 {
		cfg.CodeSize = 1 << 20
	}
	if cfg.ClockMHz == 0 {
		cfg.ClockMHz = 50
	}
	m := &Machine{
		Mem:        make([]byte, cfg.MemSize),
		Code:       make([]Instr, 0, 4096),
		ClockMHz:   cfg.ClockMHz,
		WaitStates: cfg.WaitStates,
		SR:         FlagS | iplMask, // boot in supervisor state, interrupts masked
		devFloor:   ^uint32(0),
	}
	if cfg.TraceDepth > 0 {
		m.Trace = NewTrace(cfg.TraceDepth)
	}
	return m
}

// Micros converts a cycle count to microseconds at the machine's
// clock rate.
func (m *Machine) Micros(cycles uint64) float64 {
	return float64(cycles) / m.ClockMHz
}

// Now returns the current simulated time in microseconds.
func (m *Machine) Now() float64 { return m.Micros(m.Cycles) }

// Clock returns the current cycle count. Devices timestamp through
// this single accessor rather than reading Cycles directly, so a
// measurement or fault-injection layer has one place to interpose on
// the device view of simulated time.
func (m *Machine) Clock() uint64 { return m.Cycles }

// Charge adds modeled host-side cost to the cycle clock. Host code
// that consumes simulated time without executing VM instructions
// (e.g. the synthesis cost model) must charge through here: when the
// charge lands outside instruction execution an attached probe is
// told what the cycles were for, so a profiler can attribute them
// instead of losing them. Charges made from within a Service (inside
// Step) are folded into that step's delta and need no separate event.
func (m *Machine) Charge(cycles uint64, what string) {
	m.Cycles += cycles
	if m.Probe != nil && !m.inStep {
		m.Probe.Charged(cycles, what)
	}
}

// Supervisor reports whether the CPU is in supervisor state.
func (m *Machine) Supervisor() bool { return m.SR&FlagS != 0 }

// IPL returns the current interrupt priority mask level.
func (m *Machine) IPL() int { return int(m.SR&iplMask) >> iplShift }

// SetIPL sets the interrupt priority mask level.
func (m *Machine) SetIPL(l int) {
	m.SR = m.SR&^iplMask | uint16(l)<<iplShift&iplMask
}

// Halted reports whether HALT has been executed.
func (m *Machine) Halted() bool { return m.halted }

// ClearHalt lets a halted machine run again (simulation control: the
// harness reuses one machine for several measured programs).
func (m *Machine) ClearHalt() { m.halted = false }

// RegisterService installs a KCALL host service under the given id.
func (m *Machine) RegisterService(id uint8, s Service) {
	m.services[id] = s
}

// Attach adds a memory-mapped device.
func (m *Machine) Attach(d Device) {
	m.devices = append(m.devices, d)
	m.devNext = append(m.devNext, 0)
	if d.Base() < m.devFloor {
		m.devFloor = d.Base()
	}
	m.tickDevice(len(m.devices)-1, m.Cycles)
}

// Devices returns the attached devices.
func (m *Machine) Devices() []Device { return m.devices }

// FindDevice returns the attached device with the given name, or nil.
func (m *Machine) FindDevice(name string) Device {
	for _, d := range m.devices {
		if d.Name() == name {
			return d
		}
	}
	return nil
}

// PostInterrupt asserts an interrupt at the given priority level
// (1-7). Used by devices and by tests. The cycle of the first
// assertion is kept per level (re-raising an already-pending level
// does not move it) so interrupt latency is measured from the raise
// the handler actually answers.
func (m *Machine) PostInterrupt(level int) {
	if level >= 1 && level <= 7 {
		bit := uint8(1) << uint(level)
		if m.pendIRQ&bit == 0 {
			m.irqRaisedAt[level] = m.Cycles
		}
		m.pendIRQ |= bit
	}
}

// deviceFor returns the device mapping addr, or nil.
func (m *Machine) deviceFor(addr uint32) Device {
	for _, d := range m.devices {
		if addr >= d.Base() && addr < d.Base()+d.Size() {
			return d
		}
	}
	return nil
}

// memCost is the cycle cost of one memory reference.
func (m *Machine) memCost() uint64 {
	return uint64(cycMemRef + m.WaitStates)
}

// chargeMem accounts for n memory references.
func (m *Machine) chargeMem(n int) {
	m.MemRefs += uint64(n)
	m.Cycles += uint64(n) * m.memCost()
}

// Kick re-polls a device immediately. Devices call it (and the
// machine calls it after register accesses) so that freshly armed
// events are scheduled even between Tick calls.
func (m *Machine) Kick(d Device) {
	for i, dd := range m.devices {
		if dd == d {
			m.tickDevice(i, m.Cycles)
			return
		}
	}
}

// Load reads sz bytes big-endian from addr. Device windows are routed
// to the owning device. The access is charged to the cycle and
// memory-reference counters.
func (m *Machine) Load(addr uint32, sz uint8) (uint32, error) {
	m.chargeMem(1)
	// RAM fast path: every device window sits at or above devFloor, so
	// an access strictly below it cannot hit a device (and device fault
	// injection, which applies only to device windows, cannot apply).
	if addr < m.devFloor {
		if int(addr)+int(sz) > len(m.Mem) {
			return 0, &BusFault{Addr: addr, PC: m.PC}
		}
		return m.loadRaw(addr, sz), nil
	}
	if d := m.deviceFor(addr); d != nil {
		if m.Inj != nil && m.Inj.AccessFault(d, addr-d.Base(), false) {
			return 0, &BusFault{Addr: addr, PC: m.PC}
		}
		v := d.Load(addr-d.Base(), sz)
		m.Kick(d)
		return v, nil
	}
	if int(addr)+int(sz) > len(m.Mem) {
		return 0, &BusFault{Addr: addr, PC: m.PC}
	}
	return m.loadRaw(addr, sz), nil
}

// loadRaw reads memory without charge or device routing.
func (m *Machine) loadRaw(addr uint32, sz uint8) uint32 {
	switch sz {
	case 1:
		return uint32(m.Mem[addr])
	case 2:
		return uint32(m.Mem[addr])<<8 | uint32(m.Mem[addr+1])
	default:
		return uint32(m.Mem[addr])<<24 | uint32(m.Mem[addr+1])<<16 |
			uint32(m.Mem[addr+2])<<8 | uint32(m.Mem[addr+3])
	}
}

// Store writes sz bytes big-endian to addr, with device routing and
// cycle charging.
func (m *Machine) Store(addr uint32, sz uint8, val uint32) error {
	m.chargeMem(1)
	if addr < m.devFloor { // RAM fast path, see Load
		if int(addr)+int(sz) > len(m.Mem) {
			return &BusFault{Addr: addr, Write: true, PC: m.PC}
		}
		m.storeRaw(addr, sz, val)
		return nil
	}
	if d := m.deviceFor(addr); d != nil {
		if m.Inj != nil && m.Inj.AccessFault(d, addr-d.Base(), true) {
			return &BusFault{Addr: addr, Write: true, PC: m.PC}
		}
		d.Store(addr-d.Base(), sz, val)
		m.Kick(d)
		return nil
	}
	if int(addr)+int(sz) > len(m.Mem) {
		return &BusFault{Addr: addr, Write: true, PC: m.PC}
	}
	m.storeRaw(addr, sz, val)
	return nil
}

// storeRaw writes memory without charge or device routing.
func (m *Machine) storeRaw(addr uint32, sz uint8, val uint32) {
	switch sz {
	case 1:
		m.Mem[addr] = byte(val)
	case 2:
		m.Mem[addr] = byte(val >> 8)
		m.Mem[addr+1] = byte(val)
	default:
		m.Mem[addr] = byte(val >> 24)
		m.Mem[addr+1] = byte(val >> 16)
		m.Mem[addr+2] = byte(val >> 8)
		m.Mem[addr+3] = byte(val)
	}
}

// Peek reads memory for the benefit of the host (no cycle charge, no
// device routing). Out-of-range reads return 0.
func (m *Machine) Peek(addr uint32, sz uint8) uint32 {
	if int(addr)+int(sz) > len(m.Mem) {
		return 0
	}
	return m.loadRaw(addr, sz)
}

// Poke writes memory for the benefit of the host (no cycle charge).
func (m *Machine) Poke(addr uint32, sz uint8, val uint32) {
	if int(addr)+int(sz) <= len(m.Mem) {
		m.storeRaw(addr, sz, val)
	}
}

// PeekBytes copies n bytes out of memory for the host.
func (m *Machine) PeekBytes(addr uint32, n int) []byte {
	out := make([]byte, n)
	copy(out, m.Mem[addr:])
	return out
}

// PokeBytes copies bytes into memory for the host.
func (m *Machine) PokeBytes(addr uint32, b []byte) {
	copy(m.Mem[addr:], b)
}

// AllocCode reserves n instruction slots in code space and returns
// the address of the first. Synthesized routines are emitted here at
// run time; the kernel allocates regions per quaject. The translation
// cache grows in lockstep: xcache and Code are always the same
// length, so the step loop's single bounds check covers both.
func (m *Machine) AllocCode(n int) uint32 {
	addr := uint32(len(m.Code))
	m.Code = append(m.Code, make([]Instr, n)...)
	m.xcache = append(m.xcache, make([]xent, n)...)
	m.CodeTop = uint32(len(m.Code))
	return addr
}

// SetCode installs instructions at a previously allocated code
// address. Patching already-installed code is legal: executable data
// structures (Section 2.2) depend on it. The covered translation
// cache lines are invalidated so the next fetch decodes the new code.
func (m *Machine) SetCode(addr uint32, code []Instr) {
	copy(m.Code[addr:], code)
	m.invalidateCode(addr, len(code))
}

// PatchCode rewrites a single instruction slot and invalidates its
// translation cache line. All run-time patching of installed code
// (executable data structures, the synthesizer's in-place rebuilds,
// kernel panic stamping) must go through here or SetCode — a direct
// Code[i] store would leave a stale translation executing the old
// instruction.
func (m *Machine) PatchCode(addr uint32, in Instr) {
	m.Code[addr] = in
	m.xcache[addr] = xent{}
}

// invalidateCode clears the translation cache lines covering
// [addr, addr+n).
func (m *Machine) invalidateCode(addr uint32, n int) {
	for i := 0; i < n; i++ {
		m.xcache[addr+uint32(i)] = xent{}
	}
}

// Emit appends code at the end of code space and returns its address.
func (m *Machine) Emit(code []Instr) uint32 {
	addr := m.AllocCode(len(code))
	m.SetCode(addr, code)
	return addr
}

// push stores a long word on the active stack.
func (m *Machine) push(val uint32) error {
	m.A[7] -= 4
	return m.Store(m.A[7], 4, val)
}

// pop loads a long word from the active stack.
func (m *Machine) pop() (uint32, error) {
	v, err := m.Load(m.A[7], 4)
	m.A[7] += 4
	return v, err
}

// enterSupervisor switches the active stack to the supervisor stack
// if the CPU was in user state.
func (m *Machine) enterSupervisor() {
	if m.SR&FlagS == 0 {
		m.USP = m.A[7]
		m.A[7] = m.SSP
		m.SR |= FlagS
	}
}

// leaveSupervisor restores user state if the new SR has S clear.
func (m *Machine) applySR(newSR uint16) {
	wasS := m.SR&FlagS != 0
	m.SR = newSR
	isS := m.SR&FlagS != 0
	if wasS && !isS {
		m.SSP = m.A[7]
		m.A[7] = m.USP
	} else if !wasS && isS {
		m.USP = m.A[7]
		m.A[7] = m.SSP
	}
}

// Exception vectors the CPU through vector v: pushes SR and PC on the
// supervisor stack and loads the handler address from the vector
// table at VBR. The vector-table slot holds a code-space address.
func (m *Machine) Exception(v int) error {
	oldSR := m.SR
	m.enterSupervisor()
	// Exception entry clears the trace bit (as on the 68k): handlers
	// run untraced; the stacked SR preserves the flag for RTE.
	m.SR &^= FlagT
	m.stopped = false
	m.Cycles += uint64(cycException)
	if err := m.push(m.PC); err != nil {
		return err
	}
	if err := m.push(uint32(oldSR)); err != nil {
		return err
	}
	handler, err := m.Load(m.VBR+uint32(v)*4, 4)
	if err != nil {
		return err
	}
	if m.Trace != nil {
		m.Trace.RecordException(v, m.PC)
	}
	if m.Probe != nil {
		m.Probe.ExceptionTaken(v, m.PC, m.Cycles)
	}
	m.PC = handler
	return nil
}

// tickDevice advances one device and records its next event. The
// nextPoll cache is lowered conservatively (never raised here): it
// may go stale-early when a device moves its event later, which costs
// one wasted scan, but it is never later than a pending event, so the
// step loop's single-compare fast path cannot miss a tick.
func (m *Machine) tickDevice(i int, t uint64) {
	irq, next := m.devices[i].Tick(t)
	if irq > 0 {
		m.PostInterrupt(irq)
	}
	m.devNext[i] = next
	if next != 0 && (m.nextPoll == 0 || next < m.nextPoll) {
		m.nextPoll = next
	}
}

// pollDevices advances all devices whose next event time has come,
// then recomputes the exact earliest pending event.
func (m *Machine) pollDevices() {
	for i := range m.devices {
		if n := m.devNext[i]; n != 0 && n <= m.Cycles {
			m.tickDevice(i, m.Cycles)
		}
	}
	m.nextPoll = m.nextDeviceEvent()
}

// pendingLevel returns the highest pending interrupt level above the
// current mask, or 0.
func (m *Machine) pendingLevel() int {
	if m.pendIRQ == 0 {
		return 0
	}
	for l := 7; l >= 1; l-- {
		if m.pendIRQ&(1<<uint(l)) != 0 {
			// Level 7 is non-maskable on the 68k.
			if l > m.IPL() || l == 7 {
				return l
			}
			return 0
		}
	}
	return 0
}

// takeInterrupt dispatches the highest pending interrupt if the mask
// allows. Reports whether an interrupt was taken.
func (m *Machine) takeInterrupt() (bool, error) {
	l := m.pendingLevel()
	if l == 0 {
		return false, nil
	}
	m.pendIRQ &^= 1 << uint(l)
	raisedAt := m.irqRaisedAt[l]
	if err := m.Exception(VecAutovector + l); err != nil {
		return false, err
	}
	m.SetIPL(l)
	if m.Probe != nil {
		m.Probe.InterruptTaken(l, VecAutovector+l, raisedAt, m.Cycles)
	}
	return true, nil
}
