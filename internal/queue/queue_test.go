package queue_test

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"synthesis/internal/queue"
)

// ---------------------------------------------------------------------
// Basic FIFO behaviour shared by all queue kinds.

type nb interface {
	TryPut(int) bool
	TryGet() (int, bool)
	Len() int
	Cap() int
}

func kinds(size int) map[string]func() nb {
	return map[string]func() nb{
		"dedicated": func() nb { return queue.NewDedicated[int](size) },
		"spsc":      func() nb { return queue.NewSPSC[int](size) },
		"mpsc":      func() nb { return queue.NewMPSC[int](size) },
		"spmc":      func() nb { return queue.NewSPMC[int](size) },
		"mpmc":      func() nb { return queue.NewMPMC[int](size) },
		"locked":    func() nb { return queue.NewLocked[int](size) },
		"buffered":  func() nb { return bufferedAdapter(size) },
	}
}

// bufferedAdapter flushes eagerly so single-threaded FIFO tests see
// items immediately.
type flushingBuffered struct{ *queue.Buffered[int] }

func (f flushingBuffered) TryPut(v int) bool {
	if !f.Buffered.TryPut(v) {
		return false
	}
	f.Buffered.Flush()
	return true
}

func bufferedAdapter(size int) nb {
	return flushingBuffered{queue.NewBuffered[int](4, size+1)}
}

func TestFIFOOrder(t *testing.T) {
	for name, mk := range kinds(8) {
		t.Run(name, func(t *testing.T) {
			q := mk()
			for i := 0; i < 8; i++ {
				if !q.TryPut(i * 10) {
					t.Fatalf("put %d failed on non-full queue", i)
				}
			}
			for i := 0; i < 8; i++ {
				v, ok := q.TryGet()
				if !ok || v != i*10 {
					t.Fatalf("get %d = (%d,%v), want (%d,true)", i, v, ok, i*10)
				}
			}
			if _, ok := q.TryGet(); ok {
				t.Error("get on empty queue succeeded")
			}
		})
	}
}

func TestFullRejectsPut(t *testing.T) {
	for name, mk := range kinds(4) {
		if name == "buffered" {
			continue // buffered capacity is chunked; tested separately
		}
		t.Run(name, func(t *testing.T) {
			q := mk()
			n := 0
			for q.TryPut(n) {
				n++
				if n > 100 {
					t.Fatal("queue never filled")
				}
			}
			if n < 3 {
				t.Fatalf("filled after only %d items (cap should be ~4)", n)
			}
			// Draining one must admit exactly one more.
			if _, ok := q.TryGet(); !ok {
				t.Fatal("drain failed")
			}
			if !q.TryPut(999) {
				t.Error("put after drain failed")
			}
			if q.TryPut(1000) {
				t.Error("put into full queue succeeded")
			}
		})
	}
}

func TestInterleavedWraparound(t *testing.T) {
	for name, mk := range kinds(3) {
		t.Run(name, func(t *testing.T) {
			q := mk()
			want := 0
			for i := 0; i < 50; i++ {
				if !q.TryPut(i) {
					t.Fatalf("put %d failed", i)
				}
				if i%2 == 1 { // drain two every other step
					for k := 0; k < 2; k++ {
						v, ok := q.TryGet()
						if !ok || v != want {
							t.Fatalf("get = (%d,%v), want (%d,true)", v, ok, want)
						}
						want++
					}
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Property test: any interleaving of puts and gets matches a model
// FIFO exactly (single-threaded semantics).

func TestQueueMatchesModel(t *testing.T) {
	check := func(seed int64, sizeRaw uint8) bool {
		size := int(sizeRaw%16) + 1
		rng := rand.New(rand.NewSource(seed))
		for name, mk := range kinds(size) {
			q := mk()
			var model []int
			capSeen := q.Cap()
			for op := 0; op < 200; op++ {
				if rng.Intn(2) == 0 {
					v := rng.Intn(1000)
					ok := q.TryPut(v)
					if ok {
						model = append(model, v)
					} else if len(model) < capSeen && name != "buffered" {
						t.Logf("%s: put failed with %d/%d items", name, len(model), capSeen)
						return false
					}
				} else {
					v, ok := q.TryGet()
					if ok {
						if len(model) == 0 {
							t.Logf("%s: got %d from empty queue", name, v)
							return false
						}
						if v != model[0] {
							t.Logf("%s: got %d, want %d", name, v, model[0])
							return false
						}
						model = model[1:]
					} else if len(model) != 0 && name != "buffered" {
						t.Logf("%s: get failed with %d items queued", name, len(model))
						return false
					}
				}
			}
			// Drain and compare the remainder. The buffered queue may
			// be holding items in a partial chunk that could not be
			// flushed while the chunk queue was full; draining frees
			// space, so flush between gets.
			f, isB := q.(flushingBuffered)
			if isB {
				f.Buffered.Flush()
			}
			for _, want := range model {
				v, ok := q.TryGet()
				if !ok && isB {
					f.Buffered.Flush()
					v, ok = q.TryGet()
				}
				if !ok || v != want {
					t.Logf("%s: drain got (%d,%v), want %d", name, v, ok, want)
					return false
				}
			}
			if _, ok := q.TryGet(); ok {
				t.Logf("%s: queue not empty after drain", name)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// Concurrency: no lost or duplicated items under contention. Run with
// -race.

// checkTransfer runs producers and consumers and verifies the
// multiset of received values: nothing lost, nothing duplicated.
func checkTransfer(t *testing.T, producers, consumers, perProducer int,
	put func(int) bool, get func() (int, bool)) {
	t.Helper()
	total := int64(producers * perProducer)
	var got sync.Map
	var wg sync.WaitGroup
	var received atomic.Int64

	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, ok := get()
				if !ok {
					if received.Load() >= total {
						return
					}
					runtime.Gosched()
					continue
				}
				if _, dup := got.LoadOrStore(v, true); dup {
					t.Errorf("duplicate item %d", v)
				}
				received.Add(1)
			}
		}()
	}
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				v := p*perProducer + i
				for !put(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	wg.Wait()
	count := int64(0)
	got.Range(func(k, v any) bool { count++; return true })
	if count != total {
		t.Errorf("received %d distinct items, want %d", count, total)
	}
}

func TestSPSCConcurrent(t *testing.T) {
	q := queue.NewSPSC[int](64)
	checkTransfer(t, 1, 1, 20000, q.TryPut, q.TryGet)
}

func TestMPSCConcurrent(t *testing.T) {
	q := queue.NewMPSC[int](64)
	checkTransfer(t, 8, 1, 5000, q.TryPut, q.TryGet)
}

func TestSPMCConcurrent(t *testing.T) {
	q := queue.NewSPMC[int](64)
	checkTransfer(t, 1, 8, 20000, q.TryPut, q.TryGet)
}

func TestMPMCConcurrent(t *testing.T) {
	q := queue.NewMPMC[int](64)
	checkTransfer(t, 8, 8, 5000, q.TryPut, q.TryGet)
}

func TestLockedConcurrent(t *testing.T) {
	q := queue.NewLocked[int](64)
	checkTransfer(t, 8, 8, 5000, q.TryPut, q.TryGet)
}

func TestBufferedConcurrent(t *testing.T) {
	b := queue.NewBuffered[int](8, 32)
	put := func(v int) bool {
		if !b.TryPut(v) {
			return false
		}
		b.Flush() // keep the consumer fed even with partial chunks
		return true
	}
	checkTransfer(t, 1, 1, 20000, put, b.TryGet)
}

func TestMPSCPutBatchAtomicity(t *testing.T) {
	// Batches from competing producers must never interleave.
	q := queue.NewMPSC[int](256)
	const batch = 16
	const perProducer = 200
	const producers = 4
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			items := make([]int, batch)
			for i := 0; i < perProducer; i++ {
				base := (p*perProducer + i) * batch
				for k := range items {
					items[k] = base + k
				}
				for !q.PutBatch(items) {
				}
			}
		}(p)
	}
	got := 0
	seen := make(map[int]bool)
	for got < producers*perProducer*batch {
		v, ok := q.TryGet()
		if !ok {
			continue
		}
		if seen[v] {
			t.Fatalf("duplicate %d", v)
		}
		seen[v] = true
		// Check batch contiguity: items within one batch must arrive
		// consecutively.
		if v%batch == 0 {
			for k := 1; k < batch; k++ {
				w, ok := q.TryGet()
				for !ok {
					w, ok = q.TryGet()
				}
				if w != v+k {
					t.Fatalf("batch interleaved: got %d after %d, want %d", w, v, v+k)
				}
				seen[w] = true
				got++
			}
		}
		got++
	}
	wg.Wait()
}

func TestPutBatchRejectsOversizeAndFull(t *testing.T) {
	q := queue.NewMPSC[int](8)
	if q.PutBatch(make([]int, 9)) {
		t.Error("batch larger than capacity accepted")
	}
	if !q.PutBatch([]int{1, 2, 3, 4, 5, 6}) {
		t.Error("fitting batch rejected")
	}
	if q.PutBatch([]int{7, 8, 9}) {
		t.Error("batch exceeding remaining space accepted")
	}
	if !q.PutBatch(nil) {
		t.Error("empty batch rejected")
	}
	// Drain some, then it fits.
	q.TryGet()
	q.TryGet()
	q.TryGet()
	if !q.PutBatch([]int{7, 8, 9}) {
		t.Error("batch rejected after drain")
	}
}

func TestBlockingWrapper(t *testing.T) {
	b := queue.Blocking[int]{Q: queue.NewSPSC[int](4)}
	done := make(chan int)
	go func() {
		sum := 0
		for i := 0; i < 100; i++ {
			sum += b.Get()
		}
		done <- sum
	}()
	want := 0
	for i := 0; i < 100; i++ {
		b.Put(i)
		want += i
	}
	if got := <-done; got != want {
		t.Errorf("sum = %d, want %d", got, want)
	}
}

func TestLockedBlockingPutGet(t *testing.T) {
	q := queue.NewLocked[int](2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if !q.Put(i) {
				t.Error("put failed before close")
				return
			}
		}
		q.Close()
	}()
	got := 0
	for {
		v, ok := q.Get()
		if !ok {
			break
		}
		if v != got {
			t.Fatalf("got %d, want %d", v, got)
		}
		got++
	}
	if got != 50 {
		t.Errorf("received %d items, want 50", got)
	}
	wg.Wait()
	if q.Put(1) {
		t.Error("put after close succeeded")
	}
}

func TestNotifySignals(t *testing.T) {
	notEmpty := 0
	notFull := 0
	n := queue.Notify[int]{
		Q:          queue.NewSPSC[int](2),
		OnNotEmpty: func() { notEmpty++ },
		OnNotFull:  func() { notFull++ },
	}
	n.TryPut(1) // empty -> signals
	n.TryPut(2) // not empty -> silent
	if notEmpty != 1 {
		t.Errorf("notEmpty fired %d times, want 1", notEmpty)
	}
	n.TryGet() // full -> signals
	n.TryGet()
	if notFull != 1 {
		t.Errorf("notFull fired %d times, want 1", notFull)
	}
	// Empty again: next put signals again (edge-triggered).
	n.TryPut(3)
	if notEmpty != 2 {
		t.Errorf("notEmpty fired %d times, want 2", notEmpty)
	}
}

func TestBufferedChunking(t *testing.T) {
	b := queue.NewBuffered[int](8, 4)
	if b.BlockingFactor() != 8 {
		t.Fatal("blocking factor lost")
	}
	// Items are invisible until a full chunk or a flush.
	for i := 0; i < 7; i++ {
		if !b.TryPut(i) {
			t.Fatalf("put %d failed", i)
		}
	}
	if _, ok := b.TryGet(); ok {
		t.Error("partial chunk visible without flush")
	}
	b.TryPut(7) // completes the chunk
	for i := 0; i < 8; i++ {
		v, ok := b.TryGet()
		if !ok || v != i {
			t.Fatalf("get = (%d,%v), want (%d,true)", v, ok, i)
		}
	}
	// Flush exposes partials.
	b.TryPut(100)
	b.Flush()
	if v, ok := b.TryGet(); !ok || v != 100 {
		t.Errorf("flushed partial = (%d,%v)", v, ok)
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSPSC(0) did not panic")
		}
	}()
	queue.NewSPSC[int](0)
}
