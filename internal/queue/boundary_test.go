package queue_test

import (
	"sync/atomic"
	"testing"

	"synthesis/internal/queue"
)

// TestWraparoundTable drives every queue kind through put/get patterns
// that repeatedly cross the index wraparound and the full and empty
// boundaries, checked step by step against a model FIFO. A TryPut that
// reports false must leave the queue untouched — the "would block"
// result is a distinct outcome, never a silent drop — and a TryPut
// that reports true must deliver exactly that item in order.
func TestWraparoundTable(t *testing.T) {
	type step struct{ puts, gets int }
	cases := []struct {
		name    string
		size    int
		pattern []step
		laps    int
	}{
		{"lockstep", 1, []step{{1, 1}}, 40},
		{"pairs", 2, []step{{2, 2}}, 30},
		{"overrun", 3, []step{{5, 2}, {3, 4}}, 20},
		{"brim", 4, []step{{4, 4}}, 25},
		{"drain-behind", 5, []step{{3, 1}, {1, 3}}, 25},
		{"prime-stride", 7, []step{{5, 3}, {2, 4}}, 20},
		{"gorge-and-drain", 4, []step{{9, 9}}, 15},
	}
	for _, tc := range cases {
		for name, mk := range kinds(tc.size) {
			if name == "buffered" {
				continue // chunked capacity; covered by its own tests
			}
			t.Run(tc.name+"/"+name, func(t *testing.T) {
				q := mk()
				capacity := q.Cap() // mpmc widens 1-slot queues to 2
				var model []int
				next := 0
				for lap := 0; lap < tc.laps; lap++ {
					for _, st := range tc.pattern {
						for i := 0; i < st.puts; i++ {
							ok := q.TryPut(next)
							if want := len(model) < capacity; ok != want {
								t.Fatalf("lap %d: TryPut(%d) = %v with %d/%d queued",
									lap, next, ok, len(model), capacity)
							}
							if ok {
								model = append(model, next)
								next++
							}
						}
						for i := 0; i < st.gets; i++ {
							v, ok := q.TryGet()
							if want := len(model) > 0; ok != want {
								t.Fatalf("lap %d: TryGet = (_, %v) with %d queued",
									lap, ok, len(model))
							}
							if ok {
								if v != model[0] {
									t.Fatalf("lap %d: got %d, want %d", lap, v, model[0])
								}
								model = model[1:]
							}
						}
					}
				}
				for len(model) > 0 {
					v, ok := q.TryGet()
					if !ok || v != model[0] {
						t.Fatalf("drain: got (%d, %v), want (%d, true)", v, ok, model[0])
					}
					model = model[1:]
				}
				if v, ok := q.TryGet(); ok {
					t.Fatalf("empty queue yielded %d", v)
				}
			})
		}
	}
}

// TestConcurrentFullEmptyRaces hammers tiny (capacity 2) queues so
// producers constantly race the full boundary and consumers the empty
// one, then verifies the transfer multiset: every item whose TryPut
// reported true arrives exactly once, and rejected puts really
// happened — the boundary was contended, not skated past. Run with
// -race.
func TestConcurrentFullEmptyRaces(t *testing.T) {
	cases := []struct {
		name                 string
		producers, consumers int
		mk                   func() nb
	}{
		{"spsc", 1, 1, func() nb { return queue.NewSPSC[int](2) }},
		{"mpsc", 8, 1, func() nb { return queue.NewMPSC[int](2) }},
		{"spmc", 1, 8, func() nb { return queue.NewSPMC[int](2) }},
		{"mpmc", 8, 8, func() nb { return queue.NewMPMC[int](2) }},
		{"locked", 8, 8, func() nb { return queue.NewLocked[int](2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := tc.mk()
			var fullHits, emptyHits atomic.Int64
			put := func(v int) bool {
				ok := q.TryPut(v)
				if !ok {
					fullHits.Add(1)
				}
				return ok
			}
			get := func() (int, bool) {
				v, ok := q.TryGet()
				if !ok {
					emptyHits.Add(1)
				}
				return v, ok
			}
			checkTransfer(t, tc.producers, tc.consumers, 8000/tc.producers, put, get)
			if fullHits.Load() == 0 {
				t.Error("no put ever found the queue full; boundary untested")
			}
			if emptyHits.Load() == 0 {
				t.Error("no get ever found the queue empty; boundary untested")
			}
		})
	}
}
