package queue

import "sync/atomic"

// MPMC is the multiple-producer multiple-consumer optimistic queue.
// The paper builds MP-MC by attaching the compare-and-swap claim to
// both ends; the per-slot valid flag generalizes to a per-slot
// sequence number so a slot can tell whether it is ready for the
// producer or the consumer of a given lap, which keeps the queue
// correct across index wraparound with any number of participants on
// both sides.
//
// Any number of goroutines may call TryPut and TryGet.
type MPMC[T any] struct {
	slots []mpmcSlot[T]
	head  atomic.Int64
	tail  atomic.Int64
}

type mpmcSlot[T any] struct {
	seq atomic.Int64
	v   T
}

// NewMPMC creates an MPMC queue holding up to size items. The
// effective capacity is at least 2: with a single slot the sequence
// scheme cannot distinguish "free for lap h" from "still full from
// lap h-1" (both read h), so one-slot queues are silently widened.
func NewMPMC[T any](size int) *MPMC[T] {
	if size < 1 {
		panic("queue: size must be positive")
	}
	if size < 2 {
		size = 2
	}
	q := &MPMC[T]{slots: make([]mpmcSlot[T], size)}
	for i := range q.slots {
		q.slots[i].seq.Store(int64(i))
	}
	return q
}

// Cap returns the queue capacity.
func (q *MPMC[T]) Cap() int { return len(q.slots) }

// Len returns the apparent number of items; approximate under
// concurrency.
func (q *MPMC[T]) Len() int {
	n := q.head.Load() - q.tail.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// TryPut appends one item, reporting false when the queue is full.
func (q *MPMC[T]) TryPut(v T) bool {
	size := int64(len(q.slots))
	for {
		h := q.head.Load()
		s := &q.slots[h%size]
		seq := s.seq.Load()
		switch {
		case seq == h:
			// Slot is free for lap h: stake the claim.
			if q.head.CompareAndSwap(h, h+1) {
				s.v = v
				s.seq.Store(h + 1) // publish to consumers
				return true
			}
		case seq < h:
			// Slot still holds the previous lap's item: full.
			return false
		default:
			// Another producer already advanced; retry with a fresh
			// head.
		}
	}
}

// TryGet removes the oldest item, reporting false when empty.
func (q *MPMC[T]) TryGet() (T, bool) {
	size := int64(len(q.slots))
	for {
		t := q.tail.Load()
		s := &q.slots[t%size]
		seq := s.seq.Load()
		switch {
		case seq == t+1:
			if q.tail.CompareAndSwap(t, t+1) {
				v := s.v
				var zero T
				s.v = zero
				s.seq.Store(t + size) // hand the slot to lap t+size
				return v, true
			}
		case seq < t+1:
			var zero T
			return zero, false
		default:
		}
	}
}
