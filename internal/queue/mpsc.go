package queue

import "sync/atomic"

// MPSC is the multiple-producer single-consumer optimistic queue of
// Figure 2. Producers "stake a claim" to buffer space by advancing
// the head index with a compare-and-swap and a retry loop, then fill
// their claimed slots concurrently with other producers. Because the
// head index alone no longer proves that data is present, a valid
// flag per slot tells the consumer which slots have been filled; the
// consumer clears each flag as it drains the slot.
//
// Indices are monotonically increasing positions (slot = position
// modulo capacity) rather than the paper's wrapping buffer offsets;
// this removes the ABA window a wrapped compare-and-swap would have
// under arbitrary producer stalls while keeping the algorithm
// identical: one CAS on the fast path, one retry loop around it.
//
// Any number of goroutines may call TryPut/PutBatch; exactly one may
// call TryGet.
type MPSC[T any] struct {
	buf  []T
	flag []atomic.Bool
	head atomic.Int64 // next position producers claim
	tail atomic.Int64 // next position the consumer drains
}

// NewMPSC creates an MPSC queue holding up to size items.
func NewMPSC[T any](size int) *MPSC[T] {
	if size < 1 {
		panic("queue: size must be positive")
	}
	return &MPSC[T]{buf: make([]T, size), flag: make([]atomic.Bool, size)}
}

// Cap returns the queue capacity.
func (q *MPSC[T]) Cap() int { return len(q.buf) }

// Len returns the number of claimed positions (some may not be
// filled yet); approximate under concurrency.
func (q *MPSC[T]) Len() int {
	n := q.head.Load() - q.tail.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// TryPut appends one item, reporting false when the queue is full.
// This is Figure 2's Q_put with a batch of one: the normal path is
// the space check, one CAS, the slot fill and the flag set.
func (q *MPSC[T]) TryPut(v T) bool {
	size := int64(len(q.buf))
	for {
		h := q.head.Load()
		if h-q.tail.Load() >= size {
			return false // queue full
		}
		if q.head.CompareAndSwap(h, h+1) {
			i := h % size
			q.buf[i] = v
			q.flag[i].Store(true)
			return true
		}
		// Another producer claimed position h first: retry (the
		// paper counts this as the 20-instruction path).
	}
}

// PutBatch atomically inserts all items (up to the queue capacity):
// the claim covers the whole batch, so the items occupy consecutive
// slots with no interleaving from other producers. Reports false
// without inserting anything when there is not enough space.
func (q *MPSC[T]) PutBatch(items []T) bool {
	n := int64(len(items))
	if n == 0 {
		return true
	}
	size := int64(len(q.buf))
	if n > size {
		return false
	}
	var h int64
	for {
		h = q.head.Load()
		if size-(h-q.tail.Load()) < n {
			return false
		}
		if q.head.CompareAndSwap(h, h+n) {
			break
		}
	}
	for k, v := range items {
		i := (h + int64(k)) % size
		q.buf[i] = v
		q.flag[i].Store(true)
	}
	return true
}

// TryGet removes the oldest item. It reports false when the queue is
// empty or when the slot at the tail has been claimed but not yet
// filled ("the consumer may not trust Q_head as a reliable indication
// that there is data in the queue").
func (q *MPSC[T]) TryGet() (T, bool) {
	size := int64(len(q.buf))
	t := q.tail.Load()
	i := t % size
	if !q.flag[i].Load() {
		var zero T
		return zero, false
	}
	v := q.buf[i]
	var zero T
	q.buf[i] = zero
	q.flag[i].Store(false)
	q.tail.Store(t + 1)
	return v, true
}

// SPMC is the single-producer multiple-consumer optimistic queue:
// the mirror image of MPSC. Consumers claim the tail position with a
// compare-and-swap; the valid flag hands each slot from the producer
// to exactly one consumer and back.
//
// Exactly one goroutine may call TryPut; any number may call TryGet.
type SPMC[T any] struct {
	buf  []T
	flag []atomic.Bool
	head atomic.Int64
	tail atomic.Int64
}

// NewSPMC creates an SPMC queue holding up to size items.
func NewSPMC[T any](size int) *SPMC[T] {
	if size < 1 {
		panic("queue: size must be positive")
	}
	return &SPMC[T]{buf: make([]T, size), flag: make([]atomic.Bool, size)}
}

// Cap returns the queue capacity.
func (q *SPMC[T]) Cap() int { return len(q.buf) }

// Len returns the apparent number of items; approximate under
// concurrency.
func (q *SPMC[T]) Len() int {
	n := q.head.Load() - q.tail.Load()
	if n < 0 {
		n = 0
	}
	return int(n)
}

// TryPut appends one item, reporting false when the queue is full. A
// slot is reused only after its flag is clear, which is the signal
// that the claiming consumer has finished reading it.
func (q *SPMC[T]) TryPut(v T) bool {
	size := int64(len(q.buf))
	h := q.head.Load()
	if h-q.tail.Load() >= size {
		return false
	}
	i := h % size
	if q.flag[i].Load() {
		// The consumer that claimed this slot a lap ago has not
		// finished draining it.
		return false
	}
	q.buf[i] = v
	q.flag[i].Store(true)
	q.head.Store(h + 1)
	return true
}

// TryGet removes the oldest item, competing with other consumers via
// compare-and-swap on the tail; reports false when empty.
func (q *SPMC[T]) TryGet() (T, bool) {
	size := int64(len(q.buf))
	for {
		t := q.tail.Load()
		if t >= q.head.Load() {
			var zero T
			return zero, false
		}
		if q.tail.CompareAndSwap(t, t+1) {
			i := t % size
			v := q.buf[i]
			var zero T
			q.buf[i] = zero
			q.flag[i].Store(false) // hand the slot back to the producer
			return v, true
		}
	}
}
