package queue

import (
	"runtime"
	"sync"
	"time"
)

// NonBlocking is the interface every optimistic queue in this package
// satisfies: best-effort put and get.
type NonBlocking[T any] interface {
	TryPut(T) bool
	TryGet() (T, bool)
	Len() int
	Cap() int
}

// Locked is the traditional blocking bounded queue: one mutex and two
// condition variables. It is both the paper's "synchronous queue"
// (block at queue full or queue empty) built the conventional way and
// the locking baseline the ablation benchmarks compare the optimistic
// queues against — the kind of "powerful mutual exclusion mechanism"
// Section 1 says traditional kernels reach for.
type Locked[T any] struct {
	mu       sync.Mutex
	notFull  sync.Cond
	notEmpty sync.Cond
	buf      []T
	head     int
	tail     int
	n        int
	closed   bool
}

// NewLocked creates a blocking queue holding up to size items.
func NewLocked[T any](size int) *Locked[T] {
	if size < 1 {
		panic("queue: size must be positive")
	}
	q := &Locked[T]{buf: make([]T, size)}
	q.notFull.L = &q.mu
	q.notEmpty.L = &q.mu
	return q
}

// Cap returns the queue capacity.
func (q *Locked[T]) Cap() int { return len(q.buf) }

// Len returns the number of queued items.
func (q *Locked[T]) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}

// TryPut appends without blocking, reporting false when full or
// closed.
func (q *Locked[T]) TryPut(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.n == len(q.buf) {
		return false
	}
	q.put(v)
	return true
}

// Put appends, blocking while the queue is full. It reports false if
// the queue is closed.
func (q *Locked[T]) Put(v T) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == len(q.buf) && !q.closed {
		q.notFull.Wait()
	}
	if q.closed {
		return false
	}
	q.put(v)
	return true
}

func (q *Locked[T]) put(v T) {
	q.buf[q.head] = v
	q.head = (q.head + 1) % len(q.buf)
	q.n++
	q.notEmpty.Signal()
}

// TryGet removes without blocking, reporting false when empty.
func (q *Locked[T]) TryGet() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.n == 0 {
		var zero T
		return zero, false
	}
	return q.get(), true
}

// Get removes, blocking while the queue is empty. It reports false
// when the queue is closed and drained.
func (q *Locked[T]) Get() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.n == 0 && !q.closed {
		q.notEmpty.Wait()
	}
	if q.n == 0 {
		var zero T
		return zero, false
	}
	return q.get(), true
}

func (q *Locked[T]) get() T {
	v := q.buf[q.tail]
	var zero T
	q.buf[q.tail] = zero
	q.tail = (q.tail + 1) % len(q.buf)
	q.n--
	q.notFull.Signal()
	return v
}

// Close wakes all blocked callers; subsequent puts fail and gets
// drain the remaining items.
func (q *Locked[T]) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.notFull.Broadcast()
	q.notEmpty.Broadcast()
}

// Blocking adapts a non-blocking optimistic queue into a blocking
// ("synchronous") one by spinning with progressive backoff: a few
// busy retries, then yields, then short sleeps. This preserves the
// lock-free fast path — when the queue is neither full nor empty, a
// Put or Get costs exactly one underlying Try operation.
type Blocking[T any] struct {
	Q NonBlocking[T]
}

// backoff escalates from busy spinning to yielding to sleeping.
func backoff(attempt int) {
	switch {
	case attempt < 8:
		// busy spin
	case attempt < 64:
		runtime.Gosched()
	default:
		time.Sleep(10 * time.Microsecond)
	}
}

// Put appends, waiting while the queue is full.
func (b Blocking[T]) Put(v T) {
	for i := 0; ; i++ {
		if b.Q.TryPut(v) {
			return
		}
		backoff(i)
	}
}

// Get removes, waiting while the queue is empty.
func (b Blocking[T]) Get() T {
	for i := 0; ; i++ {
		if v, ok := b.Q.TryGet(); ok {
			return v
		}
		backoff(i)
	}
}

// Notify is the paper's "asynchronous queue": instead of blocking, it
// signals at the interesting transitions. OnNotEmpty fires after a
// put that found the queue apparently empty; OnNotFull fires after a
// get that found it apparently full. With a single consumer (the
// usual kernel configuration: an interrupt handler producing, a
// thread consuming) the empty-transition signal is exact, which is
// what the unblocking chain in Section 4.1 needs.
type Notify[T any] struct {
	Q          NonBlocking[T]
	OnNotEmpty func()
	OnNotFull  func()
}

// TryPut appends and fires OnNotEmpty on the empty transition.
func (n Notify[T]) TryPut(v T) bool {
	wasEmpty := n.Q.Len() == 0
	if !n.Q.TryPut(v) {
		return false
	}
	if wasEmpty && n.OnNotEmpty != nil {
		n.OnNotEmpty()
	}
	return true
}

// TryGet removes and fires OnNotFull on the full transition.
func (n Notify[T]) TryGet() (T, bool) {
	wasFull := n.Q.Len() == n.Q.Cap()
	v, ok := n.Q.TryGet()
	if ok && wasFull && n.OnNotFull != nil {
		n.OnNotFull()
	}
	return v, ok
}
