package queue

// Buffered amortizes queue overhead by packing several items into
// each queue element, as Section 5.4 describes: "Buffered queues use
// kernel code synthesis to generate several specialized queue insert
// operations (a couple of instructions); each moves a chunk of data
// into a different area of the same queue element. This way, the
// overhead of a queue insert is amortized by the blocking factor."
// The A/D device server uses a blocking factor of eight to absorb
// 44,100 interrupts per second.
//
// The Go rendition keeps the structure: the producer accumulates
// items into a chunk (the per-slot insert is a plain indexed store —
// the "couple of instructions") and pushes the chunk through an
// underlying SPSC queue only once per blocking factor. Chunks are
// recycled through a free list so the steady state allocates nothing.
//
// Exactly one goroutine may produce and one consume.
type Buffered[T any] struct {
	k    int
	q    *SPSC[[]T]
	free *SPSC[[]T]

	wchunk []T // producer side: chunk being filled

	rchunk []T // consumer side: chunk being drained
	rpos   int
}

// NewBuffered creates a buffered queue with the given blocking factor
// (items per chunk) and depth (chunks in flight).
func NewBuffered[T any](blockingFactor, depth int) *Buffered[T] {
	if blockingFactor < 1 || depth < 1 {
		panic("queue: blocking factor and depth must be positive")
	}
	b := &Buffered[T]{
		k:    blockingFactor,
		q:    NewSPSC[[]T](depth),
		free: NewSPSC[[]T](depth + 2),
	}
	b.wchunk = make([]T, 0, blockingFactor)
	return b
}

// BlockingFactor returns the number of items packed per element.
func (b *Buffered[T]) BlockingFactor() int { return b.k }

// TryPut appends one item. The chunk is pushed downstream when it
// reaches the blocking factor. Reports false when the queue of
// chunks is full (the item is not consumed).
func (b *Buffered[T]) TryPut(v T) bool {
	if len(b.wchunk) == b.k && !b.flush() {
		return false
	}
	b.wchunk = append(b.wchunk, v)
	if len(b.wchunk) == b.k {
		b.flush() // best effort; retried on the next put if full
	}
	return true
}

// Flush pushes a partial chunk downstream so the consumer can see
// items without waiting for a full blocking factor. Reports false if
// the chunk queue is full.
func (b *Buffered[T]) Flush() bool {
	if len(b.wchunk) == 0 {
		return true
	}
	return b.flush()
}

func (b *Buffered[T]) flush() bool {
	if !b.q.TryPut(b.wchunk) {
		return false
	}
	if c, ok := b.free.TryGet(); ok {
		b.wchunk = c[:0]
	} else {
		b.wchunk = make([]T, 0, b.k)
	}
	return true
}

// TryGet removes the oldest item, reporting false when nothing has
// been flushed downstream yet.
func (b *Buffered[T]) TryGet() (T, bool) {
	if b.rpos == len(b.rchunk) {
		if b.rchunk != nil {
			b.free.TryPut(b.rchunk[:0]) // recycle; drop if free list full
			b.rchunk = nil
			b.rpos = 0
		}
		c, ok := b.q.TryGet()
		if !ok {
			var zero T
			return zero, false
		}
		b.rchunk = c
		b.rpos = 0
	}
	v := b.rchunk[b.rpos]
	b.rpos++
	return v, true
}

// Len returns the apparent number of items in flight (excluding the
// producer's partial chunk).
func (b *Buffered[T]) Len() int {
	n := b.q.Len() * b.k
	n += len(b.rchunk) - b.rpos
	if n < 0 {
		n = 0
	}
	return n
}

// Cap returns the maximum number of items in flight.
func (b *Buffered[T]) Cap() int { return b.q.Cap()*b.k + b.k }
