package queue

import "sync/atomic"

// Dedicated is a ring buffer with no synchronization whatsoever, for
// the case where a single goroutine owns both ends (the paper's
// dedicated queues, used when the kernel knows only one party touches
// the queue). It is NOT safe for concurrent use.
type Dedicated[T any] struct {
	buf  []T
	head int
	tail int
}

// NewDedicated creates a dedicated queue holding up to size items.
func NewDedicated[T any](size int) *Dedicated[T] {
	if size < 1 {
		panic("queue: size must be positive")
	}
	return &Dedicated[T]{buf: make([]T, size+1)}
}

func (q *Dedicated[T]) next(i int) int {
	if i == len(q.buf)-1 {
		return 0
	}
	return i + 1
}

// TryPut appends an item, reporting false when full.
func (q *Dedicated[T]) TryPut(v T) bool {
	h := q.head
	if q.next(h) == q.tail {
		return false
	}
	q.buf[h] = v
	q.head = q.next(h)
	return true
}

// TryGet removes the oldest item, reporting false when empty.
func (q *Dedicated[T]) TryGet() (T, bool) {
	t := q.tail
	if t == q.head {
		var zero T
		return zero, false
	}
	v := q.buf[t]
	var zero T
	q.buf[t] = zero // release references for the garbage collector
	q.tail = q.next(t)
	return v, true
}

// Len returns the number of queued items.
func (q *Dedicated[T]) Len() int {
	d := q.head - q.tail
	if d < 0 {
		d += len(q.buf)
	}
	return d
}

// Cap returns the queue capacity.
func (q *Dedicated[T]) Cap() int { return len(q.buf) - 1 }

// SPSC is the single-producer single-consumer optimistic queue of
// Figure 1. Of the two index variables, head is written only by the
// producer and tail only by the consumer (Code Isolation), so when
// the buffer is neither full nor empty the two sides operate on
// disjoint state and need no locks. The item is made visible by the
// final store to head ("we update Q_head at the last instruction
// during Q_put ... the consumer will not detect an item until the
// producer has finished").
//
// Exactly one goroutine may call TryPut and exactly one may call
// TryGet, concurrently with each other.
type SPSC[T any] struct {
	buf  []T
	head atomic.Int64 // next slot the producer fills
	tail atomic.Int64 // next slot the consumer drains
}

// NewSPSC creates an SPSC queue holding up to size items.
func NewSPSC[T any](size int) *SPSC[T] {
	if size < 1 {
		panic("queue: size must be positive")
	}
	return &SPSC[T]{buf: make([]T, size+1)}
}

func (q *SPSC[T]) next(i int64) int64 {
	if i == int64(len(q.buf))-1 {
		return 0
	}
	return i + 1
}

// TryPut appends an item, reporting false when the queue is full.
func (q *SPSC[T]) TryPut(v T) bool {
	h := q.head.Load()
	if q.next(h) == q.tail.Load() {
		return false
	}
	q.buf[h] = v
	q.head.Store(q.next(h)) // publish: last instruction of Q_put
	return true
}

// TryGet removes the oldest item, reporting false when empty.
func (q *SPSC[T]) TryGet() (T, bool) {
	t := q.tail.Load()
	if t == q.head.Load() {
		var zero T
		return zero, false
	}
	v := q.buf[t]
	var zero T
	q.buf[t] = zero
	q.tail.Store(q.next(t))
	return v, true
}

// Len returns the number of queued items (approximate under
// concurrency).
func (q *SPSC[T]) Len() int {
	d := q.head.Load() - q.tail.Load()
	if d < 0 {
		d += int64(len(q.buf))
	}
	return int(d)
}

// Cap returns the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) - 1 }
