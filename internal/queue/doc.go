// Package queue implements the Synthesis kernel's optimistic queues
// (Massalin & Pu, SOSP 1989, Section 3.2) as a production Go library.
//
// The paper classifies queues by their operating environment —
// single- or multiple-producer crossed with single- or multiple-
// consumer — and, applying the principle of frugality, uses the
// cheapest implementation that is safe for each case:
//
//   - Dedicated: one goroutine owns both ends; no synchronization at
//     all ("dedicated queues ... omit the synchronization code").
//   - SPSC (Figure 1): producer and consumer touch disjoint variables
//     (Code Isolation); the only synchronization is the ordering of
//     the final index store.
//   - MPSC (Figure 2): producers stake a claim to buffer space with a
//     single compare-and-swap and a retry loop; a valid-flag array
//     tells the consumer which claimed slots have been filled, which
//     also yields atomic multi-item insert (PutBatch).
//   - SPMC: the mirror image, consumers claim with compare-and-swap.
//   - MPMC: both ends claim with compare-and-swap; per-slot sequence
//     numbers generalize the valid-flag array and make the queue safe
//     across index wraparound.
//
// All optimistic queues are lock-free and non-blocking: TryPut and
// TryGet return false instead of waiting. The paper's "synchronous"
// (blocking) and "asynchronous" (signalling) kinds are provided as
// wrappers: Locked is a mutex-and-condition blocking queue (it doubles
// as the traditional baseline the ablation benchmarks compare
// against), Blocking adapts any optimistic queue into a blocking one,
// and Notify adds edge-triggered callbacks on empty/non-empty
// transitions. Buffered amortizes per-item overhead by batching items
// into chunks, as the A/D device server does in Section 5.4.
package queue
