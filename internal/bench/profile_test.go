package bench

import "testing"

// TestTable1AttributionCoverage is the acceptance check for the
// measurement plane: across a full Table 1 program sweep on the
// profiled Synthesis rig, at least 95% of all machine cycles must be
// attributed to named regions (quaject routines, the benchmark
// binary, idle, synthesis) rather than falling out as unattributed.
func TestTable1AttributionCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table 1 sweep under -short")
	}
	iters := int32(40)
	var sumAttr, sumWindow uint64
	for _, name := range Table1ProgramNames() {
		p, err := RunProfiled(name, iters)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cov := p.Coverage()
		t.Logf("%-16s coverage %.3f (%d of %d cycles)", name, cov, p.Attributed(), p.Window())
		if cov < 0.95 {
			t.Errorf("%s: coverage %.3f < 0.95; top:\n%s", name, cov, p.Report(12))
		}
		sumAttr += p.Attributed()
		sumWindow += p.Window()
	}
	total := float64(sumAttr) / float64(sumWindow)
	t.Logf("aggregate coverage %.3f", total)
	if total < 0.95 {
		t.Errorf("aggregate coverage %.3f < 0.95", total)
	}
}

// TestRunProfiledUnknown rejects unknown program names.
func TestRunProfiledUnknown(t *testing.T) {
	if _, err := RunProfiled("no-such-program", 1); err == nil {
		t.Fatal("expected error for unknown program")
	}
}

// TestRegistry covers the registry contract all three front ends
// (synbench, quamon, the benchmark suite) rely on.
func TestRegistry(t *testing.T) {
	names := Names()
	want := []string{"1", "2", "3", "4", "5", "6", "7", "ablations", "cluster", "mips", "pathlen", "proc", "recovery", "rtt", "size"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v (numeric first, then alphabetical)", names, want)
		}
	}
	if _, err := Run("no-such-table", RunConfig{}); err == nil {
		t.Fatal("expected error for unknown table")
	}
}
