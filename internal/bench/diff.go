package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Perf-regression comparison between two artifact directories: the
// committed baseline and a fresh run. Each row is compared by percent
// change in the direction its unit declares worse — latency,
// instruction and size units regress upward, throughput and speedup
// units regress downward. Rows present on only one side are reported
// but never counted as regressions (tables grow across PRs).

// higherIsBetter classifies a row's unit for regression direction.
// Throughput ("fr/s") and speedup ratios ("x") improve upward;
// everything else (usec, instr, bytes, counts) improves downward.
func higherIsBetter(unit string) bool {
	switch unit {
	case "fr/s", "x", "mips":
		return true
	}
	return false
}

// RowDiff is one compared row.
type RowDiff struct {
	Table, Row string
	Unit       string
	Base, New  float64
	DeltaPct   float64 // signed percent change, worse direction positive
	Regressed  bool
	WarnOnly   bool // regressed, but its table is on the warn list
}

// DiffResult is the full comparison.
type DiffResult struct {
	ThresholdPct float64
	Rows         []RowDiff
	Regressions  int      // regressed rows that gate (exit nonzero)
	Warnings     int      // regressed rows in warn-only tables
	OnlyBase     []string // "table/row" present only in the baseline
	OnlyNew      []string // "table/row" present only in the new run
}

// DiffOptions tunes the regression gate beyond the bare threshold.
type DiffOptions struct {
	// ThresholdPct is how far a row's median may move in its worse
	// direction before it counts as a regression.
	ThresholdPct float64
	// NoisePct widens the gate for rows whose baseline artifact
	// carries a min/max spread (written by RunN / `synbench -runs N`):
	// such a row regresses only if, past the threshold, the fresh
	// median also lands outside the baseline's observed worst bound by
	// more than NoisePct. Wall-clock tables flap run to run; the
	// spread says how much of that movement is noise, and NoisePct is
	// the extra allowance on top. Rows without a recorded spread are
	// gated by the threshold alone.
	NoisePct float64
	// WarnTables lists tables (by registry name) whose regressions are
	// reported and counted in Warnings but never in Regressions —
	// the warn-only escape hatch for nondeterministic tables.
	WarnTables map[string]bool
}

// LoadArtifactDir decodes every BENCH_*.json in dir, keyed by
// registry name.
func LoadArtifactDir(dir string) (map[string]Table, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("bench: no BENCH_*.json artifacts in %s", dir)
	}
	tables := make(map[string]Table, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		name, t, err := DecodeTableJSON(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		tables[name] = t
	}
	return tables, nil
}

// withinNoise reports whether a fresh median that moved past the
// threshold still lands inside the baseline's observed run-to-run
// spread plus the noise allowance, and so should not gate. Only rows
// whose baseline recorded a spread (RunN artifacts) qualify.
func withinNoise(br, nr Row, noisePct float64) bool {
	if br.Min == 0 && br.Max == 0 {
		return false // single-run baseline: no spread recorded
	}
	// The worst value the baseline was ever observed to produce.
	worst := br.Max
	if higherIsBetter(br.Unit) {
		worst = br.Min
	}
	if worst == 0 {
		return false
	}
	beyond := 100 * (nr.Measured - worst) / worst
	if higherIsBetter(br.Unit) {
		beyond = -beyond
	}
	return beyond <= noisePct
}

// DiffTables compares a fresh run against a baseline. A row regresses
// when it moved more than thresholdPct in its unit's worse direction;
// DeltaPct is normalized so positive always means worse.
func DiffTables(base, fresh map[string]Table, thresholdPct float64) DiffResult {
	return DiffTablesOpt(base, fresh, DiffOptions{ThresholdPct: thresholdPct})
}

// DiffTablesOpt is DiffTables with the full gate configuration.
func DiffTablesOpt(base, fresh map[string]Table, opt DiffOptions) DiffResult {
	res := DiffResult{ThresholdPct: opt.ThresholdPct}
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, tn := range names {
		bt := base[tn]
		nt, ok := fresh[tn]
		if !ok {
			for _, r := range bt.Rows {
				res.OnlyBase = append(res.OnlyBase, tn+"/"+r.Name)
			}
			continue
		}
		newRows := make(map[string]Row, len(nt.Rows))
		for _, r := range nt.Rows {
			newRows[r.Name] = r
		}
		for _, br := range bt.Rows {
			nr, ok := newRows[br.Name]
			if !ok {
				res.OnlyBase = append(res.OnlyBase, tn+"/"+br.Name)
				continue
			}
			delete(newRows, br.Name)
			d := RowDiff{Table: tn, Row: br.Name, Unit: br.Unit, Base: br.Measured, New: nr.Measured}
			if br.Measured != 0 {
				pct := 100 * (nr.Measured - br.Measured) / br.Measured
				if higherIsBetter(br.Unit) {
					pct = -pct
				}
				d.DeltaPct = pct
				d.Regressed = pct > opt.ThresholdPct
				if d.Regressed && withinNoise(br, nr, opt.NoisePct) {
					d.Regressed = false
				}
			} else if nr.Measured != 0 {
				// A zero baseline that became nonzero counts as a
				// regression only when lower is better (e.g. error counts).
				d.DeltaPct = 100
				d.Regressed = !higherIsBetter(br.Unit)
			}
			if d.Regressed {
				if opt.WarnTables[tn] {
					d.WarnOnly = true
					res.Warnings++
				} else {
					res.Regressions++
				}
			}
			res.Rows = append(res.Rows, d)
		}
		for _, r := range nt.Rows {
			if _, left := newRows[r.Name]; left {
				res.OnlyNew = append(res.OnlyNew, tn+"/"+r.Name)
			}
		}
	}
	for n, t := range fresh {
		if _, ok := base[n]; !ok {
			for _, r := range t.Rows {
				res.OnlyNew = append(res.OnlyNew, n+"/"+r.Name)
			}
		}
	}
	sort.Strings(res.OnlyNew)
	return res
}

// Format renders the comparison, regressions first.
func (res DiffResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-42s %12s %12s %9s %-6s\n",
		"table", "row", "base", "new", "delta", "unit")
	rows := append([]RowDiff(nil), res.Rows...)
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Regressed != rows[j].Regressed {
			return rows[i].Regressed
		}
		return rows[i].DeltaPct > rows[j].DeltaPct
	})
	for _, d := range rows {
		flag := " "
		switch {
		case d.WarnOnly:
			flag = "~"
		case d.Regressed:
			flag = "!"
		}
		fmt.Fprintf(&b, "%-12s %-42s %12.2f %12.2f %+8.1f%% %-6s %s\n",
			d.Table, d.Row, d.Base, d.New, d.DeltaPct, d.Unit, flag)
	}
	for _, n := range res.OnlyBase {
		fmt.Fprintf(&b, "only in baseline: %s\n", n)
	}
	for _, n := range res.OnlyNew {
		fmt.Fprintf(&b, "only in new run:  %s\n", n)
	}
	fmt.Fprintf(&b, "%d rows compared, %d regressed, %d warn-only (threshold %.1f%%, worse direction positive)\n",
		len(res.Rows), res.Regressions, res.Warnings, res.ThresholdPct)
	return b.String()
}
