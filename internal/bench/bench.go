// Package bench is the experiment harness: it regenerates every table
// of the paper's evaluation (Section 6) plus the ablations DESIGN.md
// calls out, running the same benchmark "binaries" on the Synthesis
// kernel (with its UNIX emulator) and on the traditional SUNOS-style
// baseline, both at the SUN 3/160 emulation point (16 MHz, one memory
// wait state).
package bench

import (
	"fmt"
	"strings"
)

// Row is one experiment line: the paper's figure next to ours.
// Min/Max carry the spread of a multi-run aggregation (RunN):
// Measured is then the median. Both zero on a single run.
type Row struct {
	Name     string
	Paper    float64 // the paper's value (same unit)
	Measured float64
	Min, Max float64
	Unit     string
	Note     string
}

// Table is one regenerated table.
type Table struct {
	Title string
	Note  string
	Rows  []Row
}

// Ratio returns measured/paper (0 when the paper value is absent).
func (r Row) Ratio() float64 {
	if r.Paper == 0 {
		return 0
	}
	return r.Measured / r.Paper
}

// String renders the table as aligned text.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	fmt.Fprintf(&b, "%-42s %12s %12s %-8s %s\n", "experiment", "paper", "measured", "unit", "note")
	for _, r := range t.Rows {
		paper := "-"
		if r.Paper != 0 {
			paper = fmt.Sprintf("%.2f", r.Paper)
		}
		note := r.Note
		if r.Min != 0 || r.Max != 0 {
			spread := fmt.Sprintf("[%.2f .. %.2f]", r.Min, r.Max)
			if note != "" {
				note = spread + " " + note
			} else {
				note = spread
			}
		}
		fmt.Fprintf(&b, "%-42s %12s %12.2f %-8s %s\n", r.Name, paper, r.Measured, r.Unit, note)
	}
	return b.String()
}

// errMarks reports a mark-count mismatch.
func errMarks(got, want int) error {
	return fmt.Errorf("bench: recorded %d mark intervals, want %d", got, want)
}
