package bench

import (
	"fmt"
	"time"

	"synthesis/internal/cluster"
)

// Table 8: the fleet experiment. Not a paper table — the paper stops
// at one Quamachine — but the direct test of its claim at scale: the
// synthesized per-socket paths are unchanged while N kernels serve
// multiplexed echo load across the switch fabric. Rates are wall-
// clock on the host, so this table is nondeterministic by design; it
// is generated via RunN for a median, and benchdiff treats it as
// warn-only (the -warn-tables flag in the Makefile gate).
//
// Invoked as `synbench -table 8` (alias) or `-table cluster`
// (canonical); the artifact is BENCH_cluster.json either way.

func init() {
	Register("cluster", table8)
	RegisterAlias("8", "cluster")
}

// table8Shapes is the load sweep: VM count 1/2/4/8 at a fixed 32
// connections per VM, then a connection sweep and a churn point at
// 4 VMs.
var table8Shapes = []struct {
	vms, conns, churn int
}{
	{1, 32, 0},
	{2, 64, 0},
	{4, 128, 0},
	{8, 256, 0},
	{4, 512, 0},
	{4, 128, 64},
}

func table8(cfg RunConfig) (Table, error) {
	// Iters is the per-shape measurement window in wall milliseconds.
	window := time.Duration(cfg.Iters) * time.Millisecond
	if cfg.Iters <= 0 {
		window = 200 * time.Millisecond
	}
	if window < 40*time.Millisecond {
		window = 40 * time.Millisecond
	}

	t := Table{
		Title: "Table 8. Cluster fabric: N Quamachines under multiplexed echo load",
		Note: fmt.Sprintf("aggregate switched frames/sec and echo RTT quantiles over a %v wall window per shape; "+
			"host wall-clock rates (nondeterministic): gate on the RunN median, warn-only in CI", window),
	}
	for _, sh := range table8Shapes {
		ccfg := cluster.Config{
			VMs:          sh.vms,
			SocketsPerVM: 8,
			Conns:        sh.conns,
			PayloadBytes: 64,
			ChurnEvery:   sh.churn,
			Seed:         1,
			// Patient clients: at the heaviest shapes the queueing RTT
			// exceeds the default 50ms resend timeout, and an impatient
			// resend policy turns overload into congestion collapse
			// (every reply arrives stale). The resend path still covers
			// real loss (churn drops, ring overflow).
			Timeout: 500 * time.Millisecond,
		}
		if activeFleet != nil {
			// A -faults spec applies to the fabric and every member VM.
			ccfg.Faults = *activeFleet
		}
		c := cluster.New(ccfg)
		c.Start()
		// Warm up until every logical connection has completed at least
		// one round trip: connections whose first frames raced their
		// socket's open sit out a resend timeout, so measuring earlier
		// catches the boot transient, not the steady state. Bounded so
		// a wedged fleet fails instead of hanging.
		warmDeadline := time.Now().Add(5 * time.Second)
		for c.ActiveConns() < sh.conns && time.Now().Before(warmDeadline) {
			if err := c.Err(); err != nil {
				c.Stop()
				return Table{}, err
			}
			time.Sleep(time.Millisecond)
		}
		s0 := c.Snapshot()
		time.Sleep(window)
		s1 := c.Snapshot()
		c.Stop()
		if err := c.Err(); err != nil {
			return Table{}, err
		}

		d := s1.Delta(s0)
		rtt := d.Hists["cluster.loadgen.rtt_us"]
		label := fmt.Sprintf("%d vm x %d conns", sh.vms, sh.conns)
		note := fmt.Sprintf("%d sockets/vm", 8)
		if sh.churn > 0 {
			label += " churn"
			note += fmt.Sprintf(", reopen every %d echoes", sh.churn)
		}
		t.Rows = append(t.Rows,
			Row{Name: label + " aggregate", Measured: d.Rate("cluster.fabric.routed"),
				Unit: "fr/s", Note: note},
			Row{Name: label + " rtt p50", Measured: rtt.Quantile(0.50),
				Unit: "us", Note: fmt.Sprintf("%d round trips in window", rtt.Count)},
			Row{Name: label + " rtt p99", Measured: rtt.Quantile(0.99),
				Unit: "us"},
		)
	}
	return t, nil
}
