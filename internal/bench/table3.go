package bench

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// Table 3: thread operations in microseconds. Each operation is timed
// from a driver thread with mark pairs around the native system call.

// Table3 regenerates the thread-operations measurements.
func Table3() (Table, error) {
	t := Table{
		Title: "Table 3: Thread Operations (microseconds)",
		Note:  "native Synthesis calls at the SUN 3/160 point, code synthesis charged",
	}
	rig := NewSynthRig()
	k := rig.K

	// A victim thread for stop/start/step/signal/destroy: parked,
	// never scheduled during the measurements.
	victimProg := k.C.Synthesize(nil, "victim", nil, func(e *synth.Emitter) {
		e.Label("loop")
		e.Nop()
		e.Bra("loop")
	})
	victim := k.SpawnKernelStopped("victim", victimProg)

	handler := k.C.Synthesize(nil, "sig", nil, func(e *synth.Emitter) {
		e.Trap(kernel.TrapSig)
	})

	b := asmkit.New()
	sys := func(fn int32, d1 int32, d2 int32) {
		b.MoveL(m68k.Imm(fn), m68k.D(0))
		b.MoveL(m68k.Imm(d1), m68k.D(1))
		b.MoveL(m68k.Imm(d2), m68k.D(2))
		b.Trap(kernel.TrapSys)
	}
	measure := func(fn int32, d1, d2 int32) {
		mark(b)
		sys(fn, d1, d2)
		mark(b)
	}

	vt := int32(victim.TTE)
	// create: D0 returns the new TTE; destroy it right after (the
	// second interval).
	mark(b)
	sys(kernel.SysCreate, 0, 0) // entry 0: never started
	mark(b)
	b.MoveL(m68k.D(0), m68k.D(4)) // keep the new TTE
	mark(b)
	b.MoveL(m68k.Imm(kernel.SysDestroy), m68k.D(0))
	b.MoveL(m68k.D(4), m68k.D(1))
	b.Trap(kernel.TrapSys)
	mark(b)
	// stop/start on the parked victim (it is not linked, but stop on
	// a linked thread measures the same unlink; link it first).
	b.MoveL(m68k.Imm(kernel.SysStart), m68k.D(0))
	b.MoveL(m68k.Imm(vt), m68k.D(1))
	b.Trap(kernel.TrapSys) // make it runnable once (unmeasured)
	measure(kernel.SysStop, vt, 0)
	measure(kernel.SysStart, vt, 0)
	measure(kernel.SysStop, vt, 0) // leave it parked (unmeasured pairing)
	// step: arm + insert; the stepped instruction itself runs later.
	measure(kernel.SysStep, vt, 0)
	// Let the victim absorb its step and trace-stop.
	b.MoveL(m68k.Imm(kernel.SysYield), m68k.D(0))
	b.Trap(kernel.TrapSys)
	// signal.
	measure(kernel.SysSignal, vt, int32(handler))
	progExit(b)

	entry := b.Link(k.M)
	if err := rig.Run(entry, 500_000_000); err != nil {
		return t, err
	}
	d := rig.Marks()
	if len(d) != 7 {
		return t, errMarks(len(d), 7)
	}
	paper := []struct {
		name string
		val  float64
		idx  int
		note string
	}{
		{"create", 142, 0, "TTE fill in machine code + charged synthesis"},
		{"destroy", 11, 1, ""},
		{"stop", 8, 2, "ready-ring unlink"},
		{"start", 8, 3, "ready-ring insert at the front"},
		{"step", 37, 5, "arm trace bit + insert (execution is asynchronous)"},
		{"signal", 8, 6, "rewrites the target's saved resume PC"},
	}
	for _, p := range paper {
		t.Rows = append(t.Rows, Row{Name: p.name, Paper: p.val, Measured: d[p.idx], Unit: "usec", Note: p.note})
	}
	return t, nil
}

func init() { Register("3", fixed(Table3)) }
