package bench

import (
	"fmt"
	"time"

	"synthesis/internal/cluster"
)

// Table 10: RTT decomposition. Table 8 measured the fleet's
// single-core wall — RTT p50 growing with VM count — but could not
// say where the time lives. This table turns the trace plane on
// (1-in-8 sampling) and sweeps the Table 8 VM shapes, attributing
// each sampled round trip to its eight hops: fabric out, ingress
// dwell, IRQ entry, demux, receive wakeup, guest send, fabric back,
// host dwell. Every shape closes with a conservation row — the mean
// traced hop sum over the mean traced RTT, exactly 1 by the
// telescoping identity (the trace plane's unit test asserts it per
// request; the row keeps the generated artifact honest).
//
// Tracing attaches the profiler to every VM, so absolute rates here
// sit below Table 8's: this table buys attribution, not throughput.
// Wall-clock and nondeterministic — gated warn-only via the RunN
// median like the other cluster tables.
//
// Invoked as `synbench -table 10` (alias) or `-table rtt`
// (canonical); the artifact is BENCH_rtt.json.

func init() {
	Register("rtt", table10)
	RegisterAlias("10", "rtt")
}

// table10Shapes sweeps VM count at a fixed 32 connections per VM —
// the same scaling axis as Table 8's wall.
var table10Shapes = []struct {
	vms, conns int
}{
	{1, 32},
	{2, 64},
	{4, 128},
	{8, 256},
}

func table10(cfg RunConfig) (Table, error) {
	window := time.Duration(cfg.Iters) * time.Millisecond
	if cfg.Iters <= 0 {
		window = 200 * time.Millisecond
	}
	if window < 40*time.Millisecond {
		window = 40 * time.Millisecond
	}

	t := Table{
		Title: "Table 10. RTT decomposition: per-hop attribution of the fleet echo round trip",
		Note: fmt.Sprintf("traced hop p50 (p99, share of traced rtt in notes) over a %v wall window per shape, "+
			"1-in-8 sampling; conservation = hop-mean sum / independently measured rtt mean, near 1.0 "+
			"(per-request the hops telescope exactly; the quotient adds sampling noise); "+
			"host wall-clock (nondeterministic): gate on the RunN median, warn-only in CI", window),
	}
	for _, sh := range table10Shapes {
		ccfg := cluster.Config{
			VMs:          sh.vms,
			SocketsPerVM: 8,
			Conns:        sh.conns,
			PayloadBytes: 64,
			Seed:         1,
			Timeout:      500 * time.Millisecond,
			TraceEvery:   8,
		}
		if activeFleet != nil {
			ccfg.Faults = *activeFleet
		}
		c := cluster.New(ccfg)
		c.Start()
		warmDeadline := time.Now().Add(5 * time.Second)
		for c.ActiveConns() < sh.conns && time.Now().Before(warmDeadline) {
			if err := c.Err(); err != nil {
				c.Stop()
				return Table{}, err
			}
			time.Sleep(time.Millisecond)
		}
		s0 := c.Snapshot()
		time.Sleep(window)
		s1 := c.Snapshot()
		c.Stop()
		if err := c.Err(); err != nil {
			return Table{}, err
		}

		d := s1.Delta(s0)
		label := fmt.Sprintf("%d vm", sh.vms)

		// The independently measured RTT over the window (all
		// requests, traced or not) anchors the decomposition.
		rtt := d.Hists["cluster.loadgen.rtt_us"]
		t.Rows = append(t.Rows,
			Row{Name: label + " rtt p50", Measured: rtt.Quantile(0.50), Unit: "us",
				Note: fmt.Sprintf("%d conns, %d round trips in window", sh.conns, rtt.Count)},
			Row{Name: label + " rtt p99", Measured: rtt.Quantile(0.99), Unit: "us"},
		)

		// Per-hop quantiles from the window's traced requests, plus
		// the share each hop's mean takes of the traced total.
		var hopMeans [cluster.HopCount]float64
		var traced uint64
		var total float64
		for i := 0; i < cluster.HopCount; i++ {
			h := d.Hists["cluster.trace.hop."+cluster.HopName(i)+"_us"]
			hopMeans[i] = h.Mean()
			total += h.Mean()
			traced = h.Count
		}
		if traced == 0 {
			return Table{}, fmt.Errorf("table10: no completed traces in the %v window at %d vms", window, sh.vms)
		}
		for i := 0; i < cluster.HopCount; i++ {
			h := d.Hists["cluster.trace.hop."+cluster.HopName(i)+"_us"]
			share := 0.0
			if total > 0 {
				share = 100 * hopMeans[i] / total
			}
			t.Rows = append(t.Rows, Row{
				Name:     fmt.Sprintf("%s hop %s p50", label, cluster.HopName(i)),
				Measured: h.Quantile(0.50), Unit: "us",
				Note: fmt.Sprintf("p99 %.0fus, %.1f%% of traced rtt", h.Quantile(0.99), share),
			})
		}

		// Conservation: the sum of the hop means against the mean RTT
		// the load generator measured independently over the same
		// window. Per traced request the hops telescope to the RTT
		// exactly (asserted in the trace plane's unit test); here the
		// quotient compares the traced sample against the whole
		// population, so it hovers near 1 with sampling noise and the
		// hop histograms' microsecond truncation. A material deviation
		// means a hop went missing or the sample stopped representing
		// the load.
		conserv := 0.0
		if m := rtt.Mean(); m > 0 {
			conserv = total / m
		}
		t.Rows = append(t.Rows, Row{
			Name: label + " conservation", Paper: 1.0, Measured: conserv, Unit: "x",
			Note: fmt.Sprintf("hop-mean sum / loadgen rtt mean, %d traced round trips", traced),
		})
	}
	return t, nil
}
