package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
)

// Machine-readable table artifacts. Each registered table encodes to
// one BENCH_<name>.json file with a versioned schema, so a CI run's
// output can be diffed against a committed baseline by cmd/benchdiff
// without scraping the aligned-text rendering. The encoding is
// lossless: DecodeTableJSON(EncodeTableJSON(t)) == t for every table.

// SchemaVersion stamps the artifact format. Bump on incompatible
// layout changes; benchdiff refuses mixed versions.
const SchemaVersion = 1

type tableJSON struct {
	Schema int       `json:"schema"`
	Name   string    `json:"name"` // registry name ("1", "pathlen", ...)
	Title  string    `json:"title"`
	Note   string    `json:"note,omitempty"`
	Rows   []rowJSON `json:"rows"`
}

type rowJSON struct {
	Name     string  `json:"name"`
	Paper    float64 `json:"paper,omitempty"`
	Measured float64 `json:"measured"`
	Min      float64 `json:"min,omitempty"`
	Max      float64 `json:"max,omitempty"`
	Unit     string  `json:"unit"`
	Note     string  `json:"note,omitempty"`
}

// EncodeTableJSON writes the table as indented JSON. name is the
// registry name the table was generated under; it rides along so a
// directory of artifacts is self-describing.
func EncodeTableJSON(w io.Writer, name string, t Table) error {
	doc := tableJSON{Schema: SchemaVersion, Name: name, Title: t.Title, Note: t.Note}
	doc.Rows = make([]rowJSON, len(t.Rows))
	for i, r := range t.Rows {
		doc.Rows[i] = rowJSON(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// DecodeTableJSON reads one artifact back, returning the registry
// name and the table.
func DecodeTableJSON(r io.Reader) (string, Table, error) {
	var doc tableJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return "", Table{}, err
	}
	if doc.Schema != SchemaVersion {
		return "", Table{}, fmt.Errorf("bench: artifact schema %d, want %d", doc.Schema, SchemaVersion)
	}
	t := Table{Title: doc.Title, Note: doc.Note}
	if len(doc.Rows) > 0 {
		t.Rows = make([]Row, len(doc.Rows))
		for i, r := range doc.Rows {
			t.Rows[i] = Row(r)
		}
	}
	return doc.Name, t, nil
}

// ArtifactName maps a registry name to its artifact filename:
// numbered tables get "BENCH_table<N>.json", the rest
// "BENCH_<name>.json".
func ArtifactName(name string) string {
	if _, err := strconv.Atoi(name); err == nil {
		return "BENCH_table" + name + ".json"
	}
	return "BENCH_" + name + ".json"
}

// WriteArtifact encodes the table into dir under its artifact name,
// creating dir as needed, and returns the written path.
func WriteArtifact(dir, name string, t Table) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, ArtifactName(name))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := EncodeTableJSON(f, name, t); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}
