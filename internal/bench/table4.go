package bench

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// Table 4: dispatcher and scheduler operations.

// Table4 measures context switches through the executable ready
// queue, the partial-context coroutine handoff, and the ready-ring
// block/unblock operations.
func Table4() (Table, error) {
	t := Table{
		Title: "Table 4: Dispatcher/Scheduler (microseconds)",
		Note:  "executable-data-structure context switching at the SUN 3/160 point",
	}

	// Full switch, integer-only threads.
	full, err := switchBetween(false)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, Row{
		Name: "full context switch", Paper: 11, Measured: full, Unit: "usec",
		Note: "quantum interrupt -> sw_out -> jmp -> sw_in -> rte",
	})

	// Full switch after both threads touched the FP co-processor:
	// the line-F trap resynthesized their switch code to carry the
	// FP context.
	fp, err := switchBetween(true)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, Row{
		Name: "full context switch (FP registers)", Paper: 21, Measured: fp, Unit: "usec",
		Note: "lazily resynthesized switch with fmovem save/restore",
	})

	// Partial context switch: a synthesized coroutine handoff that
	// moves only the registers in use.
	partial, err := partialSwitch()
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, Row{
		Name: "partial context switch", Paper: 3, Measured: partial, Unit: "usec",
		Note: "coroutine handoff, 5 live registers + stack",
	})

	// Block/unblock: ready-ring unlink and insert of a third thread.
	blockUS, unblockUS, err := blockUnblock()
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, Row{
		Name: "block thread", Paper: 4, Measured: blockUS, Unit: "usec",
		Note: "ready-ring unlink (per-resource wait cells, no blocked-queue search)",
	})
	t.Rows = append(t.Rows, Row{
		Name: "unblock thread", Paper: 4, Measured: unblockUS, Unit: "usec",
		Note: "insert at the front of the ready queue",
	})
	return t, nil
}

// switchBetween spawns two spinning kernel threads (optionally FP
// users) and measures a quantum-driven context switch.
func switchBetween(useFP bool) (float64, error) {
	rig := NewSynthRig()
	k := rig.K
	spin := func(name string) *kernel.Thread {
		prog := k.C.Synthesize(nil, name, nil, func(e *synth.Emitter) {
			if useFP {
				e.FmoveTo(m68k.Imm(1), 0) // triggers the FP upgrade
			}
			e.Label("loop")
			e.AddL(m68k.Imm(1), m68k.Abs(0x9000))
			e.Bra("loop")
		})
		return k.SpawnKernel(name, prog)
	}
	t1 := spin("s1")
	spin("s2")
	k.Start(t1)
	// Let both threads run (and upgrade to FP) before measuring.
	if err := k.M.Run(3_000_000); err != nil && err != m68k.ErrCycleLimit {
		return 0, err
	}
	us := kernel.MeasureSwitchMicros(k)
	if us < 0 {
		return 0, errMarks(0, 1)
	}
	return us, nil
}

// partialSwitch measures a synthesized coroutine pair that transfers
// only the live register set — "we switch only the part of the
// context being used, not all of it" (Section 4.2).
func partialSwitch() (float64, error) {
	rig := NewSynthRig()
	k := rig.K
	saveA, _ := k.Heap.Alloc(64)
	saveB, _ := k.Heap.Alloc(64)

	const liveMask = 0x0c38 // D3-D5, A2-A3: the registers in use

	// coYield: save the live set into `from`, adopt `to`.
	coYield := func(from, to uint32) uint32 {
		return k.C.Synthesize(nil, "co_yield", nil, func(e *synth.Emitter) {
			e.MovemSave(liveMask, m68k.Abs(from))
			e.MovemRest(m68k.Abs(to), liveMask)
			e.Rts()
		})
	}
	aToB := coYield(saveA, saveB)
	bToA := coYield(saveB, saveA)

	b := asmkit.New()
	mark(b)
	b.Jsr(aToB)
	b.Jsr(bToA)
	mark(b)
	progExit(b)
	entry := b.Link(k.M)
	if err := rig.Run(entry, 50_000_000); err != nil {
		return 0, err
	}
	d := rig.Marks()
	if len(d) != 1 {
		return 0, errMarks(len(d), 1)
	}
	return d[0] / 2, nil
}

// blockUnblock measures the ready-ring unlink and insert of a peer
// thread.
func blockUnblock() (blockUS, unblockUS float64, err error) {
	rig := NewSynthRig()
	k := rig.K
	peerProg := k.C.Synthesize(nil, "peer", nil, func(e *synth.Emitter) {
		e.Label("loop")
		e.Nop()
		e.Bra("loop")
	})
	peer := k.SpawnKernelStopped("peer", peerProg)
	k.Link(peer, k.Idle) // make it part of the ring

	b := asmkit.New()
	b.Lea(m68k.Abs(peer.TTE), 0)
	mark(b)
	b.Jsr(k.UnlinkRoutine())
	mark(b)
	b.Lea(m68k.Abs(peer.TTE), 0)
	mark(b)
	b.Jsr(k.InsertRoutine())
	mark(b)
	// Unlink again so the peer never runs.
	b.Lea(m68k.Abs(peer.TTE), 0)
	b.Jsr(k.UnlinkRoutine())
	progExit(b)
	entry := b.Link(k.M)
	if err := rig.Run(entry, 50_000_000); err != nil {
		return 0, 0, err
	}
	d := rig.Marks()
	if len(d) != 2 {
		return 0, 0, errMarks(len(d), 2)
	}
	return d[0], d[1], nil
}

func init() { Register("4", fixed(Table4)) }
