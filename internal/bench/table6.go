package bench

import (
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	"synthesis/internal/unixemu"
)

// Table 6: network loopback sockets, the synthesized Synthesis path
// against the generic layered baseline. The paper stops its published
// tables at the interrupt handlers; this table extends the same
// discipline to the network subsystem the text describes — per-socket
// send/receive synthesized at open time (port numbers, buffer bases
// and ring geometry folded in, the frame-header layer collapsed into
// the copy setup) versus the traditional stack that re-validates the
// descriptor, demultiplexes by table scan and locks the ring on every
// call.
//
// The same benchmark binary runs on both kernels through the UNIX
// trap convention (socket is call 97). Path lengths are exact
// instruction counts from the Quamachine's counter; on Synthesis the
// send count INCLUDES the loopback receive interrupt and its deposit
// into the destination socket's optimistic queue (the NIC delivers
// cut-through, so the handler runs inside the send call), while the
// NIC-less baseline deposits directly into the peer's ring and pays
// no interrupt at all — the comparison flatters the baseline.

// netPayload is the datagram size for the Table 6 measurements.
const netPayload = 128

// svcCount is the KCALL id of the instruction-counter probe.
const svcCount = 121

// kcallProbeInstrs is the per-probe cost: a KCALL expands to two
// instructions, and consecutive samples straddle exactly one probe.
const kcallProbeInstrs = 2

// sockOpen emits socket(local, remote) through the UNIX trap.
func sockOpen(b *asmkit.Builder, local, remote int32) {
	b.MoveL(m68k.Imm(local), m68k.D(1))
	b.MoveL(m68k.Imm(remote), m68k.D(2))
	unixCall(b, unixemu.SysSocket)
}

// sockWrite emits write(D6, addrBufA, netPayload). Arguments are
// reloaded every call: UNIX syscalls do not preserve D1-D3.
func sockWrite(b *asmkit.Builder) {
	b.MoveL(m68k.D(6), m68k.D(1))
	b.MoveL(m68k.Imm(addrBufA), m68k.D(2))
	b.MoveL(m68k.Imm(netPayload), m68k.D(3))
	unixCall(b, unixemu.SysWrite)
}

// sockRead emits read(D7, addrBufB, netPayload).
func sockRead(b *asmkit.Builder) {
	b.MoveL(m68k.D(7), m68k.D(1))
	b.MoveL(m68k.Imm(addrBufB), m68k.D(2))
	b.MoveL(m68k.Imm(netPayload), m68k.D(3))
	unixCall(b, unixemu.SysRead)
}

// sockPair opens the loopback pair 5<->9 and parks the descriptors in
// D6 (sender) and D7 (receiver).
func sockPair(b *asmkit.Builder) {
	sockOpen(b, 5, 9)
	b.MoveL(m68k.D(0), m68k.D(6))
	sockOpen(b, 9, 5)
	b.MoveL(m68k.D(0), m68k.D(7))
}

// pathRounds is how many bracketed send/recv pairs the path-length
// program performs; the minimum filters out any quantum interrupt
// that happens to land inside a bracket.
const pathRounds = 3

// buildSockPath emits the path-length program: open the pair, one
// unmeasured warm-up exchange, then pathRounds rounds of
// probe-write-probe and probe-read-probe.
func buildSockPath(b *asmkit.Builder) {
	sockPair(b)
	sockWrite(b)
	sockRead(b)
	for i := 0; i < pathRounds; i++ {
		b.Kcall(svcCount)
		sockWrite(b)
		b.Kcall(svcCount)
		b.Kcall(svcCount)
		sockRead(b)
		b.Kcall(svcCount)
	}
	progExit(b)
}

// buildSockOpen emits the open-cost program: one marked socket call.
func buildSockOpen(b *asmkit.Builder) {
	mark(b)
	sockOpen(b, 5, 9)
	mark(b)
	progExit(b)
}

// buildSockBounce emits the throughput program: iters interleaved
// send/recv exchanges between the marks.
func buildSockBounce(b *asmkit.Builder, iters int32) {
	sockPair(b)
	sockWrite(b) // warm-up
	sockRead(b)
	mark(b)
	b.MoveL(m68k.Imm(iters), m68k.D(5))
	b.Label("loop")
	sockWrite(b)
	sockRead(b)
	b.SubL(m68k.Imm(1), m68k.D(5))
	b.Bne("loop")
	mark(b)
	progExit(b)
}

// runCounted builds and runs a program with the instruction-counter
// probe registered and returns the sampled instruction counts.
func runCounted(r Rig, budget uint64, build func(*asmkit.Builder)) ([]uint64, error) {
	m := r.Machine()
	var samples []uint64
	m.RegisterService(svcCount, func(mm *m68k.Machine) uint64 {
		samples = append(samples, mm.Instrs)
		return 0
	})
	b := asmkit.New()
	build(b)
	entry := b.Link(m)
	if err := r.Run(entry, budget); err != nil {
		return nil, fmt.Errorf("%s: %w", r.Name(), err)
	}
	return samples, nil
}

// pathMins reduces the probe samples to (send, recv) instruction
// counts, taking the minimum over the rounds.
func pathMins(samples []uint64) (send, recv float64, err error) {
	if len(samples) != 4*pathRounds {
		return 0, 0, fmt.Errorf("table6: %d probe samples, want %d", len(samples), 4*pathRounds)
	}
	minDelta := func(off int) float64 {
		best := ^uint64(0)
		for i := 0; i < pathRounds; i++ {
			d := samples[4*i+off+1] - samples[4*i+off]
			if d < best {
				best = d
			}
		}
		return float64(best - kcallProbeInstrs)
	}
	return minDelta(0), minDelta(2), nil
}

// Table6 regenerates the network socket comparison.
func Table6() (Table, error) {
	t := Table{
		Title: "Table 6: Network loopback sockets, synthesized vs generic layers",
		Note: "128-byte datagrams between a loopback port pair, identical binaries;\n" +
			"synthesized send counts include the receive interrupt and queue deposit",
	}

	// Path lengths: exact instruction counts on both kernels.
	sSamp, err := runCounted(NewSynthRig(), 2_000_000_000, buildSockPath)
	if err != nil {
		return t, err
	}
	sSend, sRecv, err := pathMins(sSamp)
	if err != nil {
		return t, err
	}
	uSamp, err := runCounted(NewSunRig(), 2_000_000_000, buildSockPath)
	if err != nil {
		return t, err
	}
	uSend, uRecv, err := pathMins(uSamp)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		Row{Name: "send 128 B, synthesized path", Measured: sSend, Unit: "instr",
			Note: "folded ports + collapsed header; includes rx interrupt + deposit"},
		Row{Name: "send 128 B, generic sunos path", Measured: uSend, Unit: "instr",
			Note: "getf + table-scan demux + sleep lock + header layer + bcopy + wakeup"},
		Row{Name: "recv 128 B, synthesized path", Measured: sRecv, Unit: "instr",
			Note: "optimistic flag check, no lock"},
		Row{Name: "recv 128 B, generic sunos path", Measured: uRecv, Unit: "instr",
			Note: "sleep lock + header validation layer + bcopy + wakeup"},
		Row{Name: "send path ratio (generic/synthesized)", Measured: uSend / sSend, Unit: "x", Note: ""},
		Row{Name: "recv path ratio (generic/synthesized)", Measured: uRecv / sRecv, Unit: "x", Note: ""},
	)

	// Socket open: the synthesized side pays for code generation here.
	sOpen, err := runMarked(NewSynthRig(), 2_000_000_000, buildSockOpen)
	if err != nil {
		return t, err
	}
	uOpen, err := runMarked(NewSunRig(), 2_000_000_000, buildSockOpen)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		Row{Name: "socket open, synthesized", Measured: sOpen, Unit: "usec",
			Note: "includes charged synthesis of send/recv + handler resynthesis"},
		Row{Name: "socket open, generic sunos", Measured: uOpen, Unit: "usec",
			Note: "table scans + falloc only"},
	)

	// Loopback throughput: interleaved send/recv exchanges.
	const iters = 200
	sUS, err := runMarked(NewSynthRig(), 4_000_000_000, func(b *asmkit.Builder) {
		buildSockBounce(b, iters)
	})
	if err != nil {
		return t, err
	}
	uUS, err := runMarked(NewSunRig(), 4_000_000_000, func(b *asmkit.Builder) {
		buildSockBounce(b, iters)
	})
	if err != nil {
		return t, err
	}
	sFPS := float64(iters) * 1e6 / sUS
	uFPS := float64(iters) * 1e6 / uUS
	t.Rows = append(t.Rows,
		Row{Name: "loopback throughput, synthesized", Measured: sFPS, Unit: "fr/s",
			Note: fmt.Sprintf("%.1f usec per exchange incl. NIC DMA + interrupt", sUS/iters)},
		Row{Name: "loopback throughput, generic sunos", Measured: uFPS, Unit: "fr/s",
			Note: fmt.Sprintf("%.1f usec per exchange, no NIC in the path", uUS/iters)},
		Row{Name: "throughput ratio (synthesized/generic)", Measured: sFPS / uFPS, Unit: "x", Note: ""},
	)
	return t, nil
}

func init() { Register("6", fixed(Table6)) }
