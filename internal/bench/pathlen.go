package bench

import (
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// Figure 2 path lengths: "the current implementation of MP-SC has a
// normal execution path length of 11 instructions (on the MC68020
// processor) through Q_put ... The thread that succeeds consumes 11
// instructions. The failing thread goes once around the retry loop
// for a total of 20 instructions."
//
// The routine below is Figure 2 transliterated (single-item insert:
// AddWrap, the space check, the compare-and-swap claim with its retry
// loop, the slot fill and the valid-flag set), synthesized with the
// queue geometry folded in. The instruction counter of the Quamachine
// counts the exact path.

// queueGeom lays out an MP-SC queue for the path-length measurement.
type queueGeom struct {
	head, tail, buf, flags uint32
	size                   int32
}

// synthFig2Put emits Q_put(data=D1) for one item; returns in D0 the
// value 1 on success, 0 on queue-full.
func synthFig2Put(c *synth.Creator, g queueGeom) uint32 {
	return c.Synthesize(nil, "fig2_qput", nil, func(e *synth.Emitter) {
		e.Label("retry")
		e.MoveL(m68k.Abs(g.head), m68k.D(0)) // h = Q_head
		e.MoveL(m68k.D(0), m68k.D(2))        // hi = AddWrap(h, 1)
		e.AddL(m68k.Imm(1), m68k.D(2))
		e.CmpL(m68k.Imm(g.size), m68k.D(2))
		e.Bne("nowrap")
		e.Clr(4, m68k.D(2))
		e.Label("nowrap")
		e.Cmp(4, m68k.Abs(g.tail), m68k.D(2)) // SpaceLeft(h) > 0 ?
		e.Beq("full")
		e.Cas(4, 0, 2, m68k.Abs(g.head)) // stake the claim
		e.Bne("retry")
		// Fill the claimed slot, then publish it through the flag
		// array ("as the producers fill each queue element, they also
		// set a flag in the associated array").
		e.Lea(m68k.Abs(g.buf), 0)
		e.MoveB(m68k.D(1), m68k.Idx(0, 0, 0, 1))
		e.Lea(m68k.Abs(g.flags), 0)
		e.MoveB(m68k.Imm(1), m68k.Idx(0, 0, 0, 1))
		e.MoveL(m68k.Imm(1), m68k.D(0))
		e.Rts()
		e.Label("full")
		e.Clr(4, m68k.D(0))
		e.Rts()
	})
}

// PathLengths measures the Figure 2 claims: instructions through
// Q_put on the uncontended path and with exactly one CAS retry
// (interference injected by a KCALL hook that bumps Q_head between
// the producer's read and its compare-and-swap, standing in for the
// competing processor).
func PathLengths() (Table, error) {
	t := Table{
		Title: "Figure 2: MP-SC optimistic queue put, path length (instructions)",
		Note:  "Figure 2 transliterated to the Quamachine; instruction counter deltas",
	}
	rig := NewSynthRig()
	k := rig.K
	m := k.M

	heapAlloc := func(n uint32) uint32 {
		a, err := k.Heap.Alloc(n)
		if err != nil {
			panic(err)
		}
		return a
	}
	g := queueGeom{
		head:  heapAlloc(4),
		tail:  heapAlloc(4),
		buf:   heapAlloc(64),
		flags: heapAlloc(64),
		size:  64,
	}
	put := synthFig2Put(k.C, g)
	stack := heapAlloc(256) + 256

	// Instruction-count a call: run from a jsr stub to completion.
	countPut := func() (uint64, error) {
		b := asmkit.New()
		b.MoveL(m68k.Imm('x'), m68k.D(1))
		b.Jsr(put)
		b.Halt()
		entry := b.Link(m)
		m.ClearHalt()
		m.PC = entry
		m.A[7] = stack
		m.SR = m68k.FlagS | 7<<8 // measure the bare path, no interrupts
		// Skip the stub's own two instructions (move + jsr) and the
		// final halt by sampling around the routine itself.
		if err := m.RunUntil(put, 100_000); err != nil {
			return 0, err
		}
		start := m.Instrs
		for {
			if int(m.PC) < len(m.Code) && m.Code[m.PC].Op == m68k.RTS {
				n := m.Instrs - start + 1 // include the rts
				return n, nil
			}
			if err := m.Step(); err != nil {
				return 0, err
			}
			if m.Instrs-start > 1000 {
				return 0, fmt.Errorf("pathlen: runaway put")
			}
		}
	}

	// Uncontended put.
	n1, err := countPut()
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, Row{
		Name: "Q_put, no interference", Paper: 11, Measured: float64(n1),
		Unit: "instr", Note: "space check + CAS claim + fill + flag set",
	})

	// One retry: a hook on the CAS instruction's first execution
	// advances Q_head underneath the producer, exactly what a
	// competing processor's successful claim does.
	interfered := false
	m.RegisterService(120, func(mm *m68k.Machine) uint64 {
		if !interfered {
			interfered = true
			h := mm.Peek(g.head, 4)
			hi := h + 1
			if int32(hi) == g.size {
				hi = 0
			}
			mm.Poke(g.head, 4, hi)
		}
		return 0
	})
	// Wrap the put with an interfering twin: patch is intrusive, so
	// instead synthesize a variant whose retry-point is instrumented.
	putI := k.C.Synthesize(nil, "fig2_qput_interfered", nil, func(e *synth.Emitter) {
		e.Label("retry")
		e.MoveL(m68k.Abs(g.head), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.D(2))
		e.AddL(m68k.Imm(1), m68k.D(2))
		e.CmpL(m68k.Imm(g.size), m68k.D(2))
		e.Bne("nowrap")
		e.Clr(4, m68k.D(2))
		e.Label("nowrap")
		e.Cmp(4, m68k.Abs(g.tail), m68k.D(2))
		e.Beq("full")
		e.Kcall(120) // the competing processor strikes here (not counted below)
		e.Cas(4, 0, 2, m68k.Abs(g.head))
		e.Bne("retry")
		e.Lea(m68k.Abs(g.buf), 0)
		e.MoveB(m68k.D(1), m68k.Idx(0, 0, 0, 1))
		e.Lea(m68k.Abs(g.flags), 0)
		e.MoveB(m68k.Imm(1), m68k.Idx(0, 0, 0, 1))
		e.MoveL(m68k.Imm(1), m68k.D(0))
		e.Rts()
		e.Label("full")
		e.Clr(4, m68k.D(0))
		e.Rts()
	})
	put = putI
	interfered = false
	n2, err := countPut()
	if err != nil {
		return t, err
	}
	n2 -= 2 // the two KCALL probe instructions are not part of the algorithm
	t.Rows = append(t.Rows, Row{
		Name: "Q_put, one CAS retry", Paper: 20, Measured: float64(n2),
		Unit: "instr", Note: "competing claim between the read and the CAS",
	})

	// The multi-item atomic insert, Figure 2 verbatim: one CAS claims
	// H slots, then the fill loop sets data and flags. Per-item cost
	// amortizes the claim.
	putBatch := synthFig2PutBatch(k.C, g, 8)
	put = putBatch
	n3, err := countPut()
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, Row{
		Name: "Q_put, 8-item atomic batch", Measured: float64(n3),
		Unit: "instr",
		Note: fmt.Sprintf("%.1f instructions/item: the claim amortizes", float64(n3)/8),
	})
	return t, nil
}

// synthFig2PutBatch emits the multi-item Q_put of Figure 2: stake a
// claim for H slots with one compare-and-swap, then fill them while
// setting the valid flags. Items are H copies of D1's low byte.
func synthFig2PutBatch(c *synth.Creator, g queueGeom, h int32) uint32 {
	return c.Synthesize(nil, "fig2_qput_batch", nil, func(e *synth.Emitter) {
		e.Label("retry")
		e.MoveL(m68k.Abs(g.head), m68k.D(0)) // h = Q_head
		e.MoveL(m68k.D(0), m68k.D(2))        // hi = AddWrap(h, H)
		e.AddL(m68k.Imm(h), m68k.D(2))
		e.CmpL(m68k.Imm(g.size), m68k.D(2))
		e.Bcs("nowrap")
		e.SubL(m68k.Imm(g.size), m68k.D(2))
		e.Label("nowrap")
		// SpaceLeft(h) > H: t - h - 1 mod size must exceed H.
		e.MoveL(m68k.Abs(g.tail), m68k.D(3))
		e.SubL(m68k.D(0), m68k.D(3))
		e.SubL(m68k.Imm(1), m68k.D(3))
		e.Bcc("nofix")
		e.AddL(m68k.Imm(g.size), m68k.D(3))
		e.Label("nofix")
		e.CmpL(m68k.Imm(h), m68k.D(3))
		e.Bcs("full")
		e.Cas(4, 0, 2, m68k.Abs(g.head)) // one claim for the whole batch
		e.Bne("retry")
		// Fill the claimed span: "the producer then proceeds to fill
		// the space, at the same time as other producers are filling
		// theirs", publishing each slot through its flag.
		e.MoveL(m68k.Imm(h-1), m68k.D(3))
		e.Label("fill")
		e.Lea(m68k.Abs(g.buf), 0)
		e.MoveB(m68k.D(1), m68k.Idx(0, 0, 0, 1))
		e.Lea(m68k.Abs(g.flags), 0)
		e.MoveB(m68k.Imm(1), m68k.Idx(0, 0, 0, 1))
		e.AddL(m68k.Imm(1), m68k.D(0)) // AddWrap(h, i)
		e.CmpL(m68k.Imm(g.size), m68k.D(0))
		e.Bne("nw2")
		e.Clr(4, m68k.D(0))
		e.Label("nw2")
		e.Dbra(3, "fill")
		e.MoveL(m68k.Imm(1), m68k.D(0))
		e.Rts()
		e.Label("full")
		e.Clr(4, m68k.D(0))
		e.Rts()
	})
}

func init() { Register("pathlen", fixed(PathLengths)) }
