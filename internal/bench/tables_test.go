package bench

import "testing"

// The table runners are exercised with shape assertions: the paper's
// reproducible claims are orderings and ratios, so that is what the
// tests pin down. (Exact values are deterministic on the simulator; we
// assert ranges so honest cost-model recalibration does not break the
// suite.)

func row(t *testing.T, tab Table, name string) Row {
	t.Helper()
	for _, r := range tab.Rows {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("table %q has no row %q", tab.Title, name)
	return Row{}
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := Table1(Table1Config{Iters: 40})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())

	// The calibration program must be at parity: same binary, same
	// machine; Synthesis pays only its quantum interrupts.
	c := row(t, tab, "compute (speedup sun/synthesis)")
	if c.Measured < 0.90 || c.Measured > 1.05 {
		t.Errorf("compute ratio = %.2f, want ~1 (hardware emulation parity)", c.Measured)
	}
	// Synthesis must win every I/O program.
	for _, name := range []string{
		"pipe r/w 1 B (speedup sun/synthesis)",
		"pipe r/w 1 KB (speedup sun/synthesis)",
		"pipe r/w 4 KB (speedup sun/synthesis)",
		"file r/w 1 KB (speedup sun/synthesis)",
		"open-close null (speedup sun/synthesis)",
		"open-close tty (speedup sun/synthesis)",
	} {
		r := row(t, tab, name)
		if r.Measured <= 1.0 {
			t.Errorf("%s = %.2fx: Synthesis did not win", name, r.Measured)
		}
	}
	// The single-byte pipe should show a solid multiple.
	if r := row(t, tab, "pipe r/w 1 B (speedup sun/synthesis)"); r.Measured < 2.5 {
		t.Errorf("1-byte pipe speedup = %.2fx, want >= 2.5x", r.Measured)
	}
}

func TestTable2Shape(t *testing.T) {
	tab, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())

	overhead := row(t, tab, "emulation trap overhead")
	if overhead.Measured <= 0 || overhead.Measured > 8 {
		t.Errorf("emulation overhead = %.2f usec, want (0, 8]", overhead.Measured)
	}
	null := row(t, tab, "open /dev/null").Measured
	tty := row(t, tab, "open /dev/tty").Measured
	file := row(t, tab, "open file").Measured
	if !(null < tty && tty < file) {
		t.Errorf("open ordering broken: null %.1f, tty %.1f, file %.1f", null, tty, file)
	}
	// Opens are tens of microseconds, not hundreds (the paper's
	// decade).
	if null < 20 || null > 150 {
		t.Errorf("open null = %.1f usec, want the paper's decade (43)", null)
	}
	if r := row(t, tab, "read N from /dev/null"); r.Measured > 12 {
		t.Errorf("null read = %.1f usec, want constant-time stub cost", r.Measured)
	}
	// Bulk reads amortize: per-8-chars figure far below the 1-char
	// read.
	one := row(t, tab, "read 1 char from file").Measured
	per8 := row(t, tab, "read N chars from file (per 8 chars)").Measured
	if per8 >= one {
		t.Errorf("bulk read (%.2f usec/8B) not cheaper than 1-char read (%.2f usec)", per8, one)
	}
}

func TestTable3Shape(t *testing.T) {
	tab, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())

	create := row(t, tab, "create").Measured
	if create < 80 || create > 400 {
		t.Errorf("create = %.1f usec, want the paper's decade (142)", create)
	}
	// Everything else is tens of microseconds.
	for _, name := range []string{"destroy", "stop", "start", "step", "signal"} {
		r := row(t, tab, name)
		if r.Measured <= 0 || r.Measured > 60 {
			t.Errorf("%s = %.1f usec, want (0, 60]", name, r.Measured)
		}
		if r.Measured >= create {
			t.Errorf("%s (%.1f) not cheaper than create (%.1f)", name, r.Measured, create)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	tab, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())

	full := row(t, tab, "full context switch").Measured
	fp := row(t, tab, "full context switch (FP registers)").Measured
	partial := row(t, tab, "partial context switch").Measured
	if full < 5 || full > 40 {
		t.Errorf("full switch = %.1f usec, want the paper's decade (11)", full)
	}
	if fp <= full {
		t.Errorf("FP switch (%.1f) not more expensive than integer switch (%.1f)", fp, full)
	}
	if partial >= full {
		t.Errorf("partial switch (%.1f) not cheaper than full (%.1f)", partial, full)
	}
	if b := row(t, tab, "block thread").Measured; b >= full {
		t.Errorf("block (%.1f) should cost less than a full switch (%.1f)", b, full)
	}
}

func TestTable5Shape(t *testing.T) {
	tab, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())

	for _, name := range []string{
		"service raw TTY interrupt", "service raw A/D interrupt",
		"set alarm", "alarm interrupt",
		"chain to a procedure", "chain to a procedure (CAS)",
		"chain (signal) a thread",
	} {
		r := row(t, tab, name)
		if r.Measured <= 0 || r.Measured > 40 {
			t.Errorf("%s = %.1f usec, want (0, 40]", name, r.Measured)
		}
	}
	// The A/D fast path must be cheaper than the tty handler (no
	// queue-index juggling on 7 of 8 samples).
	ad := row(t, tab, "service raw A/D interrupt").Measured
	tty := row(t, tab, "service raw TTY interrupt").Measured
	if ad >= tty {
		t.Errorf("A/D handler (%.1f) not cheaper than tty handler (%.1f)", ad, tty)
	}
	// Plain chaining is the cheapest operation in the table.
	if ch := row(t, tab, "chain to a procedure").Measured; ch > 8 {
		t.Errorf("procedure chaining = %.1f usec, want a few usec", ch)
	}
}

func TestTable6Shape(t *testing.T) {
	tab, err := Table6()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())

	// The acceptance bars. Both paths now checksum every frame, and
	// the sum is data-proportional work (one add per payload long) that
	// specialization cannot eliminate — it puts a shared floor of ~150
	// instructions under a 128-byte datagram exchange. The send bar is
	// therefore a ratio over that floor rather than the 2x that held
	// before the checksum layer: the synthesized send must stay at
	// least 25% under the generic path even though its count includes
	// the receive interrupt and queue deposit while the NIC-less
	// baseline pays no interrupt at all.
	sSend := row(t, tab, "send 128 B, synthesized path").Measured
	uSend := row(t, tab, "send 128 B, generic sunos path").Measured
	if 4*uSend < 5*sSend {
		t.Errorf("synthesized send = %.0f instr, generic = %.0f: not >= 1.25x", sSend, uSend)
	}
	sRecv := row(t, tab, "recv 128 B, synthesized path").Measured
	uRecv := row(t, tab, "recv 128 B, generic sunos path").Measured
	if 2*sRecv > uRecv {
		t.Errorf("synthesized recv = %.0f instr, generic = %.0f: not <= half", sRecv, uRecv)
	}
	// Throughput: the synthesized stack must win end to end.
	sT := row(t, tab, "loopback throughput, synthesized").Measured
	uT := row(t, tab, "loopback throughput, generic sunos").Measured
	if sT <= uT {
		t.Errorf("synthesized throughput %.0f fr/s did not beat generic %.0f fr/s", sT, uT)
	}
	// Open cost: both positive; the synthesized side is allowed to be
	// dearer (it pays for code generation at open time).
	if o := row(t, tab, "socket open, synthesized").Measured; o <= 0 {
		t.Errorf("synthesized open = %.1f usec", o)
	}
	if o := row(t, tab, "socket open, generic sunos").Measured; o <= 0 {
		t.Errorf("generic open = %.1f usec", o)
	}
}

func TestTable7Shape(t *testing.T) {
	tab, err := Table7(RunConfig{Iters: 100})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())

	// Throughput must degrade monotonically-ish with loss but never
	// collapse: every frame is eventually delivered by the ARQ, so the
	// 30%-loss run must still clear a third of the loss-free rate.
	base := row(t, tab, "throughput @  0% frame loss").Measured
	worst := row(t, tab, "throughput @ 30% frame loss").Measured
	if base <= 0 || worst <= 0 {
		t.Fatalf("throughput rows: base=%.0f worst=%.0f", base, worst)
	}
	if worst >= base {
		t.Errorf("30%% loss throughput %.0f fr/s not below loss-free %.0f", worst, base)
	}
	if worst < base/3 {
		t.Errorf("30%% loss throughput %.0f fr/s collapsed (loss-free %.0f)", worst, base)
	}
	// Lossy runs must report retransmissions and a positive recovery
	// latency in a sane band (a retransmit costs about one send path,
	// tens of microseconds — not milliseconds).
	for _, name := range []string{
		"recovery latency @ 10% frame loss",
		"recovery latency @ 20% frame loss",
		"recovery latency @ 30% frame loss",
	} {
		r := row(t, tab, name)
		if r.Measured <= 0 || r.Measured > 1000 {
			t.Errorf("%s = %.1f usec, want (0, 1000)", name, r.Measured)
		}
	}
	// The watchdog must both engage and release within a few sampling
	// windows (500 usec each). Release pays an extra window: the
	// window the storm dies in still counts as stormy, so the gauge
	// only reads quiet one full window later. It can pay up to one
	// more: the net handler runs to completion fully masked, so an
	// alarm tick that lands mid-drain is deferred to the handler's
	// RTE, sliding the window boundary late under coalesced storms.
	if e := row(t, tab, "IRQ-storm throttle engage").Measured; e <= 0 || e > 3*500 {
		t.Errorf("storm engage latency = %.0f usec, want within ~3 windows", e)
	}
	if e := row(t, tab, "IRQ-storm throttle release").Measured; e <= 0 || e > 5*500 {
		t.Errorf("storm release latency = %.0f usec, want within ~5 windows", e)
	}
}

func TestSizeTableShape(t *testing.T) {
	tab, err := SizeTable()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	static := row(t, tab, "static kernel (boot-time synthesized code)").Measured
	if static <= 0 {
		t.Error("no boot-time synthesized code accounted")
	}
	null := row(t, tab, "per-open /dev/null").Measured
	file := row(t, tab, "per-open file").Measured
	if !(null < file) {
		t.Errorf("per-open sizes: null %.0f should be < file %.0f", null, file)
	}
	if file > 2048 {
		t.Errorf("per-open file synthesized %.0f bytes: marginal cost should be small", file)
	}
}

func TestAblationsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := Ablations()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())

	pairs := [][2]string{
		{"read 1 KB: synthesized (Synthesis)", "read 1 KB: generic layers (baseline)"},
		{"context switch: executable ready queue", "context switch: traditional swtch()"},
		{"switch without FP context (lazy default)", "switch with FP context (post-upgrade)"},
		{"A/D interrupt: buffered queue (factor 8)", "A/D interrupt: unbuffered (factor 1)"},
		{"cooked tty read: collapsed layers", "cooked tty read: layered"},
		{"32 B element put, invariants folded + optimized", "32 B element put, cell-bound + unoptimized"},
		{"64 KB pipe transfer, fine-grain scheduling", "64 KB pipe transfer, fixed quanta"},
	}
	for _, p := range pairs {
		with := row(t, tab, p[0]).Measured
		without := row(t, tab, p[1]).Measured
		if with >= without {
			t.Errorf("ablation %q (%.2f) not cheaper than %q (%.2f)", p[0], with, p[1], without)
		}
	}
	// The two big wins must be multiples, not margins.
	synth := row(t, tab, "read 1 KB: synthesized (Synthesis)").Measured
	generic := row(t, tab, "read 1 KB: generic layers (baseline)").Measured
	if generic/synth < 2 {
		t.Errorf("synthesis win on 1 KB read = %.1fx, want >= 2x", generic/synth)
	}
	sw := row(t, tab, "context switch: executable ready queue").Measured
	swt := row(t, tab, "context switch: traditional swtch()").Measured
	if swt/sw < 3 {
		t.Errorf("ready-queue win = %.1fx, want >= 3x", swt/sw)
	}
}

func TestFigure2PathLengths(t *testing.T) {
	tab, err := PathLengths()
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	ok := row(t, tab, "Q_put, no interference").Measured
	retry := row(t, tab, "Q_put, one CAS retry").Measured
	if ok < 9 || ok > 16 {
		t.Errorf("uncontended put = %.0f instructions, paper says 11", ok)
	}
	if retry <= ok {
		t.Errorf("retry path (%.0f) not longer than the normal path (%.0f)", retry, ok)
	}
	if retry-ok < 4 || retry-ok > 12 {
		t.Errorf("retry overhead = %.0f instructions, paper implies ~9", retry-ok)
	}
	batch := row(t, tab, "Q_put, 8-item atomic batch").Measured
	if batch/8 >= ok {
		t.Errorf("batch insert %.1f instr/item not cheaper than single put (%.0f)", batch/8, ok)
	}
}

func TestTable9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tab, err := Run("9", RunConfig{Iters: 60})
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + tab.String())
	// Loss sweep + churn: clean points carry 3 rows, lossy points a
	// resend-rate row on top; the partition cycle adds the recovery
	// quantiles.
	if got, want := len(tab.Rows), 3+4+4+4+3; got != want {
		t.Errorf("table 9 has %d rows, want %d", got, want)
	}
	clean := row(t, tab, "loss 0% aggregate").Measured
	lossy := row(t, tab, "loss 15% aggregate").Measured
	if clean <= 0 || lossy <= 0 {
		t.Errorf("aggregates must stay positive: clean=%.0f lossy=%.0f", clean, lossy)
	}
	if r := row(t, tab, "loss 15% resends").Measured; r <= 0 {
		t.Errorf("15%% loss sustained zero resends (%.0f/s): the retry path is dead", r)
	}
	p50 := row(t, tab, "recovery p50").Measured
	p99 := row(t, tab, "recovery p99").Measured
	max := row(t, tab, "recovery max").Measured
	if !(p50 <= p99 && p99 <= max) {
		t.Errorf("recovery quantiles out of order: p50=%.0f p99=%.0f max=%.0f", p50, p99, max)
	}
	if max <= 0 {
		t.Error("recovery max is zero: no severed connection measured a heal")
	}
}
