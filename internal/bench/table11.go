package bench

import (
	"fmt"
	"time"

	"synthesis/internal/asmkit"
	"synthesis/internal/cluster"
	"synthesis/internal/m68k"
)

// Table 11: wall-clock MIPS — how fast the host actually executes
// guest instructions, as opposed to the simulated cycle clock every
// other table is denominated in. Not a paper table: the paper ran on
// silicon, where this number WAS the clock; here it is the hosting
// cost that bounds soak runs, fleet scale, and live monitoring, and
// it is the number the threaded-code dispatcher (docs/PERFORMANCE.md)
// exists to move.
//
// Rows: each Table 1 workload run on the Synthesis rig (guest
// instructions retired per wall second), a raw step-loop mix with the
// measurement plane off (the interpreter's floor, in ns per guest
// instruction), the speedup of that floor over the committed
// pre-dispatch measurement, and a 2-VM fleet row (aggregate guest
// MIPS while serving echo traffic).
//
// Wall-clock rates are nondeterministic by design: run via RunN for a
// median and gated warn-only (-warn-tables in the Makefile), like
// Tables 8-10. Invoked as `synbench -table mips` (canonical) or
// `-table 11`; the artifact is BENCH_mips.json either way.

func init() {
	Register("mips", table11)
	RegisterAlias("11", "mips")
}

// preDispatchNsPerInstr is the committed pre-change measurement of
// the interpreter's host-side cost: BenchmarkStepLoop on the switch
// interpreter at commit b5e4f6b (Intel Xeon @ 2.70GHz host), before
// the threaded-code dispatcher landed. The "dispatch speedup" row
// divides this by the measured floor so the dispatcher's win is
// itself regression-tracked: if translation-cache hit rates collapse,
// the speedup row collapses with them.
const preDispatchNsPerInstr = 31.64

const t11FleetWindow = 200 * time.Millisecond

func table11(cfg RunConfig) (Table, error) {
	iters := cfg.Iters
	if iters <= 0 {
		iters = 200
	}
	t := Table{
		Title: "Table 11. Wall-clock MIPS: host-side guest instruction throughput",
		Note: "guest instructions retired per wall second (simulated cycle clock is\n" +
			"unaffected by host speed; see docs/PERFORMANCE.md); warn-only in CI (wall-clock)",
	}

	// The seven Table 1 workloads on the Synthesis rig: full kernel,
	// measurement plane as Table 1 runs it (trace ring on), so this is
	// the hosting cost of the numbers Table 1 reports.
	for _, p := range table1Programs(iters) {
		mips, err := t11Workload(p)
		if err != nil {
			return Table{}, fmt.Errorf("table 11 %s: %w", p.name, err)
		}
		t.Rows = append(t.Rows, Row{
			Name:     p.name,
			Measured: mips,
			Unit:     "mips",
			Note:     "synthesis rig, trace ring on",
		})
	}

	// The interpreter floor: a bare machine (no devices, no trace, no
	// probe) running the dispatcher benchmark mix. This is the number
	// the pre-dispatch measurement is recorded in.
	floor, err := t11Floor()
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows,
		Row{
			Name:     "step loop floor",
			Measured: floor,
			Unit:     "ns",
			Note:     "host ns per guest instruction, bare machine, mixed ALU/mem/branch loop",
		},
		Row{
			Name:     "dispatch speedup vs pre-dispatch",
			Measured: preDispatchNsPerInstr / floor,
			Unit:     "x",
			Note: fmt.Sprintf("committed pre-dispatch floor %.2f ns/instr (switch interpreter, commit b5e4f6b)",
				preDispatchNsPerInstr),
		})

	// Fleet row: aggregate guest MIPS across a 2-VM cluster serving
	// echo traffic — dispatch, devices, IRQs, fabric and scheduler all
	// in the loop.
	fleet, err := t11Fleet()
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, Row{
		Name:     "fleet 2 vm x 64 conns aggregate",
		Measured: fleet,
		Unit:     "mips",
		Note:     fmt.Sprintf("%v echo window, all-VM guest instruction delta", t11FleetWindow),
	})
	return t, nil
}

// t11Workload runs one Table 1 program on a fresh Synthesis rig and
// returns guest MIPS: instructions retired over wall time, boot and
// synthesis included (that is the hosting cost a soak run pays).
func t11Workload(p t1prog) (float64, error) {
	rig := NewSynthRig()
	b := asmkit.New()
	p.build(b)
	entry := b.Link(rig.Machine())
	i0 := rig.Machine().Instrs
	t0 := time.Now()
	if err := rig.Run(entry, p.budget); err != nil {
		return 0, err
	}
	wall := time.Since(t0)
	instrs := rig.Machine().Instrs - i0
	return float64(instrs) / wall.Seconds() / 1e6, nil
}

// t11Floor measures the bare step loop (same mix as the committed
// BenchmarkStepLoop) and returns host nanoseconds per instruction.
func t11Floor() (float64, error) {
	m := m68k.New(m68k.Config{})
	entry := m68k.EmitBenchProgram(m)
	// Warm the translation cache, then measure repeated runs.
	m.PC = entry
	if err := m.Run(1 << 40); err != m68k.ErrHalted {
		return 0, err
	}
	var instrs uint64
	t0 := time.Now()
	for time.Since(t0) < 100*time.Millisecond {
		m.ClearHalt()
		m.PC = entry
		i0 := m.Instrs
		if err := m.Run(1 << 40); err != m68k.ErrHalted {
			return 0, err
		}
		instrs += m.Instrs - i0
	}
	wall := time.Since(t0)
	if instrs == 0 {
		return 0, fmt.Errorf("table 11: floor loop retired no instructions")
	}
	return float64(wall.Nanoseconds()) / float64(instrs), nil
}

// t11Fleet boots the Table 9 fleet shape (no faults) and returns
// aggregate guest MIPS over a steady-state echo window.
func t11Fleet() (float64, error) {
	c := cluster.New(cluster.Config{
		VMs:          2,
		SocketsPerVM: 8,
		Conns:        64,
		PayloadBytes: 64,
		Seed:         1,
	})
	c.Start()
	defer c.Stop()
	deadline := time.Now().Add(15 * time.Second)
	for c.ActiveConns() < 64 && time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			return 0, err
		}
		time.Sleep(time.Millisecond)
	}
	if c.ActiveConns() < 64 {
		return 0, fmt.Errorf("table 11 fleet: only %d/64 connections came live", c.ActiveConns())
	}
	i0 := c.GuestInstrs()
	t0 := time.Now()
	time.Sleep(t11FleetWindow)
	instrs := c.GuestInstrs() - i0
	wall := time.Since(t0)
	if err := c.Err(); err != nil {
		return 0, err
	}
	return float64(instrs) / wall.Seconds() / 1e6, nil
}
