package bench

import (
	"fmt"
	"sort"
)

// Section 6.4: kernel size accounting. The paper breaks its 64 KB
// kernel into device drivers, the quaject creator/interfacer, code
// templates, utilities, and the kernel monitor, and argues that the
// per-quaject synthesized code is small ("with 3 processes running,
// the Synthesis kernel occupies only 32K").

// SizeTable reports the synthesized-code accounting of a freshly
// booted Synthesis rig plus the marginal cost of threads and opens.
func SizeTable() (Table, error) {
	t := Table{
		Title: "Section 6.4: Kernel size accounting",
		Note:  "synthesized Quamachine code, encoded-size estimate in bytes",
	}
	rig := NewSynthRig()
	k := rig.K

	bootRoutines := k.C.Routines
	bootBytes := k.C.TotalBytes
	t.Rows = append(t.Rows, Row{
		Name:     "static kernel (boot-time synthesized code)",
		Paper:    32768, // "the Synthesis kernel occupies only 32K"
		Measured: float64(bootBytes),
		Unit:     "bytes",
		Note:     fmt.Sprintf("%d routines", bootRoutines),
	})

	// Marginal thread cost: spawn one and diff.
	preB, preR := k.C.TotalBytes, k.C.Routines
	th := k.SpawnKernelStopped("sizer", 0)
	t.Rows = append(t.Rows, Row{
		Name:     "per-thread synthesized code",
		Measured: float64(k.C.TotalBytes - preB),
		Unit:     "bytes",
		Note: fmt.Sprintf("%d routines (sw_out, sw_in); TTE data adds %d bytes",
			k.C.Routines-preR, 1024),
	})

	// Marginal open cost per kind (through the Go hook directly).
	kinds := []struct{ name, path string }{
		{"per-open /dev/null", "/dev/null"},
		{"per-open /dev/tty", "/dev/tty"},
		{"per-open file", benchFileName},
	}
	for _, kind := range kinds {
		preB = k.C.TotalBytes
		fd, ok := k.OpenHook(k, th, kind.path)
		if !ok {
			return t, fmt.Errorf("size: open %s failed", kind.path)
		}
		t.Rows = append(t.Rows, Row{
			Name:     kind.name,
			Measured: float64(k.C.TotalBytes - preB),
			Unit:     "bytes",
			Note:     "synthesized read+write pair",
		})
		k.CloseHook(k, th, fd)
	}

	// Largest quajects by synthesized size, for the curious.
	type qsize struct {
		name  string
		bytes int
	}
	var qs []qsize
	for _, th := range k.Threads {
		qs = append(qs, qsize{th.Q.Name, th.Q.Bytes})
	}
	sort.Slice(qs, func(i, j int) bool { return qs[i].bytes > qs[j].bytes })
	for i, q := range qs {
		if i >= 3 {
			break
		}
		t.Rows = append(t.Rows, Row{
			Name:     "quaject " + q.name,
			Measured: float64(q.bytes),
			Unit:     "bytes",
		})
	}
	return t, nil
}

func init() { Register("size", fixed(SizeTable)) }
