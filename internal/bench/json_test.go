package bench

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestNamesOrdering(t *testing.T) {
	want := []string{"1", "2", "3", "4", "5", "6", "7", "ablations", "cluster", "mips", "pathlen", "proc", "recovery", "rtt", "size"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("duplicate Register did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "duplicate table registration") {
			t.Fatalf("unexpected panic value: %v", r)
		}
	}()
	Register("1", fixed(Table3))
}

func TestArtifactName(t *testing.T) {
	cases := map[string]string{
		"1":         "BENCH_table1.json",
		"7":         "BENCH_table7.json",
		"pathlen":   "BENCH_pathlen.json",
		"ablations": "BENCH_ablations.json",
	}
	for name, want := range cases {
		if got := ArtifactName(name); got != want {
			t.Errorf("ArtifactName(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestTableJSONRoundTripSynthetic(t *testing.T) {
	in := Table{
		Title: "Table X: synthetic",
		Note:  "a note",
		Rows: []Row{
			{Name: "emulated read", Paper: 12, Measured: 11.5, Unit: "usec", Note: "n=100"},
			{Name: "zero paper", Measured: 3, Unit: "instr"},
			{Name: "throughput", Paper: 1000, Measured: 1100, Unit: "fr/s"},
		},
	}
	var buf bytes.Buffer
	if err := EncodeTableJSON(&buf, "x", in); err != nil {
		t.Fatal(err)
	}
	name, out, err := DecodeTableJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if name != "x" {
		t.Fatalf("decoded name %q, want %q", name, "x")
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, _, err := DecodeTableJSON(strings.NewReader(`{"schema":99,"name":"x","title":"t","rows":[]}`)); err == nil {
		t.Fatal("schema 99 accepted")
	}
}

// TestRegisteredTablesRoundTrip runs every registered table briefly
// and proves it survives the JSON encode/decode losslessly — the
// guarantee benchdiff depends on.
func TestRegisteredTablesRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every bench table")
	}
	dir := t.TempDir()
	for _, name := range Names() {
		tab, err := Run(name, RunConfig{Iters: 25})
		if err != nil {
			t.Fatalf("table %s: %v", name, err)
		}
		path, err := WriteArtifact(dir, name, tab)
		if err != nil {
			t.Fatalf("table %s: %v", name, err)
		}
		if filepath.Base(path) != ArtifactName(name) {
			t.Fatalf("table %s written to %s", name, path)
		}
	}
	back, err := LoadArtifactDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(Names()) {
		t.Fatalf("loaded %d artifacts, want %d", len(back), len(Names()))
	}
	for name, tab := range back {
		again, err := Run(name, RunConfig{Iters: 25})
		if err != nil {
			t.Fatalf("table %s rerun: %v", name, err)
		}
		if tab.Title != again.Title || len(tab.Rows) != len(again.Rows) {
			t.Fatalf("table %s: artifact shape diverged from a rerun", name)
		}
	}
}

func TestDiffTables(t *testing.T) {
	base := map[string]Table{
		"1": {Title: "t1", Rows: []Row{
			{Name: "lat", Measured: 10, Unit: "usec"},
			{Name: "tput", Measured: 1000, Unit: "fr/s"},
			{Name: "gone", Measured: 1, Unit: "usec"},
		}},
	}
	fresh := map[string]Table{
		"1": {Title: "t1", Rows: []Row{
			{Name: "lat", Measured: 13, Unit: "usec"},    // +30% worse
			{Name: "tput", Measured: 1200, Unit: "fr/s"}, // better
			{Name: "added", Measured: 2, Unit: "usec"},
		}},
	}
	res := DiffTables(base, fresh, 10)
	if res.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1\n%s", res.Regressions, res.Format())
	}
	for _, d := range res.Rows {
		switch d.Row {
		case "lat":
			if !d.Regressed || d.DeltaPct < 29 || d.DeltaPct > 31 {
				t.Errorf("lat: %+v", d)
			}
		case "tput":
			if d.Regressed || d.DeltaPct > 0 {
				t.Errorf("tput should improve downward-normalized: %+v", d)
			}
		}
	}
	if len(res.OnlyBase) != 1 || res.OnlyBase[0] != "1/gone" {
		t.Errorf("OnlyBase = %v", res.OnlyBase)
	}
	if len(res.OnlyNew) != 1 || res.OnlyNew[0] != "1/added" {
		t.Errorf("OnlyNew = %v", res.OnlyNew)
	}
	// Throughput collapse must regress too.
	res = DiffTables(base, map[string]Table{
		"1": {Title: "t1", Rows: []Row{{Name: "tput", Measured: 500, Unit: "fr/s"}}},
	}, 10)
	if res.Regressions != 1 {
		t.Fatalf("throughput drop not flagged:\n%s", res.Format())
	}
}
