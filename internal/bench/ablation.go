package bench

import (
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/sunos"
	"synthesis/internal/synth"
)

// Ablations: each isolates one design choice DESIGN.md calls out and
// measures both sides on the same machine.

// Ablations runs the full ablation suite.
func Ablations() (Table, error) {
	t := Table{
		Title: "Ablations: Synthesis design choices isolated",
		Note:  "pairs of measurements at the SUN 3/160 point (paper column empty: these are ours)",
	}
	add := func(name string, measured float64, note string) {
		t.Rows = append(t.Rows, Row{Name: name, Measured: measured, Unit: "usec", Note: note})
	}

	// 1. Synthesized vs generic 1 KB file read on identical hardware.
	synthUS, err := measureSynth(func(b *asmkit.Builder) {
		nativeOpen(b, addrNameFile)
		mark(b)
		nativeRead(b, 0, addrBufB, 1024)
		mark(b)
		progExit(b)
	})
	if err != nil {
		return t, err
	}
	sunUS, err := sunFileRead1K()
	if err != nil {
		return t, err
	}
	add("read 1 KB: synthesized (Synthesis)", synthUS, "open-specialized routine, folded cache address")
	add("read 1 KB: generic layers (baseline)", sunUS,
		fmt.Sprintf("getf+f_ops+readi+bread+uiomove; %.1fx", sunUS/synthUS))

	// 2. Executable ready queue vs traditional swtch().
	swSynth, err := switchBetween(false)
	if err != nil {
		return t, err
	}
	swSun, err := sunSwitch()
	if err != nil {
		return t, err
	}
	add("context switch: executable ready queue", swSynth, "jmp-chained sw_out/sw_in")
	add("context switch: traditional swtch()", swSun,
		fmt.Sprintf("full save + proc-table copy + run-queue scan + eager FP; %.1fx", swSun/swSynth))

	// 3. Lazy vs eager FP context: the FP-carrying switch is what
	// every thread would pay without the line-F resynthesis.
	swFP, err := switchBetween(true)
	if err != nil {
		return t, err
	}
	add("switch without FP context (lazy default)", swSynth, "")
	add("switch with FP context (post-upgrade)", swFP,
		fmt.Sprintf("the cost non-FP threads avoid: %.1f usec", swFP-swSynth))

	// 4. Buffered vs unbuffered A/D interrupt handler.
	bufUS, unbufUS, err := adHandlers()
	if err != nil {
		return t, err
	}
	add("A/D interrupt: buffered queue (factor 8)", bufUS, "per-sample fast path")
	add("A/D interrupt: unbuffered (factor 1)", unbufUS,
		fmt.Sprintf("full queue advance every sample; %.1fx", unbufUS/bufUS))

	// 5. Collapsed vs layered cooked tty read.
	colUS, layUS, err := cookedVariants()
	if err != nil {
		return t, err
	}
	add("cooked tty read: collapsed layers", colUS, "get-character inlined (boot-time optimization)")
	add("cooked tty read: layered", layUS,
		fmt.Sprintf("jsr to the raw server per character; %.1fx", layUS/colUS))

	// 6. Fine-grain scheduling: adaptive quanta vs fixed quanta for a
	// pipe transfer competing with a compute-bound thread.
	fgOn, err := FineGrainPipe(true)
	if err != nil {
		return t, err
	}
	fgOff, err := FineGrainPipe(false)
	if err != nil {
		return t, err
	}
	add("64 KB pipe transfer, fine-grain scheduling", fgOn, "I/O threads earn larger quanta from their gauges")
	add("64 KB pipe transfer, fixed quanta", fgOff,
		fmt.Sprintf("equal 500 usec round-robin slices; %.2fx", fgOff/fgOn))

	// 7. Optimizer stage on vs off: path length of the same
	// specialized read.
	onUS, offUS, onLen, offLen, err := optimizerOnOff()
	if err != nil {
		return t, err
	}
	add("32 B element put, invariants folded + optimized", onUS, fmt.Sprintf("%d instructions", onLen))
	add("32 B element put, cell-bound + unoptimized", offUS, fmt.Sprintf("%d instructions", offLen))

	return t, nil
}

// sunFileRead1K measures the baseline's generic 1 KB read (cache
// warm).
func sunFileRead1K() (float64, error) {
	r := NewSunRig()
	b := asmkit.New()
	b.MoveL(m68k.Imm(addrNameFile), m68k.D(1))
	unixCall(b, 5)
	// Warm the buffer cache with one untimed read.
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(addrBufB), m68k.D(2))
	b.MoveL(m68k.Imm(1024), m68k.D(3))
	unixCall(b, 3)
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(0), m68k.D(2))
	unixCall(b, 19) // rewind
	mark(b)
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(addrBufB), m68k.D(2))
	b.MoveL(m68k.Imm(1024), m68k.D(3))
	unixCall(b, 3)
	mark(b)
	progExit(b)
	entry := b.Link(r.Machine())
	if err := r.Run(entry, 100_000_000); err != nil {
		return 0, err
	}
	d := r.Marks()
	if len(d) != 1 {
		return 0, errMarks(len(d), 1)
	}
	return d[0], nil
}

// sunSwitch measures the baseline's full context switch round trip.
func sunSwitch() (float64, error) {
	k := sunos.Boot(m68k.Sun3Config())
	b := asmkit.New()
	b.Kcall(sunos.SvcMark)
	b.MoveL(m68k.Imm(1), m68k.D(1))
	b.MoveL(m68k.Imm(1), m68k.D(2))
	b.Jsr(k.SwitchRoutine())
	b.Kcall(sunos.SvcMark)
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(1), m68k.D(0))
	b.Trap(0) // exit
	k.ResetMarks()
	if err := k.Run(b.Link(k.M), 50_000_000); err != nil {
		return 0, err
	}
	d := k.MarkDeltasMicros()
	if len(d) != 1 {
		return 0, errMarks(len(d), 1)
	}
	return d[0], nil
}

// adHandlers measures the buffered and unbuffered A/D handler bodies.
func adHandlers() (buffered, unbuffered float64, err error) {
	rig := NewSynthRig()
	k := rig.K
	unbuf := rig.IO.SynthUnbufferedADHandler()
	b := asmkit.New()
	fakeFrameCall(b, rig.IO.ADIntHandler(), "r1")
	fakeFrameCall(b, unbuf, "r2")
	progExit(b)
	entry := b.Link(k.M)
	if err := rig.Run(entry, 50_000_000); err != nil {
		return 0, 0, err
	}
	d := rig.Marks()
	if len(d) != 2 {
		return 0, 0, errMarks(len(d), 2)
	}
	return d[0], d[1], nil
}

// cookedVariants measures one cooked line read through the collapsed
// and the layered filter. The layered routine is installed on a
// descriptor slot that open never touches (the line discipline keeps
// no per-descriptor state).
func cookedVariants() (collapsed, layered float64, err error) {
	measure := func(useLayered bool) (float64, error) {
		rig := NewSynthRig()
		k := rig.K
		k.TTY.InputString("hello, tty\n", 0, 0)
		fd := 0
		b := asmkit.New()
		if useLayered {
			fd = 9
		} else {
			nativeOpen(b, addrNameTTY) // fd 0: collapsed cooked read
		}
		mark(b)
		nativeRead(b, fd, addrBufB, 64)
		mark(b)
		progExit(b)
		entry := b.Link(k.M)
		th := k.SpawnKernel("bench", entry)
		if useLayered {
			layeredRead := rig.IO.SynthLayeredCookedRead(th)
			k.M.Poke(th.TTE+kernel.TTEVec+uint32(m68k.VecTrapBase+kernel.TrapRead+9)*4, 4, layeredRead)
		}
		k.Start(th)
		k.ResetMarks()
		if err := k.Run(200_000_000); err != nil {
			return 0, err
		}
		d := k.MarkDeltasMicros()
		if len(d) != 1 {
			return 0, errMarks(len(d), 1)
		}
		return d[0], nil
	}
	collapsed, err = measure(false)
	if err != nil {
		return 0, 0, err
	}
	layered, err = measure(true)
	return collapsed, layered, err
}

// optimizerOnOff compares the quaject creator's factorization +
// optimization against the same template bound to run-time cells: a
// block-copy routine whose geometry (source, length in 32-byte
// groups) is either folded in as constants and optimized, or fetched
// from memory each call. This is the specialization the open path
// performs on every read routine it synthesizes.
func optimizerOnOff() (onUS, offUS float64, onLen, offLen int, err error) {
	rig := NewSynthRig()
	k := rig.K
	cells, _ := k.Heap.Alloc(16)
	k.M.Poke(cells, 4, addrBufA) // source
	k.M.Poke(cells+4, 4, 1)      // groups: one 32-byte element per call
	// The template bypasses the loop machinery entirely when the
	// group count is invariant — Factoring Invariants changes the
	// shape of the code, not just its operands.
	tmpl := func(e *synth.Emitter) {
		e.LeaHole("src", 0)
		e.Lea(m68k.Abs(addrBufB), 1)
		if e.IsConst("groups") {
			for g := uint32(0); g < e.ConstVal("groups"); g++ {
				for i := 0; i < 8; i++ {
					e.MoveL(m68k.PostInc(0), m68k.PostInc(1))
				}
			}
		} else {
			e.LoadHole("groups", m68k.D(0))
			e.SubL(m68k.Imm(1), m68k.D(0))
			e.Label("cp")
			for i := 0; i < 8; i++ {
				e.MoveL(m68k.PostInc(0), m68k.PostInc(1))
			}
			e.Dbra(0, "cp")
		}
		e.Rts()
	}
	genericEnv := synth.Env{"src": synth.CellAt(cells), "groups": synth.CellAt(cells + 4)}
	constEnv := synth.Env{"src": synth.ConstOf(addrBufA), "groups": synth.ConstOf(1)}

	k.C.DoOptimize = false
	generic := k.C.Synthesize(nil, "copy_generic", genericEnv, tmpl)
	offLen = k.C.LastStats.InstrsAfter
	k.C.DoOptimize = true
	special := k.C.Synthesize(nil, "copy_special", constEnv, tmpl)
	onLen = k.C.LastStats.InstrsAfter

	// A short routine called often is where specialization pays:
	// time 64 calls of each variant.
	b := asmkit.New()
	callLoop := func(target uint32, label string) {
		b.MoveL(m68k.Imm(63), m68k.D(7))
		b.Label(label)
		b.Jsr(target)
		b.Dbra(7, label)
	}
	mark(b)
	callLoop(special, "ls")
	mark(b)
	mark(b)
	callLoop(generic, "lg")
	mark(b)
	progExit(b)
	entry := b.Link(k.M)
	if err = rig.Run(entry, 100_000_000); err != nil {
		return
	}
	d := rig.Marks()
	if len(d) != 2 {
		err = errMarks(len(d), 2)
		return
	}
	onUS, offUS = d[0]/64, d[1]/64
	return
}

// FineGrainPipe measures a cross-thread pipe transfer competing with
// a compute-bound thread, with and without the fine-grain scheduler's
// quantum adaptation (Section 4.4): when the policy sees the I/O rate
// it grows the pipe threads' quanta, so the transfer loses less time
// to the compute thread's round-robin slices.
func FineGrainPipe(adaptive bool) (float64, error) {
	rig := NewSynthRig()
	k := rig.K
	io := rig.IO

	// A deep pipe keeps both stream threads runnable most of the
	// time, so CPU time is genuinely contended with the compute
	// thread and the quantum assignment is what decides the transfer
	// time.
	const total = 64 * 1024
	const chunk = 1024
	p := io.NewPipe(16 * 1024)

	writer := k.C.Synthesize(nil, "writer", nil, func(e *synth.Emitter) {
		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.Imm(total/chunk), m68k.D(5))
		e.Label("loop")
		e.MoveL(m68k.Imm(addrBufA), m68k.D(1))
		e.MoveL(m68k.Imm(chunk), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		e.SubL(m68k.Imm(1), m68k.D(5))
		e.Bne("loop")
		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Trap(kernel.TrapSys)
	})
	reader := k.C.Synthesize(nil, "reader", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(total), m68k.D(5))
		e.Label("loop")
		e.MoveL(m68k.Imm(addrBufB), m68k.D(1))
		e.MoveL(m68k.Imm(chunk), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.SubL(m68k.D(0), m68k.D(5))
		e.Bne("loop")
		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Trap(kernel.TrapSys)
	})
	compute := k.C.Synthesize(nil, "compute", nil, func(e *synth.Emitter) {
		e.Label("loop")
		e.AddL(m68k.Imm(1), m68k.D(3))
		e.Bra("loop")
	})

	tw := k.SpawnKernel("writer", writer)
	tr := k.SpawnKernel("reader", reader)
	k.SpawnKernel("compute", compute)
	if io.OpenPipeEnd(tw, p, true) != 0 {
		return 0, fmt.Errorf("finegrain: writer fd")
	}
	if io.OpenPipeEnd(tr, p, false) != 0 {
		return 0, fmt.Errorf("finegrain: reader fd")
	}
	if adaptive {
		s := kernel.NewScheduler(k)
		s.InstallAlarmDriver(2000)
	}
	k.Start(tw)
	k.ResetMarks()
	for len(k.Marks) < 2 {
		err := k.Run(5_000_000)
		if err == nil {
			break // halted: both exited
		}
		if err != m68k.ErrCycleLimit {
			return 0, err
		}
		if k.M.Cycles > 5_000_000_000 {
			return 0, fmt.Errorf("finegrain: transfer never completed")
		}
	}
	d := k.MarkDeltasMicros()
	if len(d) < 1 {
		return 0, errMarks(len(d), 1)
	}
	return d[0], nil
}

func init() { Register("ablations", fixed(Ablations)) }
