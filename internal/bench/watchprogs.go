package bench

import (
	"fmt"
	"sort"

	"synthesis/internal/asmkit"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/unixemu"
)

// Named workloads for `quamon -watch -program <name>`: the Table 1
// programs under short command-line names, plus "procread", the
// observability demo that makes the kernel read its own metrics. The
// monitor runs whichever program is named under its sampling windows,
// so any benchmark becomes a live metrics source.

// watchProgs maps -program names to builders. Finite programs exit
// and end the watch early; "traffic" (the default) and "procread"
// run until the windows are exhausted.
func watchProgs(iters int32) map[string]func(*asmkit.Builder) {
	return map[string]func(*asmkit.Builder){
		"compute":   func(b *asmkit.Builder) { BuildCompute(b, 2000) },
		"pipe-1b":   func(b *asmkit.Builder) { BuildPipeRW(b, iters, 1) },
		"pipe-1k":   func(b *asmkit.Builder) { BuildPipeRW(b, iters, 1024) },
		"pipe-4k":   func(b *asmkit.Builder) { BuildPipeRW(b, iters, 4096) },
		"file-rw":   func(b *asmkit.Builder) { BuildFileRW(b, iters) },
		"open-null": func(b *asmkit.Builder) { BuildOpenClose(b, iters, addrNameNull) },
		"open-tty":  func(b *asmkit.Builder) { BuildOpenClose(b, iters, addrNameTTY) },
		"procread":  BuildProcReadLoop,
	}
}

// WatchProgramNames lists the names BuildWatchProgram accepts, sorted
// for usage messages.
func WatchProgramNames() []string {
	m := watchProgs(1)
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BuildWatchProgram resolves a -program name to its builder. The
// iteration count applies to the finite Table 1 programs.
func BuildWatchProgram(name string, iters int32) (func(*asmkit.Builder), bool) {
	if iters <= 0 {
		iters = 200
	}
	f, ok := watchProgs(iters)[name]
	return f, ok
}

// BuildProcReadLoop emits the observability workload: forever open
// /proc/metrics, read the snapshot to EOF in 256-byte chunks, and
// close. Every round cuts a fresh snapshot and resynthesizes the read
// routine, so a monitor watching the registry sees the kernel
// watching itself (synth.kio.proc.read.calls counts the reads the
// guest performs to learn the value of synth.kio.proc.read.calls).
func BuildProcReadLoop(b *asmkit.Builder) {
	b.Label("again")
	b.MoveL(m68k.Imm(addrNameProc), m68k.D(1))
	unixCall(b, unixemu.SysOpen)
	b.MoveL(m68k.D(0), m68k.D(6))
	b.Label("rd")
	procRead(b, 6)
	b.TstL(m68k.D(0))
	b.Bne("rd")
	b.MoveL(m68k.D(6), m68k.D(1))
	unixCall(b, unixemu.SysClose)
	b.Bra("again")
}

// PrepareWatchKernel readies a booted kernel for the named watch
// workloads (and for assembled -program files using the same
// conventions): it pokes the shared name strings — including
// /proc/metrics at 0xA030 — fills the scratch buffer at 0xB000, and
// creates the 1 KB benchmark file.
func PrepareWatchKernel(k *kernel.Kernel) error {
	if k.FS.Lookup(benchFileName) == nil {
		if _, err := k.FS.CreateSized(benchFileName, make([]byte, 1024), 8192); err != nil {
			return fmt.Errorf("bench: create %s: %w", benchFileName, err)
		}
	}
	prepareNames(k.M)
	return nil
}
