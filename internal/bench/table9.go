package bench

import (
	"fmt"
	"time"

	"synthesis/internal/cluster"
	"synthesis/internal/fault"
	"synthesis/internal/net"
)

// Table 9: the fleet fault plane. Not a paper table — the paper's
// quarter of a million interrupts per second assumed a healthy wire —
// but the robustness counterpart of Table 8: the same synthesized
// per-socket paths under symmetric frame loss (0/5/15%), a scripted
// host<->vm partition with a measured heal, and churn composed with
// loss. Throughput and RTT quantiles come from the load generator's
// wall-clock histograms; recovery latency is measured per severed
// connection from the heal instant to its first completed round trip
// (cluster.loadgen.recovery_ms), backoff waits and all.
//
// Wall-clock rates are nondeterministic by design: generated via RunN
// for a median and gated warn-only (the -warn-tables flag in the
// Makefile gate), like Table 8.
//
// Invoked as `synbench -table 9` (alias) or `-table recovery`
// (canonical); the artifact is BENCH_recovery.json either way.

func init() {
	Register("recovery", table9)
	RegisterAlias("9", "recovery")
}

const (
	t9VMs      = 2
	t9Conns    = 64
	t9Severed  = t9Conns / t9VMs // conns behind the host|vm1 cut
	t9Hold     = 250 * time.Millisecond
	t9Timeout  = 25 * time.Millisecond
	t9Backoff  = 200 * time.Millisecond
	t9Resends  = 30 // generous: a loss point must never abandon a conn
)

func table9(cfg RunConfig) (Table, error) {
	// Iters is the per-point measurement window in wall milliseconds.
	window := time.Duration(cfg.Iters) * time.Millisecond
	if cfg.Iters <= 0 {
		window = 200 * time.Millisecond
	}
	if window < 40*time.Millisecond {
		window = 40 * time.Millisecond
	}

	t := Table{
		Title: "Table 9. Fleet fault plane: loss sweep, partition/heal recovery, churn under loss",
		Note: fmt.Sprintf("%d vm x %d conns; symmetric link loss via the fabric fault plane; %v wall window per point; "+
			"recovery is per-severed-connection heal-to-first-reply; warn-only in CI (wall-clock)", t9VMs, t9Conns, window),
	}

	// Loss sweep: 0/5/15% symmetric loss on every host<->vm link.
	for _, loss := range []float64{0, 0.05, 0.15} {
		rows, err := t9LossPoint(fmt.Sprintf("loss %g%%", loss*100), loss, 0, window)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, rows...)
	}

	// Churn composed with loss: sockets close and reopen mid-stream
	// while the wire is lossy — resynthesis drops and wire drops share
	// one resend path.
	rows, err := t9LossPoint("loss 5% churn", 0.05, 64, window)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, rows...)

	// Partition/heal: cut vm1 off the host mid-traffic, hold, heal,
	// and measure every severed connection's recovery latency.
	rows, err = t9Recovery()
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows, rows...)
	return t, nil
}

// t9Cluster boots the table's fixed fleet shape under a fault spec.
func t9Cluster(spec string, churn int) (*cluster.Cluster, error) {
	plan, err := fault.ParseFleet(spec)
	if err != nil {
		return nil, err
	}
	if activeFleet != nil {
		// A -faults spec composes: its per-VM Base rides under the
		// table's own link schedule.
		plan.Base = fault.Merge(activeFleet.Base, plan.Base)
	}
	c := cluster.New(cluster.Config{
		VMs:          t9VMs,
		SocketsPerVM: 8,
		Conns:        t9Conns,
		PayloadBytes: 64,
		ChurnEvery:   churn,
		Seed:         1,
		Timeout:      t9Timeout,
		MaxBackoff:   t9Backoff,
		MaxResends:   t9Resends,
		Faults:       plan,
	})
	c.Start()
	// Warm up until every logical connection has completed a round
	// trip; under 15% loss that rides a few resend timeouts. Bounded so
	// a wedged fleet fails instead of hanging.
	deadline := time.Now().Add(15 * time.Second)
	for c.ActiveConns() < t9Conns && time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			c.Stop()
			return nil, err
		}
		time.Sleep(time.Millisecond)
	}
	if c.ActiveConns() < t9Conns {
		c.Stop()
		return nil, fmt.Errorf("bench: table 9 %q: only %d/%d connections came live",
			spec, c.ActiveConns(), t9Conns)
	}
	return c, nil
}

// t9LossPoint measures one steady-state point of the sweep.
func t9LossPoint(label string, loss float64, churn int, window time.Duration) ([]Row, error) {
	spec := ""
	if loss > 0 {
		spec = fmt.Sprintf("link=0>*:drop=%g;link=*>0:drop=%g", loss, loss)
	}
	c, err := t9Cluster(spec, churn)
	if err != nil {
		return nil, err
	}
	s0 := c.Snapshot()
	time.Sleep(window)
	s1 := c.Snapshot()
	c.Stop()
	if err := c.Err(); err != nil {
		return nil, err
	}
	d := s1.Delta(s0)
	rtt := d.Hists["cluster.loadgen.rtt_us"]
	rows := []Row{
		{Name: label + " aggregate", Measured: d.Rate("cluster.fabric.routed"),
			Unit: "fr/s", Note: fmt.Sprintf("%d round trips in window", rtt.Count)},
		{Name: label + " rtt p50", Measured: rtt.Quantile(0.50), Unit: "us"},
		{Name: label + " rtt p99", Measured: rtt.Quantile(0.99), Unit: "us"},
	}
	if loss > 0 {
		rows = append(rows, Row{Name: label + " resends", Measured: d.Rate("cluster.loadgen.resends"),
			Unit: "1/s", Note: "timeout-driven resend rate holding goodput"})
	}
	return rows, nil
}

// t9Recovery runs one partition/heal cycle and reports the measured
// recovery-latency distribution across the severed connections.
func t9Recovery() ([]Row, error) {
	c, err := t9Cluster("", 0)
	if err != nil {
		return nil, err
	}
	c.Cut([]int{net.HostNode}, []int{1})
	time.Sleep(t9Hold)
	c.Heal()

	// Every severed connection must land one recovery observation.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			c.Stop()
			return nil, err
		}
		n := c.Snapshot().Hists["cluster.loadgen.recovery_ms"].Count
		if n >= t9Severed && c.AwaitingRecovery() == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	c.Stop()
	if err := c.Err(); err != nil {
		return nil, err
	}
	s := c.Snapshot()
	h := s.Hists["cluster.loadgen.recovery_ms"]
	if h.Count < t9Severed {
		return nil, fmt.Errorf("bench: table 9 recovery: %d/%d severed connections recovered",
			h.Count, t9Severed)
	}
	// Liveness invariant: a healed fleet abandons nothing.
	if gaveUp := s.Counters["cluster.loadgen.gave_up"]; gaveUp != 0 {
		return nil, fmt.Errorf("bench: table 9 recovery: %d connections gave up across the heal", gaveUp)
	}
	note := fmt.Sprintf("%v partition of vm1, %d severed conns, resend cap %d", t9Hold, t9Severed, t9Resends)
	return []Row{
		{Name: "recovery p50", Measured: h.Quantile(0.50), Unit: "ms", Note: note},
		{Name: "recovery p99", Measured: h.Quantile(0.99), Unit: "ms"},
		{Name: "recovery max", Measured: float64(h.Max), Unit: "ms",
			Note: "slowest connection's heal-to-first-reply"},
	}, nil
}
