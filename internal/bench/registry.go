package bench

import (
	"fmt"
	"sort"
	"strconv"

	"synthesis/internal/fault"
)

// Table registry: every table file registers its generator in an
// init(), and synbench, quamon and the root benchmark suite all
// dispatch through Names/Run. Adding a table means adding one file
// with one Register call — no command edits.

// RunConfig carries the knobs a caller can set uniformly across
// tables. Tables without an iteration knob ignore Iters; tables
// without profiling support ignore Profile. A non-empty FaultSpec
// (see fault.SpecHelp for the grammar) attaches a seeded fault
// injector to every rig the table boots, so any table can be rerun
// under a fault schedule.
type RunConfig struct {
	Iters     int32
	Profile   bool
	FaultSpec string
	FaultSeed int64
}

// TableFunc generates one table.
type TableFunc func(RunConfig) (Table, error)

var registry = map[string]TableFunc{}

// Register adds a table generator under a name ("1".."6", "pathlen",
// ...). Duplicate names are a programming error.
func Register(name string, fn TableFunc) {
	if _, dup := registry[name]; dup {
		panic("bench: duplicate table registration: " + name)
	}
	registry[name] = fn
}

// fixed adapts a parameterless generator to the registry signature.
func fixed(fn func() (Table, error)) TableFunc {
	return func(RunConfig) (Table, error) { return fn() }
}

// Names returns the registered table names, numbered tables first in
// numeric order, then the rest alphabetically.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		vi, errI := strconv.Atoi(names[i])
		vj, errJ := strconv.Atoi(names[j])
		switch {
		case errI == nil && errJ == nil:
			return vi < vj
		case errI == nil:
			return true
		case errJ == nil:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}

// Run generates the named table. When cfg.FaultSpec is set, the
// parsed plan is staged so that every rig booted while the table
// generates attaches a seeded injector (see attachFaults in rig.go).
func Run(name string, cfg RunConfig) (Table, error) {
	fn, ok := registry[name]
	if !ok {
		return Table{}, fmt.Errorf("bench: unknown table %q (have %v)", name, Names())
	}
	if cfg.FaultSpec != "" {
		plan, err := fault.Parse(cfg.FaultSpec)
		if err != nil {
			return Table{}, err
		}
		activeFaults = &plan
		activeFaultSeed = cfg.FaultSeed
		defer func() { activeFaults = nil }()
	}
	return fn(cfg)
}

// Staged fault schedule for the current Run call; rigs consult it at
// boot. Bench runs are single-goroutine, so a package cell suffices.
var (
	activeFaults    *fault.Plan
	activeFaultSeed int64
)
