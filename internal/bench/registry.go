package bench

import (
	"fmt"
	"sort"
	"strconv"

	"synthesis/internal/fault"
)

// Table registry: every table file registers its generator in an
// init(), and synbench, quamon and the root benchmark suite all
// dispatch through Names/Run. Adding a table means adding one file
// with one Register call — no command edits.

// RunConfig carries the knobs a caller can set uniformly across
// tables. Tables without an iteration knob ignore Iters; tables
// without profiling support ignore Profile. A non-empty FaultSpec
// (see fault.SpecHelp for the grammar) attaches a seeded fault
// injector to every rig the table boots, so any table can be rerun
// under a fault schedule.
type RunConfig struct {
	Iters     int32
	Profile   bool
	FaultSpec string
	FaultSeed int64
}

// TableFunc generates one table.
type TableFunc func(RunConfig) (Table, error)

var registry = map[string]TableFunc{}

// aliases maps alternate invocation names onto canonical registry
// names ("8" -> "cluster"), so a table can live in the numbered
// sequence without its artifact taking a numbered filename.
var aliases = map[string]string{}

// Register adds a table generator under a name ("1".."6", "pathlen",
// ...). Duplicate names are a programming error.
func Register(name string, fn TableFunc) {
	if _, dup := registry[name]; dup {
		panic("bench: duplicate table registration: " + name)
	}
	registry[name] = fn
}

// RegisterAlias makes alias resolve to an already-registered
// canonical name. The alias is accepted by Run/RunN but does not
// appear in Names() and never names an artifact.
func RegisterAlias(alias, canonical string) {
	if _, dup := registry[alias]; dup {
		panic("bench: alias collides with a registered table: " + alias)
	}
	if _, dup := aliases[alias]; dup {
		panic("bench: duplicate alias registration: " + alias)
	}
	aliases[alias] = canonical
}

// Resolve maps an alias to its canonical registry name; unknown and
// canonical names pass through unchanged. Callers that write
// artifacts resolve first, so `-table 8` still lands in
// BENCH_cluster.json.
func Resolve(name string) string {
	if c, ok := aliases[name]; ok {
		return c
	}
	return name
}

// fixed adapts a parameterless generator to the registry signature.
func fixed(fn func() (Table, error)) TableFunc {
	return func(RunConfig) (Table, error) { return fn() }
}

// Names returns the registered table names, numbered tables first in
// numeric order, then the rest alphabetically.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		vi, errI := strconv.Atoi(names[i])
		vj, errJ := strconv.Atoi(names[j])
		switch {
		case errI == nil && errJ == nil:
			return vi < vj
		case errI == nil:
			return true
		case errJ == nil:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}

// Run generates the named table. When cfg.FaultSpec is set, the spec
// is parsed with the fleet grammar (a superset of the single-machine
// one): the Base plan is staged for every rig booted while the table
// generates (see attachFaults in rig.go), and the full fleet plan is
// staged for the cluster tables, which apply it to the fabric. Fleet
// clauses (link=/part=/vmfault=) only make sense against a fabric, so
// they are rejected for single-machine tables.
func Run(name string, cfg RunConfig) (Table, error) {
	canonical := Resolve(name)
	fn, ok := registry[canonical]
	if !ok {
		return Table{}, fmt.Errorf("bench: unknown table %q (have %v)", name, Names())
	}
	if cfg.FaultSpec != "" {
		plan, err := fault.ParseFleet(cfg.FaultSpec)
		if err != nil {
			return Table{}, err
		}
		if plan.FleetOnly() && canonical != "cluster" && canonical != "recovery" {
			return Table{}, fmt.Errorf("bench: table %q is single-machine; link=/part=/vmfault= clauses need -table cluster or recovery", name)
		}
		activeFaults = &plan.Base
		activeFleet = &plan
		activeFaultSeed = cfg.FaultSeed
		defer func() { activeFaults, activeFleet = nil, nil }()
	}
	return fn(cfg)
}

// Staged fault schedule for the current Run call; rigs consult
// activeFaults at boot, the cluster tables consult activeFleet. Bench
// runs are single-goroutine, so package cells suffice.
var (
	activeFaults    *fault.Plan
	activeFleet     *fault.FleetPlan
	activeFaultSeed int64
)

// RunN generates the named table runs times and aggregates per row:
// Measured becomes the per-row median, Min/Max the observed spread.
// Row identity is positional — a registered table is shape-stable for
// a fixed config, so row i means the same experiment in every run.
// With runs <= 1 this is exactly Run. This is how nondeterministic
// (wall-clock) tables get a gateable central value: cmd/benchdiff
// compares medians, and the spread rides along in the artifact.
func RunN(name string, cfg RunConfig, runs int) (Table, error) {
	if runs <= 1 {
		return Run(name, cfg)
	}
	base, err := Run(name, cfg)
	if err != nil {
		return Table{}, err
	}
	samples := make([][]float64, len(base.Rows))
	for i, r := range base.Rows {
		samples[i] = append(samples[i], r.Measured)
	}
	for n := 1; n < runs; n++ {
		t, err := Run(name, cfg)
		if err != nil {
			return Table{}, err
		}
		if len(t.Rows) != len(base.Rows) {
			return Table{}, fmt.Errorf("bench: table %q changed shape across runs (%d vs %d rows)",
				name, len(t.Rows), len(base.Rows))
		}
		for i, r := range t.Rows {
			samples[i] = append(samples[i], r.Measured)
		}
	}
	for i := range base.Rows {
		s := samples[i]
		sort.Float64s(s)
		base.Rows[i].Min = s[0]
		base.Rows[i].Max = s[len(s)-1]
		if n := len(s); n%2 == 1 {
			base.Rows[i].Measured = s[n/2]
		} else {
			base.Rows[i].Measured = (s[n/2-1] + s[n/2]) / 2
		}
	}
	return base, nil
}
