package bench

import (
	"fmt"

	"synthesis/internal/prof"
)

// Profiled single-program runs: the entry point behind `synbench
// -profile-run` and `make profile`. One Table 1 program runs on a
// profiled Synthesis rig and the attached profiler comes back for
// reporting and trace export.

// Table1ProgramNames lists the programs RunProfiled accepts.
func Table1ProgramNames() []string {
	progs := table1Programs(1)
	names := make([]string, len(progs))
	for i, p := range progs {
		names[i] = p.name
	}
	return names
}

// RunProfiled runs one Table 1 program on a profiled Synthesis rig
// and returns the profiler holding the attribution.
func RunProfiled(name string, iters int32) (*prof.Profiler, error) {
	if iters <= 0 {
		iters = 200
	}
	for _, p := range table1Programs(iters) {
		if p.name != name {
			continue
		}
		r := NewProfiledSynthRig()
		if _, err := runMarked(r, p.budget, p.build); err != nil {
			return r.K.Prof, err
		}
		return r.K.Prof, nil
	}
	return nil, fmt.Errorf("bench: unknown program %q (have %v)", name, Table1ProgramNames())
}
