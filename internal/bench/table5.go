package bench

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// Table 5: interrupt handling, alarms, and procedure chaining. The
// interrupt handlers are timed by entering them through a hand-built
// exception frame (the handler's RTE resumes the measuring program),
// which covers the handler body; the dispatch envelope is part of the
// frame-build/RTE round trip.

// fakeFrameCall emits: mark; push resume PC and SR; jmp handler; the
// handler RTEs back to the resume label; mark.
func fakeFrameCall(b *asmkit.Builder, handler uint32, resume string) {
	mark(b)
	b.MoveLabelL(resume, m68k.PreDec(7))
	b.MoveFromSR(m68k.PreDec(7))
	b.Jmp(handler)
	b.Label(resume)
	mark(b)
}

// Table5 regenerates the interrupt-handling measurements.
func Table5() (Table, error) {
	t := Table{
		Title: "Table 5: Interrupt Handling (microseconds)",
		Note:  "synthesized handler bodies entered through a hand-built frame",
	}
	rig := NewSynthRig()
	k := rig.K

	// A no-op alarm procedure.
	alarmProc := k.C.Synthesize(nil, "alarmproc", nil, func(e *synth.Emitter) {
		e.Rts()
	})
	// A chained procedure that bounces straight back.
	chained := k.C.Synthesize(nil, "chained", nil, func(e *synth.Emitter) {
		e.JmpVia(m68k.Abs(kernel.GChainPC))
	})
	// Custom trap handlers that chain it, marked inside.
	chainTrap := k.C.Synthesize(nil, "chain_trap", nil, func(e *synth.Emitter) {
		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.Imm(int32(chained)), m68k.D(1))
		e.Jsr(k.ChainRoutine())
		e.Kcall(kernel.SvcMark)
		e.Rte()
	})
	chainTrapCAS := k.C.Synthesize(nil, "chain_trap_cas", nil, func(e *synth.Emitter) {
		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.Imm(int32(chained)), m68k.D(1))
		e.Jsr(k.ChainCASRoutine())
		e.Kcall(kernel.SvcMark)
		e.Rte()
	})

	// A waiter thread blocked on a cell, for the chained-unblock
	// measurement.
	cellAddr, _ := k.Heap.Alloc(8)
	waiterProg := k.C.Synthesize(nil, "waiter", nil, func(e *synth.Emitter) {
		e.Lea(m68k.Abs(cellAddr), 0)
		e.Jsr(k.BlockOnRoutine())
		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Trap(kernel.TrapSys)
	})

	// One pending tty character so the handler takes its normal path.
	k.TTY.InputNow('x')

	b := asmkit.New()
	// Give the waiter a chance to block first.
	b.MoveL(m68k.Imm(kernel.SysYield), m68k.D(0))
	b.Trap(kernel.TrapSys)
	// 1: tty interrupt handler body.
	fakeFrameCall(b, rig.IO.TTYIntHandler(), "r1")
	// 2: A/D interrupt handler body.
	fakeFrameCall(b, rig.IO.ADIntHandler(), "r2")
	// 3: set alarm (native call).
	mark(b)
	b.MoveL(m68k.Imm(kernel.SysSetAlarm), m68k.D(0))
	b.MoveL(m68k.Imm(100000), m68k.D(1))
	b.MoveL(m68k.Imm(int32(alarmProc)), m68k.D(2))
	b.Trap(kernel.TrapSys)
	mark(b)
	// 4: alarm interrupt handler body.
	b.MoveL(m68k.Imm(int32(alarmProc)), m68k.Abs(kernel.GAlarmProc))
	fakeFrameCall(b, k.AlarmRoutine(), "r3")
	// 5/6: procedure chaining (the marks are inside the handlers).
	b.Trap(5)
	b.Trap(6)
	// 7: chained unblock of the waiter (signal a thread).
	b.Lea(m68k.Abs(cellAddr), 0)
	mark(b)
	b.Jsr(k.WakeCellRoutine())
	mark(b)
	progExit(b)
	entry := b.Link(k.M)

	k.SpawnKernel("waiter", waiterProg)
	th := k.SpawnKernel("bench5", entry)
	// Install the chain trap handlers in the measuring thread.
	k.M.Poke(th.TTE+kernel.TTEVec+uint32(m68k.VecTrapBase+5)*4, 4, chainTrap)
	k.M.Poke(th.TTE+kernel.TTEVec+uint32(m68k.VecTrapBase+6)*4, 4, chainTrapCAS)
	k.Start(th)
	k.ResetMarks()
	if err := k.Run(500_000_000); err != nil {
		return t, err
	}
	d := k.MarkDeltasMicros()
	if len(d) != 7 {
		return t, errMarks(len(d), 7)
	}
	rows := []struct {
		name  string
		paper float64
		idx   int
		note  string
	}{
		{"service raw TTY interrupt", 16, 0, "dedicated-queue insert + echo + chained wake"},
		{"service raw A/D interrupt", 3, 1, "buffered-queue fast path (1-in-8 advances the queue)"},
		{"set alarm", 9, 2, ""},
		{"alarm interrupt", 7, 3, "dispatch through the alarm procedure cell"},
		{"chain to a procedure", 4, 4, "return-address swap on the frame"},
		{"chain to a procedure (CAS)", 7, 5, "optimistic variant; paper's 7 usec is with one retry"},
		{"chain (signal) a thread", 9, 6, "wake-cell insert of a blocked thread"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, Row{Name: r.name, Paper: r.paper, Measured: d[r.idx], Unit: "usec", Note: r.note})
	}
	return t, nil
}

func init() { Register("5", fixed(Table5)) }
