package bench

import (
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/fault"
	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/prof"
	"synthesis/internal/sunos"
	"synthesis/internal/unixemu"
)

// Fixed data addresses shared by both rigs so the benchmark binaries
// are identical.
const (
	addrNameNull = 0xA000
	addrNameTTY  = 0xA010
	addrNameFile = 0xA020
	addrNameProc = 0xA030
	addrBufA     = 0xB000 // 8 KB scratch
	addrBufB     = 0xD000
	addrQArray   = 0x20000 // chaos sequence array
)

const benchFileName = "/bench/data"

// Rig abstracts the two kernels under test.
type Rig interface {
	// Machine returns the rig's Quamachine.
	Machine() *m68k.Machine
	// Run executes a program built with Build until exit.
	Run(entry uint32, budget uint64) error
	// Marks returns the microsecond intervals between mark pairs.
	Marks() []float64
	// Name identifies the rig in reports.
	Name() string
}

// attachFaults wires the staged fault schedule (from RunConfig's
// FaultSpec) into a freshly booted rig machine. No-op when the
// current Run has no schedule.
func attachFaults(m *m68k.Machine) {
	if activeFaults != nil {
		fault.New(*activeFaults, activeFaultSeed).Attach(m)
	}
}

// prepare pokes the shared name strings and file contents.
func prepareNames(m *m68k.Machine) {
	poke := func(addr uint32, s string) {
		for i := 0; i < len(s); i++ {
			m.Poke(addr+uint32(i), 1, uint32(s[i]))
		}
		m.Poke(addr+uint32(len(s)), 1, 0)
	}
	poke(addrNameNull, "/dev/null")
	poke(addrNameTTY, "/dev/tty")
	poke(addrNameFile, benchFileName)
	poke(addrNameProc, kio.ProcMetricsPath)
	for i := uint32(0); i < 8192; i += 4 {
		m.Poke(addrBufA+i, 4, 0x55aa1234+i)
	}
}

// ---------------------------------------------------------------------

// SynthRig runs programs on the Synthesis kernel through the UNIX
// emulator (the Table 1 configuration).
type SynthRig struct {
	K  *kernel.Kernel
	IO *kio.IO
}

// NewSynthRig boots Synthesis at the SUN 3/160 point with synthesis
// time charged.
func NewSynthRig() *SynthRig { return newSynthRig(false) }

// NewProfiledSynthRig is NewSynthRig with the measurement plane
// attached from boot, so every synthesized routine is attributable.
func NewProfiledSynthRig() *SynthRig { return newSynthRig(true) }

func newSynthRig(profile bool) *SynthRig {
	cfg := m68k.Sun3Config()
	cfg.TraceDepth = 128
	k := kernel.Boot(kernel.Config{
		Machine:         cfg,
		ChargeSynthesis: true,
		Profile:         profile,
	})
	io := kio.Install(k)
	unixemu.Install(k)
	if _, err := k.FS.CreateSized(benchFileName, make([]byte, 1024), 8192); err != nil {
		panic(err)
	}
	prepareNames(k.M)
	attachFaults(k.M)
	return &SynthRig{K: k, IO: io}
}

// Machine implements Rig.
func (r *SynthRig) Machine() *m68k.Machine { return r.K.M }

// Name implements Rig.
func (r *SynthRig) Name() string { return "synthesis" }

// Run implements Rig: the program becomes a kernel thread.
func (r *SynthRig) Run(entry uint32, budget uint64) error {
	r.K.ResetMarks()
	t := r.K.SpawnKernel("bench", entry)
	r.K.Start(t)
	return r.K.Run(budget)
}

// Marks implements Rig.
func (r *SynthRig) Marks() []float64 { return r.K.MarkDeltasMicros() }

// ---------------------------------------------------------------------

// SunRig runs the same programs on the traditional baseline.
type SunRig struct {
	K *sunos.Kernel
}

// NewSunRig boots the baseline at the SUN 3/160 point.
func NewSunRig() *SunRig {
	k := sunos.Boot(m68k.Sun3Config())
	k.CreateFile(benchFileName, make([]byte, 1024), 8192)
	prepareNames(k.M)
	attachFaults(k.M)
	return &SunRig{K: k}
}

// Machine implements Rig.
func (r *SunRig) Machine() *m68k.Machine { return r.K.M }

// Name implements Rig.
func (r *SunRig) Name() string { return "sunos-baseline" }

// Run implements Rig.
func (r *SunRig) Run(entry uint32, budget uint64) error {
	r.K.ResetMarks()
	return r.K.Run(entry, budget)
}

// Marks implements Rig.
func (r *SunRig) Marks() []float64 { return r.K.MarkDeltasMicros() }

// ---------------------------------------------------------------------

// runMarked builds the program on the rig's machine, runs it, and
// returns the single marked interval.
func runMarked(r Rig, budget uint64, build func(b *asmkit.Builder)) (float64, error) {
	b := asmkit.New()
	build(b)
	entry := b.Link(r.Machine())
	if p := prof.Of(r.Machine()); p != nil {
		// The benchmark binary is raw asmkit, not quaject code, so it
		// registers itself: its loop cycles must not read as kernel
		// time.
		p.RegisterRegion("bench.program", entry, b.Len())
	}
	if err := r.Run(entry, budget); err != nil {
		return 0, fmt.Errorf("%s: %w", r.Name(), err)
	}
	marks := r.Marks()
	if len(marks) != 1 {
		return 0, fmt.Errorf("%s: expected one marked interval, got %d", r.Name(), len(marks))
	}
	return marks[0], nil
}
