package bench

import (
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/prof"
)

// Table 1: the seven UNIX programs on SUNOS (traditional baseline)
// versus the Synthesis kernel under UNIX emulation, identical
// binaries, identical emulated hardware. The paper reports elapsed
// seconds for an (unpublished) iteration count; the reproducible
// quantity is the per-iteration cost and above all the RATIO —
// "several times to several dozen times speedup". We report both
// kernels' per-iteration microseconds and the speedup next to the
// paper's.
//
// Iteration counts are scaled down (the interpreted Quamachine is a
// few hundred times slower than silicon); per-iteration cost is flat
// in the loop count, which the harness asserts in its tests.

// Table1Config controls the loop counts (reduced under -short) and
// whether the Synthesis-side runs carry the measurement plane.
type Table1Config struct {
	Iters int32
	// Profile attaches the profiler to every Synthesis rig and
	// appends an attribution-coverage row (the acceptance bar is that
	// at least 95% of all cycles land in named regions).
	Profile bool
}

func init() {
	Register("1", func(cfg RunConfig) (Table, error) {
		return Table1(Table1Config{Iters: cfg.Iters, Profile: cfg.Profile})
	})
}

// paperRatios are SUN time / Synthesis time from Table 1 (total
// column): compute 20/21.1, pipes 10/0.18, 15/0.96, 38/8.5, file
// 21/2.4, open null 17/0.7, open tty 43/1.4.
var paperRatios = map[string]float64{
	"compute":         20.0 / 21.1,
	"pipe r/w 1 B":    10.0 / 0.18,
	"pipe r/w 1 KB":   15.0 / 0.96,
	"pipe r/w 4 KB":   38.0 / 8.5,
	"file r/w 1 KB":   21.0 / 2.4,
	"open-close null": 17.0 / 0.7,
	"open-close tty":  43.0 / 1.4,
}

// runOnBoth runs a program builder on fresh instances of both rigs
// and returns per-iteration microseconds. With profile set, the
// Synthesis rig carries the profiler, which is returned for coverage
// accounting (nil otherwise: the baseline rig runs raw code with no
// regions to attribute to).
func runOnBoth(build func(*asmkit.Builder), iters int32, budget uint64, profile bool) (synthUS, sunUS float64, p *prof.Profiler, err error) {
	rig := NewSynthRig()
	if profile {
		rig = NewProfiledSynthRig()
	}
	s, errS := runMarked(rig, budget, build)
	if errS != nil {
		return 0, 0, nil, errS
	}
	u, errU := runMarked(NewSunRig(), budget, build)
	if errU != nil {
		return 0, 0, nil, errU
	}
	return s / float64(iters), u / float64(iters), rig.K.Prof, nil
}

// t1prog is one Table 1 benchmark program.
type t1prog struct {
	name   string
	iters  int32
	budget uint64
	build  func(*asmkit.Builder)
}

// table1Programs returns the seven Table 1 programs; the profiling
// entry points (RunProfiled) share this list with Table1 itself.
func table1Programs(iters int32) []t1prog {
	return []t1prog{
		{"compute", 2000, 3_000_000_000, func(b *asmkit.Builder) { BuildCompute(b, 2000) }},
		{"pipe r/w 1 B", iters, 3_000_000_000, func(b *asmkit.Builder) { BuildPipeRW(b, iters, 1) }},
		{"pipe r/w 1 KB", iters, 6_000_000_000, func(b *asmkit.Builder) { BuildPipeRW(b, iters, 1024) }},
		{"pipe r/w 4 KB", iters, 20_000_000_000, func(b *asmkit.Builder) { BuildPipeRW(b, iters, 4096) }},
		{"file r/w 1 KB", iters, 8_000_000_000, func(b *asmkit.Builder) { BuildFileRW(b, iters) }},
		{"open-close null", iters, 4_000_000_000, func(b *asmkit.Builder) { BuildOpenClose(b, iters, addrNameNull) }},
		{"open-close tty", iters, 4_000_000_000, func(b *asmkit.Builder) { BuildOpenClose(b, iters, addrNameTTY) }},
	}
}

// Table1 regenerates the measured-UNIX-system-calls comparison.
func Table1(cfg Table1Config) (Table, error) {
	iters := cfg.Iters
	if iters <= 0 {
		iters = 200
	}
	t := Table{
		Title: "Table 1: Measured UNIX system calls, SUNOS baseline vs Synthesis emulator",
		Note: "per-iteration microseconds at the SUN 3/160 point; 'paper' column is the\n" +
			"paper's speedup ratio (SUN seconds / Synthesis seconds), ours alongside",
	}

	var sumAttr, sumWindow uint64
	for _, p := range table1Programs(iters) {
		synthUS, sunUS, pp, err := runOnBoth(p.build, p.iters, p.budget, cfg.Profile)
		if err != nil {
			return t, fmt.Errorf("%s: %w", p.name, err)
		}
		ratio := sunUS / synthUS
		t.Rows = append(t.Rows,
			Row{
				Name:     p.name + " (speedup sun/synthesis)",
				Paper:    paperRatios[p.name],
				Measured: ratio,
				Unit:     "x",
				Note: fmt.Sprintf("synthesis %.1f us/it, sunos %.1f us/it",
					synthUS, sunUS),
			})
		if pp != nil {
			sumAttr += pp.Attributed()
			sumWindow += pp.Window()
		}
	}
	if cfg.Profile && sumWindow > 0 {
		t.Rows = append(t.Rows, Row{
			Name:     "profiler coverage (synthesis rig)",
			Measured: 100 * float64(sumAttr) / float64(sumWindow),
			Unit:     "%",
			Note:     "cycles attributed to named regions across all seven programs",
		})
	}
	return t, nil
}
