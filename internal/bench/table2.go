package bench

import (
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/unixemu"
)

// Table 2: file and device I/O in microseconds, native Synthesis
// calls vs the same calls through the UNIX emulator.

// measureSynth runs a marked program on a fresh Synthesis rig and
// returns the marked microseconds.
func measureSynth(build func(*asmkit.Builder)) (float64, error) {
	return runMarked(NewSynthRig(), 200_000_000, build)
}

// nativeOpen emits the native Synthesis open (trap #1).
func nativeOpen(b *asmkit.Builder, nameAddr uint32) {
	b.MoveL(m68k.Imm(kernel.SysOpen), m68k.D(0))
	b.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
	b.Trap(kernel.TrapSys)
}

func nativeClose(b *asmkit.Builder, fd int32) {
	b.MoveL(m68k.Imm(kernel.SysClose), m68k.D(0))
	b.MoveL(m68k.Imm(fd), m68k.D(1))
	b.Trap(kernel.TrapSys)
}

func nativeRead(b *asmkit.Builder, fd int, buf, n int32) {
	b.MoveL(m68k.Imm(buf), m68k.D(1))
	b.MoveL(m68k.Imm(n), m68k.D(2))
	b.Trap(uint8(kernel.TrapRead + fd))
}

// Table2 regenerates the file/device I/O measurements.
func Table2() (Table, error) {
	t := Table{
		Title: "Table 2: File and Device I/O (microseconds)",
		Note:  "native Synthesis kernel calls at the SUN 3/160 point; paper column = native",
	}
	add := func(name string, paper float64, us float64, note string) {
		t.Rows = append(t.Rows, Row{Name: name, Paper: paper, Measured: us, Unit: "usec", Note: note})
	}

	// Emulation trap overhead: unix null write minus native null
	// write.
	native, err := measureSynth(func(b *asmkit.Builder) {
		nativeOpen(b, addrNameNull)
		mark(b)
		b.MoveL(m68k.Imm(addrBufA), m68k.D(1))
		b.MoveL(m68k.Imm(1), m68k.D(2))
		b.Trap(kernel.TrapWrite + 0)
		mark(b)
		progExit(b)
	})
	if err != nil {
		return t, err
	}
	emul, err := measureSynth(func(b *asmkit.Builder) {
		nativeOpen(b, addrNameNull)
		mark(b)
		b.MoveL(m68k.Imm(0), m68k.D(1))
		b.MoveL(m68k.Imm(addrBufA), m68k.D(2))
		b.MoveL(m68k.Imm(1), m68k.D(3))
		unixCall(b, unixemu.SysWrite)
		mark(b)
		progExit(b)
	})
	if err != nil {
		return t, err
	}
	add("emulation trap overhead", 2, emul-native, "unix write minus native write")

	// Opens.
	openCase := func(name string, paper float64, nameAddr uint32) error {
		us, err := measureSynth(func(b *asmkit.Builder) {
			mark(b)
			nativeOpen(b, nameAddr)
			mark(b)
			progExit(b)
		})
		if err != nil {
			return err
		}
		add(name, paper, us, "includes charged code synthesis")
		return nil
	}
	if err := openCase("open /dev/null", 43, addrNameNull); err != nil {
		return t, err
	}
	if err := openCase("open /dev/tty", 62, addrNameTTY); err != nil {
		return t, err
	}
	if err := openCase("open file", 73, addrNameFile); err != nil {
		return t, err
	}

	// Close.
	us, err := measureSynth(func(b *asmkit.Builder) {
		nativeOpen(b, addrNameNull)
		mark(b)
		nativeClose(b, 0)
		mark(b)
		progExit(b)
	})
	if err != nil {
		return t, err
	}
	add("close", 18, us, "")

	// read 1 char from file.
	us, err = measureSynth(func(b *asmkit.Builder) {
		nativeOpen(b, addrNameFile)
		mark(b)
		nativeRead(b, 0, addrBufB, 1)
		mark(b)
		progExit(b)
	})
	if err != nil {
		return t, err
	}
	add("read 1 char from file", 9, us, "data in the memory-resident file")

	// read N chars from file: paper says 9*N/8 usec, i.e. 9 usec per
	// 8 characters. Read 1024 and report the per-8-chars figure.
	us, err = measureSynth(func(b *asmkit.Builder) {
		nativeOpen(b, addrNameFile)
		mark(b)
		nativeRead(b, 0, addrBufB, 1024)
		mark(b)
		progExit(b)
	})
	if err != nil {
		return t, err
	}
	add("read N chars from file (per 8 chars)", 9, us*8/1024,
		fmt.Sprintf("1 KB read took %.1f usec total", us))

	// read N from /dev/null.
	us, err = measureSynth(func(b *asmkit.Builder) {
		nativeOpen(b, addrNameNull)
		mark(b)
		nativeRead(b, 0, addrBufB, 1024)
		mark(b)
		progExit(b)
	})
	if err != nil {
		return t, err
	}
	add("read N from /dev/null", 6, us, "constant-time synthesized stub")

	return t, nil
}

func init() { Register("2", fixed(Table2)) }
