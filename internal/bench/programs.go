package bench

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	"synthesis/internal/unixemu"
)

// The Appendix A benchmark programs, rebuilt as Quamachine binaries
// against the UNIX trap convention (trap #0, syscall number in D0,
// arguments in D1-D3). The identical instruction stream runs on both
// kernels — the comparison discipline of Section 6.1.

func unixCall(b *asmkit.Builder, no int32) {
	b.MoveL(m68k.Imm(no), m68k.D(0))
	b.Trap(0)
}

func progExit(b *asmkit.Builder) {
	b.MoveL(m68k.Imm(0), m68k.D(1))
	unixCall(b, unixemu.SysExit)
}

func mark(b *asmkit.Builder) { b.Kcall(100) }

// BuildCompute emits program 1: the compute-bound calibration test, a
// Hofstadter Q-style chaotic sequence Q(n) = Q(n-Q(n-1)) + Q(n-Q(n-2))
// that "touches a large array at non-contiguous points".
func BuildCompute(b *asmkit.Builder, n int32) {
	q := int32(addrQArray)
	b.MoveL(m68k.Imm(1), m68k.Abs(uint32(q+4)))
	b.MoveL(m68k.Imm(1), m68k.Abs(uint32(q+8)))
	mark(b)
	b.Lea(m68k.Abs(uint32(q)), 0)
	b.MoveL(m68k.Imm(3), m68k.D(3)) // n
	b.Label("loop")
	b.MoveL(m68k.D(3), m68k.D(4))
	b.SubL(m68k.Imm(1), m68k.D(4))
	b.MoveL(m68k.Idx(0, 0, 4, 4), m68k.D(5)) // Q[n-1]
	b.MoveL(m68k.D(3), m68k.D(6))
	b.SubL(m68k.D(5), m68k.D(6))
	b.MoveL(m68k.Idx(0, 0, 6, 4), m68k.D(5)) // Q[n-Q[n-1]]
	b.MoveL(m68k.D(3), m68k.D(4))
	b.SubL(m68k.Imm(2), m68k.D(4))
	b.MoveL(m68k.Idx(0, 0, 4, 4), m68k.D(6)) // Q[n-2]
	b.MoveL(m68k.D(3), m68k.D(7))
	b.SubL(m68k.D(6), m68k.D(7))
	b.MoveL(m68k.Idx(0, 0, 7, 4), m68k.D(6)) // Q[n-Q[n-2]]
	b.AddL(m68k.D(6), m68k.D(5))
	b.MoveL(m68k.D(3), m68k.D(4))
	b.MoveL(m68k.D(5), m68k.Idx(0, 0, 4, 4)) // Q[n] = sum
	b.AddL(m68k.Imm(1), m68k.D(3))
	b.CmpL(m68k.Imm(n+1), m68k.D(3))
	b.Bne("loop")
	mark(b)
	progExit(b)
}

// BuildPipeRW emits programs 2-4: create a pipe, then iters times
// write and read back a chunk of the given size.
func BuildPipeRW(b *asmkit.Builder, iters, chunk int32) {
	unixCall(b, unixemu.SysPipe) // D0 = rfd, D1 = wfd
	b.MoveL(m68k.D(0), m68k.D(6))
	b.MoveL(m68k.D(1), m68k.D(7))
	mark(b)
	b.MoveL(m68k.Imm(iters), m68k.D(5))
	b.Label("loop")
	b.MoveL(m68k.D(7), m68k.D(1))
	b.MoveL(m68k.Imm(addrBufA), m68k.D(2))
	b.MoveL(m68k.Imm(chunk), m68k.D(3))
	unixCall(b, unixemu.SysWrite)
	b.MoveL(m68k.D(6), m68k.D(1))
	b.MoveL(m68k.Imm(addrBufB), m68k.D(2))
	b.MoveL(m68k.Imm(chunk), m68k.D(3))
	unixCall(b, unixemu.SysRead)
	b.SubL(m68k.Imm(1), m68k.D(5))
	b.Bne("loop")
	mark(b)
	progExit(b)
}

// BuildFileRW emits program 5: open the benchmark file and iters
// times rewind-write-rewind-read one kilobyte (the file stays in the
// cache / memory-resident file system on both kernels).
func BuildFileRW(b *asmkit.Builder, iters int32) {
	b.MoveL(m68k.Imm(addrNameFile), m68k.D(1))
	unixCall(b, unixemu.SysOpen) // fd 0
	mark(b)
	b.MoveL(m68k.Imm(iters), m68k.D(5))
	b.Label("loop")
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(0), m68k.D(2))
	unixCall(b, unixemu.SysLseek)
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(addrBufA), m68k.D(2))
	b.MoveL(m68k.Imm(1024), m68k.D(3))
	unixCall(b, unixemu.SysWrite)
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(0), m68k.D(2))
	unixCall(b, unixemu.SysLseek)
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(addrBufB), m68k.D(2))
	b.MoveL(m68k.Imm(1024), m68k.D(3))
	unixCall(b, unixemu.SysRead)
	b.SubL(m68k.Imm(1), m68k.D(5))
	b.Bne("loop")
	mark(b)
	unixCall(b, unixemu.SysClose)
	progExit(b)
}

// BuildOpenClose emits programs 6-7: iters times open and close the
// named file (descriptor 0 is reused every round).
func BuildOpenClose(b *asmkit.Builder, iters int32, nameAddr uint32) {
	mark(b)
	b.MoveL(m68k.Imm(iters), m68k.D(5))
	b.Label("loop")
	b.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
	unixCall(b, unixemu.SysOpen)
	b.MoveL(m68k.Imm(0), m68k.D(1))
	unixCall(b, unixemu.SysClose)
	b.SubL(m68k.Imm(1), m68k.D(5))
	b.Bne("loop")
	mark(b)
	progExit(b)
}
