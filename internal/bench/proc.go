package bench

import (
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/metrics"
	"synthesis/internal/unixemu"
)

// Table "proc": the guest-visible metrics quaject. A guest program
// opens /proc/metrics through the UNIX emulator and reads the kernel's
// own observability snapshot; the table compares the per-open
// synthesized read (buffer address and length folded in as constants,
// unrolled copy spliced inline) against the generic layered
// instantiation of the SAME template (both holes bound to descriptor
// cells, the block transfer behind a jsr into a byte-loop bcopy).
// Both descriptors serve the identical snapshot buffer, so the path
// difference is purely Factoring Invariants + Collapsing Layers.
//
// Unlike the other tables this one boots only the Synthesis rig, with
// a metrics registry attached: the baseline here is not the SUNOS
// kernel (which has no /proc) but the generic shape of the same read.

// procChunk is the read size for the path-length rows: fixed so the
// copy cost is identical no matter how large the snapshot is.
const procChunk = 256

// svcProcGeneric is the KCALL id of the host hook that installs the
// generic twin descriptor (120/121 are the pathlen and counter
// probes).
const svcProcGeneric = 122

// newMetricsSynthRig boots the Synthesis rig with an observability
// registry attached, so /proc/metrics serves a real snapshot.
func newMetricsSynthRig() *SynthRig {
	cfg := m68k.Sun3Config()
	cfg.TraceDepth = 128
	k := kernel.Boot(kernel.Config{
		Machine:         cfg,
		ChargeSynthesis: true,
		Metrics:         metrics.New(),
	})
	io := kio.Install(k)
	unixemu.Install(k)
	if _, err := k.FS.CreateSized(benchFileName, make([]byte, 1024), 8192); err != nil {
		panic(err)
	}
	prepareNames(k.M)
	attachFaults(k.M)
	return &SynthRig{K: k, IO: io}
}

// procRead emits read(fd in D<fdReg>, addrBufB, procChunk).
func procRead(b *asmkit.Builder, fdReg uint8) {
	b.MoveL(m68k.D(fdReg), m68k.D(1))
	b.MoveL(m68k.Imm(addrBufB), m68k.D(2))
	b.MoveL(m68k.Imm(procChunk), m68k.D(3))
	unixCall(b, unixemu.SysRead)
}

// procSeek emits lseek(fd in D<fdReg>, 0): rewind to the snapshot's
// start so every measured read copies the same procChunk bytes.
func procSeek(b *asmkit.Builder, fdReg uint8) {
	b.MoveL(m68k.D(fdReg), m68k.D(1))
	b.MoveL(m68k.Imm(0), m68k.D(2))
	unixCall(b, unixemu.SysLseek)
}

// buildProcPath emits the path-length program: open /proc/metrics
// (descriptor in D6), ask the host hook for the generic twin (D7),
// one unmeasured warm-up read on each, then pathRounds rounds of
// rewind + probe-read-probe on both paths. The probe layout matches
// pathMins: offset 0 = synthesized, offset 2 = generic.
func buildProcPath(b *asmkit.Builder) {
	b.MoveL(m68k.Imm(addrNameProc), m68k.D(1))
	unixCall(b, unixemu.SysOpen)
	b.MoveL(m68k.D(0), m68k.D(6))
	b.Kcall(svcProcGeneric) // host installs the generic twin -> D7
	procRead(b, 6)
	procRead(b, 7)
	for i := 0; i < pathRounds; i++ {
		procSeek(b, 6)
		b.Kcall(svcCount)
		procRead(b, 6)
		b.Kcall(svcCount)
		procSeek(b, 7)
		b.Kcall(svcCount)
		procRead(b, 7)
		b.Kcall(svcCount)
	}
	progExit(b)
}

// buildProcOpen emits the open-cost program: one marked open of
// /proc/metrics (snapshot cut + render + poke + read synthesis).
func buildProcOpen(b *asmkit.Builder) {
	mark(b)
	b.MoveL(m68k.Imm(addrNameProc), m68k.D(1))
	unixCall(b, unixemu.SysOpen)
	mark(b)
	progExit(b)
}

// hookProcGeneric registers the KCALL service that installs the
// generic twin of the snapshot descriptor the guest just opened (fd
// in D6); the new descriptor comes back in D7.
func hookProcGeneric(r *SynthRig) {
	r.K.M.RegisterService(svcProcGeneric, func(mm *m68k.Machine) uint64 {
		var bt *kernel.Thread
		for _, th := range r.K.Threads {
			if th.Name == "bench" {
				bt = th
			}
		}
		if bt == nil {
			mm.D[7] = ^uint32(0)
			return 0
		}
		mm.D[7] = uint32(r.IO.SynthGenericProcRead(bt, int32(mm.D[6])))
		return 0
	})
}

// TableProc regenerates the guest-visible metrics quaject table.
func TableProc() (Table, error) {
	t := Table{
		Title: "Table proc: guest-visible /proc/metrics, synthesized vs generic read",
		Note: "256-byte reads of the kernel's own metrics snapshot from inside the VM;\n" +
			"both descriptors serve the identical per-open snapshot buffer",
	}

	r := newMetricsSynthRig()
	hookProcGeneric(r)
	samples, err := runCounted(r, 2_000_000_000, buildProcPath)
	if err != nil {
		return t, err
	}
	spec, gen, err := pathMins(samples)
	if err != nil {
		return t, err
	}
	if n := len(r.IO.ProcLast()); n < procChunk {
		return t, fmt.Errorf("bench proc: snapshot only %d bytes, need >= %d", n, procChunk)
	}
	t.Rows = append(t.Rows,
		Row{Name: "read 256 B of /proc/metrics, synthesized", Measured: spec, Unit: "instr",
			Note: "buffer base+len folded to immediates, unrolled copy inline"},
		Row{Name: "read 256 B of /proc/metrics, generic layered", Measured: gen, Unit: "instr",
			Note: "base+len via descriptor cells, byte-loop bcopy behind a jsr"},
		Row{Name: "read path ratio (generic/synthesized)", Measured: gen / spec, Unit: "x", Note: ""},
	)

	rOpen := newMetricsSynthRig()
	openUS, err := runMarked(rOpen, 2_000_000_000, buildProcOpen)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		Row{Name: "open /proc/metrics", Measured: openUS, Unit: "usec",
			Note: "snapshot cut + render + buffer poke + charged read synthesis"},
	)
	return t, nil
}

func init() { Register("proc", fixed(TableProc)) }
