package bench

import (
	"fmt"

	"synthesis/internal/asmkit"
	"synthesis/internal/fault"
	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
)

// Table 7: the Synthesis network path under injected faults. The
// paper's tables stop at the fast path; this one measures the
// recovery plane — throughput and recovery latency against frame-loss
// rate on a lossy loopback wire, and the watchdog's reaction time to
// an IRQ storm. Every fault is drawn from a seeded schedule, so the
// whole table replays exactly.
//
// The loss runs drive a stop-and-wait ARQ in the benchmark binary
// itself: the NIC reports ring backpressure but silent wire loss is
// invisible to the transmitter, so the program detects a lost
// datagram by watching the destination socket's deposit gauge (the
// cut-through loopback delivers before the send call returns) and
// retransmits until the frame lands. Recovery latency is the extra
// time per lost frame relative to the loss-free run of the identical
// binary.

// Data cells for the ARQ program, in the scratch region between the
// benchmark buffers and the chaos array.
const (
	addrQBase = 0x1F000 // receive socket's packet-queue base
	addrRetx  = 0x1F004 // retransmission counter
)

// lossRates are the frame-loss probabilities the table sweeps.
var lossRates = []float64{0, 0.10, 0.20, 0.30}

// buildSockARQ emits the lossy-wire program: open the loopback pair,
// then iters datagrams under stop-and-wait ARQ between the marks.
func buildSockARQ(b *asmkit.Builder, iters int32) {
	sockPair(b)
	// A2 = the receive socket's packet queue, read from the
	// descriptor's Aux cell in the current TTE; parked in a memory
	// cell because system calls do not preserve address registers.
	b.MoveL(m68k.Abs(kernel.GCurTTE), m68k.A(0))
	b.MoveL(m68k.D(7), m68k.D(0))
	b.LslL(m68k.Imm(5), m68k.D(0)) // * FDSlotSize
	b.AddL(m68k.Imm(int32(kernel.TTEFDBase+kernel.FDAux)), m68k.D(0))
	b.MoveL(m68k.Idx(0, 0, 0, 1), m68k.A(2))
	b.MoveL(m68k.A(2), m68k.Abs(addrQBase))
	b.Clr(4, m68k.Abs(addrRetx))
	mark(b)
	b.MoveL(m68k.Imm(iters), m68k.D(5))
	b.Label("loop")
	// Remember the deposit gauge, send, and compare: an unchanged
	// gauge means the wire ate the frame — count and retransmit.
	b.MoveL(m68k.Abs(addrQBase), m68k.A(2))
	b.MoveL(m68k.Disp(kio.NQGauge, 2), m68k.D(4))
	b.Label("try")
	sockWrite(b)
	b.MoveL(m68k.Abs(addrQBase), m68k.A(2))
	b.MoveL(m68k.Disp(kio.NQGauge, 2), m68k.D(0))
	b.Cmp(4, m68k.D(4), m68k.D(0))
	b.Bne("arrived")
	b.AddL(m68k.Imm(1), m68k.Abs(addrRetx))
	b.Bra("try")
	b.Label("arrived")
	sockRead(b)
	b.SubL(m68k.Imm(1), m68k.D(5))
	b.Bne("loop")
	mark(b)
	progExit(b)
}

// runARQ measures one loss rate: total marked time in usec plus the
// retransmission count and the injector's wire statistics.
func runARQ(rate float64, seed int64, iters int32) (us float64, retx uint32, st fault.Stats, err error) {
	r := NewSynthRig()
	inj := fault.New(fault.Plan{Drop: rate}, seed)
	inj.Attach(r.Machine())
	us, err = runMarked(r, 4_000_000_000, func(b *asmkit.Builder) {
		buildSockARQ(b, iters)
	})
	if err != nil {
		return 0, 0, st, err
	}
	return us, r.Machine().Peek(addrRetx, 4), inj.Stats, nil
}

// stormRecovery measures the watchdog's reaction to an IRQ storm on
// the NIC level: cycles from the first scream to the coalescing
// throttle engaging, and from the last scream to the throttle
// releasing.
func stormRecovery(seed int64) (engageUS, releaseUS float64, err error) {
	r := NewSynthRig()
	m := r.Machine()
	const (
		stormGap   = 80   // cycles between screams: ~100 entries per 500us window
		stormCount = 2000 // 160k cycles of scream
	)
	stormAt := m.Cycles + 20_000
	stormEnd := stormAt + stormCount*stormGap
	inj := fault.New(fault.Plan{Storms: []fault.Storm{
		{Level: m68k.IRQNet, At: stormAt, Count: stormCount, Gap: stormGap},
	}}, seed)
	inj.Attach(m)
	// Each handler entry costs ~150 cycles, which caps the scream rate
	// near 50 entries per 500us window regardless of the storm gap —
	// set the threshold below that so the storm registers.
	wd := r.IO.InstallWatchdog(kio.WatchdogConfig{StormThreshold: 32})

	// The foreground program just burns cycles long enough for the
	// storm to run its course and the release window to pass.
	b := asmkit.New()
	b.MoveL(m68k.Imm(200_000), m68k.D(5))
	b.Label("spin")
	b.SubL(m68k.Imm(1), m68k.D(5))
	b.Bne("spin")
	progExit(b)
	if err := r.Run(b.Link(m), 50_000_000_000); err != nil {
		return 0, 0, err
	}

	var onAt, offAt uint64
	for _, ev := range wd.Events {
		switch {
		case ev.Kind == "throttle-on" && onAt == 0:
			onAt = ev.Cycle
		case ev.Kind == "throttle-off" && offAt == 0:
			offAt = ev.Cycle
		}
	}
	if onAt == 0 || offAt == 0 {
		return 0, 0, fmt.Errorf("table7: watchdog events = %v, want throttle-on then throttle-off", wd.Events)
	}
	return float64(onAt-stormAt) / m.ClockMHz, float64(offAt-stormEnd) / m.ClockMHz, nil
}

// Table7 generates the fault-recovery table.
func Table7(cfg RunConfig) (Table, error) {
	t := Table{
		Title: "Table 7: Throughput and recovery under injected faults",
		Note: "128-byte datagrams, stop-and-wait ARQ over a seeded lossy loopback wire;\n" +
			"recovery latency is the extra time per lost frame vs the loss-free run",
	}
	iters := cfg.Iters
	if iters <= 0 {
		iters = 200
	}
	seed := cfg.FaultSeed
	if seed == 0 {
		seed = 1
	}

	var baseUS float64
	for i, rate := range lossRates {
		us, retx, st, err := runARQ(rate, seed+int64(i), iters)
		if err != nil {
			return t, err
		}
		if rate == 0 {
			baseUS = us
		}
		fps := float64(iters) * 1e6 / us
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("throughput @ %2.0f%% frame loss", rate*100), Measured: fps, Unit: "fr/s",
			Note: fmt.Sprintf("%d frames, %d retransmits, wire dropped %d/%d", iters, retx, st.Dropped, st.Frames),
		})
		recovery := 0.0
		if retx > 0 {
			recovery = (us - baseUS) / float64(retx)
		}
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("recovery latency @ %2.0f%% frame loss", rate*100), Measured: recovery, Unit: "usec",
			Note: "per lost frame, detect + retransmit",
		})
	}

	engage, release, err := stormRecovery(seed)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows,
		Row{Name: "IRQ-storm throttle engage", Measured: engage, Unit: "usec",
			Note: "first scream to coalescing handler installed"},
		Row{Name: "IRQ-storm throttle release", Measured: release, Unit: "usec",
			Note: "last scream to plain handler restored"},
	)
	return t, nil
}

func init() { Register("7", Table7) }
