package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Fleet fault grammar: the cluster-scale extension of the -faults
// spec. A fleet spec is a semicolon-separated list of clauses so that
// clauses can carry comma-separated knob lists of their own; a clause
// with no fleet keyword is parsed with the single-machine grammar
// (SpecHelp) and lands in FleetPlan.Base, applied to every member VM.
// A spec with no semicolons and no fleet keywords is therefore exactly
// a single-machine spec — the grammars compose instead of forking.

// FleetSpecHelp documents the fleet grammar for --help output and
// EXPERIMENTS.md, alongside SpecHelp.
const FleetSpecHelp = `fleet fault spec grammar (semicolon-separated clauses; -cluster and the
cluster/recovery bench tables only):
  link=S>D:KNOBS   fault rule for fabric frames from node S to node D
                   (node 0 is the host load generator; "*" = any node).
                   KNOBS is a comma-separated list of:
                     drop=P        lose the frame silently with probability P
                     corrupt=P     flip one payload/checksum byte with probability P
                     dup=P         deliver the frame twice with probability P
                     reorder=P     hold the frame ~1-3ms so later frames overtake
                     delay=P:MS    hold the frame MS milliseconds with probability P
                     rate=N        throttle the link to N frames/sec; the pending
                                   queue is bounded, overflow is transmitter-visible
                                   backpressure (a slow client, end to end)
  part=A|B@T1-T2   cut every link between node sets A and B (sets are
                   "+"-separated ids) from wall millisecond T1 after the
                   cluster starts until T2; the heal at T2 is a measured event
  vmfault=I:SPEC   attach the single-machine injector (grammar above) to
                   member VM I's own NIC wire and devices
clauses with none of these keywords use the single-machine grammar and
apply to every member VM.
example: link=*>1:drop=0.05,delay=0.1:2;part=0|2@500-1500;vmfault=1:ringfull=0.1`

// LinkRule is one src->dst fabric link's fault behavior. Src/Dst are
// fabric node ids (0 = host); WildcardNode matches any node.
type LinkRule struct {
	Src, Dst int

	Drop    float64 // P(frame silently eaten in transit)
	Corrupt float64 // P(one payload/checksum byte flipped)
	Dup     float64 // P(frame delivered twice)
	Reorder float64 // P(frame held briefly so later frames overtake)

	Delay    float64       // P(frame held for DelayFor)
	DelayFor time.Duration // hold time when Delay hits

	Rate float64 // max frames/sec through the link (0 = unthrottled)
}

// WildcardNode in LinkRule.Src/Dst matches every node.
const WildcardNode = -1

// Matches reports whether the rule governs frames from src to dst.
func (r LinkRule) Matches(src, dst int) bool {
	return (r.Src == WildcardNode || r.Src == src) &&
		(r.Dst == WildcardNode || r.Dst == dst)
}

// Partition is one scheduled cut: every link between a node in A and a
// node in B (both directions) is severed during [From, To) measured
// from the cluster's start, and healed at To.
type Partition struct {
	A, B     []int
	From, To time.Duration
}

// VMFault attaches a single-machine fault plan to one member VM.
type VMFault struct {
	VM   int
	Plan Plan
}

// FleetPlan is a complete cluster fault schedule.
type FleetPlan struct {
	// Base is applied to every member VM's own injector (single-machine
	// clauses with no fleet keyword).
	Base Plan
	// Links are the per-link fabric rules, consulted in order; the
	// first matching rule governs a frame.
	Links []LinkRule
	// Partitions is the scripted cut/heal schedule.
	Partitions []Partition
	// VMFaults are per-VM injector plans, merged over Base.
	VMFaults []VMFault
}

// Empty reports whether the plan schedules nothing at all.
func (p FleetPlan) Empty() bool {
	return len(p.Links) == 0 && len(p.Partitions) == 0 && len(p.VMFaults) == 0 &&
		planEmpty(p.Base)
}

// Empty reports whether the single-machine plan injects nothing.
func (p Plan) Empty() bool { return planEmpty(p) }

func planEmpty(p Plan) bool {
	return p.Drop == 0 && p.Corrupt == 0 && p.Dup == 0 && p.Delay == 0 &&
		p.RingFull == 0 && p.Jitter == 0 &&
		len(p.Spurious) == 0 && len(p.Storms) == 0 && len(p.BusErrs) == 0
}

// FleetOnly reports whether the plan has any cluster-only clause — the
// check single-machine consumers use to reject a fleet spec cleanly.
func (p FleetPlan) FleetOnly() bool {
	return len(p.Links) > 0 || len(p.Partitions) > 0 || len(p.VMFaults) > 0
}

// Merge overlays over on base: nonzero scalars in over win, schedule
// lists concatenate. Used to compose a vmfault= clause with the Base
// plan for that VM.
func Merge(base, over Plan) Plan {
	out := base
	if over.Drop != 0 {
		out.Drop = over.Drop
	}
	if over.Corrupt != 0 {
		out.Corrupt = over.Corrupt
	}
	if over.Dup != 0 {
		out.Dup = over.Dup
	}
	if over.Delay != 0 {
		out.Delay = over.Delay
		out.DelayCycles = over.DelayCycles
	}
	if over.RingFull != 0 {
		out.RingFull = over.RingFull
	}
	if over.Jitter != 0 {
		out.Jitter = over.Jitter
	}
	out.Spurious = append(append([]Spurious(nil), base.Spurious...), over.Spurious...)
	out.Storms = append(append([]Storm(nil), base.Storms...), over.Storms...)
	out.BusErrs = append(append([]BusErr(nil), base.BusErrs...), over.BusErrs...)
	return out
}

// ParseFleet builds a FleetPlan from a spec string (see FleetSpecHelp
// and SpecHelp). Single-machine specs parse unchanged into Base.
func ParseFleet(spec string) (FleetPlan, error) {
	var p FleetPlan
	var baseItems []string
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, _ := strings.Cut(clause, "=")
		var err error
		switch key {
		case "link":
			err = p.parseLink(val)
		case "part":
			err = p.parsePart(val)
		case "vmfault":
			err = p.parseVMFault(val)
		default:
			// A single-machine clause; accumulate and parse in one shot
			// so repeated items keep their documented accumulate/last-
			// wins semantics across clauses.
			baseItems = append(baseItems, clause)
			continue
		}
		if err != nil {
			return p, fmt.Errorf("fault: %q: %v", clause, err)
		}
	}
	if len(baseItems) > 0 {
		base, err := Parse(strings.Join(baseItems, ","))
		if err != nil {
			return p, err
		}
		p.Base = base
	}
	return p, nil
}

// parseLink handles "S>D:KNOBS".
func (p *FleetPlan) parseLink(val string) error {
	ends, knobs, ok := strings.Cut(val, ":")
	if !ok {
		return fmt.Errorf("want S>D:KNOBS")
	}
	src, dst, ok := strings.Cut(ends, ">")
	if !ok {
		return fmt.Errorf("want S>D before the colon")
	}
	var r LinkRule
	var err error
	if r.Src, err = node(src); err != nil {
		return err
	}
	if r.Dst, err = node(dst); err != nil {
		return err
	}
	for _, l := range p.Links {
		if l.Src == r.Src && l.Dst == r.Dst {
			return fmt.Errorf("duplicate link rule for %s>%s", src, dst)
		}
	}
	any := false
	for _, knob := range strings.Split(knobs, ",") {
		knob = strings.TrimSpace(knob)
		if knob == "" {
			continue
		}
		k, v, ok := strings.Cut(knob, "=")
		if !ok {
			return fmt.Errorf("knob %q: want key=value", knob)
		}
		any = true
		switch k {
		case "drop":
			r.Drop, err = prob(v)
		case "corrupt":
			r.Corrupt, err = prob(v)
		case "dup":
			r.Dup, err = prob(v)
		case "reorder":
			r.Reorder, err = prob(v)
		case "delay":
			pr, ms, ok := strings.Cut(v, ":")
			if !ok {
				err = fmt.Errorf("want P:MS")
				break
			}
			if r.Delay, err = prob(pr); err != nil {
				break
			}
			r.DelayFor, err = millis(ms)
		case "rate":
			var f float64
			f, err = strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				err = fmt.Errorf("rate %q must be a positive frames/sec", v)
				break
			}
			r.Rate = f
		default:
			err = fmt.Errorf("unknown link knob %q", k)
		}
		if err != nil {
			return fmt.Errorf("knob %q: %v", knob, err)
		}
	}
	if !any {
		return fmt.Errorf("empty knob list")
	}
	p.Links = append(p.Links, r)
	return nil
}

// parsePart handles "A|B@T1-T2".
func (p *FleetPlan) parsePart(val string) error {
	sets, window, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want A|B@T1-T2")
	}
	a, b, ok := strings.Cut(sets, "|")
	if !ok {
		return fmt.Errorf("want two |-separated node sets")
	}
	var part Partition
	var err error
	if part.A, err = nodeSet(a); err != nil {
		return err
	}
	if part.B, err = nodeSet(b); err != nil {
		return err
	}
	for _, na := range part.A {
		for _, nb := range part.B {
			if na == nb {
				return fmt.Errorf("node %d on both sides of the cut", na)
			}
		}
	}
	t1, t2, ok := strings.Cut(window, "-")
	if !ok {
		return fmt.Errorf("want a T1-T2 millisecond window")
	}
	if part.From, err = millis(t1); err != nil {
		return err
	}
	if part.To, err = millis(t2); err != nil {
		return err
	}
	if part.To <= part.From {
		return fmt.Errorf("window %s-%s must end after it starts", t1, t2)
	}
	p.Partitions = append(p.Partitions, part)
	return nil
}

// parseVMFault handles "I:SPEC".
func (p *FleetPlan) parseVMFault(val string) error {
	id, spec, ok := strings.Cut(val, ":")
	if !ok {
		return fmt.Errorf("want I:SPEC")
	}
	vm, err := strconv.Atoi(id)
	if err != nil || vm < 1 {
		return fmt.Errorf("VM id %q must be a positive member id", id)
	}
	for _, f := range p.VMFaults {
		if f.VM == vm {
			return fmt.Errorf("duplicate vmfault for VM %d", vm)
		}
	}
	plan, err := Parse(spec)
	if err != nil {
		return err
	}
	if planEmpty(plan) {
		return fmt.Errorf("empty fault spec for VM %d", vm)
	}
	p.VMFaults = append(p.VMFaults, VMFault{VM: vm, Plan: plan})
	return nil
}

// node parses a fabric node id or the "*" wildcard.
func node(s string) (int, error) {
	if s == "*" {
		return WildcardNode, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 0 || v > 255 {
		return 0, fmt.Errorf("node %q must be 0..255 or *", s)
	}
	return v, nil
}

// nodeSet parses a "+"-separated node id list (no wildcard: a cut
// between everything and everything is not a partition).
func nodeSet(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, "+") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v > 255 {
			return nil, fmt.Errorf("node %q must be 0..255", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty node set")
	}
	sort.Ints(out)
	for i := 1; i < len(out); i++ {
		if out[i] == out[i-1] {
			return nil, fmt.Errorf("node %d repeated in set", out[i])
		}
	}
	return out, nil
}

// millis parses a non-negative wall duration in (possibly fractional)
// milliseconds.
func millis(s string) (time.Duration, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v < 0 || v != v {
		return 0, fmt.Errorf("milliseconds %q must be non-negative", s)
	}
	return time.Duration(v * float64(time.Millisecond)), nil
}
