package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// SpecHelp documents the -faults grammar for command --help output
// and EXPERIMENTS.md. A spec is a comma-separated list of items; the
// same item may repeat (spurious/storm/buserr accumulate, the scalar
// knobs take the last value).
const SpecHelp = `fault spec grammar (comma-separated items):
  drop=P            lose each NIC frame with probability P in [0,1]
  corrupt=P         flip one checksum/payload byte with probability P
  dup=P             deliver each frame twice with probability P
  delay=P:CYCLES    delay the receive interrupt by CYCLES with probability P
  ringfull=P        force a receive-ring-full drop with probability P
  jitter=CYCLES     add uniform [0,CYCLES) to every timer arming
  spurious=L:GAP    spurious interrupts at IPL L, mean gap GAP cycles
  storm=L@AT:NxGAP  N interrupts at IPL L starting at cycle AT, one per GAP cycles
  buserr=DEV@N      bus error on the Nth access to device DEV's window
example: drop=0.2,corrupt=0.05,spurious=7:50000,buserr=disk@3`

// Parse builds a Plan from a spec string (see SpecHelp).
func Parse(spec string) (Plan, error) {
	var p Plan
	for _, item := range strings.Split(spec, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		key, val, ok := strings.Cut(item, "=")
		if !ok {
			return p, fmt.Errorf("fault: %q: want key=value", item)
		}
		var err error
		switch key {
		case "drop":
			p.Drop, err = prob(val)
		case "corrupt":
			p.Corrupt, err = prob(val)
		case "dup":
			p.Dup, err = prob(val)
		case "ringfull":
			p.RingFull, err = prob(val)
		case "jitter":
			p.Jitter, err = cycles(val)
		case "delay":
			pr, cy, ok := strings.Cut(val, ":")
			if !ok {
				err = fmt.Errorf("want P:CYCLES")
				break
			}
			if p.Delay, err = prob(pr); err != nil {
				break
			}
			p.DelayCycles, err = cycles(cy)
		case "spurious":
			lv, gap, ok := strings.Cut(val, ":")
			if !ok {
				err = fmt.Errorf("want L:GAP")
				break
			}
			var s Spurious
			if s.Level, err = level(lv); err != nil {
				break
			}
			if s.MeanGap, err = cycles(gap); err != nil {
				break
			}
			if s.MeanGap == 0 {
				err = fmt.Errorf("gap must be positive")
				break
			}
			p.Spurious = append(p.Spurious, s)
		case "storm":
			lv, rest, ok := strings.Cut(val, "@")
			if !ok {
				err = fmt.Errorf("want L@AT:NxGAP")
				break
			}
			at, burst, ok := strings.Cut(rest, ":")
			if !ok {
				err = fmt.Errorf("want L@AT:NxGAP")
				break
			}
			n, gap, ok := strings.Cut(burst, "x")
			if !ok {
				err = fmt.Errorf("want L@AT:NxGAP")
				break
			}
			var s Storm
			if s.Level, err = level(lv); err != nil {
				break
			}
			if s.At, err = cycles(at); err != nil {
				break
			}
			if s.Count, err = strconv.Atoi(n); err != nil || s.Count < 1 {
				err = fmt.Errorf("count %q must be a positive integer", n)
				break
			}
			if s.Gap, err = cycles(gap); err != nil {
				break
			}
			p.Storms = append(p.Storms, s)
		case "buserr":
			dev, nth, ok := strings.Cut(val, "@")
			if !ok || dev == "" {
				err = fmt.Errorf("want DEV@N")
				break
			}
			var b BusErr
			b.Dev = dev
			if b.Nth, err = cycles(nth); err != nil {
				break
			}
			if b.Nth == 0 {
				err = fmt.Errorf("access index is 1-based")
				break
			}
			p.BusErrs = append(p.BusErrs, b)
		default:
			err = fmt.Errorf("unknown fault kind")
		}
		if err != nil {
			return p, fmt.Errorf("fault: %q: %v", item, err)
		}
	}
	return p, nil
}

// FromSpec parses spec and builds the seeded injector in one step.
func FromSpec(spec string, seed int64) (*Injector, error) {
	p, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(p, seed), nil
}

func prob(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil || v != v || v < 0 || v > 1 { // v != v rejects NaN
		return 0, fmt.Errorf("probability %q must be in [0,1]", s)
	}
	return v, nil
}

func cycles(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("cycle count %q must be a non-negative integer", s)
	}
	return v, nil
}

func level(s string) (int, error) {
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 || v > 7 {
		return 0, fmt.Errorf("IPL %q must be 1..7", s)
	}
	return v, nil
}
