package fault

import (
	"math/rand"

	"synthesis/internal/m68k"
)

// Spurious schedules interrupts at a level with no cause: the device
// asserts, the handler finds nothing to do. MeanGap is the mean cycle
// spacing (exponentially distributed, like real glitches).
type Spurious struct {
	Level   int
	MeanGap uint64
}

// Storm schedules a burst: Count interrupts at Level, the first at
// cycle At, then one every Gap cycles — a screaming device.
type Storm struct {
	Level int
	At    uint64
	Count int
	Gap   uint64
}

// BusErr schedules a one-shot bus error on the Nth load or store that
// lands in the named device's register window (1-based).
type BusErr struct {
	Dev string
	Nth uint64
}

// Plan is a complete fault schedule. Probabilities are per-event
// Bernoulli draws in [0,1]; zero values inject nothing.
type Plan struct {
	Drop     float64 // P(frame lost on the wire)
	Corrupt  float64 // P(one frame byte flipped in the sum/payload region)
	Dup      float64 // P(frame delivered twice)
	Delay    float64 // P(receive interrupt delayed by DelayCycles)
	RingFull float64 // P(receive ring pretends to be full)

	DelayCycles uint64 // added receive-interrupt latency when Delay hits
	Jitter      uint64 // timer armings gain uniform [0,Jitter) extra cycles

	Spurious []Spurious
	Storms   []Storm
	BusErrs  []BusErr
}

// Stats counts what the injector actually did, for reports and test
// assertions.
type Stats struct {
	Frames     uint64 // frames seen on the wire
	Dropped    uint64
	Corrupted  uint64
	Duplicated uint64
	Delayed    uint64
	ForcedFull uint64
	BusErrors  uint64
	SpuriousUp uint64 // spurious interrupts asserted
	StormUp    uint64 // storm interrupts asserted
}

// Injector implements m68k.Injector (the nil-checked device-layer
// hook) and m68k.Device (a windowless device whose Tick is the clock
// source for spurious interrupts and storms).
type Injector struct {
	Plan  Plan
	Stats Stats

	rng      *rand.Rand
	accesses map[string]uint64
	fired    []bool // per BusErr, already delivered

	spurNext []uint64 // per Spurious, absolute cycle of next assertion
	stormN   []int    // per Storm, interrupts already asserted
	stormAt  []uint64 // per Storm, absolute cycle of next assertion
}

// New builds an injector executing plan with all randomness drawn
// from seed.
func New(plan Plan, seed int64) *Injector {
	inj := &Injector{
		Plan:     plan,
		rng:      rand.New(rand.NewSource(seed)),
		accesses: make(map[string]uint64),
		fired:    make([]bool, len(plan.BusErrs)),
		spurNext: make([]uint64, len(plan.Spurious)),
		stormN:   make([]int, len(plan.Storms)),
		stormAt:  make([]uint64, len(plan.Storms)),
	}
	for i, s := range plan.Storms {
		inj.stormAt[i] = s.At
		if inj.stormAt[i] == 0 {
			inj.stormAt[i] = 1
		}
	}
	return inj
}

// Attach wires the injector into a machine: the device-layer hook
// always, and the interrupt source only when the plan schedules
// spurious interrupts or storms (keeping the per-access device scan
// unchanged otherwise).
func (inj *Injector) Attach(m *m68k.Machine) {
	m.Inj = inj
	if len(inj.Plan.Spurious)+len(inj.Plan.Storms) > 0 {
		m.Attach(inj)
	}
}

// hit draws one Bernoulli trial.
func (inj *Injector) hit(p float64) bool {
	return p > 0 && inj.rng.Float64() < p
}

// AccessFault implements m68k.Injector.
func (inj *Injector) AccessFault(dev m68k.Device, off uint32, write bool) bool {
	if len(inj.Plan.BusErrs) == 0 {
		return false
	}
	name := dev.Name()
	inj.accesses[name]++
	n := inj.accesses[name]
	for i, b := range inj.Plan.BusErrs {
		if !inj.fired[i] && b.Dev == name && n == b.Nth {
			inj.fired[i] = true
			inj.Stats.BusErrors++
			return true
		}
	}
	return false
}

// Frame implements m68k.Injector: one wire transit. The 12-byte wire
// header is [dst][src][checksum]; corruption flips a byte at offset 8
// or later (checksum or payload), so every corrupted frame is
// detectable by the receiver's checksum verify — corrupting the
// address words would model misrouting instead, a different fault.
func (inj *Injector) Frame(frame []byte) ([][]byte, uint64) {
	inj.Stats.Frames++
	if inj.hit(inj.Plan.Drop) {
		inj.Stats.Dropped++
		return nil, 0
	}
	f := append([]byte(nil), frame...)
	if inj.hit(inj.Plan.Corrupt) {
		lo := 8
		if len(f) <= lo {
			lo = 0
		}
		if len(f) > lo {
			f[lo+inj.rng.Intn(len(f)-lo)] ^= 1 << uint(inj.rng.Intn(8))
			inj.Stats.Corrupted++
		}
	}
	var delay uint64
	if inj.hit(inj.Plan.Delay) {
		delay = inj.Plan.DelayCycles
		inj.Stats.Delayed++
	}
	out := [][]byte{f}
	if inj.hit(inj.Plan.Dup) {
		out = append(out, append([]byte(nil), f...))
		inj.Stats.Duplicated++
	}
	return out, delay
}

// RingFull implements m68k.Injector.
func (inj *Injector) RingFull() bool {
	if inj.hit(inj.Plan.RingFull) {
		inj.Stats.ForcedFull++
		return true
	}
	return false
}

// TimerArm implements m68k.Injector.
func (inj *Injector) TimerArm(cycles uint64) uint64 {
	if inj.Plan.Jitter > 0 {
		cycles += uint64(inj.rng.Int63n(int64(inj.Plan.Jitter)))
	}
	return cycles
}

// Name implements m68k.Device.
func (inj *Injector) Name() string { return "fault" }

// Base implements m68k.Device. The window is empty (Size 0): the
// injector is an interrupt source, not an addressable peripheral.
func (inj *Injector) Base() uint32 { return 0xffff_ff00 }

// Size implements m68k.Device.
func (inj *Injector) Size() uint32 { return 0 }

// Load implements m68k.Device.
func (inj *Injector) Load(off uint32, sz uint8) uint32 { return 0 }

// Store implements m68k.Device.
func (inj *Injector) Store(off uint32, sz uint8, val uint32) {}

// Tick implements m68k.Device: it asserts at most one due spurious or
// storm interrupt and reports the next scheduled event. When several
// are due at once it returns them across consecutive polls (next ==
// now re-arms the poll immediately).
func (inj *Injector) Tick(now uint64) (int, uint64) {
	irq := 0
	for i := range inj.Plan.Storms {
		s := &inj.Plan.Storms[i]
		if inj.stormN[i] < s.Count && now >= inj.stormAt[i] {
			inj.stormN[i]++
			inj.stormAt[i] = now + s.Gap
			if s.Gap == 0 {
				inj.stormAt[i] = now + 1
			}
			inj.Stats.StormUp++
			irq = s.Level
			break
		}
	}
	if irq == 0 {
		for i := range inj.Plan.Spurious {
			sp := &inj.Plan.Spurious[i]
			if inj.spurNext[i] == 0 {
				inj.spurNext[i] = now + inj.expGap(sp.MeanGap)
				continue
			}
			if now >= inj.spurNext[i] {
				inj.spurNext[i] = now + inj.expGap(sp.MeanGap)
				inj.Stats.SpuriousUp++
				irq = sp.Level
				break
			}
		}
	}
	return irq, inj.nextEvent(now)
}

// expGap draws an exponentially distributed gap with the given mean,
// at least one cycle.
func (inj *Injector) expGap(mean uint64) uint64 {
	g := uint64(inj.rng.ExpFloat64() * float64(mean))
	if g == 0 {
		g = 1
	}
	return g
}

// nextEvent returns the earliest scheduled assertion, or 0 when the
// plan has nothing left to fire.
func (inj *Injector) nextEvent(now uint64) uint64 {
	var next uint64
	consider := func(at uint64) {
		if at != 0 && (next == 0 || at < next) {
			next = at
		}
	}
	for i := range inj.Plan.Storms {
		if inj.stormN[i] < inj.Plan.Storms[i].Count {
			consider(inj.stormAt[i])
		}
	}
	for i := range inj.Plan.Spurious {
		at := inj.spurNext[i]
		if at == 0 {
			at = now + 1 // gap not drawn yet: poll again to schedule it
		}
		consider(at)
	}
	return next
}
