package fault

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseFleetFullSpec(t *testing.T) {
	p, err := ParseFleet("link=0>1:drop=0.05,corrupt=0.02,dup=0.01,reorder=0.1,delay=0.2:2.5,rate=1500;" +
		"link=*>2:drop=0.15;" +
		"part=0|2@500-1500;part=1+2|3+4@0-250;" +
		"vmfault=1:ringfull=0.1,spurious=7:50000;" +
		"drop=0.01,jitter=64")
	if err != nil {
		t.Fatal(err)
	}
	wantLinks := []LinkRule{
		{Src: 0, Dst: 1, Drop: 0.05, Corrupt: 0.02, Dup: 0.01, Reorder: 0.1,
			Delay: 0.2, DelayFor: 2500 * time.Microsecond, Rate: 1500},
		{Src: WildcardNode, Dst: 2, Drop: 0.15},
	}
	if !reflect.DeepEqual(p.Links, wantLinks) {
		t.Errorf("Links = %+v, want %+v", p.Links, wantLinks)
	}
	wantParts := []Partition{
		{A: []int{0}, B: []int{2}, From: 500 * time.Millisecond, To: 1500 * time.Millisecond},
		{A: []int{1, 2}, B: []int{3, 4}, From: 0, To: 250 * time.Millisecond},
	}
	if !reflect.DeepEqual(p.Partitions, wantParts) {
		t.Errorf("Partitions = %+v, want %+v", p.Partitions, wantParts)
	}
	if len(p.VMFaults) != 1 || p.VMFaults[0].VM != 1 ||
		p.VMFaults[0].Plan.RingFull != 0.1 || len(p.VMFaults[0].Plan.Spurious) != 1 {
		t.Errorf("VMFaults = %+v", p.VMFaults)
	}
	if p.Base.Drop != 0.01 || p.Base.Jitter != 64 {
		t.Errorf("Base = %+v, want drop=0.01 jitter=64", p.Base)
	}
	if p.Empty() || !p.FleetOnly() {
		t.Errorf("Empty()=%v FleetOnly()=%v", p.Empty(), p.FleetOnly())
	}
}

// TestParseFleetSingleMachineCompat: a plain single-machine spec must
// parse into Base byte-identically with Parse, so every existing
// -faults invocation keeps working.
func TestParseFleetSingleMachineCompat(t *testing.T) {
	spec := "drop=0.2,corrupt=0.05,spurious=7:50000,buserr=disk@3"
	fp, err := ParseFleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fp.Base, direct) {
		t.Errorf("ParseFleet Base = %+v, Parse = %+v", fp.Base, direct)
	}
	if fp.FleetOnly() {
		t.Error("single-machine spec reported FleetOnly")
	}
	// Base clauses split across semicolons accumulate like commas.
	fp2, err := ParseFleet("drop=0.2;corrupt=0.05,spurious=7:50000;buserr=disk@3")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fp2.Base, direct) {
		t.Errorf("semicolon-split Base = %+v, want %+v", fp2.Base, direct)
	}
}

func TestParseFleetRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"link=0>1",                // no knobs
		"link=0>1:",               // empty knob list
		"link=01:drop=0.1",        // missing >
		"link=0>1:drop=1.5",       // probability out of range
		"link=0>1:drop",           // knob without value
		"link=0>1:warp=0.5",       // unknown knob
		"link=0>1:delay=0.5",      // delay missing MS
		"link=0>1:delay=0.5:-2",   // negative delay
		"link=0>1:rate=0",         // rate must be positive
		"link=0>1:rate=-5",        // negative rate
		"link=x>1:drop=0.1",       // bad src node
		"link=0>900:drop=0.1",     // node out of range
		"link=0>1:drop=0.1;link=0>1:dup=0.1", // duplicate link rule
		"part=0|2",                // no window
		"part=0@100-200",          // one node set
		"part=0|@100-200",         // empty set
		"part=0|0@100-200",        // node on both sides
		"part=0+0|1@100-200",      // repeated node in a set
		"part=0|1@200-100",        // window ends before it starts
		"part=0|1@200-200",        // empty window
		"part=0|1@abc-200",        // non-numeric window
		"part=*|1@100-200",        // wildcard in a partition set
		"vmfault=1",               // no spec
		"vmfault=1:",              // empty spec
		"vmfault=0:drop=0.1",      // host is not a member VM
		"vmfault=x:drop=0.1",      // bad VM id
		"vmfault=1:warp=0.5",      // bad inner spec
		"vmfault=1:drop=0.1;vmfault=1:dup=0.1", // duplicate vmfault
		"drop=nope",               // bad base clause
	} {
		if _, err := ParseFleet(spec); err == nil {
			t.Errorf("ParseFleet(%q) accepted a malformed spec", spec)
		}
	}
}

func TestLinkRuleMatches(t *testing.T) {
	r := LinkRule{Src: WildcardNode, Dst: 2}
	if !r.Matches(0, 2) || !r.Matches(7, 2) || r.Matches(0, 1) {
		t.Errorf("wildcard-src match broken")
	}
	exact := LinkRule{Src: 1, Dst: 0}
	if !exact.Matches(1, 0) || exact.Matches(0, 1) {
		t.Errorf("exact match broken")
	}
}

func TestMergePlans(t *testing.T) {
	base := Plan{Drop: 0.1, Jitter: 50, Spurious: []Spurious{{Level: 7, MeanGap: 100}}}
	over := Plan{Drop: 0.3, RingFull: 0.2, Storms: []Storm{{Level: 3, At: 10, Count: 1, Gap: 1}}}
	m := Merge(base, over)
	if m.Drop != 0.3 {
		t.Errorf("Drop = %v, want the overlay's 0.3", m.Drop)
	}
	if m.Jitter != 50 {
		t.Errorf("Jitter = %v, want the base's 50", m.Jitter)
	}
	if m.RingFull != 0.2 {
		t.Errorf("RingFull = %v, want 0.2", m.RingFull)
	}
	if len(m.Spurious) != 1 || len(m.Storms) != 1 {
		t.Errorf("schedule lists did not concatenate: %+v", m)
	}
	// Merge must not alias the inputs' slices.
	m.Spurious[0].Level = 1
	if base.Spurious[0].Level != 7 {
		t.Error("Merge aliased the base plan's Spurious slice")
	}
}

func TestFleetSpecHelpMentionsEveryClause(t *testing.T) {
	for _, kw := range []string{"link=", "part=", "vmfault=", "rate=", "reorder="} {
		if !strings.Contains(FleetSpecHelp, kw) {
			t.Errorf("FleetSpecHelp does not document %q", kw)
		}
	}
}
