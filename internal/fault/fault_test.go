package fault

import (
	"bytes"
	"reflect"
	"testing"
)

func TestParseFullSpec(t *testing.T) {
	p, err := Parse("drop=0.2,corrupt=0.05,dup=0.1,delay=0.5:800,ringfull=0.3," +
		"jitter=120,spurious=7:50000,storm=1@2000:40x100,buserr=disk@3,buserr=net@7")
	if err != nil {
		t.Fatal(err)
	}
	want := Plan{
		Drop: 0.2, Corrupt: 0.05, Dup: 0.1, Delay: 0.5, RingFull: 0.3,
		DelayCycles: 800, Jitter: 120,
		Spurious:    []Spurious{{Level: 7, MeanGap: 50000}},
		Storms:      []Storm{{Level: 1, At: 2000, Count: 40, Gap: 100}},
		BusErrs:     []BusErr{{Dev: "disk", Nth: 3}, {Dev: "net", Nth: 7}},
	}
	if !reflect.DeepEqual(p, want) {
		t.Fatalf("Parse = %+v, want %+v", p, want)
	}
}

func TestParseRejectsMalformedSpecs(t *testing.T) {
	for _, spec := range []string{
		"drop",            // no value
		"drop=",           // empty value
		"drop=1.5",        // probability out of range
		"drop=NaN",        // NaN sneaks past naive range checks
		"drop=two",        // non-numeric probability
		"corrupt=-0.1",    // negative probability
		"dup=1.01",        // just past the top of the range
		"ringfull=-1",     // negative probability
		"jitter=abc",      // non-numeric cycles
		"jitter=-5",       // negative cycles
		"delay=0.5",       // missing cycle count
		"delay=0.5:",      // empty cycle count
		"delay=2:100",     // probability out of range
		"spurious=9:100",  // IPL out of range (high)
		"spurious=0:100",  // IPL out of range (low)
		"spurious=7",      // missing gap
		"spurious=7:0",    // zero mean gap
		"storm=1@100:5",   // missing gap
		"storm=1@100:0x5", // zero count
		"storm=1@100:-2x5",   // negative count
		"storm=8@100:5x10",   // IPL out of range
		"storm=1:100:5x10",   // missing @
		"buserr=disk",     // missing access index
		"buserr=disk@0",   // access index is 1-based
		"buserr=disk@x",   // non-numeric access index
		"buserr=@3",       // empty device
		"warp=0.5",        // unknown kind
		"drop=0.1,warp=1", // good item does not mask a bad one
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", spec)
		}
	}
}

// TestParseRepeatedItems pins the documented accumulate/last-wins
// semantics: scalar knobs take the last value, schedule items stack.
func TestParseRepeatedItems(t *testing.T) {
	p, err := Parse("drop=0.1,drop=0.3,spurious=7:100,spurious=6:200,buserr=disk@1,buserr=disk@2")
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.3 {
		t.Errorf("Drop = %v, want the last value 0.3", p.Drop)
	}
	if len(p.Spurious) != 2 || len(p.BusErrs) != 2 {
		t.Errorf("schedule items did not accumulate: %+v", p)
	}
}

func TestParseEmptyItemsIgnored(t *testing.T) {
	p, err := Parse(" drop=0.1, ,")
	if err != nil {
		t.Fatal(err)
	}
	if p.Drop != 0.1 {
		t.Fatalf("Drop = %v, want 0.1", p.Drop)
	}
}

// TestSeedDeterminism: the same plan and seed must perturb an
// identical frame sequence identically — a failing soak run replays.
func TestSeedDeterminism(t *testing.T) {
	run := func() ([][]byte, Stats) {
		inj := New(Plan{Drop: 0.3, Corrupt: 0.3, Dup: 0.2, Delay: 0.5, DelayCycles: 64}, 99)
		var out [][]byte
		for i := 0; i < 200; i++ {
			frame := bytes.Repeat([]byte{byte(i)}, 40)
			fs, _ := inj.Frame(frame)
			out = append(out, fs...)
		}
		return out, inj.Stats
	}
	a, sa := run()
	b, sb := run()
	if sa != sb {
		t.Fatalf("stats diverged: %+v vs %+v", sa, sb)
	}
	if len(a) != len(b) {
		t.Fatalf("output frame counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("frame %d diverged", i)
		}
	}
	if sa.Dropped == 0 || sa.Corrupted == 0 || sa.Duplicated == 0 || sa.Delayed == 0 {
		t.Fatalf("plan injected nothing: %+v", sa)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	drops := func(seed int64) uint64 {
		inj := New(Plan{Drop: 0.5}, seed)
		for i := 0; i < 400; i++ {
			inj.Frame([]byte{1, 2, 3, 4})
		}
		return inj.Stats.Dropped
	}
	if drops(1) == drops(2) && drops(3) == drops(4) && drops(1) == drops(3) {
		t.Fatal("four seeds produced identical drop counts; rng looks unseeded")
	}
}

// TestCorruptionIsChecksumDetectable: corruption must never touch the
// 8 address bytes, so a corrupt frame always fails the checksum
// rather than being misrouted.
func TestCorruptionIsChecksumDetectable(t *testing.T) {
	inj := New(Plan{Corrupt: 1}, 5)
	orig := []byte{9, 9, 9, 9, 8, 8, 8, 8, 7, 7, 7, 7, 1, 2, 3, 4}
	for i := 0; i < 100; i++ {
		out, _ := inj.Frame(orig)
		if len(out) != 1 {
			t.Fatalf("want 1 frame, got %d", len(out))
		}
		f := out[0]
		if !bytes.Equal(f[:8], orig[:8]) {
			t.Fatalf("corruption touched the address words: % x", f[:8])
		}
		if bytes.Equal(f, orig) {
			t.Fatalf("corrupt=1 left the frame intact")
		}
	}
	if inj.Stats.Corrupted != 100 {
		t.Fatalf("Corrupted = %d, want 100", inj.Stats.Corrupted)
	}
}

// TestStormSchedule: a storm asserts exactly Count interrupts at its
// level, spaced by Gap, starting at At.
func TestStormSchedule(t *testing.T) {
	inj := New(Plan{Storms: []Storm{{Level: 3, At: 100, Count: 4, Gap: 50}}}, 1)
	var fired []uint64
	for now := uint64(0); now < 1000; now++ {
		irq, _ := inj.Tick(now)
		if irq != 0 {
			if irq != 3 {
				t.Fatalf("cycle %d: level %d, want 3", now, irq)
			}
			fired = append(fired, now)
		}
	}
	want := []uint64{100, 150, 200, 250}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("storm fired at %v, want %v", fired, want)
	}
	if inj.Stats.StormUp != 4 {
		t.Fatalf("StormUp = %d, want 4", inj.Stats.StormUp)
	}
	if next := nextOf(inj, 1000); next != 0 {
		t.Fatalf("exhausted storm still schedules an event at %d", next)
	}
}

func nextOf(inj *Injector, now uint64) uint64 {
	_, next := inj.Tick(now)
	return next
}

// TestSpuriousSchedule: spurious interrupts arrive at the configured
// level with gaps near the configured mean.
func TestSpuriousSchedule(t *testing.T) {
	inj := New(Plan{Spurious: []Spurious{{Level: 5, MeanGap: 100}}}, 7)
	count := 0
	for now := uint64(0); now < 100_000; now++ {
		irq, _ := inj.Tick(now)
		if irq != 0 {
			if irq != 5 {
				t.Fatalf("cycle %d: level %d, want 5", now, irq)
			}
			count++
		}
	}
	// Mean gap 100 over 100k cycles: expect ~1000, allow a wide band.
	if count < 500 || count > 2000 {
		t.Fatalf("spurious count = %d over 100k cycles, want ~1000", count)
	}
	if uint64(count) != inj.Stats.SpuriousUp {
		t.Fatalf("SpuriousUp = %d, fired %d", inj.Stats.SpuriousUp, count)
	}
}

// TestBusErrorOneShot: the Nth access faults exactly once.
func TestBusErrorOneShot(t *testing.T) {
	inj := New(Plan{BusErrs: []BusErr{{Dev: "fault", Nth: 3}}}, 1)
	var faults []int
	for i := 1; i <= 10; i++ {
		if inj.AccessFault(inj, 0, false) { // the injector is itself a named Device
			faults = append(faults, i)
		}
	}
	if !reflect.DeepEqual(faults, []int{3}) {
		t.Fatalf("faulted on accesses %v, want [3]", faults)
	}
	if inj.Stats.BusErrors != 1 {
		t.Fatalf("BusErrors = %d, want 1", inj.Stats.BusErrors)
	}
}

func TestRingFullForcing(t *testing.T) {
	inj := New(Plan{RingFull: 1}, 1)
	if !inj.RingFull() {
		t.Fatal("RingFull=1 did not force a full ring")
	}
	inj2 := New(Plan{}, 1)
	if inj2.RingFull() {
		t.Fatal("empty plan forced a full ring")
	}
}

func TestTimerJitter(t *testing.T) {
	inj := New(Plan{Jitter: 50}, 3)
	varied := false
	for i := 0; i < 50; i++ {
		got := inj.TimerArm(1000)
		if got < 1000 || got >= 1050 {
			t.Fatalf("TimerArm(1000) = %d, want [1000,1050)", got)
		}
		if got != 1000 {
			varied = true
		}
	}
	if !varied {
		t.Fatal("jitter never moved an arming")
	}
	if got := New(Plan{}, 3).TimerArm(1000); got != 1000 {
		t.Fatalf("no-jitter plan changed an arming to %d", got)
	}
}

func TestFromSpecRoundTrip(t *testing.T) {
	inj, err := FromSpec("drop=0.25,jitter=16", 11)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Plan.Drop != 0.25 || inj.Plan.Jitter != 16 {
		t.Fatalf("FromSpec plan = %+v", inj.Plan)
	}
	if _, err := FromSpec("drop=nope", 11); err == nil {
		t.Fatal("FromSpec accepted a malformed spec")
	}
}
