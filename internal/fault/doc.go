// Package fault is the deterministic fault-injection plane. It plugs
// into the m68k device layer the same way prof.Probe plugs into the
// step loop: a nil-checked hook (Machine.Inj) that costs nothing when
// absent. An Injector perturbs the device view of the world — losing,
// corrupting, duplicating and delaying NIC frames, raising bus errors
// on device-window accesses, firing spurious interrupts and interrupt
// storms at a chosen IPL, jittering the interval timer, and forcing
// packet-ring-full conditions — while the kernel under test must keep
// serving. Every random draw comes from one seeded source, so a fault
// schedule replays exactly: a failing soak run is a repro, not an
// anecdote.
//
// Schedules are built programmatically (the typed Spurious, Storm,
// BusErr, ... specs) or parsed from the compact command-line grammar
// shared by quamon and synbench's -faults flag (see SpecHelp and
// FromSpec), e.g. "spurious=7:20000,buserr=disk@3". The injector's
// Stats and the kernel's recovery counters (kernel.spurious_irq,
// kio.net.recovery_events, ...) land in the metrics registry, so a
// seeded soak can assert both that faults fired and that the kernel
// absorbed them — `make soak` is exactly that, under the race
// detector.
package fault
