package net

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
)

func TestFrameCodecRoundTrip(t *testing.T) {
	p := []byte("fabric payload")
	f := Frame{Dst: MakeAddr(3, 0x1234), Src: MakeAddr(HostNode, 0x77), Sum: Checksum(p), Payload: p}
	b := EncodeFrame(f)
	if len(b) != HeaderBytes+len(p) {
		t.Fatalf("encoded length = %d, want %d", len(b), HeaderBytes+len(p))
	}
	g, ok := DecodeFrame(b)
	if !ok {
		t.Fatal("DecodeFrame rejected a valid frame")
	}
	if g.Dst != f.Dst || g.Src != f.Src || g.Sum != f.Sum || !bytes.Equal(g.Payload, f.Payload) {
		t.Fatalf("round trip lost data: %+v vs %+v", g, f)
	}
	// Header layout is the VM-plane convention: big-endian long words.
	if b[0] != 0x03 || b[1] != 0x00 || b[2] != 0x12 || b[3] != 0x34 {
		t.Fatalf("Dst word bytes = % x, want big-endian node|port", b[:4])
	}
	if _, ok := DecodeFrame(b[:HeaderBytes-1]); ok {
		t.Fatal("DecodeFrame accepted a truncated header")
	}
	// A bare header decodes to an empty payload.
	if g, ok := DecodeFrame(EncodeFrame(Frame{Dst: 1})); !ok || len(g.Payload) != 0 {
		t.Fatalf("bare header decode = %+v, %v", g, ok)
	}
}

func TestFabricAddressing(t *testing.T) {
	cases := []struct {
		node int
		port uint32
	}{
		{HostNode, 0},
		{HostNode, 42},
		{1, 5},
		{8, 0xffffff}, // full 24-bit port space
		{MaxNodes, 7},
	}
	for _, c := range cases {
		a := MakeAddr(c.node, c.port)
		if NodeOf(a) != c.node || PortOf(a) != c.port {
			t.Errorf("MakeAddr(%d, %#x) -> node %d port %#x", c.node, c.port, NodeOf(a), PortOf(a))
		}
	}
	// A plain port (no node tag) addresses the host side.
	if NodeOf(9) != HostNode || PortOf(9) != 9 {
		t.Errorf("plain port 9 -> node %d port %d", NodeOf(9), PortOf(9))
	}
	// MakeAddr masks an oversize port rather than corrupting the node.
	if a := MakeAddr(2, 0x01ffffff); NodeOf(a) != 2 {
		t.Errorf("oversize port leaked into node byte: node %d", NodeOf(a))
	}
}

// PutBurst partial-failure semantics: a burst that does not fit is
// dropped whole — no prefix of it lands in the ring — and every frame
// of the failed burst is counted as a drop. Frames already in the ring
// are untouched.
func TestPutBurstPartialFailure(t *testing.T) {
	r := NewPacketRing(8)
	for i := 0; i < 5; i++ {
		if !r.Put(Frame{Src: 100, Dst: uint32(i)}) {
			t.Fatalf("warm-up put %d failed", i)
		}
	}

	// 5 occupied + burst of 4 > 8 slots: the burst must fail whole.
	burst := make([]Frame, 4)
	for i := range burst {
		burst[i] = Frame{Src: 1, Dst: uint32(i)}
	}
	if r.PutBurst(burst) {
		t.Fatal("oversized burst accepted")
	}
	if r.Len() != 5 {
		t.Fatalf("ring len after failed burst = %d, want 5 (no partial deposit)", r.Len())
	}
	if r.Drops() != uint64(len(burst)) {
		t.Fatalf("drops after failed burst = %d, want %d", r.Drops(), len(burst))
	}

	// A burst that exactly fills the remaining space succeeds whole.
	fit := make([]Frame, 3)
	for i := range fit {
		fit[i] = Frame{Src: 2, Dst: uint32(i)}
	}
	if !r.PutBurst(fit) {
		t.Fatal("exact-fit burst rejected")
	}
	if r.Len() != 8 {
		t.Fatalf("ring len = %d, want 8", r.Len())
	}

	// Ring full: single put drops too, and counts exactly one.
	if r.Put(Frame{Src: 3}) {
		t.Fatal("put into a full ring succeeded")
	}
	if r.Drops() != uint64(len(burst))+1 {
		t.Fatalf("drops = %d, want %d", r.Drops(), len(burst)+1)
	}

	// Drain: the 5 originals then the fitting burst, nothing from the
	// failed burst.
	for i := 0; i < 5; i++ {
		f, ok := r.Get()
		if !ok || f.Src != 100 {
			t.Fatalf("drained frame %d = %+v, %v; want original", i, f, ok)
		}
	}
	for i := 0; i < 3; i++ {
		f, ok := r.Get()
		if !ok || f.Src != 2 || f.Dst != uint32(i) {
			t.Fatalf("drained burst frame %d = %+v, %v", i, f, ok)
		}
	}
	if _, ok := r.Get(); ok {
		t.Fatal("ring not empty after drain: failed burst left a frame behind")
	}

	// Empty burst is a trivially successful no-op.
	if !r.PutBurst(nil) {
		t.Fatal("empty burst rejected")
	}
}

// NewPair cross-wire delivery under concurrent senders: many sockets
// on stack A all sending to sockets on stack B (and one reverse-path
// sender) while receivers drain concurrently. Checks per-sender
// ordering, zero loss (receivers keep rings from filling), and no
// cross-socket leakage. Run under -race: this is the demux path the
// fabric leans on.
func TestNewPairConcurrentSenders(t *testing.T) {
	const (
		senders = 6
		perSend = 500
		slots   = 64
	)
	sa, sb := NewPair()

	type pair struct{ tx, rx *Socket }
	conns := make([]pair, senders)
	for i := range conns {
		lp, rp := uint32(100+i), uint32(200+i)
		tx, err := sa.Open(lp, rp, slots)
		if err != nil {
			t.Fatal(err)
		}
		rx, err := sb.Open(rp, lp, slots)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = pair{tx, rx}
	}
	// Reverse-path pair: B sends to A across the same wire at the same
	// time, so both stacks demux under concurrent load.
	revTx, err := sb.Open(9, 8, slots)
	if err != nil {
		t.Fatal(err)
	}
	revRx, err := sa.Open(8, 9, slots)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(2)
		go func(id int, sk *Socket) {
			defer wg.Done()
			for seq := 0; seq < perSend; seq++ {
				p := []byte{byte(id), byte(seq), byte(seq >> 8)}
				for sk.rx == nil || conns[id].rx.rx.Len() >= slots-senders {
					runtime.Gosched()
				}
				if err := conns[id].tx.Send(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, c.tx)
		go func(id int, sk *Socket) {
			defer wg.Done()
			for seq := 0; seq < perSend; seq++ {
				p := sk.Recv()
				if p == nil {
					t.Errorf("conn %d: closed early at seq %d", id, seq)
					return
				}
				if int(p[0]) != id {
					t.Errorf("conn %d: received frame for sender %d (cross-socket leak)", id, p[0])
					return
				}
				if got := int(p[1]) | int(p[2])<<8; got != seq {
					t.Errorf("conn %d: seq %d arrived, want %d", id, got, seq)
					return
				}
			}
		}(i, c.rx)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for seq := 0; seq < perSend; seq++ {
			for revRx.rx.Len() >= slots-1 {
				runtime.Gosched()
			}
			if err := revTx.Send([]byte{0xee, byte(seq), byte(seq >> 8)}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for seq := 0; seq < perSend; seq++ {
			p := revRx.Recv()
			if p == nil || p[0] != 0xee {
				t.Errorf("reverse path broke at seq %d: %v", seq, p)
				return
			}
			if got := int(p[1]) | int(p[2])<<8; got != seq {
				t.Errorf("reverse path seq %d, want %d", got, seq)
				return
			}
		}
	}()
	wg.Wait()

	if sa.Drops() != 0 || sb.Drops() != 0 {
		t.Errorf("stack drops = %d/%d, want 0 (all ports bound)", sa.Drops(), sb.Drops())
	}
	for i, c := range conns {
		if c.rx.Drops() != 0 || c.rx.Errs() != 0 {
			t.Errorf("conn %d: rx drops=%d errs=%d", i, c.rx.Drops(), c.rx.Errs())
		}
	}
}
