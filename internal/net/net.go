// Package net is the Synthesis-style network subsystem's Go plane:
// datagram frames, the optimistic MPSC packet ring that receive
// contexts deposit into (Figure 2's queue discipline applied to
// packets instead of bytes), and a loopback stack connecting sockets
// by port.
//
// The package also owns the wire format shared with the VM plane: the
// kio network server and the sunos baseline lay out frames in machine
// memory exactly as described by the constants below, so the two
// planes agree on what a frame is.
package net

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"synthesis/internal/queue"
)

// Wire format: a frame is a 12-byte header — destination port, source
// port and payload checksum, each a 32-bit word so synthesized
// Quamachine code handles them with single long moves — followed by up
// to MTU payload bytes.
const (
	HeaderBytes = 12
	MTU         = 240
	FrameMax    = HeaderBytes + MTU
)

// Checksum is the wire checksum: the 32-bit sum of the payload taken
// as big-endian long words, the last word zero-padded on the right.
// Long-wise so the VM planes compute it at one add per long — the
// synthesized send folds it into the staging copy (Collapsing Layers),
// the generic baseline runs it as its own layer.
func Checksum(p []byte) uint32 {
	var sum uint32
	for i := 0; i < len(p); i += 4 {
		var w uint32
		for j := 0; j < 4 && i+j < len(p); j++ {
			w |= uint32(p[i+j]) << uint(24-8*j)
		}
		sum += w
	}
	return sum
}

// Frame is one datagram.
type Frame struct {
	Dst, Src uint32
	Sum      uint32 // Checksum of Payload
	Payload  []byte
}

// PacketRing is the optimistic multiple-producer single-consumer
// frame queue: any number of senders and interrupt contexts may Put
// concurrently; exactly one consumer Gets.
type PacketRing struct {
	q     *queue.MPSC[Frame]
	drops atomic.Uint64
}

// NewPacketRing creates a ring holding up to slots frames.
func NewPacketRing(slots int) *PacketRing {
	return &PacketRing{q: queue.NewMPSC[Frame](slots)}
}

// Put deposits one frame, dropping it (and counting the drop) when
// the ring is full — receive contexts never block.
func (r *PacketRing) Put(f Frame) bool {
	if r.q.TryPut(f) {
		return true
	}
	r.drops.Add(1)
	return false
}

// PutBurst atomically deposits a batch of frames — the interrupt
// batching case: one claim covers the whole burst. The burst is
// dropped whole when it does not fit.
func (r *PacketRing) PutBurst(fs []Frame) bool {
	if r.q.PutBatch(fs) {
		return true
	}
	r.drops.Add(uint64(len(fs)))
	return false
}

// Get removes the oldest frame; ok is false when the ring is empty
// (or the tail slot is claimed but not yet filled).
func (r *PacketRing) Get() (Frame, bool) { return r.q.TryGet() }

// Len reports the approximate depth.
func (r *PacketRing) Len() int { return r.q.Len() }

// Cap reports the ring capacity.
func (r *PacketRing) Cap() int { return r.q.Cap() }

// Drops reports how many frames were discarded at a full ring.
func (r *PacketRing) Drops() uint64 { return r.drops.Load() }

// ---------------------------------------------------------------------

// Stack is one machine's network stack: a port table of open sockets
// and a loopback link to a peer stack (possibly itself).
type Stack struct {
	mu    sync.Mutex
	peer  *Stack
	socks map[uint32]*Socket
	drops atomic.Uint64
	fault WireFault
}

// WireFault models a lossy link in the Go plane: it sees every frame
// in transit and reports whether the frame still arrives; it may also
// corrupt the frame in place (the receive side's checksum verify
// catches that). Used by fault soak tests to stress the concurrent
// receive path under the race detector.
type WireFault func(f *Frame) bool

// SetWireFault installs (or, with nil, removes) the stack's lossy
// link.
func (s *Stack) SetWireFault(f WireFault) {
	s.mu.Lock()
	s.fault = f
	s.mu.Unlock()
}

// NewLoopback creates a stack looped onto itself: two sockets on the
// same stack exchange frames.
func NewLoopback() *Stack {
	s := &Stack{socks: make(map[uint32]*Socket)}
	s.peer = s
	return s
}

// NewPair creates two cross-wired stacks ("two machines").
func NewPair() (*Stack, *Stack) {
	a := &Stack{socks: make(map[uint32]*Socket)}
	b := &Stack{socks: make(map[uint32]*Socket)}
	a.peer, b.peer = b, a
	return a, b
}

// Drops reports frames that arrived for a port nobody had open.
func (s *Stack) Drops() uint64 { return s.drops.Load() }

// Socket is a connected datagram endpoint.
type Socket struct {
	stack         *Stack
	Local, Remote uint32
	rx            *PacketRing
	avail         chan struct{}
	closed        atomic.Bool
	errs          atomic.Uint64 // frames dropped on checksum mismatch
}

// ErrPortInUse reports an Open on an already-bound local port.
var ErrPortInUse = errors.New("net: local port in use")

// Open binds a socket to a local port, connected to a remote port on
// the peer stack; slots sizes its receive ring.
func (s *Stack) Open(local, remote uint32, slots int) (*Socket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, busy := s.socks[local]; busy {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, local)
	}
	sk := &Socket{
		stack:  s,
		Local:  local,
		Remote: remote,
		rx:     NewPacketRing(slots),
		avail:  make(chan struct{}, 1),
	}
	s.socks[local] = sk
	return sk, nil
}

// deliver demultiplexes one arriving frame to the bound socket,
// dropping (and counting, per socket) frames whose checksum no longer
// matches their payload.
func (s *Stack) deliver(f Frame) {
	s.mu.Lock()
	sk := s.socks[f.Dst]
	fault := s.fault
	s.mu.Unlock()
	if fault != nil && !fault(&f) {
		s.drops.Add(1)
		return
	}
	if sk == nil {
		s.drops.Add(1)
		return
	}
	if f.Sum != Checksum(f.Payload) {
		sk.errs.Add(1)
		return
	}
	sk.rx.Put(f)
	select {
	case sk.avail <- struct{}{}:
	default:
	}
}

// Send transmits a payload to the socket's connected remote port.
func (sk *Socket) Send(p []byte) error {
	if sk.closed.Load() {
		return errors.New("net: send on closed socket")
	}
	if len(p) > MTU {
		p = p[:MTU]
	}
	f := Frame{Dst: sk.Remote, Src: sk.Local, Sum: Checksum(p), Payload: append([]byte(nil), p...)}
	sk.stack.peer.deliver(f)
	return nil
}

// TryRecv returns the next payload without blocking.
func (sk *Socket) TryRecv() ([]byte, bool) {
	f, ok := sk.rx.Get()
	if !ok {
		return nil, false
	}
	return f.Payload, true
}

// Recv blocks until a frame arrives and returns its payload, or nil
// once the socket is closed and drained.
func (sk *Socket) Recv() []byte {
	for {
		if p, ok := sk.TryRecv(); ok {
			return p
		}
		if sk.closed.Load() {
			return nil
		}
		<-sk.avail
	}
}

// Close unbinds the socket and wakes any blocked receiver.
func (sk *Socket) Close() {
	if sk.closed.Swap(true) {
		return
	}
	s := sk.stack
	s.mu.Lock()
	if s.socks[sk.Local] == sk {
		delete(s.socks, sk.Local)
	}
	s.mu.Unlock()
	select {
	case sk.avail <- struct{}{}:
	default:
	}
}

// Drops reports frames discarded at this socket's full receive ring.
func (sk *Socket) Drops() uint64 { return sk.rx.Drops() }

// Errs reports frames dropped at this socket for checksum mismatch.
func (sk *Socket) Errs() uint64 { return sk.errs.Load() }
