package net

import (
	"runtime"
	"sync"
	"testing"
)

// TestPacketRingNoLossNoDup is the MPSC property test: N goroutine
// producers racing single-frame puts, plus an "interrupt context"
// producer depositing atomic bursts (the receive-handler batching
// case), against a single consumer. Every frame put must be got
// exactly once, in per-producer order. Run under -race.
func TestPacketRingNoLossNoDup(t *testing.T) {
	const (
		producers = 8
		perProd   = 800
		burstProd = producers // id of the burst producer
		burstLen  = 16
		bursts    = perProd / burstLen
	)
	r := NewPacketRing(64)

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(id uint32) {
			defer wg.Done()
			for seq := uint32(0); seq < perProd; seq++ {
				f := Frame{Dst: 1, Src: id, Payload: []byte{byte(seq), byte(seq >> 8)}}
				for !r.Put(f) {
					// Ring full: the device would drop; the test
					// re-offers so accounting stays exact.
					runtime.Gosched()
				}
			}
		}(uint32(p))
	}
	// The interrupt-context producer: whole bursts claimed with one
	// CAS, slots filled while other producers fill theirs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := uint32(0)
		for b := 0; b < bursts; b++ {
			fs := make([]Frame, burstLen)
			for i := range fs {
				fs[i] = Frame{Dst: 1, Src: burstProd, Payload: []byte{byte(seq), byte(seq >> 8)}}
				seq++
			}
			for !r.PutBurst(fs) {
				runtime.Gosched()
			}
		}
	}()

	total := producers*perProd + bursts*burstLen
	next := make([]uint32, producers+1) // expected next sequence per producer
	got := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for got < total {
			f, ok := r.Get()
			if !ok {
				runtime.Gosched()
				continue
			}
			seq := uint32(f.Payload[0]) | uint32(f.Payload[1])<<8
			if f.Src > producers {
				t.Errorf("frame from unknown producer %d", f.Src)
				return
			}
			if seq != next[f.Src] {
				t.Errorf("producer %d: got seq %d, want %d (lost or duplicated)", f.Src, seq, next[f.Src])
				return
			}
			next[f.Src]++
			got++
		}
	}()
	wg.Wait()
	<-done

	if got != total {
		t.Fatalf("consumed %d frames, want %d", got, total)
	}
	for p, n := range next {
		if n != perProd {
			t.Errorf("producer %d: %d frames consumed, want %d", p, n, perProd)
		}
	}
	// Every failed Put/PutBurst above counted a drop and was
	// re-offered, so nothing was lost; the counter only proves the
	// full-ring path was exercised.
}

// TestBurstAtomicity checks that a burst's frames occupy consecutive
// positions: with single-frame producers racing against bursts, each
// burst must still come out contiguous.
func TestBurstAtomicity(t *testing.T) {
	r := NewPacketRing(64)
	const bursts, burstLen = 200, 8

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // noise producer
		defer wg.Done()
		for i := 0; i < bursts*burstLen; i++ {
			for !r.Put(Frame{Src: 99}) {
				runtime.Gosched()
			}
		}
	}()
	go func() { // burst producer
		defer wg.Done()
		for b := 0; b < bursts; b++ {
			fs := make([]Frame, burstLen)
			for i := range fs {
				fs[i] = Frame{Src: 1, Dst: uint32(b*burstLen + i)}
			}
			for !r.PutBurst(fs) {
				runtime.Gosched()
			}
		}
	}()

	total := 2 * bursts * burstLen
	want := uint32(0) // next expected burst element
	for got := 0; got < total; {
		f, ok := r.Get()
		if !ok {
			runtime.Gosched()
			continue
		}
		got++
		if f.Src != 1 {
			continue
		}
		if f.Dst != want {
			t.Fatalf("burst element %d arrived, want %d: burst interleaved", f.Dst, want)
		}
		want++
		// Within a burst, the next element must be the very next frame
		// out of the ring (contiguity).
		for want%burstLen != 0 {
			g, ok := r.Get()
			if !ok {
				runtime.Gosched()
				continue
			}
			got++
			if g.Src != 1 || g.Dst != want {
				t.Fatalf("burst broken at element %d", want)
			}
			want++
		}
	}
	wg.Wait()
}

func TestStackLoopback(t *testing.T) {
	s := NewLoopback()
	a, err := s.Open(5, 9, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Open(9, 5, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(5, 1, 8); err == nil {
		t.Fatal("double bind of port 5 succeeded")
	}

	if err := a.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if got := b.Recv(); string(got) != "ping" {
		t.Fatalf("b received %q", got)
	}
	if err := b.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got := a.Recv(); string(got) != "pong" {
		t.Fatalf("a received %q", got)
	}

	// Frames for an unbound port are dropped and counted.
	c, _ := s.Open(7, 4242, 8)
	c.Send([]byte("void"))
	if s.Drops() != 1 {
		t.Fatalf("stack drops = %d, want 1", s.Drops())
	}
}

func TestStackPairConcurrent(t *testing.T) {
	sa, sb := NewPair()
	a, err := sa.Open(1, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sb.Open(2, 1, 32)
	if err != nil {
		t.Fatal(err)
	}

	const n = 1000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			p := []byte{byte(i), byte(i >> 8)}
			for b.rx.Len() >= b.rx.Cap()-1 {
				// Keep the receiver ahead so nothing drops.
				runtime.Gosched()
			}
			if err := a.Send(p); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		p := b.Recv()
		if got := int(p[0]) | int(p[1])<<8; got != i {
			t.Fatalf("frame %d arrived as %d", i, got)
		}
	}
	wg.Wait()

	a.Close()
	if err := a.Send([]byte("x")); err == nil {
		t.Fatal("send on closed socket succeeded")
	}
	b.Close()
	if p := b.Recv(); p != nil {
		t.Fatalf("recv on closed empty socket returned %q", p)
	}
}
