package net

import "encoding/binary"

// Frame bytes: the Go-plane codec for the 12-byte wire header that
// synthesized VM code lays out in machine memory. The fabric uses it
// to lift frames out of one Quamachine's NIC and inject them into
// another's receive ring without either kernel knowing the difference
// from a directly cross-wired peer.

// EncodeFrame renders a frame in wire layout: Dst, Src, Sum as
// big-endian long words followed by the payload.
func EncodeFrame(f Frame) []byte {
	b := make([]byte, HeaderBytes+len(f.Payload))
	binary.BigEndian.PutUint32(b[0:], f.Dst)
	binary.BigEndian.PutUint32(b[4:], f.Src)
	binary.BigEndian.PutUint32(b[8:], f.Sum)
	copy(b[HeaderBytes:], f.Payload)
	return b
}

// DecodeFrame parses wire bytes back into a frame. ok is false when
// the buffer is shorter than a header. The payload aliases b.
func DecodeFrame(b []byte) (Frame, bool) {
	if len(b) < HeaderBytes {
		return Frame{}, false
	}
	return Frame{
		Dst:     binary.BigEndian.Uint32(b[0:]),
		Src:     binary.BigEndian.Uint32(b[4:]),
		Sum:     binary.BigEndian.Uint32(b[8:]),
		Payload: b[HeaderBytes:],
	}, true
}

// Fabric addressing: a cluster address packs a node id into the high
// byte of the 32-bit port word, leaving 24 bits of port space — the
// kio port compare chains never see the node byte because the fabric
// pops it before injecting a frame into the destination VM. Node 0 is
// the host (the load generator); VM nodes are 1-based.
const (
	NodeShift = 24
	NodeMask  = uint32(0xff) << NodeShift
	PortMask  = ^NodeMask

	// HostNode addresses the load generator on the fabric.
	HostNode = 0

	// MaxNodes bounds the node id space (8 bits, node 0 reserved).
	MaxNodes = 255
)

// MakeAddr packs a (node, port) fabric address.
func MakeAddr(node int, port uint32) uint32 {
	return uint32(node)<<NodeShift | port&PortMask
}

// NodeOf extracts the node id from a fabric address.
func NodeOf(addr uint32) int { return int(addr >> NodeShift) }

// PortOf strips the node tag, leaving the plain port a kio socket
// demux matches against.
func PortOf(addr uint32) uint32 { return addr & PortMask }
