package alloc_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"synthesis/internal/alloc"
)

func TestAllocBasic(t *testing.T) {
	h := alloc.New(0x1000, 0x1000)
	a, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a < 0x1000 || a >= 0x2000 {
		t.Errorf("block %#x outside arena", a)
	}
	if a%alloc.Align != 0 {
		t.Errorf("block %#x not aligned", a)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if h.FreeBytes() != 0x1000 {
		t.Errorf("free bytes = %#x after full free, want 0x1000", h.FreeBytes())
	}
	if h.FreeBlocks() != 1 {
		t.Errorf("free blocks = %d, want 1 (coalesced)", h.FreeBlocks())
	}
}

func TestAllocExhaustion(t *testing.T) {
	h := alloc.New(0, 256)
	var got []uint32
	for {
		a, err := h.Alloc(64)
		if err != nil {
			break
		}
		got = append(got, a)
	}
	if len(got) != 4 {
		t.Errorf("allocated %d blocks of 64 from 256 bytes, want 4", len(got))
	}
	if _, err := h.Alloc(1); err == nil {
		t.Error("allocation from exhausted heap succeeded")
	}
	for _, a := range got {
		if err := h.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	if a, err := h.Alloc(256); err != nil || a != 0 {
		t.Errorf("full-arena alloc after frees = (%#x, %v)", a, err)
	}
}

func TestDoubleFreeRejected(t *testing.T) {
	h := alloc.New(0, 1024)
	a, _ := h.Alloc(16)
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a); err == nil {
		t.Error("double free accepted")
	}
	if err := h.Free(0xdead0); err == nil {
		t.Error("free of wild pointer accepted")
	}
}

func TestNoOverlapProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := alloc.New(0x2000, 64*1024)
		live := make(map[uint32]uint32)
		for op := 0; op < 500; op++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				n := uint32(rng.Intn(1024) + 1)
				a, err := h.Alloc(n)
				if err != nil {
					continue
				}
				// Overlap check against every live block.
				sz, _ := h.SizeOf(a)
				for b, bn := range live {
					if a < b+bn && b < a+sz {
						t.Logf("seed %d: block [%#x,%#x) overlaps [%#x,%#x)", seed, a, a+sz, b, b+bn)
						return false
					}
				}
				if a < 0x2000 || a+sz > 0x2000+64*1024 {
					t.Logf("seed %d: block [%#x,%#x) outside arena", seed, a, a+sz)
					return false
				}
				live[a] = sz
			} else {
				for a := range live {
					if err := h.Free(a); err != nil {
						t.Logf("seed %d: free failed: %v", seed, err)
						return false
					}
					delete(live, a)
					break
				}
			}
		}
		// Conservation: free + live == arena.
		var liveBytes uint32
		for _, n := range live {
			liveBytes += n
		}
		if h.FreeBytes()+liveBytes != 64*1024 {
			t.Logf("seed %d: leak: free %d + live %d != %d", seed, h.FreeBytes(), liveBytes, 64*1024)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalescingRestoresArena(t *testing.T) {
	h := alloc.New(0, 4096)
	var blocks []uint32
	for i := 0; i < 16; i++ {
		a, err := h.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, a)
	}
	// Free in a scrambled order; the result must still coalesce to
	// one block.
	order := []int{3, 9, 1, 15, 0, 7, 12, 5, 11, 2, 8, 14, 4, 10, 6, 13}
	for _, i := range order {
		if err := h.Free(blocks[i]); err != nil {
			t.Fatal(err)
		}
	}
	if h.FreeBlocks() != 1 {
		t.Errorf("free blocks = %d after freeing everything, want 1", h.FreeBlocks())
	}
}

func TestRandomizedTraversalSpreads(t *testing.T) {
	// With randomized traversal, freeing one early block and one late
	// block then allocating twice should not always pick the earliest
	// block first. Rather than depend on the PRNG, just verify the
	// allocator remains correct and that stats advance.
	h := alloc.New(0, 1<<20)
	var addrs []uint32
	for i := 0; i < 100; i++ {
		a, err := h.Alloc(1000)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for i := 0; i < 100; i += 2 {
		h.Free(addrs[i])
	}
	for i := 0; i < 40; i++ {
		if _, err := h.Alloc(900); err != nil {
			t.Fatalf("alloc %d failed: %v", i, err)
		}
	}
	if h.Allocs != 140 || h.Frees != 50 {
		t.Errorf("stats: %d allocs, %d frees", h.Allocs, h.Frees)
	}
	if h.Searched == 0 {
		t.Error("search statistics did not advance")
	}
}
