// Package alloc is the Synthesis kernel's memory allocator: Section
// 6.3 notes that "the memory allocation routine is an executable data
// structure implementing a fast-fit heap with randomized traversal
// added". This implementation manages a region of Quamachine memory
// for the kernel (TTEs, queue buffers, file data, quaspaces).
//
// Free space is kept in an address-ordered list of blocks with
// immediate coalescing; allocation starts from a roving, pseudo-
// randomly advanced position in the list ("randomized traversal"),
// which spreads allocations across the arena and keeps the expected
// search length short — the fast-fit property — instead of piling
// small blocks at the front the way naive first-fit does.
package alloc

import (
	"errors"
	"fmt"
)

// ErrNoMemory is returned when no free block can satisfy a request.
var ErrNoMemory = errors.New("alloc: out of memory")

// Align is the allocation granularity in bytes.
const Align = 8

type block struct {
	addr uint32
	size uint32
}

// Heap manages [base, base+size) of some address space.
type Heap struct {
	base uint32
	size uint32
	free []block // address-ordered free blocks
	used map[uint32]uint32
	rov  uint32 // roving randomized start, linear-congruential state

	// Statistics.
	Allocs   uint64
	Frees    uint64
	Searched uint64 // blocks examined across all allocations
}

// New creates a heap over [base, base+size).
func New(base, size uint32) *Heap {
	size &^= Align - 1
	return &Heap{
		base: base,
		size: size,
		free: []block{{addr: base, size: size}},
		used: make(map[uint32]uint32),
		rov:  base | 1,
	}
}

// Base returns the start of the managed region.
func (h *Heap) Base() uint32 { return h.base }

// Size returns the size of the managed region.
func (h *Heap) Size() uint32 { return h.size }

// FreeBytes returns the total free space.
func (h *Heap) FreeBytes() uint32 {
	var n uint32
	for _, b := range h.free {
		n += b.size
	}
	return n
}

// FreeBlocks returns the current fragmentation (number of free
// blocks).
func (h *Heap) FreeBlocks() int { return len(h.free) }

// nextRov advances the randomized roving index.
func (h *Heap) nextRov() uint32 {
	// Small LCG; only the traversal start position depends on it, so
	// quality hardly matters — it just needs to jump around.
	h.rov = h.rov*1664525 + 1013904223
	return h.rov
}

// Alloc reserves n bytes and returns the block address.
func (h *Heap) Alloc(n uint32) (uint32, error) {
	if n == 0 {
		n = Align
	}
	n = (n + Align - 1) &^ (Align - 1)
	if len(h.free) == 0 {
		return 0, ErrNoMemory
	}
	// Randomized traversal: start the first-fit scan at a pseudo-
	// random position in the free list and wrap.
	start := int(h.nextRov() % uint32(len(h.free)))
	for k := 0; k < len(h.free); k++ {
		i := (start + k) % len(h.free)
		h.Searched++
		if h.free[i].size >= n {
			addr := h.free[i].addr
			if h.free[i].size == n {
				h.free = append(h.free[:i], h.free[i+1:]...)
			} else {
				h.free[i].addr += n
				h.free[i].size -= n
			}
			h.used[addr] = n
			h.Allocs++
			return addr, nil
		}
	}
	return 0, ErrNoMemory
}

// Free releases a block returned by Alloc, coalescing with free
// neighbours.
func (h *Heap) Free(addr uint32) error {
	n, ok := h.used[addr]
	if !ok {
		return fmt.Errorf("alloc: free of unallocated address %#x", addr)
	}
	delete(h.used, addr)
	h.Frees++
	// Insert in address order.
	lo, hi := 0, len(h.free)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.free[mid].addr < addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.free = append(h.free, block{})
	copy(h.free[lo+1:], h.free[lo:])
	h.free[lo] = block{addr: addr, size: n}
	// Coalesce with successor.
	if lo+1 < len(h.free) && h.free[lo].addr+h.free[lo].size == h.free[lo+1].addr {
		h.free[lo].size += h.free[lo+1].size
		h.free = append(h.free[:lo+1], h.free[lo+2:]...)
	}
	// Coalesce with predecessor.
	if lo > 0 && h.free[lo-1].addr+h.free[lo-1].size == h.free[lo].addr {
		h.free[lo-1].size += h.free[lo].size
		h.free = append(h.free[:lo], h.free[lo+1:]...)
	}
	return nil
}

// SizeOf returns the allocated size of a live block.
func (h *Heap) SizeOf(addr uint32) (uint32, bool) {
	n, ok := h.used[addr]
	return n, ok
}
