package kernel

import (
	"synthesis/internal/fs"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// Shared kernel routines, synthesized at boot. Unlike the per-thread
// procedures these are used by every thread ("although in principle
// each thread may have a completely different set of interrupt
// handlers, currently the majority of them are shared by all
// threads", Section 5.3).
//
// Register conventions:
//   - system calls (trap #1) may clobber D0-D2 and A0-A1; D0 (and D1
//     for pipe) carry results;
//   - ready-queue routines (unlink/insert/wake) clobber D0 and A1 and
//     take their TTE/cell argument in A0; they mask interrupts around
//     the ring surgery and restore the caller's level (the ring is
//     the one structure shared by every context, so Code Isolation
//     cannot apply to it; a raised IPL is the uniprocessor equivalent
//     of the paper's brief critical sections);
//   - interrupt handlers save and restore every register they touch.

const srIPLMask = 0x0700

// synthesizeShared builds all shared routines and the prototype
// vector table.
func (k *Kernel) synthesizeShared() {
	c := k.C
	m := k.M

	kq := c.NewQuaject("kernel-shared")

	// --- panic stub: any unexpected exception lands here.
	k.rtPanicVec = c.Synthesize(kq, "panic", nil, func(e *synth.Emitter) {
		e.Kcall(SvcPanic)
		e.Halt()
	})

	// --- unlink: remove the TTE in A0 from the ready ring and steer
	// its predecessor's switch chain past it. This is the core of
	// block, stop and destroy — Table 5's "Block thread: 4 usec".
	k.rtUnlink = c.Synthesize(kq, "rq_unlink", nil, func(e *synth.Emitter) {
		e.MoveFromSR(m68k.PreDec(7))
		e.OrSR(srIPLMask)
		// Not in the ring (TTENext == 0)? Nothing to do: unlink and
		// insert are idempotent, so stop/start cannot corrupt the
		// ring however callers pair them.
		e.Tst(4, m68k.Disp(TTENext, 0))
		e.Beq("out")
		e.MoveL(m68k.A(2), m68k.PreDec(7))
		e.MoveL(m68k.Disp(TTENext, 0), m68k.A(1)) // next
		e.MoveL(m68k.Disp(TTEPrev, 0), m68k.A(2)) // prev
		e.MoveL(m68k.A(1), m68k.Disp(TTENext, 2)) // prev.next = next
		e.MoveL(m68k.A(2), m68k.Disp(TTEPrev, 1)) // next.prev = prev
		e.Tst(4, m68k.Disp(TTEULimit, 1))         // quaspace change needed?
		e.Beq("plain")
		e.MoveL(m68k.Disp(TTESwinMMU, 1), m68k.D(0))
		e.Bra("store")
		e.Label("plain")
		e.MoveL(m68k.Disp(TTESwinPtr, 1), m68k.D(0))
		e.Label("store")
		e.MoveL(m68k.D(0), m68k.Disp(TTENextSw, 2)) // prev jumps past us now
		e.Clr(4, m68k.Disp(TTENext, 0))             // mark unlinked
		e.MoveL(m68k.PostInc(7), m68k.A(2))
		e.Label("out")
		e.MoveToSR(m68k.PostInc(7))
		e.Rts()
	})

	// --- insert: put the TTE in A0 right after the current thread —
	// the front of the ready queue, "giving it immediate access to
	// the CPU" (Section 4.4). Table 4's "Unblock thread: 4 usec".
	k.rtInsert = c.Synthesize(kq, "rq_insert", nil, func(e *synth.Emitter) {
		e.MoveFromSR(m68k.PreDec(7))
		e.OrSR(srIPLMask)
		// Already in the ring? A second start must not splice the
		// TTE in twice.
		e.Tst(4, m68k.Disp(TTENext, 0))
		e.Bne("out")
		e.MoveL(m68k.A(2), m68k.PreDec(7))
		e.MoveL(m68k.Abs(GCurTTE), m68k.A(1))     // cur
		e.MoveL(m68k.Disp(TTENext, 1), m68k.A(2)) // oldnext
		e.MoveL(m68k.A(2), m68k.Disp(TTENext, 0))
		e.MoveL(m68k.A(1), m68k.Disp(TTEPrev, 0))
		e.MoveL(m68k.A(0), m68k.Disp(TTENext, 1))
		e.MoveL(m68k.A(0), m68k.Disp(TTEPrev, 2))
		e.Clr(4, m68k.Disp(TTEWaitsOn, 0))
		// cur.nextsw = entry(new)
		e.Tst(4, m68k.Disp(TTEULimit, 0))
		e.Beq("p1")
		e.MoveL(m68k.Disp(TTESwinMMU, 0), m68k.D(0))
		e.Bra("s1")
		e.Label("p1")
		e.MoveL(m68k.Disp(TTESwinPtr, 0), m68k.D(0))
		e.Label("s1")
		e.MoveL(m68k.D(0), m68k.Disp(TTENextSw, 1))
		// new.nextsw = entry(oldnext)
		e.Tst(4, m68k.Disp(TTEULimit, 2))
		e.Beq("p2")
		e.MoveL(m68k.Disp(TTESwinMMU, 2), m68k.D(0))
		e.Bra("s2")
		e.Label("p2")
		e.MoveL(m68k.Disp(TTESwinPtr, 2), m68k.D(0))
		e.Label("s2")
		e.MoveL(m68k.D(0), m68k.Disp(TTENextSw, 0))
		e.MoveL(m68k.PostInc(7), m68k.A(2))
		e.Label("out")
		e.MoveToSR(m68k.PostInc(7))
		e.Rts()
	})

	// --- leaveRing: remove the current thread from the ready ring,
	// inserting the idle thread first if the ring would empty.
	// Preserves A0; clobbers D0 and A1. Every self-removal path
	// (block, stop-self, exit, trace-stop) goes through here.
	k.rtLeave = c.Synthesize(kq, "rq_leave", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Abs(GCurTTE), m68k.A(1))
		e.Cmp(4, m68k.Disp(TTENext, 1), m68k.A(1)) // alone?
		e.Bne("notalone")
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.Abs(GIdleTTE), m68k.A(0))
		e.Jsr(k.rtInsert)
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.MoveL(m68k.Abs(GCurTTE), m68k.A(1))
		e.Label("notalone")
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.A(1), m68k.A(0))
		e.Jsr(k.rtUnlink)
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.Rts()
	})

	// --- blockOn: park the current thread on the single-waiter cell
	// in A0 and switch away. Resumed when some wake path re-inserts
	// it. "Spreading the waiting threads makes blocking and
	// unblocking faster. Since we have eliminated the general blocked
	// queue, we do not have to traverse it" (Section 4.1).
	k.rtBlockOn = c.Synthesize(kq, "block_on", nil, func(e *synth.Emitter) {
		// The whole park runs with interrupts masked, cell-arm through
		// context save. A wake interrupt landing half-way would either
		// find the cell armed while the thread is still in the ring (a
		// lost wakeup) or — after rq_leave, before the switch trap —
		// find GCurTTE pointing at a TTE already unlinked, and the
		// ISR's rq_insert would splice against its zeroed TTENext and
		// poison the ring. The trap's stacked SR carries the mask
		// through the park; the caller's level is restored on resume.
		e.MoveFromSR(m68k.PreDec(7))
		e.OrSR(srIPLMask)
		e.MoveL(m68k.Abs(GCurTTE), m68k.A(1))
		e.MoveL(m68k.A(1), m68k.Ind(0)) // cell = self
		e.MoveL(m68k.A(0), m68k.Disp(TTEWaitsOn, 1))
		e.Jsr(k.rtLeave)
		e.Trap(TrapSwitch)          // save context, run someone else
		e.MoveToSR(m68k.PostInc(7)) // resumed here after wake
		e.Rts()
	})

	// --- wakeCell: unblock the thread parked on the cell in A0, if
	// any. Interrupt handlers chain this to hand data to waiting
	// threads.
	k.rtWakeCell = c.Synthesize(kq, "wake_cell", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Ind(0), m68k.D(0))
		e.Beq("empty")
		e.Clr(4, m68k.Ind(0))
		e.MoveL(m68k.D(0), m68k.A(0))
		e.Jsr(k.rtInsert)
		e.Label("empty")
		e.Rts()
	})

	// --- procedure chaining (Section 3.1): serialize a procedure
	// after the current handler by swapping the return address on the
	// stack. Caller is a handler with the exception frame directly
	// above its JSR return address: [ret][SR][PC].
	k.rtChain = c.Synthesize(kq, "chain_proc", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Disp(8, 7), m68k.D(0)) // original resume PC
		e.MoveL(m68k.D(0), m68k.Abs(GChainPC))
		e.MoveL(m68k.D(1), m68k.Disp(8, 7)) // resume into the chained proc
		e.Rts()
	})

	// The optimistic variant: claim the frame slot with a compare-
	// and-swap and retry on interference (Table 5: 4 usec without,
	// 7 usec with one retry).
	k.rtChainCAS = c.Synthesize(kq, "chain_proc_cas", nil, func(e *synth.Emitter) {
		e.Label("retry")
		e.MoveL(m68k.Disp(8, 7), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Abs(GChainPC))
		e.Cas(4, 0, 1, m68k.Disp(8, 7))
		e.Bne("retry")
		e.Rts()
	})

	// --- signal return (trap #3): resume at the interrupted PC
	// stashed by signal delivery.
	k.rtSigRet = c.Synthesize(kq, "sig_return", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.MoveL(m68k.Abs(GCurTTE), m68k.A(0))
		e.MoveL(m68k.Disp(TTESigOld, 0), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Disp(12, 7)) // frame PC slot
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.Rte()
	})

	// --- trace handler: implements the step system call. The traced
	// instruction has executed; stop the thread where it stands. The
	// trace bit stays set in the stacked SR, so each subsequent
	// start/step resumes for exactly one more instruction.
	k.rtTraceStop = c.Synthesize(kq, "trace_stop", nil, func(e *synth.Emitter) {
		// Masked across leave-ring -> switch (see block_on); the Rte
		// restores the traced thread's own level on restart.
		e.OrSR(srIPLMask)
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.Jsr(k.rtLeave)
		e.Kcall(SvcTrace)
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.Trap(TrapSwitch) // park; restart continues below
		e.Rte()
	})

	// --- alarm interrupt (IRQ 2): dispatch to the registered
	// procedure (Table 5: "Alarm interrupt: 7 usec").
	k.rtAlarm = c.Synthesize(kq, "alarm_int", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.MoveL(m68k.Abs(GAlarmProc), m68k.D(0))
		e.Beq("none")
		e.JsrVia(m68k.Abs(GAlarmProc))
		e.Label("none")
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.Rte()
	})

	// --- error traps (Section 4.3): reflect synchronous faults into
	// a user-mode error signal; with no handler registered, panic.
	// Frame after the two saves: [D0][A0][SR][PC].
	k.rtErrTrap = c.Synthesize(kq, "error_trap", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.MoveL(m68k.Abs(GCurTTE), m68k.A(0))
		e.TstL(m68k.Disp(TTEErrPC, 0))
		e.Beq("panic")
		e.MoveL(m68k.Disp(12, 7), m68k.D(0)) // faulting PC
		e.MoveL(m68k.D(0), m68k.Disp(TTESigOld, 0))
		e.MoveL(m68k.Disp(TTEErrPC, 0), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Disp(12, 7)) // return-from-exception enters the handler
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.Rte()
		e.Label("panic")
		e.Kcall(SvcPanic)
		e.Halt()
	})

	// --- bus/address error: the asynchronous-world variant of the
	// error trap. A thread that touches a bad bus address with a
	// handler registered gets the same reflection as rtErrTrap; one
	// without a handler is reaped — the fault kills the thread, not
	// the machine. The kill path is the exit path of the system-call
	// dispatcher with SvcThreadFault doing the bookkeeping (and
	// recording the post-mortem) in place of SvcExit.
	k.rtBusTrap = c.Synthesize(kq, "bus_trap", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.MoveL(m68k.Abs(GCurTTE), m68k.A(0))
		e.TstL(m68k.Disp(TTEErrPC, 0))
		e.Beq("kill")
		e.MoveL(m68k.Disp(12, 7), m68k.D(0)) // faulting PC
		e.MoveL(m68k.D(0), m68k.Disp(TTESigOld, 0))
		e.MoveL(m68k.Disp(TTEErrPC, 0), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Disp(12, 7)) // return-from-exception enters the handler
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.Rte()
		e.Label("kill")
		e.Kcall(SvcThreadFault) // reads the frame: [D0][A0][SR][PC]
		e.Tst(4, m68k.Abs(GLiveThreads))
		e.Bne("killsw")
		e.Halt() // the faulting thread was the last one
		e.Label("killsw")
		e.OrSR(srIPLMask) // masked across leave-ring -> switch (see block_on)
		e.MoveL(m68k.Abs(GCurTTE), m68k.A(0))
		e.MoveL(m68k.A(0), m68k.D(1))
		e.Jsr(k.rtLeave)
		e.Kcall(SvcFreeTTE)
		e.Trap(TrapSwitch) // never resumed
		e.Halt()
	})

	// --- spurious interrupt: an interrupt at a level no driver has
	// claimed. Count it and return; glitching buses are weather, not
	// an emergency.
	k.rtSpurious = c.Synthesize(kq, "spurious_int", nil, func(e *synth.Emitter) {
		e.AddL(m68k.Imm(1), m68k.Abs(GSpuriousIRQ))
		e.Rte()
	})

	// --- line-F: first FP use; resynthesize the thread's context
	// switch with FP save/restore and retry the instruction.
	k.rtLineF = c.Synthesize(kq, "linef_fp", nil, func(e *synth.Emitter) {
		e.Kcall(SvcFPResynth)
		e.Rte()
	})

	// The prototype vector table address is folded into kcreate's
	// copy loop as a synthesis-time invariant, so it must be
	// allocated before the routines are synthesized.
	k.protoVec = k.alloc(m68k.NumVectors * 4)

	k.rtLookup = k.synthesizeLookup(kq)
	k.rtCreate = k.synthesizeCreate(kq)
	k.rtSysDisp = k.synthesizeDispatch(kq)
	for v := 0; v < m68k.NumVectors; v++ {
		m.Poke(k.protoVec+uint32(v)*4, 4, k.rtPanicVec)
	}
	set := func(vec int, addr uint32) { m.Poke(k.protoVec+uint32(vec)*4, 4, addr) }
	// Interrupt levels default to the spurious counter; drivers that
	// claim a level (alarm below, the I/O layer via ProtoVectors)
	// overwrite their slot.
	for lvl := 1; lvl <= 7; lvl++ {
		set(m68k.VecAutovector+lvl, k.rtSpurious)
	}
	set(m68k.VecTrapBase+TrapSys, k.rtSysDisp)
	set(m68k.VecTrapBase+TrapSig, k.rtSigRet)
	set(m68k.VecAutovector+m68k.IRQAlarm, k.rtAlarm)
	set(m68k.VecTrace, k.rtTraceStop)
	set(m68k.VecLineF, k.rtLineF)
	set(m68k.VecBusError, k.rtBusTrap)
	set(m68k.VecAddressError, k.rtBusTrap)
	set(m68k.VecIllegal, k.rtErrTrap)
	set(m68k.VecZeroDivide, k.rtErrTrap)
	set(m68k.VecPrivilege, k.rtErrTrap)
}

// synthesizeLookup builds the open path's name resolution: hash the
// NUL-terminated name at D1 backwards, walk the bucket chain and
// compare names backwards ("hashed string names stored backwards",
// Section 6.3 — reversed comparison rejects long-common-prefix names
// like /dev/null vs /dev/tty at the first byte). Returns the
// directory entry address in D0, or 0. Clobbers D0, D2, A0, A1;
// preserves D1 (the dispatcher passes it on to the open service).
func (k *Kernel) synthesizeLookup(kq *synth.Quaject) uint32 {
	return k.C.Synthesize(kq, "fs_lookup", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.D(3), m68k.PreDec(7))
		e.MoveL(m68k.D(4), m68k.PreDec(7))

		// strlen: D0 = length.
		e.MoveL(m68k.D(1), m68k.A(0))
		e.Label("len")
		e.Tst(1, m68k.PostInc(0))
		e.Bne("len")
		e.MoveL(m68k.A(0), m68k.D(0))
		e.SubL(m68k.D(1), m68k.D(0))
		e.SubL(m68k.Imm(1), m68k.D(0))
		e.Beq("miss") // empty name never matches

		// hash backwards: h(D2) = (h<<2) ^ byte, last byte first.
		// (The char register is cleared once; byte moves leave the
		// upper bits alone.)
		e.Lea(m68k.Disp(-1, 0), 0) // A0 just past the last character
		e.Clr(4, m68k.D(2))
		e.Clr(4, m68k.D(4))
		e.MoveL(m68k.D(0), m68k.D(3))
		e.SubL(m68k.Imm(1), m68k.D(3)) // dbra counter
		e.Label("hash")
		e.MoveB(m68k.PreDec(0), m68k.D(4))
		e.LslL(m68k.Imm(2), m68k.D(2))
		e.EorL(m68k.D(4), m68k.D(2))
		e.Dbra(3, "hash")
		// Fold the word so the early (last-character) contributions
		// reach the bucket bits.
		for _, sh := range []int32{6, 12, 18} {
			e.MoveL(m68k.D(2), m68k.D(4))
			e.LsrL(m68k.Imm(sh), m68k.D(4))
			e.EorL(m68k.D(4), m68k.D(2))
		}
		e.AndL(m68k.Imm(fs.NBuckets-1), m68k.D(2))

		// A0 = first entry of the bucket chain.
		e.LslL(m68k.Imm(2), m68k.D(2))
		e.AddL(m68k.Imm(int32(k.FS.Buckets)), m68k.D(2)) // bucket table base: a boot-time invariant, folded in
		e.MoveL(m68k.D(2), m68k.A(0))
		e.MoveL(m68k.Ind(0), m68k.A(0))

		// Walk the chain.
		e.Label("walk")
		e.MoveL(m68k.A(0), m68k.D(2))
		e.Beq("miss")
		e.Cmp(4, m68k.Disp(fs.EntNameLen, 0), m68k.D(0))
		e.Bne("next")
		// Compare backwards: entry name is stored reversed, so walk
		// it forward while walking the looked-up name from its end.
		e.MoveL(m68k.A(0), m68k.PreDec(7)) // save entry
		e.Lea(m68k.Disp(fs.EntName, 0), 1)
		e.MoveL(m68k.D(1), m68k.A(0))
		e.AddL(m68k.D(0), m68k.Operand{Mode: m68k.ModeAReg, Reg: 0}) // A0 = name + len
		e.MoveL(m68k.D(0), m68k.D(3))
		e.SubL(m68k.Imm(1), m68k.D(3)) // dbra counter (len >= 1 here)
		e.Label("cmp")
		e.MoveB(m68k.PreDec(0), m68k.D(4))
		e.Cmp(1, m68k.PostInc(1), m68k.D(4))
		e.Bne("nextpop")
		e.Dbra(3, "cmp")
		e.MoveL(m68k.PostInc(7), m68k.D(0)) // result: entry address
		e.Bra("out")
		e.Label("nextpop")
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.Label("next")
		e.MoveL(m68k.Disp(fs.EntNext, 0), m68k.A(0))
		e.Bra("walk")
		e.Label("miss")
		e.Clr(4, m68k.D(0))
		e.Label("out")
		e.MoveL(m68k.PostInc(7), m68k.D(4))
		e.MoveL(m68k.PostInc(7), m68k.D(3))
		e.Rts()
	})
}

// synthesizeCreate builds kcreate: the measured thread-creation path.
// "Of these, about 100 [microseconds] are needed to fill
// approximately 1KBytes in the TTE and the rest are used by code
// synthesis" (Section 6.3). D1 = entry PC, D2 = user stack; returns
// the new TTE address in D0.
func (k *Kernel) synthesizeCreate(kq *synth.Quaject) uint32 {
	return k.C.Synthesize(kq, "kcreate", nil, func(e *synth.Emitter) {
		e.Kcall(SvcAllocTTE) // D0 = raw TTE memory
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		// Fill the non-vector part of the TTE with unrolled clears
		// (the vector area is overwritten by the copy right after).
		e.MoveL(m68k.D(0), m68k.A(0))
		e.MoveL(m68k.Imm(TTEVec/16-1), m68k.D(0))
		e.Label("clr1")
		for i := 0; i < 4; i++ {
			e.Clr(4, m68k.PostInc(0))
		}
		e.Dbra(0, "clr1")
		e.MoveL(m68k.Ind(7), m68k.A(0))
		e.Lea(m68k.Disp(TTEVec+m68k.VectorTableBytes, 0), 0)
		e.MoveL(m68k.Imm((TTESize-TTEVec-m68k.VectorTableBytes)/16-1), m68k.D(0))
		e.Label("clr2")
		for i := 0; i < 4; i++ {
			e.Clr(4, m68k.PostInc(0))
		}
		e.Dbra(0, "clr2")
		// Copy the prototype vector table into the TTE, unrolled.
		e.MoveL(m68k.Ind(7), m68k.A(1))
		e.Lea(m68k.Disp(TTEVec, 1), 1)
		e.Lea(m68k.Abs(k.protoVec), 0)
		e.MoveL(m68k.Imm(m68k.NumVectors/4-1), m68k.D(0))
		e.Label("cpy")
		for i := 0; i < 4; i++ {
			e.MoveL(m68k.PostInc(0), m68k.PostInc(1))
		}
		e.Dbra(0, "cpy")
		// Register: Go wires the fields and synthesizes (and charges)
		// the per-thread procedures.
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.Kcall(SvcRegister)
		e.Rts()
	})
}

// synthesizeDispatch builds the trap #1 native system call
// dispatcher.
func (k *Kernel) synthesizeDispatch(kq *synth.Quaject) uint32 {
	timerAlarm := int32(m68k.TimerBase + m68k.TimerRegAlarm)
	return k.C.Synthesize(kq, "sys_dispatch", nil, func(e *synth.Emitter) {
		cases := []struct {
			fn    int32
			label string
		}{
			{SysOpen, "open"}, {SysClose, "close"}, {SysCreate, "create"},
			{SysDestroy, "destroy"}, {SysStop, "stop"}, {SysStart, "start"},
			{SysStep, "step"}, {SysSignal, "signal"}, {SysSetAlarm, "alarm"},
			{SysExit, "exit"}, {SysPipe, "pipe"}, {SysYield, "yield"},
			{SysSeek, "seek"}, {SysSock, "sock"},
		}
		for _, cs := range cases {
			e.Cmp(4, m68k.Imm(cs.fn), m68k.D(0))
			e.Beq(cs.label)
		}
		e.Kcall(SvcPanic)
		e.Halt()

		e.Label("open")
		e.Jsr(k.rtLookup)
		e.TstL(m68k.D(0))
		e.Beq("openmiss")
		e.Kcall(SvcOpen) // D1 = name; returns D0 = fd (synthesis charged)
		e.Rte()
		e.Label("openmiss")
		e.MoveL(m68k.Imm(-1), m68k.D(0))
		e.Rte()

		e.Label("close")
		e.Kcall(SvcClose)
		e.Rte()

		e.Label("create")
		e.Jsr(k.rtCreate)
		e.Rte()

		e.Label("destroy")
		e.MoveL(m68k.D(1), m68k.A(0))
		e.Cmp(4, m68k.Abs(GCurTTE), m68k.D(1))
		e.Beq("selfdestroy")
		e.Jsr(k.rtUnlink)
		e.Kcall(SvcFreeTTE)
		e.Rte()
		e.Label("selfdestroy")
		e.OrSR(srIPLMask) // masked across leave-ring -> switch (see block_on)
		e.Jsr(k.rtLeave)
		e.Kcall(SvcFreeTTE)
		e.Trap(TrapSwitch) // never resumed
		e.Halt()

		e.Label("stop")
		e.MoveL(m68k.D(1), m68k.A(0))
		e.Cmp(4, m68k.Abs(GCurTTE), m68k.D(1))
		e.Beq("stopself")
		e.Jsr(k.rtUnlink)
		e.Rte()
		e.Label("stopself")
		e.OrSR(srIPLMask) // masked across leave-ring -> switch (see block_on)
		e.Jsr(k.rtLeave)
		e.Trap(TrapSwitch) // parked until start
		e.Rte()           // restores the caller's SR, and with it the level

		e.Label("start")
		e.MoveL(m68k.D(1), m68k.A(0))
		e.Jsr(k.rtInsert)
		e.Rte()

		e.Label("step")
		// Arm the trace bit in the target's stacked SR and let it
		// run: it executes one instruction and the trace handler
		// stops it again (Section 4.3).
		e.MoveL(m68k.D(1), m68k.A(0))
		e.MoveL(m68k.Disp(TTESSP, 0), m68k.A(1))
		e.OrL(m68k.Imm(int32(m68k.FlagT)), m68k.Ind(1))
		e.Jsr(k.rtInsert)
		e.Rte()

		e.Label("signal")
		// "The signal system call alters the general registers area
		// of the receiving thread's TTE to make the receiving thread
		// call the signal handler when activated" — here: rewrite the
		// resume PC in the target's saved exception frame.
		e.MoveL(m68k.D(1), m68k.A(0))
		e.MoveL(m68k.Disp(TTESSP, 0), m68k.A(1))
		e.MoveL(m68k.Disp(4, 1), m68k.D(0)) // saved resume PC
		e.MoveL(m68k.D(0), m68k.Disp(TTESigOld, 0))
		e.MoveL(m68k.D(2), m68k.Disp(4, 1)) // resume into the handler
		e.Rte()

		e.Label("alarm")
		// D1 = cycles until alarm, D2 = procedure. Table 5: "Set
		// alarm: 9 usec".
		e.MoveL(m68k.D(2), m68k.Abs(GAlarmProc))
		e.MoveL(m68k.D(1), m68k.Abs(uint32(timerAlarm)))
		e.Rte()

		e.Label("exit")
		e.Kcall(SvcExit)
		e.Tst(4, m68k.Abs(GLiveThreads))
		e.Bne("exitsw")
		e.Halt() // simulation over: every user thread is done
		e.Label("exitsw")
		e.OrSR(srIPLMask) // masked across leave-ring -> switch (see block_on)
		e.MoveL(m68k.Abs(GCurTTE), m68k.A(0))
		e.MoveL(m68k.A(0), m68k.D(1))
		e.Jsr(k.rtLeave)
		e.Kcall(SvcFreeTTE)
		e.Trap(TrapSwitch)
		e.Halt()

		e.Label("pipe")
		e.Kcall(SvcPipe)
		e.Rte()

		e.Label("sock")
		e.Kcall(SvcSock)
		e.Rte()

		e.Label("yield")
		e.Trap(TrapSwitch)
		e.Rte()

		e.Label("seek")
		// Set the descriptor's position cell: curTTE + fd table +
		// fd*slot + pos.
		e.MoveL(m68k.Abs(GCurTTE), m68k.A(0))
		e.LslL(m68k.Imm(5), m68k.D(1)) // fd * FDSlotSize(32)
		e.AddL(m68k.D(1), m68k.A(0))
		e.MoveL(m68k.D(2), m68k.Disp(TTEFDBase+FDPos, 0))
		e.MoveL(m68k.D(2), m68k.D(0))
		e.Rte()
	})
}
