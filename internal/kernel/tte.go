package kernel

import (
	"fmt"

	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// This file builds threads: the TTE in machine memory plus the
// per-thread synthesized procedures of Figure 3 — context-switch-out
// and context-switch-in (with and without the quaspace change), and
// the lazy floating-point variant installed by resynthesis after the
// first FP trap (Section 4.2).

// perThreadCodeSlots reserves room in code space for one thread's
// switch procedures, sized for the largest (FP + MMU) variants so
// resynthesis happens in place.
const perThreadCodeSlots = 48

// preSlots reserves the quantum-preemption prologue (sw_out.pre) at
// the head of each thread's code region.
const preSlots = 10

// deferQuantumCycles re-arms the quantum when preemption is deferred
// because the quantum caught an interrupt handler mid-flight: short,
// so the switch happens at the first unmasked instruction boundary
// after the handler completes.
const deferQuantumCycles = 200

// newThread allocates and initializes a thread entirely from the
// host (used at boot and by tests; the measured creation path runs
// through the kcreate VM routine instead, which does the microsecond-
// expensive filling as machine code and then calls finishCreate).
func (k *Kernel) newThread(name string, ubase, ulimit uint32, kernelMode bool) *Thread {
	tte := k.alloc(TTESize + kstackSize)
	// Host-side fill (the VM path pays for this with its clear loop).
	for off := uint32(0); off < TTESize; off += 4 {
		k.M.Poke(tte+off, 4, 0)
	}
	k.copyProtoVectors(tte)
	return k.initThread(tte, name, ubase, ulimit, kernelMode)
}

// copyProtoVectors copies the prototype vector table into a TTE.
func (k *Kernel) copyProtoVectors(tte uint32) {
	for i := uint32(0); i < m68k.NumVectors*4; i += 4 {
		k.M.Poke(tte+TTEVec+i, 4, k.M.Peek(k.protoVec+i, 4))
	}
}

// initThread wires the per-thread fields and synthesizes the switch
// procedures. The TTE memory must already be cleared and the vector
// table copied.
func (k *Kernel) initThread(tte uint32, name string, ubase, ulimit uint32, kernelMode bool) *Thread {
	m := k.M
	t := &Thread{
		TTE:      tte,
		Name:     name,
		Q:        k.C.NewQuaject("thread:" + name),
		CodeBase: m.AllocCode(perThreadCodeSlots),
		CodeSize: perThreadCodeSlots,
		KStack:   tte + TTESize + kstackSize,
	}
	k.Threads[tte] = t
	k.mCreates.Inc()

	m.Poke(tte+TTEUBase, 4, ubase)
	m.Poke(tte+TTEULimit, 4, ulimit)
	m.Poke(tte+TTEQuantum, 4, uint32(k.defaultQuantumCycles()))

	// synthesizeSwitch also wires the per-thread vectors (quantum and
	// voluntary-switch) at the thread's own code — Figure 3: "the
	// interrupt is vectored to thread-0's context-switch-out
	// procedure".
	k.synthesizeSwitch(t, false)

	if kernelMode {
		m.Poke(tte+TTEUBase, 4, 0)
		m.Poke(tte+TTEULimit, 4, 0)
	}
	return t
}

// defaultQuantumCycles is the initial CPU quantum: "a typical quantum
// is on the order of a few hundred microseconds" (Section 4.4).
func (k *Kernel) defaultQuantumCycles() uint64 {
	return uint64(500 * k.M.ClockMHz) // 500 microseconds
}

// setEntry builds the thread's initial exception frame so that the
// first switch-in starts it at entry with the given SR.
func (k *Kernel) setEntry(t *Thread, entry, userSP uint32, sr uint16) {
	m := k.M
	ssp := t.KStack - 8
	m.Poke(ssp, 4, uint32(sr)) // stacked SR
	m.Poke(ssp+4, 4, entry)    // stacked PC
	m.Poke(t.TTE+TTESSP, 4, ssp)
	m.Poke(t.TTE+TTEUSP, 4, userSP)
}

// synthesizeSwitch (re)builds the thread's sw_out and sw_in
// procedures in its code region. withFP selects the variant that also
// saves and restores the floating-point context; the default omits it
// and the line-F trap upgrades the thread on first FP use.
func (k *Kernel) synthesizeSwitch(t *Thread, withFP bool) {
	m := k.M
	tte := t.TTE
	fpTrap := int32(1)
	if withFP {
		fpTrap = 0
	}

	// sw_out.pre at CodeBase: the quantum interrupt vectors here, not
	// straight into sw_out. An interrupt handler that wants to run to
	// completion masks as its first instruction, but the quantum can
	// land in the one-instruction window between exception entry and
	// that mask; switching there strands a half-started handler
	// activation while other threads run unmasked, and a fresh device
	// interrupt then races it through the wake and ready-ring paths.
	// So: if the interrupted context was itself at a nonzero
	// interrupt level (the stacked SR's IPL field — bits 0-2 of the
	// byte at sp+2), don't switch. Re-arm a short quantum and resume;
	// the handler finishes, and the deferred quantum preempts the
	// thread at the next unmasked boundary. Registers stay untouched
	// on the defer path, so nothing needs saving.
	pre := t.CodeBase
	swout := t.CodeBase + preSlots
	k.C.Build(t.Q, "sw_out.pre").At(pre, preSlots).Emit(func(e *synth.Emitter) {
		e.Btst(m68k.Imm(0), m68k.Disp(2, 7))
		e.Bne("defer")
		e.Btst(m68k.Imm(1), m68k.Disp(2, 7))
		e.Bne("defer")
		e.Btst(m68k.Imm(2), m68k.Disp(2, 7))
		e.Bne("defer")
		e.Jmp(swout)
		e.Label("defer")
		e.MoveL(m68k.Imm(deferQuantumCycles), m68k.Abs(m68k.TimerBase+m68k.TimerRegQuantum))
		e.Rte()
	})

	// sw_out after the prologue.
	k.C.Build(t.Q, "sw_out").At(swout, 16).Emit(func(e *synth.Emitter) {
		// The whole switch runs with interrupts masked: a quantum
		// interrupt landing mid-switch would re-enter sw_out and
		// overwrite the register save area with transient state. The
		// target thread's RTE restores its own interrupt level.
		e.OrSR(srIPLMask)
		// Save the integer context into the register save area; the
		// TTE address is a synthesis-time constant for this thread
		// (Factoring Invariants), so no pointer is ever chased.
		e.MovemSave(0x7fff, m68k.Abs(tte+TTEReg)) // D0-D7, A0-A6
		e.MovecFrom(m68k.CtrlUSP, m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Abs(tte+TTEUSP))
		if withFP {
			e.FmovemSave(0xff, m68k.Abs(tte+TTEFP))
		}
		e.MoveL(m68k.A(7), m68k.Abs(tte+TTESSP))
		// The executable ready queue: control flows straight to the
		// next thread's switch-in through this TTE cell.
		e.JmpVia(m68k.Abs(tte + TTENextSw))
	})

	// sw_in.mmu then sw_in, contiguous: the mmu entry performs the
	// quaspace change and falls through.
	swinMMU := swout + 16
	k.C.Build(t.Q, "sw_in").At(swinMMU, perThreadCodeSlots-preSlots-16).Emit(func(e *synth.Emitter) {
		e.MovecTo(m68k.CtrlUBase, m68k.Abs(tte+TTEUBase))
		e.MovecTo(m68k.CtrlULimit, m68k.Abs(tte+TTEULimit))
		e.Label("swin")
		e.MoveL(m68k.Imm(int32(tte)), m68k.Abs(GCurTTE))
		e.MovecTo(m68k.CtrlVBR, m68k.Imm(int32(tte+TTEVec)))
		e.MovecTo(m68k.CtrlFPTrap, m68k.Imm(fpTrap))
		// Re-arm the quantum for this thread (fine-grain scheduling
		// adjusts the cell).
		e.MoveL(m68k.Abs(tte+TTEQuantum), m68k.Abs(m68k.TimerBase+m68k.TimerRegQuantum))
		e.MoveL(m68k.Abs(tte+TTEUSP), m68k.D(0))
		e.MovecTo(m68k.CtrlUSP, m68k.D(0))
		if withFP {
			e.FmovemRest(m68k.Abs(tte+TTEFP), 0xff)
		}
		e.MoveL(m68k.Abs(tte+TTESSP), m68k.A(7))
		e.MovemRest(m68k.Abs(tte+TTEReg), 0x7fff)
		e.Rte()
	})
	// The plain sw_in entry skips the two quaspace loads.
	swin := swinMMU + 2

	m.Poke(tte+TTESwoutPt, 4, swout)
	m.Poke(tte+TTESwinMMU, 4, swinMMU)
	m.Poke(tte+TTESwinPtr, 4, swin)
	// Quantum preemption goes through the prologue; the voluntary
	// switch trap (always issued from thread context) skips it.
	m.Poke(tte+TTEVec+uint32(m68k.VecAutovector+m68k.IRQTimer)*4, 4, pre)
	m.Poke(tte+TTEVec+uint32(m68k.VecTrapBase+TrapSwitch)*4, 4, swout)
	t.UsesFP = withFP
}

// resynthesizeFP upgrades the running thread's context switch to the
// floating-point variant: the line-F trap handler calls this (via
// KCALL) the first time the thread touches the FP co-processor. "This
// way, only users of the floating point co-processor will pay for the
// added overhead" (Section 4.2).
func (k *Kernel) resynthesizeFP(t *Thread) {
	if t == nil || t.UsesFP {
		return
	}
	// synthesizeSwitch re-emits in place and re-points the
	// quantum/switch vectors.
	k.synthesizeSwitch(t, true)
	flags := k.M.Peek(t.TTE+TTEFlags, 4)
	k.M.Poke(t.TTE+TTEFlags, 4, flags|TTEFlagFP)
	// The machine must stop trapping FP for this thread right now.
	k.M.FPTrap = false
}

// finishCreate is the KCALL tail of the kcreate VM routine: the VM
// side has allocated (SvcAllocTTE), cleared the TTE and copied the
// prototype vector table; this completes registration and charges the
// synthesis of the new thread's procedures.
func (k *Kernel) finishCreate(tte, entry, userSP uint32) *Thread {
	name := fmt.Sprintf("t%08x", tte)
	parent := k.Cur()
	var ubase, ulimit uint32
	var sr uint16
	if parent != nil {
		// The child shares the creator's quaspace (threads execute
		// in a quaspace; creation does not make a new one).
		ubase = k.M.Peek(parent.TTE+TTEUBase, 4)
		ulimit = k.M.Peek(parent.TTE+TTEULimit, 4)
	}
	if ulimit == 0 {
		sr = m68k.FlagS
	}
	t := k.initThread(tte, name, ubase, ulimit, ulimit == 0)
	k.setEntry(t, entry, userSP, sr)
	return t
}

// linkFirst makes t the sole member of the ready ring (used for the
// idle thread at boot).
func (k *Kernel) linkFirst(t *Thread) {
	m := k.M
	swin := m.Peek(t.TTE+TTESwinPtr, 4)
	m.Poke(t.TTE+TTENext, 4, t.TTE)
	m.Poke(t.TTE+TTEPrev, 4, t.TTE)
	m.Poke(t.TTE+TTENextSw, 4, swin)
	t.Linked = true
}

// Link inserts t into the ready ring after the thread at whose TTE
// `after` points (host-side mirror of the insert routine, for setup
// before the machine runs).
func (k *Kernel) Link(t *Thread, after *Thread) {
	m := k.M
	a, b := after.TTE, t.TTE
	next := m.Peek(a+TTENext, 4)
	m.Poke(b+TTENext, 4, next)
	m.Poke(b+TTEPrev, 4, a)
	m.Poke(a+TTENext, 4, b)
	m.Poke(next+TTEPrev, 4, b)
	m.Poke(a+TTENextSw, 4, k.swinFor(b))
	m.Poke(b+TTENextSw, 4, k.swinFor(next))
	t.Linked = true
}

// swinFor picks the correct switch-in entry for jumping to the thread
// at TTE addr: the mmu entry when it has a quaspace, the plain entry
// otherwise.
func (k *Kernel) swinFor(tte uint32) uint32 {
	if k.M.Peek(tte+TTEULimit, 4) != 0 {
		return k.M.Peek(tte+TTESwinMMU, 4)
	}
	return k.M.Peek(tte+TTESwinPtr, 4)
}
