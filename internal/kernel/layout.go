// Package kernel implements the Synthesis kernel on the Quamachine:
// threads described entirely by their Thread Table Entries (TTEs),
// per-thread synthesized context-switch and system-call routines, the
// executable ready queue of Figure 3, signals and procedure chaining,
// error traps, and the fine-grain round-robin scheduler with
// I/O-rate-adaptive quanta.
//
// Division of labour (DESIGN.md Section 4): every path the paper
// times — context switches, thread operations, traps, interrupt
// handlers, synthesized I/O — executes as Quamachine code and is
// measured on the machine's cycle clock. Kernel bookkeeping that the
// paper does not time (allocator metadata, quaject records) runs in
// Go behind KCALL services; the code synthesizer's own run time is
// charged by the model in synth/cost.go.
package kernel

// Kernel memory map. The boot vector table and kernel globals sit at
// the bottom of memory; everything else (TTEs, stacks, queue buffers,
// file data, quaspaces) comes from the fast-fit heap.
const (
	// BootVBR is the boot vector table used until the first thread
	// runs (threads then carry their own tables).
	BootVBR uint32 = 0x0000_0100

	// Kernel global cells.
	GlobalsBase uint32 = 0x0000_0600

	// GCurTTE holds the TTE address of the running thread, stored by
	// each thread's sw_in with a folded constant (Code Isolation:
	// only the running thread writes it).
	GCurTTE = GlobalsBase + 0

	// GAlarmProc is the procedure the shared alarm interrupt handler
	// dispatches to (set by the set-alarm call).
	GAlarmProc = GlobalsBase + 4

	// GLiveThreads counts runnable user threads; the exit path
	// decrements it and halts the machine at zero (simulation
	// control, not a paper mechanism).
	GLiveThreads = GlobalsBase + 8

	// GIdleTTE holds the idle thread's TTE address.
	GIdleTTE = GlobalsBase + 12

	// GChainPC holds the displaced resume address during procedure
	// chaining; the chained procedure's epilogue jumps through it.
	GChainPC = GlobalsBase + 16

	// GSpuriousIRQ counts interrupts taken at a level no handler has
	// claimed. Real buses glitch; a spurious interrupt is survivable
	// noise, not a kernel bug, so the shared handler counts it and
	// returns instead of panicking.
	GSpuriousIRQ = GlobalsBase + 20

	// HeapBase is where the kernel heap begins.
	HeapBase uint32 = 0x0001_0000
)

// TTE layout (Figure 3). The thread state is completely described by
// its TTE: the register save area, the vector table pointing at the
// thread's own interrupt handlers / error traps / system calls, the
// address-map (quaspace bounds), and the context-switch-in/out
// procedures (which live in code space; the TTE holds their
// addresses). One TTE occupies TTESize bytes — the "approximately
// 1 KBytes" Section 6.3 says thread creation fills.
const (
	TTEReg     = 0   // D0-D7, A0-A6: 15 longs (A7 is saved separately)
	TTESSP     = 60  // saved supervisor stack pointer (the exception frame lives there)
	TTEUSP     = 64  // saved user stack pointer
	TTEVec     = 128 // the thread's vector table (NumVectors * 4 = 256 bytes)
	TTENext    = 384 // ready-queue link: next TTE address
	TTEPrev    = 388 // ready-queue link: previous TTE address
	TTENextSw  = 392 // code address of the NEXT thread's sw_in: the cell sw_out jumps through
	TTEQuantum = 396 // CPU quantum in cycles (fine-grain scheduling adjusts it)
	TTEUBase   = 400 // quaspace lower bound
	TTEULimit  = 404 // quaspace upper bound
	TTEFP      = 408 // FP register save area: 8 slots x 12 bytes
	TTEFlags   = 504 // bit0: thread uses the FP co-processor
	TTEIOGauge = 508 // I/O event count for the fine-grain scheduler
	TTESigPC   = 512 // pending signal handler entry (0 = none)
	TTESigOld  = 516 // interrupted PC stashed for the signal handler
	TTESwinPtr = 520 // code address of this thread's own sw_in (no quaspace change)
	TTESwoutPt = 524 // code address of this thread's own sw_out
	TTEWaitsOn = 528 // wait-queue cell address this thread is blocked on (0 = runnable)
	TTESwinMMU = 532 // code address of this thread's sw_in.mmu entry
	TTEErrPC   = 536 // user-mode error signal handler (0 = none: panic)
	TTEFDBase  = 544 // per-descriptor state: MaxFD slots x FDSlotSize bytes
	TTEScratch = 928 // per-thread scratch (signal trampolines, chaining)
	TTESize    = 1024
)

// TTEFlagFP marks a thread as using the floating-point co-processor;
// set by the line-F trap, it makes the resynthesized switch code save
// and restore FP state.
const TTEFlagFP = 1 << 0

// File descriptor table shape inside the TTE.
const (
	MaxFD      = 12
	FDSlotSize = 32
	// Offsets within one fd slot.
	FDPos   = 0  // current file position / queue cursor
	FDAux   = 4  // type-specific cell (queue address, size cache...)
	FDGauge = 8  // per-stream I/O gauge
	FDKind  = 12 // host-side bookkeeping mirror (written by Go only)
)

// FDCell returns the address of field off in fd's slot of the TTE at
// tte.
func FDCell(tte uint32, fd, off int) uint32 {
	return tte + TTEFDBase + uint32(fd*FDSlotSize+off)
}

// Trap assignments (vector = 32 + trap number; each thread's vector
// table routes them independently).
const (
	TrapUnix   = 0 // UNIX emulator gate (unixemu package)
	TrapSys    = 1 // native Synthesis kernel calls, function in D0
	TrapSwitch = 2 // voluntary context switch: vectors to the thread's sw_out
	TrapSig    = 3 // return-from-signal trampoline
	// Per-descriptor synthesized I/O: read fd = trap 8+fd, write fd =
	// trap 20+fd ("I/O operations such as read and write are
	// synthesized by the open operation" and installed in the
	// thread's system call vectors).
	TrapRead  = 8
	TrapWrite = 20
)

// Native TrapSys function codes (D0).
const (
	SysOpen     = 0  // D1 = name pointer -> D0 = fd or ^0
	SysClose    = 1  // D1 = fd
	SysCreate   = 2  // D1 = entry point, D2 = user stack top -> D0 = TTE address
	SysDestroy  = 3  // D1 = TTE address
	SysStop     = 4  // D1 = TTE address
	SysStart    = 5  // D1 = TTE address
	SysStep     = 6  // D1 = TTE address
	SysSignal   = 7  // D1 = TTE address, D2 = handler PC
	SysSetAlarm = 8  // D1 = microseconds, D2 = procedure
	SysExit     = 9  // terminate calling thread
	SysPipe     = 10 // -> D0 = read fd, D1 = write fd
	SysYield    = 11 // give up the CPU voluntarily
	SysSeek     = 12 // D1 = fd, D2 = absolute position
	SysSock     = 13 // D1 = local port, D2 = remote port -> D0 = fd or ^0
)

// KCALL service ids.
const (
	SvcPanic       = 1  // unhandled exception: stop simulation loudly
	SvcExit        = 2  // thread exit bookkeeping
	SvcOpen        = 3  // open bookkeeping + read/write synthesis
	SvcClose       = 4  // close bookkeeping
	SvcAllocTTE    = 5  // allocate TTE memory + code region -> D0
	SvcFreeTTE     = 6  // release a destroyed thread's resources
	SvcPipe        = 7  // create pipe queue + fds
	SvcFPResynth   = 8  // line-F trap: resynthesize switch code with FP
	SvcRegister    = 9  // post-create registration of a thread
	SvcTrace       = 10 // trace (single-step) completion: stop the thread
	SvcSock        = 11 // open a network socket: queue alloc + send/recv synthesis
	SvcThreadFault = 12 // bus-error reap: log the fault, thread-exit bookkeeping
)
