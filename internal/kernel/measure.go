package kernel

import "synthesis/internal/m68k"

// Measurement helpers: the Quamachine's instrumentation (Section 6.1)
// reduced to what the benchmarks need — exact cycle intervals around
// specific kernel paths, read from the interval timer / cycle counter
// rather than wall clocks.

// switchDispatchCycles approximates the interrupt-dispatch cost paid
// before control reaches sw_out (exception sequencing plus the two
// frame pushes); MeasureSwitchMicros adds it so the reported figure
// covers the whole quantum-interrupt-to-resumed-thread path, which is
// what Table 4 calls a context switch.
const switchDispatchCycles = 34

// MeasureSwitchMicros lets the running kernel hit its next context
// switch and returns the cycle time from switch-out entry through the
// completed switch-in RTE (plus the dispatch cost), in microseconds.
// The machine keeps running; callers can invoke it repeatedly.
func MeasureSwitchMicros(k *Kernel) float64 {
	m := k.M
	cur := k.Threads[k.CurTTE()]
	if cur == nil {
		return -1
	}
	swout := m.Peek(cur.TTE+TTESwoutPt, 4)
	if err := m.RunUntil(swout, 100_000_000); err != nil {
		return -1
	}
	start := m.Cycles
	// Execute through the first RTE: that is the target thread
	// resuming.
	for {
		if int(m.PC) < len(m.Code) && m.Code[m.PC].Op == m68k.RTE {
			if err := m.Step(); err != nil {
				return -1
			}
			break
		}
		if err := m.Step(); err != nil {
			return -1
		}
		if m.Cycles-start > 1_000_000 {
			return -1
		}
	}
	return m.Micros(m.Cycles - start + switchDispatchCycles)
}

// MeasureUntilPC runs until the machine is about to execute the given
// code address and returns the elapsed cycles, or -1 on error.
func MeasureUntilPC(k *Kernel, target uint32, budget uint64) int64 {
	start := k.M.Cycles
	if err := k.M.RunUntil(target, budget); err != nil {
		return -1
	}
	return int64(k.M.Cycles - start)
}
