package kernel_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"synthesis/internal/fault"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

func boot(t *testing.T) *kernel.Kernel {
	t.Helper()
	k := kernel.Boot(kernel.Config{
		Machine: m68k.Config{MemSize: 1 << 20, TraceDepth: 256},
	})
	return k
}

// exitSeq appends the native exit system call.
func exitSeq(e *synth.Emitter) {
	e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
	e.Trap(kernel.TrapSys)
}

// runToCompletion starts t and runs until all user threads exit.
func runToCompletion(t *testing.T, k *kernel.Kernel, first *kernel.Thread, budget uint64) {
	t.Helper()
	k.Start(first)
	if err := k.Run(budget); err != nil {
		t.Fatalf("run: %v\ntrace tail:\n%s", err, tail(k))
	}
}

func tail(k *kernel.Kernel) string {
	if k.M.Trace == nil {
		return "(no trace)"
	}
	s := k.M.Trace.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) > 40 {
		lines = lines[len(lines)-40:]
	}
	return strings.Join(lines, "\n")
}

func TestBootAndExit(t *testing.T) {
	k := boot(t)
	const flag = 0x9000
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(0xabcd), m68k.Abs(flag))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	runToCompletion(t, k, th, 2_000_000)
	if k.M.Peek(flag, 4) != 0xabcd {
		t.Error("program did not run")
	}
}

func TestQuantumPreemptionInterleavesThreads(t *testing.T) {
	k := boot(t)
	const c1, c2 = 0x9000, 0x9004
	spin := func(counter uint32) uint32 {
		return k.C.Synthesize(nil, "spin", nil, func(e *synth.Emitter) {
			e.Label("loop")
			e.AddL(m68k.Imm(1), m68k.Abs(counter))
			e.Bra("loop")
		})
	}
	t1 := k.SpawnKernel("t1", spin(c1))
	t2 := k.SpawnKernel("t2", spin(c2))
	_ = t2
	k.Start(t1)
	err := k.Run(3_000_000) // several quanta at 50 MHz
	if !errors.Is(err, m68k.ErrCycleLimit) {
		t.Fatalf("run: %v", err)
	}
	n1, n2 := k.M.Peek(c1, 4), k.M.Peek(c2, 4)
	if n1 == 0 || n2 == 0 {
		t.Fatalf("no interleaving: c1=%d c2=%d", n1, n2)
	}
	// Round-robin with equal quanta: neither starves.
	if n1 > n2*20 || n2 > n1*20 {
		t.Errorf("grossly unfair: c1=%d c2=%d", n1, n2)
	}
}

func TestVoluntaryYield(t *testing.T) {
	k := boot(t)
	const order = 0x9000 // running log: threads append their id
	logSelf := func(e *synth.Emitter, id int32) {
		// mem[order] = mem[order]*10 + id
		e.MoveL(m68k.Abs(order), m68k.D(3))
		e.Mulu(m68k.Imm(10), m68k.D(3))
		e.AddL(m68k.Imm(id), m68k.D(3))
		e.MoveL(m68k.D(3), m68k.Abs(order))
	}
	yield := func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(kernel.SysYield), m68k.D(0))
		e.Trap(kernel.TrapSys)
	}
	p1 := k.C.Synthesize(nil, "p1", nil, func(e *synth.Emitter) {
		logSelf(e, 1)
		yield(e)
		logSelf(e, 3)
		exitSeq(e)
	})
	p2 := k.C.Synthesize(nil, "p2", nil, func(e *synth.Emitter) {
		logSelf(e, 2)
		yield(e)
		logSelf(e, 4)
		exitSeq(e)
	})
	t1 := k.SpawnKernel("t1", p1)
	t2 := k.SpawnKernel("t2", p2)
	_ = t2
	runToCompletion(t, k, t1, 5_000_000)
	got := k.M.Peek(order, 4)
	// t1 logs 1, yields; ring from t1: next inserted... both orders
	// that alternate are acceptable; what is NOT acceptable is a
	// thread running twice before the other ran at all.
	if got != 1234 && got != 1243 && got != 2134 {
		t.Errorf("execution order log = %d", got)
	}
}

func TestBlockAndWake(t *testing.T) {
	k := boot(t)
	const cell, val = 0x9000, 0x9004
	// consumer blocks on the cell, then records that it woke.
	cons := k.C.Synthesize(nil, "cons", nil, func(e *synth.Emitter) {
		e.Lea(m68k.Abs(cell), 0)
		e.Jsr(k.BlockOnRoutine())
		e.MoveL(m68k.Imm(77), m68k.Abs(val))
		exitSeq(e)
	})
	// producer spins a bit, then wakes the consumer.
	prod := k.C.Synthesize(nil, "prod", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(1000), m68k.D(3))
		e.Label("spin")
		e.Dbra(3, "spin")
		e.Lea(m68k.Abs(cell), 0)
		e.Jsr(k.WakeCellRoutine())
		exitSeq(e)
	})
	tc := k.SpawnKernel("cons", cons)
	k.SpawnKernel("prod", prod)
	runToCompletion(t, k, tc, 5_000_000)
	if k.M.Peek(val, 4) != 77 {
		t.Error("consumer never woke")
	}
}

func TestStopStartFromPeer(t *testing.T) {
	k := boot(t)
	const counter, phase = 0x9000, 0x9004
	victim := k.C.Synthesize(nil, "victim", nil, func(e *synth.Emitter) {
		e.Label("loop")
		e.AddL(m68k.Imm(1), m68k.Abs(counter))
		e.Bra("loop")
	})
	tv := k.SpawnKernel("victim", victim)
	controller := k.C.Synthesize(nil, "ctl", nil, func(e *synth.Emitter) {
		// Let the victim run a little.
		e.MoveL(m68k.Imm(kernel.SysYield), m68k.D(0))
		e.Trap(kernel.TrapSys)
		// Stop it, snapshot the counter twice with a delay between.
		e.MoveL(m68k.Imm(kernel.SysStop), m68k.D(0))
		e.MoveL(m68k.Imm(int32(tv.TTE)), m68k.D(1))
		e.Trap(kernel.TrapSys)
		e.MoveL(m68k.Abs(counter), m68k.D(3))
		e.MoveL(m68k.D(3), m68k.Abs(phase))
		e.MoveL(m68k.Imm(20000), m68k.D(3))
		e.Label("wait")
		e.Dbra(3, "wait") // long enough for several quanta
		e.MoveL(m68k.Abs(counter), m68k.D(3))
		e.SubL(m68k.Abs(phase), m68k.D(3))
		e.MoveL(m68k.D(3), m68k.Abs(phase)) // delta while stopped
		exitSeq(e)
	})
	tc := k.SpawnKernel("ctl", controller)
	k.Start(tc)
	err := k.Run(20_000_000)
	// The victim never exits; the controller's exit leaves it live,
	// so the run ends on the cycle budget with the victim looping or
	// parked. What matters is the recorded delta.
	if err != nil && !errors.Is(err, m68k.ErrCycleLimit) && !errors.Is(err, m68k.ErrIdle) {
		t.Fatalf("run: %v", err)
	}
	if delta := k.M.Peek(phase, 4); delta != 0 {
		t.Errorf("victim advanced %d increments while stopped", delta)
	}
	if k.M.Peek(counter, 4) == 0 {
		t.Error("victim never ran at all")
	}
}

func TestStepExecutesExactlyOneInstruction(t *testing.T) {
	k := boot(t)
	const counter = 0x9000
	stepped := k.C.Synthesize(nil, "stepped", nil, func(e *synth.Emitter) {
		for i := 0; i < 8; i++ {
			e.AddL(m68k.Imm(1), m68k.Abs(counter))
		}
		exitSeq(e)
	})
	ts := k.SpawnKernelStopped("stepped", stepped)
	const snap1, snap2 = 0x9010, 0x9014
	driver := k.C.Synthesize(nil, "driver", nil, func(e *synth.Emitter) {
		stepOnce := func() {
			e.MoveL(m68k.Imm(kernel.SysStep), m68k.D(0))
			e.MoveL(m68k.Imm(int32(ts.TTE)), m68k.D(1))
			e.Trap(kernel.TrapSys)
			e.MoveL(m68k.Imm(kernel.SysYield), m68k.D(0))
			e.Trap(kernel.TrapSys)
		}
		stepOnce()
		e.MoveL(m68k.Abs(counter), m68k.D(3))
		e.MoveL(m68k.D(3), m68k.Abs(snap1))
		stepOnce()
		e.MoveL(m68k.Abs(counter), m68k.D(3))
		e.MoveL(m68k.D(3), m68k.Abs(snap2))
		exitSeq(e)
	})
	td := k.SpawnKernel("driver", driver)
	k.Start(td)
	if err := k.Run(10_000_000); err != nil && !errors.Is(err, m68k.ErrCycleLimit) && !errors.Is(err, m68k.ErrIdle) {
		t.Fatalf("run: %v", err)
	}
	if got := k.M.Peek(snap1, 4); got != 1 {
		t.Errorf("after one step counter = %d, want 1", got)
	}
	if got := k.M.Peek(snap2, 4); got != 2 {
		t.Errorf("after two steps counter = %d, want 2", got)
	}
}

func TestSignalDelivery(t *testing.T) {
	k := boot(t)
	const flag, after = 0x9000, 0x9004
	handler := k.C.Synthesize(nil, "handler", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(5), m68k.Abs(flag))
		e.Trap(kernel.TrapSig) // return from signal
	})
	victim := k.C.Synthesize(nil, "victim", nil, func(e *synth.Emitter) {
		e.Label("loop")
		e.TstL(m68k.Abs(flag))
		e.Beq("loop")
		e.MoveL(m68k.Imm(9), m68k.Abs(after)) // signal returned here
		exitSeq(e)
	})
	tv := k.SpawnKernel("victim", victim)
	signaller := k.C.Synthesize(nil, "sig", nil, func(e *synth.Emitter) {
		// stop + signal + start so the victim's frame is valid.
		e.MoveL(m68k.Imm(kernel.SysStop), m68k.D(0))
		e.MoveL(m68k.Imm(int32(tv.TTE)), m68k.D(1))
		e.Trap(kernel.TrapSys)
		e.MoveL(m68k.Imm(kernel.SysSignal), m68k.D(0))
		e.MoveL(m68k.Imm(int32(tv.TTE)), m68k.D(1))
		e.MoveL(m68k.Imm(int32(handler)), m68k.D(2))
		e.Trap(kernel.TrapSys)
		e.MoveL(m68k.Imm(kernel.SysStart), m68k.D(0))
		e.MoveL(m68k.Imm(int32(tv.TTE)), m68k.D(1))
		e.Trap(kernel.TrapSys)
		exitSeq(e)
	})
	tsig := k.SpawnKernel("sig", signaller)
	k.Start(tsig)
	if err := k.Run(10_000_000); err != nil && !errors.Is(err, m68k.ErrCycleLimit) {
		t.Fatalf("run: %v", err)
	}
	if k.M.Peek(flag, 4) != 5 {
		t.Error("signal handler did not run")
	}
	if k.M.Peek(after, 4) != 9 {
		t.Error("victim did not resume after the signal")
	}
}

func TestCreateSyscallSpawnsThread(t *testing.T) {
	k := boot(t)
	const childFlag = 0x9000
	childProg := k.C.Synthesize(nil, "child", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(42), m68k.Abs(childFlag))
		exitSeq(e)
	})
	parent := k.C.Synthesize(nil, "parent", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(kernel.SysCreate), m68k.D(0))
		e.MoveL(m68k.Imm(int32(childProg)), m68k.D(1))
		e.MoveL(m68k.Imm(0), m68k.D(2))
		e.Trap(kernel.TrapSys)
		// D0 = child TTE; start it.
		e.MoveL(m68k.D(0), m68k.D(1))
		e.MoveL(m68k.Imm(kernel.SysStart), m68k.D(0))
		e.Trap(kernel.TrapSys)
		exitSeq(e)
	})
	tp := k.SpawnKernel("parent", parent)
	// The child's exit decrements the live count the parent's spawn
	// never incremented: pre-add one.
	k.M.Poke(kernel.GLiveThreads, 4, k.M.Peek(kernel.GLiveThreads, 4)+1)
	runToCompletion(t, k, tp, 10_000_000)
	if k.M.Peek(childFlag, 4) != 42 {
		t.Error("created thread never ran")
	}
	if len(k.Threads) < 2 {
		t.Error("thread registry did not grow")
	}
}

func TestLazyFPResynthesis(t *testing.T) {
	k := boot(t)
	const res1, res2 = 0x9000, 0x9010
	fpsum := func(result uint32, start, rounds int32) uint32 {
		return k.C.Synthesize(nil, "fp", nil, func(e *synth.Emitter) {
			e.FmoveTo(m68k.Imm(start), 2) // first FP use: line-F trap
			e.MoveL(m68k.Imm(rounds), m68k.D(3))
			e.Label("loop")
			e.Fadd(m68k.Imm(1), 2)
			// Burn enough time per round that quantum switches
			// interleave the two FP threads.
			e.MoveL(m68k.Imm(2000), m68k.D(4))
			e.Label("spin")
			e.Dbra(4, "spin")
			e.Dbra(3, "loop")
			e.FmoveFrom(2, m68k.Abs(result))
			exitSeq(e)
		})
	}
	t1 := k.SpawnKernel("fp1", fpsum(res1, 100, 49))
	t2 := k.SpawnKernel("fp2", fpsum(res2, 500, 49))
	_ = t2
	runToCompletion(t, k, t1, 80_000_000)
	read := func(addr uint32) float64 {
		hi := uint64(k.M.Peek(addr, 4))
		lo := uint64(k.M.Peek(addr+4, 4))
		bits := hi<<32 | lo
		return floatFromBits(bits)
	}
	if got := read(res1); got != 150 {
		t.Errorf("fp1 sum = %v, want 150 (FP context lost across switches?)", got)
	}
	if got := read(res2); got != 550 {
		t.Errorf("fp2 sum = %v, want 550", got)
	}
	if !t1.UsesFP {
		t.Error("thread not upgraded to FP switch variant")
	}
	if k.Idle.UsesFP {
		t.Error("idle thread wrongly pays for FP state")
	}
}

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

func TestErrorTrapReflectsToHandler(t *testing.T) {
	k := boot(t)
	const flag, after = 0x9000, 0x9004
	handler := k.C.Synthesize(nil, "errh", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(1), m68k.Abs(flag))
		e.Trap(kernel.TrapSig)
	})
	prog := k.C.Synthesize(nil, "faulty", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(5), m68k.D(3))
		e.Divu(m68k.Imm(0), m68k.D(3)) // divide by zero
		e.MoveL(m68k.Imm(2), m68k.Abs(after))
		exitSeq(e)
	})
	th := k.SpawnKernel("faulty", prog)
	k.M.Poke(th.TTE+kernel.TTEErrPC, 4, handler)
	runToCompletion(t, k, th, 5_000_000)
	if k.M.Peek(flag, 4) != 1 {
		t.Error("error handler did not run")
	}
	if k.M.Peek(after, 4) != 2 {
		t.Error("thread did not continue after error handling")
	}
}

func TestErrorTrapWithoutHandlerPanics(t *testing.T) {
	k := boot(t)
	prog := k.C.Synthesize(nil, "faulty", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(5), m68k.D(3))
		e.Divu(m68k.Imm(0), m68k.D(3))
		exitSeq(e)
	})
	th := k.SpawnKernel("faulty", prog)
	k.Start(th)
	err := k.Run(5_000_000)
	if !errors.Is(err, kernel.ErrPanic) {
		t.Errorf("run = %v, want kernel panic", err)
	}
}

func TestAlarm(t *testing.T) {
	k := boot(t)
	const flag = 0x9000
	proc := k.C.Synthesize(nil, "alarmproc", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(33), m68k.Abs(flag))
		e.Rts()
	})
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(kernel.SysSetAlarm), m68k.D(0))
		e.MoveL(m68k.Imm(5000), m68k.D(1)) // cycles
		e.MoveL(m68k.Imm(int32(proc)), m68k.D(2))
		e.Trap(kernel.TrapSys)
		e.Label("wait")
		e.TstL(m68k.Abs(flag))
		e.Beq("wait")
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	runToCompletion(t, k, th, 5_000_000)
	if k.M.Peek(flag, 4) != 33 {
		t.Error("alarm procedure did not run")
	}
}

func TestProcedureChaining(t *testing.T) {
	k := boot(t)
	const flag, after = 0x9000, 0x9004
	// The chained procedure runs after the handler returns, in the
	// interrupted context, and resumes the original code via the
	// displaced PC.
	chained := k.C.Synthesize(nil, "chained", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(1), m68k.Abs(flag))
		e.JmpVia(m68k.Abs(kernel.GChainPC))
	})
	// A custom trap handler that chains the procedure. The chain
	// routine locates the exception frame directly above its return
	// address, so the handler must not have pushed anything (it may
	// clobber D1 by convention).
	handler := k.C.Synthesize(nil, "handler", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(int32(chained)), m68k.D(1))
		e.Jsr(k.ChainRoutine())
		e.Rte() // resumes into `chained`, not the original code
	})
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.Trap(5)
		e.MoveL(m68k.Abs(flag), m68k.D(3)) // chained proc must have run by now
		e.MoveL(m68k.D(3), m68k.Abs(after))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	k.M.Poke(th.TTE+kernel.TTEVec+uint32(m68k.VecTrapBase+5)*4, 4, handler)
	runToCompletion(t, k, th, 5_000_000)
	if k.M.Peek(flag, 4) != 1 {
		t.Error("chained procedure did not run")
	}
	if k.M.Peek(after, 4) != 1 {
		t.Error("chained procedure ran after, not before, the resumed code")
	}
}

func TestUserThreadQuaspaceConfinement(t *testing.T) {
	k := boot(t)
	ub, ul := k.AllocUserSpace(4096)
	const okFlagOff = 16
	handler := k.C.Synthesize(nil, "errh", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(7), m68k.Abs(ub+okFlagOff)) // inside own space
		e.Trap(kernel.TrapSig)
	})
	prog := k.C.Synthesize(nil, "user", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(1), m68k.Abs(ub+8))   // inside: fine
		e.MoveL(m68k.Imm(1), m68k.Abs(0x9000)) // outside: bus error -> handler
		exitSeq(e)
	})
	th := k.SpawnUser("user", prog, ub, ul)
	k.M.Poke(th.TTE+kernel.TTEErrPC, 4, handler)
	runToCompletion(t, k, th, 5_000_000)
	if k.M.Peek(ub+8, 4) != 1 {
		t.Error("in-quaspace store failed")
	}
	if k.M.Peek(0x9000, 4) != 0 {
		t.Error("out-of-quaspace store succeeded")
	}
	if k.M.Peek(ub+okFlagOff, 4) != 7 {
		t.Error("error handler did not run for quaspace violation")
	}
}

func TestOpenLookupVMRoutineFindsFiles(t *testing.T) {
	k := boot(t)
	f1, err := k.FS.Create("/etc/motd", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.FS.CreateSpecial("/dev/null", 1); err != nil {
		t.Fatal(err)
	}
	// Place a name string in memory and call the lookup routine.
	const nameAddr = 0x9100
	for i, c := range []byte("/etc/motd\x00") {
		k.M.Poke(nameAddr+uint32(i), 1, uint32(c))
	}
	const result = 0x9200
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(nameAddr), m68k.D(1))
		e.Jsr(k.LookupRoutine())
		e.MoveL(m68k.D(0), m68k.Abs(result))
		// Now a missing name.
		e.MoveL(m68k.Imm(nameAddr+5), m68k.D(1)) // "/motd" does not exist... actually "motd"? offset 5 = "motd"
		e.Jsr(k.LookupRoutine())
		e.MoveL(m68k.D(0), m68k.Abs(result+4))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	runToCompletion(t, k, th, 5_000_000)
	if got := k.M.Peek(result, 4); got != f1.Entry {
		t.Errorf("lookup = %#x, want entry %#x", got, f1.Entry)
	}
	if got := k.M.Peek(result+4, 4); got != 0 {
		t.Errorf("lookup of missing name = %#x, want 0", got)
	}
}

func TestContextSwitchTimeIsMicroseconds(t *testing.T) {
	// At the SUN 3/160 emulation point a full integer context switch
	// must land in the paper's decade: Table 4 reports 11 usec; we
	// accept single-digit-to-low-tens.
	k := kernel.Boot(kernel.Config{Machine: m68k.Sun3Config()})
	const c1 = 0x9000
	spin := k.C.Synthesize(nil, "spin", nil, func(e *synth.Emitter) {
		e.Label("loop")
		e.AddL(m68k.Imm(1), m68k.Abs(c1))
		e.Bra("loop")
	})
	t1 := k.SpawnKernel("t1", spin)
	k.SpawnKernel("t2", spin)
	k.Start(t1)
	if err := k.Run(5_000_000); !errors.Is(err, m68k.ErrCycleLimit) {
		t.Fatalf("run: %v", err)
	}
	us := kernel.MeasureSwitchMicros(k)
	if us < 5 || us > 40 {
		t.Errorf("context switch = %.1f usec, want the paper's decade (11)", us)
	}
	t.Logf("full context switch: %.2f usec (paper: 11)", us)
}

func TestQuaspaceSwitchingReloadsBounds(t *testing.T) {
	// Two user threads in DIFFERENT quaspaces, preempted by the
	// quantum timer: every switch between them must go through the
	// sw_in.mmu entry and reload the bounds registers, so each thread
	// stays confined to its own space for the whole run.
	k := boot(t)
	ubA, ulA := k.AllocUserSpace(4096)
	ubB, ulB := k.AllocUserSpace(4096)

	// Each thread fills its own space with its tag in a loop and
	// ALSO pokes one probe store at the other's space, which must
	// bus-fault into its error handler (counting the faults).
	mk := func(base, probe uint32, tag int32) uint32 {
		return k.C.Synthesize(nil, "user", nil, func(e *synth.Emitter) {
			e.Label("loop")
			e.MoveL(m68k.Imm(tag), m68k.Abs(base+64))
			e.MoveL(m68k.Imm(tag), m68k.Abs(probe+64)) // other space: faults
			e.Bra("loop")
		})
	}
	handlerFor := func(base uint32) uint32 {
		return k.C.Synthesize(nil, "errh", nil, func(e *synth.Emitter) {
			e.AddL(m68k.Imm(1), m68k.Abs(base+128)) // fault counter, own space
			e.Trap(kernel.TrapSig)
		})
	}
	ta := k.SpawnUser("A", mk(ubA, ubB, 0xAAAA), ubA, ulA)
	tb := k.SpawnUser("B", mk(ubB, ubA, 0xBBBB), ubB, ulB)
	k.M.Poke(ta.TTE+kernel.TTEErrPC, 4, handlerFor(ubA))
	k.M.Poke(tb.TTE+kernel.TTEErrPC, 4, handlerFor(ubB))

	k.Start(ta)
	if err := k.Run(30_000_000); !errors.Is(err, m68k.ErrCycleLimit) {
		t.Fatalf("run: %v", err)
	}
	if got := k.M.Peek(ubA+64, 4); got != 0xAAAA {
		t.Errorf("space A tag = %#x (cross-write leaked?)", got)
	}
	if got := k.M.Peek(ubB+64, 4); got != 0xBBBB {
		t.Errorf("space B tag = %#x", got)
	}
	if k.M.Peek(ubA+128, 4) == 0 || k.M.Peek(ubB+128, 4) == 0 {
		t.Error("cross-space probes never faulted: bounds not enforced")
	}
	// Both threads made progress across many quantum switches.
	if k.M.Peek(ubA+64, 4) == 0 || k.M.Peek(ubB+64, 4) == 0 {
		t.Error("a thread starved")
	}
}

func TestDoubleStartAndDoubleStopAreIdempotent(t *testing.T) {
	// Pairing errors between stop and start must never corrupt the
	// executable ready queue: the ring routines check the link state.
	k := boot(t)
	const c1, c2 = 0x9000, 0x9004
	spin := func(counter uint32) uint32 {
		return k.C.Synthesize(nil, "spin", nil, func(e *synth.Emitter) {
			e.Label("loop")
			e.AddL(m68k.Imm(1), m68k.Abs(counter))
			e.Bra("loop")
		})
	}
	victim := k.SpawnKernelStopped("victim", spin(c1))
	driver := k.C.Synthesize(nil, "driver", nil, func(e *synth.Emitter) {
		sys := func(fn int32) {
			e.MoveL(m68k.Imm(fn), m68k.D(0))
			e.MoveL(m68k.Imm(int32(victim.TTE)), m68k.D(1))
			e.Trap(kernel.TrapSys)
		}
		sys(kernel.SysStart)
		sys(kernel.SysStart) // double start: must be a no-op
		sys(kernel.SysStop)
		sys(kernel.SysStop) // double stop: must be a no-op
		sys(kernel.SysStart)
		// Let everyone run a few quanta; the ring must stay sane.
		e.Label("work")
		e.AddL(m68k.Imm(1), m68k.Abs(c2))
		e.CmpL(m68k.Imm(20000), m68k.Abs(c2))
		e.Bne("work")
		exitSeq(e)
	})
	td := k.SpawnKernel("driver", driver)
	k.Start(td)
	err := k.Run(50_000_000)
	if err != nil && !errors.Is(err, m68k.ErrCycleLimit) {
		t.Fatalf("run: %v (ring corrupted?)", err)
	}
	if k.M.Peek(c1, 4) == 0 {
		t.Error("victim never ran after restart")
	}
	if k.M.Peek(c2, 4) == 0 {
		t.Error("driver starved")
	}
}

func TestBusErrorReapsFaultingThread(t *testing.T) {
	k := boot(t)
	const flagBefore, flagAfter, flagPeer = 0x9100, 0x9104, 0x9108
	victim := k.C.Synthesize(nil, "victim", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(1), m68k.Abs(flagBefore))
		e.Tst(4, m68k.Abs(0x00e0_0000)) // unmapped: bus error
		e.MoveL(m68k.Imm(1), m68k.Abs(flagAfter))
		exitSeq(e)
	})
	peer := k.C.Synthesize(nil, "peer", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(2000), m68k.D(1))
		e.Label("spin")
		e.SubL(m68k.Imm(1), m68k.D(1))
		e.Bne("spin")
		e.MoveL(m68k.Imm(1), m68k.Abs(flagPeer))
		exitSeq(e)
	})
	tv := k.SpawnKernel("victim", victim)
	k.SpawnKernel("peer", peer)
	k.Start(tv)
	if err := k.Run(10_000_000); err != nil {
		t.Fatalf("run: %v\ntrace tail:\n%s", err, tail(k))
	}
	if k.PanicMsg != "" {
		t.Fatalf("kernel panicked: %s", k.PanicMsg)
	}
	if k.M.Peek(flagBefore, 4) != 1 {
		t.Error("victim never ran")
	}
	if k.M.Peek(flagAfter, 4) != 0 {
		t.Error("victim survived its bus error")
	}
	if k.M.Peek(flagPeer, 4) != 1 {
		t.Error("peer thread did not keep running after the fault")
	}
	if !tv.Dead {
		t.Error("victim not marked dead")
	}
	if len(k.Faults) != 1 {
		t.Fatalf("fault log: got %d records, want 1", len(k.Faults))
	}
	if k.Faults[0].Name != "victim" {
		t.Errorf("fault log names %q, want victim", k.Faults[0].Name)
	}
	if k.Faults[0].PC == 0 {
		t.Error("fault log lost the faulting PC")
	}
}

func TestBusErrorStillReflectsToHandler(t *testing.T) {
	k := boot(t)
	const flag = 0x9200
	var handler uint32
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.Tst(4, m68k.Abs(0x00e0_0000)) // unmapped: bus error
		e.MoveL(m68k.Imm(7), m68k.Abs(flag))
		exitSeq(e)
	})
	handler = k.C.Synthesize(nil, "handler", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Trap(kernel.TrapSys)
	})
	th := k.SpawnKernel("faulty", prog)
	k.M.Poke(th.TTE+kernel.TTEErrPC, 4, handler)
	k.Start(th)
	if err := k.Run(5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if k.PanicMsg != "" {
		t.Fatalf("kernel panicked: %s", k.PanicMsg)
	}
	if len(k.Faults) != 0 {
		t.Errorf("reflected fault must not be logged as a reap, got %v", k.Faults)
	}
	if !th.Dead {
		t.Error("handler never exited the thread")
	}
}

func TestSpuriousInterruptsAreCountedNotFatal(t *testing.T) {
	k := boot(t)
	inj := fault.New(fault.Plan{
		Storms: []fault.Storm{{Level: 1, At: 2_000, Count: 5, Gap: 500}},
	}, 1)
	inj.Attach(k.M)
	const flag = 0x9300
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(20_000), m68k.D(1))
		e.Label("spin")
		e.SubL(m68k.Imm(1), m68k.D(1))
		e.Bne("spin")
		e.MoveL(m68k.Imm(1), m68k.Abs(flag))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	runToCompletion(t, k, th, 5_000_000)
	if k.M.Peek(flag, 4) != 1 {
		t.Error("thread did not survive the spurious interrupts")
	}
	if got := k.SpuriousIRQs(); got != 5 {
		t.Errorf("spurious counter = %d, want 5", got)
	}
	if inj.Stats.StormUp != 5 {
		t.Errorf("injector asserted %d storm interrupts, want 5", inj.Stats.StormUp)
	}
}
