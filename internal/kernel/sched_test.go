package kernel_test

import (
	"errors"
	"testing"

	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// The fine-grain scheduler: threads with higher I/O rates get larger
// quanta; idle-handed threads drift back to the base quantum; bounds
// hold.

func TestSchedulerAdaptsQuantumToIORate(t *testing.T) {
	k := boot(t)
	s := kernel.NewScheduler(k)

	// Two spinning threads: one "does I/O" by bumping its own gauge
	// (as every synthesized queue operation does), one computes.
	busyIO := k.C.Synthesize(nil, "io", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Abs(kernel.GCurTTE), m68k.A(0))
		e.Label("loop")
		e.AddL(m68k.Imm(1), m68k.Disp(kernel.TTEIOGauge, 0))
		e.Bra("loop")
	})
	compute := k.C.Synthesize(nil, "cpu", nil, func(e *synth.Emitter) {
		e.Label("loop")
		e.AddL(m68k.Imm(1), m68k.D(3))
		e.Bra("loop")
	})
	tIO := k.SpawnKernel("io", busyIO)
	tCPU := k.SpawnKernel("cpu", compute)

	k.Start(tIO)
	// Let both run, adapting between slices.
	for round := 0; round < 6; round++ {
		if err := k.Run(2_000_000); !errors.Is(err, m68k.ErrCycleLimit) {
			t.Fatalf("run: %v", err)
		}
		s.Adapt()
	}
	qIO := s.QuantumUS(tIO)
	qCPU := s.QuantumUS(tCPU)
	if qIO <= qCPU {
		t.Errorf("I/O thread quantum %.0f usec not larger than compute thread's %.0f", qIO, qCPU)
	}
	p := s.Params
	if qIO > p.MaxQuantumUS || qIO < p.MinQuantumUS {
		t.Errorf("quantum %.0f outside [%v, %v]", qIO, p.MinQuantumUS, p.MaxQuantumUS)
	}
	if qCPU < p.MinQuantumUS {
		t.Errorf("compute quantum %.0f below floor", qCPU)
	}
	t.Logf("quanta after adaptation: io=%.0f usec, cpu=%.0f usec", qIO, qCPU)

	// When the I/O stops, the quantum decays back toward base.
	k.M.Poke(tIO.TTE+kernel.TTEIOGauge, 4, 0)
	for i := 0; i < 12; i++ {
		s.Adapt()
		k.M.Poke(tIO.TTE+kernel.TTEIOGauge, 4, 0)
	}
	if got := s.QuantumUS(tIO); got > p.BaseQuantumUS*1.2 {
		t.Errorf("quantum did not decay: %.0f usec (base %v)", got, p.BaseQuantumUS)
	}
}

func TestSchedulerAlarmDriverRunsOnMachineTime(t *testing.T) {
	k := boot(t)
	s := kernel.NewScheduler(k)
	s.InstallAlarmDriver(1000) // adapt every simulated millisecond

	prog := k.C.Synthesize(nil, "spin", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Abs(kernel.GCurTTE), m68k.A(0))
		e.Label("loop")
		e.AddL(m68k.Imm(1), m68k.Disp(kernel.TTEIOGauge, 0))
		e.Bra("loop")
	})
	th := k.SpawnKernel("spin", prog)
	k.Start(th)
	if err := k.Run(30_000_000); !errors.Is(err, m68k.ErrCycleLimit) {
		t.Fatalf("run: %v", err)
	}
	// Several adaptation windows have elapsed; the busy thread's
	// quantum should be above base.
	if got := s.QuantumUS(th); got <= kernel.DefaultSchedParams().BaseQuantumUS {
		t.Errorf("alarm-driven adaptation never raised the quantum: %.0f usec", got)
	}
}

func TestUnblockedThreadRunsBeforeQueueTail(t *testing.T) {
	// Section 4.4: "As an event unblocks a thread, its TTE is placed
	// at the front of the ready queue, giving it immediate access to
	// the CPU." With three threads linked, waking a blocked thread
	// must schedule it before the others get another turn.
	k := boot(t)
	const cell, order = 0x9000, 0x9010
	logV := func(e *synth.Emitter, id int32) {
		e.MoveL(m68k.Abs(order), m68k.D(3))
		e.Mulu(m68k.Imm(10), m68k.D(3))
		e.AddL(m68k.Imm(id), m68k.D(3))
		e.MoveL(m68k.D(3), m68k.Abs(order))
	}
	waiter := k.C.Synthesize(nil, "waiter", nil, func(e *synth.Emitter) {
		e.Lea(m68k.Abs(cell), 0)
		e.Jsr(k.BlockOnRoutine())
		logV(e, 1) // must log before the spinner's next turn (id 2)
		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Trap(kernel.TrapSys)
	})
	// The waker: wakes, then logs, then yields forever.
	waker := k.C.Synthesize(nil, "waker", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(kernel.SysYield), m68k.D(0))
		e.Trap(kernel.TrapSys) // give the waiter time to block
		e.Lea(m68k.Abs(cell), 0)
		e.Jsr(k.WakeCellRoutine())
		e.MoveL(m68k.Imm(kernel.SysYield), m68k.D(0))
		e.Trap(kernel.TrapSys) // front-of-queue: the WAITER must run now
		logV(e, 2)
		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Trap(kernel.TrapSys)
	})
	tw := k.SpawnKernel("waiter", waiter)
	k.SpawnKernel("waker", waker)
	k.Start(tw)
	if err := k.Run(10_000_000); err != nil && !errors.Is(err, m68k.ErrCycleLimit) {
		t.Fatalf("run: %v", err)
	}
	if got := k.M.Peek(order, 4); got != 12 {
		t.Errorf("execution order = %d, want 12 (woken thread first)", got)
	}
}
