package kernel

import (
	"synthesis/internal/metrics"
)

// The kernel's half of the observability plane: every health tally
// that used to live as an ad-hoc struct field or a bare VM cell is
// served through the metrics registry. VM cells that synthesized code
// bumps (GSpuriousIRQ, GLiveThreads) register as sampled metrics —
// the hot path keeps its single AddL and the registry reads the cell
// only at snapshot time. Host-side events (thread reaps, exits,
// panics) increment atomic handles from the KCALL services.

// wireMetrics registers the kernel-level metrics and attaches the
// synthesis counter plane. Called from Boot before any code is
// synthesized, so counted quajects exist from the first routine on.
func (k *Kernel) wireMetrics(reg *metrics.Registry) {
	k.Metrics = reg
	reg.SetClock(k.M.Clock, k.M.ClockMHz)

	// VM cells, sampled lazily.
	reg.Sample("kernel.spurious_irq", func() uint64 { return uint64(k.g(GSpuriousIRQ)) })
	reg.SampleGauge("kernel.live_threads", func() float64 { return float64(k.g(GLiveThreads)) })

	// Host-side event counters, bumped by the KCALL services.
	k.mFaults = reg.Counter("kernel.thread.faults")
	k.mExits = reg.Counter("kernel.thread.exits")
	k.mCreates = reg.Counter("kernel.thread.creates")
	k.mPanics = reg.Counter("kernel.panics")

	k.C.Counters = &synthCounters{k: k}
}

// synthCounters implements synth.CounterPlane on top of the kernel
// heap and registry: each counted region gets one 4-byte VM cell
// (stable across resynthesis) served as synth.<region>.calls, and a
// host counter synth.<region>.resynth counting generations.
type synthCounters struct {
	k     *Kernel
	cells map[string]uint32
}

// InvocationCell implements synth.CounterPlane.
func (s *synthCounters) InvocationCell(region string) uint32 {
	if s.cells == nil {
		s.cells = make(map[string]uint32)
	}
	if cell, ok := s.cells[region]; ok {
		return cell
	}
	cell, err := s.k.Heap.Alloc(4)
	if err != nil {
		return 0 // heap exhausted: skip instrumentation, keep running
	}
	s.k.M.Poke(cell, 4, 0)
	s.cells[region] = cell
	k := s.k
	k.Metrics.Sample("synth."+region+".calls", func() uint64 {
		return uint64(k.M.Peek(cell, 4))
	})
	return cell
}

// Resynthesized implements synth.CounterPlane.
func (s *synthCounters) Resynthesized(region string) {
	s.k.Metrics.Counter("synth." + region + ".resynth").Inc()
}
