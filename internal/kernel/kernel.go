package kernel

import (
	"errors"
	"fmt"

	"synthesis/internal/alloc"
	"synthesis/internal/fs"
	"synthesis/internal/m68k"
	"synthesis/internal/metrics"
	"synthesis/internal/prof"
	"synthesis/internal/synth"
)

// Kernel is one booted Synthesis kernel instance on a Quamachine.
type Kernel struct {
	M    *m68k.Machine
	C    *synth.Creator
	Heap *alloc.Heap
	FS   *fs.FS

	// Prof is the attached measurement plane (nil unless
	// Config.Profile was set).
	Prof *prof.Profiler

	// Metrics is the attached observability plane (nil unless
	// Config.Metrics was set). All kernel health counters — spurious
	// IRQs, thread faults/exits, live-thread gauge — are served
	// through it; a nil registry hands out nil handles, so the
	// disabled cost is one inlined nil check per event.
	Metrics *metrics.Registry

	Timer *m68k.Timer
	TTY   *m68k.TTY
	Disk  *m68k.Disk
	AD    *m68k.AD
	Cons  *m68k.Cons
	Net   *m68k.Net

	// Shared kernel routines (code addresses), synthesized at boot.
	rtUnlink    uint32 // a0 = TTE: remove from ready ring
	rtInsert    uint32 // a0 = TTE: insert after current (front of queue)
	rtBlockOn   uint32 // a0 = wait cell: park current thread on it
	rtWakeCell  uint32 // a0 = wait cell: unblock the waiter, if any
	rtChain     uint32 // d1 = proc: procedure chaining (plain)
	rtChainCAS  uint32 // d1 = proc: procedure chaining with CAS retry
	rtLeave     uint32 // remove current from the ring, idle steps in if empty
	rtSysDisp   uint32 // trap #1 dispatcher
	rtTraceStop uint32 // trace-bit handler implementing step
	rtAlarm     uint32 // shared alarm interrupt handler
	rtSigRet    uint32 // trap #3: return from signal
	rtErrTrap   uint32 // error trap: reflect into a user-mode error signal
	rtBusTrap   uint32 // bus/address error: reflect, or reap the thread
	rtSpurious  uint32 // unclaimed interrupt level: count and return
	rtPanicVec  uint32 // catch-all for unexpected exceptions
	rtLookup    uint32 // d1 = name ptr: hashed-backwards directory walk
	rtCreate    uint32 // kcreate: TTE fill + registration
	rtLineF     uint32 // first-FP-use trap: resynthesize the switch
	protoVec    uint32 // prototype vector table copied into new TTEs

	// Thread bookkeeping mirrors (Go side).
	Threads map[uint32]*Thread // keyed by TTE address
	Idle    *Thread

	// Marks records KCALL SvcMark timestamps for measurements.
	Marks []uint64

	// PanicMsg is set when the panic service fires.
	PanicMsg string

	// Faults logs threads reaped by the bus-error trap: the kernel
	// degrades instead of dying, and this is the post-mortem trail.
	Faults []FaultRecord

	// Metric handles (nil when Metrics is nil; all nil-safe).
	mFaults  *metrics.Counter
	mExits   *metrics.Counter
	mCreates *metrics.Counter
	mPanics  *metrics.Counter

	// OpenHook lets the I/O layer (kio package) implement the open
	// bookkeeping + code synthesis. Wired by kio.Install.
	OpenHook func(k *Kernel, t *Thread, name string) (fd int32, ok bool)
	// CloseHook tears an fd down.
	CloseHook func(k *Kernel, t *Thread, fd int32) bool
	// PipeHook creates a pipe and returns its two descriptors.
	PipeHook func(k *Kernel, t *Thread) (rfd, wfd int32, ok bool)
	// SockHook opens a network socket bound to a local port, connected
	// to a remote port, and returns its descriptor.
	SockHook func(k *Kernel, t *Thread, local, remote uint32) (fd int32, ok bool)
}

// Thread is the Go-side mirror of a TTE (bookkeeping only; all thread
// state that the machine touches lives in the TTE itself).
type Thread struct {
	TTE      uint32
	Name     string
	Q        *synth.Quaject // per-thread synthesized routines
	CodeBase uint32         // preallocated code region for resynthesis
	CodeSize int
	KStack   uint32 // top of kernel stack
	UsesFP   bool
	Linked   bool // in the ready ring (mirror; the ring itself is in VM memory)
	Dead     bool
	FDs      [MaxFD]FDInfo
}

// FaultRecord is one thread reaped after an unhandled bus or address
// error.
type FaultRecord struct {
	TTE   uint32
	Name  string
	PC    uint32 // faulting PC, from the exception frame
	Cycle uint64
}

// FDInfo mirrors what open installed in a descriptor slot.
type FDInfo struct {
	Kind string // "", "null", "tty", "file", "pipe-r", "pipe-w", "ad"
	File string // file name for kind "file"
	Aux  uint32 // queue address and the like
}

// SvcMark is the measurement service id: kcall #SvcMark records the
// current cycle count (the Quamachine's microsecond-resolution
// interval timer read, Section 6.1).
const SvcMark = 100

// kstackSize is the per-thread kernel stack, allocated contiguously
// after the TTE.
const kstackSize = 512

// Config bundles boot options.
type Config struct {
	Machine m68k.Config
	// ChargeSynthesis makes post-boot code synthesis consume machine
	// time per the cost model (on for measurements; boot-time
	// synthesis is never charged).
	ChargeSynthesis bool
	// DiskBlocks sizes the disk (default 512 blocks).
	DiskBlocks int
	// Profile attaches the measurement plane before any code is
	// synthesized, so every routine from boot onward is attributed.
	Profile bool
	// ProfileRing bounds the trace-event ring (0 = default depth).
	ProfileRing int
	// Metrics attaches an observability registry: kernel, I/O and
	// synthesis counters register into it, and routines built with
	// Counted() get per-quaject invocation cells. Nil (the default)
	// disables the plane at zero cost.
	Metrics *metrics.Registry
}

// Boot creates a machine, devices, heap and file system, synthesizes
// the shared kernel routines, creates the idle thread and leaves the
// machine ready to Run.
func Boot(cfg Config) *Kernel {
	if cfg.Machine.MemSize == 0 {
		cfg.Machine.MemSize = 4 << 20
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 512
	}
	m := m68k.New(cfg.Machine)
	k := &Kernel{
		M:       m,
		C:       synth.NewCreator(m),
		Threads: make(map[uint32]*Thread),
	}
	if cfg.Profile {
		k.Prof = prof.Enable(m, cfg.ProfileRing)
		k.C.Regions = k.Prof
	}
	k.Heap = alloc.New(HeapBase, cfg.Machine.MemSize-HeapBase)
	if cfg.Metrics != nil {
		k.wireMetrics(cfg.Metrics)
		if k.Prof != nil {
			// Both planes on: the profiler publishes its IRQ-latency
			// histograms through the registry as well.
			k.Prof.PublishTo(cfg.Metrics)
		}
	}
	k.Timer = m68k.NewTimer(m)
	k.TTY = m68k.NewTTY(m)
	k.Disk = m68k.NewDisk(m, cfg.DiskBlocks)
	k.AD = m68k.NewAD(m)
	k.Cons = m68k.NewCons()
	k.Net = m68k.NewNet(m)
	m.Attach(k.Timer)
	m.Attach(k.TTY)
	m.Attach(k.Disk)
	m.Attach(k.AD)
	m.Attach(k.Cons)
	m.Attach(k.Net)

	k.FS = fs.New(m, k.Heap)

	k.registerServices()
	k.synthesizeShared()
	k.buildBootVectors()

	// The idle thread parks the CPU waiting for interrupts. It joins
	// the ready ring only when the ring would otherwise empty (the
	// leave-ring paths insert it), and it removes itself as soon as
	// any other thread becomes runnable, so runnable threads never
	// donate quanta to it.
	k.Idle = k.newThread("idle", 0, 0, true)
	m.Poke(GIdleTTE, 4, k.Idle.TTE)
	idleEntry := k.C.Synthesize(nil, "idle", nil, func(e *synth.Emitter) {
		e.Label("loop")
		// Alone in the ring? (next == self)
		e.MoveL(m68k.Abs(GIdleTTE), m68k.A(0))
		e.Cmp(4, m68k.Disp(TTENext, 0), m68k.A(0))
		e.Bne("leave")
		e.Stop(m68k.FlagS) // wait for any interrupt, then re-check
		e.Bra("loop")
		e.Label("leave")
		// Someone else is runnable: step out of their way. Masked from
		// unlink through the switch trap: a device interrupt landing in
		// between would wake a thread while GCurTTE is this already-
		// unlinked TTE, and the ISR's rq_insert would splice against
		// its zeroed TTENext and poison the ready ring. The STOP above
		// reopens the mask on the next pass.
		e.OrSR(srIPLMask)
		e.Jsr(k.rtUnlink)
		e.Trap(TrapSwitch) // re-entered here when re-inserted
		e.Bra("loop")
	})
	k.setEntry(k.Idle, idleEntry, 0, m68k.FlagS)
	k.linkFirst(k.Idle)

	// Post-boot synthesis is charged to the machine clock if asked.
	k.C.ChargeTime = cfg.ChargeSynthesis
	return k
}

// alloc grabs kernel heap memory or panics: boot-time exhaustion is a
// configuration error, not a runtime condition.
func (k *Kernel) alloc(n uint32) uint32 {
	a, err := k.Heap.Alloc(n)
	if err != nil {
		panic(fmt.Sprintf("kernel: heap exhausted allocating %d bytes", n))
	}
	return a
}

// Poke/Peek helpers for globals.
func (k *Kernel) g(addr uint32) uint32 { return k.M.Peek(addr, 4) }
func (k *Kernel) setg(addr, v uint32)  { k.M.Poke(addr, 4, v) }

// Routine addresses exposed for the I/O layer and tests.

// UnlinkRoutine returns the ready-ring unlink routine (A0 = TTE).
func (k *Kernel) UnlinkRoutine() uint32 { return k.rtUnlink }

// InsertRoutine returns the ready-ring insert routine (A0 = TTE).
func (k *Kernel) InsertRoutine() uint32 { return k.rtInsert }

// LeaveRingRoutine returns the self-removal routine (current thread
// steps out; idle steps in when the ring would empty).
func (k *Kernel) LeaveRingRoutine() uint32 { return k.rtLeave }

// BlockOnRoutine returns the wait-cell park routine (A0 = cell).
func (k *Kernel) BlockOnRoutine() uint32 { return k.rtBlockOn }

// WakeCellRoutine returns the wait-cell wake routine (A0 = cell).
func (k *Kernel) WakeCellRoutine() uint32 { return k.rtWakeCell }

// ChainRoutine returns the procedure-chaining routine (D1 = proc).
func (k *Kernel) ChainRoutine() uint32 { return k.rtChain }

// ChainCASRoutine returns the optimistic chaining routine.
func (k *Kernel) ChainCASRoutine() uint32 { return k.rtChainCAS }

// LookupRoutine returns the hashed-backwards name lookup (D1 = name).
func (k *Kernel) LookupRoutine() uint32 { return k.rtLookup }

// PanicRoutine returns the catch-all exception stub.
func (k *Kernel) PanicRoutine() uint32 { return k.rtPanicVec }

// DispatchRoutine returns the native system-call dispatcher (the
// UNIX emulator tail-jumps into it).
func (k *Kernel) DispatchRoutine() uint32 { return k.rtSysDisp }

// AlarmRoutine returns the shared alarm interrupt handler.
func (k *Kernel) AlarmRoutine() uint32 { return k.rtAlarm }

// ProtoVectors returns the prototype vector table address; the I/O
// layer pokes its interrupt handlers into it (and into live TTEs)
// before threads are created.
func (k *Kernel) ProtoVectors() uint32 { return k.protoVec }

// SpuriousRoutine returns the count-and-return handler for unclaimed
// interrupt levels.
func (k *Kernel) SpuriousRoutine() uint32 { return k.rtSpurious }

// SpuriousIRQs reports how many spurious interrupts the kernel has
// absorbed.
func (k *Kernel) SpuriousIRQs() uint32 { return k.g(GSpuriousIRQ) }

// SpawnKernel creates a kernel-mode thread running the given code
// address, links it into the ready ring and counts it live.
func (k *Kernel) SpawnKernel(name string, entry uint32) *Thread {
	t := k.newThread(name, 0, 0, true)
	k.setEntry(t, entry, 0, m68k.FlagS)
	k.Link(t, k.Idle)
	k.setg(GLiveThreads, k.g(GLiveThreads)+1)
	return t
}

// SpawnKernelStopped creates a kernel-mode thread that is NOT linked
// into the ready ring: it runs only when started (or stepped). It
// does not count toward the live-thread total (the simulation may
// halt while it is parked).
func (k *Kernel) SpawnKernelStopped(name string, entry uint32) *Thread {
	t := k.newThread(name, 0, 0, true)
	k.setEntry(t, entry, 0, m68k.FlagS)
	return t
}

// SpawnUser creates a user-mode thread confined to the quaspace
// [ubase, ulimit), with its user stack at the top of that region,
// links it and counts it live.
func (k *Kernel) SpawnUser(name string, entry, ubase, ulimit uint32) *Thread {
	t := k.newThread(name, ubase, ulimit, false)
	k.setEntry(t, entry, ulimit-16, 0)
	k.Link(t, k.Idle)
	k.setg(GLiveThreads, k.g(GLiveThreads)+1)
	return t
}

// AllocUserSpace carves a fresh quaspace out of the kernel heap and
// returns its bounds.
func (k *Kernel) AllocUserSpace(size uint32) (ubase, ulimit uint32) {
	a := k.alloc(size)
	return a, a + size
}

// CurTTE returns the running thread's TTE address.
func (k *Kernel) CurTTE() uint32 { return k.g(GCurTTE) }

// Cur returns the running thread's mirror.
func (k *Kernel) Cur() *Thread { return k.Threads[k.CurTTE()] }

// buildBootVectors points every boot vector at the panic stub.
func (k *Kernel) buildBootVectors() {
	k.M.VBR = BootVBR
	for v := 0; v < m68k.NumVectors; v++ {
		k.M.Poke(BootVBR+uint32(v)*4, 4, k.rtPanicVec)
	}
}

// ErrPanic is returned by Run when the kernel hit the panic service.
var ErrPanic = errors.New("kernel: panic")

// Run executes the machine until it halts (all user threads exited),
// the cycle budget runs out, or the kernel panics.
func (k *Kernel) Run(maxCycles uint64) error {
	err := k.M.Run(maxCycles)
	if k.PanicMsg != "" {
		return fmt.Errorf("%w: %s", ErrPanic, k.PanicMsg)
	}
	if errors.Is(err, m68k.ErrHalted) {
		return nil
	}
	return err
}

// Start makes the first real thread current and begins execution at
// its entry: the boot handoff. The thread must already be linked.
func (k *Kernel) Start(t *Thread) {
	m := k.M
	m.Poke(GCurTTE, 4, t.TTE)
	// Adopt the thread's context directly: vector base, stacks,
	// quantum, then jump to a tiny trampoline that RTEs into it.
	fpTrap := int32(1)
	if t.UsesFP {
		fpTrap = 0
	}
	tramp := k.C.Synthesize(nil, "boot-handoff", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(int32(t.TTE+TTEVec)), m68k.D(0))
		e.MovecTo(m68k.CtrlVBR, m68k.D(0))
		e.MovecTo(m68k.CtrlFPTrap, m68k.Imm(fpTrap))
		e.MovecTo(m68k.CtrlUBase, m68k.Abs(t.TTE+TTEUBase))
		e.MovecTo(m68k.CtrlULimit, m68k.Abs(t.TTE+TTEULimit))
		e.MoveL(m68k.Abs(t.TTE+TTEUSP), m68k.D(0))
		e.MovecTo(m68k.CtrlUSP, m68k.D(0))
		e.MoveL(m68k.Abs(t.TTE+TTEQuantum), m68k.Abs(m68k.TimerBase+m68k.TimerRegQuantum))
		e.MoveL(m68k.Abs(t.TTE+TTESSP), m68k.A(7))
		e.Rte()
	})
	m.PC = tramp
	// The handoff runs fully masked — the machine has no valid stack
	// until the trampoline loads the thread's SSP; the RTE into the
	// thread restores its own interrupt level.
	m.SR = m68k.FlagS | 7<<8
}

// registerServices installs the KCALL host services.
func (k *Kernel) registerServices() {
	m := k.M
	m.RegisterService(SvcPanic, func(mm *m68k.Machine) uint64 {
		k.PanicMsg = fmt.Sprintf("unhandled exception, D0=%#x PC=%d cur=%#x",
			mm.D[0], mm.PC, k.CurTTE())
		k.mPanics.Inc()
		mm.PatchCode(mm.PC, m68k.Instr{Op: m68k.HALT}) // stop right here
		return 0
	})
	m.RegisterService(SvcMark, func(mm *m68k.Machine) uint64 {
		k.Marks = append(k.Marks, mm.Cycles)
		return 0
	})
	m.RegisterService(SvcExit, func(mm *m68k.Machine) uint64 {
		t := k.Cur()
		if t != nil {
			t.Dead = true
			t.Linked = false
		}
		k.mExits.Inc()
		live := k.g(GLiveThreads)
		if live > 0 {
			live--
			k.setg(GLiveThreads, live)
		}
		return 0
	})
	m.RegisterService(SvcThreadFault, func(mm *m68k.Machine) uint64 {
		// The bus trap's kill path: log the fault and do the exit
		// bookkeeping; the VM side then leaves the ring and frees the
		// TTE exactly like a voluntary exit. Frame above the service
		// call: [D0][A0][SR][PC], faulting PC at +12.
		rec := FaultRecord{
			TTE:   k.CurTTE(),
			PC:    mm.Peek(mm.A[7]+12, 4),
			Cycle: mm.Cycles,
		}
		if t := k.Cur(); t != nil {
			rec.Name = t.Name
			t.Dead = true
			t.Linked = false
		}
		k.Faults = append(k.Faults, rec)
		k.mFaults.Inc()
		if live := k.g(GLiveThreads); live > 0 {
			k.setg(GLiveThreads, live-1)
		}
		return 0
	})
	m.RegisterService(SvcAllocTTE, func(mm *m68k.Machine) uint64 {
		// Allocate TTE + kernel stack; return TTE in D0 and the
		// prototype... the caller's VM code does the filling.
		addr := k.alloc(TTESize + kstackSize)
		mm.D[0] = addr
		return 40 // modeled allocator path cost
	})
	m.RegisterService(SvcRegister, func(mm *m68k.Machine) uint64 {
		// D0 = TTE address, D1 = entry PC, D2 = user stack top.
		t := k.finishCreate(mm.D[0], mm.D[1], mm.D[2])
		_ = t
		return 0
	})
	m.RegisterService(SvcFreeTTE, func(mm *m68k.Machine) uint64 {
		tte := mm.D[1]
		if t, ok := k.Threads[tte]; ok {
			t.Dead = true
			t.Linked = false
			delete(k.Threads, tte)
			// The TTE memory is reclaimed; its code region is not
			// reused (code space is plentiful and the paper's kernel
			// also leaks synthesized code on destroy).
			k.Heap.Free(tte)
		}
		return 30
	})
	m.RegisterService(SvcFPResynth, func(mm *m68k.Machine) uint64 {
		k.resynthesizeFP(k.Cur())
		return 0
	})
	m.RegisterService(SvcTrace, func(mm *m68k.Machine) uint64 {
		if t := k.Cur(); t != nil {
			t.Linked = false
		}
		return 0
	})
	m.RegisterService(SvcOpen, func(mm *m68k.Machine) uint64 {
		// D1 = name pointer in the caller's quaspace. The VM side
		// already paid for the name lookup; this service does fd
		// bookkeeping and (charged) code synthesis.
		t := k.Cur()
		name := k.readCString(mm.D[1])
		if k.OpenHook == nil {
			mm.D[0] = ^uint32(0)
			return 0
		}
		fd, ok := k.OpenHook(k, t, name)
		if !ok {
			mm.D[0] = ^uint32(0)
			return 0
		}
		mm.D[0] = uint32(fd)
		return 0
	})
	m.RegisterService(SvcClose, func(mm *m68k.Machine) uint64 {
		t := k.Cur()
		if k.CloseHook == nil || !k.CloseHook(k, t, int32(mm.D[1])) {
			mm.D[0] = ^uint32(0)
			return 0
		}
		mm.D[0] = 0
		return 20
	})
	m.RegisterService(SvcPipe, func(mm *m68k.Machine) uint64 {
		t := k.Cur()
		if k.PipeHook == nil {
			mm.D[0] = ^uint32(0)
			return 0
		}
		rfd, wfd, ok := k.PipeHook(k, t)
		if !ok {
			mm.D[0] = ^uint32(0)
			return 0
		}
		mm.D[0] = uint32(rfd)
		mm.D[1] = uint32(wfd)
		return 0
	})
	m.RegisterService(SvcSock, func(mm *m68k.Machine) uint64 {
		t := k.Cur()
		if k.SockHook == nil {
			mm.D[0] = ^uint32(0)
			return 0
		}
		fd, ok := k.SockHook(k, t, mm.D[1], mm.D[2])
		if !ok {
			mm.D[0] = ^uint32(0)
			return 0
		}
		mm.D[0] = uint32(fd)
		return 0
	})
}

// readCString reads a NUL-terminated string from machine memory.
func (k *Kernel) readCString(addr uint32) string {
	var out []byte
	for i := uint32(0); i < 256; i++ {
		c := byte(k.M.Peek(addr+i, 1))
		if c == 0 {
			break
		}
		out = append(out, c)
	}
	return string(out)
}

// MarkDeltasMicros converts consecutive mark pairs into microsecond
// intervals.
func (k *Kernel) MarkDeltasMicros() []float64 {
	var out []float64
	for i := 1; i < len(k.Marks); i += 2 {
		out = append(out, k.M.Micros(k.Marks[i]-k.Marks[i-1]))
	}
	return out
}

// ResetMarks clears recorded marks.
func (k *Kernel) ResetMarks() { k.Marks = nil }
