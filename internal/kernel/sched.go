package kernel

import (
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// Fine-grain scheduling (Section 4.4): "round-robin with an adaptively
// adjusted CPU quantum per thread. Instead of priorities, Synthesis
// uses fine-grain scheduling, which assigns larger or smaller quanta
// to threads based on a 'need to execute' criterion ... determined by
// the rate at which I/O data flows into and out of its quaspace."
//
// The mechanism is split exactly as in the kernel: the data path is
// synthesized code bumping gauges (every queue operation counts
// itself — see internal/kio), the per-thread quantum is a TTE cell the
// thread's own sw_in re-arms the interval timer from, and the policy
// below reads the gauges and rewrites the quantum cells. The policy
// runs from the scheduler's adaptation interval; because it only
// touches per-thread cells (Code Isolation: the running thread reads
// its own quantum, the policy writes it between that thread's runs),
// it needs no locks.

// Scheduler parameters, in the paper's regime: "a typical quantum is
// on the order of a few hundred microseconds", adjusted "as large as
// possible while maintaining the fine granularity".
type SchedParams struct {
	MinQuantumUS  float64 // floor (default 100)
	MaxQuantumUS  float64 // ceiling (default 2000)
	BaseQuantumUS float64 // quantum at zero I/O rate (default 500)
	// GainUS is the quantum boost per I/O event observed in the last
	// adaptation window (default 2).
	GainUS float64
	// Smoothing in [0,1): how much of the previous estimate survives
	// an adaptation step (default 0.5).
	Smoothing float64
}

// DefaultSchedParams returns the standard policy settings.
func DefaultSchedParams() SchedParams {
	return SchedParams{
		MinQuantumUS:  100,
		MaxQuantumUS:  2000,
		BaseQuantumUS: 500,
		GainUS:        2,
		Smoothing:     0.5,
	}
}

// Scheduler is the adaptation policy state.
type Scheduler struct {
	K      *Kernel
	Params SchedParams
	rate   map[uint32]float64 // smoothed I/O events per window, by TTE
}

// NewScheduler creates the policy with default parameters.
func NewScheduler(k *Kernel) *Scheduler {
	return &Scheduler{K: k, Params: DefaultSchedParams(), rate: make(map[uint32]float64)}
}

// ioGauge reads and resets a thread's I/O gauge: the TTE cell plus
// the per-descriptor gauges the synthesized read/write routines bump.
func (s *Scheduler) ioGauge(t *Thread) uint32 {
	m := s.K.M
	total := m.Peek(t.TTE+TTEIOGauge, 4)
	m.Poke(t.TTE+TTEIOGauge, 4, 0)
	for fd := 0; fd < MaxFD; fd++ {
		cell := FDCell(t.TTE, fd, FDGauge)
		total += m.Peek(cell, 4)
		m.Poke(cell, 4, 0)
	}
	return total
}

// Adapt runs one adaptation step: read every thread's gauges, smooth
// the rate estimate, and rewrite the quantum cells. The next time
// each thread is switched in, its sw_in arms the timer with the new
// value — no synchronization needed beyond the cell write.
func (s *Scheduler) Adapt() {
	p := s.Params
	mhz := s.K.M.ClockMHz
	for tte, t := range s.K.Threads {
		if t.Dead || t == s.K.Idle {
			continue
		}
		events := float64(s.ioGauge(t))
		s.rate[tte] = p.Smoothing*s.rate[tte] + (1-p.Smoothing)*events
		q := p.BaseQuantumUS + p.GainUS*s.rate[tte]
		if q < p.MinQuantumUS {
			q = p.MinQuantumUS
		}
		if q > p.MaxQuantumUS {
			q = p.MaxQuantumUS
		}
		s.K.M.Poke(tte+TTEQuantum, 4, uint32(q*mhz))
	}
}

// QuantumUS reads a thread's current quantum in microseconds.
func (s *Scheduler) QuantumUS(t *Thread) float64 {
	return float64(s.K.M.Peek(t.TTE+TTEQuantum, 4)) / s.K.M.ClockMHz
}

// InstallAlarmDriver arranges for Adapt to run from the machine's
// alarm channel every windowUS microseconds: the alarm procedure is a
// KCALL stub (the policy is host code by DESIGN.md Section 4; its
// trigger is real machine time). It returns the synthesized alarm
// procedure's address. Only one driver may be installed per kernel.
func (s *Scheduler) InstallAlarmDriver(windowUS float64) uint32 {
	k := s.K
	cycles := int32(windowUS * k.M.ClockMHz)
	const svcAdapt = 110
	k.M.RegisterService(svcAdapt, func(mm *m68k.Machine) uint64 {
		s.Adapt()
		return 0
	})
	proc := k.C.Synthesize(nil, "sched_adapt", nil, func(e *synth.Emitter) {
		e.Kcall(svcAdapt)
		// Re-arm the alarm for the next window.
		e.MoveL(m68k.Imm(cycles), m68k.Abs(m68k.TimerBase+m68k.TimerRegAlarm))
		e.Rts()
	})
	k.M.Poke(GAlarmProc, 4, proc)
	k.Timer.Store(m68k.TimerRegAlarm, 4, uint32(cycles))
	k.M.Kick(k.Timer)
	return proc
}
