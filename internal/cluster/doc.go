// Package cluster is the fleet harness: N Quamachines, each running
// its own Synthesis kernel with synthesized per-socket I/O paths,
// bridged by a Go switch fabric and driven by a host-side load
// generator standing in for thousands of remote users.
//
// The fabric extends the 12-byte wire format upward instead of
// changing it: a cluster address packs a node id into the high byte
// of the 32-bit port word (net.MakeAddr), the fabric routes on that
// byte, and pops it before a frame enters a VM — so the synthesized
// receive handler's compare-immediate demux chains, the per-socket
// send routines, and the NIC device are all byte-identical to the
// single-machine configuration. Scale composes around the synthesized
// code, never through it.
//
// Topology: star. Node 0 is the host (the load generator); VM nodes
// are 1-based. Each VM runs one goroutine alternating between
// draining its fabric ingress ring into the NIC (paced by the ring's
// RxPending, so device backpressure is honored, not bypassed) and
// executing a bounded cycle chunk. Egress rides the NIC's Tx hook:
// the fabric's verdict lands in NetRegTxStat, so the synthesized
// send's bounded retry/backoff sees fabric congestion exactly as it
// sees a full loopback ring.
//
// Beyond steady-state traffic the package carries the fleet's
// measurement and failure planes: per-VM-prefixed fleet metrics
// (Snapshot), a per-hop request trace plane (trace.go) feeding merged
// Chrome traces, per-VM flight recorders (flight.go) that dump a
// dying guest's tail, and the composable fault plane (fault.go):
// per-link fault rules, scripted partition/heal windows, and per-VM
// wire injectors, all seeded and replayable. Tables 8–11 and the
// cluster/chaos soaks are built on these. All cluster rates are
// host-wall-clock and therefore nondeterministic; see
// docs/PERFORMANCE.md for how they are gated warn-only.
package cluster
