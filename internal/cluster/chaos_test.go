package cluster

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"synthesis/internal/net"
)

// dumpFlightOnFailure arranges for the fleet's flight-recorder state
// to be written to $FLIGHT_DIR if the test fails — CI uploads the
// directory as an artifact, turning the next soak heisenbug from a
// bisect hunt into reading a dump.
func dumpFlightOnFailure(t *testing.T, c *Cluster) {
	t.Helper()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("FLIGHT_DIR")
		if dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		var b strings.Builder
		c.DumpFlight(&b)
		path := filepath.Join(dir, fmt.Sprintf("%s.flight.txt", t.Name()))
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Logf("flight dump: %v", err)
			return
		}
		t.Logf("flight dump written to %s", path)
	})
}

// TestChaosSoak is the seeded, bounded chaos run CI executes under
// -race (the chaos-soak make target): two VMs take live echo traffic
// through lossy/corrupting/delaying links, per-VM injected ring-full
// drops, and socket churn, then a full host<->vm1 partition and heal.
// The invariants:
//
//   - no VM driver error — faults never crash a member, they only
//     lose, damage, or delay frames;
//   - acked-byte sequence integrity — every connection's completed
//     sequence count sums exactly to the reply counter, and the host
//     never accepts a damaged frame (corruption is injected only
//     toward the VMs, so host bad_sum must stay zero);
//   - liveness — with the resend cap set generously, no connection
//     gives up, and every connection the cut severed completes a
//     round trip after the heal;
//   - exact fabric accounting — the conservation identity over the
//     fault plane's counters balances to the frame.
func TestChaosSoak(t *testing.T) {
	cfg := fleetConfig(t, 2,
		"link=0>1:drop=0.03,corrupt=0.02;"+
			"link=0>2:drop=0.03,dup=0.02;"+
			"link=*>0:drop=0.02,delay=0.05:0.5;"+
			"vmfault=1:ringfull=0.05")
	cfg.SocketsPerVM = 4
	cfg.Conns = 32
	cfg.PayloadBytes = 64
	cfg.ChurnEvery = 96
	cfg.Timeout = 10 * time.Millisecond
	cfg.MaxResends = 30
	cfg.Seed = 11
	// The observability plane soaks with the chaos: tracing through a
	// faulty fleet exercises the abandon paths, and the flight
	// recorder is armed so a failure ships a dump (FLIGHT_DIR).
	cfg.TraceEvery = 16
	cfg.Flight = true

	c := New(cfg)
	dumpFlightOnFailure(t, c)
	c.Start()
	waitReplies(t, c, 300, 60*time.Second)

	// Partition vm1 from the host mid-traffic, hold, heal. 32 conns
	// dealt round-robin over 2 VMs put 16 behind the cut.
	const severed = 16
	c.Cut([]int{net.HostNode}, []int{1})
	time.Sleep(250 * time.Millisecond)
	c.Heal()

	// Every severed connection must complete a post-heal round trip,
	// each landing one observation in the recovery histogram.
	deadline := time.Now().Add(30 * time.Second)
	var recovered uint64
	for time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			t.Fatal(err)
		}
		recovered = c.Snapshot().Hists["cluster.loadgen.recovery_ms"].Count
		if recovered >= severed && c.AwaitingRecovery() == 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := c.AwaitingRecovery(); recovered < severed || n != 0 {
		t.Fatalf("recovery stalled: %d/%d connections recovered, %d still waiting",
			recovered, severed, n)
	}
	c.Stop()

	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if n := c.GaveUpConns(); n != 0 {
		t.Fatalf("%d connections gave up despite the generous resend cap", n)
	}
	if got, want := c.SeqSum(), c.Replies(); got != want {
		t.Fatalf("acked sequence sum %d != replies %d", got, want)
	}

	s := c.Snapshot()
	if bad := s.Counters["cluster.loadgen.bad_sum"]; bad != 0 {
		t.Errorf("host accepted %d damaged frames (corruption aims only at VMs)", bad)
	}
	if s.Counters["cluster.loadgen.gave_up"] != 0 {
		t.Errorf("gave_up counter = %d, want 0", s.Counters["cluster.loadgen.gave_up"])
	}
	rec := s.Hists["cluster.loadgen.recovery_ms"]
	if rec.Count == 0 {
		t.Error("no recovery-latency observations after the heal")
	}
	if s.Counters["cluster.fault.heals"] != 1 || s.Counters["cluster.fault.cuts"] != 1 {
		t.Errorf("cuts/heals = %d/%d, want 1/1",
			s.Counters["cluster.fault.cuts"], s.Counters["cluster.fault.heals"])
	}

	// The conservation identity, to the frame: every offered frame
	// (plus every dup the plane created) is routed, dropped at a full
	// ring, eaten by the partition, eaten by a link rule, refused by a
	// throttle, or flushed at shutdown.
	in := s.Counters["cluster.fabric.offered"] + s.Counters["cluster.fault.link.duplicated"]
	out := s.Counters["cluster.fabric.routed"] +
		s.Counters["cluster.fabric.dropped"] +
		s.Counters["cluster.fault.part_dropped"] +
		s.Counters["cluster.fault.link.dropped"] +
		s.Counters["cluster.fault.link.throttle_refused"] +
		s.Counters["cluster.fault.link.flushed"]
	if in != out {
		t.Errorf("conservation broken: in %d != out %d (%+v)", in, out, s.Counters)
	}

	// The faults actually fired: a soak that injected nothing proves
	// nothing.
	for _, name := range []string{
		"cluster.fault.link.dropped",
		"cluster.fault.link.corrupted",
		"cluster.fault.link.delayed",
		"cluster.fault.part_dropped",
		"cluster.loadgen.resends",
	} {
		if s.Counters[name] == 0 {
			t.Errorf("%s = 0: the chaos plan never exercised this fault", name)
		}
	}

	// The trace plane rode through the chaos: sampled traces stay
	// accounted (completed, incomplete, abandoned, or pending) and
	// faulted transits still complete some chains.
	sampled, completed, incomplete, abandoned := c.TraceCounts()
	if accounted := completed + incomplete + abandoned; accounted > sampled {
		t.Errorf("trace accounting leak: %d completed + %d incomplete + %d abandoned > %d sampled",
			completed, incomplete, abandoned, sampled)
	}
	if sampled == 0 || completed == 0 {
		t.Errorf("trace plane idle under chaos: sampled=%d completed=%d", sampled, completed)
	}
}
