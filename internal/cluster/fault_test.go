package cluster

import (
	"testing"
	"time"

	"synthesis/internal/fault"
	"synthesis/internal/net"
)

// These tests drive the fault plane through route() and step()
// directly — no VM executes, no goroutine runs — so every count is
// exact and every clock is synthetic.

func fleetConfig(t *testing.T, vms int, spec string) Config {
	t.Helper()
	plan, err := fault.ParseFleet(spec)
	if err != nil {
		t.Fatal(err)
	}
	return Config{VMs: vms, SocketsPerVM: 1, Conns: 1, Seed: 1, Faults: plan}
}

func hostFrame(dstNode int, tag byte) net.Frame {
	p := []byte{tag, tag, tag, tag}
	return net.Frame{
		Dst:     net.MakeAddr(dstNode, guestPortBase),
		Src:     net.MakeAddr(net.HostNode, replyPortBase),
		Sum:     net.Checksum(p),
		Payload: p,
	}
}

// TestLinkDropIsSilentAndExact: drop=1 eats every frame on the rule's
// link, tells the transmitter nothing, and counts each loss.
func TestLinkDropIsSilentAndExact(t *testing.T) {
	c := New(fleetConfig(t, 2, "link=0>1:drop=1"))
	for i := 0; i < 50; i++ {
		if !c.route(net.HostNode, hostFrame(1, byte(i))) {
			t.Fatal("silent loss leaked backpressure to the transmitter")
		}
	}
	// The rule is 0>1 only: the 1->2 direction is untouched.
	if !c.route(net.HostNode, hostFrame(2, 0)) {
		t.Fatal("unmatched link refused a frame")
	}
	if n := c.vms[0].ingress.Len(); n != 0 {
		t.Fatalf("vm1 ingress = %d frames past drop=1", n)
	}
	if n := c.vms[1].ingress.Len(); n != 1 {
		t.Fatalf("vm2 ingress = %d, want 1", n)
	}
	s := c.Reg.Snapshot()
	if got := s.Counters["cluster.fault.link.dropped"]; got != 50 {
		t.Fatalf("link.dropped = %d, want 50", got)
	}
	if s.Counters["cluster.fabric.offered"] != 51 || s.Counters["cluster.fabric.routed"] != 1 {
		t.Fatalf("offered/routed = %d/%d, want 51/1",
			s.Counters["cluster.fabric.offered"], s.Counters["cluster.fabric.routed"])
	}
}

// TestLinkCorruptIsChecksumDetectable: corruption flips payload bits
// only — the frame still routes, still carries its addresses, and
// always fails the end-to-end checksum.
func TestLinkCorruptIsChecksumDetectable(t *testing.T) {
	c := New(fleetConfig(t, 1, "link=1>0:corrupt=1"))
	p := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	for i := 0; i < 32; i++ {
		f := net.Frame{Dst: replyPortBase, Src: guestPortBase, Sum: net.Checksum(p), Payload: p}
		if !c.route(1, f) {
			t.Fatal("corrupt frame refused instead of delivered")
		}
		got, ok := c.hostRing.Get()
		if !ok {
			t.Fatal("corrupt frame vanished")
		}
		if got.Sum == net.Checksum(got.Payload) {
			t.Fatal("corrupted frame still passes the checksum")
		}
		if net.NodeOf(got.Src) != 1 || net.PortOf(got.Dst) != replyPortBase {
			t.Fatalf("corruption touched the address words: Src=%#x Dst=%#x", got.Src, got.Dst)
		}
	}
	if got := c.fp.mLinkCorrupted.Value(); got != 32 {
		t.Fatalf("link.corrupted = %d, want 32", got)
	}
	// The source payload slice must never be mutated (dup siblings and
	// ring-held frames share it).
	if p[0] != 1 || p[7] != 8 {
		t.Fatalf("corrupt mutated the caller's payload: % x", p)
	}
}

// TestLinkDupDelivers both copies and keeps the conservation identity.
func TestLinkDupDelivers(t *testing.T) {
	c := New(fleetConfig(t, 1, "link=0>1:dup=1"))
	for i := 0; i < 10; i++ {
		if !c.route(net.HostNode, hostFrame(1, byte(i))) {
			t.Fatal("dup path refused a frame")
		}
	}
	if n := c.vms[0].ingress.Len(); n != 20 {
		t.Fatalf("ingress = %d frames, want 20 (each doubled)", n)
	}
	s := c.Reg.Snapshot()
	if s.Counters["cluster.fault.link.duplicated"] != 10 {
		t.Fatalf("duplicated = %d, want 10", s.Counters["cluster.fault.link.duplicated"])
	}
	if off, dup, routed := s.Counters["cluster.fabric.offered"],
		s.Counters["cluster.fault.link.duplicated"],
		s.Counters["cluster.fabric.routed"]; off+dup != routed {
		t.Fatalf("offered %d + duplicated %d != routed %d", off, dup, routed)
	}
}

// TestLinkDelayHoldsAndReleases: a delayed frame is invisible until
// its hold elapses, then lands via step(); flush() accounts for frames
// still held at shutdown.
func TestLinkDelayHoldsAndReleases(t *testing.T) {
	c := New(fleetConfig(t, 1, "link=0>1:delay=1:5"))
	if !c.route(net.HostNode, hostFrame(1, 0xaa)) {
		t.Fatal("delayed frame refused")
	}
	if n := c.vms[0].ingress.Len(); n != 0 {
		t.Fatalf("delayed frame delivered immediately (ingress=%d)", n)
	}
	now := time.Now()
	c.fp.step(now.Add(time.Millisecond)) // before the 5ms hold
	if n := c.vms[0].ingress.Len(); n != 0 {
		t.Fatal("frame released before its hold elapsed")
	}
	c.fp.step(now.Add(20 * time.Millisecond))
	if n := c.vms[0].ingress.Len(); n != 1 {
		t.Fatalf("ingress = %d after the hold, want 1", n)
	}
	if c.fp.mLinkDelayed.Value() != 1 {
		t.Fatalf("link.delayed = %d, want 1", c.fp.mLinkDelayed.Value())
	}

	// A second frame held at shutdown is flushed, not leaked.
	c.route(net.HostNode, hostFrame(1, 0xbb))
	c.fp.flush()
	if c.fp.mFlushed.Value() != 1 {
		t.Fatalf("link.flushed = %d, want 1", c.fp.mFlushed.Value())
	}
}

// TestThrottleBackpressure: a rate-limited link queues up to
// throttleSlots frames, then refuses — the one fault that is
// transmitter-visible — and the pump's token refill drains the queue.
func TestThrottleBackpressure(t *testing.T) {
	c := New(fleetConfig(t, 1, "link=0>1:rate=5"))
	// First frame rides the initial token inline.
	if !c.route(net.HostNode, hostFrame(1, 0)) {
		t.Fatal("first frame refused with a token in the bucket")
	}
	if n := c.vms[0].ingress.Len(); n != 1 {
		t.Fatalf("first frame not delivered inline (ingress=%d)", n)
	}
	// The next throttleSlots frames queue silently.
	for i := 0; i < throttleSlots; i++ {
		if !c.route(net.HostNode, hostFrame(1, byte(i))) {
			t.Fatalf("frame %d refused with queue space left", i)
		}
	}
	// Queue full: backpressure reaches the transmitter.
	if c.route(net.HostNode, hostFrame(1, 0xff)) {
		t.Fatal("overflow frame accepted past a full throttle queue")
	}
	if got := c.fp.mThrottleRefused.Value(); got != 1 {
		t.Fatalf("throttle_refused = %d, want 1", got)
	}
	// Synthetic seconds of refill drain the queue (burst is ~1 at this
	// rate, so one frame releases per step).
	base := time.Now()
	for i := 1; i <= 4*throttleSlots && c.vms[0].ingress.Len() < 1+throttleSlots; i++ {
		c.fp.step(base.Add(time.Duration(i) * time.Second))
	}
	if n := c.vms[0].ingress.Len(); n != 1+throttleSlots {
		t.Fatalf("drained ingress = %d, want %d", n, 1+throttleSlots)
	}
}

// TestManualCutHeal: Cut severs host<->vm1 silently both ways, Heal
// restores the link and emits the heal event naming the severed VMs.
func TestManualCutHeal(t *testing.T) {
	c := New(Config{VMs: 2, SocketsPerVM: 1, Conns: 1, Seed: 1})
	c.Cut([]int{net.HostNode}, []int{1})

	if !c.route(net.HostNode, hostFrame(1, 0)) {
		t.Fatal("partition loss leaked backpressure")
	}
	p := []byte{9}
	if !c.route(1, net.Frame{Dst: replyPortBase, Src: guestPortBase, Sum: net.Checksum(p), Payload: p}) {
		t.Fatal("reverse-direction partition loss leaked backpressure")
	}
	if c.vms[0].ingress.Len() != 0 || c.hostRing.Len() != 0 {
		t.Fatal("cut link delivered a frame")
	}
	// vm2 is outside the cut.
	if !c.route(net.HostNode, hostFrame(2, 0)) || c.vms[1].ingress.Len() != 1 {
		t.Fatal("cut severed a link it does not cover")
	}
	if got := c.fp.mPartDropped.Value(); got != 2 {
		t.Fatalf("part_dropped = %d, want 2", got)
	}

	c.Heal()
	select {
	case ev := <-c.fp.healCh:
		if !ev.vms[1] || ev.vms[2] {
			t.Fatalf("heal event names VMs %v, want {1}", ev.vms)
		}
	default:
		t.Fatal("Heal emitted no event")
	}
	if !c.route(net.HostNode, hostFrame(1, 1)) || c.vms[0].ingress.Len() != 1 {
		t.Fatal("healed link still dropping")
	}
	if c.fp.mCuts.Value() != 1 || c.fp.mHeals.Value() != 1 {
		t.Fatalf("cuts/heals = %d/%d, want 1/1", c.fp.mCuts.Value(), c.fp.mHeals.Value())
	}
}

// TestScheduledPartition drives a part= window with a synthetic clock:
// the cut activates inside [From, To) and heals at To.
func TestScheduledPartition(t *testing.T) {
	c := New(fleetConfig(t, 1, "part=0|1@100-200"))
	base := time.Now()
	c.fp.epoch = base

	c.fp.step(base.Add(50 * time.Millisecond))
	if !c.route(net.HostNode, hostFrame(1, 0)) || c.vms[0].ingress.Len() != 1 {
		t.Fatal("partition active before its window")
	}
	c.fp.step(base.Add(150 * time.Millisecond))
	if !c.route(net.HostNode, hostFrame(1, 1)) {
		t.Fatal("partition loss leaked backpressure")
	}
	if c.vms[0].ingress.Len() != 1 {
		t.Fatal("frame crossed an active scripted cut")
	}
	c.fp.step(base.Add(250 * time.Millisecond))
	if !c.route(net.HostNode, hostFrame(1, 2)) || c.vms[0].ingress.Len() != 2 {
		t.Fatal("scripted cut still active past its window")
	}
	select {
	case ev := <-c.fp.healCh:
		if !ev.vms[1] {
			t.Fatalf("scheduled heal names VMs %v, want {1}", ev.vms)
		}
	default:
		t.Fatal("scheduled heal emitted no event")
	}
	// The window is one-shot: stepping back through it must not re-cut.
	c.fp.step(base.Add(150 * time.Millisecond))
	if got := c.fp.mCuts.Value(); got != 1 {
		t.Fatalf("cuts = %d, want 1 (window re-armed)", got)
	}
}

// TestFabricDropAccountingExact forces the ingress ring full with no
// VM running and counts every outcome: the fabric's drop counters are
// exact, not sampled.
func TestFabricDropAccountingExact(t *testing.T) {
	const overflow = 37
	c := New(Config{VMs: 1, SocketsPerVM: 1, Conns: 1, Seed: 1})
	for i := 0; i < ingressSlots; i++ {
		if !c.route(net.HostNode, hostFrame(1, byte(i))) {
			t.Fatalf("frame %d refused with ring space left", i)
		}
	}
	for i := 0; i < overflow; i++ {
		if c.route(net.HostNode, hostFrame(1, byte(i))) {
			t.Fatalf("overflow frame %d accepted past a full ring", i)
		}
	}
	s := c.Reg.Snapshot()
	off, routed, dropped := s.Counters["cluster.fabric.offered"],
		s.Counters["cluster.fabric.routed"], s.Counters["cluster.fabric.dropped"]
	if off != ingressSlots+overflow {
		t.Fatalf("offered = %d, want %d", off, ingressSlots+overflow)
	}
	if routed != ingressSlots {
		t.Fatalf("routed = %d, want %d", routed, ingressSlots)
	}
	if dropped != overflow {
		t.Fatalf("dropped = %d, want %d", dropped, overflow)
	}
	if off != routed+dropped {
		t.Fatalf("conservation broken: offered %d != routed %d + dropped %d", off, routed, dropped)
	}
}
