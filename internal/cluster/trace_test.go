package cluster

import (
	"strings"
	"testing"
	"time"
)

// waitTraces polls until the trace plane has completed at least n
// traces or the deadline passes.
func waitTraces(t *testing.T, c *Cluster, n uint64, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			t.Fatalf("fleet error while waiting: %v", err)
		}
		if _, done, _, _ := c.TraceCounts(); done >= n {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	_, done, _, _ := c.TraceCounts()
	t.Fatalf("completed traces = %d, want >= %d within %v", done, n, d)
}

// TestTraceConservation is the trace plane's frame-identity analogue:
// on every completed trace, the nine event stamps are monotone, the
// eight hop deltas are each non-negative, and their sum equals the
// round trip measured between the same two clock reads the load
// generator used — exactly, not within a tolerance, because the
// endpoints are shared and the interior telescopes. It also bounds
// the bookkeeping: every sampled request is accounted completed,
// incomplete, abandoned, or still pending, and on a healthy fleet
// the large majority complete.
func TestTraceConservation(t *testing.T) {
	c := New(Config{
		VMs: 2, SocketsPerVM: 4, Conns: 16, PayloadBytes: 32,
		TraceEvery: 4, Seed: 7,
	})
	c.Start()
	defer c.Stop()
	waitTraces(t, c, 32, 20*time.Second)
	c.Stop()

	traces := c.Traces()
	if len(traces) < 32 {
		t.Fatalf("retained traces = %d, want >= 32", len(traces))
	}
	for _, r := range traces {
		for i := 0; i < HopCount; i++ {
			if r.HopNS(i) < 0 {
				t.Fatalf("conn %d seq %d: hop %s negative (%d ns); stamps %v",
					r.Conn, r.VM, HopName(i), r.HopNS(i), r.T)
			}
		}
		var sum int64
		for i := 0; i < HopCount; i++ {
			sum += r.HopNS(i)
		}
		if sum != r.RTTNS() {
			t.Fatalf("conn %d: hop sum %d ns != rtt %d ns", r.Conn, sum, r.RTTNS())
		}
		if r.RTTNS() <= 0 {
			t.Fatalf("conn %d: non-positive traced rtt %d ns", r.Conn, r.RTTNS())
		}
		if r.VM < 1 || r.VM > 2 {
			t.Fatalf("conn %d: traced vm = %d", r.Conn, r.VM)
		}
	}

	sampled, completed, incomplete, abandoned := c.TraceCounts()
	if accounted := completed + incomplete + abandoned; accounted > sampled {
		t.Fatalf("trace accounting leak: completed %d + incomplete %d + abandoned %d > sampled %d",
			completed, incomplete, abandoned, sampled)
	}
	// A quiet fleet (no faults, no churn) should complete most chains;
	// the slack covers requests still pending at Stop and the odd
	// timeout-resend under host scheduling jitter.
	if completed*4 < sampled*3 {
		t.Fatalf("completion rate: %d of %d sampled", completed, sampled)
	}

	// The per-hop histograms saw every completed trace.
	snap := c.Snapshot()
	for i := 0; i < HopCount; i++ {
		h := snap.Hists["cluster.trace.hop."+HopName(i)+"_us"]
		if h.Count != completed {
			t.Errorf("hop %s histogram count = %d, want %d", HopName(i), h.Count, completed)
		}
	}
}

// TestTraceDisabledZeroCost pins the off-state contract: TraceEvery 0
// leaves the tracer nil and registers no cluster.trace metrics.
func TestTraceDisabledZeroCost(t *testing.T) {
	c := New(Config{VMs: 1, SocketsPerVM: 2, Conns: 2, Seed: 1})
	if c.tr != nil {
		t.Fatal("tracer armed without TraceEvery")
	}
	if c.Traces() != nil {
		t.Fatal("Traces() non-nil with tracing off")
	}
	for _, n := range c.Reg.Names() {
		if strings.HasPrefix(n, "cluster.trace.") {
			t.Fatalf("trace metric %q registered with tracing off", n)
		}
	}
	// VMs boot without the profiler when unobserved.
	if c.vms[0].K.Prof != nil {
		t.Fatal("profiler attached without tracing or flight")
	}
}

// TestWriteTrace checks the merged Chrome export: a process row per
// VM plus the fabric row, hop slices for retained traces, and VM
// region slices mapped onto the wall timeline.
func TestWriteTrace(t *testing.T) {
	c := New(Config{
		VMs: 2, SocketsPerVM: 2, Conns: 8, PayloadBytes: 32,
		TraceEvery: 4, Seed: 11,
	})
	c.Start()
	defer c.Stop()
	waitTraces(t, c, 8, 20*time.Second)
	c.Stop()

	var buf strings.Builder
	if err := c.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"fabric/loadgen"`, `"vm1"`, `"vm2"`,
		`"fabric_out"`, `"host_dwell"`, `"guest_send"`,
		`"kio.net_intr"`, // a VM region slice made it onto the timeline
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merged trace missing %s", want)
		}
	}
}

// TestFlightRecorderDump kills a guest and expects the flight
// recorder to capture the failure's tail: the error, the thread
// table, profiler events, and the instruction trace.
func TestFlightRecorderDump(t *testing.T) {
	c := New(Config{
		VMs: 1, SocketsPerVM: 2, Conns: 2, PayloadBytes: 32,
		Flight: true, Seed: 5,
	})
	if c.vms[0].K.M.Trace == nil {
		t.Fatal("flight VM booted without an instruction trace ring")
	}
	c.Start()
	defer c.Stop()
	waitReplies(t, c, 50, 20*time.Second)

	// Induce a guest panic: KillVM sets PanicMsg, which Run maps to
	// ErrPanic — the same path a real panic service trap takes.
	c.KillVM(1, "induced failure")

	deadline := time.Now().Add(10 * time.Second)
	for len(c.FlightDumps()) == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	dumps := c.FlightDumps()
	if len(dumps) == 0 {
		t.Fatal("no flight dump after induced failure")
	}
	d := dumps[0]
	for _, want := range []string{
		"==== flight vm1 ====",
		"error:",
		"panic: induced failure",
		"thread ",
		"-- last ",
	} {
		if !strings.Contains(d, want) {
			t.Errorf("flight dump missing %q:\n%s", want, d)
		}
	}

	// DumpFlight renders on demand too (soak-failure path).
	var buf strings.Builder
	c.DumpFlight(&buf)
	if !strings.Contains(buf.String(), "==== flight vm1 ====") {
		t.Error("DumpFlight produced no per-VM section")
	}
}
