package cluster

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"synthesis/internal/net"
)

// TestDiag is a manual diagnostic, enabled via CLUSTER_DIAG="vms conns".
func TestDiag(t *testing.T) {
	spec := os.Getenv("CLUSTER_DIAG")
	if spec == "" {
		t.Skip("set CLUSTER_DIAG=\"<vms> <conns>\" to run")
	}
	var vms, conns int
	fmt.Sscanf(spec, "%d %d", &vms, &conns)
	_ = strconv.IntSize
	c := New(Config{
		VMs: vms, SocketsPerVM: 8, Conns: conns, PayloadBytes: 64, Seed: 1,
		Timeout: 500 * time.Millisecond,
	})
	var mu sync.Mutex
	logged := 0
	var arm atomic.Bool
	for _, vm := range c.VMs() {
		vm := vm
		orig := vm.K.Net.Tx
		vm.K.Net.Tx = func(b []byte) bool {
			mu.Lock()
			if arm.Load() && logged < 40 {
				f, ok := net.DecodeFrame(b)
				t.Logf("tx vm%d ok=%v dst=%08x src=%08x plen=%d pfx=% x",
					vm.ID, ok, f.Dst, f.Src, len(f.Payload), f.Payload[:min(12, len(f.Payload))])
				logged++
			}
			mu.Unlock()
			return orig(b)
		}
	}
	c.Start()
	time.Sleep(900 * time.Millisecond)
	arm.Store(true)
	time.Sleep(100 * time.Millisecond)
	for snap := 0; snap < 4; snap++ {
		for _, vm := range c.VMs() {
			vm.mu.Lock()
			t.Logf("vm%d nic: rxPend=%d txLaunched=%d drops=%d ingress=%d",
				vm.ID, vm.K.Net.RxPending(), vm.K.Net.TxLaunched(), vm.K.Net.Dropped(), vm.ingress.Len())
			for _, s := range vm.IO.NetSockets() {
				m := vm.K.M
				t.Logf("  sock %#x q=%#x head=%d tail=%d gauge=%d drops=%d errs=%d txfail=%d",
					s.Local, s.Queue,
					m.Peek(s.Queue+0, 4), m.Peek(s.Queue+4, 4),
					m.Peek(s.Queue+12, 4), m.Peek(s.Queue+16, 4),
					m.Peek(s.Queue+20, 4), m.Peek(s.Queue+24, 4))
			}
			vm.mu.Unlock()
		}
		time.Sleep(50 * time.Millisecond)
	}
	s0 := c.Snapshot()
	time.Sleep(500 * time.Millisecond)
	s1 := c.Snapshot()
	c.Stop()
	if err := c.Err(); err != nil {
		t.Log("ERR:", err)
	}
	d := s1.Delta(s0)
	var names []string
	for n := range s1.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t.Logf("%-44s total=%-10d delta=%d", n, s1.Counters[n], d.Counters[n])
	}
	rtt := d.Hists["cluster.loadgen.rtt_us"]
	t.Logf("rtt count=%d p50=%.0f p99=%.0f", rtt.Count, rtt.Quantile(0.50), rtt.Quantile(0.99))
}
