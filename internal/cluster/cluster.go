package cluster

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"synthesis/internal/asmkit"
	"synthesis/internal/fault"
	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/metrics"
	"synthesis/internal/net"
	"synthesis/internal/prof"
	"synthesis/internal/unixemu"
)

// Fabric geometry and the guest port plan. Guest echo sockets sit at
// guestPortBase+j; their replies target host ports replyPortBase+j.
// Logical connections are multiplexed over the guest sockets (the
// per-kernel socket capacity is kio.MaxSockets) and matched by the
// connection id carried in every payload, so the connection count is
// bounded by the 24-bit payload id space, not the socket table.
const (
	guestPortBase = 0x50
	replyPortBase = 0x900

	ingressSlots = 1024 // per-VM fabric ingress ring
	hostSlots    = 4096 // host-bound (reply) ring
)

// Config parameterizes a cluster.
type Config struct {
	// VMs is the Quamachine count (default 2).
	VMs int
	// SocketsPerVM is the echo sockets (and guest threads) per VM
	// (default 8, capped at kio.MaxSockets).
	SocketsPerVM int
	// Conns is the logical connection count across the whole fleet
	// (default 64). Connections are dealt round-robin over
	// (VM, socket) pairs.
	Conns int
	// PayloadBytes sizes each message (default 64; min 8 for the
	// [conn][seq] header, max net.MTU).
	PayloadBytes int
	// ChurnEvery makes each guest thread close and reopen its socket
	// after that many echoes (0 = no churn). Frames arriving in the
	// gap are stack drops; the load generator's timeout resends.
	ChurnEvery int
	// ChunkCycles bounds each VM execution chunk (default 4096).
	ChunkCycles uint64
	// Timeout is the load generator's initial resend timeout (default
	// 50ms). Each unanswered resend doubles the wait up to MaxBackoff.
	Timeout time.Duration
	// MaxResends caps resend attempts per message; past the cap the
	// connection gives up (counted in cluster.loadgen.gave_up) and goes
	// silent. 0 means never give up.
	MaxResends int
	// MaxBackoff caps the doubled resend wait (default 16x Timeout,
	// at most 2s).
	MaxBackoff time.Duration
	// Seed fixes the payload padding generator (and, xored with a
	// plane constant, the fault plane's draws).
	Seed int64
	// Faults is the fleet fault schedule: per-link fabric rules,
	// scripted partitions, and per-VM injector plans (see
	// fault.FleetSpecHelp). The zero value injects nothing.
	Faults fault.FleetPlan
	// Metrics is the shared registry; each VM registers under a
	// vm<i>. prefix. A fresh registry is created when nil.
	Metrics *metrics.Registry
	// TraceEvery samples one in N fresh request launches into the
	// fleet trace plane (see trace.go). 0 — the default — disables
	// tracing entirely: the hot paths pay one nil check. Enabling it
	// also attaches the profiler to every VM (the trace plane's IRQ
	// and region hooks ride on it), which slows the interpreter;
	// tracing is an observability mode, not a benchmark default.
	TraceEvery int
	// TraceKeep bounds the completed traces retained for Chrome
	// export (default 512).
	TraceKeep int
	// Flight arms the per-VM flight recorder: the profiler's event
	// ring plus a hardware instruction-trace ring, rendered into a
	// dump the moment a VM driver fails (see flight.go).
	Flight bool
}

func (cfg *Config) setDefaults() {
	if cfg.VMs <= 0 {
		cfg.VMs = 2
	}
	if cfg.VMs > net.MaxNodes {
		cfg.VMs = net.MaxNodes
	}
	if cfg.SocketsPerVM <= 0 {
		cfg.SocketsPerVM = 8
	}
	if cfg.SocketsPerVM > kio.MaxSockets {
		cfg.SocketsPerVM = kio.MaxSockets
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 64
	}
	if cfg.PayloadBytes < 8 {
		cfg.PayloadBytes = 64
	}
	if cfg.PayloadBytes > net.MTU {
		cfg.PayloadBytes = net.MTU
	}
	if cfg.ChunkCycles == 0 {
		cfg.ChunkCycles = 4096
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 16 * cfg.Timeout
		if cfg.MaxBackoff > 2*time.Second {
			cfg.MaxBackoff = 2 * time.Second
		}
	}
	if cfg.MaxBackoff < cfg.Timeout {
		cfg.MaxBackoff = cfg.Timeout
	}
}

// VM is one fleet member: a booted kernel, its fabric ingress ring,
// and the mutex that serializes execution chunks against snapshots.
type VM struct {
	ID int // 1-based node id
	K  *kernel.Kernel
	IO *kio.IO

	mu      sync.Mutex // held around drain+Run chunks and by Snapshot
	ingress *net.PacketRing
	err     error
	// clk maps this VM's cycle clock onto the fleet wall clock from
	// sync points the driver records at chunk boundaries. Nil unless
	// tracing or the flight recorder is on.
	clk *prof.ClockMap
}

func (vm *VM) setErr(err error) {
	vm.mu.Lock()
	if vm.err == nil {
		vm.err = err
	}
	vm.mu.Unlock()
}

// Err returns the first error the VM's driver hit (nil while healthy).
func (vm *VM) Err() error {
	vm.mu.Lock()
	defer vm.mu.Unlock()
	return vm.err
}

// drainIngress moves fabric frames into the NIC's DMA ring, popping
// the node tag so the synthesized demux sees a plain port. Paced by
// the ring's free space: frames the device can't take stay queued in
// the fabric ring instead of being dropped at the device. Returns the
// number of frames moved, the driver's busy signal.
func (c *Cluster) drainIngress(vm *VM) int {
	nic := vm.K.Net
	n := 0
	for nic.RxPending() < kio.NetRingSlots {
		f, ok := vm.ingress.Get()
		if !ok {
			break
		}
		f.Dst = net.PortOf(f.Dst)
		nic.InjectFrame(net.EncodeFrame(f))
		if c.tr != nil && c.tr.active.Load() > 0 {
			c.tr.onDeposit(vm.ID, &f, vm.K.M.Clock())
		}
		n++
	}
	return n
}

// Cluster is a running (or runnable) fleet.
type Cluster struct {
	cfg Config
	// Reg is the shared metrics plane: per-VM kernel and kio metrics
	// under vm<i>. prefixes, fabric and load-generator metrics under
	// cluster.
	Reg *metrics.Registry

	vms      []*VM
	hostRing *net.PacketRing
	fp       *faultPlane
	padSeed  uint64
	start    time.Time
	// tr is the fleet trace plane (nil when TraceEvery == 0); flight
	// holds captured failure dumps (nil when Flight is off).
	tr     *tracer
	flight *flightState

	// lgMu guards the load generator's connection table; the generator
	// holds it across each sweep, probes (ConnStates, AwaitingRecovery)
	// take it briefly.
	lgMu  sync.Mutex
	conns []lgConn

	stop    atomic.Bool
	wg      sync.WaitGroup
	started bool
	nActive atomic.Int64

	mOffered     *metrics.Counter
	mRouted      *metrics.Counter
	mDropped     *metrics.Counter
	mUndecodable *metrics.Counter
	mSent        *metrics.Counter
	mReplies     *metrics.Counter
	mTimeouts    *metrics.Counter
	mResends     *metrics.Counter
	mGaveUp      *metrics.Counter
	mStale       *metrics.Counter
	mBadSum      *metrics.Counter
	hRTT         *metrics.Hist
	hRecovery    *metrics.Hist
}

// New boots a fleet per cfg: VMs each with kio installed, guest echo
// threads spawned (one per socket), NICs attached to the fabric, and
// the load generator's connection table dealt. Nothing executes until
// Start.
func New(cfg Config) *Cluster {
	cfg.setDefaults()
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.New()
	}
	c := &Cluster{
		cfg:      cfg,
		Reg:      reg,
		hostRing: net.NewPacketRing(hostSlots),
		padSeed:  uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 1,
		start:    time.Now(),

		mOffered:     reg.Counter("cluster.fabric.offered"),
		mRouted:      reg.Counter("cluster.fabric.routed"),
		mDropped:     reg.Counter("cluster.fabric.dropped"),
		mUndecodable: reg.Counter("cluster.fabric.undecodable"),
		mSent:        reg.Counter("cluster.loadgen.sent"),
		mReplies:     reg.Counter("cluster.loadgen.replies"),
		mTimeouts:    reg.Counter("cluster.loadgen.timeouts"),
		mResends:     reg.Counter("cluster.loadgen.resends"),
		mGaveUp:      reg.Counter("cluster.loadgen.gave_up"),
		mStale:       reg.Counter("cluster.loadgen.stale"),
		mBadSum:      reg.Counter("cluster.loadgen.bad_sum"),
		hRTT:         reg.Hist("cluster.loadgen.rtt_us"),
		hRecovery:    reg.Hist("cluster.loadgen.recovery_ms"),
	}
	c.fp = newFaultPlane(c, cfg.Faults, cfg.Seed)
	if cfg.TraceEvery > 0 {
		c.tr = newTracer(c, cfg.TraceEvery, cfg.TraceKeep)
	}
	if cfg.Flight {
		c.flight = &flightState{}
	}

	for id := 1; id <= cfg.VMs; id++ {
		c.vms = append(c.vms, c.bootVM(id))
	}

	// Every VM boot bound the plane clock to its own machine; a fleet
	// has no single VM clock, so the cluster re-binds it to wall time
	// in nanoseconds (MHz 1000: Micros = ns/1000, Rate = per wall
	// second) — aggregate throughput is a wall-clock statement.
	reg.SetClock(func() uint64 { return uint64(time.Since(c.start)) }, 1000)

	for i := 0; i < cfg.Conns; i++ {
		vm := 1 + i%cfg.VMs
		sock := (i / cfg.VMs) % cfg.SocketsPerVM
		c.conns = append(c.conns, lgConn{
			vm:   vm,
			port: guestPortBase + uint32(sock),
		})
	}
	return c
}

// bootVM brings up one fleet member: a Sun 3/160-point kernel with
// its metrics under a vm<i>. prefix, the NIC's Tx hook pointed at the
// fabric, and one guest echo thread per socket.
func (c *Cluster) bootVM(id int) *VM {
	// Tracing and the flight recorder both ride the profiler's hooks;
	// neither is a benchmark default, so the plane only attaches (and
	// pays its per-step cost) when asked for.
	observed := c.tr != nil || c.flight != nil
	mcfg := m68k.Sun3Config()
	if c.flight != nil {
		mcfg = flightMachineConfig(mcfg)
	}
	k := kernel.Boot(kernel.Config{
		Machine:         mcfg,
		ChargeSynthesis: true,
		Profile:         observed,
		Metrics:         c.Reg.Sub(fmt.Sprintf("vm%d.", id)),
	})
	io := kio.Install(k)
	unixemu.Install(k)

	vm := &VM{ID: id, K: k, IO: io, ingress: net.NewPacketRing(ingressSlots)}
	if observed {
		vm.clk = prof.NewClockMap(mcfg.ClockMHz)
	}
	if c.tr != nil {
		k.Prof.OnIRQ = func(level, vec int, raisedAt, takenAt uint64) {
			if level == m68k.IRQNet && c.tr.active.Load() > 0 {
				c.tr.onIRQ(id, takenAt)
			}
		}
		k.Prof.OnRegionEnter = func(name string, at uint64) {
			if c.tr.active.Load() > 0 {
				c.tr.onRegion(id, name, at)
			}
		}
	}
	k.Net.Tx = func(frame []byte) bool { return c.routeRaw(id, frame) }
	c.Reg.SampleGauge(fmt.Sprintf("cluster.fabric.vm%d.ingress_depth", id),
		func() float64 { return float64(vm.ingress.Len()) })

	// Compose the member's own fault injector: the Base plan (plain
	// single-machine clauses apply fleet-wide) overlaid with this VM's
	// vmfault= clause. The injector runs inside the driver goroutine
	// under vm.mu, so its stats are safe to sample from
	// Cluster.Snapshot, which quiesces every VM.
	plan := c.cfg.Faults.Base
	for _, vf := range c.cfg.Faults.VMFaults {
		if vf.VM == id {
			plan = fault.Merge(plan, vf.Plan)
		}
	}
	if !plan.Empty() {
		inj := fault.New(plan, c.cfg.Seed+int64(id))
		inj.Attach(k.M)
		pfx := fmt.Sprintf("vm%d.fault.", id)
		c.Reg.Sample(pfx+"wire_dropped", func() uint64 { return inj.Stats.Dropped })
		c.Reg.Sample(pfx+"wire_corrupted", func() uint64 { return inj.Stats.Corrupted })
		c.Reg.Sample(pfx+"wire_duplicated", func() uint64 { return inj.Stats.Duplicated })
		c.Reg.Sample(pfx+"forced_full", func() uint64 { return inj.Stats.ForcedFull })
	}

	// One guest echo thread per socket. Each thread opens its own
	// socket (the open synthesizes that socket's send/recv code) and
	// echoes forever; under churn it closes and reopens on a period.
	var first *kernel.Thread
	for j := 0; j < c.cfg.SocketsPerVM; j++ {
		b := asmkit.New()
		buildEchoThread(b, guestPortBase+uint32(j), replyPortBase+uint32(j),
			guestBufBase+uint32(j)*guestBufStride, int32(c.cfg.ChurnEvery))
		t := k.SpawnKernel(fmt.Sprintf("echo%d", j), b.Link(k.M))
		if first == nil {
			first = t
		}
	}
	k.Start(first)
	return vm
}

// routeRaw is the NIC Tx hook: wire bytes off a VM into the switch.
func (c *Cluster) routeRaw(from int, frame []byte) bool {
	f, ok := net.DecodeFrame(frame)
	if !ok {
		c.mUndecodable.Inc()
		return false
	}
	return c.route(from, f)
}

// route switches one frame by the node byte of its destination. Host-
// bound frames get the source VM's node pushed onto Src (the reverse
// of the tag pop at VM ingress), so the host can tell fleet members
// apart. When the fault plane is armed, the frame transits it first:
// silent losses (drop, partition) still return true — a network does
// not report the frames it eats — while throttle overflow returns
// false, the same transmitter-visible backpressure as a full ring.
// Returns false when the destination ring is full or the node does
// not exist. Every frame lands in exactly one counter family:
//
//	offered == routed + dropped + plane-consumed
func (c *Cluster) route(from int, f net.Frame) bool {
	c.mOffered.Inc()
	node := net.NodeOf(f.Dst)
	if node != net.HostNode && (node < 1 || node > len(c.vms)) {
		c.mDropped.Inc()
		return false
	}
	if node == net.HostNode {
		f.Src = net.MakeAddr(from, net.PortOf(f.Src))
		// A traced reply leaving its VM: stamp the launch before the
		// return fabric transit (fault delays land in fabric_back).
		if c.tr != nil && from != net.HostNode && c.tr.active.Load() > 0 {
			c.tr.onTx(from, &f, c.vms[from-1].K.M.Clock())
		}
	}
	if c.fp.enabled.Load() {
		deliver, ok := c.fp.transit(from, node, &f)
		if !deliver {
			return ok
		}
	}
	return c.deliver(node, f)
}

// deliver puts one frame on its destination ring, counting the
// outcome. The plane's pump and dup paths re-enter here, so held and
// duplicated frames share the routed/dropped accounting.
func (c *Cluster) deliver(node int, f net.Frame) bool {
	var ring *net.PacketRing
	if node == net.HostNode {
		ring = c.hostRing
	} else {
		ring = c.vms[node-1].ingress
	}
	// The trace stamp lands before the Put: once the frame is on the
	// ring the consumer can race ahead of this goroutine, and a later
	// stamp would leave the hop chain wedged behind an event the
	// consumer already tried to record. A stamp on a frame the ring
	// then refuses is harmless — the lost message gets resent, which
	// abandons the trace.
	if c.tr != nil && c.tr.active.Load() > 0 {
		c.tr.onDeliver(node, &f, time.Now())
	}
	if !ring.Put(f) {
		c.mDropped.Inc()
		return false
	}
	c.mRouted.Inc()
	return true
}

// Start launches the per-VM drivers and the load generator.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	c.fp.mu.Lock()
	c.fp.epoch = time.Now()
	c.fp.mu.Unlock()
	if c.fp.timed() {
		c.wg.Add(1)
		go c.faultPump()
	}
	for _, vm := range c.vms {
		c.wg.Add(1)
		go c.drive(vm)
	}
	c.wg.Add(1)
	go c.loadgen()
}

// drive is one VM's goroutine: drain fabric ingress, run a cycle
// chunk, repeat. The VM mutex is held across each drain+run pair so a
// Snapshot never reads VM memory mid-chunk.
//
// Scheduling matters more than it looks: on a host with few cores, N
// spinning drivers would starve the load generator into whole Go
// preemption slices (~10ms) between turns, and measured RTT would be
// scheduler latency, not fleet latency. So every chunk ends in a
// Gosched, and a VM with no frame work (nothing drained, nothing
// transmitted, nothing pending in the DMA ring) backs off with
// escalating sleeps — guests spend idle time blocked on receive, so
// burning host CPU to run their scheduler loop buys nothing.
func (c *Cluster) drive(vm *VM) {
	defer c.wg.Done()
	idle := 0
	for !c.stop.Load() {
		vm.mu.Lock()
		if vm.err != nil {
			vm.mu.Unlock()
			return
		}
		busy := c.drainIngress(vm) > 0
		tx0 := vm.K.Net.TxLaunched()
		err := vm.K.Run(c.cfg.ChunkCycles)
		busy = busy || vm.K.Net.TxLaunched() != tx0 || vm.K.Net.RxPending() > 0
		if vm.clk != nil {
			// One sync point per chunk: the cycle↔wall relation the
			// merged trace timeline interpolates between.
			vm.clk.Sync(vm.K.M.Clock(), c.nowNS(time.Now()))
		}
		vm.mu.Unlock()
		if err == nil {
			// Run maps a machine halt to nil: every guest thread exited,
			// which a healthy echo fleet never does.
			c.recordVMErr(vm, fmt.Errorf("cluster: vm%d halted", vm.ID))
			return
		}
		if !errors.Is(err, m68k.ErrCycleLimit) {
			c.recordVMErr(vm, fmt.Errorf("cluster: vm%d: %w", vm.ID, err))
			return
		}
		if busy {
			idle = 0
			runtime.Gosched()
			continue
		}
		if idle < 16 {
			idle++
		}
		if idle <= 2 {
			runtime.Gosched()
		} else {
			// 75us..400us: long enough to hand the core over, short
			// enough that a frame queued meanwhile waits less than a
			// chunk or two.
			time.Sleep(time.Duration(idle) * 25 * time.Microsecond)
		}
	}
}

func (c *Cluster) recordVMErr(vm *VM, err error) {
	// Capture the flight dump before publishing the error: the rings
	// still hold the failure's tail, and nothing else runs this VM.
	c.captureFlight(vm, err)
	vm.setErr(err)
}

// Stop halts the drivers and the load generator and waits for them.
// The cluster can be snapshotted after Stop but not restarted.
func (c *Cluster) Stop() {
	if !c.started {
		return
	}
	c.stop.Store(true)
	c.wg.Wait()
}

// Snapshot takes one registry snapshot covering the whole fleet, with
// every VM quiesced: all VM mutexes are held (in node order) so the
// sampled closures reading VM memory never race a running chunk.
func (c *Cluster) Snapshot() metrics.Snapshot {
	for _, vm := range c.vms {
		vm.mu.Lock()
	}
	s := c.Reg.Snapshot()
	for i := len(c.vms) - 1; i >= 0; i-- {
		c.vms[i].mu.Unlock()
	}
	return s
}

// Err returns the first per-VM driver error, or nil while the whole
// fleet is healthy.
func (c *Cluster) Err() error {
	for _, vm := range c.vms {
		if err := vm.Err(); err != nil {
			return err
		}
	}
	return nil
}

// KillVM injects a fatal guest panic into VM id (1-based): the
// driver's next chunk surfaces ErrPanic, the flight recorder (when
// armed) captures the dying VM's tail, and Err() goes non-nil. A
// chaos primitive for exercising member-death handling end to end —
// the same path a real guest panic trap takes.
func (c *Cluster) KillVM(id int, msg string) {
	if id < 1 || id > len(c.vms) {
		return
	}
	vm := c.vms[id-1]
	vm.mu.Lock()
	vm.K.PanicMsg = msg
	vm.mu.Unlock()
}

// Replies reports completed echo round trips (host view).
func (c *Cluster) Replies() uint64 { return c.mReplies.Value() }

// ActiveConns reports how many logical connections have completed at
// least one round trip — the fleet-is-warm signal: connections whose
// first frames raced their socket's open sit out a resend timeout, so
// reply counts alone overstate readiness.
func (c *Cluster) ActiveConns() int { return int(c.nActive.Load()) }

// VMs returns the fleet members (host view, for tests).
func (c *Cluster) VMs() []*VM { return c.vms }

// GuestInstrs returns the total guest instructions executed across
// the fleet so far. A delta over a wall-clock window gives aggregate
// fleet MIPS (Table 11).
func (c *Cluster) GuestInstrs() uint64 {
	var n uint64
	for _, vm := range c.vms {
		vm.mu.Lock()
		n += vm.K.M.Instrs
		vm.mu.Unlock()
	}
	return n
}

// AwaitingRecovery reports how many connections a heal event marked
// that have not yet completed their first post-heal round trip. Zero
// once the fleet has fully recovered.
func (c *Cluster) AwaitingRecovery() int {
	c.lgMu.Lock()
	defer c.lgMu.Unlock()
	n := 0
	for i := range c.conns {
		if c.conns[i].recovering {
			n++
		}
	}
	return n
}

// GaveUpConns reports how many connections hit the resend cap and went
// silent. The chaos soak's liveness invariant demands zero after heal.
func (c *Cluster) GaveUpConns() int {
	c.lgMu.Lock()
	defer c.lgMu.Unlock()
	n := 0
	for i := range c.conns {
		if c.conns[i].gaveUp {
			n++
		}
	}
	return n
}

// SeqSum sums every connection's completed round trips; equal to
// Replies() by construction — the soak asserts the identity to pin
// acked-sequence integrity.
func (c *Cluster) SeqSum() uint64 {
	c.lgMu.Lock()
	defer c.lgMu.Unlock()
	var n uint64
	for i := range c.conns {
		n += uint64(c.conns[i].seq)
	}
	return n
}
