package cluster

import (
	"strings"
	"testing"
	"time"

	"synthesis/internal/net"
)

// waitReplies polls until the fleet has completed at least n echo
// round trips or the deadline passes.
func waitReplies(t *testing.T, c *Cluster, n uint64, d time.Duration) {
	t.Helper()
	deadline := time.Now().Add(d)
	for c.Replies() < n && time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			t.Fatalf("fleet error while waiting: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if got := c.Replies(); got < n {
		t.Fatalf("replies = %d, want >= %d within %v", got, n, d)
	}
}

// TestFabricRouting drives the switch directly: tag pop/push and the
// drop accounting, without running any VM.
func TestFabricRouting(t *testing.T) {
	c := New(Config{VMs: 2, SocketsPerVM: 1, Conns: 1, Seed: 1})

	// Host -> VM2: lands in VM2's ingress ring, still node-tagged (the
	// drain pops the tag at injection time).
	p := []byte("to vm2")
	f := net.Frame{Dst: net.MakeAddr(2, 0x50), Src: net.MakeAddr(net.HostNode, 0x900), Sum: net.Checksum(p), Payload: p}
	if !c.route(net.HostNode, f) {
		t.Fatal("route to vm2 refused")
	}
	if c.vms[1].ingress.Len() != 1 || c.vms[0].ingress.Len() != 0 {
		t.Fatalf("ingress depths = %d/%d, want 0/1",
			c.vms[0].ingress.Len(), c.vms[1].ingress.Len())
	}

	// VM1 -> host: the fabric pushes the source node onto Src.
	g := net.Frame{Dst: 0x900, Src: 0x50, Sum: net.Checksum(p), Payload: p}
	if !c.route(1, g) {
		t.Fatal("route to host refused")
	}
	r, ok := c.hostRing.Get()
	if !ok {
		t.Fatal("host ring empty after host-bound route")
	}
	if net.NodeOf(r.Src) != 1 || net.PortOf(r.Src) != 0x50 {
		t.Fatalf("host-bound Src = %#x, want node 1 port 0x50", r.Src)
	}

	// Nonexistent node: refused and counted.
	bad := net.Frame{Dst: net.MakeAddr(9, 0x50)}
	if c.route(net.HostNode, bad) {
		t.Fatal("route to nonexistent node accepted")
	}
	if c.mDropped.Value() != 1 {
		t.Fatalf("fabric dropped = %d, want 1", c.mDropped.Value())
	}
	if c.mRouted.Value() != 2 {
		t.Fatalf("fabric routed = %d, want 2", c.mRouted.Value())
	}
}

// TestClusterEcho is the end-to-end fleet test: 2 VMs, multiplexed
// connections, full synthesized path on every echo. Verifies traffic
// flows, latency is measured, and the shared registry carries per-VM
// prefixed metrics alongside the cluster plane.
func TestClusterEcho(t *testing.T) {
	c := New(Config{VMs: 2, SocketsPerVM: 2, Conns: 8, PayloadBytes: 32, Seed: 42})
	c.Start()
	waitReplies(t, c, 200, 30*time.Second)
	c.Stop()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}

	s := c.Snapshot()
	if s.Counters["cluster.fabric.routed"] == 0 {
		t.Error("no frames routed")
	}
	if s.Counters["cluster.loadgen.bad_sum"] != 0 {
		t.Errorf("checksum failures: %d", s.Counters["cluster.loadgen.bad_sum"])
	}
	rtt := s.Hists["cluster.loadgen.rtt_us"]
	if rtt.Count == 0 {
		t.Error("no RTT observations")
	}
	if q := rtt.Quantile(0.99); q < rtt.Quantile(0.50) {
		t.Errorf("p99 %g < p50 %g", q, rtt.Quantile(0.50))
	}

	// One snapshot, every VM: socket metrics under vm<i>. prefixes.
	for _, prefix := range []string{"vm1.kio.sock.", "vm2.kio.sock."} {
		found := false
		for name := range s.Counters {
			if strings.HasPrefix(name, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s* metrics in the fleet snapshot", prefix)
		}
	}
	// Both VMs actually served traffic.
	for _, vmp := range []string{"vm1.", "vm2."} {
		var rx uint64
		for name, v := range s.Counters {
			if strings.HasPrefix(name, vmp+"kio.sock.") && strings.HasSuffix(name, ".rx_frames") {
				rx += v
			}
		}
		if rx == 0 {
			t.Errorf("%skio.sock.*.rx_frames all zero: VM served no frames", vmp)
		}
	}
}

// TestClusterSoak is the seeded, bounded churn soak: guest threads
// close and reopen their sockets under live fleet traffic, forcing
// handler resynthesis while frames are in flight. Run under -race in
// CI (the cluster-soak make target).
func TestClusterSoak(t *testing.T) {
	c := New(Config{
		VMs:          2,
		SocketsPerVM: 4,
		Conns:        32,
		PayloadBytes: 64,
		ChurnEvery:   64,
		Seed:         7,
	})
	c.Start()
	waitReplies(t, c, 500, 60*time.Second)
	c.Stop()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	s := c.Snapshot()
	// Churn means some frames met a closed port or a mid-resynthesis
	// handler; the timeout path must have kept every connection alive
	// (500 replies), and nothing may have corrupted in transit.
	if s.Counters["cluster.loadgen.bad_sum"] != 0 {
		t.Errorf("checksum failures under churn: %d", s.Counters["cluster.loadgen.bad_sum"])
	}
	if got := s.Counters["cluster.loadgen.replies"]; got < 500 {
		t.Errorf("replies = %d, want >= 500", got)
	}
}

// TestSnapshotDuringRun races locked snapshots against the running
// fleet: the per-VM mutexes must keep the sampled VM-memory reads off
// mid-chunk state (this is the -race witness for the metrics plane).
func TestSnapshotDuringRun(t *testing.T) {
	c := New(Config{VMs: 2, SocketsPerVM: 1, Conns: 4, Seed: 3})
	c.Start()
	for i := 0; i < 20; i++ {
		s := c.Snapshot()
		if s.Cycles == 0 && i > 0 {
			t.Error("wall clock not advancing in snapshots")
		}
		time.Sleep(time.Millisecond)
	}
	c.Stop()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}
