package cluster_test

import (
	"fmt"
	"time"

	"synthesis/internal/cluster"
)

// Example boots the smallest interesting fleet — two Quamachines on
// the switch fabric with eight logical echo connections multiplexed
// over their socket tables — waits for every connection's first
// round trip, and shuts down. Rates and RTTs are wall-clock (see
// docs/PERFORMANCE.md), so the example asserts liveness, not speed.
func Example() {
	c := cluster.New(cluster.Config{
		VMs:          2,
		SocketsPerVM: 4,
		Conns:        8,
		PayloadBytes: 32,
		Seed:         1,
	})
	c.Start()
	defer c.Stop()

	deadline := time.Now().Add(30 * time.Second)
	for c.ActiveConns() < 8 && time.Now().Before(deadline) {
		if err := c.Err(); err != nil {
			fmt.Println(err)
			return
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("all connections live:", c.ActiveConns() == 8)
	// Output:
	// all connections live: true
}
