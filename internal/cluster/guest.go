package cluster

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	"synthesis/internal/net"
	"synthesis/internal/unixemu"
)

// Guest scratch buffers: one per echo thread, below the kernel heap
// (the same region the bench programs use for their staging buffers).
const (
	guestBufBase   = 0xB000
	guestBufStride = 0x100 // > net.MTU, one slot per socket
)

// buildEchoThread emits one echo server thread against the UNIX trap
// convention: open the socket (local -> reply), then read/write
// forever. The socket open synthesizes this thread's send and recv
// routines with the ports folded in as immediates — the guest code
// here is the only generic part of the path.
//
// With churnEvery > 0 the thread closes and reopens its socket after
// that many echoes, exercising handler resynthesis (the demux compare
// chain is rebuilt on every open/close) under live fleet traffic. A
// failed open (port still draining, descriptors exhausted, kernel
// heap gone) exits the thread rather than spinning on a bad fd.
func buildEchoThread(b *asmkit.Builder, local, reply, buf uint32, churnEvery int32) {
	call := func(no int32) {
		b.MoveL(m68k.Imm(no), m68k.D(0))
		b.Trap(0)
	}
	b.Label("open")
	b.MoveL(m68k.Imm(int32(local)), m68k.D(1))
	b.MoveL(m68k.Imm(int32(reply)), m68k.D(2))
	call(unixemu.SysSocket)
	b.TstL(m68k.D(0))
	b.Bmi("exit") // open failed: fd = -1
	b.MoveL(m68k.D(0), m68k.D(6))
	if churnEvery > 0 {
		b.MoveL(m68k.Imm(churnEvery), m68k.D(5))
	}
	b.Label("loop")
	// Read one datagram: D0 returns the payload length.
	b.MoveL(m68k.D(6), m68k.D(1))
	b.MoveL(m68k.Imm(int32(buf)), m68k.D(2))
	b.MoveL(m68k.Imm(net.MTU), m68k.D(3))
	call(unixemu.SysRead)
	b.MoveL(m68k.D(0), m68k.D(4))
	// Echo it back at the same length.
	b.MoveL(m68k.D(6), m68k.D(1))
	b.MoveL(m68k.Imm(int32(buf)), m68k.D(2))
	b.MoveL(m68k.D(4), m68k.D(3))
	call(unixemu.SysWrite)
	if churnEvery > 0 {
		b.SubL(m68k.Imm(1), m68k.D(5))
		b.Bne("loop")
		b.MoveL(m68k.D(6), m68k.D(1))
		call(unixemu.SysClose)
		b.Bra("open")
	} else {
		b.Bra("loop")
	}
	b.Label("exit")
	b.MoveL(m68k.Imm(0), m68k.D(1))
	call(unixemu.SysExit)
}
