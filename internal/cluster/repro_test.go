package cluster

import (
	"testing"

	"synthesis/internal/net"
)

// TestNoReecho injects exactly three frames into a quiet 1-VM fleet
// and drives it manually: each frame must produce exactly one echo,
// and a drained fleet must produce nothing more. Guards against the
// receive path re-processing stale ring slots or stale queue slots.
func TestNoReecho(t *testing.T) {
	c := New(Config{VMs: 1, SocketsPerVM: 8, Conns: 1, PayloadBytes: 32, Seed: 3})
	vm := c.vms[0]

	var out []net.Frame
	vm.K.Net.Tx = func(b []byte) bool {
		f, ok := net.DecodeFrame(b)
		if !ok {
			t.Fatalf("undecodable frame off vm1: % x", b)
		}
		out = append(out, f)
		return c.routeRaw(1, b)
	}

	drive := func(chunks int) {
		for i := 0; i < chunks; i++ {
			c.drainIngress(vm)
			if err := vm.K.Run(4096); err == nil {
				t.Fatal("vm halted")
			}
		}
	}

	// Let the guest threads boot and open all sockets.
	drive(400)
	if n := len(out); n != 0 {
		t.Fatalf("fleet transmitted %d frames before any input", n)
	}

	for i := 0; i < 3; i++ {
		p := c.payload(0, uint32(i))
		c.route(net.HostNode, net.Frame{
			Dst: net.MakeAddr(1, guestPortBase+uint32(i)),
			Src: net.MakeAddr(net.HostNode, replyPortBase+uint32(i)),
			Sum: net.Checksum(p), Payload: p,
		})
	}
	drive(400)
	if n := len(out); n != 3 {
		t.Fatalf("3 frames in, %d frames out", n)
	}
	// A drained fleet must stay quiet no matter how long it runs.
	drive(2000)
	if n := len(out); n != 3 {
		t.Fatalf("re-echo: 3 frames in, %d frames out after extra chunks", n)
	}

	// Overload: a 64-frame burst at one socket overflows both the NIC
	// ring (16 slots) and the socket queue (8 slots). Echo count must
	// never exceed input, and the fleet must go quiet once drained.
	out = out[:0]
	sent := 0
	for i := 0; i < 64; i++ {
		p := c.payload(0, uint32(100+i))
		if c.route(net.HostNode, net.Frame{
			Dst: net.MakeAddr(1, guestPortBase),
			Src: net.MakeAddr(net.HostNode, replyPortBase),
			Sum: net.Checksum(p), Payload: p,
		}) {
			sent++
		}
	}
	drive(3000)
	burst := len(out)
	if burst > sent {
		t.Fatalf("echo amplification: %d frames in, %d frames out", sent, burst)
	}
	drive(2000)
	if n := len(out); n != burst {
		t.Fatalf("re-echo after overload: %d grew to %d with no new input", burst, n)
	}
}
