package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"synthesis/internal/metrics"
	"synthesis/internal/net"
)

// The fleet trace plane: follow a sampled echo round trip across
// every hop it takes and attribute its latency end to end. One
// request's life is nine stamped events — launch at the load
// generator, enqueue on the destination VM's fabric ingress ring
// (after any fault-stage delay), DMA deposit into the NIC, IRQ
// handler entry, rx-demux entry, the guest socket's send routine
// (the echo turning around), the reply leaving the VM's NIC, the
// reply landing on the host ring, and the load generator matching
// it. Every stamp is taken where the hop actually happens — the NIC
// and profiler hooks run synchronously inside the VM's driver
// goroutine, so a wall-clock read at hook time is exact, and the VM
// cycle count rides along for the per-VM trace timeline.
//
// Because the first and last stamps are the same clock reads the
// load generator uses for its own RTT measurement, the hop deltas
// telescope: their sum equals the independently measured RTT
// exactly, per trace — the conservation identity Table 10 asserts.
// Interior stamps are attributed by a monotone chain (event k only
// lands after k-1) plus payload and region-name matching; ambiguity
// under concurrent traffic blurs the split between adjacent hops but
// never the sum.
//
// Cost discipline: with TraceEvery == 0 the tracer is nil and every
// hot-path hook is one pointer check. With tracing on but no request
// currently sampled, the fabric paths pay one atomic load.

// Event indices along a traced round trip.
const (
	evSend       = iota // load generator launches the request
	evFabricOut         // request enqueued on the VM's ingress ring
	evNicDeposit        // DMA deposit into the NIC receive ring
	evIRQEntry          // net IRQ handler entry (raise→entry measured by prof)
	evDemux             // synthesized rx demux entry
	evSendEntry         // guest socket send routine entry (echo turnaround)
	evTxLaunch          // reply leaves the VM's NIC
	evHostEnq           // reply enqueued on the host ring
	evRecv              // load generator matches the reply
	numEvents
)

// hopNames names the interval ending at event i+1. These are the
// registry suffixes (cluster.trace.hop.<name>_us) and the Table 10
// row labels.
var hopNames = [numEvents - 1]string{
	"fabric_out",    // launch → ingress ring (fabric routing + fault delay)
	"ingress_dwell", // ingress ring → NIC deposit (driver drain latency)
	"irq_entry",     // NIC deposit → IRQ handler entry
	"demux",         // IRQ entry → rx demux entry
	"recv_wake",     // demux → guest send entry (wakeup + scheduling)
	"guest_send",    // send entry → reply on the wire
	"fabric_back",   // reply launch → host ring (return fabric + faults)
	"host_dwell",    // host ring → load generator pickup
}

var hopHelp = [numEvents - 1]string{
	"Hop: loadgen launch to VM ingress-ring enqueue (fabric routing incl. fault-stage delay), microseconds.",
	"Hop: ingress-ring enqueue to NIC DMA deposit (driver drain dwell), microseconds.",
	"Hop: NIC deposit to net-IRQ handler entry, microseconds.",
	"Hop: IRQ handler entry to rx-demux entry, microseconds.",
	"Hop: rx-demux entry to guest socket send entry (receive wakeup + scheduling), microseconds.",
	"Hop: guest send entry to reply NIC launch, microseconds.",
	"Hop: reply launch to host-ring enqueue (return fabric incl. fault-stage delay), microseconds.",
	"Hop: host-ring enqueue to loadgen reply match, microseconds.",
}

// TraceRec is one completed round-trip trace. T holds wall
// nanoseconds since cluster start for each event; Cyc holds the VM
// cycle stamp for the events that happen on the VM (0 elsewhere).
type TraceRec struct {
	Conn int
	VM   int
	Seq  uint32
	T    [numEvents]int64
	Cyc  [numEvents]uint64
}

// HopNS returns the duration of hop i (the interval ending at event
// i+1) in nanoseconds.
func (r TraceRec) HopNS(i int) int64 { return r.T[i+1] - r.T[i] }

// RTTNS returns the traced round trip in nanoseconds — by the
// telescoping identity, exactly the sum of the eight hops.
func (r TraceRec) RTTNS() int64 { return r.T[evRecv] - r.T[evSend] }

// HopCount is the number of hops in a trace (for callers iterating
// HopNS/HopName).
const HopCount = numEvents - 1

// HopName returns hop i's registry/table name.
func HopName(i int) string { return hopNames[i] }

// traceReq is the pending (in-flight) trace of one sampled request.
// At most one per VM: sampling is sparse, and a single pending slot
// keeps attribution of the VM-side hooks unambiguous.
type traceReq struct {
	rec      TraceRec
	next     int    // next event index to stamp (monotone chain)
	sendName string // guest send region that marks the echo turnaround
}

type tracer struct {
	c     *Cluster
	every uint64
	n     atomic.Uint64 // fresh-launch counter (sampling)
	// active counts pending traces; the fabric hot paths load it
	// before touching the mutex so an armed-but-idle tracer costs one
	// atomic read per frame.
	active atomic.Int32

	mu      sync.Mutex
	pending map[int]*traceReq // by VM id
	byConn  map[int]int       // conn id → VM id, for loadgen-side lookup
	done    []TraceRec        // bounded ring of completed traces
	doneN   int               // next write slot
	doneLen int               // filled entries
	total   uint64            // completed traces ever

	mSampled   *metrics.Counter
	mCompleted *metrics.Counter
	mIncompl   *metrics.Counter
	mAbandoned *metrics.Counter
	hHop       [numEvents - 1]*metrics.Hist
}

func newTracer(c *Cluster, every, keep int) *tracer {
	if keep <= 0 {
		keep = 512
	}
	tr := &tracer{
		c:       c,
		every:   uint64(every),
		pending: make(map[int]*traceReq),
		byConn:  make(map[int]int),
		done:    make([]TraceRec, keep),
		mSampled: c.Reg.Counter("cluster.trace.sampled",
			"Echo requests sampled into the trace plane."),
		mCompleted: c.Reg.Counter("cluster.trace.completed",
			"Sampled requests whose full nine-event hop chain was stamped."),
		mIncompl: c.Reg.Counter("cluster.trace.incomplete",
			"Sampled requests answered before every interior hop was stamped."),
		mAbandoned: c.Reg.Counter("cluster.trace.abandoned",
			"Sampled requests dropped because their message was resent or given up."),
	}
	for i := range tr.hHop {
		tr.hHop[i] = c.Reg.Hist("cluster.trace.hop."+hopNames[i]+"_us", hopHelp[i])
	}
	return tr
}

// nowNS is the fleet wall clock: nanoseconds since cluster start,
// the same axis the registry clock and the ClockMaps use.
func (c *Cluster) nowNS(t time.Time) int64 { return int64(t.Sub(c.start)) }

// onSend samples a fresh request launch. Called from sendConn under
// lgMu, before the frame enters the fabric, with the same clock read
// that becomes the connection's sentAt — the conservation identity
// starts here.
func (tr *tracer) onSend(vmID, conn int, seq uint32, port uint32, now time.Time) {
	if tr.n.Add(1)%tr.every != 0 {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.pending[vmID]; ok {
		// A traced request on this VM is still in flight. Two pending
		// traces on one VM would make the VM-side hooks ambiguous, so
		// the sampler skips this launch and lets the older trace
		// finish — sampling is approximate, attribution is not.
		return
	}
	req := &traceReq{
		rec:      TraceRec{Conn: conn, VM: vmID, Seq: seq},
		next:     evFabricOut,
		sendName: fmt.Sprintf("kio.sock%d.send", port),
	}
	req.rec.T[evSend] = tr.c.nowNS(now)
	tr.pending[vmID] = req
	tr.byConn[conn] = vmID
	tr.active.Store(int32(len(tr.pending)))
	tr.mSampled.Inc()
}

func (tr *tracer) abandonLocked(req *traceReq, vmID int) {
	delete(tr.pending, vmID)
	delete(tr.byConn, req.rec.Conn)
	tr.active.Store(int32(len(tr.pending)))
	tr.mAbandoned.Inc()
}

// onAbandon drops the pending trace on a connection whose current
// message is being resent or given up — the reply, if it ever
// arrives, can no longer be matched to one fabric transit. Called
// under lgMu.
func (tr *tracer) onAbandon(conn int) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	vmID, ok := tr.byConn[conn]
	if !ok {
		return
	}
	if req, ok := tr.pending[vmID]; ok && req.rec.Conn == conn {
		tr.abandonLocked(req, vmID)
	}
}

// connSeq decodes the loadgen payload header.
func connSeq(f *net.Frame) (int, uint32, bool) {
	if len(f.Payload) < 8 {
		return 0, 0, false
	}
	return int(binary.BigEndian.Uint32(f.Payload[0:])),
		binary.BigEndian.Uint32(f.Payload[4:]), true
}

// onDeliver stamps the two fabric-ring events: a traced request
// landing on its VM's ingress ring (evFabricOut, after any fault
// delay) and its reply landing on the host ring (evHostEnq). Called
// from deliver after a successful ring put; callers gate on
// tr.active, so the payload decode only runs while a trace is
// pending somewhere.
func (tr *tracer) onDeliver(node int, f *net.Frame, now time.Time) {
	conn, seq, ok := connSeq(f)
	if !ok {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var req *traceReq
	want := evFabricOut
	if node == net.HostNode {
		vmID, ok := tr.byConn[conn]
		if !ok {
			return
		}
		req = tr.pending[vmID]
		want = evHostEnq
	} else {
		req = tr.pending[node]
	}
	if req == nil || req.rec.Conn != conn || req.rec.Seq != seq || req.next != want {
		return
	}
	req.rec.T[want] = tr.c.nowNS(now)
	req.next = want + 1
}

// onDeposit stamps the NIC DMA deposit (evNicDeposit). Called from
// the driver's ingress drain with the VM cycle at deposit time.
func (tr *tracer) onDeposit(vmID int, f *net.Frame, cycle uint64) {
	conn, seq, ok := connSeq(f)
	if !ok {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	req := tr.pending[vmID]
	if req == nil || req.rec.Conn != conn || req.rec.Seq != seq || req.next != evNicDeposit {
		return
	}
	req.rec.T[evNicDeposit] = tr.c.nowNS(time.Now())
	req.rec.Cyc[evNicDeposit] = cycle
	req.next = evIRQEntry
}

// onIRQ stamps net-IRQ handler entry (evIRQEntry). Fed by the
// profiler's OnIRQ hook, which runs synchronously in the driver
// goroutine — the wall read is taken at dispatch time. The frame
// itself is invisible here, so the monotone chain does the
// attribution: the first net IRQ after the traced deposit is taken
// as ours (concurrent traffic can blur this split, never the sum).
func (tr *tracer) onIRQ(vmID int, takenAt uint64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	req := tr.pending[vmID]
	if req == nil || req.next != evIRQEntry {
		return
	}
	req.rec.T[evIRQEntry] = tr.c.nowNS(time.Now())
	req.rec.Cyc[evIRQEntry] = takenAt
	req.next = evDemux
}

// onRegion stamps the two region-entry events: the rx demux
// (evDemux, region kio.net_intr*) and the traced socket's send
// routine (evSendEntry, exact-name match — the echo turning around).
// Fed by the profiler's OnRegionEnter hook.
func (tr *tracer) onRegion(vmID int, name string, at uint64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	req := tr.pending[vmID]
	if req == nil {
		return
	}
	switch req.next {
	case evDemux:
		if !strings.HasPrefix(name, "kio.net_intr") {
			return
		}
	case evSendEntry:
		if name != req.sendName {
			return
		}
	default:
		return
	}
	req.rec.T[req.next] = tr.c.nowNS(time.Now())
	req.rec.Cyc[req.next] = at
	req.next++
}

// onTx stamps the reply leaving the VM's NIC (evTxLaunch). Called
// from route, in the driver goroutine, before the return fabric
// transit.
func (tr *tracer) onTx(vmID int, f *net.Frame, cycle uint64) {
	conn, seq, ok := connSeq(f)
	if !ok {
		return
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	req := tr.pending[vmID]
	if req == nil || req.rec.Conn != conn || req.rec.Seq != seq || req.next != evTxLaunch {
		return
	}
	req.rec.T[evTxLaunch] = tr.c.nowNS(time.Now())
	req.rec.Cyc[evTxLaunch] = cycle
	req.next = evHostEnq
}

// onRecv finishes a trace: the load generator matched the reply.
// Called from handleReply under lgMu with the same clock read that
// produced the RTT observation — the conservation identity's other
// endpoint. A chain with unstamped interior events counts as
// incomplete and is dropped; a full chain feeds the per-hop
// histograms and the retained-trace ring.
func (tr *tracer) onRecv(conn int, seq uint32, now time.Time) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	vmID, ok := tr.byConn[conn]
	if !ok {
		return
	}
	req := tr.pending[vmID]
	if req == nil || req.rec.Conn != conn || req.rec.Seq != seq {
		return
	}
	delete(tr.pending, vmID)
	delete(tr.byConn, conn)
	tr.active.Store(int32(len(tr.pending)))
	if req.next != evRecv {
		tr.mIncompl.Inc()
		return
	}
	req.rec.T[evRecv] = tr.c.nowNS(now)
	for i := 0; i < numEvents-1; i++ {
		tr.hHop[i].Observe(uint64(req.rec.HopNS(i)) / 1000)
	}
	tr.done[tr.doneN] = req.rec
	tr.doneN = (tr.doneN + 1) % len(tr.done)
	if tr.doneLen < len(tr.done) {
		tr.doneLen++
	}
	tr.total++
	tr.mCompleted.Inc()
}

// Traces returns the retained completed traces, oldest first.
func (c *Cluster) Traces() []TraceRec {
	if c.tr == nil {
		return nil
	}
	tr := c.tr
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := make([]TraceRec, 0, tr.doneLen)
	start := tr.doneN - tr.doneLen
	if start < 0 {
		start += len(tr.done)
	}
	for i := 0; i < tr.doneLen; i++ {
		out = append(out, tr.done[(start+i)%len(tr.done)])
	}
	return out
}

// TraceCounts reports the trace plane's bookkeeping: requests
// sampled, chains completed, chains answered incomplete, and traces
// abandoned to resends or overlap.
func (c *Cluster) TraceCounts() (sampled, completed, incomplete, abandoned uint64) {
	if c.tr == nil {
		return
	}
	return c.tr.mSampled.Value(), c.tr.mCompleted.Value(),
		c.tr.mIncompl.Value(), c.tr.mAbandoned.Value()
}

// ---- merged Chrome trace export ----

// traceEvent is one Chrome trace-format event. The merged fleet
// trace uses one "process" per VM (pid = node id) plus pid 0 for the
// fabric/load-generator plane; timestamps are wall microseconds
// since cluster start, so all domains share one axis.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteTrace writes the merged fleet Chrome trace (load it at
// chrome://tracing or ui.perfetto.dev): pid 0 carries each retained
// round trip as a waterfall of per-hop slices on the connection's
// row; each VM's pid carries its profiler region timeline, mapped
// from cycles onto the fleet wall clock by the VM's ClockMap, plus
// instant markers for the traced requests' VM-side events. The
// fleet is quiesced (all VM mutexes held) while rings are read.
func (c *Cluster) WriteTrace(w io.Writer) error {
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	tf := traceFile{DisplayTimeUnit: "ms"}
	tf.TraceEvents = append(tf.TraceEvents, traceEvent{
		Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "fabric/loadgen"},
	})

	for _, r := range c.Traces() {
		for i := 0; i < HopCount; i++ {
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: hopNames[i], Ph: "X",
				TS: us(r.T[i]), Dur: us(r.HopNS(i)),
				PID: 0, TID: r.Conn,
				Args: map[string]any{"vm": r.VM, "seq": r.Seq},
			})
		}
	}

	for _, vm := range c.vms {
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "process_name", Ph: "M", PID: vm.ID,
			Args: map[string]any{"name": fmt.Sprintf("vm%d", vm.ID)},
		})
		vm.mu.Lock()
		p := vm.K.Prof
		clk := vm.clk
		if p != nil && clk != nil {
			for _, e := range p.Ring().Events() {
				te := traceEvent{Name: e.Name, Ph: string(e.Ph), PID: vm.ID, TID: 0,
					TS: us(clk.WallNS(e.At))}
				if e.Ph == 'X' {
					te.Dur = us(clk.WallNS(e.At+e.Dur) - clk.WallNS(e.At))
				} else {
					te.S = "t"
				}
				tf.TraceEvents = append(tf.TraceEvents, te)
			}
		}
		vm.mu.Unlock()
	}

	// VM-side instants of the traced requests, on the VM rows.
	for _, r := range c.Traces() {
		for _, ev := range [...]int{evNicDeposit, evIRQEntry, evDemux, evSendEntry, evTxLaunch} {
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: fmt.Sprintf("trace:%s conn%d", eventName(ev), r.Conn),
				Ph:   "i", TS: us(r.T[ev]), PID: r.VM, TID: 0, S: "t",
			})
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// eventName names an event index (the hop it terminates, or the
// launch).
func eventName(ev int) string {
	if ev == evSend {
		return "send"
	}
	return hopNames[ev-1]
}
