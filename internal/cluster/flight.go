package cluster

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"synthesis/internal/m68k"
)

// The flight recorder: when Config.Flight is set, every VM boots
// with the profiler attached (its event ring is the recent
// sched/IRQ/region history) and a hardware instruction-trace ring,
// and a VM driver error — guest panic, halt, unexpected machine
// fault — renders the whole tail into a dump the moment it happens.
// The two scheduler bugs of PR 6 and PR 7 each took a soak-and-bisect
// hunt to see; this turns the next one into reading a dump.

// flightTraceDepth is the instruction-trace ring armed on flight
// VMs: deep enough to hold a few handler activations around the
// failure, shallow enough that per-step recording stays cheap.
const flightTraceDepth = 512

// flightEventTail bounds the profiler events rendered in a dump.
const flightEventTail = 64

// flightInstrTail bounds the instruction-trace entries rendered.
const flightInstrTail = 48

type flightState struct {
	mu    sync.Mutex
	dumps []string
}

// FlightDumps returns the dumps captured so far (one per failed VM),
// in capture order.
func (c *Cluster) FlightDumps() []string {
	if c.flight == nil {
		return nil
	}
	c.flight.mu.Lock()
	defer c.flight.mu.Unlock()
	return append([]string(nil), c.flight.dumps...)
}

// captureFlight renders and retains one VM's dump. Called from the
// VM's own driver goroutine at the moment of failure, before the
// error is published, so the rings still hold the failure's tail.
func (c *Cluster) captureFlight(vm *VM, err error) {
	if c.flight == nil {
		return
	}
	vm.mu.Lock()
	dump := renderFlight(vm, err, c)
	vm.mu.Unlock()
	c.flight.mu.Lock()
	c.flight.dumps = append(c.flight.dumps, dump)
	c.flight.mu.Unlock()
}

// DumpFlight quiesces the fleet and writes every VM's current flight
// state — failed or not — to w. Soak tests call this when an
// assertion (not a VM) fails, so the dump shows what the whole fleet
// was doing at the moment the invariant broke.
func (c *Cluster) DumpFlight(w io.Writer) {
	for _, vm := range c.vms {
		vm.mu.Lock()
		dump := renderFlight(vm, vm.err, c)
		vm.mu.Unlock()
		fmt.Fprint(w, dump)
	}
	for _, d := range c.FlightDumps() {
		fmt.Fprintf(w, "---- captured at failure ----\n%s", d)
	}
}

// renderFlight formats one VM's recent history. Callers hold vm.mu.
func renderFlight(vm *VM, err error, c *Cluster) string {
	var b strings.Builder
	k := vm.K
	m := k.M
	fmt.Fprintf(&b, "==== flight vm%d ====\n", vm.ID)
	if err != nil {
		fmt.Fprintf(&b, "error: %v\n", err)
	}
	fmt.Fprintf(&b, "cycles=%d pc=%d sr=%#x cur_tte=%#x ingress=%d/%d\n",
		m.Clock(), m.PC, m.SR, k.CurTTE(), vm.ingress.Len(), ingressSlots)
	if k.PanicMsg != "" {
		fmt.Fprintf(&b, "panic: %s\n", k.PanicMsg)
	}

	// Thread table, sorted by TTE for stable dumps.
	ttes := make([]uint32, 0, len(k.Threads))
	for tte := range k.Threads {
		ttes = append(ttes, tte)
	}
	sort.Slice(ttes, func(i, j int) bool { return ttes[i] < ttes[j] })
	for _, tte := range ttes {
		t := k.Threads[tte]
		state := "blocked"
		switch {
		case t.Dead:
			state = "dead"
		case tte == k.CurTTE():
			state = "running"
		case t.Linked:
			state = "ready"
		}
		fmt.Fprintf(&b, "thread %-12s tte=%#x %s\n", t.Name, tte, state)
	}

	if p := k.Prof; p != nil {
		// IRQ raise→entry latency per level: the first place a
		// missed-wake or masked-window bug shows.
		for l := 7; l >= 1; l-- {
			h := p.IRQ(l)
			if h == nil || h.Count == 0 {
				continue
			}
			fmt.Fprintf(&b, "irq l%d: n=%d mean=%.0f max=%d cycles\n",
				l, h.Count, h.Mean(), h.Max)
		}
		evs := p.Ring().Events()
		if len(evs) > flightEventTail {
			evs = evs[len(evs)-flightEventTail:]
		}
		fmt.Fprintf(&b, "-- last %d profiler events --\n", len(evs))
		for _, e := range evs {
			if e.Ph == 'X' {
				fmt.Fprintf(&b, "%12d +%-8d %s\n", e.At, e.Dur, e.Name)
			} else {
				fmt.Fprintf(&b, "%12d          * %s\n", e.At, e.Name)
			}
		}
	}

	if m.Trace != nil && m.Trace.Len() > 0 {
		ents := m.Trace.Entries()
		if len(ents) > flightInstrTail {
			ents = ents[len(ents)-flightInstrTail:]
		}
		fmt.Fprintf(&b, "-- last %d instructions --\n", len(ents))
		for _, e := range ents {
			if e.Exc >= 0 {
				fmt.Fprintf(&b, "%12d  ** exception v%d (pc %d)\n", e.Cycles, e.Exc, e.PC)
			} else {
				fmt.Fprintf(&b, "%12d  %6d: %s\n", e.Cycles, e.PC, e.Instr)
			}
		}
	}

	if c.tr != nil {
		s, done, inc, ab := c.tr.mSampled.Value(), c.tr.mCompleted.Value(),
			c.tr.mIncompl.Value(), c.tr.mAbandoned.Value()
		fmt.Fprintf(&b, "trace plane: sampled=%d completed=%d incomplete=%d abandoned=%d\n",
			s, done, inc, ab)
	}
	return b.String()
}

// flightMachineConfig arms the instruction trace on a flight VM.
func flightMachineConfig(cfg m68k.Config) m68k.Config {
	cfg.TraceDepth = flightTraceDepth
	return cfg
}
