package cluster

import (
	"encoding/binary"
	"time"

	"synthesis/internal/net"
)

// The load generator: node 0 on the fabric, standing in for the
// fleet's remote users. One goroutine drives every logical connection
// with a one-message window — send, wait for the echo, send again —
// matching replies by the connection id carried in the payload, so
// thousands of connections multiplex over the per-VM socket capacity.
// Lost messages (fabric drop, NIC ring overflow, a port mid-churn)
// are resent after a wall-clock timeout; nothing in the fleet is ever
// blocked on the host.

// lgConn is one logical connection's state.
type lgConn struct {
	vm       int    // destination node (1-based)
	port     uint32 // guest socket port (plain, pre-tag)
	seq      uint32
	inflight bool
	sentAt   time.Time
}

// payload renders [conn id (4)][seq (4)][seeded padding] at the
// configured message size. The padding is deterministic in (seed,
// conn, seq) so runs are reproducible and corruption is detectable
// end to end by the wire checksum alone.
func (c *Cluster) payload(id int, seq uint32) []byte {
	p := make([]byte, c.cfg.PayloadBytes)
	binary.BigEndian.PutUint32(p[0:], uint32(id))
	binary.BigEndian.PutUint32(p[4:], seq)
	x := c.padSeed ^ uint64(id)<<32 ^ uint64(seq)
	for i := 8; i < len(p); i++ {
		// xorshift64: cheap, stateless per (conn, seq).
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p[i] = byte(x)
	}
	return p
}

// sendConn launches (or relaunches) the connection's current message
// into the fabric toward its guest socket.
func (c *Cluster) sendConn(id int, cn *lgConn) {
	p := c.payload(id, cn.seq)
	f := net.Frame{
		Dst:     net.MakeAddr(cn.vm, cn.port),
		Src:     net.MakeAddr(net.HostNode, replyPortBase+uint32(id)%uint32(c.cfg.SocketsPerVM)),
		Sum:     net.Checksum(p),
		Payload: p,
	}
	// A full ingress ring counts as a fabric drop; the connection
	// stays inflight and the timeout path resends.
	c.route(net.HostNode, f)
	cn.inflight = true
	cn.sentAt = time.Now()
	c.mSent.Inc()
}

// handleReply matches one host-bound frame to its connection.
func (c *Cluster) handleReply(f net.Frame) {
	if f.Sum != net.Checksum(f.Payload) {
		c.mBadSum.Inc()
		return
	}
	if len(f.Payload) < 8 {
		c.mStale.Inc()
		return
	}
	id := int(binary.BigEndian.Uint32(f.Payload[0:]))
	seq := binary.BigEndian.Uint32(f.Payload[4:])
	if id < 0 || id >= len(c.conns) {
		c.mStale.Inc()
		return
	}
	cn := &c.conns[id]
	if !cn.inflight || seq != cn.seq {
		// A late echo of a message already resent and answered.
		c.mStale.Inc()
		return
	}
	c.hRTT.Observe(uint64(time.Since(cn.sentAt) / time.Microsecond))
	cn.inflight = false
	if cn.seq == 0 {
		// First completed trip on this connection: it is live end to
		// end (its socket opened, its frames route). Benchmarks warm
		// up on this count — replies alone can't tell "every
		// connection live" from "two connections echoing fast".
		c.nActive.Add(1)
	}
	cn.seq++
	c.mReplies.Inc()
}

// loadgen is the generator goroutine: drain replies, keep every
// connection's window full, resend on timeout.
func (c *Cluster) loadgen() {
	defer c.wg.Done()
	for !c.stop.Load() {
		progress := false
		for {
			f, ok := c.hostRing.Get()
			if !ok {
				break
			}
			c.handleReply(f)
			progress = true
		}
		now := time.Now()
		for i := range c.conns {
			cn := &c.conns[i]
			switch {
			case !cn.inflight:
				c.sendConn(i, cn)
				progress = true
			case now.Sub(cn.sentAt) > c.cfg.Timeout:
				c.mTimeouts.Inc()
				c.sendConn(i, cn)
				progress = true
			}
		}
		if !progress {
			// Idle: every window is full and no replies are queued.
			// Yield real CPU to the VM drivers instead of spinning.
			time.Sleep(100 * time.Microsecond)
		}
	}
}
