package cluster

import (
	"encoding/binary"
	"time"

	"synthesis/internal/net"
)

// The load generator: node 0 on the fabric, standing in for the
// fleet's remote users. One goroutine drives every logical connection
// with a one-message window — send, wait for the echo, send again —
// matching replies by the connection id carried in the payload, so
// thousands of connections multiplex over the per-VM socket capacity.
// Lost messages (fabric drop, NIC ring overflow, a port mid-churn,
// link faults, a partition) are resent after a wall-clock timeout;
// each unanswered resend doubles the wait up to MaxBackoff, and a
// connection that hits MaxResends gives up and goes silent — the
// generator distinguishes suspecting loss (timeouts), acting on it
// (resends), and abandoning the connection (gave_up). Nothing in the
// fleet is ever blocked on the host.

// lgConn is one logical connection's state.
type lgConn struct {
	vm       int    // destination node (1-based)
	port     uint32 // guest socket port (plain, pre-tag)
	seq      uint32
	inflight bool
	sentAt   time.Time // current attempt's launch (RTT measures the attempt)
	deadline time.Time // when the current attempt is declared lost
	resends  int       // consecutive resends of the current message
	gaveUp   bool      // hit MaxResends; the connection is silent

	// Recovery bookkeeping: set when a heal event names this
	// connection's VM, cleared by the first reply after it, whose
	// latency from the heal instant lands in cluster.loadgen.recovery_ms.
	recovering  bool
	recoverFrom time.Time
}

// payload renders [conn id (4)][seq (4)][seeded padding] at the
// configured message size. The padding is deterministic in (seed,
// conn, seq) so runs are reproducible and corruption is detectable
// end to end by the wire checksum alone.
func (c *Cluster) payload(id int, seq uint32) []byte {
	p := make([]byte, c.cfg.PayloadBytes)
	binary.BigEndian.PutUint32(p[0:], uint32(id))
	binary.BigEndian.PutUint32(p[4:], seq)
	x := c.padSeed ^ uint64(id)<<32 ^ uint64(seq)
	for i := 8; i < len(p); i++ {
		// xorshift64: cheap, stateless per (conn, seq).
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		p[i] = byte(x)
	}
	return p
}

// backoff is the wait before declaring the attempt after `resends`
// earlier resends lost: Timeout doubled per resend, capped at
// MaxBackoff.
func (c *Cluster) backoff(resends int) time.Duration {
	w := c.cfg.Timeout
	for i := 0; i < resends && w < c.cfg.MaxBackoff; i++ {
		w <<= 1
	}
	if w > c.cfg.MaxBackoff {
		w = c.cfg.MaxBackoff
	}
	return w
}

// sendConn launches (or relaunches) the connection's current message
// into the fabric toward its guest socket. Callers hold lgMu.
func (c *Cluster) sendConn(id int, cn *lgConn) {
	p := c.payload(id, cn.seq)
	f := net.Frame{
		Dst:     net.MakeAddr(cn.vm, cn.port),
		Src:     net.MakeAddr(net.HostNode, replyPortBase+uint32(id)%uint32(c.cfg.SocketsPerVM)),
		Sum:     net.Checksum(p),
		Payload: p,
	}
	// The launch clock read happens before the frame enters the
	// fabric: the trace plane's first hop stamp and the RTT's sentAt
	// are the same instant, so a traced request's hop deltas
	// telescope to exactly the measured RTT.
	now := time.Now()
	if c.tr != nil && cn.resends == 0 {
		c.tr.onSend(cn.vm, id, cn.seq, cn.port, now)
	}
	// A full ingress ring counts as a fabric drop; the connection
	// stays inflight and the timeout path resends.
	c.route(net.HostNode, f)
	cn.inflight = true
	cn.sentAt = now
	cn.deadline = now.Add(c.backoff(cn.resends))
	c.mSent.Inc()
}

// handleReply matches one host-bound frame to its connection. Callers
// hold lgMu.
func (c *Cluster) handleReply(f net.Frame) {
	if f.Sum != net.Checksum(f.Payload) {
		c.mBadSum.Inc()
		return
	}
	if len(f.Payload) < 8 {
		c.mStale.Inc()
		return
	}
	id := int(binary.BigEndian.Uint32(f.Payload[0:]))
	seq := binary.BigEndian.Uint32(f.Payload[4:])
	if id < 0 || id >= len(c.conns) {
		c.mStale.Inc()
		return
	}
	cn := &c.conns[id]
	if !cn.inflight || seq != cn.seq {
		// A late echo of a message already resent and answered.
		c.mStale.Inc()
		return
	}
	now := time.Now()
	c.hRTT.Observe(uint64(now.Sub(cn.sentAt) / time.Microsecond))
	if c.tr != nil {
		// The same clock read as the RTT observation closes the trace:
		// the conservation identity's other endpoint.
		c.tr.onRecv(id, seq, now)
	}
	if cn.recovering {
		// Time to first reply after the heal: the fleet's measured
		// recovery latency, backoff waits and all.
		c.hRecovery.Observe(uint64(now.Sub(cn.recoverFrom) / time.Millisecond))
		cn.recovering = false
	}
	cn.inflight = false
	cn.resends = 0
	if cn.seq == 0 {
		// First completed trip on this connection: it is live end to
		// end (its socket opened, its frames route). Benchmarks warm
		// up on this count — replies alone can't tell "every
		// connection live" from "two connections echoing fast".
		c.nActive.Add(1)
	}
	cn.seq++
	c.mReplies.Inc()
}

// drainHeals applies pending heal events: every live connection whose
// VM the cut had severed from the host starts a recovery-latency
// measurement from the heal instant.
func (c *Cluster) drainHeals() {
	for {
		select {
		case ev := <-c.fp.healCh:
			if len(ev.vms) == 0 {
				continue // the cut never separated the host from anyone
			}
			c.lgMu.Lock()
			for i := range c.conns {
				cn := &c.conns[i]
				if ev.vms[cn.vm] && !cn.gaveUp && !cn.recovering {
					cn.recovering = true
					cn.recoverFrom = ev.at
				}
			}
			c.lgMu.Unlock()
		default:
			return
		}
	}
}

// loadgen is the generator goroutine: drain replies, keep every
// connection's window full, resend on timeout with capped exponential
// backoff.
func (c *Cluster) loadgen() {
	defer c.wg.Done()
	for !c.stop.Load() {
		c.drainHeals()
		progress := false
		c.lgMu.Lock()
		for {
			f, ok := c.hostRing.Get()
			if !ok {
				break
			}
			c.handleReply(f)
			progress = true
		}
		now := time.Now()
		for i := range c.conns {
			cn := &c.conns[i]
			switch {
			case cn.gaveUp:
				// Past the resend cap: silent until the run ends.
			case !cn.inflight:
				c.sendConn(i, cn)
				progress = true
			case now.After(cn.deadline):
				c.mTimeouts.Inc()
				if c.tr != nil {
					// A resent (or abandoned) message's reply can no
					// longer be matched to one fabric transit.
					c.tr.onAbandon(i)
				}
				if c.cfg.MaxResends > 0 && cn.resends >= c.cfg.MaxResends {
					cn.gaveUp = true
					c.mGaveUp.Inc()
					break
				}
				cn.resends++
				c.mResends.Inc()
				c.sendConn(i, cn)
				progress = true
			}
		}
		c.lgMu.Unlock()
		if !progress {
			// Idle: every window is full and no replies are queued.
			// Yield real CPU to the VM drivers instead of spinning.
			time.Sleep(100 * time.Microsecond)
		}
	}
}
