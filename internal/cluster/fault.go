package cluster

import (
	"container/heap"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"synthesis/internal/fault"
	"synthesis/internal/metrics"
	"synthesis/internal/net"
)

// The fleet fault plane: per-link fault rules, the partition/heal
// schedule, and the slow-link throttle, all applied at the switch
// fabric so member VMs stay byte-identical to the healthy
// configuration. Every random draw comes from one seeded generator, so
// a failing chaos run replays from its seed.
//
// Fault semantics at the fabric mirror the single-machine injector's
// wire semantics: silent loss (drop, partition) returns true to the
// transmitter — a network does not tell you it ate your frame; that is
// what timeouts and resends are for — while throttle-queue overflow
// returns false, because a saturated link is backpressure the sender's
// bounded-retry path is built to see. Accounting is conservative and
// exact: after Stop,
//
//	offered + link.duplicated ==
//	  routed + fabric.dropped + fault.part_dropped +
//	  fault.link.dropped + fault.link.throttle_refused +
//	  fault.link.flushed
//
// (TestChaosSoak asserts this identity across a partition/heal cycle.)

// throttleSlots bounds each rate-limited rule's pending queue; a full
// queue refuses frames (transmitter-visible backpressure).
const throttleSlots = 64

// reorderHoldMin/Max bracket how long a reordered frame is held so
// that frames behind it overtake.
const (
	reorderHoldMin = time.Millisecond
	reorderHoldMax = 3 * time.Millisecond
)

// healEvent tells the load generator a cut was healed: used to stamp
// time-to-first-reply-after-heal per affected connection.
type healEvent struct {
	at  time.Time
	vms map[int]bool // member VMs the cut severed from the host
}

// pending is one frame held by the plane (delay, reorder) with its
// release time.
type pending struct {
	due time.Time
	dst int
	f   net.Frame
}

// pendingHeap is a min-heap on due time.
type pendingHeap []pending

func (h pendingHeap) Len() int            { return len(h) }
func (h pendingHeap) Less(i, j int) bool  { return h[i].due.Before(h[j].due) }
func (h pendingHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pendingHeap) Push(x any)         { *h = append(*h, x.(pending)) }
func (h *pendingHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// linkState is one rule's runtime state: the seeded draws come from
// the plane RNG; the token bucket paces a rate-limited rule.
type linkState struct {
	rule   fault.LinkRule
	tokens float64
	filled time.Time // last token refill
	queue  []pending // throttle backlog (due is meaningless here)
}

// cutRec is one active cut. Scheduled cuts are owned by their schedule
// entry; manual cuts (Cluster.Cut) live until Heal.
type cutRec struct {
	a, b   map[int]bool
	manual bool
}

// severs reports whether the cut separates src from dst (either
// direction).
func (c *cutRec) severs(src, dst int) bool {
	return (c.a[src] && c.b[dst]) || (c.a[dst] && c.b[src])
}

// hostSevered returns the member VMs this cut separates from the host.
func (c *cutRec) hostSevered() map[int]bool {
	var far map[int]bool
	switch {
	case c.a[net.HostNode]:
		far = c.b
	case c.b[net.HostNode]:
		far = c.a
	default:
		return nil
	}
	out := make(map[int]bool, len(far))
	for n := range far {
		if n != net.HostNode {
			out[n] = true
		}
	}
	return out
}

// schedState tracks one scripted partition through pending -> active
// -> healed.
type schedState struct {
	part  fault.Partition
	cut   *cutRec // non-nil while active
	done  bool
}

// faultPlane is the fabric's fault machinery. All state is guarded by
// mu; route paths take it only when enabled is set, so a fleet with no
// fault plan pays one atomic load per frame.
type faultPlane struct {
	c       *Cluster
	enabled atomic.Bool

	mu    sync.Mutex
	rng   *rand.Rand
	links []*linkState
	cuts  []*cutRec
	sched []*schedState
	epoch time.Time // set at Start; the schedule's t=0
	delay pendingHeap

	healCh chan healEvent

	mLinkDropped     *metrics.Counter
	mLinkCorrupted   *metrics.Counter
	mLinkDuplicated  *metrics.Counter
	mLinkDelayed     *metrics.Counter
	mLinkReordered   *metrics.Counter
	mThrottleRefused *metrics.Counter
	mFlushed         *metrics.Counter
	mPartDropped     *metrics.Counter
	mCuts            *metrics.Counter
	mHeals           *metrics.Counter
}

// newFaultPlane builds the plane from a plan. Always constructed (so
// Cut/Heal work on any cluster); enabled only once it has something to
// do.
func newFaultPlane(c *Cluster, plan fault.FleetPlan, seed int64) *faultPlane {
	fp := &faultPlane{
		c:      c,
		rng:    rand.New(rand.NewSource(seed ^ 0x5eed_fab1)),
		healCh: make(chan healEvent, 16),

		mLinkDropped:     c.Reg.Counter("cluster.fault.link.dropped"),
		mLinkCorrupted:   c.Reg.Counter("cluster.fault.link.corrupted"),
		mLinkDuplicated:  c.Reg.Counter("cluster.fault.link.duplicated"),
		mLinkDelayed:     c.Reg.Counter("cluster.fault.link.delayed"),
		mLinkReordered:   c.Reg.Counter("cluster.fault.link.reordered"),
		mThrottleRefused: c.Reg.Counter("cluster.fault.link.throttle_refused"),
		mFlushed:         c.Reg.Counter("cluster.fault.link.flushed"),
		mPartDropped:     c.Reg.Counter("cluster.fault.part_dropped"),
		mCuts:            c.Reg.Counter("cluster.fault.cuts"),
		mHeals:           c.Reg.Counter("cluster.fault.heals"),
	}
	for _, r := range plan.Links {
		fp.links = append(fp.links, &linkState{rule: r, tokens: 1})
	}
	for _, p := range plan.Partitions {
		fp.sched = append(fp.sched, &schedState{part: p})
	}
	c.Reg.SampleGauge("cluster.fault.active_cuts", func() float64 {
		fp.mu.Lock()
		defer fp.mu.Unlock()
		return float64(len(fp.cuts))
	})
	if len(fp.links) > 0 || len(fp.sched) > 0 {
		fp.enabled.Store(true)
	}
	return fp
}

// timed reports whether the plane needs the pump goroutine: scripted
// partitions or any rule that holds frames for later delivery.
func (fp *faultPlane) timed() bool {
	if len(fp.sched) > 0 {
		return true
	}
	for _, l := range fp.links {
		r := l.rule
		if r.Delay > 0 || r.Reorder > 0 || r.Rate > 0 {
			return true
		}
	}
	return false
}

// hit draws one Bernoulli trial; callers hold mu.
func (fp *faultPlane) hit(p float64) bool {
	return p > 0 && fp.rng.Float64() < p
}

// transit applies the plane to one frame from src toward dst (dst is
// already validated and, for host-bound frames, f carries the pushed
// source node). Returns (deliver, ok): deliver false means the plane
// consumed the frame — held, eaten, or refused — and ok is what route
// reports to the transmitter.
func (fp *faultPlane) transit(src, dst int, f *net.Frame) (deliver, ok bool) {
	now := time.Now()
	fp.mu.Lock()
	defer fp.mu.Unlock()

	for _, cut := range fp.cuts {
		if cut.severs(src, dst) {
			fp.mPartDropped.Inc()
			return false, true // silent: a partition eats frames
		}
	}

	var ls *linkState
	for _, l := range fp.links {
		if l.rule.Matches(src, dst) {
			ls = l
			break
		}
	}
	if ls == nil {
		return true, true
	}
	r := ls.rule

	if fp.hit(r.Drop) {
		fp.mLinkDropped.Inc()
		return false, true // silent wire loss
	}
	if fp.hit(r.Corrupt) {
		fp.corrupt(f)
		fp.mLinkCorrupted.Inc()
	}
	extra := fp.hit(r.Dup)
	if extra {
		fp.mLinkDuplicated.Inc()
	}

	// Hold-back faults: the frame (and its dup) leaves through the
	// delay heap instead of the fast path.
	var hold time.Duration
	switch {
	case fp.hit(r.Delay):
		hold = r.DelayFor
		fp.mLinkDelayed.Inc()
	case fp.hit(r.Reorder):
		span := float64(reorderHoldMax - reorderHoldMin)
		hold = reorderHoldMin + time.Duration(fp.rng.Float64()*span)
		fp.mLinkReordered.Inc()
	}
	if hold > 0 {
		heap.Push(&fp.delay, pending{due: now.Add(hold), dst: dst, f: *f})
		if extra {
			heap.Push(&fp.delay, pending{due: now.Add(hold), dst: dst, f: *f})
		}
		return false, true
	}

	if r.Rate > 0 {
		n := 1
		if extra {
			n = 2
		}
		if !fp.admit(ls, now, n) {
			// Count every refused frame (the dup too) so the
			// conservation identity stays exact.
			fp.mThrottleRefused.Add(uint64(n))
			return false, false // saturated link: visible backpressure
		}
		if ls.tokens >= float64(n) && len(ls.queue) == 0 {
			ls.tokens -= float64(n)
		} else {
			for i := 0; i < n; i++ {
				ls.queue = append(ls.queue, pending{dst: dst, f: *f})
			}
			return false, true // queued; the pump releases it
		}
	}

	if extra {
		// Deliver the dup inline; the original goes out via route.
		fp.c.deliver(dst, *f)
	}
	return true, true
}

// admit refills the rule's token bucket and reports whether n more
// frames fit in bucket+queue. Callers hold mu.
func (fp *faultPlane) admit(ls *linkState, now time.Time, n int) bool {
	if !ls.filled.IsZero() {
		ls.tokens += now.Sub(ls.filled).Seconds() * ls.rule.Rate
		if burst := 1 + ls.rule.Rate/100; ls.tokens > burst {
			ls.tokens = burst
		}
	}
	ls.filled = now
	return len(ls.queue)+n <= throttleSlots
}

// corrupt flips one bit in the checksum/payload region, copying the
// payload first so duplicated or ring-held siblings stay intact.
// Address words are never touched: a corrupt frame must fail the
// receiver's checksum, not misroute.
func (fp *faultPlane) corrupt(f *net.Frame) {
	if len(f.Payload) == 0 {
		f.Sum ^= 1 << uint(fp.rng.Intn(32))
		return
	}
	p := append([]byte(nil), f.Payload...)
	p[fp.rng.Intn(len(p))] ^= 1 << uint(fp.rng.Intn(8))
	f.Payload = p
}

// step runs the time-driven machinery once: schedule transitions,
// due delayed frames, throttle release. Called by the pump and driven
// directly (with a synthetic clock) by tests.
func (fp *faultPlane) step(now time.Time) {
	fp.mu.Lock()

	// Scripted partition transitions.
	for _, s := range fp.sched {
		since := now.Sub(fp.epoch)
		if s.cut == nil && !s.done && since >= s.part.From && since < s.part.To {
			s.cut = &cutRec{a: nodeSet(s.part.A), b: nodeSet(s.part.B)}
			fp.cuts = append(fp.cuts, s.cut)
			fp.mCuts.Inc()
		}
		if s.cut != nil && since >= s.part.To {
			fp.removeCut(s.cut, now)
			s.cut = nil
			s.done = true
		}
	}

	// Due held frames.
	var out []pending
	for len(fp.delay) > 0 && !fp.delay[0].due.After(now) {
		out = append(out, heap.Pop(&fp.delay).(pending))
	}

	// Throttle release, one rule at a time.
	for _, ls := range fp.links {
		if ls.rule.Rate == 0 || len(ls.queue) == 0 {
			continue
		}
		fp.admit(ls, now, 0)
		for len(ls.queue) > 0 && ls.tokens >= 1 {
			ls.tokens--
			out = append(out, ls.queue[0])
			ls.queue = ls.queue[1:]
		}
	}
	fp.mu.Unlock()

	// Deliver outside the lock: deliver takes ring paths and counters
	// only, but keeping the plane lock narrow keeps route() snappy.
	for _, p := range out {
		fp.c.deliver(p.dst, p.f)
	}
}

// removeCut drops one cut record and emits its heal event; callers
// hold mu.
func (fp *faultPlane) removeCut(cut *cutRec, now time.Time) {
	for i, c := range fp.cuts {
		if c == cut {
			fp.cuts = append(fp.cuts[:i], fp.cuts[i+1:]...)
			break
		}
	}
	fp.mHeals.Inc()
	ev := healEvent{at: now, vms: cut.hostSevered()}
	select {
	case fp.healCh <- ev:
	default: // nobody draining (manually driven fleet): drop the event
	}
}

// flush discards everything still held when the fleet stops, counting
// each frame so the conservation identity stays exact.
func (fp *faultPlane) flush() {
	fp.mu.Lock()
	defer fp.mu.Unlock()
	n := uint64(len(fp.delay))
	fp.delay = nil
	for _, ls := range fp.links {
		n += uint64(len(ls.queue))
		ls.queue = nil
	}
	fp.mFlushed.Add(n)
}

// nodeSet builds a membership set.
func nodeSet(ids []int) map[int]bool {
	m := make(map[int]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

// pump is the plane's goroutine: it executes the partition schedule
// and releases held frames. Started only when the plan needs time.
func (c *Cluster) faultPump() {
	defer c.wg.Done()
	for !c.stop.Load() {
		c.fp.step(time.Now())
		time.Sleep(200 * time.Microsecond)
	}
	c.fp.flush()
}

// Cut severs every link between node sets a and b (both directions,
// node 0 = the host) until Heal. Programmatic twin of the part=
// schedule clause; benchmarks use it to place the heal instant
// precisely.
func (c *Cluster) Cut(a, b []int) {
	c.fp.mu.Lock()
	c.fp.cuts = append(c.fp.cuts, &cutRec{a: nodeSet(a), b: nodeSet(b), manual: true})
	c.fp.mCuts.Inc()
	c.fp.mu.Unlock()
	c.fp.enabled.Store(true)
}

// Heal removes every manual cut, stamping the heal so the load
// generator can measure each affected connection's time to first
// reply. Scheduled (part=) cuts heal on their own schedule.
func (c *Cluster) Heal() {
	now := time.Now()
	c.fp.mu.Lock()
	var manual []*cutRec
	for _, cut := range c.fp.cuts {
		if cut.manual {
			manual = append(manual, cut)
		}
	}
	for _, cut := range manual {
		c.fp.removeCut(cut, now)
	}
	c.fp.mu.Unlock()
}
