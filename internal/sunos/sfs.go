package sunos

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// The baseline file system paths: generic inode read/write through a
// scanned buffer cache, namei path resolution with linear directory
// scans and forward string comparison, and the character-device
// switch (a second dispatch layer for /dev/null and /dev/tty).

// buildBread assembles bread: A2 = inode, D0 = block number ->
// A1 = cached block data. Linear scan of the buffer headers; on a
// miss, a rotor-chosen victim is refilled from the backing store (the
// simulated disk transfer). Clobbers D0, D1, A4, A5.
func (k *Kernel) buildBread(bcopy uint32) uint32 {
	b := asmkit.New()
	b.MoveL(m68k.Abs(gBufHdr), m68k.A(4))
	b.MoveL(m68k.Imm(nbuf-1), m68k.D(1))
	b.Label("scan")
	b.Cmp(4, m68k.Ind(4), m68k.A(2)) // header inode vs A2
	b.Bne("next")
	b.Cmp(4, m68k.Disp(bBlk, 4), m68k.D(0))
	b.Bne("next")
	b.TstL(m68k.Disp(bValid, 4))
	b.Beq("next")
	b.MoveL(m68k.Disp(bAddr, 4), m68k.A(1))
	b.Rts()
	b.Label("next")
	b.Lea(m68k.Disp(bufHdrBytes, 4), 4)
	b.Dbra(1, "scan")
	// Miss: evict the rotor's victim and fill it.
	b.MoveL(m68k.Abs(gBufRot), m68k.D(1))
	b.MoveL(m68k.Abs(gBufHdr), m68k.A(4))
	b.LslL(m68k.Imm(4), m68k.D(1))
	b.AddL(m68k.D(1), m68k.A(4))
	b.MoveL(m68k.Abs(gBufRot), m68k.D(1))
	b.AddL(m68k.Imm(1), m68k.D(1))
	b.AndL(m68k.Imm(nbuf-1), m68k.D(1))
	b.MoveL(m68k.D(1), m68k.Abs(gBufRot))
	b.MoveL(m68k.A(2), m68k.Ind(4))
	b.MoveL(m68k.D(0), m68k.Disp(bBlk, 4))
	b.MoveL(m68k.Imm(1), m68k.Disp(bValid, 4))
	b.MoveL(m68k.Disp(bAddr, 4), m68k.A(1))
	// src = inode data + blk*1024
	b.MoveL(m68k.Disp(iData, 2), m68k.A(5))
	b.LslL(m68k.Imm(10), m68k.D(0))
	b.AddL(m68k.D(0), m68k.A(5))
	// The "disk transfer" into the cache block.
	b.MoveL(m68k.A(1), m68k.PreDec(7))
	b.MoveL(m68k.Imm(bufBlock/4-1), m68k.D(1))
	b.Label("fill")
	b.MoveL(m68k.PostInc(5), m68k.PostInc(1))
	b.Dbra(1, "fill")
	b.MoveL(m68k.PostInc(7), m68k.A(1))
	b.Rts()
	return b.Link(k.M)
}

// buildReadi assembles the generic file read: A0 = file slot,
// D2 = user buffer, D3 = length -> D0 = bytes. Inode sleep-lock, uio
// staging, per-block bread + bcopy chunk loop, access-time update.
func (k *Kernel) buildReadi(bcopy uint32) uint32 {
	uio := k.alloc(24)
	b := asmkit.New()
	b.MoveL(m68k.Disp(fPtr, 0), m68k.A(2))
	b.Label("lock")
	b.Tas(m68k.Disp(iLock, 2))
	b.Bmi("lock")
	// Stage the uio/iovec (the framework always does).
	b.MoveL(m68k.D(2), m68k.Abs(uio))
	b.MoveL(m68k.D(3), m68k.Abs(uio+4))
	b.MoveL(m68k.Disp(fOff, 0), m68k.D(4))
	b.MoveL(m68k.D(4), m68k.Abs(uio+8))
	b.MoveL(m68k.D(3), m68k.Abs(uio+12))
	// avail = size - off
	b.MoveL(m68k.Disp(iSize, 2), m68k.D(5))
	b.SubL(m68k.D(4), m68k.D(5))
	b.Bhi("some")
	b.Clr(1, m68k.Disp(iLock, 2))
	b.Clr(4, m68k.D(0))
	b.Rts()
	b.Label("some")
	b.Cmp(4, m68k.D(3), m68k.D(5))
	b.Bls("n1")
	b.MoveL(m68k.D(3), m68k.D(5))
	b.Label("n1")
	b.MoveL(m68k.D(5), m68k.D(7)) // total to return
	b.MoveL(m68k.D(2), m68k.A(3)) // user cursor
	b.Label("loop")
	b.TstL(m68k.D(5))
	b.Beq("done")
	b.MoveL(m68k.D(4), m68k.D(0))
	b.LsrL(m68k.Imm(10), m68k.D(0))
	b.Jsr(k.bread) // -> A1 = block data
	b.MoveL(m68k.D(4), m68k.D(1))
	b.AndL(m68k.Imm(1023), m68k.D(1))
	b.AddL(m68k.D(1), m68k.A(1)) // src = block + boff
	b.MoveL(m68k.Imm(1024), m68k.D(6))
	b.SubL(m68k.D(1), m68k.D(6))
	b.Cmp(4, m68k.D(5), m68k.D(6))
	b.Bls("c1")
	b.MoveL(m68k.D(5), m68k.D(6))
	b.Label("c1")
	b.MoveL(m68k.D(6), m68k.PreDec(7)) // bcopy clobbers the count
	b.Jsr(bcopy)                       // (A1)+ -> (A3)+, D6 bytes
	b.MoveL(m68k.PostInc(7), m68k.D(6))
	b.AddL(m68k.D(6), m68k.D(4))
	b.SubL(m68k.D(6), m68k.D(5))
	// uio bookkeeping per chunk.
	b.MoveL(m68k.D(4), m68k.Abs(uio+8))
	b.MoveL(m68k.D(5), m68k.Abs(uio+12))
	b.Bra("loop")
	b.Label("done")
	b.MoveL(m68k.D(4), m68k.Disp(fOff, 0))
	// Access-time update.
	b.MoveL(m68k.Abs(gClock), m68k.D(0))
	b.AddL(m68k.Imm(1), m68k.D(0))
	b.MoveL(m68k.D(0), m68k.Abs(gClock))
	b.MoveL(m68k.D(0), m68k.Disp(iAtime, 2))
	b.Clr(1, m68k.Disp(iLock, 2))
	b.MoveL(m68k.D(7), m68k.D(0))
	b.Rts()
	return b.Link(k.M)
}

// buildWritei assembles the generic file write: write-through to the
// backing store with a cache-invalidation scan and modify-time
// update. A0 = slot, D2 = buffer, D3 = length -> D0.
func (k *Kernel) buildWritei(bcopy uint32) uint32 {
	b := asmkit.New()
	b.MoveL(m68k.Disp(fPtr, 0), m68k.A(2))
	b.Label("lock")
	b.Tas(m68k.Disp(iLock, 2))
	b.Bmi("lock")
	b.MoveL(m68k.Disp(fOff, 0), m68k.D(4))
	b.MoveL(m68k.Disp(iCap, 2), m68k.D(5))
	b.SubL(m68k.D(4), m68k.D(5))
	b.Bhi("some")
	b.Clr(1, m68k.Disp(iLock, 2))
	b.Clr(4, m68k.D(0))
	b.Rts()
	b.Label("some")
	b.Cmp(4, m68k.D(3), m68k.D(5))
	b.Bls("n1")
	b.MoveL(m68k.D(3), m68k.D(5))
	b.Label("n1")
	b.MoveL(m68k.D(5), m68k.D(7))
	b.MoveL(m68k.D(2), m68k.A(1)) // src = user buffer
	b.MoveL(m68k.Disp(iData, 2), m68k.A(3))
	b.AddL(m68k.D(4), m68k.A(3)) // dst = data + off
	b.MoveL(m68k.D(5), m68k.D(6))
	b.Jsr(bcopy)
	b.AddL(m68k.D(7), m68k.D(4))
	b.MoveL(m68k.D(4), m68k.Disp(fOff, 0))
	b.Cmp(4, m68k.Disp(iSize, 2), m68k.D(4))
	b.Bls("nosize")
	b.MoveL(m68k.D(4), m68k.Disp(iSize, 2))
	b.Label("nosize")
	// Invalidate cached blocks of this inode (write-through).
	b.MoveL(m68k.Abs(gBufHdr), m68k.A(4))
	b.MoveL(m68k.Imm(nbuf-1), m68k.D(1))
	b.Label("inv")
	b.Cmp(4, m68k.Ind(4), m68k.A(2))
	b.Bne("nx")
	b.Clr(4, m68k.Disp(bValid, 4))
	b.Label("nx")
	b.Lea(m68k.Disp(bufHdrBytes, 4), 4)
	b.Dbra(1, "inv")
	// Modify-time update.
	b.MoveL(m68k.Abs(gClock), m68k.D(0))
	b.AddL(m68k.Imm(1), m68k.D(0))
	b.MoveL(m68k.D(0), m68k.Abs(gClock))
	b.MoveL(m68k.D(0), m68k.Disp(iMtime, 2))
	b.Clr(1, m68k.Disp(iLock, 2))
	b.MoveL(m68k.D(7), m68k.D(0))
	b.Rts()
	return b.Link(k.M)
}

// buildNamei assembles path resolution: D1 = path -> A2 = inode (0 on
// failure). Component-by-component parse, each resolved by a linear
// directory scan with a forward character-by-character comparison —
// the cost open(/dev/null) pays here is what the Synthesis hashed-
// backwards lookup avoids.
func (k *Kernel) buildNamei() uint32 {
	nbufArea := k.alloc(nameMax + 1)
	m := k.M

	// fubyte: fetch one byte from "user space" — A0 = address ->
	// D0 = byte. The traditional namei pulls the pathname through
	// this call one character at a time.
	fb := asmkit.New()
	fb.Clr(4, m68k.D(0))
	fb.MoveB(m68k.Ind(0), m68k.D(0))
	fb.Rts()
	fubyte := fb.Link(m)

	b := asmkit.New()
	b.MoveL(m68k.D(1), m68k.A(0))
	b.MoveL(m68k.Abs(gRootDir), m68k.A(2))
	b.Label("slash")
	b.Jsr(fubyte)
	b.CmpL(m68k.Imm('/'), m68k.D(0))
	b.Bne("comp")
	b.Lea(m68k.Disp(1, 0), 0)
	b.Bra("slash")
	b.Label("comp")
	b.TstL(m68k.D(0))
	b.Beq("done")
	// Copy the component into the name buffer, one fubyte at a time.
	b.Lea(m68k.Abs(nbufArea), 1)
	b.Clr(4, m68k.D(2))
	b.Label("cp")
	b.Jsr(fubyte)
	b.TstL(m68k.D(0))
	b.Beq("cpe")
	b.CmpL(m68k.Imm('/'), m68k.D(0))
	b.Beq("cpe")
	b.MoveB(m68k.D(0), m68k.PostInc(1))
	b.Lea(m68k.Disp(1, 0), 0)
	b.AddL(m68k.Imm(1), m68k.D(2))
	b.CmpL(m68k.Imm(nameMax), m68k.D(2))
	b.Bcs("cp")
	b.Label("cpe")
	b.Clr(1, m68k.Ind(1))
	// Lock the directory inode for the scan (ilock/iunlock per
	// component, as iget does).
	b.Label("ilock")
	b.Tas(m68k.Disp(iLock, 2))
	b.Bmi("ilock")
	// Scan the directory.
	b.MoveL(m68k.Disp(iData, 2), m68k.A(3))
	b.MoveL(m68k.Disp(iSize, 2), m68k.D(3))
	b.Label("scan")
	b.TstL(m68k.D(3))
	b.Beq("fail")
	// Forward strcmp: shared prefixes cost a comparison per byte.
	b.Lea(m68k.Abs(nbufArea), 1)
	b.Lea(m68k.Disp(4, 3), 4)
	b.Label("sc")
	b.Clr(4, m68k.D(0))
	b.MoveB(m68k.PostInc(1), m68k.D(0))
	b.Clr(4, m68k.D(4))
	b.MoveB(m68k.PostInc(4), m68k.D(4))
	b.Cmp(4, m68k.D(4), m68k.D(0))
	b.Bne("next")
	b.TstL(m68k.D(0))
	b.Bne("sc")
	// Match: unlock the directory and descend.
	b.Clr(1, m68k.Disp(iLock, 2))
	b.MoveL(m68k.Ind(3), m68k.A(2))
	b.Bra("slash")
	b.Label("next")
	b.Lea(m68k.Disp(direntBytes, 3), 3)
	b.SubL(m68k.Imm(direntBytes), m68k.D(3))
	b.Bra("scan")
	b.Label("fail")
	b.Clr(1, m68k.Disp(iLock, 2))
	b.MoveL(m68k.Imm(0), m68k.A(2))
	b.Label("done")
	b.Rts()
	return b.Link(k.M)
}

// buildNullDev assembles the /dev/null driver pair (reached through
// the cdevsw indirection).
func (k *Kernel) buildNullDev() (read, write uint32) {
	br := asmkit.New()
	br.Clr(4, m68k.D(0))
	br.Rts()
	bw := asmkit.New()
	bw.MoveL(m68k.D(3), m68k.D(0))
	bw.Rts()
	return br.Link(k.M), bw.Link(k.M)
}

// buildTTYDev assembles a polling tty driver: read gathers until
// newline or count, write pushes bytes at the device register.
func (k *Kernel) buildTTYDev() (read, write uint32) {
	m := k.M
	br := asmkit.New()
	br.MoveL(m68k.D(2), m68k.A(1))
	br.Clr(4, m68k.D(7))
	br.Label("loop")
	br.Cmp(4, m68k.D(3), m68k.D(7))
	br.Bcc("done")
	br.Label("wait")
	br.MoveL(m68k.Abs(m68k.TTYBase+m68k.TTYRegStatus), m68k.D(0))
	br.Beq("wait")
	br.MoveL(m68k.Abs(m68k.TTYBase+m68k.TTYRegData), m68k.D(0))
	br.MoveB(m68k.D(0), m68k.PostInc(1))
	br.AddL(m68k.Imm(1), m68k.D(7))
	br.CmpL(m68k.Imm('\n'), m68k.D(0))
	br.Beq("done")
	br.Bra("loop")
	br.Label("done")
	br.MoveL(m68k.D(7), m68k.D(0))
	br.Rts()

	bw := asmkit.New()
	bw.MoveL(m68k.D(3), m68k.D(0))
	bw.TstL(m68k.D(3))
	bw.Beq("done")
	bw.MoveL(m68k.D(2), m68k.A(1))
	bw.MoveL(m68k.D(3), m68k.D(1))
	bw.SubL(m68k.Imm(1), m68k.D(1))
	bw.Label("loop")
	bw.MoveB(m68k.PostInc(1), m68k.Abs(m68k.TTYBase+m68k.TTYRegData))
	bw.Dbra(1, "loop")
	bw.Label("done")
	bw.Rts()
	return br.Link(m), bw.Link(m)
}

// buildSpec assembles the character-device switch: a second dispatch
// layer through cdevsw, exactly the indirection the Synthesis open
// specializes away.
func (k *Kernel) buildSpec(cdevswR, cdevswW uint32) (read, write uint32) {
	br := asmkit.New()
	br.MoveL(m68k.Disp(fAux, 0), m68k.D(0)) // major number
	br.Lea(m68k.Abs(cdevswR), 1)
	br.JsrVia(m68k.Idx(0, 1, 0, 4))
	br.Rts()
	bw := asmkit.New()
	bw.MoveL(m68k.Disp(fAux, 0), m68k.D(0))
	bw.Lea(m68k.Abs(cdevswW), 1)
	bw.JsrVia(m68k.Idx(0, 1, 0, 4))
	bw.Rts()
	return br.Link(k.M), bw.Link(k.M)
}
