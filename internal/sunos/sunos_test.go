package sunos_test

import (
	"testing"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	"synthesis/internal/sunos"
)

// UNIX syscall helper: number in D0, args in D1-D3 (same binary
// convention as the Synthesis UNIX emulator).
func call(b *asmkit.Builder, no int32) {
	b.MoveL(m68k.Imm(no), m68k.D(0))
	b.Trap(0)
}

func exit(b *asmkit.Builder) {
	b.MoveL(m68k.Imm(0), m68k.D(1))
	call(b, 1)
}

func boot(t *testing.T) *sunos.Kernel {
	t.Helper()
	return sunos.Boot(m68k.Config{MemSize: 1 << 20, TraceDepth: 128})
}

func pokeName(k *sunos.Kernel, addr uint32, s string) {
	for i := 0; i < len(s); i++ {
		k.M.Poke(addr+uint32(i), 1, uint32(s[i]))
	}
	k.M.Poke(addr+uint32(len(s)), 1, 0)
}

func TestNullDeviceThroughLayers(t *testing.T) {
	k := boot(t)
	const nameAddr, res = 0x9100, 0x9000
	pokeName(k, nameAddr, "/dev/null")
	b := asmkit.New()
	b.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
	call(b, 5) // open
	b.MoveL(m68k.D(0), m68k.Abs(res))
	b.MoveL(m68k.Imm(0), m68k.D(1)) // fd
	b.MoveL(m68k.Imm(0x9200), m68k.D(2))
	b.MoveL(m68k.Imm(9), m68k.D(3))
	call(b, 4) // write
	b.MoveL(m68k.D(0), m68k.Abs(res+4))
	b.MoveL(m68k.Imm(0), m68k.D(1))
	call(b, 3) // read
	b.MoveL(m68k.D(0), m68k.Abs(res+8))
	b.MoveL(m68k.Imm(0), m68k.D(1))
	call(b, 6) // close
	b.MoveL(m68k.D(0), m68k.Abs(res+12))
	exit(b)
	entry := b.Link(k.M)
	if err := k.Run(entry, 5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := int32(k.M.Peek(res, 4)); got != 0 {
		t.Fatalf("open = %d", got)
	}
	if got := k.M.Peek(res+4, 4); got != 9 {
		t.Errorf("null write = %d, want 9", got)
	}
	if got := k.M.Peek(res+8, 4); got != 0 {
		t.Errorf("null read = %d, want 0", got)
	}
	if got := int32(k.M.Peek(res+12, 4)); got != 0 {
		t.Errorf("close = %d", got)
	}
}

func TestFileReadThroughBufferCache(t *testing.T) {
	k := boot(t)
	k.CreateFile("/etc/motd", []byte("sunos baseline file"), 64)
	const nameAddr, res, buf = 0x9100, 0x9000, 0x9300
	pokeName(k, nameAddr, "/etc/motd")
	b := asmkit.New()
	b.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
	call(b, 5)
	b.MoveL(m68k.D(0), m68k.Abs(res))
	// Two partial reads.
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(buf), m68k.D(2))
	b.MoveL(m68k.Imm(5), m68k.D(3))
	call(b, 3)
	b.MoveL(m68k.D(0), m68k.Abs(res+4))
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(buf+5), m68k.D(2))
	b.MoveL(m68k.Imm(100), m68k.D(3))
	call(b, 3)
	b.MoveL(m68k.D(0), m68k.Abs(res+8))
	// Write appends within capacity via a second descriptor.
	b.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
	call(b, 5) // fd 1
	b.MoveL(m68k.Imm(1), m68k.D(1))
	b.MoveL(m68k.Imm(buf), m68k.D(2))
	b.MoveL(m68k.Imm(19), m68k.D(3))
	call(b, 3) // position to EOF
	b.MoveL(m68k.Imm(1), m68k.D(1))
	b.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(2))
	b.MoveL(m68k.Imm(4), m68k.D(3))
	call(b, 4) // append 4 bytes
	b.MoveL(m68k.D(0), m68k.Abs(res+12))
	exit(b)
	entry := b.Link(k.M)
	if err := k.Run(entry, 20_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := int32(k.M.Peek(res, 4)); got != 0 {
		t.Fatalf("open = %d", got)
	}
	if got := k.M.Peek(res+4, 4); got != 5 {
		t.Errorf("read1 = %d, want 5", got)
	}
	if got := k.M.Peek(res+8, 4); got != 14 {
		t.Errorf("read2 = %d, want 14", got)
	}
	if got := string(k.M.PeekBytes(buf, 19)); got != "sunos baseline file" {
		t.Errorf("data %q", got)
	}
	if got := k.M.Peek(res+12, 4); got != 4 {
		t.Errorf("append = %d, want 4", got)
	}
	if got := k.FileSize("/etc/motd"); got != 23 {
		t.Errorf("size after append = %d, want 23", got)
	}
}

func TestSocketPipe(t *testing.T) {
	k := boot(t)
	const res, wbuf, rbuf = 0x9000, 0x9300, 0x9700
	k.M.PokeBytes(wbuf, []byte("socketpipe-data-0123456789"))
	b := asmkit.New()
	call(b, 42) // pipe -> D0 rfd, D1 wfd
	b.MoveL(m68k.D(0), m68k.D(6))
	b.MoveL(m68k.D(1), m68k.D(7))
	// Write 26 bytes.
	b.MoveL(m68k.D(7), m68k.D(1))
	b.MoveL(m68k.Imm(wbuf), m68k.D(2))
	b.MoveL(m68k.Imm(26), m68k.D(3))
	call(b, 4)
	b.MoveL(m68k.D(0), m68k.Abs(res))
	// Read them back.
	b.MoveL(m68k.D(6), m68k.D(1))
	b.MoveL(m68k.Imm(rbuf), m68k.D(2))
	b.MoveL(m68k.Imm(26), m68k.D(3))
	call(b, 3)
	b.MoveL(m68k.D(0), m68k.Abs(res+4))
	exit(b)
	entry := b.Link(k.M)
	if err := k.Run(entry, 10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := k.M.Peek(res, 4); got != 26 {
		t.Errorf("pipe write = %d, want 26", got)
	}
	if got := k.M.Peek(res+4, 4); got != 26 {
		t.Errorf("pipe read = %d, want 26", got)
	}
	if got := string(k.M.PeekBytes(rbuf, 26)); got != "socketpipe-data-0123456789" {
		t.Errorf("data %q", got)
	}
}

func TestPipeLargeTransferFragmentsIntoMbufs(t *testing.T) {
	k := boot(t)
	const res, wbuf, rbuf = 0x9000, 0x20000, 0x28000
	payload := make([]byte, 1024)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	k.M.PokeBytes(wbuf, payload)
	b := asmkit.New()
	call(b, 42)
	b.MoveL(m68k.D(0), m68k.D(6))
	b.MoveL(m68k.D(1), m68k.D(7))
	b.MoveL(m68k.D(7), m68k.D(1))
	b.MoveL(m68k.Imm(wbuf), m68k.D(2))
	b.MoveL(m68k.Imm(1024), m68k.D(3))
	call(b, 4)
	b.MoveL(m68k.D(0), m68k.Abs(res))
	b.MoveL(m68k.D(6), m68k.D(1))
	b.MoveL(m68k.Imm(rbuf), m68k.D(2))
	b.MoveL(m68k.Imm(1024), m68k.D(3))
	call(b, 3)
	b.MoveL(m68k.D(0), m68k.Abs(res+4))
	exit(b)
	entry := b.Link(k.M)
	if err := k.Run(entry, 20_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := k.M.Peek(res, 4); got != 1024 {
		t.Errorf("write = %d", got)
	}
	if got := k.M.Peek(res+4, 4); got != 1024 {
		t.Errorf("read = %d", got)
	}
	got := k.M.PeekBytes(rbuf, 1024)
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], payload[i])
		}
	}
}

func TestOpenMissingPathFails(t *testing.T) {
	k := boot(t)
	const nameAddr, res = 0x9100, 0x9000
	pokeName(k, nameAddr, "/does/not/exist")
	b := asmkit.New()
	b.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
	call(b, 5)
	b.MoveL(m68k.D(0), m68k.Abs(res))
	exit(b)
	if err := k.Run(b.Link(k.M), 5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := int32(k.M.Peek(res, 4)); got != -1 {
		t.Errorf("open = %d, want -1", got)
	}
}

func TestBaselineSlowerThanItsOwnNullCall(t *testing.T) {
	// Sanity of the layering: a null write must cost much more than
	// the raw trap round-trip (all the layers are real work).
	k := sunos.Boot(m68k.Sun3Config())
	const nameAddr = 0x9100
	pokeName(k, nameAddr, "/dev/null")
	b := asmkit.New()
	b.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
	call(b, 5)
	b.Kcall(sunos.SvcMark)
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(0x9200), m68k.D(2))
	b.MoveL(m68k.Imm(1), m68k.D(3))
	call(b, 4)
	b.Kcall(sunos.SvcMark)
	exit(b)
	k.ResetMarks()
	if err := k.Run(b.Link(k.M), 5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	d := k.MarkDeltasMicros()
	if len(d) != 1 {
		t.Fatalf("marks %v", d)
	}
	t.Logf("baseline null write: %.2f usec (Synthesis native: ~6)", d[0])
	if d[0] < 10 {
		t.Errorf("baseline null write %.2f usec is implausibly fast for the layered path", d[0])
	}
}

func TestFullSwitchRoutineRuns(t *testing.T) {
	k := sunos.Boot(m68k.Sun3Config())
	b := asmkit.New()
	b.Kcall(sunos.SvcMark)
	b.MoveL(m68k.Imm(1), m68k.D(1))
	b.MoveL(m68k.Imm(1), m68k.D(2)) // switch to self: measurable round trip
	b.Jsr(k.SwitchRoutine())
	b.Kcall(sunos.SvcMark)
	exit(b)
	k.ResetMarks()
	if err := k.Run(b.Link(k.M), 5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	d := k.MarkDeltasMicros()
	if len(d) != 1 {
		t.Fatalf("marks %v", d)
	}
	t.Logf("traditional full switch: %.2f usec (Synthesis: ~11-20)", d[0])
	if d[0] < 20 {
		t.Errorf("traditional switch %.2f usec should be well above the synthesized one", d[0])
	}
}

func TestTTYThroughCdevsw(t *testing.T) {
	k := boot(t)
	k.TTYDev.InputString("baseline line\n", 1000, 500)
	const nameAddr, res, buf = 0x9100, 0x9000, 0x9300
	pokeName(k, nameAddr, "/dev/tty")
	b := asmkit.New()
	b.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
	call(b, 5) // open -> fd 0
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(buf), m68k.D(2))
	b.MoveL(m68k.Imm(64), m68k.D(3))
	call(b, 3) // read polls until newline
	b.MoveL(m68k.D(0), m68k.Abs(res))
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(buf), m68k.D(2))
	b.MoveL(m68k.Imm(4), m68k.D(3))
	call(b, 4) // write the first 4 bytes back out
	exit(b)
	if err := k.Run(b.Link(k.M), 50_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	n := k.M.Peek(res, 4)
	if got := string(k.M.PeekBytes(buf, int(n))); got != "baseline line\n" {
		t.Errorf("tty read %q", got)
	}
	if got := string(k.TTYDev.Output()); got != "base" {
		t.Errorf("tty write %q", got)
	}
}

func TestLseekRepositions(t *testing.T) {
	k := boot(t)
	k.CreateFile("/f", []byte("0123456789"), 16)
	const nameAddr, res, buf = 0x9100, 0x9000, 0x9300
	pokeName(k, nameAddr, "/f")
	b := asmkit.New()
	b.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
	call(b, 5)
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(5), m68k.D(2))
	call(b, 19) // lseek to 5
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(buf), m68k.D(2))
	b.MoveL(m68k.Imm(3), m68k.D(3))
	call(b, 3)
	b.MoveL(m68k.D(0), m68k.Abs(res))
	exit(b)
	if err := k.Run(b.Link(k.M), 10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := k.M.Peek(res, 4); got != 3 {
		t.Fatalf("read after lseek = %d", got)
	}
	if got := string(k.M.PeekBytes(buf, 3)); got != "567" {
		t.Errorf("data %q, want 567", got)
	}
}

func TestSocketLoopbackThroughLayers(t *testing.T) {
	k := boot(t)
	const res, wbuf, rbuf = 0x9000, 0x9300, 0x9700
	k.M.PokeBytes(wbuf, []byte("datagram"))
	b := asmkit.New()
	// socket(local=5, remote=9) -> fd 0
	b.MoveL(m68k.Imm(5), m68k.D(1))
	b.MoveL(m68k.Imm(9), m68k.D(2))
	call(b, 97)
	b.MoveL(m68k.D(0), m68k.Abs(res))
	// socket(local=9, remote=5) -> fd 1
	b.MoveL(m68k.Imm(9), m68k.D(1))
	b.MoveL(m68k.Imm(5), m68k.D(2))
	call(b, 97)
	b.MoveL(m68k.D(0), m68k.Abs(res+4))
	// Duplicate local port must fail.
	b.MoveL(m68k.Imm(5), m68k.D(1))
	b.MoveL(m68k.Imm(33), m68k.D(2))
	call(b, 97)
	b.MoveL(m68k.D(0), m68k.Abs(res+8))
	// write(fd 0): the frame lands in socket 9's ring.
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(wbuf), m68k.D(2))
	b.MoveL(m68k.Imm(8), m68k.D(3))
	call(b, 4)
	b.MoveL(m68k.D(0), m68k.Abs(res+12))
	// read(fd 1): the payload comes back out.
	b.MoveL(m68k.Imm(1), m68k.D(1))
	b.MoveL(m68k.Imm(rbuf), m68k.D(2))
	b.MoveL(m68k.Imm(64), m68k.D(3))
	call(b, 3)
	b.MoveL(m68k.D(0), m68k.Abs(res+16))
	// read again (arguments reloaded: the syscall may clobber D1, as
	// pipe's two-result convention allows): empty ring returns 0.
	b.MoveL(m68k.Imm(1), m68k.D(1))
	b.MoveL(m68k.Imm(rbuf), m68k.D(2))
	b.MoveL(m68k.Imm(64), m68k.D(3))
	call(b, 3)
	b.MoveL(m68k.D(0), m68k.Abs(res+20))
	exit(b)
	entry := b.Link(k.M)
	if err := k.Run(entry, 5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := int32(k.M.Peek(res, 4)); got != 0 {
		t.Fatalf("first socket fd = %d, want 0", got)
	}
	if got := int32(k.M.Peek(res+4, 4)); got != 1 {
		t.Fatalf("second socket fd = %d, want 1", got)
	}
	if got := int32(k.M.Peek(res+8, 4)); got != -1 {
		t.Errorf("duplicate port = %d, want -1", got)
	}
	if got := k.M.Peek(res+12, 4); got != 8 {
		t.Errorf("send = %d, want 8", got)
	}
	if got := k.M.Peek(res+16, 4); got != 8 {
		t.Errorf("recv = %d, want 8", got)
	}
	if got := string(k.M.PeekBytes(rbuf, 8)); got != "datagram" {
		t.Errorf("payload %q, want \"datagram\"", got)
	}
	if got := k.M.Peek(res+20, 4); got != 0 {
		t.Errorf("recv on empty ring = %d, want 0", got)
	}
}

// Regression: the socksum layer zero-pads the ragged tail long before
// summing. It must pad the slot copy beyond the payload, never the
// payload bytes themselves — an earlier version cleared the whole
// last long and silently truncated any length not a multiple of 4
// (both ends zeroed identically, so the checksum still matched).
func TestSocketRaggedPayloadSurvivesChecksum(t *testing.T) {
	k := boot(t)
	const res, wbuf, rbuf = 0x9000, 0x9300, 0x9700
	msg := "Hello, Quamachine!" // 18 bytes: len%4 == 2
	k.M.PokeBytes(wbuf, []byte(msg))
	b := asmkit.New()
	b.MoveL(m68k.Imm(5), m68k.D(1))
	b.MoveL(m68k.Imm(9), m68k.D(2))
	call(b, 97)
	b.MoveL(m68k.Imm(9), m68k.D(1))
	b.MoveL(m68k.Imm(5), m68k.D(2))
	call(b, 97)
	b.MoveL(m68k.Imm(0), m68k.D(1))
	b.MoveL(m68k.Imm(wbuf), m68k.D(2))
	b.MoveL(m68k.Imm(int32(len(msg))), m68k.D(3))
	call(b, 4)
	b.MoveL(m68k.D(0), m68k.Abs(res))
	b.MoveL(m68k.Imm(1), m68k.D(1))
	b.MoveL(m68k.Imm(rbuf), m68k.D(2))
	b.MoveL(m68k.Imm(64), m68k.D(3))
	call(b, 3)
	b.MoveL(m68k.D(0), m68k.Abs(res+4))
	exit(b)
	if err := k.Run(b.Link(k.M), 5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := int32(k.M.Peek(res, 4)); got != int32(len(msg)) {
		t.Fatalf("send = %d, want %d", got, len(msg))
	}
	if got := int32(k.M.Peek(res+4, 4)); got != int32(len(msg)) {
		t.Fatalf("recv = %d, want %d", got, len(msg))
	}
	if got := string(k.M.PeekBytes(rbuf, len(msg))); got != msg {
		t.Errorf("payload %q, want %q", got, msg)
	}
}
