package sunos

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// The baseline kernel's routines, assembled once at boot (no run-time
// code generation — that is the point). The shape follows the
// traditional kernel the paper compares against; per-layer costs are
// real work on real structures, not padding:
//
//	trap #0 -> syscall(): full register save, argument block copied
//	to a uap area, bounds-checked dispatch through sysent,
//	then userret(): signal check and setpri() priority
//	recomputation (multiply + divide), full restore, rte.
//
//	read()/write() -> getf() descriptor validation -> f_ops dispatch
//	-> readi/writei (inode lock, buffer cache scan, uio chunk loop)
//	or socket pipe (sblock, mbuf get/free, chain append, sbspace
//	accounting, wakeup) or cdevsw character switch (second
//	indirection) for devices.

// Number of sysent slots (the 4.2BSD socket call is number 97).
const nsys = 128

// buildRoutines assembles everything and records entry points.
func (k *Kernel) buildRoutines() {
	m := k.M

	// Tables filled after the routines exist.
	sysent := k.alloc(nsys * 4)
	fopsRead := k.alloc(8 * 4)
	fopsWrite := k.alloc(8 * 4)
	cdevswR := k.alloc(4 * 4)
	cdevswW := k.alloc(4 * 4)
	uap := k.alloc(16) // argument block "copied in" each syscall

	// ---------------------------------------------------- helpers

	// getf: D1 = fd -> A0 = file slot (0 if bad). Clobbers D0.
	getf := func() uint32 {
		b := asmkit.New()
		b.CmpL(m68k.Imm(nofile), m68k.D(1))
		b.Bcc("bad")
		b.MoveL(m68k.Abs(gUArea), m68k.A(0))
		b.MoveL(m68k.D(1), m68k.D(0))
		b.LslL(m68k.Imm(4), m68k.D(0))
		b.AddL(m68k.D(0), m68k.A(0))
		b.TstL(m68k.Ind(0))
		b.Beq("bad")
		b.Rts()
		b.Label("bad")
		b.MoveL(m68k.Imm(0), m68k.A(0))
		b.Rts()
		return b.Link(m)
	}()

	// falloc: -> A0 = first free slot, D0 = fd (-1 if none).
	falloc := func() uint32 {
		b := asmkit.New()
		b.MoveL(m68k.Abs(gUArea), m68k.A(0))
		b.Clr(4, m68k.D(0))
		b.Label("loop")
		b.CmpL(m68k.Imm(nofile), m68k.D(0))
		b.Bcc("bad")
		b.TstL(m68k.Ind(0))
		b.Beq("got")
		b.Lea(m68k.Disp(uSlotSize, 0), 0)
		b.AddL(m68k.Imm(1), m68k.D(0))
		b.Bra("loop")
		b.Label("got")
		b.Rts()
		b.Label("bad")
		b.MoveL(m68k.Imm(-1), m68k.D(0))
		b.Rts()
		return b.Link(m)
	}()

	// uiomove/bcopy: D6 bytes from (A1)+ to (A3)+ — the generic data
	// mover on the user-data path. It validates and moves a byte at a
	// time (the uiomove discipline: segment checking folded into the
	// per-byte step; no alignment analysis, no unrolling — that is
	// exactly the generality the synthesized movers shed). Clobbers
	// D0, D6, A1, A3. Called, not inlined, per chunk.
	bcopy := func() uint32 {
		b := asmkit.New()
		b.TstL(m68k.D(6))
		b.Beq("out")
		b.SubL(m68k.Imm(1), m68k.D(6))
		b.Label("lb")
		b.MoveB(m68k.PostInc(1), m68k.PostInc(3))
		b.Dbra(6, "lb")
		b.Label("out")
		b.Rts()
		return b.Link(m)
	}()
	k.bcopyR = bcopy

	// wakeup: A2 = wait channel. 4.2BSD hashes sleepers into slpque
	// chains; we model the hash plus the (usually short) chain walk
	// over the proc table bucket.
	wakeup := func() uint32 {
		b := asmkit.New()
		// hash = (chan >> 3) & (nproc/8-1); scan that eighth of the
		// table.
		b.MoveL(m68k.A(2), m68k.D(0))
		b.LsrL(m68k.Imm(3), m68k.D(0))
		b.AndL(m68k.Imm(7), m68k.D(0))
		// bucket base = proctab + hash*(nproc/8)*procBytes
		b.Mulu(m68k.Imm(nproc/8*procBytes), m68k.D(0))
		b.MoveL(m68k.Abs(gProcTab), m68k.A(4))
		b.AddL(m68k.D(0), m68k.A(4))
		b.MoveL(m68k.Imm(nproc/8-1), m68k.D(1))
		b.Label("scan")
		b.Cmp(4, m68k.Ind(4), m68k.A(2))
		b.Bne("next")
		b.Clr(4, m68k.Ind(4))
		b.Clr(4, m68k.Disp(pStat, 4))
		b.Label("next")
		b.Lea(m68k.Disp(procBytes, 4), 4)
		b.Dbra(1, "scan")
		b.Rts()
		return b.Link(m)
	}()

	k.bread = k.buildBread(bcopy)
	readi := k.buildReadi(bcopy)
	writei := k.buildWritei(bcopy)
	nullR, nullW := k.buildNullDev()
	ttyR, ttyW := k.buildTTYDev()
	specR, specW := k.buildSpec(cdevswR, cdevswW)
	pipeR, pipeW := k.buildPipe(bcopy, wakeup)
	namei := k.buildNamei()
	sysSock, sockR, sockW := k.buildSock(bcopy, wakeup, falloc)

	// ------------------------------------------------- sys handlers

	nosys := func() uint32 {
		b := asmkit.New()
		b.MoveL(m68k.Imm(-1), m68k.D(0))
		b.Rts()
		return b.Link(m)
	}()

	sysExit := func() uint32 {
		b := asmkit.New()
		b.Kcall(202)
		b.Halt()
		return b.Link(m)
	}()

	sysRead := func() uint32 {
		b := asmkit.New()
		b.Jsr(getf)
		b.MoveL(m68k.A(0), m68k.D(0))
		b.Beq("bad")
		b.MoveL(m68k.Ind(0), m68k.D(0)) // slot type
		b.Lea(m68k.Abs(fopsRead), 1)
		b.JsrVia(m68k.Idx(0, 1, 0, 4)) // f_ops indirection
		b.Rts()
		b.Label("bad")
		b.MoveL(m68k.Imm(-1), m68k.D(0))
		b.Rts()
		return b.Link(m)
	}()

	sysWrite := func() uint32 {
		b := asmkit.New()
		b.Jsr(getf)
		b.MoveL(m68k.A(0), m68k.D(0))
		b.Beq("bad")
		b.MoveL(m68k.Ind(0), m68k.D(0))
		b.Lea(m68k.Abs(fopsWrite), 1)
		b.JsrVia(m68k.Idx(0, 1, 0, 4))
		b.Rts()
		b.Label("bad")
		b.MoveL(m68k.Imm(-1), m68k.D(0))
		b.Rts()
		return b.Link(m)
	}()

	sysOpen := func() uint32 {
		b := asmkit.New()
		b.Jsr(namei) // D1 = path -> A2 = inode or 0
		b.MoveL(m68k.A(2), m68k.D(0))
		b.Beq("bad")
		b.Jsr(falloc)
		b.TstL(m68k.D(0))
		b.Bmi("bad")
		// Fill the slot from the inode kind.
		b.MoveL(m68k.A(2), m68k.Disp(fPtr, 0))
		b.Clr(4, m68k.Disp(fOff, 0))
		b.MoveL(m68k.Disp(iKind, 2), m68k.D(1))
		b.CmpL(m68k.Imm(4), m68k.D(1)) // null device
		b.Bne("nnull")
		b.MoveL(m68k.Imm(ftNull), m68k.Ind(0))
		b.Clr(4, m68k.Disp(fAux, 0)) // cdevsw major 0
		b.Rts()
		b.Label("nnull")
		b.CmpL(m68k.Imm(5), m68k.D(1)) // tty device
		b.Bne("ntty")
		b.MoveL(m68k.Imm(ftTTY), m68k.Ind(0))
		b.MoveL(m68k.Imm(1), m68k.Disp(fAux, 0)) // major 1
		b.Rts()
		b.Label("ntty")
		b.MoveL(m68k.Imm(ftInode), m68k.Ind(0))
		b.Rts()
		b.Label("bad")
		b.MoveL(m68k.Imm(-1), m68k.D(0))
		b.Rts()
		return b.Link(m)
	}()

	sysLseek := func() uint32 {
		b := asmkit.New()
		b.Jsr(getf)
		b.MoveL(m68k.A(0), m68k.D(0))
		b.Beq("bad")
		b.MoveL(m68k.D(2), m68k.Disp(fOff, 0))
		b.MoveL(m68k.D(2), m68k.D(0))
		b.Rts()
		b.Label("bad")
		b.MoveL(m68k.Imm(-1), m68k.D(0))
		b.Rts()
		return b.Link(m)
	}()

	sysClose := func() uint32 {
		b := asmkit.New()
		b.Jsr(getf)
		b.MoveL(m68k.A(0), m68k.D(0))
		b.Beq("bad")
		b.Clr(4, m68k.Ind(0))
		b.Clr(4, m68k.Disp(fPtr, 0))
		b.Clr(4, m68k.Disp(fOff, 0))
		b.Clr(4, m68k.D(0))
		b.Rts()
		b.Label("bad")
		b.MoveL(m68k.Imm(-1), m68k.D(0))
		b.Rts()
		return b.Link(m)
	}()

	sysPipe := func() uint32 {
		b := asmkit.New()
		// Socket buffer storage comes off the mbuf free list.
		b.MoveL(m68k.Abs(gMFree), m68k.A(1))
		b.MoveL(m68k.A(1), m68k.D(0))
		b.Beq("bad")
		b.MoveL(m68k.Ind(1), m68k.D(0))
		b.MoveL(m68k.D(0), m68k.Abs(gMFree))
		b.Clr(4, m68k.Disp(sbCC, 1))
		b.Clr(4, m68k.Disp(sbHead, 1))
		b.Clr(4, m68k.Disp(sbTail, 1))
		b.Clr(4, m68k.Disp(sbLock, 1))
		b.MoveL(m68k.A(1), m68k.A(2)) // keep sb
		// Reader slot.
		b.Jsr(falloc)
		b.TstL(m68k.D(0))
		b.Bmi("bad")
		b.MoveL(m68k.D(0), m68k.D(6)) // rfd
		b.MoveL(m68k.Imm(ftPipeR), m68k.Ind(0))
		b.MoveL(m68k.A(2), m68k.Disp(fPtr, 0))
		// Writer slot.
		b.Jsr(falloc)
		b.TstL(m68k.D(0))
		b.Bmi("bad")
		b.MoveL(m68k.D(0), m68k.D(1)) // wfd returned in D1
		b.MoveL(m68k.Imm(ftPipeW), m68k.Ind(0))
		b.MoveL(m68k.A(2), m68k.Disp(fPtr, 0))
		b.MoveL(m68k.D(6), m68k.D(0)) // rfd returned in D0
		b.Rts()
		b.Label("bad")
		b.MoveL(m68k.Imm(-1), m68k.D(0))
		b.Rts()
		return b.Link(m)
	}()

	// ------------------------------------------------ syscall entry

	entry := func() uint32 {
		b := asmkit.New()
		// Traditional full save.
		b.MovemSave(0x7fff, m68k.PreDec(7))
		// "copyin" the argument block to uap (the framework always
		// stages arguments, even when they are already at hand).
		b.MoveL(m68k.D(1), m68k.Abs(uap))
		b.MoveL(m68k.D(2), m68k.Abs(uap+4))
		b.MoveL(m68k.D(3), m68k.Abs(uap+8))
		b.MoveL(m68k.Abs(uap), m68k.D(1))
		b.MoveL(m68k.Abs(uap+4), m68k.D(2))
		b.MoveL(m68k.Abs(uap+8), m68k.D(3))
		// Bounds-checked dispatch through sysent.
		b.CmpL(m68k.Imm(nsys), m68k.D(0))
		b.Bcc("bad")
		b.Lea(m68k.Abs(sysent), 6)
		b.JsrVia(m68k.Idx(0, 6, 0, 4))
		// userret: check for posted signals...
		b.TstL(m68k.Abs(gExitRes))
		// ...and recompute the scheduling priority: setpri's
		// p_cpu/p_nice arithmetic (one multiply, one divide).
		b.MoveL(m68k.Abs(gClock), m68k.D(4))
		b.Mulu(m68k.Imm(3), m68k.D(4))
		b.Divu(m68k.Imm(7), m68k.D(4))
		b.AndL(m68k.Imm(127), m68k.D(4))
		// Results propagate through the saved block: D0 always, D1
		// too (pipe returns a second descriptor).
		b.MoveL(m68k.D(0), m68k.Ind(7))
		b.MoveL(m68k.D(1), m68k.Disp(4, 7))
		b.MovemRest(m68k.PostInc(7), 0x7fff)
		b.Rte()
		b.Label("bad")
		b.MoveL(m68k.Imm(-1), m68k.Ind(7))
		b.MovemRest(m68k.PostInc(7), 0x7fff)
		b.Rte()
		return b.Link(m)
	}()
	k.sysEntry = entry

	k.swtchR = k.buildSwtch()

	// ------------------------------------------------- fill tables

	poke := func(base uint32, idx int, v uint32) { m.Poke(base+uint32(idx)*4, 4, v) }
	for i := 0; i < nsys; i++ {
		poke(sysent, i, nosys)
	}
	poke(sysent, 1, sysExit)
	poke(sysent, 3, sysRead)
	poke(sysent, 4, sysWrite)
	poke(sysent, 5, sysOpen)
	poke(sysent, 6, sysClose)
	poke(sysent, 19, sysLseek)
	poke(sysent, 42, sysPipe)
	poke(sysent, 97, sysSock)

	for i := 0; i < 8; i++ {
		poke(fopsRead, i, nosys)
		poke(fopsWrite, i, nosys)
	}
	poke(fopsRead, ftInode, readi)
	poke(fopsWrite, ftInode, writei)
	poke(fopsRead, ftPipeR, pipeR)
	poke(fopsWrite, ftPipeW, pipeW)
	poke(fopsRead, ftNull, specR)
	poke(fopsWrite, ftNull, specW)
	poke(fopsRead, ftTTY, specR)
	poke(fopsWrite, ftTTY, specW)
	poke(fopsRead, ftSock, sockR)
	poke(fopsWrite, ftSock, sockW)

	poke(cdevswR, 0, nullR)
	poke(cdevswW, 0, nullW)
	poke(cdevswR, 1, ttyR)
	poke(cdevswW, 1, ttyW)
}
