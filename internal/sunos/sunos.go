// Package sunos is the comparison baseline: a traditional, layered
// UNIX kernel in the style of SUNOS 3.5 running on the same
// Quamachine. It services the identical trap #0 system-call
// convention as the Synthesis UNIX emulator, so the same benchmark
// "binaries" run on both kernels and Table 1's comparison is direct.
//
// Everything the Synthesis kernel specializes away is deliberately
// present here, because this is how the traditional kernel works
// (summarized from the paper's description and the lineage of the
// 4.2BSD-derived source it cites):
//
//   - system call entry saves and restores the full register set and
//     dispatches through a bounds-checked table;
//   - every read/write revalidates the descriptor (getf), then
//     dispatches again through a file-operations table;
//   - file reads walk inode -> buffer cache (linear scan of buffer
//     headers) -> per-byte uiomove copy loop;
//   - open runs namei: the path is parsed component by component,
//     each resolved by a linear directory scan with forward string
//     comparison;
//   - pipes are socket pairs: each write allocates mbufs, copies into
//     them byte by byte, appends to the socket buffer under a
//     test-and-set lock and wakes readers by scanning the whole
//     process table (the "general blocked queue" Synthesis
//     eliminated);
//   - the context switch always saves everything: all integer
//     registers, the floating-point context, and a copy into the
//     process-table entry, followed by a run-queue scan.
//
// There is no code synthesis anywhere: all state is fetched from
// memory at run time.
package sunos

import (
	"errors"
	"fmt"

	"synthesis/internal/alloc"
	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// Memory map.
const (
	bootVBR  uint32 = 0x0000_0100
	globBase uint32 = 0x0000_0600

	gUArea   = globBase + 0  // address of the u-area
	gClock   = globBase + 4  // ticking "time" for inode stamps
	gProcTab = globBase + 8  // process table base
	gMFree   = globBase + 12 // mbuf free list head
	gRootDir = globBase + 16 // root directory inode
	gBufHdr  = globBase + 20 // buffer cache headers base
	gBufRot  = globBase + 24 // buffer cache replacement rotor
	gExitRes = globBase + 28 // exit status
	gMStat   = globBase + 32 // mbuf allocation statistics (mbstat)

	heapBase uint32 = 0x0001_0000
)

// u-area file table.
const (
	nofile    = 16
	uSlotSize = 16
	// Slot fields.
	fType = 0 // 0 free, 1 inode, 2 pipe-read, 3 pipe-write, 4 null, 5 tty
	fPtr  = 4 // inode or socket buffer address
	fOff  = 8 // file offset
	fAux  = 12
)

// File slot types.
const (
	ftFree = iota
	ftInode
	ftPipeR
	ftPipeW
	ftNull
	ftTTY
	ftSock
)

// inode layout.
const (
	iLock      = 0
	iSize      = 4
	iData      = 8 // backing storage address
	iMtime     = 12
	iAtime     = 16
	iKind      = 20 // 0 directory, 1 regular, 4 null, 5 tty
	iCap       = 24
	inodeBytes = 32
)

// Directory entries: [inode addr (4)][name (28, NUL padded)].
const (
	direntBytes = 32
	nameMax     = 27
)

// Buffer cache.
const (
	nbuf     = 16
	bufBlock = 1024
	// Header fields.
	bInode      = 0
	bBlk        = 4
	bAddr       = 8
	bValid      = 12
	bufHdrBytes = 16
)

// mbufs (socket-pipe storage).
const (
	mNext     = 0
	mLen      = 4
	mOff      = 8 // consumption offset within the data area
	mData     = 12
	mbufBytes = 128
	mbufCap   = mbufBytes - mData
	nmbufs    = 128
)

// Socket buffer (one per pipe).
const (
	sbCC    = 0 // byte count
	sbHead  = 4
	sbTail  = 8
	sbLock  = 12
	sbBytes = 16
)

// Process table: nproc entries scanned by wakeup.
const (
	nproc     = 64
	pWchan    = 0
	pStat     = 4
	pPri      = 8
	pRegs     = 12 // 15 integer registers copied by the full switch
	pFP       = 72 // 8 x 12 bytes of FP context
	procBytes = 176
)

// Kernel is one booted baseline instance.
type Kernel struct {
	M    *m68k.Machine
	Heap *alloc.Heap

	TTYDev *m68k.TTY

	// Routine addresses.
	sysEntry uint32
	swtchR   uint32 // full context switch (ablation measurements)
	bcopyR   uint32
	bread    uint32
	uarea    uint32
	rootDir  uint32
	sockPool uint32 // static socket table (nsock entries)

	files map[string]*File

	halted bool
}

// File mirrors one created file.
type File struct {
	Name  string
	Inode uint32
	Data  uint32
	Size  uint32
	Cap   uint32
}

// SvcMark mirrors the Synthesis kernel's measurement service id so
// benchmark programs are byte-identical.
const SvcMark = 100

// Marks records measurement timestamps.
var _ = errors.New

// Boot builds the baseline kernel.
func Boot(cfg m68k.Config) *Kernel {
	if cfg.MemSize == 0 {
		cfg.MemSize = 4 << 20
	}
	m := m68k.New(cfg)
	k := &Kernel{
		M:     m,
		Heap:  alloc.New(heapBase, cfg.MemSize-heapBase),
		files: make(map[string]*File),
	}
	k.TTYDev = m68k.NewTTY(m)
	m.Attach(m68k.NewTimer(m))
	m.Attach(k.TTYDev)
	m.Attach(m68k.NewCons())

	k.initStructures()
	k.buildRoutines()
	k.installVectors()
	return k
}

// Marks retrieval mirrors kernel.Kernel.
var marks []uint64

// MarkDeltasMicros converts consecutive mark pairs to microseconds.
func (k *Kernel) MarkDeltasMicros() []float64 {
	var out []float64
	for i := 1; i < len(marks); i += 2 {
		out = append(out, k.M.Micros(marks[i]-marks[i-1]))
	}
	return out
}

// ResetMarks clears recorded marks.
func (k *Kernel) ResetMarks() { marks = nil }

func (k *Kernel) alloc(n uint32) uint32 {
	a, err := k.Heap.Alloc(n)
	if err != nil {
		panic("sunos: heap exhausted")
	}
	return a
}

// initStructures lays out the u-area, proc table, buffer cache, mbuf
// free list and root directory.
func (k *Kernel) initStructures() {
	m := k.M

	k.uarea = k.alloc(nofile * uSlotSize)
	for i := uint32(0); i < nofile*uSlotSize; i += 4 {
		m.Poke(k.uarea+i, 4, 0)
	}
	m.Poke(gUArea, 4, k.uarea)
	m.Poke(gClock, 4, 1)

	proc := k.alloc(nproc * procBytes)
	for i := uint32(0); i < nproc*procBytes; i += 4 {
		m.Poke(proc+i, 4, 0)
	}
	m.Poke(gProcTab, 4, proc)

	hdrs := k.alloc(nbuf * bufHdrBytes)
	data := k.alloc(nbuf * bufBlock)
	for i := 0; i < nbuf; i++ {
		h := hdrs + uint32(i*bufHdrBytes)
		m.Poke(h+bInode, 4, 0)
		m.Poke(h+bBlk, 4, 0)
		m.Poke(h+bAddr, 4, data+uint32(i*bufBlock))
		m.Poke(h+bValid, 4, 0)
	}
	m.Poke(gBufHdr, 4, hdrs)
	m.Poke(gBufRot, 4, 0)

	// mbuf free list.
	var prev uint32
	for i := 0; i < nmbufs; i++ {
		mb := k.alloc(mbufBytes)
		m.Poke(mb+mNext, 4, prev)
		prev = mb
	}
	m.Poke(gMFree, 4, prev)

	// Root directory inode with an empty entry table (grown by
	// CreateFile / device registration).
	k.rootDir = k.makeInode(0, 0, 0, 0)
	m.Poke(gRootDir, 4, k.rootDir)

	// Standard device nodes live under /dev.
	devDir := k.mkdir(k.rootDir, "dev")
	k.addEntry(devDir, "null", k.makeInode(4, 0, 0, 0))
	k.addEntry(devDir, "tty", k.makeInode(5, 0, 0, 0))

	// The static socket table (sockets are not heap objects here:
	// the traditional kernel preallocates its tables).
	k.sockPool = k.alloc(nsock * soBytes)
	for i := uint32(0); i < nsock*soBytes; i += 4 {
		m.Poke(k.sockPool+i, 4, 0)
	}
}

// makeInode allocates and fills an inode.
func (k *Kernel) makeInode(kind, size, data, capacity uint32) uint32 {
	m := k.M
	ino := k.alloc(inodeBytes)
	m.Poke(ino+iLock, 4, 0)
	m.Poke(ino+iSize, 4, size)
	m.Poke(ino+iData, 4, data)
	m.Poke(ino+iMtime, 4, 0)
	m.Poke(ino+iAtime, 4, 0)
	m.Poke(ino+iKind, 4, kind)
	m.Poke(ino+iCap, 4, capacity)
	return ino
}

// mkdir adds a directory beneath parent and returns its inode.
func (k *Kernel) mkdir(parent uint32, name string) uint32 {
	dir := k.makeInode(0, 0, 0, 0)
	k.addEntry(parent, name, dir)
	return dir
}

// addEntry appends a directory entry, reallocating the entry table
// (directories are small; this is boot-time only).
func (k *Kernel) addEntry(dir uint32, name string, ino uint32) {
	if len(name) > nameMax {
		panic("sunos: name too long: " + name)
	}
	m := k.M
	oldData := m.Peek(dir+iData, 4)
	oldSize := m.Peek(dir+iSize, 4)
	newData := k.alloc(oldSize + direntBytes)
	if oldSize > 0 {
		m.PokeBytes(newData, m.PeekBytes(oldData, int(oldSize)))
		k.Heap.Free(oldData)
	}
	e := newData + oldSize
	m.Poke(e, 4, ino)
	for i := 0; i < nameMax+1; i++ {
		var c uint32
		if i < len(name) {
			c = uint32(name[i])
		}
		m.Poke(e+4+uint32(i), 1, c)
	}
	m.Poke(dir+iData, 4, newData)
	m.Poke(dir+iSize, 4, oldSize+direntBytes)
}

// CreateFile adds a regular file at an absolute path (directories
// created as needed), with the given capacity for growth.
func (k *Kernel) CreateFile(path string, contents []byte, capacity uint32) *File {
	if capacity < uint32(len(contents)) {
		capacity = uint32(len(contents))
	}
	var data uint32
	if capacity > 0 {
		data = k.alloc(capacity)
		k.M.PokeBytes(data, contents)
	}
	ino := k.makeInode(1, uint32(len(contents)), data, capacity)

	dir := k.rootDir
	rest := path
	for len(rest) > 0 && rest[0] == '/' {
		rest = rest[1:]
	}
	for {
		slash := -1
		for i := 0; i < len(rest); i++ {
			if rest[i] == '/' {
				slash = i
				break
			}
		}
		if slash < 0 {
			break
		}
		comp := rest[:slash]
		rest = rest[slash+1:]
		if sub := k.lookupEntry(dir, comp); sub != 0 {
			dir = sub
		} else {
			dir = k.mkdir(dir, comp)
		}
	}
	k.addEntry(dir, rest, ino)
	f := &File{Name: path, Inode: ino, Data: data, Size: uint32(len(contents)), Cap: capacity}
	k.files[path] = f
	return f
}

// lookupEntry is the host-side directory scan (boot only).
func (k *Kernel) lookupEntry(dir uint32, name string) uint32 {
	m := k.M
	data := m.Peek(dir+iData, 4)
	size := m.Peek(dir+iSize, 4)
	for off := uint32(0); off < size; off += direntBytes {
		e := data + off
		got := ""
		for i := 0; i < nameMax; i++ {
			c := byte(m.Peek(e+4+uint32(i), 1))
			if c == 0 {
				break
			}
			got += string(c)
		}
		if got == name {
			return m.Peek(e, 4)
		}
	}
	return 0
}

// FileSize reads a file's live size from its inode.
func (k *Kernel) FileSize(path string) uint32 {
	f := k.files[path]
	if f == nil {
		return 0
	}
	return k.M.Peek(f.Inode+iSize, 4)
}

// installVectors points the boot vector table at the syscall entry
// and panic stubs.
func (k *Kernel) installVectors() {
	m := k.M
	b := asmkit.New()
	b.Kcall(201) // panic service
	b.Halt()
	panicStub := b.Link(m)

	m.VBR = bootVBR
	for v := 0; v < m68k.NumVectors; v++ {
		m.Poke(bootVBR+uint32(v)*4, 4, panicStub)
	}
	m.Poke(bootVBR+uint32(m68k.VecTrapBase)*4, 4, k.sysEntry)

	m.RegisterService(201, func(mm *m68k.Machine) uint64 {
		k.halted = true
		return 0
	})
	m.RegisterService(SvcMark, func(mm *m68k.Machine) uint64 {
		marks = append(marks, mm.Cycles)
		return 0
	})
	m.RegisterService(202, func(mm *m68k.Machine) uint64 {
		// exit: record status and halt.
		mm.Poke(gExitRes, 4, mm.D[1])
		return 0
	})
}

// Run executes the user program at entry until exit.
func (k *Kernel) Run(entry uint32, maxCycles uint64) error {
	m := k.M
	// User stack near the top of memory; the baseline runs the
	// program in supervisor state on its single kernel stack (no
	// quaspaces — faithful to the flat single-process comparison).
	m.A[7] = uint32(len(m.Mem) - 16)
	m.SSP = m.A[7]
	// The baseline is fully polled (tty status loops, disk untouched)
	// and single-process, so it runs with interrupts masked — device
	// interrupt lines have no handlers here.
	m.SR = m68k.FlagS | 7<<8
	m.PC = entry
	err := m.Run(maxCycles)
	if errors.Is(err, m68k.ErrHalted) {
		return nil
	}
	return err
}

// Panicked reports whether the panic stub fired.
func (k *Kernel) Panicked() bool { return k.halted }

// fmt is used by debug helpers in other files.
var _ = fmt.Sprintf
