package sunos

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	synnet "synthesis/internal/net"
)

// Generic layered sockets: the baseline for Table 6. Everything the
// synthesized socket path folds away at open time is fetched and
// validated here on every call, because that is how the traditional
// stack works:
//
//   - every send re-reads the peer ports from the socket structure
//     and demultiplexes by a linear scan over the socket table (the
//     run-time "port lookup" the synthesized handler replaces with a
//     compare-immediate);
//   - the receive ring is protected by a test-and-set sleep lock plus
//     an interrupt-priority raise (the semaphore-locked ring), not by
//     the optimistic flag discipline;
//   - the frame header is built and validated by separate subroutines
//     reading socket state from memory — the layer boundary the
//     synthesized path collapses into the copy setup;
//   - data moves through the byte-at-a-time bcopy, and every
//     delivery/consumption ends in the wakeup process-table scan.
//
// The baseline kernel is single-process with no NIC: loopback frames
// move between in-memory rings, which only flatters it — the generic
// path measured here pays no interrupt cost at all.

// Socket table entry layout: bookkeeping head, then the receive ring
// of fixed slots. Head and tail are free-running counts; slot index =
// count & (sSlotCount-1). A slot carries the full frame: [payload
// length][dst port][src port][checksum][payload].
const (
	soUsed   = 0
	soLocal  = 4
	soRemote = 8
	soHead   = 12
	soTail   = 16
	soLock   = 20
	soSlots  = 24
	soBytes  = soSlots + sSlotCount*sSlotBytes

	sPLen      = 0
	sDst       = 4
	sSrc       = 8
	sSum       = 12
	sData      = 16
	sSlotCount = 8
	sSlotBytes = 256

	nsock = 8
)

// buildSock assembles the socket system call and the f_ops read/write
// pair. Returns (syssock, soreceive, sosend).
func (k *Kernel) buildSock(bcopy, wakeup, falloc uint32) (uint32, uint32, uint32) {
	m := k.M
	pool := k.sockPool

	// sohdr: build the frame header in the destination slot from
	// socket state — a separate layer called per packet. A2 = sending
	// socket, A5 = destination slot, D3 = payload length.
	bh := asmkit.New()
	bh.MoveL(m68k.D(3), m68k.Ind(5))
	bh.MoveL(m68k.Disp(soRemote, 2), m68k.D(0))
	bh.MoveL(m68k.D(0), m68k.Disp(sDst, 5))
	bh.MoveL(m68k.Disp(soLocal, 2), m68k.D(0))
	bh.MoveL(m68k.D(0), m68k.Disp(sSrc, 5))
	bh.Rts()
	sohdr := bh.Link(m)

	// sohval: validate a received frame's header against the socket —
	// the mirror-image per-packet layer on the consume side. A2 =
	// receiving socket, A5 = slot. D0 = 0 if the frame is not ours.
	bv := asmkit.New()
	bv.MoveL(m68k.Disp(sDst, 5), m68k.D(0))
	bv.Cmp(4, m68k.Disp(soLocal, 2), m68k.D(0))
	bv.Beq("ok")
	bv.Clr(4, m68k.D(0))
	bv.Rts()
	bv.Label("ok")
	bv.MoveL(m68k.Imm(1), m68k.D(0))
	bv.Rts()
	sohval := bv.Link(m)

	// socksum: the per-packet checksum layer. A big-endian long-wise
	// sum over the payload, ragged tail zero-padded — the same sum the
	// wire format carries, computed here as a separate subroutine
	// reading the length back out of the slot (the layer boundary the
	// synthesized path folds into its copy setup). sosend stores it,
	// soreceive recomputes and compares. A5 = slot -> D0 = sum.
	// Clobbers D1, A1.
	bc := asmkit.New()
	bc.MoveL(m68k.Ind(5), m68k.D(1)) // payload length
	bc.Lea(m68k.Disp(sData, 5), 1)
	bc.MoveL(m68k.D(1), m68k.D(0))
	bc.AndL(m68k.Imm(3), m68k.D(0))
	bc.Beq("aligned")
	bc.MoveL(m68k.D(1), m68k.D(0)) // D0 = len; zero only data[len..roundup4(len))
	bc.Label("pad")
	bc.Clr(1, m68k.Idx(0, 1, 0, 1))
	bc.AddL(m68k.Imm(1), m68k.D(0))
	bc.Btst(m68k.Imm(0), m68k.D(0))
	bc.Bne("pad")
	bc.Btst(m68k.Imm(1), m68k.D(0))
	bc.Bne("pad")
	bc.Label("aligned")
	bc.MoveL(m68k.D(1), m68k.D(0))
	bc.AddL(m68k.Imm(3), m68k.D(0))
	bc.LsrL(m68k.Imm(2), m68k.D(0)) // payload long count
	bc.MoveL(m68k.D(0), m68k.D(1))
	bc.Clr(4, m68k.D(0))
	bc.TstL(m68k.D(1))
	bc.Beq("done")
	bc.SubL(m68k.Imm(1), m68k.D(1))
	bc.Label("sum")
	bc.AddL(m68k.PostInc(1), m68k.D(0))
	bc.Dbra(1, "sum")
	bc.Label("done")
	bc.Rts()
	socksum := bc.Link(m)

	// syssock: D1 = local port, D2 = remote port -> D0 = fd. Two
	// linear scans of the socket table (uniqueness, then a free
	// entry), then falloc.
	bs := asmkit.New()
	bs.Lea(m68k.Abs(pool), 2)
	bs.MoveL(m68k.Imm(nsock-1), m68k.D(5))
	bs.Label("scan")
	bs.TstL(m68k.Ind(2))
	bs.Beq("snext")
	bs.Cmp(4, m68k.Disp(soLocal, 2), m68k.D(1))
	bs.Beq("bad") // port in use
	bs.Label("snext")
	bs.Lea(m68k.Disp(soBytes, 2), 2)
	bs.Dbra(5, "scan")
	bs.Lea(m68k.Abs(pool), 2)
	bs.MoveL(m68k.Imm(nsock-1), m68k.D(5))
	bs.Label("free")
	bs.TstL(m68k.Ind(2))
	bs.Beq("gotfree")
	bs.Lea(m68k.Disp(soBytes, 2), 2)
	bs.Dbra(5, "free")
	bs.Bra("bad")
	bs.Label("gotfree")
	bs.Jsr(falloc)
	bs.TstL(m68k.D(0))
	bs.Bmi("bad")
	bs.MoveL(m68k.Imm(ftSock), m68k.Ind(0))
	bs.MoveL(m68k.A(2), m68k.Disp(fPtr, 0))
	bs.Clr(4, m68k.Disp(fOff, 0))
	bs.MoveL(m68k.Imm(1), m68k.Ind(2))
	bs.MoveL(m68k.D(1), m68k.Disp(soLocal, 2))
	bs.MoveL(m68k.D(2), m68k.Disp(soRemote, 2))
	bs.Clr(4, m68k.Disp(soHead, 2))
	bs.Clr(4, m68k.Disp(soTail, 2))
	bs.Clr(4, m68k.Disp(soLock, 2))
	bs.Rts()
	bs.Label("bad")
	bs.MoveL(m68k.Imm(-1), m68k.D(0))
	bs.Rts()
	syssock := bs.Link(m)

	// sosend: f_ops target. A0 = file slot, D2 = user buffer, D3 =
	// length -> D0 = payload bytes sent.
	bw := asmkit.New()
	bw.MoveL(m68k.Disp(fPtr, 0), m68k.A(2)) // sending socket
	// Per-call length validation against the MTU.
	bw.CmpL(m68k.Imm(synnet.MTU), m68k.D(3))
	bw.Bls("fits")
	bw.MoveL(m68k.Imm(synnet.MTU), m68k.D(3))
	bw.Label("fits")
	// splnet around the demux and queue manipulation.
	bw.MoveFromSR(m68k.PreDec(7))
	bw.OrSR(0x0700)
	// sofind: demultiplex by scanning the socket table for the peer
	// port, read from memory on every call.
	bw.MoveL(m68k.Disp(soRemote, 2), m68k.D(4))
	bw.Lea(m68k.Abs(pool), 3)
	bw.MoveL(m68k.Imm(nsock-1), m68k.D(5))
	bw.Label("find")
	bw.TstL(m68k.Ind(3))
	bw.Beq("fnext")
	bw.Cmp(4, m68k.Disp(soLocal, 3), m68k.D(4))
	bw.Beq("found")
	bw.Label("fnext")
	bw.Lea(m68k.Disp(soBytes, 3), 3)
	bw.Dbra(5, "find")
	// Nobody listens: the datagram evaporates (UDP semantics).
	bw.MoveToSR(m68k.PostInc(7))
	bw.MoveL(m68k.D(3), m68k.D(0))
	bw.Rts()
	bw.Label("found")
	bw.MoveL(m68k.A(3), m68k.A(4)) // destination socket (bcopy clobbers A3)
	// sblock: the destination ring's sleep lock.
	bw.Label("lock")
	bw.Tas(m68k.Disp(soLock, 4))
	bw.Bmi("lock")
	// Ring full? Drop (short send).
	bw.MoveL(m68k.Disp(soHead, 4), m68k.D(0))
	bw.SubL(m68k.Disp(soTail, 4), m68k.D(0))
	bw.CmpL(m68k.Imm(sSlotCount), m68k.D(0))
	bw.Bcc("full")
	// Destination slot.
	bw.MoveL(m68k.Disp(soHead, 4), m68k.D(0))
	bw.AndL(m68k.Imm(sSlotCount-1), m68k.D(0))
	bw.LslL(m68k.Imm(8), m68k.D(0))
	bw.Lea(m68k.Disp(soSlots, 4), 5)
	bw.AddL(m68k.D(0), m68k.A(5))
	// The header layer, then the byte-wise copy.
	bw.Jsr(sohdr)
	bw.MoveL(m68k.D(3), m68k.D(6))
	bw.MoveL(m68k.D(2), m68k.A(1))
	bw.Lea(m68k.Disp(sData, 5), 3)
	bw.Jsr(bcopy)
	// The checksum layer, computed over the slot after the copy.
	bw.Jsr(socksum)
	bw.MoveL(m68k.D(0), m68k.Disp(sSum, 5))
	// Publish under the lock, then unlock and wake readers.
	bw.AddL(m68k.Imm(1), m68k.Disp(soHead, 4))
	bw.Clr(1, m68k.Disp(soLock, 4))
	bw.MoveToSR(m68k.PostInc(7))
	bw.MoveL(m68k.A(4), m68k.A(2))
	bw.Jsr(wakeup) // sorwakeup: the process-table scan
	bw.MoveL(m68k.D(3), m68k.D(0))
	bw.Rts()
	bw.Label("full")
	bw.Clr(1, m68k.Disp(soLock, 4))
	bw.MoveToSR(m68k.PostInc(7))
	bw.Clr(4, m68k.D(0))
	bw.Rts()
	sosend := bw.Link(m)

	// soreceive: A0 = file slot, D2 = user buffer, D3 = length -> D0
	// = payload bytes (0 when the ring is empty — the single-process
	// baseline never blocks).
	br := asmkit.New()
	br.MoveL(m68k.Disp(fPtr, 0), m68k.A(2))
	br.Label("lock")
	br.Tas(m68k.Disp(soLock, 2))
	br.Bmi("lock")
	br.MoveFromSR(m68k.PreDec(7))
	br.OrSR(0x0700)
	br.MoveL(m68k.Disp(soTail, 2), m68k.D(0))
	br.Cmp(4, m68k.Disp(soHead, 2), m68k.D(0))
	br.Beq("empty")
	br.AndL(m68k.Imm(sSlotCount-1), m68k.D(0))
	br.LslL(m68k.Imm(8), m68k.D(0))
	br.Lea(m68k.Disp(soSlots, 2), 5)
	br.AddL(m68k.D(0), m68k.A(5))
	// The per-packet validation layer.
	br.Jsr(sohval)
	br.TstL(m68k.D(0))
	br.Beq("stale") // not ours: discard the slot
	// The checksum layer: recompute and compare before trusting the
	// payload; a mismatch is a corrupt slot, discarded like a stale one.
	br.Jsr(socksum)
	br.Cmp(4, m68k.Disp(sSum, 5), m68k.D(0))
	br.Bne("stale")
	// chunk = min(payload length, caller's buffer).
	br.MoveL(m68k.Ind(5), m68k.D(6))
	br.Cmp(4, m68k.D(3), m68k.D(6))
	br.Bls("c1")
	br.MoveL(m68k.D(3), m68k.D(6))
	br.Label("c1")
	br.MoveL(m68k.D(6), m68k.D(7)) // bcopy clobbers D6
	br.Lea(m68k.Disp(sData, 5), 1)
	br.MoveL(m68k.D(2), m68k.A(3))
	br.Jsr(bcopy)
	br.AddL(m68k.Imm(1), m68k.Disp(soTail, 2))
	br.Clr(1, m68k.Disp(soLock, 2))
	br.MoveToSR(m68k.PostInc(7))
	br.Jsr(wakeup) // sowwakeup
	br.MoveL(m68k.D(7), m68k.D(0))
	br.Rts()
	br.Label("stale")
	br.AddL(m68k.Imm(1), m68k.Disp(soTail, 2))
	br.Label("empty")
	br.Clr(1, m68k.Disp(soLock, 2))
	br.MoveToSR(m68k.PostInc(7))
	br.Clr(4, m68k.D(0))
	br.Rts()
	soreceive := br.Link(m)

	return syssock, soreceive, sosend
}
