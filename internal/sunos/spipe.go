package sunos

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// Socket-style pipes: SUNOS 3.x pipes are socket pairs, so a one-byte
// write pays for the whole socket send path — sleep-lock acquisition,
// interrupt-priority juggling, space accounting, an mbuf allocation
// with statistics, the copy, the chain append, and a wakeup — and the
// read side mirrors it with the mbuf free. This is where Table 1's
// dramatic single-byte pipe ratio originates.

const sbHiwat = 4096 // socket buffer high-water mark (bytes queued)

// buildPipe assembles the pipe read/write pair. Both are f_ops
// targets: A0 = file slot, D2 = user buffer, D3 = length -> D0.
func (k *Kernel) buildPipe(bcopy, wakeup uint32) (read, write uint32) {
	m := k.M

	bw := asmkit.New()
	bw.MoveL(m68k.Disp(fPtr, 0), m68k.A(2)) // socket buffer
	// sblock: the socket sleep-lock.
	bw.Label("lock")
	bw.Tas(m68k.Disp(sbLock, 2))
	bw.Bmi("lock")
	// splnet ... splx around the queue manipulation.
	bw.MoveFromSR(m68k.PreDec(7))
	bw.OrSR(0x0700)
	bw.MoveL(m68k.D(3), m68k.D(7)) // requested
	bw.MoveL(m68k.D(2), m68k.A(4)) // user cursor
	bw.Label("loop")
	bw.TstL(m68k.D(3))
	bw.Beq("done")
	// sbspace: respect the high-water mark (short write when full —
	// the single-process benchmarks never block).
	bw.MoveL(m68k.Disp(sbCC, 2), m68k.D(0))
	bw.CmpL(m68k.Imm(sbHiwat), m68k.D(0))
	bw.Bcc("done")
	// MGET: pop the free list, keep mbstat honest.
	bw.MoveL(m68k.Abs(gMFree), m68k.A(1))
	bw.MoveL(m68k.A(1), m68k.D(0))
	bw.Beq("done")
	bw.MoveL(m68k.Ind(1), m68k.D(0))
	bw.MoveL(m68k.D(0), m68k.Abs(gMFree))
	bw.AddL(m68k.Imm(1), m68k.Abs(gMStat))
	bw.Clr(4, m68k.Disp(mOff, 1))
	// chunk = min(len, mbuf capacity)
	bw.MoveL(m68k.Imm(mbufCap), m68k.D(6))
	bw.Cmp(4, m68k.D(3), m68k.D(6))
	bw.Bls("c1")
	bw.MoveL(m68k.D(3), m68k.D(6))
	bw.Label("c1")
	bw.MoveL(m68k.D(6), m68k.Disp(mLen, 1))
	bw.MoveL(m68k.D(6), m68k.D(5)) // bcopy clobbers D6
	// Copy user -> mbuf.
	bw.MoveL(m68k.A(1), m68k.A(5)) // keep the mbuf
	bw.MoveL(m68k.A(4), m68k.A(1)) // src
	bw.Lea(m68k.Disp(mData, 5), 3) // dst
	bw.Jsr(bcopy)
	bw.MoveL(m68k.A(1), m68k.A(4)) // persist the cursor
	// sbappend: link at the tail.
	bw.Clr(4, m68k.Ind(5))
	bw.MoveL(m68k.Disp(sbTail, 2), m68k.D(0))
	bw.Beq("first")
	bw.MoveL(m68k.D(0), m68k.A(3))
	bw.MoveL(m68k.A(5), m68k.Ind(3))
	bw.Bra("app")
	bw.Label("first")
	bw.MoveL(m68k.A(5), m68k.Disp(sbHead, 2))
	bw.Label("app")
	bw.MoveL(m68k.A(5), m68k.Disp(sbTail, 2))
	bw.MoveL(m68k.Disp(sbCC, 2), m68k.D(0))
	bw.AddL(m68k.D(5), m68k.D(0))
	bw.MoveL(m68k.D(0), m68k.Disp(sbCC, 2))
	bw.SubL(m68k.D(5), m68k.D(3))
	bw.Bra("loop")
	bw.Label("done")
	bw.MoveToSR(m68k.PostInc(7)) // splx
	bw.Clr(1, m68k.Disp(sbLock, 2))
	bw.Jsr(wakeup) // sorwakeup(A2)
	bw.MoveL(m68k.D(7), m68k.D(0))
	bw.SubL(m68k.D(3), m68k.D(0))
	bw.Rts()

	br := asmkit.New()
	br.MoveL(m68k.Disp(fPtr, 0), m68k.A(2))
	br.Label("lock")
	br.Tas(m68k.Disp(sbLock, 2))
	br.Bmi("lock")
	br.MoveFromSR(m68k.PreDec(7))
	br.OrSR(0x0700)
	br.MoveL(m68k.D(3), m68k.D(7))
	br.MoveL(m68k.D(2), m68k.A(4)) // user cursor
	br.Label("loop")
	br.TstL(m68k.D(3))
	br.Beq("done")
	br.MoveL(m68k.Disp(sbHead, 2), m68k.D(0))
	br.Beq("done")                 // drained
	br.MoveL(m68k.D(0), m68k.A(5)) // mbuf
	// chunk = min(mbuf length, remaining)
	br.MoveL(m68k.Disp(mLen, 5), m68k.D(6))
	br.Cmp(4, m68k.D(3), m68k.D(6))
	br.Bls("c1")
	br.MoveL(m68k.D(3), m68k.D(6))
	br.Label("c1")
	br.MoveL(m68k.D(6), m68k.D(5))
	// Copy mbuf -> user.
	br.Lea(m68k.Disp(mData, 5), 1)
	br.AddL(m68k.Disp(mOff, 5), m68k.A(1))
	br.MoveL(m68k.A(4), m68k.A(3))
	br.Jsr(bcopy)
	br.MoveL(m68k.A(3), m68k.A(4))
	// Accounting.
	br.MoveL(m68k.Disp(sbCC, 2), m68k.D(0))
	br.SubL(m68k.D(5), m68k.D(0))
	br.MoveL(m68k.D(0), m68k.Disp(sbCC, 2))
	br.SubL(m68k.D(5), m68k.D(3))
	// Partially or fully consumed?
	br.MoveL(m68k.Disp(mLen, 5), m68k.D(0))
	br.SubL(m68k.D(5), m68k.D(0))
	br.MoveL(m68k.D(0), m68k.Disp(mLen, 5))
	br.Bne("partial")
	// sbdrop + MFREE: unlink the head and return it to the pool.
	br.MoveL(m68k.Ind(5), m68k.D(0))
	br.MoveL(m68k.D(0), m68k.Disp(sbHead, 2))
	br.Bne("notlast")
	br.Clr(4, m68k.Disp(sbTail, 2))
	br.Label("notlast")
	br.MoveL(m68k.Abs(gMFree), m68k.D(0))
	br.MoveL(m68k.D(0), m68k.Ind(5))
	br.MoveL(m68k.A(5), m68k.Abs(gMFree))
	br.SubL(m68k.Imm(1), m68k.Abs(gMStat))
	br.Bra("loop")
	br.Label("partial")
	br.MoveL(m68k.Disp(mOff, 5), m68k.D(0))
	br.AddL(m68k.D(5), m68k.D(0))
	br.MoveL(m68k.D(0), m68k.Disp(mOff, 5))
	br.Bra("loop")
	br.Label("done")
	br.MoveToSR(m68k.PostInc(7))
	br.Clr(1, m68k.Disp(sbLock, 2))
	br.Jsr(wakeup) // sowwakeup
	br.MoveL(m68k.D(7), m68k.D(0))
	br.SubL(m68k.D(3), m68k.D(0))
	br.Rts()

	return br.Link(m), bw.Link(m)
}
