package sunos

import (
	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

// The traditional context switch, for the Table 4 comparison and the
// executable-data-structure ablation: "they always do the work of a
// complete switch: save the registers in a system area, setup the C
// run-time stack, find the current proc-table and copy the registers
// into proc-table, start the next process" (Section 4.2). The
// floating-point context is saved unconditionally — the traditional
// kernel has no lazy variant — and the scheduler scans the whole
// process table for the best priority instead of following a chain.

// buildSwtch assembles the switch: D1 = from-process index, D2 =
// to-process index. Callable as a subroutine so the ablation can time
// it in isolation.
func (k *Kernel) buildSwtch() uint32 {
	b := asmkit.New()
	// Save into a system area first (the "system save area"), then
	// copy into the proc-table entry — the double store the paper
	// calls out.
	sysSave := k.alloc(64)
	b.MovemSave(0x7fff, m68k.Abs(sysSave))
	// Find the proc entry.
	b.MoveL(m68k.Abs(gProcTab), m68k.A(0))
	b.MoveL(m68k.D(1), m68k.D(0))
	b.Mulu(m68k.Imm(procBytes), m68k.D(0))
	b.AddL(m68k.D(0), m68k.A(0))
	// Copy the register block into the proc table.
	b.Lea(m68k.Abs(sysSave), 1)
	b.Lea(m68k.Disp(pRegs, 0), 3)
	b.MoveL(m68k.Imm(15-1), m68k.D(0))
	b.Label("cp")
	b.MoveL(m68k.PostInc(1), m68k.PostInc(3))
	b.Dbra(0, "cp")
	// Save the FP context unconditionally.
	b.FmovemSave(0xff, m68k.Disp(pFP, 0))
	// Scan the run queue (the whole table) for the best priority.
	b.MoveL(m68k.Abs(gProcTab), m68k.A(1))
	b.MoveL(m68k.Imm(nproc-1), m68k.D(0))
	b.MoveL(m68k.Imm(9999), m68k.D(3))
	b.Label("scan")
	b.MoveL(m68k.Disp(pPri, 1), m68k.D(4))
	b.Cmp(4, m68k.D(3), m68k.D(4))
	b.Bcc("nx")
	b.MoveL(m68k.D(4), m68k.D(3))
	b.Label("nx")
	b.Lea(m68k.Disp(procBytes, 1), 1)
	b.Dbra(0, "scan")
	// Restore the target's context.
	b.MoveL(m68k.Abs(gProcTab), m68k.A(0))
	b.MoveL(m68k.D(2), m68k.D(0))
	b.Mulu(m68k.Imm(procBytes), m68k.D(0))
	b.AddL(m68k.D(0), m68k.A(0))
	b.FmovemRest(m68k.Disp(pFP, 0), 0xff)
	b.MovemRest(m68k.Disp(pRegs, 0), 0x7fff)
	b.Rts()
	return b.Link(k.M)
}

// SwitchRoutine returns the full-switch routine address for the
// ablation benchmarks.
func (k *Kernel) SwitchRoutine() uint32 { return k.swtchR }
