// Package unixemu is the UNIX emulator of Section 6.1: a thin layer
// that services SUNOS-style system calls on top of native Synthesis
// kernel calls, so that the same "binary" (Quamachine program built
// against the UNIX trap convention) runs on both the Synthesis kernel
// and the traditional baseline kernel.
//
// "In the simplest case, the emulator translates the UNIX kernel call
// into an equivalent Synthesis kernel call." The translation is a
// register shuffle followed by a tail-jump into the native
// synthesized routine — the measured emulation-trap overhead of about
// 2 microseconds in Table 2.
package unixemu

import (
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// SUNOS system call numbers (the subset the benchmarks use).
const (
	SysExit  = 1
	SysRead  = 3
	SysWrite = 4
	SysOpen  = 5
	SysClose = 6
	SysLseek  = 19
	SysPipe   = 42
	SysSocket = 97 // 4.2BSD socket: D1 = local port, D2 = remote port
)

// UNIX trap convention: trap #0 with the syscall number in D0 and
// arguments in D1-D3. read/write: fd D1, buffer D2, length D3.
// open: name pointer D1 (flags ignored — the memory file system has
// no modes). Results come back in D0 (and D1 for pipe's second
// descriptor), -1 on error.

// Install synthesizes the emulator gate and installs it at trap #0 in
// the prototype vector table and every live thread.
//
// When the kernel has a metrics registry attached, the gate is emitted
// with one per-syscall counter cell bumped inside each branch, served
// as unixemu.sys.<name>.calls sampled metrics — the same stitched-cell
// self-measurement the synthesizer's Counted() option uses. Without a
// registry no cells exist and the generated gate is byte-identical to
// the uninstrumented one, so the Table 2 emulation-overhead numbers
// are unaffected.
func Install(k *kernel.Kernel) uint32 {
	count := func(e *synth.Emitter, name string) {}
	if k.Metrics != nil {
		m := k.M
		cells := make(map[string]uint32)
		for _, n := range []string{
			"exit", "read", "write", "open", "close",
			"lseek", "pipe", "socket", "unknown",
		} {
			cell, err := k.Heap.Alloc(4)
			if err != nil {
				break
			}
			m.Poke(cell, 4, 0)
			cells[n] = cell
			c := cell
			k.Metrics.Sample("unixemu.sys."+n+".calls", func() uint64 {
				return uint64(m.Peek(c, 4))
			})
		}
		count = func(e *synth.Emitter, name string) {
			if cell := cells[name]; cell != 0 {
				e.AddL(m68k.Imm(1), m68k.Abs(cell))
			}
		}
	}

	gate := k.C.Synthesize(nil, "unix_gate", nil, func(e *synth.Emitter) {
		// read: shuffle (fd,buf,len) from D1-D3 to the native
		// convention (buf D1, len D2) and tail-jump into the
		// thread's synthesized read routine through its own vector
		// table — the emulator "translates the UNIX kernel call into
		// an equivalent Synthesis kernel call".
		e.CmpL(m68k.Imm(SysRead), m68k.D(0))
		e.Bne("notread")
		count(e, "read")
		e.MoveL(m68k.Abs(kernel.GCurTTE), m68k.A(0))
		e.MoveL(m68k.D(1), m68k.D(0)) // fd
		e.MoveL(m68k.D(2), m68k.D(1)) // buf
		e.MoveL(m68k.D(3), m68k.D(2)) // len
		e.JmpVia(m68k.Idx(
			int32(kernel.TTEVec+uint32(m68k.VecTrapBase+kernel.TrapRead)*4),
			0, 0, 4)) // [TTE.vec[32+TrapRead+fd]]
		e.Label("notread")

		e.CmpL(m68k.Imm(SysWrite), m68k.D(0))
		e.Bne("notwrite")
		count(e, "write")
		e.MoveL(m68k.Abs(kernel.GCurTTE), m68k.A(0))
		e.MoveL(m68k.D(1), m68k.D(0))
		e.MoveL(m68k.D(2), m68k.D(1))
		e.MoveL(m68k.D(3), m68k.D(2))
		e.JmpVia(m68k.Idx(
			int32(kernel.TTEVec+uint32(m68k.VecTrapBase+kernel.TrapWrite)*4),
			0, 0, 4))
		e.Label("notwrite")

		// The remaining calls translate one-to-one: load the native
		// function code and fall into the native dispatcher (its RTE
		// pops our trap frame — Collapsing Layers applied to the
		// emulation layer itself).
		e.CmpL(m68k.Imm(SysOpen), m68k.D(0))
		e.Bne("notopen")
		count(e, "open")
		e.MoveL(m68k.Imm(kernel.SysOpen), m68k.D(0))
		e.Jmp(k.DispatchRoutine())
		e.Label("notopen")

		e.CmpL(m68k.Imm(SysClose), m68k.D(0))
		e.Bne("notclose")
		count(e, "close")
		e.MoveL(m68k.Imm(kernel.SysClose), m68k.D(0))
		e.Jmp(k.DispatchRoutine())
		e.Label("notclose")

		e.CmpL(m68k.Imm(SysPipe), m68k.D(0))
		e.Bne("notpipe")
		count(e, "pipe")
		e.MoveL(m68k.Imm(kernel.SysPipe), m68k.D(0))
		e.Jmp(k.DispatchRoutine())
		e.Label("notpipe")

		e.CmpL(m68k.Imm(SysExit), m68k.D(0))
		e.Bne("notexit")
		count(e, "exit")
		e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
		e.Jmp(k.DispatchRoutine())
		e.Label("notexit")

		e.CmpL(m68k.Imm(SysLseek), m68k.D(0))
		e.Bne("notseek")
		count(e, "lseek")
		e.MoveL(m68k.Imm(kernel.SysSeek), m68k.D(0))
		e.Jmp(k.DispatchRoutine())
		e.Label("notseek")

		e.CmpL(m68k.Imm(SysSocket), m68k.D(0))
		e.Bne("notsock")
		count(e, "socket")
		e.MoveL(m68k.Imm(kernel.SysSock), m68k.D(0))
		e.Jmp(k.DispatchRoutine())
		e.Label("notsock")

		// Unknown syscall: error return.
		count(e, "unknown")
		e.MoveL(m68k.Imm(-1), m68k.D(0))
		e.Rte()
	})

	vec := uint32(m68k.VecTrapBase+kernel.TrapUnix) * 4
	k.M.Poke(k.ProtoVectors()+vec, 4, gate)
	for _, t := range k.Threads {
		k.M.Poke(t.TTE+kernel.TTEVec+vec, 4, gate)
	}
	return gate
}
