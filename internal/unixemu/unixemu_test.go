package unixemu_test

import (
	"testing"

	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
	"synthesis/internal/unixemu"
)

func boot(t *testing.T) *kernel.Kernel {
	t.Helper()
	k := kernel.Boot(kernel.Config{Machine: m68k.Config{MemSize: 1 << 20, TraceDepth: 128}})
	kio.Install(k)
	unixemu.Install(k)
	return k
}

// The same "binary" convention the Table 1 programs use: UNIX
// syscalls through trap #0.
func unixCall(e *synth.Emitter, no int32) {
	e.MoveL(m68k.Imm(no), m68k.D(0))
	e.Trap(kernel.TrapUnix)
}

func TestUnixOpenWriteReadClose(t *testing.T) {
	k := boot(t)
	if _, err := k.FS.CreateSized("/etc/motd", []byte("unix on synthesis"), 64); err != nil {
		t.Fatal(err)
	}
	const nameAddr, res, buf = 0x9100, 0x9000, 0x9300
	for i, c := range []byte("/etc/motd\x00") {
		k.M.Poke(nameAddr+uint32(i), 1, uint32(c))
	}
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		// open("/etc/motd") -> fd 0
		e.MoveL(m68k.Imm(nameAddr), m68k.D(1))
		unixCall(e, unixemu.SysOpen)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		// read(fd=0, buf, 17)
		e.MoveL(m68k.Imm(0), m68k.D(1))
		e.MoveL(m68k.Imm(buf), m68k.D(2))
		e.MoveL(m68k.Imm(17), m68k.D(3))
		unixCall(e, unixemu.SysRead)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		// close(0)
		e.MoveL(m68k.Imm(0), m68k.D(1))
		unixCall(e, unixemu.SysClose)
		e.MoveL(m68k.D(0), m68k.Abs(res+8))
		// pipe() -> rfd in D0, wfd in D1
		unixCall(e, unixemu.SysPipe)
		e.MoveL(m68k.D(0), m68k.D(4)) // rfd
		e.MoveL(m68k.D(1), m68k.D(5)) // wfd
		// write(wfd, buf, 8): fd is dynamic — the gate handles it.
		e.MoveL(m68k.D(5), m68k.D(1))
		e.MoveL(m68k.Imm(buf), m68k.D(2))
		e.MoveL(m68k.Imm(8), m68k.D(3))
		unixCall(e, unixemu.SysWrite)
		e.MoveL(m68k.D(0), m68k.Abs(res+12))
		// read(rfd, buf2, 8)
		e.MoveL(m68k.D(4), m68k.D(1))
		e.MoveL(m68k.Imm(buf+32), m68k.D(2))
		e.MoveL(m68k.Imm(8), m68k.D(3))
		unixCall(e, unixemu.SysRead)
		e.MoveL(m68k.D(0), m68k.Abs(res+16))
		unixCall(e, unixemu.SysExit)
	})
	th := k.SpawnKernel("main", prog)
	k.Start(th)
	if err := k.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := int32(k.M.Peek(res, 4)); got != 0 {
		t.Fatalf("unix open = %d", got)
	}
	if got := k.M.Peek(res+4, 4); got != 17 {
		t.Errorf("unix read = %d, want 17", got)
	}
	if got := string(k.M.PeekBytes(buf, 17)); got != "unix on synthesis" {
		t.Errorf("data %q", got)
	}
	if got := int32(k.M.Peek(res+8, 4)); got != 0 {
		t.Errorf("unix close = %d", got)
	}
	if got := k.M.Peek(res+12, 4); got != 8 {
		t.Errorf("pipe write = %d, want 8", got)
	}
	if got := k.M.Peek(res+16, 4); got != 8 {
		t.Errorf("pipe read = %d, want 8", got)
	}
	if got := string(k.M.PeekBytes(buf+32, 8)); got != "unix on " {
		t.Errorf("pipe data %q", got)
	}
}

func TestUnknownUnixSyscallReturnsError(t *testing.T) {
	k := boot(t)
	const res = 0x9000
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		unixCall(e, 199)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		unixCall(e, unixemu.SysExit)
	})
	th := k.SpawnKernel("main", prog)
	k.Start(th)
	if err := k.Run(5_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := int32(k.M.Peek(res, 4)); got != -1 {
		t.Errorf("unknown syscall = %d, want -1", got)
	}
}

func TestEmulationOverheadIsSmall(t *testing.T) {
	// Table 2: "emulation trap overhead: 2 usec". Compare a native
	// null write with a UNIX null write at the SUN 3/160 point.
	mkKernel := func() (*kernel.Kernel, *kernel.Thread, uint32) {
		k := kernel.Boot(kernel.Config{Machine: m68k.Sun3Config()})
		kio.Install(k)
		unixemu.Install(k)
		const nameAddr = 0x9100
		for i, c := range []byte("/dev/null\x00") {
			k.M.Poke(nameAddr+uint32(i), 1, uint32(c))
		}
		return k, nil, nameAddr
	}

	measure := func(useUnix bool) float64 {
		k, _, nameAddr := mkKernel()
		prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
			e.MoveL(m68k.Imm(kernel.SysOpen), m68k.D(0))
			e.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
			e.Trap(kernel.TrapSys)
			e.Kcall(kernel.SvcMark)
			if useUnix {
				e.MoveL(m68k.Imm(unixemu.SysWrite), m68k.D(0))
				e.MoveL(m68k.Imm(0), m68k.D(1))
				e.MoveL(m68k.Imm(0x9300), m68k.D(2))
				e.MoveL(m68k.Imm(1), m68k.D(3))
				e.Trap(kernel.TrapUnix)
			} else {
				e.MoveL(m68k.Imm(0x9300), m68k.D(1))
				e.MoveL(m68k.Imm(1), m68k.D(2))
				e.Trap(kernel.TrapWrite + 0)
			}
			e.Kcall(kernel.SvcMark)
			e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
			e.Trap(kernel.TrapSys)
		})
		th := k.SpawnKernel("main", prog)
		k.Start(th)
		if err := k.Run(10_000_000); err != nil {
			t.Fatalf("run: %v", err)
		}
		d := k.MarkDeltasMicros()
		if len(d) != 1 {
			t.Fatalf("marks: %v", d)
		}
		return d[0]
	}

	native := measure(false)
	emulated := measure(true)
	overhead := emulated - native
	t.Logf("native %.2f usec, emulated %.2f usec, overhead %.2f usec (paper: 2)", native, emulated, overhead)
	if overhead <= 0 || overhead > 8 {
		t.Errorf("emulation overhead %.2f usec out of the paper's range", overhead)
	}
}

func TestUnixLseek(t *testing.T) {
	k := boot(t)
	if _, err := k.FS.CreateSized("/f", []byte("0123456789"), 32); err != nil {
		t.Fatal(err)
	}
	const nameAddr, res, buf = 0x9100, 0x9000, 0x9300
	for i, c := range []byte("/f\x00") {
		k.M.Poke(nameAddr+uint32(i), 1, uint32(c))
	}
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(nameAddr), m68k.D(1))
		unixCall(e, unixemu.SysOpen)
		// lseek(0, 7)
		e.MoveL(m68k.Imm(0), m68k.D(1))
		e.MoveL(m68k.Imm(7), m68k.D(2))
		unixCall(e, unixemu.SysLseek)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		// read 3 -> "789"
		e.MoveL(m68k.Imm(0), m68k.D(1))
		e.MoveL(m68k.Imm(buf), m68k.D(2))
		e.MoveL(m68k.Imm(3), m68k.D(3))
		unixCall(e, unixemu.SysRead)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		unixCall(e, unixemu.SysExit)
	})
	th := k.SpawnKernel("main", prog)
	k.Start(th)
	if err := k.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := k.M.Peek(res, 4); got != 7 {
		t.Errorf("lseek = %d, want 7", got)
	}
	if got := k.M.Peek(res+4, 4); got != 3 {
		t.Errorf("read = %d, want 3", got)
	}
	if got := string(k.M.PeekBytes(buf, 3)); got != "789" {
		t.Errorf("data %q", got)
	}
}
