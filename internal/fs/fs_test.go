package fs_test

import (
	"testing"
	"testing/quick"

	"synthesis/internal/alloc"
	"synthesis/internal/fs"
	"synthesis/internal/m68k"
)

func newFS(t *testing.T) (*fs.FS, *m68k.Machine) {
	t.Helper()
	m := m68k.New(m68k.Config{MemSize: 1 << 20})
	h := alloc.New(0x1000, 1<<19)
	return fs.New(m, h), m
}

func TestCreateAndLookup(t *testing.T) {
	f, m := newFS(t)
	file, err := f.Create("/etc/motd", []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Lookup("/etc/motd"); got != file {
		t.Error("lookup did not find the file")
	}
	if f.Lookup("/etc/motdx") != nil {
		t.Error("lookup found a nonexistent file")
	}
	if got := string(m.PeekBytes(file.Data, 5)); got != "hello" {
		t.Errorf("contents %q", got)
	}
	if f.ByID(file.ID) != file {
		t.Error("ByID failed")
	}
	if f.ByEntry(file.Entry) != file {
		t.Error("ByEntry failed")
	}
}

func TestDuplicateRejected(t *testing.T) {
	f, _ := newFS(t)
	if _, err := f.Create("/a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Create("/a", nil); err == nil {
		t.Error("duplicate create succeeded")
	}
}

func TestNamesStoredBackwards(t *testing.T) {
	f, m := newFS(t)
	file, err := f.Create("/ab", nil)
	if err != nil {
		t.Fatal(err)
	}
	// The entry's name bytes are reversed: "ba/".
	b0 := byte(m.Peek(file.Entry+fs.EntName, 1))
	b1 := byte(m.Peek(file.Entry+fs.EntName+1, 1))
	b2 := byte(m.Peek(file.Entry+fs.EntName+2, 1))
	if b0 != 'b' || b1 != 'a' || b2 != '/' {
		t.Errorf("stored name = %c%c%c, want 'ba/' (reversed)", b0, b1, b2)
	}
}

func TestHashMatchesChainPlacement(t *testing.T) {
	f, m := newFS(t)
	file, err := f.Create("/dev/null", nil)
	if err != nil {
		t.Fatal(err)
	}
	bucket := f.Buckets + fs.Hash("/dev/null")*4
	head := m.Peek(bucket, 4)
	if head != file.Entry {
		t.Errorf("bucket head %#x, want entry %#x", head, file.Entry)
	}
}

func TestCollisionChaining(t *testing.T) {
	f, m := newFS(t)
	// Create many files; verify every one is findable through its
	// bucket chain in machine memory (the exact structure the VM
	// lookup walks).
	names := []string{}
	for i := 0; i < 200; i++ {
		name := "/f/" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+i%10))
		if f.Lookup(name) != nil {
			continue
		}
		if _, err := f.Create(name, []byte(name)); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	for _, name := range names {
		file := f.Lookup(name)
		if file == nil {
			t.Fatalf("%s lost", name)
		}
		// Walk the chain the way the kernel does.
		ent := m.Peek(f.Buckets+fs.Hash(name)*4, 4)
		found := false
		for ent != 0 {
			if ent == file.Entry {
				found = true
				break
			}
			ent = m.Peek(ent+fs.EntNext, 4)
		}
		if !found {
			t.Errorf("%s not reachable through its bucket chain", name)
		}
	}
}

func TestCurrentSizeTracksEntryCell(t *testing.T) {
	f, m := newFS(t)
	file, err := f.CreateSized("/data", []byte("abc"), 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.CurrentSize(file); got != 3 {
		t.Errorf("size = %d", got)
	}
	// Simulate a synthesized write updating the entry cell.
	m.Poke(file.Entry+fs.EntSize, 4, 40)
	if got := f.CurrentSize(file); got != 40 {
		t.Errorf("size after poke = %d", got)
	}
	f.SetSize(file, 99) // beyond cap: clamped
	if got := f.CurrentSize(file); got != 64 {
		t.Errorf("clamped size = %d", got)
	}
}

func TestSpecialFiles(t *testing.T) {
	f, _ := newFS(t)
	dev, err := f.CreateSpecial("/dev/null", fs.SpecialNull)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Special != fs.SpecialNull || dev.Data != 0 {
		t.Error("special file shape wrong")
	}
}

// Property: the Go-side Hash agrees with itself under reversal
// structure — names differing only in their last character (the FIRST
// compared byte in backwards storage) land in different buckets more
// often than not, and the hash is always in range.
func TestHashProperties(t *testing.T) {
	inRange := func(s string) bool {
		return fs.Hash(s) < fs.NBuckets
	}
	if err := quick.Check(inRange, nil); err != nil {
		t.Error(err)
	}
	diff := 0
	for c := byte('a'); c <= 'z'; c++ {
		if fs.Hash("/dev/tt"+string(c)) != fs.Hash("/dev/tty") {
			diff++
		}
	}
	if diff < 20 {
		t.Errorf("last-character changes moved only %d/26 names to new buckets", diff)
	}
}

func TestFilesEnumeration(t *testing.T) {
	f, _ := newFS(t)
	f.Create("/a", nil)
	f.Create("/b", nil)
	if got := len(f.Files()); got != 2 {
		t.Errorf("Files() = %d entries, want 2", got)
	}
}
