// Package fs is the Synthesis kernel's memory-resident file system.
// Section 6.2 notes "this Synthesis file system is entirely
// memory-resident", and Section 6.3 that open spends about 60% of its
// time finding the file in "hashed string names stored backwards".
//
// The directory lives in Quamachine memory so the kernel's open path
// can hash and compare names as VM code: a bucket table of chained
// entries, each entry carrying the file's metadata and its name
// stored reversed. Storing names backwards makes mismatch detection
// fast for the common case of long shared prefixes ("/dev/null" vs
// "/dev/tty" differ at the end, i.e. at the first reversed byte).
//
// File contents also live in VM memory (allocated from the kernel
// heap) so synthesized read routines copy them with machine
// instructions; the disk device backs them for the cache-miss path.
package fs

import (
	"fmt"

	"synthesis/internal/alloc"
	"synthesis/internal/m68k"
)

// NBuckets is the directory hash table width (power of two: the VM
// code masks rather than divides).
const NBuckets = 64

// Directory entry layout (all longs, name bytes trailing).
const (
	EntNext    = 0  // next entry in bucket chain (0 = end)
	EntID      = 4  // file id
	EntData    = 8  // address of contents in VM memory (cache buffer)
	EntSize    = 12 // file size in bytes
	EntSpecial = 16 // special-file kind (SpecialNone for plain files)
	EntBlock   = 20 // first disk block for disk-resident files
	EntNameLen = 24 // name length
	EntName    = 28 // name bytes, reversed
)

// Special file kinds.
const (
	SpecialNone    uint32 = iota
	SpecialNull           // /dev/null
	SpecialTTY            // /dev/tty
	SpecialAD             // /dev/ad: the analog sampler stream
	SpecialDisk           // disk-resident file, demand-loaded into the cache
	SpecialMetrics        // /proc/metrics: snapshot of the observability plane
)

// File is the Go-side mirror of one directory entry.
type File struct {
	Name    string
	ID      uint32
	Entry   uint32 // VM address of the directory entry
	Data    uint32 // VM address of contents
	Size    uint32
	Cap     uint32
	Special uint32
	Block   uint32 // first disk block (disk-resident files)
}

// FS is the file system: Go bookkeeping over VM-resident structures.
type FS struct {
	m       *m68k.Machine
	heap    *alloc.Heap
	Buckets uint32 // VM address of the bucket table
	byName  map[string]*File
	byID    map[uint32]*File
	nextID  uint32
}

// New allocates the directory structures in machine memory.
func New(m *m68k.Machine, heap *alloc.Heap) *FS {
	b, err := heap.Alloc(NBuckets * 4)
	if err != nil {
		panic("fs: cannot allocate bucket table")
	}
	for i := uint32(0); i < NBuckets*4; i += 4 {
		m.Poke(b+i, 4, 0)
	}
	return &FS{
		m:       m,
		heap:    heap,
		Buckets: b,
		byName:  make(map[string]*File),
		byID:    make(map[uint32]*File),
		nextID:  1,
	}
}

// Hash is the name hash, computed over the REVERSED string; the VM
// lookup code implements exactly this recurrence so the two sides
// agree: h = (h << 2) ^ byte over bytes from last to first, then the
// word is folded down (h ^ h>>6 ^ h>>12 ^ h>>18) so every character —
// including the early-processed final ones — influences the bucket.
func Hash(name string) uint32 {
	var h uint32
	for i := len(name) - 1; i >= 0; i-- {
		h = (h << 2) ^ uint32(name[i])
	}
	h ^= h >> 6
	h ^= h >> 12
	h ^= h >> 18
	return h & (NBuckets - 1)
}

// Create adds a plain file with the given contents, rounding its
// capacity up so it can grow a little in place.
func (f *FS) Create(name string, data []byte) (*File, error) {
	return f.create(name, data, uint32(len(data)), SpecialNone)
}

// CreateSized adds a plain file with explicit capacity.
func (f *FS) CreateSized(name string, data []byte, capacity uint32) (*File, error) {
	return f.create(name, data, capacity, SpecialNone)
}

// CreateSpecial adds a device node.
func (f *FS) CreateSpecial(name string, kind uint32) (*File, error) {
	return f.create(name, nil, 0, kind)
}

// CreateOnDisk adds a disk-resident file: its contents live in disk
// blocks starting at startBlock and are demand-loaded into a cache
// buffer of the given capacity by the synthesized read's fault path
// (the disk -> scheduler -> cache-manager pipeline of Section 5.1).
func (f *FS) CreateOnDisk(name string, startBlock, size, capacity uint32) (*File, error) {
	if capacity < size {
		capacity = size
	}
	file, err := f.create(name, nil, capacity, SpecialDisk)
	if err != nil {
		return nil, err
	}
	file.Size = size
	file.Block = startBlock
	f.m.Poke(file.Entry+EntSize, 4, size)
	f.m.Poke(file.Entry+EntBlock, 4, startBlock)
	return file, nil
}

func (f *FS) create(name string, data []byte, capacity uint32, special uint32) (*File, error) {
	if _, dup := f.byName[name]; dup {
		return nil, fmt.Errorf("fs: %q exists", name)
	}
	if capacity < uint32(len(data)) {
		capacity = uint32(len(data))
	}
	var dataAddr uint32
	if capacity > 0 {
		a, err := f.heap.Alloc(capacity)
		if err != nil {
			return nil, err
		}
		dataAddr = a
		f.m.PokeBytes(dataAddr, data)
	}
	entSize := uint32(EntName + len(name))
	ent, err := f.heap.Alloc(entSize)
	if err != nil {
		return nil, err
	}
	file := &File{
		Name:    name,
		ID:      f.nextID,
		Entry:   ent,
		Data:    dataAddr,
		Size:    uint32(len(data)),
		Cap:     capacity,
		Special: special,
	}
	f.nextID++

	m := f.m
	// Chain into the bucket (at the head).
	bucket := f.Buckets + Hash(name)*4
	m.Poke(ent+EntNext, 4, m.Peek(bucket, 4))
	m.Poke(bucket, 4, ent)
	m.Poke(ent+EntID, 4, file.ID)
	m.Poke(ent+EntData, 4, dataAddr)
	m.Poke(ent+EntSize, 4, file.Size)
	m.Poke(ent+EntSpecial, 4, special)
	m.Poke(ent+EntBlock, 4, 0)
	m.Poke(ent+EntNameLen, 4, uint32(len(name)))
	for i := 0; i < len(name); i++ {
		// Stored backwards: first stored byte is the last character.
		m.Poke(ent+EntName+uint32(i), 1, uint32(name[len(name)-1-i]))
	}

	f.byName[name] = file
	f.byID[file.ID] = file
	return file, nil
}

// Lookup finds a file by name (Go-side; the kernel's open path does
// the equivalent walk in VM code).
func (f *FS) Lookup(name string) *File { return f.byName[name] }

// ByID finds a file by id (what the VM lookup returns in a register).
func (f *FS) ByID(id uint32) *File { return f.byID[id] }

// ByEntry finds a file by directory-entry address.
func (f *FS) ByEntry(ent uint32) *File {
	for _, file := range f.byName {
		if file.Entry == ent {
			return file
		}
	}
	return nil
}

// SetSize updates a file's size (after a write extended it), keeping
// the VM entry in sync.
func (f *FS) SetSize(file *File, size uint32) {
	if size > file.Cap {
		size = file.Cap
	}
	file.Size = size
	f.m.Poke(file.Entry+EntSize, 4, size)
}

// CurrentSize reads the file's live size from the directory entry in
// machine memory (synthesized write routines update the entry cell
// directly, so the Go-side mirror may be stale).
func (f *FS) CurrentSize(file *File) uint32 {
	return f.m.Peek(file.Entry+EntSize, 4)
}

// Files returns all files.
func (f *FS) Files() []*File {
	out := make([]*File, 0, len(f.byName))
	for _, file := range f.byName {
		out = append(out, file)
	}
	return out
}
