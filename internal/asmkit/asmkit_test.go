package asmkit_test

import (
	"errors"
	"testing"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

func newM() *m68k.Machine {
	m := m68k.New(m68k.Config{MemSize: 1 << 16})
	stub := m.Emit([]m68k.Instr{{Op: m68k.HALT}})
	m.VBR = 0x100
	for v := 0; v < m68k.NumVectors; v++ {
		m.Poke(m.VBR+uint32(v)*4, 4, stub)
	}
	m.A[7] = 0x8000
	m.SSP = 0x8000
	return m
}

func run(t *testing.T, m *m68k.Machine, entry uint32) {
	t.Helper()
	m.PC = entry
	if err := m.Run(1_000_000); !errors.Is(err, m68k.ErrHalted) {
		t.Fatalf("run: %v", err)
	}
}

func TestLabelsResolveAcrossLinkBase(t *testing.T) {
	m := newM()
	// Pad code space so the routine links at a nonzero base: labels
	// must resolve to absolute addresses.
	m.AllocCode(37)
	b := asmkit.New()
	b.MoveL(m68k.Imm(0), m68k.D(0))
	b.Label("top")
	b.AddL(m68k.Imm(2), m68k.D(0))
	b.CmpL(m68k.Imm(10), m68k.D(0))
	b.Bne("top")
	b.Halt()
	run(t, m, b.Link(m))
	if m.D[0] != 10 {
		t.Errorf("D0 = %d, want 10", m.D[0])
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label did not panic")
		}
	}()
	b := asmkit.New()
	b.Label("x")
	b.Label("x")
}

func TestUndefinedLabelPanicsAtLink(t *testing.T) {
	m := newM()
	b := asmkit.New()
	b.Bra("nowhere")
	defer func() {
		if recover() == nil {
			t.Error("undefined label did not panic at link")
		}
	}()
	b.Link(m)
}

func TestMoveLabelLLoadsAbsoluteAddress(t *testing.T) {
	m := newM()
	m.AllocCode(11)
	b := asmkit.New()
	b.MoveLabelL("target", m68k.D(3))
	b.Halt()
	b.Label("target")
	b.Nop()
	base := b.Link(m)
	run(t, m, base)
	if m.D[3] != b.AddrOf("target", base) {
		t.Errorf("D3 = %d, want %d", m.D[3], b.AddrOf("target", base))
	}
}

func TestProgramExportImportRoundTrip(t *testing.T) {
	m := newM()
	b := asmkit.New()
	b.MoveL(m68k.Imm(5), m68k.D(0))
	b.Label("skip")
	b.TstL(m68k.D(0))
	b.Beq("skip") // never taken; exercises a fixup
	b.Halt()
	p := b.Export()
	if len(p.Ins) != 4 || len(p.Fixups) != 1 || p.Labels["skip"] != 1 {
		t.Fatalf("export shape: %+v", p)
	}
	b2 := asmkit.FromProgram(p)
	run(t, m, b2.Link(m))
	if m.D[0] != 5 {
		t.Errorf("round-tripped program broke: D0 = %d", m.D[0])
	}
}

func TestPatchJmpRedirectsInstalledCode(t *testing.T) {
	m := newM()
	t1 := asmkit.New()
	t1.MoveL(m68k.Imm(111), m68k.D(0))
	t1.Halt()
	addr1 := t1.Link(m)
	t2 := asmkit.New()
	t2.MoveL(m68k.Imm(222), m68k.D(0))
	t2.Halt()
	addr2 := t2.Link(m)

	b := asmkit.New()
	b.Jmp(addr1)
	entry := b.Link(m)
	run(t, m, entry)
	if m.D[0] != 111 {
		t.Fatalf("pre-patch D0 = %d", m.D[0])
	}
	// Patch the jump in place: the executable-data-structure
	// maintenance primitive.
	asmkit.PatchJmp(m, entry, addr2)
	m.ClearHalt()
	run(t, m, entry)
	if m.D[0] != 222 {
		t.Errorf("post-patch D0 = %d, want 222", m.D[0])
	}
}

func TestJmpViaFollowsCell(t *testing.T) {
	m := newM()
	t1 := asmkit.New()
	t1.MoveL(m68k.Imm(7), m68k.D(0))
	t1.Halt()
	target := t1.Link(m)
	const cell = 0x4000
	m.Poke(cell, 4, target)

	b := asmkit.New()
	b.JmpVia(m68k.Abs(cell))
	entry := b.Link(m)
	run(t, m, entry)
	if m.D[0] != 7 {
		t.Errorf("memory-indirect jmp failed: D0 = %d", m.D[0])
	}
	// Redirect by storing a new address in the cell — no code
	// modification at all.
	t2 := asmkit.New()
	t2.MoveL(m68k.Imm(9), m68k.D(0))
	t2.Halt()
	m.Poke(cell, 4, t2.Link(m))
	m.ClearHalt()
	run(t, m, entry)
	if m.D[0] != 9 {
		t.Errorf("cell-redirected jmp failed: D0 = %d", m.D[0])
	}
}

func TestLinkAtInstallsInPlace(t *testing.T) {
	m := newM()
	region := m.AllocCode(8)
	b := asmkit.New()
	b.MoveL(m68k.Imm(3), m68k.D(0))
	b.Halt()
	b.LinkAt(m, region)
	run(t, m, region)
	if m.D[0] != 3 {
		t.Errorf("LinkAt code did not run: D0 = %d", m.D[0])
	}
}
