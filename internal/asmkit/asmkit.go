// Package asmkit is the run-time assembler for Quamachine code. The
// Synthesis kernel's code synthesizer builds kernel routines with it:
// templates append instructions through a Builder, branch targets are
// symbolic labels, and Link resolves the labels and installs the
// routine into the machine's code space. Installed code can be
// patched in place, which is how executable data structures
// (Section 2.2 of the paper) update themselves.
package asmkit

import (
	"fmt"

	"synthesis/internal/m68k"
)

// Builder accumulates instructions and symbolic branch targets.
type Builder struct {
	ins    []m68k.Instr
	labels map[string]int
	fixups []fixup
}

type fixup struct {
	idx   int    // instruction needing resolution
	label string // target label
	src   bool   // patch Src.Imm instead of Dst.Imm
}

// New creates an empty builder.
func New() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.ins) }

// Label defines a branch target at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("asmkit: duplicate label %q", name))
	}
	b.labels[name] = len(b.ins)
	return b
}

// I appends a raw instruction.
func (b *Builder) I(in m68k.Instr) *Builder {
	b.ins = append(b.ins, in)
	return b
}

// branch appends a branch to a label, recording a fixup.
func (b *Builder) branch(op m68k.Op, label string) *Builder {
	b.fixups = append(b.fixups, fixup{idx: len(b.ins), label: label})
	return b.I(m68k.Instr{Op: op, Dst: m68k.Abs(0)})
}

// Instructions returns a copy of the built (unlinked) instructions.
func (b *Builder) Instructions() []m68k.Instr {
	out := make([]m68k.Instr, len(b.ins))
	copy(out, b.ins)
	return out
}

// Fixup is an unresolved reference from an instruction operand to a
// label, exported as part of a Program.
type Fixup struct {
	Idx   int
	Label string
	Src   bool
}

// Program is the portable, unlinked form of a routine: instructions
// plus symbolic label and fixup tables. The synthesizer's optimizer
// transforms Programs (it must renumber labels and fixups as it
// deletes or rewrites instructions), then converts them back into a
// Builder for linking.
type Program struct {
	Ins    []m68k.Instr
	Labels map[string]int
	Fixups []Fixup
}

// Export snapshots the builder as a Program.
func (b *Builder) Export() Program {
	p := Program{
		Ins:    b.Instructions(),
		Labels: make(map[string]int, len(b.labels)),
	}
	for k, v := range b.labels {
		p.Labels[k] = v
	}
	for _, f := range b.fixups {
		p.Fixups = append(p.Fixups, Fixup{Idx: f.idx, Label: f.label, Src: f.src})
	}
	return p
}

// FromProgram rebuilds a Builder from a Program.
func FromProgram(p Program) *Builder {
	b := New()
	b.ins = append(b.ins, p.Ins...)
	for k, v := range p.Labels {
		b.labels[k] = v
	}
	for _, f := range p.Fixups {
		b.fixups = append(b.fixups, fixup{idx: f.Idx, label: f.Label, src: f.Src})
	}
	return b
}

// resolve produces the final instruction slice with labels resolved
// against the given base address.
func (b *Builder) resolve(base uint32) []m68k.Instr {
	out := make([]m68k.Instr, len(b.ins))
	copy(out, b.ins)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			panic(fmt.Sprintf("asmkit: undefined label %q", f.label))
		}
		if f.src {
			out[f.idx].Src.Imm = int32(base + uint32(target))
		} else {
			out[f.idx].Dst.Imm = int32(base + uint32(target))
		}
	}
	return out
}

// Link allocates code space on the machine, resolves labels and
// installs the routine. It returns the routine's entry address.
func (b *Builder) Link(m *m68k.Machine) uint32 {
	base := m.AllocCode(len(b.ins))
	m.SetCode(base, b.resolve(base))
	return base
}

// LinkAt installs the routine at a previously allocated code address.
// The region must be at least Len() instructions.
func (b *Builder) LinkAt(m *m68k.Machine, base uint32) {
	m.SetCode(base, b.resolve(base))
}

// AddrOf returns the absolute address a label will have when the
// routine is linked at base.
func (b *Builder) AddrOf(label string, base uint32) uint32 {
	target, ok := b.labels[label]
	if !ok {
		panic(fmt.Sprintf("asmkit: undefined label %q", label))
	}
	return base + uint32(target)
}

// ---------------------------------------------------------------------
// Instruction helpers. Suffixes: L = long (32), W = word (16),
// B = byte.

// Nop appends a nop.
func (b *Builder) Nop() *Builder { return b.I(m68k.Instr{Op: m68k.NOP}) }

// MoveL appends move.l src,dst.
func (b *Builder) MoveL(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.MOVE, Sz: 4, Src: src, Dst: dst})
}

// MoveLabelL appends move.l #label,dst where the immediate is the
// absolute code address of a label in this routine (resolved at link
// time). Threads use it to build exception frames and vector-table
// entries that point at their own code.
func (b *Builder) MoveLabelL(label string, dst m68k.Operand) *Builder {
	b.fixups = append(b.fixups, fixup{idx: len(b.ins), label: label, src: true})
	return b.I(m68k.Instr{Op: m68k.MOVE, Sz: 4, Src: m68k.Imm(0), Dst: dst})
}

// MoveW appends move.w src,dst.
func (b *Builder) MoveW(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.MOVE, Sz: 2, Src: src, Dst: dst})
}

// MoveB appends move.b src,dst.
func (b *Builder) MoveB(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.MOVE, Sz: 1, Src: src, Dst: dst})
}

// Lea appends lea src,An.
func (b *Builder) Lea(src m68k.Operand, an uint8) *Builder {
	return b.I(m68k.Instr{Op: m68k.LEA, Src: src, Dst: m68k.A(an)})
}

// Clr appends clr of the given size.
func (b *Builder) Clr(sz uint8, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.CLR, Sz: sz, Dst: dst})
}

// AddL appends add.l src,dst.
func (b *Builder) AddL(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.ADD, Sz: 4, Src: src, Dst: dst})
}

// SubL appends sub.l src,dst.
func (b *Builder) SubL(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.SUB, Sz: 4, Src: src, Dst: dst})
}

// Mulu appends mulu src,Dn.
func (b *Builder) Mulu(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.MULU, Sz: 4, Src: src, Dst: dst})
}

// Divu appends divu src,Dn.
func (b *Builder) Divu(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.DIVU, Sz: 4, Src: src, Dst: dst})
}

// AndL appends and.l src,dst.
func (b *Builder) AndL(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.AND, Sz: 4, Src: src, Dst: dst})
}

// OrL appends or.l src,dst.
func (b *Builder) OrL(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.OR, Sz: 4, Src: src, Dst: dst})
}

// EorL appends eor.l src,dst.
func (b *Builder) EorL(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.EOR, Sz: 4, Src: src, Dst: dst})
}

// LslL appends lsl.l src,dst.
func (b *Builder) LslL(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.LSL, Sz: 4, Src: src, Dst: dst})
}

// LsrL appends lsr.l src,dst.
func (b *Builder) LsrL(src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.LSR, Sz: 4, Src: src, Dst: dst})
}

// Cmp appends cmp of the given size (sets CCR from dst-src).
func (b *Builder) Cmp(sz uint8, src, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.CMP, Sz: sz, Src: src, Dst: dst})
}

// CmpL appends cmp.l src,dst.
func (b *Builder) CmpL(src, dst m68k.Operand) *Builder { return b.Cmp(4, src, dst) }

// Tst appends tst of the given size.
func (b *Builder) Tst(sz uint8, src m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.TST, Sz: sz, Src: src})
}

// TstL appends tst.l src.
func (b *Builder) TstL(src m68k.Operand) *Builder { return b.Tst(4, src) }

// Btst appends btst bit,dst.
func (b *Builder) Btst(bit, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.BTST, Sz: 1, Src: bit, Dst: dst})
}

// Bset appends bset bit,dst.
func (b *Builder) Bset(bit, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.BSET, Sz: 1, Src: bit, Dst: dst})
}

// Bclr appends bclr bit,dst.
func (b *Builder) Bclr(bit, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.BCLR, Sz: 1, Src: bit, Dst: dst})
}

// Tas appends tas dst (atomic test-and-set of a byte's high bit).
func (b *Builder) Tas(dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.TAS, Sz: 1, Dst: dst})
}

// Cas appends cas.sz Dc,Du,ea: the 68020 compare-and-swap underlying
// the paper's optimistic queues.
func (b *Builder) Cas(sz uint8, dc, du uint8, ea m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.CAS, Sz: sz, Src: m68k.D(dc), Fp: du, Dst: ea})
}

// Branches to labels.

// Bra appends bra label.
func (b *Builder) Bra(label string) *Builder { return b.branch(m68k.BRA, label) }

// Beq appends beq label.
func (b *Builder) Beq(label string) *Builder { return b.branch(m68k.BEQ, label) }

// Bne appends bne label.
func (b *Builder) Bne(label string) *Builder { return b.branch(m68k.BNE, label) }

// Blt appends blt label.
func (b *Builder) Blt(label string) *Builder { return b.branch(m68k.BLT, label) }

// Ble appends ble label.
func (b *Builder) Ble(label string) *Builder { return b.branch(m68k.BLE, label) }

// Bgt appends bgt label.
func (b *Builder) Bgt(label string) *Builder { return b.branch(m68k.BGT, label) }

// Bge appends bge label.
func (b *Builder) Bge(label string) *Builder { return b.branch(m68k.BGE, label) }

// Bhi appends bhi label (unsigned greater).
func (b *Builder) Bhi(label string) *Builder { return b.branch(m68k.BHI, label) }

// Bls appends bls label (unsigned less-or-equal).
func (b *Builder) Bls(label string) *Builder { return b.branch(m68k.BLS, label) }

// Bcc appends bcc label (unsigned greater-or-equal).
func (b *Builder) Bcc(label string) *Builder { return b.branch(m68k.BCC, label) }

// Bcs appends bcs label (unsigned less).
func (b *Builder) Bcs(label string) *Builder { return b.branch(m68k.BCS, label) }

// Bmi appends bmi label.
func (b *Builder) Bmi(label string) *Builder { return b.branch(m68k.BMI, label) }

// Bpl appends bpl label.
func (b *Builder) Bpl(label string) *Builder { return b.branch(m68k.BPL, label) }

// Dbra appends dbra Dn,label.
func (b *Builder) Dbra(dn uint8, label string) *Builder {
	b.fixups = append(b.fixups, fixup{idx: len(b.ins), label: label})
	return b.I(m68k.Instr{Op: m68k.DBRA, Src: m68k.D(dn), Dst: m68k.Abs(0)})
}

// Control transfer.

// Jmp appends jmp to an absolute code address.
func (b *Builder) Jmp(addr uint32) *Builder {
	return b.I(m68k.Instr{Op: m68k.JMP, Dst: m68k.Abs(addr)})
}

// JmpLabel appends jmp to a label in this routine.
func (b *Builder) JmpLabel(label string) *Builder { return b.branch(m68k.JMP, label) }

// JmpOp appends jmp through an arbitrary effective address (register
// indirect, register+displacement, and so on).
func (b *Builder) JmpOp(ea m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.JMP, Dst: ea})
}

// JmpVia appends the 68020 memory-indirect jump "jmp ([cell])": the
// target is loaded at run time from the memory location the operand
// designates. The executable ready queue threads its context-switch
// chain through TTE cells with exactly this form.
func (b *Builder) JmpVia(cell m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.JMP, Src: cell})
}

// JsrVia appends the memory-indirect call "jsr ([cell])".
func (b *Builder) JsrVia(cell m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.JSR, Src: cell})
}

// Jsr appends jsr to an absolute code address.
func (b *Builder) Jsr(addr uint32) *Builder {
	return b.I(m68k.Instr{Op: m68k.JSR, Dst: m68k.Abs(addr)})
}

// JsrOp appends jsr through an effective address.
func (b *Builder) JsrOp(ea m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.JSR, Dst: ea})
}

// Rts appends rts.
func (b *Builder) Rts() *Builder { return b.I(m68k.Instr{Op: m68k.RTS}) }

// Rte appends rte.
func (b *Builder) Rte() *Builder { return b.I(m68k.Instr{Op: m68k.RTE}) }

// Trap appends trap #n.
func (b *Builder) Trap(n uint8) *Builder {
	return b.I(m68k.Instr{Op: m68k.TRAP, Vec: n})
}

// Kcall appends a host service escape.
func (b *Builder) Kcall(id uint8) *Builder {
	return b.I(m68k.Instr{Op: m68k.KCALL, Vec: id})
}

// Stop appends stop #sr.
func (b *Builder) Stop(sr uint16) *Builder {
	return b.I(m68k.Instr{Op: m68k.STOP, Src: m68k.Imm(int32(sr))})
}

// Halt appends halt.
func (b *Builder) Halt() *Builder { return b.I(m68k.Instr{Op: m68k.HALT}) }

// Privileged state.

// MovemSave appends movem.l mask -> memory at ea.
func (b *Builder) MovemSave(mask uint16, ea m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.MOVEM, Mask: mask, Dir: 0, Dst: ea})
}

// MovemRest appends movem.l memory at ea -> mask.
func (b *Builder) MovemRest(ea m68k.Operand, mask uint16) *Builder {
	return b.I(m68k.Instr{Op: m68k.MOVEM, Mask: mask, Dir: 1, Src: ea})
}

// FmovemSave appends fmovem FP mask -> memory at ea.
func (b *Builder) FmovemSave(mask uint16, ea m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.FMOVEM, Mask: mask, Dir: 0, Dst: ea})
}

// FmovemRest appends fmovem memory at ea -> FP mask.
func (b *Builder) FmovemRest(ea m68k.Operand, mask uint16) *Builder {
	return b.I(m68k.Instr{Op: m68k.FMOVEM, Mask: mask, Dir: 1, Src: ea})
}

// MovecTo appends movec src,ctrl.
func (b *Builder) MovecTo(ctrl uint8, src m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.MOVEC, Vec: ctrl, Src: src})
}

// MovecFrom appends movec ctrl,dst.
func (b *Builder) MovecFrom(ctrl uint8, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.MOVEC, Vec: ctrl, Dst: dst})
}

// MoveFromSR appends move sr,dst (privileged).
func (b *Builder) MoveFromSR(dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.MOVEFSR, Dst: dst})
}

// MoveToSR appends move src,sr (privileged).
func (b *Builder) MoveToSR(src m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.MOVETSR, Src: src})
}

// OrSR appends or.w #imm,sr.
func (b *Builder) OrSR(imm uint16) *Builder {
	return b.I(m68k.Instr{Op: m68k.ORSR, Src: m68k.Imm(int32(imm))})
}

// AndSR appends and.w #imm,sr.
func (b *Builder) AndSR(imm uint16) *Builder {
	return b.I(m68k.Instr{Op: m68k.ANDSR, Src: m68k.Imm(int32(imm))})
}

// Floating point.

// FmoveTo appends fmove src,FPn.
func (b *Builder) FmoveTo(src m68k.Operand, fp uint8) *Builder {
	return b.I(m68k.Instr{Op: m68k.FMOVE, Src: src, Fp: fp})
}

// FmoveFrom appends fmove FPn,dst (dst is a memory operand).
func (b *Builder) FmoveFrom(fp uint8, dst m68k.Operand) *Builder {
	return b.I(m68k.Instr{Op: m68k.FMOVE, Fp: fp, Dst: dst})
}

// Fadd appends fadd src,FPn.
func (b *Builder) Fadd(src m68k.Operand, fp uint8) *Builder {
	return b.I(m68k.Instr{Op: m68k.FADD, Src: src, Fp: fp})
}

// Fmul appends fmul src,FPn.
func (b *Builder) Fmul(src m68k.Operand, fp uint8) *Builder {
	return b.I(m68k.Instr{Op: m68k.FMUL, Src: src, Fp: fp})
}

// ---------------------------------------------------------------------
// In-place patch helpers for executable data structures.

// PatchJmp rewrites the instruction at addr to jmp target. The ready
// queue's context-switch chain is maintained with exactly this patch
// (Figure 3: "a jmp instruction in each context-switch-out procedure
// points to the context-switch-in procedure of the following thread").
func PatchJmp(m *m68k.Machine, addr, target uint32) {
	m.PatchCode(addr, m68k.Instr{Op: m68k.JMP, Dst: m68k.Abs(target)})
}

// PatchJsr rewrites the instruction at addr to jsr target.
func PatchJsr(m *m68k.Machine, addr, target uint32) {
	m.PatchCode(addr, m68k.Instr{Op: m68k.JSR, Dst: m68k.Abs(target)})
}
