package asmkit_test

import (
	"errors"
	"strings"
	"testing"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
)

func newTextM(t *testing.T) *m68k.Machine {
	t.Helper()
	m := m68k.New(m68k.Config{MemSize: 1 << 16, TraceDepth: 64})
	stub := m.Emit([]m68k.Instr{{Op: m68k.HALT}})
	m.VBR = 0x100
	for v := 0; v < m68k.NumVectors; v++ {
		m.Poke(m.VBR+uint32(v)*4, 4, stub)
	}
	m.A[7] = 0x8000
	m.SSP = 0x8000
	return m
}

func runText(t *testing.T, m *m68k.Machine, entry uint32) {
	t.Helper()
	m.PC = entry
	if err := m.Run(1_000_000); !errors.Is(err, m68k.ErrHalted) {
		t.Fatalf("run: %v", err)
	}
}

// TestAssembleSumLoop assembles, links and runs a backward-branching
// loop and checks both a register and an absolute store.
func TestAssembleSumLoop(t *testing.T) {
	b, err := asmkit.Assemble(`
; sum the integers 1..10
        move.l  #10, d1
        clr.l   d0
loop:   add.l   d1, d0      // accumulate
        sub.l   #1, d1
        bne     loop
        move.l  d0, $9000
        halt
`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := newTextM(t)
	runText(t, m, b.Link(m))
	if m.D[0] != 55 {
		t.Errorf("d0 = %d, want 55", m.D[0])
	}
	if got := m.Peek(0x9000, 4); got != 55 {
		t.Errorf("mem[0x9000] = %d, want 55", got)
	}
}

// TestAssembleAddressing exercises lea, post-increment, displacement
// and pre-decrement operands.
func TestAssembleAddressing(t *testing.T) {
	b, err := asmkit.Assemble(`
        lea     0x9100, a0
        move.l  #0x11223344, (a0)+
        move.l  #7, (a0)+
        move.l  #5, -4(a0)      ; overwrite the 7
        move.l  #9, -(a0)       ; and again, predecrementing back
        move.b  #0xFF, 0x9108
        halt
`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := newTextM(t)
	runText(t, m, b.Link(m))
	if got := m.Peek(0x9100, 4); got != 0x11223344 {
		t.Errorf("mem[0x9100] = %#x, want 0x11223344", got)
	}
	if got := m.Peek(0x9104, 4); got != 9 {
		t.Errorf("mem[0x9104] = %d, want 9", got)
	}
	if got := m.Peek(0x9108, 1); got != 0xFF {
		t.Errorf("mem[0x9108] = %#x, want 0xff", got)
	}
	if m.A[0] != 0x9104 {
		t.Errorf("a0 = %#x, want 0x9104", m.A[0])
	}
}

// TestAssembleDbraJsr covers dbra loops and jsr/rts to a label.
func TestAssembleDbraJsr(t *testing.T) {
	b, err := asmkit.Assemble(`
        clr.l   d3
        move.l  #4, d2
again:  jsr     bump
        dbra    d2, again
        halt
bump:   add.l   #1, d3
        rts
`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	m := newTextM(t)
	runText(t, m, b.Link(m))
	if m.D[3] != 5 { // dbra runs the body n+1 times
		t.Errorf("d3 = %d, want 5", m.D[3])
	}
}

// TestAssembleMatchesBuilder checks that the text front end produces
// the same instruction stream as the equivalent builder calls.
func TestAssembleMatchesBuilder(t *testing.T) {
	got, err := asmkit.Assemble(`
start:  move.l  #3, d0
        trap    #0
        kcall   #100
        cmp.l   #0, d0
        beq     start
        rte
`)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	want := asmkit.New()
	want.Label("start")
	want.MoveL(m68k.Imm(3), m68k.D(0))
	want.Trap(0)
	want.Kcall(100)
	want.CmpL(m68k.Imm(0), m68k.D(0))
	want.Beq("start")
	want.Rte()
	g, w := got.Instructions(), want.Instructions()
	if len(g) != len(w) {
		t.Fatalf("instruction count %d, want %d", len(g), len(w))
	}
	for i := range g {
		if g[i] != w[i] {
			t.Errorf("instr %d: %+v, want %+v", i, g[i], w[i])
		}
	}
}

// TestAssembleErrors checks that malformed programs are rejected with
// positioned errors instead of link-time panics.
func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"unknown mnemonic", "frobnicate d0, d1", "unknown mnemonic"},
		{"undefined label", "bra nowhere", "undefined label"},
		{"duplicate label", "x: nop\nx: nop", "duplicate label"},
		{"bad operand", "move.l d0, q9", "cannot parse operand"},
		{"bad arity", "move.l d0", "operand"},
		{"bad lea dst", "lea 0x1000, d0", "address register"},
		{"bad size", "move.q d0, d1", "unknown mnemonic"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := asmkit.Assemble(c.src)
			if err == nil {
				t.Fatalf("Assemble(%q) succeeded, want error", c.src)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}
