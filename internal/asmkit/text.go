package asmkit

import (
	"fmt"
	"strconv"
	"strings"

	"synthesis/internal/m68k"
)

// Text assembler: the front end behind `quamon -watch -program
// <file>`. It accepts a small m68k-style dialect covering the subset
// of the Quamachine ISA that guest workloads use, so a monitoring
// workload can be written as a text file instead of a Go builder
// function.
//
// Grammar, one instruction per line:
//
//	; comment                       (also //)
//	label:  move.l  #0x1234, d0     (label may share a line)
//	        move.l  d0, (a1)+
//	        cmp.l   #10, d0
//	        bne     label
//	        trap    #0
//	        kcall   #100
//
// Mnemonics (case-insensitive): move.l/.w/.b, lea, clr.l/.w/.b,
// add.l, sub.l, mulu, divu, and.l, or.l, eor.l, lsl.l, lsr.l,
// cmp.l/.w/.b, tst.l/.w/.b, the Bcc family (bra, beq, bne, blt, ble,
// bgt, bge, bhi, bls, bcc, bcs, bmi, bpl), dbra, jmp, jsr, rts, rte,
// trap, kcall, stop, halt, nop.
//
// Operands: dN and aN registers, #imm (decimal, 0x…, or $… hex),
// (aN), (aN)+, -(aN), disp(aN), and a bare number for an absolute
// address. Branches, dbra, and jmp take a label; jmp and jsr also
// accept a bare absolute address.

// Assemble parses the source text into a Builder ready to Link. All
// labels are resolved against the program's own label table; an
// undefined or duplicate label is an error, not a link-time panic.
func Assemble(src string) (*Builder, error) {
	b := New()
	for i, raw := range strings.Split(src, "\n") {
		line := raw
		if j := strings.Index(line, ";"); j >= 0 {
			line = line[:j]
		}
		if j := strings.Index(line, "//"); j >= 0 {
			line = line[:j]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if j := strings.Index(line, ":"); j >= 0 && isIdent(strings.TrimSpace(line[:j])) {
			name := strings.TrimSpace(line[:j])
			if _, dup := b.labels[name]; dup {
				return nil, fmt.Errorf("asm: line %d: duplicate label %q", i+1, name)
			}
			b.Label(name)
			line = strings.TrimSpace(line[j+1:])
			if line == "" {
				continue
			}
		}
		if err := asmLine(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %s: %w", i+1, line, err)
		}
	}
	for _, f := range b.fixups {
		if _, ok := b.labels[f.label]; !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
	}
	return b, nil
}

// isIdent reports whether s is a plausible label name (letters,
// digits, '_', '.', not starting with a digit).
func isIdent(s string) bool {
	if s == "" || (s[0] >= '0' && s[0] <= '9') {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c >= '0' && c <= '9', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// asmLine assembles one mnemonic + operand list into the builder.
func asmLine(b *Builder, line string) error {
	mnem := line
	rest := ""
	if j := strings.IndexAny(line, " \t"); j >= 0 {
		mnem, rest = line[:j], strings.TrimSpace(line[j+1:])
	}
	mnem = strings.ToLower(mnem)
	args := splitOperands(rest)

	op, sz, ok := opFor(mnem)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}

	want, gotOk := arity(mnem, len(args))
	if !gotOk {
		return fmt.Errorf("%s wants %s operand(s), got %d", mnem, want, len(args))
	}

	switch {
	case isBranchMnem(mnem): // bcc family, dbra, jmp/jsr with label
		return asmBranch(b, mnem, op, args)
	case mnem == "trap", mnem == "kcall", mnem == "stop":
		n, err := parseInt(strings.TrimPrefix(args[0], "#"))
		if err != nil {
			return fmt.Errorf("%s target: %w", mnem, err)
		}
		switch mnem {
		case "trap":
			b.Trap(uint8(n))
		case "kcall":
			b.Kcall(uint8(n))
		case "stop":
			b.Stop(uint16(n))
		}
		return nil
	case len(args) == 0:
		b.I(m68k.Instr{Op: op})
		return nil
	case len(args) == 1:
		o, err := parseOperand(args[0])
		if err != nil {
			return err
		}
		if op == m68k.TST {
			b.Tst(sz, o)
		} else {
			b.I(m68k.Instr{Op: op, Sz: sz, Dst: o})
		}
		return nil
	default:
		src, err := parseOperand(args[0])
		if err != nil {
			return err
		}
		dst, err := parseOperand(args[1])
		if err != nil {
			return err
		}
		if op == m68k.LEA {
			if dst.Mode != m68k.ModeAReg {
				return fmt.Errorf("lea destination must be an address register, got %q", args[1])
			}
			b.Lea(src, dst.Reg)
			return nil
		}
		b.I(m68k.Instr{Op: op, Sz: sz, Src: src, Dst: dst})
		return nil
	}
}

// opFor maps a mnemonic (with optional size suffix) to the ISA op and
// operand size.
func opFor(mnem string) (m68k.Op, uint8, bool) {
	base, sz := mnem, uint8(4)
	if j := strings.IndexByte(mnem, '.'); j >= 0 {
		base = mnem[:j]
		switch mnem[j+1:] {
		case "l":
			sz = 4
		case "w":
			sz = 2
		case "b":
			sz = 1
		default:
			return 0, 0, false
		}
	}
	ops := map[string]m68k.Op{
		"move": m68k.MOVE, "lea": m68k.LEA, "clr": m68k.CLR,
		"add": m68k.ADD, "sub": m68k.SUB, "mulu": m68k.MULU,
		"divu": m68k.DIVU, "and": m68k.AND, "or": m68k.OR,
		"eor": m68k.EOR, "lsl": m68k.LSL, "lsr": m68k.LSR,
		"cmp": m68k.CMP, "tst": m68k.TST,
		"bra": m68k.BRA, "beq": m68k.BEQ, "bne": m68k.BNE,
		"blt": m68k.BLT, "ble": m68k.BLE, "bgt": m68k.BGT,
		"bge": m68k.BGE, "bhi": m68k.BHI, "bls": m68k.BLS,
		"bcc": m68k.BCC, "bcs": m68k.BCS, "bmi": m68k.BMI,
		"bpl": m68k.BPL, "dbra": m68k.DBRA,
		"jmp": m68k.JMP, "jsr": m68k.JSR,
		"rts": m68k.RTS, "rte": m68k.RTE, "trap": m68k.TRAP,
		"kcall": m68k.KCALL, "stop": m68k.STOP,
		"halt": m68k.HALT, "nop": m68k.NOP,
	}
	op, ok := ops[base]
	return op, sz, ok
}

// arity validates the operand count for a mnemonic; want describes the
// expectation for the error message.
func arity(mnem string, got int) (want string, ok bool) {
	base := mnem
	if j := strings.IndexByte(base, '.'); j >= 0 {
		base = base[:j]
	}
	switch base {
	case "rts", "rte", "halt", "nop":
		return "0", got == 0
	case "bra", "beq", "bne", "blt", "ble", "bgt", "bge", "bhi",
		"bls", "bcc", "bcs", "bmi", "bpl", "jmp", "jsr",
		"trap", "kcall", "stop", "clr", "tst":
		return "1", got == 1
	default:
		return "2", got == 2
	}
}

func isBranchMnem(mnem string) bool {
	switch mnem {
	case "bra", "beq", "bne", "blt", "ble", "bgt", "bge", "bhi",
		"bls", "bcc", "bcs", "bmi", "bpl", "dbra", "jmp", "jsr":
		return true
	}
	return false
}

// asmBranch handles the label-target instructions. jmp and jsr also
// accept a bare absolute address.
func asmBranch(b *Builder, mnem string, op m68k.Op, args []string) error {
	target := args[len(args)-1]
	if mnem == "dbra" {
		reg, err := parseOperand(args[0])
		if err != nil {
			return err
		}
		if reg.Mode != m68k.ModeDReg {
			return fmt.Errorf("dbra counter must be a data register, got %q", args[0])
		}
		if !isIdent(target) {
			return fmt.Errorf("dbra target must be a label, got %q", target)
		}
		b.Dbra(reg.Reg, target)
		return nil
	}
	if mnem == "jmp" || mnem == "jsr" {
		if n, err := parseInt(target); err == nil {
			if mnem == "jmp" {
				b.Jmp(uint32(n))
			} else {
				b.Jsr(uint32(n))
			}
			return nil
		}
	}
	if !isIdent(target) {
		return fmt.Errorf("%s target must be a label, got %q", mnem, target)
	}
	if mnem == "jsr" {
		// No builder helper for jsr-to-label; record the fixup directly.
		b.fixups = append(b.fixups, fixup{idx: len(b.ins), label: target})
		b.I(m68k.Instr{Op: m68k.JSR, Dst: m68k.Abs(0)})
		return nil
	}
	b.branch(op, target)
	return nil
}

// splitOperands splits on top-level commas (commas inside parentheses
// belong to the operand).
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

// parseOperand parses one effective-address operand.
func parseOperand(s string) (m68k.Operand, error) {
	s = strings.TrimSpace(s)
	low := strings.ToLower(s)
	zero := m68k.Operand{}
	if r, ok := parseReg(low); ok {
		return r, nil
	}
	switch {
	case strings.HasPrefix(s, "#"):
		n, err := parseInt(s[1:])
		if err != nil {
			return zero, fmt.Errorf("immediate %q: %w", s, err)
		}
		return m68k.Imm(int32(n)), nil
	case strings.HasPrefix(low, "-("):
		an, err := parseAReg(low, "-(", ")")
		if err != nil {
			return zero, err
		}
		return m68k.PreDec(an), nil
	case strings.HasSuffix(low, ")+"):
		an, err := parseAReg(low, "(", ")+")
		if err != nil {
			return zero, err
		}
		return m68k.PostInc(an), nil
	case strings.HasPrefix(low, "("):
		an, err := parseAReg(low, "(", ")")
		if err != nil {
			return zero, err
		}
		return m68k.Ind(an), nil
	}
	if j := strings.IndexByte(low, '('); j > 0 && strings.HasSuffix(low, ")") {
		disp, err := parseInt(low[:j])
		if err != nil {
			return zero, fmt.Errorf("displacement in %q: %w", s, err)
		}
		an, err := parseAReg(low[j:], "(", ")")
		if err != nil {
			return zero, err
		}
		return m68k.Disp(int32(disp), an), nil
	}
	if n, err := parseInt(low); err == nil {
		return m68k.Abs(uint32(n)), nil
	}
	return zero, fmt.Errorf("cannot parse operand %q", s)
}

// parseReg recognizes dN / aN / sp.
func parseReg(low string) (m68k.Operand, bool) {
	if low == "sp" {
		return m68k.A(7), true
	}
	if len(low) == 2 && low[1] >= '0' && low[1] <= '7' {
		n := low[1] - '0'
		switch low[0] {
		case 'd':
			return m68k.D(n), true
		case 'a':
			return m68k.A(n), true
		}
	}
	return m68k.Operand{}, false
}

// parseAReg extracts the address register between the given prefix and
// suffix, e.g. "(a0)+" with prefix "(" suffix ")+".
func parseAReg(low, prefix, suffix string) (uint8, error) {
	inner := strings.TrimSuffix(strings.TrimPrefix(low, prefix), suffix)
	inner = strings.TrimSpace(inner)
	if inner == "sp" {
		return 7, nil
	}
	if len(inner) == 2 && inner[0] == 'a' && inner[1] >= '0' && inner[1] <= '7' {
		return inner[1] - '0', nil
	}
	return 0, fmt.Errorf("expected address register, got %q", inner)
}

// parseInt parses a decimal, 0x-hex, or $-hex integer literal.
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg, s = true, s[1:]
	}
	var n uint64
	var err error
	switch {
	case strings.HasPrefix(strings.ToLower(s), "0x"):
		n, err = strconv.ParseUint(s[2:], 16, 32)
	case strings.HasPrefix(s, "$"):
		n, err = strconv.ParseUint(s[1:], 16, 32)
	default:
		n, err = strconv.ParseUint(s, 10, 32)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(n), nil
	}
	return int64(n), nil
}
