package prof_test

import (
	"testing"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	"synthesis/internal/prof"
)

// The acceptance bar for the measurement plane is zero measurable VM
// slowdown with profiling disabled: the only added work in the step
// loop is one nil-interface check. Compare
//
//	go test ./internal/prof -bench StepOverhead -benchtime 2s
//
// BenchmarkStepOverheadDisabled against the baseline in version
// control; BenchmarkStepOverheadEnabled shows the (acceptable,
// opt-in) cost of attribution.

func spinMachine(b *testing.B) (*m68k.Machine, uint32, int) {
	b.Helper()
	m := m68k.New(m68k.Config{MemSize: 1 << 16})
	bb := asmkit.New()
	bb.Label("spin")
	bb.AddL(m68k.Imm(1), m68k.D(0))
	bb.Bra("spin")
	entry := bb.Link(m)
	m.PC = entry
	m.A[7] = 0x8000
	m.SSP = 0x8000
	return m, entry, bb.Len()
}

func BenchmarkStepOverheadDisabled(b *testing.B) {
	m, _, _ := spinMachine(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepOverheadEnabled(b *testing.B) {
	m, entry, n := spinMachine(b)
	p := prof.Enable(m, 0)
	p.RegisterRegion("spin", entry, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
