package prof

import (
	"math"
	"testing"
)

// TestClockMapRoundTrip exercises cycles→wall→cycles at several
// simulated clock rates, with sync points spaced unevenly the way a
// chunked fleet driver produces them.
func TestClockMapRoundTrip(t *testing.T) {
	for _, mhz := range []float64{1, 16, 25, 1000} {
		cm := NewClockMap(mhz)
		// Uneven host scheduling: equal cycle chunks take varying
		// wall time.
		cycle := uint64(0)
		wall := int64(0)
		walls := []int64{100_000, 250_000, 80_000, 500_000, 120_000}
		for _, dw := range walls {
			cm.Sync(cycle, wall)
			cycle += 4096
			wall += dw
		}
		cm.Sync(cycle, wall)

		for q := uint64(0); q <= cycle; q += 512 {
			w := cm.WallNS(q)
			back := cm.CycleAt(w)
			// Round-trip tolerance: one interpolation quantum. The
			// wall resolution of a cycle is at most maxWallStep/4096
			// ns per cycle; allow a few cycles of slack for float
			// rounding.
			diff := int64(back) - int64(q)
			if diff < 0 {
				diff = -diff
			}
			if diff > 4 {
				t.Fatalf("mhz=%v cycle %d → wall %d → cycle %d (diff %d)", mhz, q, w, back, diff)
			}
		}

		// Interpolated wall times must be monotone in cycles.
		prev := cm.WallNS(0)
		for q := uint64(1); q <= cycle; q += 97 {
			w := cm.WallNS(q)
			if w < prev {
				t.Fatalf("mhz=%v wall went backwards at cycle %d: %d < %d", mhz, q, w, prev)
			}
			prev = w
		}
	}
}

// TestClockMapExtrapolation checks that queries outside the sync
// range run at the simulated rate from the nearest anchor, and that
// an empty map degenerates to pure simulated time.
func TestClockMapExtrapolation(t *testing.T) {
	cm := NewClockMap(16) // 16 MHz ⇒ 62.5 ns/cycle
	if got := cm.WallNS(1600); got != 100_000 {
		t.Fatalf("empty map: WallNS(1600) = %d, want 100000", got)
	}
	cm.Sync(10_000, 1_000_000)
	cm.Sync(20_000, 2_000_000)
	// 1600 cycles past the last sync at 62.5 ns/cycle = 100 µs.
	if got := cm.WallNS(21_600); got != 2_100_000 {
		t.Fatalf("forward extrapolation: got %d, want 2100000", got)
	}
	// 1600 cycles before the first sync.
	if got := cm.WallNS(8_400); got != 900_000 {
		t.Fatalf("backward extrapolation: got %d, want 900000", got)
	}
	// CycleAt beyond the last sync.
	if got := cm.CycleAt(2_100_000); got != 21_600 {
		t.Fatalf("CycleAt forward: got %d, want 21600", got)
	}
	// CycleAt before cycle zero clamps at 0.
	cm2 := NewClockMap(16)
	cm2.Sync(100, 1_000_000)
	if got := cm2.CycleAt(0); got != 0 {
		t.Fatalf("CycleAt clamp: got %d, want 0", got)
	}
}

// TestClockMapRestart simulates a VM restart: the cycle counter
// resets to near zero while wall time keeps advancing. The map must
// re-anchor on the new epoch and keep the wall axis monotonic.
func TestClockMapRestart(t *testing.T) {
	cm := NewClockMap(16)
	cm.Sync(1_000_000, 10_000_000)
	cm.Sync(2_000_000, 20_000_000)
	before := cm.WallNS(2_000_000)

	// Restart: cycles drop to 4096, wall keeps going.
	cm.Sync(4096, 25_000_000)
	cm.Sync(8192, 26_000_000)
	if cm.Syncs() != 2 {
		t.Fatalf("old epoch not dropped: %d syncs", cm.Syncs())
	}
	after := cm.WallNS(4096)
	if after < before {
		t.Fatalf("wall axis ran backwards across restart: %d < %d", after, before)
	}
	if got := cm.WallNS(6144); got != 25_500_000 {
		t.Fatalf("post-restart interpolation: got %d, want 25500000", got)
	}

	// A wall reading that itself runs backwards is clamped.
	cm.Sync(12_288, 25_900_000)
	if got := cm.WallNS(12_288); got < 26_000_000 {
		t.Fatalf("wall clamp failed: got %d, want >= 26000000", got)
	}
}

// TestClockMapOverflow anchors sync points near the top of the uint64
// cycle range and checks interpolation and extrapolation stay exact —
// the delta arithmetic must not overflow or lose the anchor.
func TestClockMapOverflow(t *testing.T) {
	top := uint64(math.MaxUint64)
	cm := NewClockMap(1000) // 1 ns/cycle: deltas map 1:1 to ns
	cm.Sync(top-20_000, 1_000_000)
	cm.Sync(top-10_000, 1_020_000)
	if got := cm.WallNS(top - 15_000); got != 1_010_000 {
		t.Fatalf("interpolation near top: got %d, want 1010000", got)
	}
	// Extrapolate right up to the counter limit.
	if got := cm.WallNS(top); got != 1_030_000 {
		t.Fatalf("extrapolation to MaxUint64: got %d, want 1030000", got)
	}
	if got := cm.CycleAt(1_030_000); got != top {
		t.Fatalf("CycleAt at top: got %d, want %d", got, top)
	}
	// A wrap (cycle below the last sync) re-anchors as a new epoch
	// rather than producing a huge bogus delta.
	cm.Sync(100, 1_040_000)
	if got := cm.WallNS(100); got != 1_040_000 {
		t.Fatalf("post-wrap anchor: got %d, want 1040000", got)
	}
	if got := cm.WallNS(1100); got != 1_041_000 {
		t.Fatalf("post-wrap extrapolation: got %d, want 1041000", got)
	}
}

// TestClockMapSyncCap checks the bounded ring keeps the most recent
// points.
func TestClockMapSyncCap(t *testing.T) {
	cm := NewClockMap(16)
	cm.cap = 8
	for i := 0; i < 100; i++ {
		cm.Sync(uint64(i)*1000, int64(i)*100_000)
	}
	if cm.Syncs() != 8 {
		t.Fatalf("cap not enforced: %d syncs", cm.Syncs())
	}
	// Recent range still interpolates exactly.
	if got := cm.WallNS(98_500); got != 9_850_000 {
		t.Fatalf("recent interpolation after cap: got %d, want 9850000", got)
	}
}
