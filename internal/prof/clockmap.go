package prof

import "sync"

// ClockMap maps one machine's cycle clock onto a host wall clock.
//
// A cycle-stepped VM has two times: the simulated one (Machine.Clock()
// cycles, converted to simulated microseconds by ClockMHz) and the
// wall-clock instants at which the host actually executed those
// cycles — a fleet driver runs each VM in bounded chunks interleaved
// with its siblings, so a cycle's wall time depends on host
// scheduling, not on ClockMHz. The map learns the relation from
// periodic sync points (a (cycle, wall-nanosecond) pair recorded at
// each chunk boundary, where the driver holds both clocks in hand)
// and answers WallNS/CycleAt by interpolating between the bracketing
// sync points. Outside the observed range it extrapolates at
// ClockMHz, the only rate available before the first chunk lands.
//
// A cycle source that jumps backwards (a VM restart, or a uint64
// wrap) starts a new epoch: the map re-anchors on the new cycle base
// and keeps the wall axis monotonic — queries always answer in the
// current epoch.
type ClockMap struct {
	mu   sync.Mutex
	mhz  float64
	sync []syncPoint // current epoch, ascending in both axes
	cap  int
}

type syncPoint struct {
	cycle uint64
	wall  int64 // nanoseconds on the caller's wall axis
}

// defaultSyncCap bounds the retained sync points; older points slide
// out (traced requests complete within a few chunks, so only the
// recent window matters).
const defaultSyncCap = 4096

// NewClockMap creates a map for a machine running at mhz (the
// simulated clock rate, used for extrapolation until sync points
// bracket the query).
func NewClockMap(mhz float64) *ClockMap {
	if mhz <= 0 {
		mhz = 1
	}
	return &ClockMap{mhz: mhz, cap: defaultSyncCap}
}

// Sync records one (cycle, wall) observation. Cycles must come from
// one machine's Clock(); wall is nanoseconds on any fixed axis (the
// cluster uses time.Since(start)). A cycle below the previous sync's
// re-anchors (new epoch); a wall reading below the previous one is
// clamped so the wall axis never runs backwards.
func (cm *ClockMap) Sync(cycle uint64, wallNS int64) {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	if n := len(cm.sync); n > 0 {
		last := cm.sync[n-1]
		if cycle < last.cycle {
			// Restart or counter wrap: drop the old epoch, keep the
			// wall axis where it was.
			cm.sync = cm.sync[:0]
		}
		if wallNS < last.wall {
			wallNS = last.wall
		}
		if cycle == last.cycle && len(cm.sync) > 0 {
			cm.sync[len(cm.sync)-1].wall = wallNS
			return
		}
	}
	cm.sync = append(cm.sync, syncPoint{cycle: cycle, wall: wallNS})
	if len(cm.sync) > cm.cap {
		cm.sync = append(cm.sync[:0], cm.sync[len(cm.sync)-cm.cap:]...)
	}
}

// WallNS maps a cycle to wall nanoseconds: linear interpolation
// between the bracketing sync points, ClockMHz extrapolation beyond
// them. With no sync points the map degenerates to pure simulated
// time (cycles/mhz).
func (cm *ClockMap) WallNS(cycle uint64) int64 {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	n := len(cm.sync)
	if n == 0 {
		return cm.extrapolate(syncPoint{}, cycle)
	}
	if cycle <= cm.sync[0].cycle {
		return cm.extrapolate(cm.sync[0], cycle)
	}
	if cycle >= cm.sync[n-1].cycle {
		return cm.extrapolate(cm.sync[n-1], cycle)
	}
	// Binary search for the first sync past the query.
	lo, hi := 0, n-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if cm.sync[mid].cycle <= cycle {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := cm.sync[lo], cm.sync[hi]
	span := b.cycle - a.cycle // > 0 by construction
	frac := float64(cycle-a.cycle) / float64(span)
	return a.wall + int64(frac*float64(b.wall-a.wall))
}

// extrapolate projects from an anchor at the simulated rate. Cycle
// deltas are taken as uint64 differences in either direction, so
// anchors near the top of the counter range stay exact.
func (cm *ClockMap) extrapolate(from syncPoint, cycle uint64) int64 {
	if cycle >= from.cycle {
		return from.wall + int64(float64(cycle-from.cycle)*1e3/cm.mhz)
	}
	return from.wall - int64(float64(from.cycle-cycle)*1e3/cm.mhz)
}

// CycleAt inverts WallNS: the cycle the machine was (or would be) at
// when the wall clock read wallNS. The same interpolation and
// extrapolation rules apply.
func (cm *ClockMap) CycleAt(wallNS int64) uint64 {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	n := len(cm.sync)
	if n == 0 {
		return cm.cycleFrom(syncPoint{}, wallNS)
	}
	if wallNS <= cm.sync[0].wall {
		return cm.cycleFrom(cm.sync[0], wallNS)
	}
	if wallNS >= cm.sync[n-1].wall {
		return cm.cycleFrom(cm.sync[n-1], wallNS)
	}
	lo, hi := 0, n-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if cm.sync[mid].wall <= wallNS {
			lo = mid
		} else {
			hi = mid
		}
	}
	a, b := cm.sync[lo], cm.sync[hi]
	if b.wall == a.wall {
		return a.cycle
	}
	frac := float64(wallNS-a.wall) / float64(b.wall-a.wall)
	return a.cycle + uint64(frac*float64(b.cycle-a.cycle))
}

// cycleFrom projects a wall reading to a cycle from an anchor at the
// simulated rate, clamping below the epoch base (cycles are unsigned;
// a query before the anchor's wall time cannot go below cycle 0).
func (cm *ClockMap) cycleFrom(from syncPoint, wallNS int64) uint64 {
	if wallNS >= from.wall {
		d := uint64(float64(wallNS-from.wall) * cm.mhz / 1e3)
		return from.cycle + d
	}
	d := uint64(float64(from.wall-wallNS) * cm.mhz / 1e3)
	if d > from.cycle {
		return 0
	}
	return from.cycle - d
}

// Syncs reports how many sync points the current epoch holds (tests
// and diagnostics).
func (cm *ClockMap) Syncs() int {
	cm.mu.Lock()
	defer cm.mu.Unlock()
	return len(cm.sync)
}
