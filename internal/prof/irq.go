package prof

import "math/bits"

// LatencyHist accumulates interrupt raise-to-handler-entry latencies
// for one IPL level. Buckets are log2 cycle ranges: bucket i holds
// latencies in [2^(i-1), 2^i) cycles, with bucket 0 for zero-cycle
// dispatches (interrupt taken on the raising step's boundary) and the
// last bucket absorbing everything at or beyond 2^15 cycles.
//
// Section 5.3's bound — interrupts stay disabled only for the handful
// of instructions that commit a queue operation — translates here to
// the expectation that latencies stay within the current instruction
// plus exception-dispatch cost, i.e. the low buckets.
type LatencyHist struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Buckets [17]uint64
}

// Add records one latency measurement in cycles.
func (h *LatencyHist) Add(lat uint64) {
	if h.Count == 0 || lat < h.Min {
		h.Min = lat
	}
	if lat > h.Max {
		h.Max = lat
	}
	h.Count++
	h.Sum += lat
	b := bits.Len64(lat) // 0 for 0, k for [2^(k-1), 2^k)
	if b >= len(h.Buckets) {
		b = len(h.Buckets) - 1
	}
	h.Buckets[b]++
}

// Mean returns the average latency in cycles (0 when empty).
func (h *LatencyHist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}
