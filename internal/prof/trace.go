package prof

import (
	"encoding/json"
	"io"
	"sort"
)

// Event is one trace record: a complete slice (Ph 'X', one region's
// contiguous run of steps) or an instant (Ph 'i', an exception or
// interrupt dispatch). At and Dur are in machine cycles; export
// converts to microseconds.
type Event struct {
	Name string
	Ph   byte
	At   uint64
	Dur  uint64
}

// DefaultRingDepth bounds the trace ring when Enable is passed 0.
const DefaultRingDepth = 8192

// Ring is a fixed-capacity trace-event buffer that overwrites the
// oldest events when full, counting what it drops. A long run keeps
// its most recent window instead of growing without bound — the same
// policy as the machine's instruction trace.
type Ring struct {
	buf     []Event
	next    int
	full    bool
	dropped uint64
}

// NewRing returns a ring holding up to depth events (0 selects
// DefaultRingDepth).
func NewRing(depth int) *Ring {
	if depth <= 0 {
		depth = DefaultRingDepth
	}
	return &Ring{buf: make([]Event, 0, depth)}
}

// Push appends an event, evicting the oldest when full.
func (r *Ring) Push(ev Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
		return
	}
	r.buf[r.next] = ev
	r.next = (r.next + 1) % len(r.buf)
	r.full = true
	r.dropped++
}

// Len returns the number of retained events.
func (r *Ring) Len() int { return len(r.buf) }

// Cap returns the ring capacity.
func (r *Ring) Cap() int { return cap(r.buf) }

// Dropped returns how many events were evicted.
func (r *Ring) Dropped() uint64 { return r.dropped }

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	out := make([]Event, 0, len(r.buf))
	if r.full {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
	} else {
		out = append(out, r.buf...)
	}
	return out
}

// Chrome trace-event JSON (the about:tracing / Perfetto "JSON Object
// Format"): a traceEvents array of {name, ph, ts, dur, pid, tid}
// records with ts in microseconds.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur,omitempty"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	S    string  `json:"s,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the ring (plus the still-open region
// slice, closed at the current cycle) as Chrome trace JSON. Events
// are sorted by cycle time so ts is monotonic.
func (p *Profiler) WriteChromeTrace(w io.Writer) error {
	evs := p.ring.Events()
	if p.cur >= 0 && p.m.Cycles > p.curStart {
		evs = append(evs, Event{Name: p.regions[p.cur].Name, Ph: 'X', At: p.curStart, Dur: p.m.Cycles - p.curStart})
	}
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	out := traceFile{TraceEvents: make([]traceEvent, 0, len(evs)), DisplayTimeUnit: "ns"}
	for _, ev := range evs {
		te := traceEvent{
			Name: ev.Name,
			Ph:   string(ev.Ph),
			Ts:   p.m.Micros(ev.At),
			Pid:  1,
			Tid:  1,
		}
		if ev.Ph == 'X' {
			te.Dur = p.m.Micros(ev.Dur)
		}
		if ev.Ph == 'i' {
			te.S = "g"
		}
		out.TraceEvents = append(out.TraceEvents, te)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
