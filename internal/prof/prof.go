package prof

import (
	"fmt"
	"sort"
	"strings"

	"synthesis/internal/m68k"
	"synthesis/internal/metrics"
)

// Reserved region ids. Region 0 absorbs cycles whose PC is in no
// registered range (boot trampolines, test scaffolding); region 1
// absorbs stopped-time (the cycle jumps the machine makes while
// waiting for the next device event).
const (
	idUnattributed = 0
	idIdle         = 1
)

// Region is one named extent of code space plus the execution charged
// to it. Pseudo-regions (synthesis time, idle) have Len == 0 and no
// address range.
type Region struct {
	Name   string
	Base   uint32
	Len    int
	Cycles uint64
	Instrs uint64
}

// Profiler implements m68k.Probe and synth.RegionSink. One profiler
// serves one machine.
type Profiler struct {
	m       *m68k.Machine
	regions []Region
	ids     map[string]int
	// pcMap maps each code-space slot to the owning region id; slot
	// granularity makes the per-step lookup one bounds check and one
	// slice index.
	pcMap    []uint16
	start    uint64 // machine cycle count when profiling began
	cur      int    // region executing the open trace slice
	curStart uint64 // cycle the open slice began
	irq      [8]LatencyHist
	excCount [m68k.NumVectors]uint64
	ring     *Ring
	// mIRQ mirrors the per-level latency histograms into the metrics
	// registry when both planes are on (PublishTo). Nil handles are
	// no-ops, so an unpublished profiler pays only a nil check.
	mIRQ [8]*metrics.Hist

	// OnIRQ, when set, observes every interrupt dispatch (level,
	// vector, raise and entry cycle). The fleet trace plane uses it to
	// stamp a sampled request's IRQ-entry hop. Nil — the default —
	// costs one nil check per interrupt.
	OnIRQ func(level, vec int, raisedAt, takenAt uint64)
	// OnRegionEnter, when set, observes every transition into a named
	// region (pseudo-regions and (idle) excluded) with the cycle the
	// region's first step began. Called only when the executing region
	// changes, never per step.
	OnRegionEnter func(name string, at uint64)
}

// Enable attaches a new profiler to the machine and returns it.
// ringDepth bounds the trace-event ring (0 selects the default).
func Enable(m *m68k.Machine, ringDepth int) *Profiler {
	p := &Profiler{
		m:     m,
		ids:   map[string]int{},
		start: m.Clock(),
		ring:  NewRing(ringDepth),
	}
	p.regions = []Region{{Name: "(unattributed)"}, {Name: "(idle)"}}
	p.ids["(unattributed)"] = idUnattributed
	p.ids["(idle)"] = idIdle
	p.cur = -1
	m.Probe = p
	return p
}

// Of returns the profiler attached to m, or nil.
func Of(m *m68k.Machine) *Profiler {
	p, _ := m.Probe.(*Profiler)
	return p
}

// RegisterRegion names the code-space extent [base, base+instrs).
// Re-registering an existing name repoints it: in-place or moved
// resynthesis (context-switch rewrite, net_intr rebuild on socket
// open) keeps charging the same logical region. Pseudo-regions pass
// instrs == 0 and get no address range.
func (p *Profiler) RegisterRegion(name string, base uint32, instrs int) {
	id, ok := p.ids[name]
	if !ok {
		id = len(p.regions)
		if id > 0xFFFF {
			return // pcMap id space exhausted; drop silently
		}
		p.regions = append(p.regions, Region{Name: name, Base: base, Len: instrs})
		p.ids[name] = id
	} else {
		p.regions[id].Base = base
		p.regions[id].Len = instrs
	}
	if instrs <= 0 {
		return
	}
	end := int(base) + instrs
	if end > len(p.pcMap) {
		p.pcMap = append(p.pcMap, make([]uint16, end-len(p.pcMap))...)
	}
	for i := base; i < base+uint32(instrs); i++ {
		p.pcMap[i] = uint16(id)
	}
}

// regionAt resolves a PC to a region id.
func (p *Profiler) regionAt(pc uint32) int {
	if int(pc) < len(p.pcMap) {
		return int(p.pcMap[pc])
	}
	return idUnattributed
}

// StepDone implements m68k.Probe: charge the step's cycle and
// instruction deltas to the region owning the step's PC, and maintain
// the trace-slice ring across region changes.
func (p *Profiler) StepDone(pc uint32, cycles, instrs uint64, idle bool) {
	id := idIdle
	if !idle {
		id = p.regionAt(pc)
	}
	p.regions[id].Cycles += cycles
	p.regions[id].Instrs += instrs
	if id != p.cur {
		stepStart := p.m.Clock() - cycles
		if p.cur >= 0 && stepStart > p.curStart {
			p.ring.Push(Event{Name: p.regions[p.cur].Name, Ph: 'X', At: p.curStart, Dur: stepStart - p.curStart})
		}
		p.cur = id
		p.curStart = stepStart
		if p.OnRegionEnter != nil && id > idIdle {
			p.OnRegionEnter(p.regions[id].Name, stepStart)
		}
	}
}

// ExceptionTaken implements m68k.Probe: count per-vector exception
// dispatches and drop an instant event in the trace.
func (p *Profiler) ExceptionTaken(vec int, pc uint32, at uint64) {
	if vec >= 0 && vec < len(p.excCount) {
		p.excCount[vec]++
	}
	p.ring.Push(Event{Name: fmt.Sprintf("exception v%d", vec), Ph: 'i', At: at})
}

// InterruptTaken implements m68k.Probe: histogram the raise-to-entry
// latency per IPL level.
func (p *Profiler) InterruptTaken(level, vec int, raisedAt, takenAt uint64) {
	if level < 0 || level >= len(p.irq) {
		return
	}
	var lat uint64
	if raisedAt != 0 && takenAt >= raisedAt {
		lat = takenAt - raisedAt
	}
	p.irq[level].Add(lat)
	p.mIRQ[level].Observe(lat)
	p.ring.Push(Event{Name: fmt.Sprintf("irq l%d", level), Ph: 'i', At: takenAt})
	if p.OnIRQ != nil {
		p.OnIRQ(level, vec, raisedAt, takenAt)
	}
}

// Charged implements m68k.Probe: host-side cycle charges landing
// between instructions (e.g. boot-time synthesis with charging on)
// accumulate under a "(what)" pseudo-region.
func (p *Profiler) Charged(cycles uint64, what string) {
	name := "(" + what + ")"
	id, ok := p.ids[name]
	if !ok {
		id = len(p.regions)
		p.regions = append(p.regions, Region{Name: name})
		p.ids[name] = id
	}
	p.regions[id].Cycles += cycles
}

// PublishTo mirrors the profiler's per-level IRQ-latency histograms
// into the metrics registry as prof.irq.l<level>.latency_cycles.
// Observations are in Machine.Clock() cycles, the shared time base of
// both planes (divide by ClockMHz for microseconds; the snapshot
// carries the rate).
func (p *Profiler) PublishTo(reg *metrics.Registry) {
	for l := range p.mIRQ {
		p.mIRQ[l] = reg.Hist(fmt.Sprintf("prof.irq.l%d.latency_cycles", l))
	}
}

// Window returns the cycles elapsed on the machine since Enable.
func (p *Profiler) Window() uint64 { return p.m.Clock() - p.start }

// Attributed returns the cycles charged to any region, named or
// pseudo, other than (unattributed).
func (p *Profiler) Attributed() uint64 {
	var sum uint64
	for i, r := range p.regions {
		if i == idUnattributed {
			continue
		}
		sum += r.Cycles
	}
	return sum
}

// Coverage returns Attributed over Window (0 when the window is
// empty). The Table 1 acceptance bar is 0.95.
func (p *Profiler) Coverage() float64 {
	w := p.Window()
	if w == 0 {
		return 0
	}
	return float64(p.Attributed()) / float64(w)
}

// IRQ returns the latency histogram for one IPL level.
func (p *Profiler) IRQ(level int) *LatencyHist {
	if level < 0 || level >= len(p.irq) {
		return nil
	}
	return &p.irq[level]
}

// Exceptions returns the dispatch count for one vector.
func (p *Profiler) Exceptions(vec int) uint64 {
	if vec < 0 || vec >= len(p.excCount) {
		return 0
	}
	return p.excCount[vec]
}

// Ring returns the trace-event ring.
func (p *Profiler) Ring() *Ring { return p.ring }

// RegionStat is one row of the attribution report.
type RegionStat struct {
	Name   string
	Cycles uint64
	Instrs uint64
	Share  float64 // fraction of the profiling window
}

// Top returns the n regions with the most cycles, descending,
// skipping regions that never executed.
func (p *Profiler) Top(n int) []RegionStat {
	w := p.Window()
	stats := make([]RegionStat, 0, len(p.regions))
	for _, r := range p.regions {
		if r.Cycles == 0 {
			continue
		}
		s := RegionStat{Name: r.Name, Cycles: r.Cycles, Instrs: r.Instrs}
		if w > 0 {
			s.Share = float64(r.Cycles) / float64(w)
		}
		stats = append(stats, s)
	}
	sort.SliceStable(stats, func(i, j int) bool { return stats[i].Cycles > stats[j].Cycles })
	if n > 0 && len(stats) > n {
		stats = stats[:n]
	}
	return stats
}

// Report renders the top-n table plus coverage and interrupt-latency
// summaries, in the fixed-width style of the bench tables.
func (p *Profiler) Report(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %14s %12s %7s\n", "region", "cycles", "instrs", "share")
	for _, s := range p.Top(n) {
		fmt.Fprintf(&b, "%-32s %14d %12d %6.1f%%\n", s.Name, s.Cycles, s.Instrs, 100*s.Share)
	}
	fmt.Fprintf(&b, "coverage: %.1f%% of %d cycles attributed\n", 100*p.Coverage(), p.Window())
	for l := len(p.irq) - 1; l >= 1; l-- {
		h := &p.irq[l]
		if h.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, "irq l%d latency: n=%d mean=%.0f min=%d max=%d cycles\n",
			l, h.Count, h.Mean(), h.Min, h.Max)
	}
	if d := p.ring.Dropped(); d > 0 {
		fmt.Fprintf(&b, "trace ring: %d events dropped (depth %d)\n", d, p.ring.Cap())
	}
	return b.String()
}
