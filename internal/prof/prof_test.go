package prof_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"synthesis/internal/asmkit"
	"synthesis/internal/m68k"
	"synthesis/internal/prof"
)

// newM builds a machine with a vector table pointing at a HALT stub.
func newM(t *testing.T) *m68k.Machine {
	t.Helper()
	m := m68k.New(m68k.Config{MemSize: 1 << 16, TraceDepth: 64})
	stub := m.Emit([]m68k.Instr{{Op: m68k.HALT}})
	m.VBR = 0x100
	for v := 0; v < m68k.NumVectors; v++ {
		m.Poke(m.VBR+uint32(v)*4, 4, stub)
	}
	m.A[7] = 0x8000
	m.SSP = 0x8000
	return m
}

func run(t *testing.T, m *m68k.Machine, entry uint32) {
	t.Helper()
	m.PC = entry
	if err := m.Run(10_000_000); !errors.Is(err, m68k.ErrHalted) {
		t.Fatalf("run: %v", err)
	}
}

// TestRegionAttribution runs two registered loops back to back and
// checks that each loop's cycles land in its own region and that
// coverage is complete.
func TestRegionAttribution(t *testing.T) {
	m := newM(t)
	p := prof.Enable(m, 0)

	loop := func(label string, n int32) uint32 {
		b := asmkit.New()
		b.MoveL(m68k.Imm(n), m68k.D(0))
		b.Label("spin")
		b.SubL(m68k.Imm(1), m68k.D(0))
		b.Bne("spin")
		b.Rts()
		entry := b.Link(m)
		p.RegisterRegion(label, entry, b.Len())
		return entry
	}
	a := loop("region.a", 500)
	bb := loop("region.b", 100)

	main := asmkit.New()
	main.Jsr(a)
	main.Jsr(bb)
	main.Halt()
	entry := main.Link(m)
	p.RegisterRegion("region.main", entry, main.Len())

	run(t, m, entry)

	stats := p.Top(0)
	got := map[string]uint64{}
	for _, s := range stats {
		got[s.Name] = s.Cycles
	}
	if got["region.a"] == 0 || got["region.b"] == 0 || got["region.main"] == 0 {
		t.Fatalf("missing regions in %v", got)
	}
	if got["region.a"] <= got["region.b"] {
		t.Errorf("region.a (%d cycles, 500 iters) should outweigh region.b (%d cycles, 100 iters)",
			got["region.a"], got["region.b"])
	}
	// Every executed instruction lives in a registered region, so
	// coverage must be total.
	if c := p.Coverage(); c < 0.999 {
		t.Errorf("coverage = %v, want ~1.0 (unattributed %d of %d cycles)",
			c, p.Window()-p.Attributed(), p.Window())
	}
	// Top(0) is sorted descending.
	for i := 1; i < len(stats); i++ {
		if stats[i].Cycles > stats[i-1].Cycles {
			t.Errorf("Top not sorted: %v", stats)
		}
	}
}

// TestReRegistrationRepoints models resynthesis: the same region name
// registered at a new address keeps one identity and charges to it.
func TestReRegistrationRepoints(t *testing.T) {
	m := newM(t)
	p := prof.Enable(m, 0)

	build := func() (uint32, int) {
		b := asmkit.New()
		b.MoveL(m68k.Imm(10), m68k.D(0))
		b.Label("spin")
		b.SubL(m68k.Imm(1), m68k.D(0))
		b.Bne("spin")
		b.Halt()
		return b.Link(m), b.Len()
	}
	e1, l1 := build()
	p.RegisterRegion("handler", e1, l1)
	run(t, m, e1)
	first := p.Top(0)

	e2, l2 := build() // "resynthesized" at a fresh address
	p.RegisterRegion("handler", e2, l2)
	m.ClearHalt()
	run(t, m, e2)

	var handlers int
	var cycles uint64
	for _, s := range p.Top(0) {
		if s.Name == "handler" {
			handlers++
			cycles = s.Cycles
		}
	}
	if handlers != 1 {
		t.Fatalf("re-registration split the region: %v", p.Top(0))
	}
	if cycles <= first[0].Cycles {
		t.Errorf("second run did not accumulate: %d then %d", first[0].Cycles, cycles)
	}
}

// TestIdleAttribution checks that stopped-machine time lands in the
// (idle) pseudo-region, not in code regions.
func TestIdleAttribution(t *testing.T) {
	m := newM(t)
	p := prof.Enable(m, 0)
	tm := m68k.NewTimer(m)
	m.Attach(tm)

	b := asmkit.New()
	// Arm the timer alarm, then STOP until it fires (vector stub
	// halts).
	b.MoveL(m68k.Imm(2000), m68k.Abs(m68k.TimerBase+m68k.TimerRegAlarm))
	b.Stop(0x2000)
	b.Halt()
	entry := b.Link(m)
	p.RegisterRegion("prog", entry, b.Len())
	run(t, m, entry)

	var idle uint64
	for _, s := range p.Top(0) {
		if s.Name == "(idle)" {
			idle = s.Cycles
		}
	}
	if idle == 0 {
		t.Fatalf("no idle time recorded: %v", p.Top(0))
	}
	if c := p.Coverage(); c < 0.999 {
		t.Errorf("coverage with idle = %v, want ~1.0", c)
	}
}

// TestRingOverflow fills a tiny ring past capacity and checks the
// overwrite-oldest contract.
func TestRingOverflow(t *testing.T) {
	r := prof.NewRing(4)
	for i := 0; i < 10; i++ {
		r.Push(prof.Event{Name: "e", Ph: 'i', At: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Cap() != 4 {
		t.Fatalf("Cap = %d, want 4", r.Cap())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.At != want {
			t.Errorf("event %d: At = %d, want %d (oldest first, oldest evicted)", i, ev.At, want)
		}
	}
}

// TestChromeTraceExport checks the exported trace is valid JSON with
// monotonic timestamps and both event kinds.
func TestChromeTraceExport(t *testing.T) {
	m := newM(t)
	p := prof.Enable(m, 16) // small ring: forces overflow handling too

	loop := func(label string, n int32) uint32 {
		b := asmkit.New()
		b.MoveL(m68k.Imm(n), m68k.D(0))
		b.Label("spin")
		b.SubL(m68k.Imm(1), m68k.D(0))
		b.Bne("spin")
		b.Rts()
		entry := b.Link(m)
		p.RegisterRegion(label, entry, b.Len())
		return entry
	}
	a := loop("t.a", 20)
	bb := loop("t.b", 20)
	main := asmkit.New()
	for i := 0; i < 12; i++ { // many region switches -> many slices
		main.Jsr(a)
		main.Jsr(bb)
	}
	main.Halt()
	entry := main.Link(m)
	p.RegisterRegion("t.main", entry, main.Len())
	run(t, m, entry)

	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}
	last := -1.0
	sawX := false
	for _, ev := range out.TraceEvents {
		if ev.Ts < last {
			t.Fatalf("non-monotonic ts: %v after %v", ev.Ts, last)
		}
		last = ev.Ts
		if ev.Ph == "X" {
			sawX = true
			if ev.Dur < 0 {
				t.Errorf("negative dur on %q", ev.Name)
			}
		}
	}
	if !sawX {
		t.Error("no complete ('X') slices in trace")
	}
}

// TestLatencyHist checks the histogram bucketing and summary stats.
func TestLatencyHist(t *testing.T) {
	var h prof.LatencyHist
	for _, v := range []uint64{0, 1, 3, 8, 1 << 20} {
		h.Add(v)
	}
	if h.Count != 5 {
		t.Fatalf("Count = %d", h.Count)
	}
	if h.Min != 0 || h.Max != 1<<20 {
		t.Errorf("Min/Max = %d/%d", h.Min, h.Max)
	}
	if h.Buckets[0] != 1 { // zero latency
		t.Errorf("bucket 0 = %d, want 1", h.Buckets[0])
	}
	if h.Buckets[1] != 1 { // latency 1
		t.Errorf("bucket 1 = %d, want 1", h.Buckets[1])
	}
	if h.Buckets[2] != 1 { // latency 3 -> [2,4)
		t.Errorf("bucket 2 = %d, want 1", h.Buckets[2])
	}
	if h.Buckets[4] != 1 { // latency 8 -> [8,16)
		t.Errorf("bucket 4 = %d, want 1", h.Buckets[4])
	}
	if h.Buckets[16] != 1 { // clamp
		t.Errorf("overflow bucket = %d, want 1", h.Buckets[16])
	}
	if got := h.Mean(); got != float64(12+1<<20)/5 {
		t.Errorf("Mean = %v", got)
	}
}
