// Package prof is the Quamachine measurement plane: per-region cycle
// and instruction attribution, interrupt-latency histograms, and a
// trace-event ring exportable as Chrome trace JSON.
//
// Section 6.1 of the paper measures everything on the Quamachine's
// built-in instrumentation — microsecond timer, instruction and
// memory-reference counters, tracing hardware. The VM counterpart is
// a Probe attached to the m68k machine: every instruction step is
// attributed to the registered code region containing its PC, so the
// aggregate cycle counts behind Tables 1-6 decompose into named
// quaject routines (e.g. kio.sock3.send) instead of one opaque total.
// The synthesizer registers every routine it emits (synth.Builder's
// Named option), so attribution covers code that did not exist at
// boot.
//
// Attachment is optional and costs nothing when absent: the machine's
// step loop checks a single nil interface before doing any probe
// work. When a metrics.Registry is present the profiler republishes
// its interrupt-latency histograms there (prof.irq.l<ipl>.*), which
// is how they reach quamon -watch and the guest-visible /proc/metrics
// snapshot.
//
// Reports: Top/Report for per-region tables, Coverage for the
// fraction of cycles landing in named regions (the tier-1 acceptance
// bar is 95% across the Table 1 programs), WriteChromeTrace for a
// timeline loadable in about:tracing or ui.perfetto.dev.
package prof
