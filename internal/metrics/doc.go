// Package metrics is the unified observability plane: a lock-free
// registry of named counters, gauges and log-bucketed histograms with
// cheap snapshot/delta views and JSON + Prometheus-text exposition.
//
// The Quamachine measures itself (Section 6.1 of the paper: µs
// interval timer, instruction and memory-reference counters); this
// package gives the rest of the reproduction the same always-on,
// near-zero-cost discipline. Hot paths hold typed handles (*Counter,
// *Gauge, *Hist) and update them with single atomic operations; a
// disabled plane hands out nil handles, on which every update method
// is an inlined nil-check no-op — the same contract as the m68k Probe
// hook. See the Example functions for the handle idiom.
//
// Counters that synthesized Quamachine code maintains in VM memory
// (queue gauges, error tallies, the kernel's spurious-IRQ cell) are
// not mirrored on the hot path at all: they register as *sampled*
// metrics, a closure the registry calls only at Snapshot time. The
// generated code keeps its single AddL to a folded absolute address;
// the registry serves the same cell to every consumer. Sampled names
// are released with UnregisterPrefix when the object they describe
// (a descriptor, a socket) is closed.
//
// Naming follows "<subsystem>.<object>.<metric>" with dots, e.g.
// kio.sock.7.tx_fail or kernel.spurious_irq; the Prometheus
// exposition rewrites dots to underscores and prefixes "synthesis_".
// docs/OBSERVABILITY.md catalogues the names the kernel registers.
//
// A Snapshot is a consistent point-in-time copy; Delta subtracts two
// snapshots and derives rates from the cycle clock the registry is
// bound to (SetClock). The same snapshot serializes through
// WriteJSON/WritePrometheus for the host-side exporters and through
// JSONBytes/PromBytes for the guest-visible /proc/metrics quaject,
// so the VM and the host read literally the same bytes.
package metrics
