package metrics_test

import (
	"testing"

	"synthesis/internal/metrics"
)

// The acceptance bar, mirroring prof's StepOverhead pair: a disabled
// metrics plane hands out nil handles, and the only cost an
// instrumented path pays is the inlined nil check — compare
//
//	go test ./internal/metrics -bench HandleOverhead -benchtime 2s
//
// BenchmarkHandleOverheadDisabled against BenchmarkHandleOverheadEnabled.
// VM-side counters (NQTxFail and friends) pay nothing either way: they
// are sampled cells, read only at Snapshot time.

func BenchmarkHandleOverheadDisabled(b *testing.B) {
	var r *metrics.Registry // disabled plane
	c := r.Counter("bench.ops")
	g := r.Gauge("bench.depth")
	h := r.Hist("bench.lat")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(1)
		h.Observe(uint64(i))
	}
}

func BenchmarkHandleOverheadEnabled(b *testing.B) {
	r := metrics.New()
	c := r.Counter("bench.ops")
	g := r.Gauge("bench.depth")
	h := r.Hist("bench.lat")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
		g.Set(1)
		h.Observe(uint64(i))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := metrics.New()
	for i := 0; i < 32; i++ {
		r.Counter(string(rune('a'+i%26)) + ".ops").Add(uint64(i))
	}
	cell := uint64(7)
	r.Sample("vm.cell", func() uint64 { return cell })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
