package metrics_test

import (
	"fmt"

	"synthesis/internal/metrics"
)

// The handle idiom: a hot path asks the registry for its handles once
// and updates them with single atomic operations. On a nil *Registry
// every constructor returns a nil handle and every update is a
// nil-check no-op, so instrumented code needs no "is the plane on?"
// branches of its own.
func ExampleRegistry_Counter() {
	r := metrics.New()
	sent := r.Counter("kio.sock.9.tx_frames")
	for i := 0; i < 3; i++ {
		sent.Inc()
	}
	sent.Add(2)

	var off *metrics.Registry                 // disabled plane
	off.Counter("kio.sock.9.tx_frames").Inc() // no-op, no panic

	fmt.Println(sent.Value())
	fmt.Println(r.Snapshot().Counters["kio.sock.9.tx_frames"])
	// Output:
	// 5
	// 5
}

// Gauges hold a level rather than a count: queue depths, live-thread
// counts, buffer residency.
func ExampleRegistry_Gauge() {
	r := metrics.New()
	depth := r.Gauge("kio.pipe.0.depth")
	depth.Set(7)
	depth.Set(3) // levels overwrite; they do not accumulate

	fmt.Println(r.Snapshot().Gauges["kio.pipe.0.depth"])
	// Output:
	// 3
}

// Histograms log-bucket their observations: cheap enough for
// per-interrupt latencies, detailed enough for percentile reporting.
func ExampleRegistry_Hist() {
	r := metrics.New()
	lat := r.Hist("prof.irq.l6.latency_cycles")
	for _, cycles := range []uint64{30, 32, 32, 34, 900} {
		lat.Observe(cycles)
	}

	h := r.Snapshot().Hists["prof.irq.l6.latency_cycles"]
	fmt.Println(h.Count, h.Min, h.Max)
	fmt.Printf("p50 within observed range: %v\n",
		h.Quantile(0.5) >= 30 && h.Quantile(0.5) <= 64)
	// Output:
	// 5 30 900
	// p50 within observed range: true
}

// Sampled metrics serve values the hot path already maintains
// elsewhere — typically a cell in Quamachine memory that synthesized
// code bumps with a folded AddL. The closure runs only at Snapshot
// time, so the hot path stays untouched.
func ExampleRegistry_Sample() {
	r := metrics.New()
	cell := uint64(0) // stands in for a VM memory cell
	r.Sample("unixemu.sys.read.calls", func() uint64 { return cell })

	cell = 41 // the guest made 41 read calls
	fmt.Println(r.Snapshot().Counters["unixemu.sys.read.calls"])
	// Output:
	// 41
}

// Delta subtracts two snapshots — the idiom behind quamon -watch's
// per-window rates.
func ExampleSnapshot_Delta() {
	r := metrics.New()
	c := r.Counter("kernel.thread.creates")

	c.Add(2)
	before := r.Snapshot()
	c.Add(5)
	after := r.Snapshot()

	fmt.Println(after.Delta(before).Counters["kernel.thread.creates"])
	// Output:
	// 5
}
