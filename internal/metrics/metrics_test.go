package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// The registry's concurrency contract: handle updates are lock-free
// atomics and may race freely with Snapshot. Run under -race (the
// Makefile's race target includes this package).
func TestConcurrentIncrementAndSnapshot(t *testing.T) {
	r := New()
	c := r.Counter("test.ops")
	g := r.Gauge("test.depth")
	h := r.Hist("test.lat")

	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(uint64(i % 100))
			}
		}(w)
	}
	// Snapshot continuously while the writers run.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			s := r.Snapshot()
			if s.Counters["test.ops"] > workers*perWorker {
				t.Errorf("snapshot counter overshot: %d", s.Counters["test.ops"])
				return
			}
		}
	}()
	wg.Wait()
	<-done

	s := r.Snapshot()
	if got := s.Counters["test.ops"]; got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := s.Hists["test.lat"].Count; got != workers*perWorker {
		t.Errorf("hist count = %d, want %d", got, workers*perWorker)
	}
}

func TestNilHandlesAndNilRegistry(t *testing.T) {
	var r *Registry
	// Every path on a disabled plane must be a no-op, not a panic.
	r.Counter("x").Add(3)
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Hist("x").Observe(7)
	r.Sample("x", func() uint64 { return 1 })
	r.SampleGauge("x", func() float64 { return 1 })
	r.SetClock(func() uint64 { return 0 }, 16)
	r.UnregisterPrefix("x")
	if n := r.Names(); n != nil {
		t.Errorf("nil registry Names = %v", n)
	}
	s := r.Snapshot()
	if s.Cycles != 0 || len(s.Counters) != 0 {
		t.Errorf("nil registry snapshot = %+v", s)
	}
	if v := (*Counter)(nil).Value(); v != 0 {
		t.Errorf("nil counter Value = %d", v)
	}
	if v := (*Gauge)(nil).Value(); v != 0 {
		t.Errorf("nil gauge Value = %g", v)
	}
	if hs := (*Hist)(nil).Snapshot(); hs.Count != 0 {
		t.Errorf("nil hist snapshot = %+v", hs)
	}
}

// Histogram bucket boundaries: bucket 0 is exact zeros, bucket i is
// [2^(i-1), 2^i), the last bucket saturates.
func TestHistBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1 << 31, 32},
		{1<<32 - 1, 32},
		{1 << 32, 33},
		{1 << 40, NumBuckets - 1},
		{^uint64(0), NumBuckets - 1},
	}
	for _, c := range cases {
		if got := BucketOf(c.v); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Upper bounds are consistent with bucket assignment: a value one
	// below the bound stays in the bucket, the bound itself moves up.
	for i := 1; i < NumBuckets-1; i++ {
		up := BucketUpper(i)
		if BucketOf(up-1) != i {
			t.Errorf("BucketOf(BucketUpper(%d)-1) = %d, want %d", i, BucketOf(up-1), i)
		}
		if BucketOf(up) != i+1 {
			t.Errorf("BucketOf(BucketUpper(%d)) = %d, want %d", i, BucketOf(up), i+1)
		}
	}
}

func TestHistStats(t *testing.T) {
	h := &Hist{}
	for _, v := range []uint64{0, 1, 2, 4, 8, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 7 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Min != 0 || s.Max != 1000 {
		t.Errorf("min/max = %d/%d, want 0/1000", s.Min, s.Max)
	}
	if s.Sum != 1115 {
		t.Errorf("sum = %d", s.Sum)
	}
	if q := s.Quantile(0); q != 0 {
		t.Errorf("p0 = %g, want 0", q)
	}
	if q := s.Quantile(1); q < 512 || q > 1024 {
		t.Errorf("p100 = %g, want within the top bucket", q)
	}
	if m := s.Mean(); m < 159 || m > 160 {
		t.Errorf("mean = %g", m)
	}
}

func TestSnapshotDeltaAndSampled(t *testing.T) {
	cell := uint64(0)
	cyc := uint64(0)
	r := New()
	r.SetClock(func() uint64 { return cyc }, 16) // 16 MHz: 16 cycles = 1 µs
	r.Sample("vm.cell", func() uint64 { return cell })
	c := r.Counter("host.ops")

	s0 := r.Snapshot()
	c.Add(32)
	cell = 10
	cyc = 16_000_000 // one simulated second
	s1 := r.Snapshot()

	d := s1.Delta(s0)
	if d.Counters["host.ops"] != 32 || d.Counters["vm.cell"] != 10 {
		t.Errorf("delta counters = %v", d.Counters)
	}
	if us := d.Micros(); us != 1e6 {
		t.Errorf("delta micros = %g, want 1e6", us)
	}
	if rate := d.Rate("host.ops"); rate != 32 {
		t.Errorf("rate = %g, want 32/s", rate)
	}

	// A counter that went backwards (torn-down cell) restarts.
	cell = 3
	s2 := r.Snapshot()
	if d := s2.Delta(s1); d.Counters["vm.cell"] != 3 {
		t.Errorf("restart delta = %d, want 3", d.Counters["vm.cell"])
	}
}

func TestUnregisterPrefix(t *testing.T) {
	r := New()
	r.Counter("kio.sock.7.tx_fail")
	r.SampleGauge("kio.sock.7.queue_depth", func() float64 { return 1 })
	r.Counter("kio.sock.9.tx_fail")
	r.Hist("prof.irq.l6.latency_cycles")
	r.UnregisterPrefix("kio.sock.7.")
	names := strings.Join(r.Names(), ",")
	if strings.Contains(names, "sock.7") {
		t.Errorf("sock.7 metrics survive unregister: %s", names)
	}
	if !strings.Contains(names, "kio.sock.9.tx_fail") || !strings.Contains(names, "prof.irq") {
		t.Errorf("unrelated metrics were removed: %s", names)
	}
}

// Sub views: per-VM prefixing over one shared plane. A cluster boots
// each kernel against reg.Sub("vm<i>.") and one Snapshot sees the
// whole fleet.
func TestSubPrefixSharing(t *testing.T) {
	r := New()
	vm1 := r.Sub("vm1.")
	vm2 := r.Sub("vm2.")

	vm1.Counter("kio.sock.5.rx_frames").Add(10)
	vm2.Counter("kio.sock.5.rx_frames").Add(20)
	r.Counter("cluster.fabric.routed").Add(30)
	vm1.Sample("kernel.live_threads", func() uint64 { return 4 })
	vm2.SampleGauge("kio.sock.5.queue_depth", func() float64 { return 2 })
	vm1.Hist("prof.irq.l1.latency_cycles").Observe(8)

	// Any view snapshots the whole plane with fully qualified names.
	for _, view := range []*Registry{r, vm1, vm2} {
		s := view.Snapshot()
		if s.Counters["vm1.kio.sock.5.rx_frames"] != 10 ||
			s.Counters["vm2.kio.sock.5.rx_frames"] != 20 ||
			s.Counters["cluster.fabric.routed"] != 30 ||
			s.Counters["vm1.kernel.live_threads"] != 4 {
			t.Errorf("view %q snapshot counters = %v", view.Prefix(), s.Counters)
		}
		if s.Gauges["vm2.kio.sock.5.queue_depth"] != 2 {
			t.Errorf("view %q snapshot gauges = %v", view.Prefix(), s.Gauges)
		}
		if s.Hists["vm1.prof.irq.l1.latency_cycles"].Count != 1 {
			t.Errorf("view %q snapshot hists = %v", view.Prefix(), s.Hists)
		}
	}

	// Same name through the same view resolves to the same handle.
	if vm1.Counter("kio.sock.5.rx_frames") != vm1.Counter("kio.sock.5.rx_frames") {
		t.Error("repeated Counter through a view returned distinct handles")
	}
	// Distinct views keep distinct handles.
	if vm1.Counter("kio.sock.5.rx_frames") == vm2.Counter("kio.sock.5.rx_frames") {
		t.Error("vm1 and vm2 views share a counter handle")
	}

	// UnregisterPrefix is scoped by the view's own prefix.
	vm1.UnregisterPrefix("kio.sock.5.")
	names := strings.Join(r.Names(), ",")
	if strings.Contains(names, "vm1.kio.sock.5.") {
		t.Errorf("vm1 socket metrics survive unregister: %s", names)
	}
	if !strings.Contains(names, "vm2.kio.sock.5.rx_frames") {
		t.Errorf("vm2 socket metrics were removed: %s", names)
	}

	// Sub views nest, and Sub of nil is a valid disabled plane.
	if got := vm1.Sub("x.").Prefix(); got != "vm1.x." {
		t.Errorf("nested Sub prefix = %q", got)
	}
	var nilReg *Registry
	sub := nilReg.Sub("vm0.")
	if sub != nil {
		t.Error("Sub of nil registry is not nil")
	}
	sub.Counter("x").Inc() // must not panic
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := New()
	r.SetClock(func() uint64 { return 4242 }, 16)
	r.Counter("a.b").Add(7)
	r.Gauge("c.d").Set(2.5)
	r.Hist("e.f").Observe(3)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Cycles != 4242 || back.Counters["a.b"] != 7 || back.Gauges["c.d"] != 2.5 {
		t.Errorf("round trip lost data: %+v", back)
	}
	if back.Hists["e.f"].Count != 1 {
		t.Errorf("hist lost: %+v", back.Hists)
	}
}

// Golden test for the Prometheus text exposition: fixed input, exact
// expected output.
func TestPrometheusGolden(t *testing.T) {
	r := New()
	r.SetClock(func() uint64 { return 1600 }, 16)
	r.Counter("kernel.spurious_irq", "Interrupts with no pending device cause.").Add(3)
	r.Counter("kio.sock.7.tx_fail").Add(1)
	r.Gauge("kio.sock.7.queue_depth", "Frames queued on the socket.").Set(2)
	h := r.Hist("prof.irq.l6.latency_cycles", "IRQ raise-to-entry latency at IPL 6, in cycles.")
	h.Observe(0)
	h.Observe(5)
	h.Observe(6)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const golden = `# HELP synthesis_kernel_spurious_irq Interrupts with no pending device cause.
# TYPE synthesis_kernel_spurious_irq counter
synthesis_kernel_spurious_irq 3
# TYPE synthesis_kio_sock_7_tx_fail counter
synthesis_kio_sock_7_tx_fail 1
# HELP synthesis_kio_sock_7_queue_depth Frames queued on the socket.
# TYPE synthesis_kio_sock_7_queue_depth gauge
synthesis_kio_sock_7_queue_depth 2
# HELP synthesis_prof_irq_l6_latency_cycles IRQ raise-to-entry latency at IPL 6, in cycles.
# TYPE synthesis_prof_irq_l6_latency_cycles histogram
synthesis_prof_irq_l6_latency_cycles_bucket{le="0"} 1
synthesis_prof_irq_l6_latency_cycles_bucket{le="1"} 1
synthesis_prof_irq_l6_latency_cycles_bucket{le="3"} 1
synthesis_prof_irq_l6_latency_cycles_bucket{le="7"} 3
synthesis_prof_irq_l6_latency_cycles_bucket{le="+Inf"} 3
synthesis_prof_irq_l6_latency_cycles_sum 11
synthesis_prof_irq_l6_latency_cycles_count 3
# HELP synthesis_vm_cycles VM clock at sample time (divide by clock_mhz for simulated microseconds).
# TYPE synthesis_vm_cycles counter
synthesis_vm_cycles 1600
# HELP synthesis_vm_clock_mhz Simulated clock rate of the snapshot's cycle source.
# TYPE synthesis_vm_clock_mhz gauge
synthesis_vm_clock_mhz 16
`
	if got := buf.String(); got != golden {
		t.Errorf("prometheus exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, golden)
	}
}

// Help-string registration semantics: first non-empty wins, Sub
// prefixes apply, sampled metrics carry help, teardown removes it,
// newlines/backslashes are escaped in the exposition, and JSON output
// is unchanged by descriptions.
func TestHelpRegistration(t *testing.T) {
	r := New()
	vm1 := r.Sub("vm1.")
	vm1.Counter("kio.sock.5.rx_frames", "Frames received.")
	vm1.Counter("kio.sock.5.rx_frames")                 // bare lookup keeps it
	vm1.Counter("kio.sock.5.rx_frames", "Overwritten?") // later text loses
	vm1.Sample("kernel.live_threads", func() uint64 { return 4 }, "Threads alive.")
	r.Gauge("weird", "line one\nline two \\ done")

	s := r.Snapshot()
	if s.Help["vm1.kio.sock.5.rx_frames"] != "Frames received." {
		t.Errorf("help = %q", s.Help["vm1.kio.sock.5.rx_frames"])
	}
	if s.Help["vm1.kernel.live_threads"] != "Threads alive." {
		t.Errorf("sampled help = %q", s.Help["vm1.kernel.live_threads"])
	}
	var buf bytes.Buffer
	if err := s.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# HELP synthesis_vm1_kio_sock_5_rx_frames Frames received.\n") {
		t.Errorf("missing counter HELP:\n%s", out)
	}
	if !strings.Contains(out, `# HELP synthesis_weird line one\nline two \\ done`+"\n") {
		t.Errorf("help escaping drifted:\n%s", out)
	}

	// JSON exposition ignores descriptions entirely.
	buf.Reset()
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "Frames received") {
		t.Errorf("help leaked into JSON:\n%s", buf.String())
	}

	// Teardown removes the description with the metric.
	vm1.UnregisterPrefix("kio.sock.5.")
	if h := r.Snapshot().Help; h["vm1.kio.sock.5.rx_frames"] != "" {
		t.Errorf("help survived unregister: %q", h["vm1.kio.sock.5.rx_frames"])
	}

	// Nil plane: help variants must stay no-ops.
	var nr *Registry
	nr.Counter("x", "desc")
	nr.Sample("x", func() uint64 { return 0 }, "desc")
}
