package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Exposition: the same snapshot in two wire shapes. JSON keeps the
// native dotted names and the cycles/clock_mhz time base; the
// Prometheus text format rewrites names to the [a-zA-Z0-9_] alphabet
// under a "synthesis_" prefix so a scrape of a long-running quamon can
// land in standard tooling unmodified.

// WriteJSON writes the snapshot as one indented JSON object. Map keys
// are emitted sorted (encoding/json's map ordering), so the output is
// deterministic for golden files and diffs.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// PromName rewrites a dotted metric name into the Prometheus
// alphabet: "kio.sock.7.tx_fail" -> "synthesis_kio_sock_7_tx_fail".
func PromName(name string) string {
	var b strings.Builder
	b.WriteString("synthesis_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promHelp rewrites a description for the # HELP line: backslashes
// and newlines are the two characters the text format escapes.
func promHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// writeHelp emits the family's # HELP line when the snapshot carries
// a description for it.
func (s Snapshot) writeHelp(w io.Writer, name, prom string) error {
	h, ok := s.Help[name]
	if !ok {
		return nil
	}
	_, err := fmt.Fprintf(w, "# HELP %s %s\n", prom, promHelp(h))
	return err
}

// WritePrometheus writes the snapshot in the Prometheus text
// exposition format (v0.0.4): counters and gauges as single samples,
// histograms as cumulative _bucket{le=...} series with _sum and
// _count. Families are emitted in sorted name order; a family whose
// metric was registered with a description gets a # HELP line before
// its # TYPE.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := PromName(n)
		if err := s.writeHelp(w, n, p); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", p, p, s.Counters[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p := PromName(n)
		if err := s.writeHelp(w, n, p); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", p, p, s.Gauges[n]); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Hists[n]
		p := PromName(n)
		if err := s.writeHelp(w, n, p); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", p); err != nil {
			return err
		}
		var cum uint64
		for i, cnt := range h.Buckets {
			cum += cnt
			if i == NumBuckets-1 {
				break // the saturating bucket is the +Inf line below
			}
			le := BucketUpper(i) - 1 // inclusive bound of [.., 2^i)
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", p, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			p, h.Count, p, h.Sum, p, h.Count); err != nil {
			return err
		}
	}

	// The snapshot's own time base rides along so scrapes line up with
	// trace exports: µs = cycles / clock_mhz.
	if _, err := fmt.Fprintf(w, "# HELP synthesis_vm_cycles VM clock at sample time (divide by clock_mhz for simulated microseconds).\n# TYPE synthesis_vm_cycles counter\nsynthesis_vm_cycles %d\n", s.Cycles); err != nil {
		return err
	}
	if s.ClockMHz != 0 {
		if _, err := fmt.Fprintf(w, "# HELP synthesis_vm_clock_mhz Simulated clock rate of the snapshot's cycle source.\n# TYPE synthesis_vm_clock_mhz gauge\nsynthesis_vm_clock_mhz %g\n", s.ClockMHz); err != nil {
			return err
		}
	}
	return nil
}
