package metrics

import "bytes"

// Snapshot-to-bytes rendering, shared by every exposition consumer.
// The host tools (quamon -metrics-json / -prom) write snapshots to
// files; the kernel's guest-visible metrics quaject (kio's
// /proc/metrics) pokes the very same bytes into VM memory and serves
// them through a synthesized read routine. Keeping both behind one
// renderer is what makes the guest-read snapshot byte-identical to
// the host export: there is exactly one way a Snapshot becomes text.

// JSONBytes renders the snapshot as the indented JSON object that
// WriteJSON emits (map keys sorted, trailing newline). This is the
// payload a guest reads from /proc/metrics.
func (s Snapshot) JSONBytes() ([]byte, error) {
	var b bytes.Buffer
	if err := s.WriteJSON(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// PromBytes renders the snapshot in the Prometheus text exposition
// format, as WritePrometheus emits. This is the payload a guest reads
// from /proc/metrics.prom.
func (s Snapshot) PromBytes() ([]byte, error) {
	var b bytes.Buffer
	if err := s.WritePrometheus(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}
