package metrics

import (
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value updated with one atomic
// add. All methods are safe on a nil receiver (disabled plane).
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil handle).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value (occupancy, on/off state) stored as
// float64 bits behind one atomic word.
type Gauge struct{ v atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(f float64) {
	if g != nil {
		g.v.Store(floatBits(f))
	}
}

// Value returns the current gauge reading (0 on a nil handle).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFrom(g.v.Load())
}

// regState is the storage every Registry view shares: one mutex, one
// set of name-keyed metric maps, one clock. A Registry is a (state,
// prefix) pair — see Sub — so a fleet of kernels can register into a
// single plane under per-VM name prefixes while snapshots still see
// everything at once.
type regState struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Hist
	sampledC map[string]func() uint64  // counter-typed sampled reads
	sampledG map[string]func() float64 // gauge-typed sampled reads
	help     map[string]string         // optional per-metric description

	clock    func() uint64 // VM cycle source (Machine.Clock)
	clockMHz float64
}

// setHelp records an optional description passed at handle creation
// (caller holds mu). First writer wins, so the creation site that
// documents a metric isn't overridden by later handle lookups that
// omit the text.
func (s *regState) setHelp(name string, help []string) {
	if len(help) == 0 || help[0] == "" {
		return
	}
	if _, ok := s.help[name]; !ok {
		s.help[name] = help[0]
	}
}

// Registry holds the named metrics for one kernel instance — or, via
// Sub, a prefixed view onto a shared plane for a whole cluster of
// them. Registration takes a short critical section; updates through
// the returned handles are lock-free. A nil *Registry is a valid
// disabled plane: every lookup returns a nil handle and Snapshot
// returns the zero Snapshot.
type Registry struct {
	s      *regState
	prefix string
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{s: &regState{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Hist{},
		sampledC: map[string]func() uint64{},
		sampledG: map[string]func() float64{},
		help:     map[string]string{},
	}}
}

// Sub returns a view of the same registry that prepends prefix to
// every metric name registered through it ("vm3." turns "kio.sock.5.
// rx_frames" into "vm3.kio.sock.5.rx_frames"). The view shares the
// parent's storage: a Snapshot taken on any view covers the whole
// plane. Sub of a nil registry is nil (still a valid disabled plane),
// and Sub views nest.
func (r *Registry) Sub(prefix string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{s: r.s, prefix: r.prefix + prefix}
}

// Prefix reports the view's name prefix ("" on the root or nil).
func (r *Registry) Prefix() string {
	if r == nil {
		return ""
	}
	return r.prefix
}

// SetClock binds the registry's timestamp source: fn is sampled into
// every Snapshot (the convention is Machine.Clock, so snapshots and
// the profiler's trace events share one time base), and mhz converts
// those cycles to microseconds (µs = cycles / mhz). The clock is
// plane-global — on a multi-VM shared registry the last caller wins,
// so a cluster harness overrides it after booting its kernels (the
// fleet has no single VM clock; see internal/cluster).
func (r *Registry) SetClock(fn func() uint64, mhz float64) {
	if r == nil {
		return
	}
	r.s.mu.Lock()
	r.s.clock = fn
	r.s.clockMHz = mhz
	r.s.mu.Unlock()
}

// Counter returns the named counter handle, creating it on first use.
// An optional help string documents the metric in expositions that
// carry descriptions (Prometheus # HELP); the first non-empty one
// registered wins. Returns nil on a nil registry.
func (r *Registry) Counter(name string, help ...string) *Counter {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	c, ok := r.s.counters[name]
	if !ok {
		c = &Counter{}
		r.s.counters[name] = c
	}
	r.s.setHelp(name, help)
	return c
}

// Gauge returns the named gauge handle, creating it on first use.
func (r *Registry) Gauge(name string, help ...string) *Gauge {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	g, ok := r.s.gauges[name]
	if !ok {
		g = &Gauge{}
		r.s.gauges[name] = g
	}
	r.s.setHelp(name, help)
	return g
}

// Hist returns the named histogram handle, creating it on first use.
func (r *Registry) Hist(name string, help ...string) *Hist {
	if r == nil {
		return nil
	}
	name = r.prefix + name
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	h, ok := r.s.hists[name]
	if !ok {
		h = &Hist{}
		r.s.hists[name] = h
	}
	r.s.setHelp(name, help)
	return h
}

// Sample registers a counter-typed metric served by fn at snapshot
// time. This is how VM-memory cells maintained by synthesized code
// (NQTxFail, GSpuriousIRQ, ...) join the plane with zero hot-path
// cost: the cell read happens only when somebody looks.
func (r *Registry) Sample(name string, fn func() uint64, help ...string) {
	if r == nil {
		return
	}
	r.s.mu.Lock()
	r.s.sampledC[r.prefix+name] = fn
	r.s.setHelp(r.prefix+name, help)
	r.s.mu.Unlock()
}

// SampleGauge registers a gauge-typed sampled metric (occupancy and
// other non-monotonic cell reads).
func (r *Registry) SampleGauge(name string, fn func() float64, help ...string) {
	if r == nil {
		return
	}
	r.s.mu.Lock()
	r.s.sampledG[r.prefix+name] = fn
	r.s.setHelp(r.prefix+name, help)
	r.s.mu.Unlock()
}

// UnregisterPrefix removes every metric whose name starts with prefix
// (socket close tears down its kio.sock.<port>.* family so snapshots
// never read cells of a dead queue). The view's own prefix applies, so
// a vm2. sub-registry unregistering "kio.sock.5." only tears down
// vm2.kio.sock.5.*.
func (r *Registry) UnregisterPrefix(prefix string) {
	if r == nil {
		return
	}
	prefix = r.prefix + prefix
	r.s.mu.Lock()
	defer r.s.mu.Unlock()
	for n := range r.s.counters {
		if hasPrefix(n, prefix) {
			delete(r.s.counters, n)
		}
	}
	for n := range r.s.gauges {
		if hasPrefix(n, prefix) {
			delete(r.s.gauges, n)
		}
	}
	for n := range r.s.hists {
		if hasPrefix(n, prefix) {
			delete(r.s.hists, n)
		}
	}
	for n := range r.s.sampledC {
		if hasPrefix(n, prefix) {
			delete(r.s.sampledC, n)
		}
	}
	for n := range r.s.sampledG {
		if hasPrefix(n, prefix) {
			delete(r.s.sampledG, n)
		}
	}
	for n := range r.s.help {
		if hasPrefix(n, prefix) {
			delete(r.s.help, n)
		}
	}
}

func hasPrefix(s, p string) bool { return strings.HasPrefix(s, p) }

// Names returns every registered metric name, sorted. Names are
// plane-wide and fully qualified (a Sub view sees the same list as the
// root).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.s.mu.RLock()
	defer r.s.mu.RUnlock()
	names := make([]string, 0,
		len(r.s.counters)+len(r.s.gauges)+len(r.s.hists)+len(r.s.sampledC)+len(r.s.sampledG))
	for n := range r.s.counters {
		names = append(names, n)
	}
	for n := range r.s.gauges {
		names = append(names, n)
	}
	for n := range r.s.hists {
		names = append(names, n)
	}
	for n := range r.s.sampledC {
		names = append(names, n)
	}
	for n := range r.s.sampledG {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Snapshot is one point-in-time view of the whole plane. Cycles is
// the VM clock (Machine.Clock()) at sample time and ClockMHz its rate,
// so Micros() = Cycles/ClockMHz reconstructs simulated time — the
// same cycles→µs convention the profiler's Chrome-trace export uses.
type Snapshot struct {
	Cycles   uint64                  `json:"cycles"`
	ClockMHz float64                 `json:"clock_mhz,omitempty"`
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]float64      `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
	// Help carries the optional per-metric descriptions for
	// expositions that render them (# HELP in the Prometheus text
	// format). Excluded from JSON: descriptions are static metadata,
	// not samples.
	Help map[string]string `json:"-"`
}

// Micros returns the snapshot's timestamp in simulated microseconds.
func (s Snapshot) Micros() float64 {
	if s.ClockMHz == 0 {
		return 0
	}
	return float64(s.Cycles) / s.ClockMHz
}

// Snapshot samples every metric, including the sampled cell readers.
// On a shared multi-VM registry this is the "one registry snapshot"
// for the whole fleet — every view's metrics appear, fully prefixed.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.s.mu.RLock()
	defer r.s.mu.RUnlock()
	s := Snapshot{
		ClockMHz: r.s.clockMHz,
		Counters: make(map[string]uint64, len(r.s.counters)+len(r.s.sampledC)),
		Gauges:   make(map[string]float64, len(r.s.gauges)+len(r.s.sampledG)),
		Hists:    make(map[string]HistSnapshot, len(r.s.hists)),
	}
	if len(r.s.help) > 0 {
		s.Help = make(map[string]string, len(r.s.help))
		for n, h := range r.s.help {
			s.Help[n] = h
		}
	}
	if r.s.clock != nil {
		s.Cycles = r.s.clock()
	}
	for n, c := range r.s.counters {
		s.Counters[n] = c.Value()
	}
	for n, fn := range r.s.sampledC {
		s.Counters[n] = fn()
	}
	for n, g := range r.s.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, fn := range r.s.sampledG {
		s.Gauges[n] = fn()
	}
	for n, h := range r.s.hists {
		s.Hists[n] = h.Snapshot()
	}
	return s
}

// Delta is the change between two snapshots: counter increments,
// current gauge readings, and histogram bucket differences over the
// elapsed VM cycles.
type Delta struct {
	Cycles   uint64                  `json:"cycles"` // elapsed
	ClockMHz float64                 `json:"clock_mhz,omitempty"`
	Counters map[string]uint64       `json:"counters,omitempty"`
	Gauges   map[string]float64      `json:"gauges,omitempty"`
	Hists    map[string]HistSnapshot `json:"hists,omitempty"`
}

// Micros returns the elapsed simulated microseconds.
func (d Delta) Micros() float64 {
	if d.ClockMHz == 0 {
		return 0
	}
	return float64(d.Cycles) / d.ClockMHz
}

// Rate returns the named counter's increments per simulated second.
func (d Delta) Rate(name string) float64 {
	us := d.Micros()
	if us == 0 {
		return 0
	}
	return float64(d.Counters[name]) * 1e6 / us
}

// Delta returns the change from prev to s. Counters that went
// backwards (a torn-down socket's cell reused) restart from their
// current value. Gauges carry the current reading, not a difference.
func (s Snapshot) Delta(prev Snapshot) Delta {
	d := Delta{
		Cycles:   s.Cycles - prev.Cycles,
		ClockMHz: s.ClockMHz,
		Counters: make(map[string]uint64, len(s.Counters)),
		Gauges:   s.Gauges,
		Hists:    make(map[string]HistSnapshot, len(s.Hists)),
	}
	for n, v := range s.Counters {
		if p, ok := prev.Counters[n]; ok && p <= v {
			d.Counters[n] = v - p
		} else {
			d.Counters[n] = v
		}
	}
	for n, h := range s.Hists {
		d.Hists[n] = h.Sub(prev.Hists[n])
	}
	return d
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }
func floatFrom(b uint64) float64 { return math.Float64frombits(b) }
