package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the fixed log2 bucket count: bucket 0 holds exact
// zeros, bucket i (1 <= i < NumBuckets-1) holds values in
// [2^(i-1), 2^i), and the last bucket absorbs everything at or above
// 2^(NumBuckets-2). 34 buckets cover 0 through 2^32 cycles — over a
// minute of simulated time at 50 MHz — before saturating, which is the
// same shape as the profiler's interrupt-latency histogram but wide
// enough for end-to-end path times.
const NumBuckets = 34

// Hist is a lock-free log-bucketed histogram. Observe is a handful of
// atomic operations; min/max converge by CAS. All methods are safe on
// a nil receiver.
type Hist struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // stored as value+1 so 0 means "unset"
	max     atomic.Uint64
	buckets [NumBuckets]atomic.Uint64
}

// BucketOf returns the bucket index for a value.
func BucketOf(v uint64) int {
	b := bits.Len64(v) // 0 for 0, k for [2^(k-1), 2^k)
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketUpper returns the exclusive upper bound of bucket i
// (math.MaxUint64 for the saturating last bucket).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 1
	}
	if i >= NumBuckets-1 {
		return math.MaxUint64
	}
	return 1 << uint(i)
}

// Observe records one value.
func (h *Hist) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[BucketOf(v)].Add(1)
	for {
		old := h.min.Load()
		if old != 0 && old <= v+1 {
			break
		}
		if h.min.CompareAndSwap(old, v+1) {
			break
		}
	}
	for {
		old := h.max.Load()
		if old >= v {
			break
		}
		if h.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// HistSnapshot is a point-in-time copy of a histogram. Buckets is
// trimmed to the highest non-empty bucket.
type HistSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min,omitempty"`
	Max     uint64   `json:"max,omitempty"`
	Buckets []uint64 `json:"buckets,omitempty"`
}

// Snapshot copies the histogram's current state.
func (h *Hist) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if m := h.min.Load(); m > 0 {
		s.Min = m - 1
	}
	top := -1
	var raw [NumBuckets]uint64
	for i := range raw {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			top = i
		}
	}
	if top >= 0 {
		s.Buckets = append(s.Buckets, raw[:top+1]...)
	}
	return s
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 <= q <= 1) from the log
// buckets, interpolating linearly within the winning bucket. The
// estimate is exact for q landing in bucket 0 (zeros), otherwise
// bounded by the bucket's power-of-two range and clamped to the
// observed [Min, Max].
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			if i == 0 {
				return 0
			}
			lo := float64(uint64(1) << uint(i-1))
			hi := float64(BucketUpper(i))
			if i == NumBuckets-1 {
				hi = float64(s.Max)
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - cum) / float64(n)
			return s.clamp(lo + frac*(hi-lo))
		}
		cum = next
	}
	return float64(s.Max)
}

// clamp bounds a bucket-interpolated estimate by the observed
// extremes (the cumulative Min/Max ride along in every snapshot).
func (s HistSnapshot) clamp(v float64) float64 {
	if s.Max > 0 && v > float64(s.Max) {
		return float64(s.Max)
	}
	if v < float64(s.Min) {
		return float64(s.Min)
	}
	return v
}

// Sub returns the bucket-wise difference s - prev: the observations
// that landed between two snapshots. Min and Max keep the current
// cumulative values (extremes are not decomposable).
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	d := HistSnapshot{
		Count: s.Count - min64(s.Count, prev.Count),
		Sum:   s.Sum - min64(s.Sum, prev.Sum),
		Min:   s.Min,
		Max:   s.Max,
	}
	for i, n := range s.Buckets {
		var p uint64
		if i < len(prev.Buckets) {
			p = prev.Buckets[i]
		}
		d.Buckets = append(d.Buckets, n-min64(n, p))
	}
	// Trim trailing zero buckets so empty deltas stay compact.
	top := -1
	for i, n := range d.Buckets {
		if n != 0 {
			top = i
		}
	}
	d.Buckets = d.Buckets[:top+1]
	return d
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
