package kio

import (
	"synthesis/internal/kernel"
	"synthesis/internal/synth"
)

// Pipes (Section 6.2, programs 2-4): a kernel byte queue with
// synthesized, pipe-specific read and write routines on each end.
// The queue address and size are folded into the code at open time;
// the 1-byte case runs the same specialized path with a chunk of one,
// which is where the paper's 56x single-byte speedup over the
// traditional layered pipe implementation comes from.

// DefaultPipeBytes is the pipe buffer size: comfortably more than one
// page so the Table 1 programs can write a full 4 KB chunk and read
// it back within a single thread without blocking.
const DefaultPipeBytes = 8192

// Pipe is the host-side mirror of one kernel pipe.
type Pipe struct {
	Q *KQueue
}

// NewPipe allocates the pipe's kernel queue.
func (io *IO) NewPipe(size int32) *Pipe {
	p := &Pipe{Q: io.NewKQueue(size)}
	io.pipes = append(io.pipes, p)
	io.registerPipeMetrics(p, len(io.pipes)-1)
	return p
}

// OpenPipeEnd synthesizes one end of the pipe for a thread and
// installs it as a descriptor: writeEnd selects the writing side.
// Returns the descriptor, or -1 when the thread's table is full.
// Both ends may live in the same thread (the Table 1 benchmarks) or
// in different threads (a producer/consumer stream).
func (io *IO) OpenPipeEnd(t *kernel.Thread, p *Pipe, writeEnd bool) int32 {
	fd := allocFD(t)
	if fd < 0 {
		return -1
	}
	var read, write uint32
	if writeEnd {
		g := kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)
		write = io.K.C.Synthesize(t.Q, "pipe_write", nil, func(e *synth.Emitter) {
			io.emitQueueWrite(e, p.Q, g)
		})
		t.FDs[fd] = kernel.FDInfo{Kind: "pipe-w", Aux: p.Q.Addr}
	} else {
		g := kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)
		read = io.K.C.Synthesize(t.Q, "pipe_read", nil, func(e *synth.Emitter) {
			io.emitQueueRead(e, p.Q, g)
		})
		t.FDs[fd] = kernel.FDInfo{Kind: "pipe-r", Aux: p.Q.Addr}
	}
	io.installFD(t, fd, read, write)
	io.registerFDMetrics(t, fd)
	return fd
}
