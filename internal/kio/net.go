package kio

import (
	"fmt"

	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	synnet "synthesis/internal/net"
	"synthesis/internal/synth"
)

// The network device server: the Synthesis treatment of packet I/O.
// The NIC DMAs arriving frames into a kernel descriptor ring; the
// receive interrupt handler demultiplexes each frame by destination
// port and deposits it into the owning socket's packet queue — the
// optimistic MP-SC queue of Figure 2 laid out in machine memory
// (CAS-claimed head, per-slot valid flags, single consumer trusting
// only the flags). The demultiplex chain is resynthesized on every
// socket open, so the port numbers are compare-immediates in the
// handler, not a table walk (Factoring Invariants applied to the
// interrupt path itself).
//
// Per-socket send and receive routines are synthesized by the socket
// open: the peer ports, the staging buffer, the queue base and the
// ring geometry are all folded into the emitted code, and the frame
// header construction is inlined into the copy setup (Collapsing
// Layers — there is no separate "header layer" at run time).

// Per-socket packet queue layout in machine memory. Head and tail are
// free-running counts; slot index = count & (NQSlotCount-1). A slot
// holds [payload length (4)][payload bytes]. The valid flags are one
// byte per slot: the producer's CAS on the head only claims a slot —
// the flag store publishes it, and the consumer trusts nothing else.
const (
	NQHead      = 0  // producer claim count (CAS target)
	NQTail      = 4  // consumer count
	NQRWait     = 8  // reader wait cell
	NQGauge     = 12 // frames deposited (I/O gauge)
	NQDrops     = 16 // frames dropped at a full queue
	NQErrs      = 20 // frames dropped on checksum mismatch
	NQTxFail    = 24 // sends abandoned after the retry budget
	NQFlags     = 28 // NQSlotCount valid-flag bytes
	NQSlots     = 36 // slot array
	NQSlotCount = 8
	NQSlotBytes = 256
	nqSize      = NQSlots + NQSlotCount*NQSlotBytes
)

// NIC receive ring geometry (kernel side).
const (
	netRingSlots  = 16
	netRingSlotSz = 256
	maxSockets    = 16 // generic-fallback port table capacity
)

// NetRingSlots exports the NIC receive-ring depth so a host-side
// injector (the cluster fabric) can pace frame delivery against
// RxPending instead of blind-dropping at the device.
const NetRingSlots = netRingSlots

// MaxSockets exports the per-kernel socket capacity: the demux
// compare chain and the generic-fallback port table are both sized to
// it, so a fleet harness multiplexes its logical connections over at
// most this many guest sockets per VM.
const MaxSockets = maxSockets

// Send retry policy: a refused launch (ring full) is retried with an
// exponentially doubling unmasked spin, so the receive interrupt can
// drain the ring between attempts.
const (
	sendRetries  = 8  // launch attempts before giving up
	sendBackoff0 = 32 // first backoff spin count, doubled per retry
)

// NSocket is the host-side mirror of one open socket.
type NSocket struct {
	Local, Remote uint32
	Queue         uint32 // packet queue base in machine memory
	Stage         uint32 // transmit staging buffer
	TTE           uint32
	FD            int32
}

// NetIntHandler returns the current synthesized network receive
// interrupt handler's code address.
func (io *IO) NetIntHandler() uint32 { return io.netIntH }

// NetSockets returns the open sockets (host view, for tests).
func (io *IO) NetSockets() []*NSocket { return io.socks }

// NetStackDrops returns frames the handler discarded because no
// socket owned their destination port (host view).
func (io *IO) NetStackDrops() uint32 {
	return io.K.M.Peek(io.netDropCell, 4)
}

// installNet allocates the NIC's DMA receive ring, programs the
// device, and installs the (initially socket-less) receive handler.
func (io *IO) installNet() {
	k := io.K
	// [tail][stack-drop][storm][coalesce][port count][port table][ring]
	base, err := k.Heap.Alloc(20 + maxSockets*8 + netRingSlots*netRingSlotSz)
	if err != nil {
		panic("kio: cannot allocate NIC receive ring")
	}
	io.netTailCell = base
	io.netDropCell = base + 4
	io.netStormCell = base + 8
	io.netCoalCell = base + 12
	io.netPortCount = base + 16
	io.netPortTab = base + 20
	io.netRing = base + 20 + maxSockets*8
	for off := uint32(0); off < 20+maxSockets*8; off += 4 {
		k.M.Poke(base+off, 4, 0)
	}

	k.M.Store(m68k.NetBase+m68k.NetRegRxBase, 4, io.netRing)
	k.M.Store(m68k.NetBase+m68k.NetRegRxSlots, 4, netRingSlots)
	k.M.Store(m68k.NetBase+m68k.NetRegSlotSz, 4, netRingSlotSz)
	k.M.Store(m68k.NetBase+m68k.NetRegCtl, 4, 1)

	io.registerNetMetrics()
	io.resynthNetHandler()
}

// resynthNetHandler rebuilds the receive interrupt handler and
// installs it in every vector table. The previous handler is
// abandoned in code space, as the original kernel does.
//
// The handler is synthesized in one of two demultiplex disciplines:
// the Synthesis one (the open sockets' ports folded in as
// compare-immediates) or — after the watchdog has declared the
// synthesized handler wedged — the generic layered one, a run-time
// walk of a port table kept in machine memory, the way a conventional
// kernel would do it. When the watchdog has engaged the storm
// throttle, a coalescing front-end is prepended: only every
// netCoalesce-th interrupt runs the drain, so a screaming level costs
// three instructions per scream instead of a full drain attempt.
func (io *IO) resynthNetHandler() {
	k := io.K
	tailCell := io.netTailCell
	dropCell := io.netDropCell
	ring := io.netRing
	rxHead := m68k.NetBase + m68k.NetRegRxHead
	rxTail := m68k.NetBase + m68k.NetRegRxTail
	socks := append([]*NSocket(nil), io.socks...)
	generic := io.netGeneric
	coalesce := io.netCoalesce
	io.pokePortTable()

	name := "net_intr"
	if generic {
		name = "net_intr_generic"
	}
	io.netIntH = k.C.Build(nil, name).Named("kio."+name).Counted().Emit(func(e *synth.Emitter) {
		// Run to completion: the NIC interrupts at level 1, below the
		// quantum timer, so without this mask the scheduler can switch
		// away mid-drain and a fresh receive interrupt runs a second
		// activation of this handler concurrently — racing the ring
		// walk, the wake path and the ready-ring insert. The RTE
		// restores the interrupted level; a quantum that expires during
		// the drain is latched and taken immediately after.
		e.OrSR(iplMaskBits)
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.MoveL(m68k.D(1), m68k.PreDec(7))
		e.MoveL(m68k.D(2), m68k.PreDec(7))
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		e.MoveL(m68k.A(2), m68k.PreDec(7))
		if generic {
			e.MoveL(m68k.D(3), m68k.PreDec(7))
		}
		if io.netWD != nil {
			// Watchdog storm gauge: one count per handler entry.
			e.AddL(m68k.Imm(1), m68k.Abs(io.netStormCell))
		}
		if coalesce > 0 {
			e.AddL(m68k.Imm(1), m68k.Abs(io.netCoalCell))
			e.MoveL(m68k.Abs(io.netCoalCell), m68k.D(0))
			e.AndL(m68k.Imm(int32(coalesce-1)), m68k.D(0))
			e.Beq("nd_drain")
			e.Bra("nd_done")
		}

		// Drain every frame the NIC has DMA'd: one interrupt covers a
		// whole delivery batch. Each ring slot is CLAIMED by CAS before
		// it is touched: a quantum interrupt (level 6, above the NIC's
		// level 1) can switch away mid-frame and let a fresh receive
		// interrupt run a second activation of this handler, so the
		// walk is multi-consumer in exactly the way the queue insert
		// below is multi-producer. A read-process-increment walk here
		// double-counts under that interleaving, pushes the tail past
		// the head, and — with an equality exit test — livelocks the
		// drain on 2^32 stale slots.
		e.Label("nd_drain")
		e.MoveL(m68k.Abs(tailCell), m68k.D(1))
		e.Cmp(4, m68k.Abs(rxHead), m68k.D(1))
		e.Beq("nd_done")
		e.MoveL(m68k.D(1), m68k.D(2))
		e.AddL(m68k.Imm(1), m68k.D(2))
		e.Cas(4, 1, 2, m68k.Abs(tailCell))
		e.Bne("nd_drain") // lost the claim: D1 holds the fresh tail
		e.MoveL(m68k.D(1), m68k.D(0))
		// A0 = ring slot for this frame: base + (count & mask)*slotSz.
		e.MoveL(m68k.D(0), m68k.D(1))
		e.AndL(m68k.Imm(netRingSlots-1), m68k.D(1))
		e.LslL(m68k.Imm(8), m68k.D(1)) // * netRingSlotSz
		e.Lea(m68k.Abs(ring), 0)
		e.AddL(m68k.D(1), m68k.A(0))
		// Demultiplex on the destination port in the frame header.
		e.MoveL(m68k.Disp(4, 0), m68k.D(1)) // dst port
		if generic {
			// Layered discipline: walk the in-memory port table.
			e.MoveL(m68k.Abs(io.netPortCount), m68k.D(3))
			e.Beq("nd_nohome")
			e.Lea(m68k.Abs(io.netPortTab), 2)
			e.Label("nd_walk")
			e.Cmp(4, m68k.Ind(2), m68k.D(1))
			e.Beq("nd_hit")
			e.Lea(m68k.Disp(8, 2), 2)
			e.SubL(m68k.Imm(1), m68k.D(3))
			e.Bne("nd_walk")
			e.Label("nd_nohome")
			e.AddL(m68k.Imm(1), m68k.Abs(dropCell)) // nobody home
			e.Bra("nd_next")
			e.Label("nd_hit")
			e.MoveL(m68k.Disp(4, 2), m68k.A(2)) // queue base
			e.Bra("nd_dep")
		} else {
			// Synthesis discipline: the open sockets' ports are
			// synthesis-time constants; the "port table" is this
			// compare chain.
			for i, s := range socks {
				e.CmpL(m68k.Imm(int32(s.Local)), m68k.D(1))
				e.Beq(sockLabel(i))
			}
			e.AddL(m68k.Imm(1), m68k.Abs(dropCell)) // nobody home
			e.Bra("nd_next")
			for i, s := range socks {
				e.Label(sockLabel(i))
				e.Lea(m68k.Abs(s.Queue), 2)
				e.Bra("nd_dep")
			}
			if len(socks) == 0 {
				// Keep the shared deposit block reachable-by-label even
				// with no sockets; it is simply never branched to.
				e.Bra("nd_next")
			}
		}

		// Shared deposit block: A0 = ring slot, A2 = socket queue.
		// First verify the wire checksum: the NIC DMA zero-pads the
		// slot tail to a long boundary, so the long-wise sum never
		// reads stale bytes. A corrupt frame is counted on the owning
		// socket and dropped before it touches the queue.
		e.Label("nd_dep")
		e.MoveL(m68k.Ind(0), m68k.D(1))
		e.SubL(m68k.Imm(synnet.HeaderBytes), m68k.D(1)) // payload bytes
		e.MoveL(m68k.D(1), m68k.D(2))
		e.AddL(m68k.Imm(3), m68k.D(2))
		e.LsrL(m68k.Imm(2), m68k.D(2)) // payload long count
		e.Lea(m68k.Disp(4+synnet.HeaderBytes, 0), 1)
		e.Clr(4, m68k.D(1))
		e.Tst(4, m68k.D(2))
		e.Beq("nd_cksum_done")
		e.SubL(m68k.Imm(1), m68k.D(2))
		e.Label("nd_cksum")
		e.AddL(m68k.PostInc(1), m68k.D(1))
		e.Dbra(2, "nd_cksum")
		e.Label("nd_cksum_done")
		e.Cmp(4, m68k.Disp(4+8, 0), m68k.D(1)) // header checksum word
		e.Beq("nd_ckok")
		e.AddL(m68k.Imm(1), m68k.Disp(NQErrs, 2))
		e.Bra("nd_next")
		e.Label("nd_ckok")
		// Optimistic MP-SC insert: CAS claims a slot on the head
		// count, the copy fills it, the flag store publishes it.
		e.MoveL(m68k.Disp(NQHead, 2), m68k.D(1))
		e.Label("nd_claim")
		e.MoveL(m68k.D(1), m68k.D(2))
		e.SubL(m68k.Disp(NQTail, 2), m68k.D(2))
		e.CmpL(m68k.Imm(NQSlotCount), m68k.D(2))
		e.Bcc("nd_full")
		e.MoveL(m68k.D(1), m68k.D(2))
		e.AddL(m68k.Imm(1), m68k.D(2))
		e.Cas(4, 1, 2, m68k.Disp(NQHead, 2))
		e.Bne("nd_claim") // lost the race: D1 holds the fresh head
		// Claimed slot: A1 = destination, then strip the header as
		// part of the copy setup — source starts past [len][dst][src].
		e.AndL(m68k.Imm(NQSlotCount-1), m68k.D(1))
		e.MoveL(m68k.D(1), m68k.PreDec(7)) // slot index, for the flag
		e.LslL(m68k.Imm(8), m68k.D(1))     // * NQSlotBytes
		e.Lea(m68k.Disp(NQSlots, 2), 1)
		e.AddL(m68k.D(1), m68k.A(1))
		e.MoveL(m68k.Ind(0), m68k.D(1)) // frame length
		e.SubL(m68k.Imm(synnet.HeaderBytes), m68k.D(1))
		e.MoveL(m68k.D(1), m68k.Ind(1)) // slot payload length
		e.Lea(m68k.Disp(4, 1), 1)
		e.Lea(m68k.Disp(4+synnet.HeaderBytes, 0), 0)
		emitCopy(e) // D1 payload bytes, (A0)+ -> (A1)+
		// Publish: only the flag makes the slot visible.
		e.MoveL(m68k.PostInc(7), m68k.D(1))
		e.MoveL(m68k.Imm(1), m68k.D(2))
		e.Lea(m68k.Disp(NQFlags, 2), 0)
		e.MoveB(m68k.D(2), m68k.Idx(0, 0, 1, 1)) // flags[index] = 1
		e.AddL(m68k.Imm(1), m68k.Disp(NQGauge, 2))
		// "A waiting thread's unblocking procedure is chained to the
		// end of the interrupt handling."
		e.Lea(m68k.Disp(NQRWait, 2), 0)
		e.Jsr(k.WakeCellRoutine())
		e.Bra("nd_next")
		e.Label("nd_full")
		e.AddL(m68k.Imm(1), m68k.Disp(NQDrops, 2))

		// Return ring slots to the NIC: the claim already advanced the
		// tail cell, so publish its current value. A preempted sibling
		// activation may still be copying out of a slot this store
		// frees — if the device overwrites it mid-copy, the checksum
		// verify above catches the tear and the frame is dropped for
		// the sender's retransmission to cover, never corrupted
		// silently.
		e.Label("nd_next")
		e.MoveL(m68k.Abs(tailCell), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Abs(rxTail))
		e.Bra("nd_drain")

		e.Label("nd_done")
		if generic {
			e.MoveL(m68k.PostInc(7), m68k.D(3))
		}
		e.MoveL(m68k.PostInc(7), m68k.A(2))
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.MoveL(m68k.PostInc(7), m68k.D(2))
		e.MoveL(m68k.PostInc(7), m68k.D(1))
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.Rte()
	})
	io.pokeAllVectors(m68k.VecAutovector+m68k.IRQNet, io.netIntH)
}

func sockLabel(i int) string {
	return "nd_s" + string(rune('0'+i))
}

// pokePortTable mirrors the open-socket set into the in-memory port
// table the generic fallback handler walks. Maintained on every
// open/close so the fallback can engage at any moment.
func (io *IO) pokePortTable() {
	m := io.K.M
	m.Poke(io.netPortCount, 4, uint32(len(io.socks)))
	for i, s := range io.socks {
		m.Poke(io.netPortTab+uint32(i)*8, 4, s.Local)
		m.Poke(io.netPortTab+uint32(i)*8+4, 4, s.Queue)
	}
}

// OpenSocket binds a datagram socket to a local port, connected to a
// remote port, synthesizing its send and receive routines and
// installing them on a fresh descriptor of t. Returns -1 when the
// port is taken or descriptors are exhausted.
func (io *IO) OpenSocket(t *kernel.Thread, local, remote uint32) int32 {
	k := io.K
	if t == nil {
		return -1
	}
	for _, s := range io.socks {
		if s.Local == local {
			return -1
		}
	}
	fd := allocFD(t)
	if fd < 0 {
		return -1
	}
	q, err := k.Heap.Alloc(nqSize)
	if err != nil {
		return -1
	}
	if len(io.socks) >= maxSockets {
		return -1
	}
	// One long of slack past FrameMax: the send path zero-pads the
	// payload tail long before the long-wise checksum.
	stage, err := k.Heap.Alloc(synnet.FrameMax + 4)
	if err != nil {
		return -1
	}
	for off := uint32(0); off < NQSlots; off += 4 {
		k.M.Poke(q+off, 4, 0)
	}
	s := &NSocket{Local: local, Remote: remote, Queue: q, Stage: stage, TTE: t.TTE, FD: fd}
	io.socks = append(io.socks, s)
	io.registerSockMetrics(s)
	io.resynthNetHandler()

	read := io.synthSockRecv(t, fd, s)
	write := io.synthSockSend(t, fd, s)
	t.FDs[fd] = kernel.FDInfo{Kind: "sock", Aux: q}
	k.M.Poke(kernel.FDCell(t.TTE, int(fd), kernel.FDAux), 4, q)
	k.M.Poke(kernel.FDCell(t.TTE, int(fd), kernel.FDPos), 4, 0)
	io.installFD(t, fd, read, write)
	return fd
}

// sock implements the kernel's SockHook.
func (io *IO) sock(k *kernel.Kernel, t *kernel.Thread, local, remote uint32) (int32, bool) {
	fd := io.OpenSocket(t, local, remote)
	return fd, fd >= 0
}

// closeSocket removes a closed descriptor's socket from the
// demultiplex set and rebuilds the handler.
func (io *IO) closeSocket(t *kernel.Thread, fd int32) {
	for i, s := range io.socks {
		if s.TTE == t.TTE && s.FD == fd {
			io.socks = append(io.socks[:i], io.socks[i+1:]...)
			io.unregisterSockMetrics(s)
			io.resynthNetHandler()
			return
		}
	}
}

// synthSockSend emits the socket's write routine: send(d1=buf,
// d2=len) -> d0 = payload bytes sent, or -1 when the NIC ring stayed
// full through the whole retry budget. The destination and source
// ports are immediates stored straight into the staging frame — the
// header "layer" has been collapsed into two constant stores — and
// the checksum is a register loop over the staged payload with the
// staging address folded in, stored straight into the header: no
// separate checksum layer runs at call time. The NIC launch is two
// folded-address register stores under a brief mask so concurrent
// senders cannot interleave the address/length pair; a refused
// launch (TxStat 0: ring full) is retried with exponential backoff,
// spinning unmasked so the receive interrupt can drain the ring.
func (io *IO) synthSockSend(t *kernel.Thread, fd int32, s *NSocket) uint32 {
	stage := s.Stage
	q := s.Queue
	g := kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)
	txAddr := m68k.NetBase + m68k.NetRegTxAddr
	txLen := m68k.NetBase + m68k.NetRegTxLen
	txStat := m68k.NetBase + m68k.NetRegTxStat
	return io.K.C.Build(t.Q, "sock_send").
		Named(fmt.Sprintf("kio.sock%d.send", s.Local)).
		Counted().
		Bind("remote", synth.ConstOf(s.Remote)).
		Bind("local", synth.ConstOf(s.Local)).
		Emit(func(e *synth.Emitter) {
			e.CmpL(m68k.Imm(synnet.MTU), m68k.D(2))
			e.Bls("ss_fit")
			e.MoveL(m68k.Imm(synnet.MTU), m68k.D(2))
			e.Label("ss_fit")
			// The frame header, as two immediate stores: the peer ports
			// are Env constants folded straight into the emitted code.
			e.MoveL(e.HoleOperand("remote"), m68k.Abs(stage+0))
			e.MoveL(e.HoleOperand("local"), m68k.Abs(stage+4))
			// Zero the staging long the payload tail lands in, so the
			// long-wise checksum below sees zero padding (the stage is one
			// long larger than FrameMax for exactly this).
			e.MoveL(m68k.D(2), m68k.D(0))
			e.AndL(m68k.Imm(^int32(3)), m68k.D(0))
			e.Lea(m68k.Abs(stage+synnet.HeaderBytes), 0)
			e.Clr(4, m68k.Idx(0, 0, 0, 1))
			e.MoveL(m68k.D(2), m68k.PreDec(7)) // payload length
			e.MoveL(m68k.D(1), m68k.A(0))
			e.Lea(m68k.Abs(stage+synnet.HeaderBytes), 1)
			e.MoveL(m68k.D(2), m68k.D(1))
			emitCopy(e)
			// Checksum the staged payload long-wise straight into the
			// header slot: two instructions per long.
			e.MoveL(m68k.Ind(7), m68k.D(0))
			e.AddL(m68k.Imm(3), m68k.D(0))
			e.LsrL(m68k.Imm(2), m68k.D(0)) // payload long count
			e.Lea(m68k.Abs(stage+synnet.HeaderBytes), 0)
			e.Clr(4, m68k.D(1))
			e.Tst(4, m68k.D(0))
			e.Beq("ss_ckdone")
			e.SubL(m68k.Imm(1), m68k.D(0))
			e.Label("ss_cksum")
			e.AddL(m68k.PostInc(0), m68k.D(1))
			e.Dbra(0, "ss_cksum")
			e.Label("ss_ckdone")
			e.MoveL(m68k.D(1), m68k.Abs(stage+8))
			e.MoveL(m68k.PostInc(7), m68k.D(0)) // payload length
			e.MoveL(m68k.Imm(sendRetries), m68k.D(2))
			e.MoveL(m68k.Imm(sendBackoff0), m68k.A(1)) // backoff spin count
			// Launch. The receive interrupt for loopback traffic latches
			// during the masked pair and is taken right after the unmask.
			e.Label("ss_try")
			e.OrSR(iplMaskBits)
			e.MoveL(m68k.Imm(int32(stage)), m68k.Abs(txAddr))
			e.MoveL(m68k.D(0), m68k.D(1))
			e.AddL(m68k.Imm(synnet.HeaderBytes), m68k.D(1))
			e.MoveL(m68k.D(1), m68k.Abs(txLen)) // the store launches the frame
			e.AndSR(^uint16(iplMaskBits))
			e.Tst(4, m68k.Abs(txStat))
			e.Bne("ss_sent")
			// Refused: ring full. Back off and retry, bounded.
			e.SubL(m68k.Imm(1), m68k.D(2))
			e.Beq("ss_fail")
			e.MoveL(m68k.A(1), m68k.D(1))
			e.Label("ss_spin")
			e.SubL(m68k.Imm(1), m68k.D(1))
			e.Bne("ss_spin")
			e.MoveL(m68k.A(1), m68k.D(1))
			e.AddL(m68k.D(1), m68k.D(1)) // double the backoff
			e.MoveL(m68k.D(1), m68k.A(1))
			e.Bra("ss_try")
			e.Label("ss_fail")
			e.AddL(m68k.Imm(1), m68k.Abs(q+NQTxFail))
			e.MoveL(m68k.Imm(-1), m68k.D(0))
			e.Rte()
			e.Label("ss_sent")
			e.AddL(m68k.D(0), m68k.Abs(g))
			e.Rte()
		})
}

// synthSockRecv emits the socket's read routine: recv(d1=buf,
// d2=len) -> d0 = payload bytes. The queue base, flag array and slot
// geometry are folded constants; the consumer trusts only the
// per-slot valid flag, parking on the reader cell with the interrupt
// level raised across the check (the producer is the receive
// interrupt handler).
func (io *IO) synthSockRecv(t *kernel.Thread, fd int32, s *NSocket) uint32 {
	q := s.Queue
	g := kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)
	return io.K.C.Build(t.Q, "sock_recv").
		Named(fmt.Sprintf("kio.sock%d.recv", s.Local)).
		Counted().
		Emit(func(e *synth.Emitter) {
			e.Label("sr_wait")
			e.OrSR(iplMaskBits)
			e.MoveL(m68k.Abs(q+NQTail), m68k.D(0))
			e.AndL(m68k.Imm(NQSlotCount-1), m68k.D(0))
			e.Lea(m68k.Abs(q+NQFlags), 0)
			e.Tst(1, m68k.Idx(0, 0, 0, 1)) // flags[tail & mask]
			e.Bne("sr_have")
			e.Lea(m68k.Abs(q+NQRWait), 0)
			e.Jsr(io.K.BlockOnRoutine())
			e.AndSR(^uint16(iplMaskBits))
			e.Bra("sr_wait")
			e.Label("sr_have")
			e.AndSR(^uint16(iplMaskBits))
			// A0 = slot; the flag alone published it, so the copy runs
			// unmasked.
			e.MoveL(m68k.D(0), m68k.PreDec(7)) // slot index
			e.LslL(m68k.Imm(8), m68k.D(0))     // * NQSlotBytes
			e.Lea(m68k.Abs(q+NQSlots), 0)
			e.AddL(m68k.D(0), m68k.A(0))
			e.MoveL(m68k.Ind(0), m68k.D(0)) // payload length
			e.Cmp(4, m68k.D(2), m68k.D(0))
			e.Bls("sr_fit")
			e.MoveL(m68k.D(2), m68k.D(0)) // clamp to the caller's buffer
			e.Label("sr_fit")
			e.MoveL(m68k.D(1), m68k.A(1))
			e.Lea(m68k.Disp(4, 0), 0)
			e.MoveL(m68k.D(0), m68k.PreDec(7)) // return count
			e.MoveL(m68k.D(0), m68k.D(1))
			emitCopy(e)
			e.MoveL(m68k.PostInc(7), m68k.D(0))
			// Retire the slot: clear the flag first, then advance the
			// tail — a producer may claim the slot the moment the tail
			// moves.
			e.MoveL(m68k.PostInc(7), m68k.D(1))
			e.Lea(m68k.Abs(q+NQFlags), 0)
			e.Clr(1, m68k.Idx(0, 0, 1, 1))
			e.AddL(m68k.Imm(1), m68k.Abs(q+NQTail))
			e.AddL(m68k.D(0), m68k.Abs(g))
			e.Rte()
		})
}
