package kio

import (
	"fmt"

	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	synnet "synthesis/internal/net"
	"synthesis/internal/synth"
)

// The network device server: the Synthesis treatment of packet I/O.
// The NIC DMAs arriving frames into a kernel descriptor ring; the
// receive interrupt handler demultiplexes each frame by destination
// port and deposits it into the owning socket's packet queue — the
// optimistic MP-SC queue of Figure 2 laid out in machine memory
// (CAS-claimed head, per-slot valid flags, single consumer trusting
// only the flags). The demultiplex chain is resynthesized on every
// socket open, so the port numbers are compare-immediates in the
// handler, not a table walk (Factoring Invariants applied to the
// interrupt path itself).
//
// Per-socket send and receive routines are synthesized by the socket
// open: the peer ports, the staging buffer, the queue base and the
// ring geometry are all folded into the emitted code, and the frame
// header construction is inlined into the copy setup (Collapsing
// Layers — there is no separate "header layer" at run time).

// Per-socket packet queue layout in machine memory. Head and tail are
// free-running counts; slot index = count & (NQSlotCount-1). A slot
// holds [payload length (4)][payload bytes]. The valid flags are one
// byte per slot: the producer's CAS on the head only claims a slot —
// the flag store publishes it, and the consumer trusts nothing else.
const (
	NQHead      = 0  // producer claim count (CAS target)
	NQTail      = 4  // consumer count
	NQRWait     = 8  // reader wait cell
	NQGauge     = 12 // frames deposited (I/O gauge)
	NQDrops     = 16 // frames dropped at a full queue
	NQFlags     = 20 // NQSlotCount valid-flag bytes
	NQSlots     = 28 // slot array
	NQSlotCount = 8
	NQSlotBytes = 256
	nqSize      = NQSlots + NQSlotCount*NQSlotBytes
)

// NIC receive ring geometry (kernel side).
const (
	netRingSlots  = 16
	netRingSlotSz = 256
)

// NSocket is the host-side mirror of one open socket.
type NSocket struct {
	Local, Remote uint32
	Queue         uint32 // packet queue base in machine memory
	Stage         uint32 // transmit staging buffer
	TTE           uint32
	FD            int32
}

// NetIntHandler returns the current synthesized network receive
// interrupt handler's code address.
func (io *IO) NetIntHandler() uint32 { return io.netIntH }

// NetSockets returns the open sockets (host view, for tests).
func (io *IO) NetSockets() []*NSocket { return io.socks }

// NetStackDrops returns frames the handler discarded because no
// socket owned their destination port (host view).
func (io *IO) NetStackDrops() uint32 {
	return io.K.M.Peek(io.netDropCell, 4)
}

// installNet allocates the NIC's DMA receive ring, programs the
// device, and installs the (initially socket-less) receive handler.
func (io *IO) installNet() {
	k := io.K
	// [tail cell (4)][stack-drop cell (4)][ring slots]
	base, err := k.Heap.Alloc(8 + netRingSlots*netRingSlotSz)
	if err != nil {
		panic("kio: cannot allocate NIC receive ring")
	}
	io.netTailCell = base
	io.netDropCell = base + 4
	io.netRing = base + 8
	k.M.Poke(io.netTailCell, 4, 0)
	k.M.Poke(io.netDropCell, 4, 0)

	k.M.Store(m68k.NetBase+m68k.NetRegRxBase, 4, io.netRing)
	k.M.Store(m68k.NetBase+m68k.NetRegRxSlots, 4, netRingSlots)
	k.M.Store(m68k.NetBase+m68k.NetRegSlotSz, 4, netRingSlotSz)
	k.M.Store(m68k.NetBase+m68k.NetRegCtl, 4, 1)

	io.resynthNetHandler()
}

// resynthNetHandler rebuilds the receive interrupt handler with the
// current socket set's ports folded in as compare-immediates, and
// installs it in every vector table. The previous handler is
// abandoned in code space, as the original kernel does.
func (io *IO) resynthNetHandler() {
	k := io.K
	tailCell := io.netTailCell
	dropCell := io.netDropCell
	ring := io.netRing
	rxHead := m68k.NetBase + m68k.NetRegRxHead
	rxTail := m68k.NetBase + m68k.NetRegRxTail
	socks := append([]*NSocket(nil), io.socks...)

	io.netIntH = k.C.Build(nil, "net_intr").Named("kio.net_intr").Emit(func(e *synth.Emitter) {
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.MoveL(m68k.D(1), m68k.PreDec(7))
		e.MoveL(m68k.D(2), m68k.PreDec(7))
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		e.MoveL(m68k.A(2), m68k.PreDec(7))

		// Drain every frame the NIC has DMA'd: one interrupt covers a
		// whole delivery batch.
		e.Label("nd_drain")
		e.MoveL(m68k.Abs(tailCell), m68k.D(0))
		e.Cmp(4, m68k.Abs(rxHead), m68k.D(0))
		e.Beq("nd_done")
		// A0 = ring slot for this frame: base + (count & mask)*slotSz.
		e.MoveL(m68k.D(0), m68k.D(1))
		e.AndL(m68k.Imm(netRingSlots-1), m68k.D(1))
		e.LslL(m68k.Imm(8), m68k.D(1)) // * netRingSlotSz
		e.Lea(m68k.Abs(ring), 0)
		e.AddL(m68k.D(1), m68k.A(0))
		// Demultiplex on the destination port in the frame header. The
		// open sockets' ports are synthesis-time constants: the "port
		// table" is this compare chain.
		e.MoveL(m68k.Disp(4, 0), m68k.D(1)) // dst port
		for i, s := range socks {
			e.CmpL(m68k.Imm(int32(s.Local)), m68k.D(1))
			e.Beq(sockLabel(i))
		}
		e.AddL(m68k.Imm(1), m68k.Abs(dropCell)) // nobody home
		e.Bra("nd_next")
		for i, s := range socks {
			e.Label(sockLabel(i))
			e.Lea(m68k.Abs(s.Queue), 2)
			e.Bra("nd_dep")
		}
		if len(socks) == 0 {
			// Keep the shared deposit block reachable-by-label even
			// with no sockets; it is simply never branched to.
			e.Bra("nd_next")
		}

		// Shared deposit block: A0 = ring slot, A2 = socket queue.
		// Optimistic MP-SC insert: CAS claims a slot on the head
		// count, the copy fills it, the flag store publishes it.
		e.Label("nd_dep")
		e.MoveL(m68k.Disp(NQHead, 2), m68k.D(1))
		e.Label("nd_claim")
		e.MoveL(m68k.D(1), m68k.D(2))
		e.SubL(m68k.Disp(NQTail, 2), m68k.D(2))
		e.CmpL(m68k.Imm(NQSlotCount), m68k.D(2))
		e.Bcc("nd_full")
		e.MoveL(m68k.D(1), m68k.D(2))
		e.AddL(m68k.Imm(1), m68k.D(2))
		e.Cas(4, 1, 2, m68k.Disp(NQHead, 2))
		e.Bne("nd_claim") // lost the race: D1 holds the fresh head
		// Claimed slot: A1 = destination, then strip the header as
		// part of the copy setup — source starts past [len][dst][src].
		e.AndL(m68k.Imm(NQSlotCount-1), m68k.D(1))
		e.MoveL(m68k.D(1), m68k.PreDec(7)) // slot index, for the flag
		e.LslL(m68k.Imm(8), m68k.D(1))     // * NQSlotBytes
		e.Lea(m68k.Disp(NQSlots, 2), 1)
		e.AddL(m68k.D(1), m68k.A(1))
		e.MoveL(m68k.Ind(0), m68k.D(1)) // frame length
		e.SubL(m68k.Imm(synnet.HeaderBytes), m68k.D(1))
		e.MoveL(m68k.D(1), m68k.Ind(1)) // slot payload length
		e.Lea(m68k.Disp(4, 1), 1)
		e.Lea(m68k.Disp(4+synnet.HeaderBytes, 0), 0)
		emitCopy(e) // D1 payload bytes, (A0)+ -> (A1)+
		// Publish: only the flag makes the slot visible.
		e.MoveL(m68k.PostInc(7), m68k.D(1))
		e.MoveL(m68k.Imm(1), m68k.D(2))
		e.Lea(m68k.Disp(NQFlags, 2), 0)
		e.MoveB(m68k.D(2), m68k.Idx(0, 0, 1, 1)) // flags[index] = 1
		e.AddL(m68k.Imm(1), m68k.Disp(NQGauge, 2))
		// "A waiting thread's unblocking procedure is chained to the
		// end of the interrupt handling."
		e.Lea(m68k.Disp(NQRWait, 2), 0)
		e.Jsr(k.WakeCellRoutine())
		e.Bra("nd_next")
		e.Label("nd_full")
		e.AddL(m68k.Imm(1), m68k.Disp(NQDrops, 2))

		// Return the ring slot to the NIC.
		e.Label("nd_next")
		e.AddL(m68k.Imm(1), m68k.Abs(tailCell))
		e.MoveL(m68k.Abs(tailCell), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Abs(rxTail))
		e.Bra("nd_drain")

		e.Label("nd_done")
		e.MoveL(m68k.PostInc(7), m68k.A(2))
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.MoveL(m68k.PostInc(7), m68k.D(2))
		e.MoveL(m68k.PostInc(7), m68k.D(1))
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.Rte()
	})
	io.pokeAllVectors(m68k.VecAutovector+m68k.IRQNet, io.netIntH)
}

func sockLabel(i int) string {
	return "nd_s" + string(rune('0'+i))
}

// OpenSocket binds a datagram socket to a local port, connected to a
// remote port, synthesizing its send and receive routines and
// installing them on a fresh descriptor of t. Returns -1 when the
// port is taken or descriptors are exhausted.
func (io *IO) OpenSocket(t *kernel.Thread, local, remote uint32) int32 {
	k := io.K
	if t == nil {
		return -1
	}
	for _, s := range io.socks {
		if s.Local == local {
			return -1
		}
	}
	fd := allocFD(t)
	if fd < 0 {
		return -1
	}
	q, err := k.Heap.Alloc(nqSize)
	if err != nil {
		return -1
	}
	stage, err := k.Heap.Alloc(synnet.FrameMax)
	if err != nil {
		return -1
	}
	for off := uint32(0); off < NQSlots; off += 4 {
		k.M.Poke(q+off, 4, 0)
	}
	s := &NSocket{Local: local, Remote: remote, Queue: q, Stage: stage, TTE: t.TTE, FD: fd}
	io.socks = append(io.socks, s)
	io.resynthNetHandler()

	read := io.synthSockRecv(t, fd, s)
	write := io.synthSockSend(t, fd, s)
	t.FDs[fd] = kernel.FDInfo{Kind: "sock", Aux: q}
	k.M.Poke(kernel.FDCell(t.TTE, int(fd), kernel.FDAux), 4, q)
	k.M.Poke(kernel.FDCell(t.TTE, int(fd), kernel.FDPos), 4, 0)
	io.installFD(t, fd, read, write)
	return fd
}

// sock implements the kernel's SockHook.
func (io *IO) sock(k *kernel.Kernel, t *kernel.Thread, local, remote uint32) (int32, bool) {
	fd := io.OpenSocket(t, local, remote)
	return fd, fd >= 0
}

// closeSocket removes a closed descriptor's socket from the
// demultiplex set and rebuilds the handler.
func (io *IO) closeSocket(t *kernel.Thread, fd int32) {
	for i, s := range io.socks {
		if s.TTE == t.TTE && s.FD == fd {
			io.socks = append(io.socks[:i], io.socks[i+1:]...)
			io.resynthNetHandler()
			return
		}
	}
}

// synthSockSend emits the socket's write routine: send(d1=buf,
// d2=len) -> d0 = payload bytes sent. The destination and source
// ports are immediates stored straight into the staging frame — the
// header "layer" has been collapsed into two constant stores — and
// the NIC launch is two folded-address register stores under a brief
// mask so concurrent senders cannot interleave the address/length
// pair.
func (io *IO) synthSockSend(t *kernel.Thread, fd int32, s *NSocket) uint32 {
	stage := s.Stage
	g := kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)
	txAddr := m68k.NetBase + m68k.NetRegTxAddr
	txLen := m68k.NetBase + m68k.NetRegTxLen
	return io.K.C.Build(t.Q, "sock_send").
		Named(fmt.Sprintf("kio.sock%d.send", s.Local)).
		Bind("remote", synth.ConstOf(s.Remote)).
		Bind("local", synth.ConstOf(s.Local)).
		Emit(func(e *synth.Emitter) {
		e.CmpL(m68k.Imm(synnet.MTU), m68k.D(2))
		e.Bls("ss_fit")
		e.MoveL(m68k.Imm(synnet.MTU), m68k.D(2))
		e.Label("ss_fit")
		// The frame header, as two immediate stores: the peer ports
		// are Env constants folded straight into the emitted code.
		e.MoveL(e.HoleOperand("remote"), m68k.Abs(stage+0))
		e.MoveL(e.HoleOperand("local"), m68k.Abs(stage+4))
		e.MoveL(m68k.D(2), m68k.PreDec(7)) // payload length
		e.MoveL(m68k.D(1), m68k.A(0))
		e.Lea(m68k.Abs(stage+synnet.HeaderBytes), 1)
		e.MoveL(m68k.D(2), m68k.D(1))
		emitCopy(e)
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		// Launch. The receive interrupt for loopback traffic latches
		// during the masked pair and is taken right after the unmask.
		e.OrSR(iplMaskBits)
		e.MoveL(m68k.Imm(int32(stage)), m68k.Abs(txAddr))
		e.MoveL(m68k.D(0), m68k.D(1))
		e.AddL(m68k.Imm(synnet.HeaderBytes), m68k.D(1))
		e.MoveL(m68k.D(1), m68k.Abs(txLen)) // the store launches the frame
		e.AndSR(^uint16(iplMaskBits))
		e.AddL(m68k.D(0), m68k.Abs(g))
		e.Rte()
	})
}

// synthSockRecv emits the socket's read routine: recv(d1=buf,
// d2=len) -> d0 = payload bytes. The queue base, flag array and slot
// geometry are folded constants; the consumer trusts only the
// per-slot valid flag, parking on the reader cell with the interrupt
// level raised across the check (the producer is the receive
// interrupt handler).
func (io *IO) synthSockRecv(t *kernel.Thread, fd int32, s *NSocket) uint32 {
	q := s.Queue
	g := kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)
	return io.K.C.Build(t.Q, "sock_recv").
		Named(fmt.Sprintf("kio.sock%d.recv", s.Local)).
		Emit(func(e *synth.Emitter) {
		e.Label("sr_wait")
		e.OrSR(iplMaskBits)
		e.MoveL(m68k.Abs(q+NQTail), m68k.D(0))
		e.AndL(m68k.Imm(NQSlotCount-1), m68k.D(0))
		e.Lea(m68k.Abs(q+NQFlags), 0)
		e.Tst(1, m68k.Idx(0, 0, 0, 1)) // flags[tail & mask]
		e.Bne("sr_have")
		e.Lea(m68k.Abs(q+NQRWait), 0)
		e.Jsr(io.K.BlockOnRoutine())
		e.AndSR(^uint16(iplMaskBits))
		e.Bra("sr_wait")
		e.Label("sr_have")
		e.AndSR(^uint16(iplMaskBits))
		// A0 = slot; the flag alone published it, so the copy runs
		// unmasked.
		e.MoveL(m68k.D(0), m68k.PreDec(7)) // slot index
		e.LslL(m68k.Imm(8), m68k.D(0))     // * NQSlotBytes
		e.Lea(m68k.Abs(q+NQSlots), 0)
		e.AddL(m68k.D(0), m68k.A(0))
		e.MoveL(m68k.Ind(0), m68k.D(0)) // payload length
		e.Cmp(4, m68k.D(2), m68k.D(0))
		e.Bls("sr_fit")
		e.MoveL(m68k.D(2), m68k.D(0)) // clamp to the caller's buffer
		e.Label("sr_fit")
		e.MoveL(m68k.D(1), m68k.A(1))
		e.Lea(m68k.Disp(4, 0), 0)
		e.MoveL(m68k.D(0), m68k.PreDec(7)) // return count
		e.MoveL(m68k.D(0), m68k.D(1))
		emitCopy(e)
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		// Retire the slot: clear the flag first, then advance the
		// tail — a producer may claim the slot the moment the tail
		// moves.
		e.MoveL(m68k.PostInc(7), m68k.D(1))
		e.Lea(m68k.Abs(q+NQFlags), 0)
		e.Clr(1, m68k.Idx(0, 0, 1, 1))
		e.AddL(m68k.Imm(1), m68k.Abs(q+NQTail))
		e.AddL(m68k.D(0), m68k.Abs(g))
		e.Rte()
	})
}
