package kio

import (
	"synthesis/internal/fs"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// Synthesized file and /dev/null I/O (Table 2).
//
// The file read of the paper is the showcase specialization: open
// binds the file's buffer-cache address, its size cell and the
// descriptor's position cell (a TTE-local cell — Code Isolation: each
// thread updates its own descriptor state without locks) into a short
// routine, so a later read never consults a descriptor table, vnode
// or cache index.

// synthNull builds the /dev/null pair. Read returns 0 (end of file),
// write claims everything was written: the whole routine is the
// residue after every invariant folds away.
func (io *IO) synthNull(t *kernel.Thread, fd int32) (read, write uint32) {
	c := io.K.C
	read = c.Synthesize(t.Q, "null_read", nil, func(e *synth.Emitter) {
		e.Clr(4, m68k.D(0))
		e.Rte()
	})
	write = c.Synthesize(t.Q, "null_write", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.D(2), m68k.D(0))
		e.Rte()
	})
	return read, write
}

// synthFile builds the read/write pair for a plain memory-resident
// file ("Data already in kernel queues or buffer cache", Table 2).
func (io *IO) synthFile(t *kernel.Thread, fd int32, f *fs.File) (read, write uint32) {
	return io.synthFileRead(t, fd, f), io.synthFileWrite(t, fd, f)
}

// synthFileRead emits read(d1=buf, d2=len) -> d0 = n.
func (io *IO) synthFileRead(t *kernel.Thread, fd int32, f *fs.File) uint32 {
	c := io.K.C
	pos := kernel.FDCell(t.TTE, int(fd), kernel.FDPos)
	sizeCell := f.Entry + fs.EntSize
	data := f.Data
	return c.Synthesize(t.Q, "file_read", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.D(1), m68k.A(1))     // dst
		e.MoveL(m68k.Abs(pos), m68k.D(0)) // position
		e.MoveL(m68k.Abs(sizeCell), m68k.D(1))
		e.SubL(m68k.D(0), m68k.D(1)) // avail = size - pos
		e.Bhi("fr_some")
		e.Clr(4, m68k.D(0)) // at or past EOF
		e.Rte()
		e.Label("fr_some")
		// n = min(avail, len)
		e.Cmp(4, m68k.D(2), m68k.D(1))
		e.Bls("fr_n")
		e.MoveL(m68k.D(2), m68k.D(1))
		e.Label("fr_n")
		// src = data + pos; pos += n
		e.Lea(m68k.Abs(data), 0)
		e.AddL(m68k.D(0), m68k.A(0))
		e.AddL(m68k.D(1), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Abs(pos))
		e.MoveL(m68k.D(1), m68k.PreDec(7)) // save n
		emitCopy(e)                        // n bytes, clobbers d0/d1
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		// Byte-rate gauge for the fine-grain scheduler.
		e.AddL(m68k.D(0), m68k.Abs(kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)))
		e.Rte()
	})
}

// synthFileWrite emits write(d1=buf, d2=len) -> d0 = n (bounded by
// the file's capacity; the memory-resident file grows in place).
func (io *IO) synthFileWrite(t *kernel.Thread, fd int32, f *fs.File) uint32 {
	c := io.K.C
	pos := kernel.FDCell(t.TTE, int(fd), kernel.FDPos)
	sizeCell := f.Entry + fs.EntSize
	data := f.Data
	capLimit := f.Cap
	return c.Synthesize(t.Q, "file_write", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.D(1), m68k.A(0))     // src
		e.MoveL(m68k.Abs(pos), m68k.D(0)) // position
		e.MoveL(m68k.Imm(int32(capLimit)), m68k.D(1))
		e.SubL(m68k.D(0), m68k.D(1)) // room = cap - pos
		e.Bhi("fw_some")
		e.Clr(4, m68k.D(0))
		e.Rte()
		e.Label("fw_some")
		e.Cmp(4, m68k.D(2), m68k.D(1))
		e.Bls("fw_n")
		e.MoveL(m68k.D(2), m68k.D(1))
		e.Label("fw_n")
		e.Lea(m68k.Abs(data), 1)
		e.AddL(m68k.D(0), m68k.A(1)) // dst = data + pos
		e.AddL(m68k.D(1), m68k.D(0)) // pos += n
		e.MoveL(m68k.D(0), m68k.Abs(pos))
		// size = max(size, pos)
		e.Cmp(4, m68k.Abs(sizeCell), m68k.D(0))
		e.Bls("fw_nosz")
		e.MoveL(m68k.D(0), m68k.Abs(sizeCell))
		e.Label("fw_nosz")
		e.MoveL(m68k.D(1), m68k.PreDec(7))
		emitCopy(e)
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.AddL(m68k.D(0), m68k.Abs(kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)))
		e.Rte()
	})
}
