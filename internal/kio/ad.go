package kio

import (
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// The A/D device server (Section 5.4): the sampler interrupts 44,100
// times per second, far too often to pay a full queue insert per
// sample, so the synthesized handler packs eight 32-bit words into
// each queue element — a buffered queue whose per-sample insert is "a
// couple of instructions", with the real queue-advance cost amortized
// by the blocking factor.

// ADBlockingFactor is the samples packed per queue element.
const ADBlockingFactor = 8

// adChunks is the queue depth in elements.
const adChunks = 32

// ADQueue is the buffered sample queue (host-side mirror).
//
// Memory layout:
//
//	+0  wrptr  — write cursor inside the current element
//	+4  count  — samples remaining until the element is full
//	+8  head   — producer element index
//	+12 tail   — consumer element index
//	+16 rwait  — reader wait cell
//	+20 gauge  — element completion count
//	+24 buf    — adChunks elements of ADBlockingFactor words
type ADQueue struct {
	Addr uint32
}

const (
	adWrPtr = 0
	adCount = 4
	adHead  = 8
	adTail  = 12
	adRWait = 16
	adGauge = 20
	adBuf   = 24
)

const adChunkBytes = ADBlockingFactor * 4

// installAD allocates the buffered queue and synthesizes the
// interrupt handler (Table 5: "Service raw A/D interrupt: 3 usec" —
// the fast path below is the couple-of-instructions insert plus the
// interrupt envelope).
func (io *IO) installAD() {
	k := io.K
	addr, err := k.Heap.Alloc(adBuf + adChunks*adChunkBytes)
	if err != nil {
		panic("kio: cannot allocate A/D queue")
	}
	q := &ADQueue{Addr: addr}
	io.adQ = q
	m := k.M
	m.Poke(addr+adWrPtr, 4, addr+adBuf)
	m.Poke(addr+adCount, 4, ADBlockingFactor)
	m.Poke(addr+adHead, 4, 0)
	m.Poke(addr+adTail, 4, 0)
	m.Poke(addr+adRWait, 4, 0)
	m.Poke(addr+adGauge, 4, 0)

	wr := addr + adWrPtr
	cnt := addr + adCount
	headC := addr + adHead
	rwait := addr + adRWait
	gauge := addr + adGauge
	bufBase := addr + adBuf

	io.adIntH = k.C.Synthesize(nil, "ad_intr", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		// The couple-of-instructions fast path: store the sample
		// through the write cursor and count down.
		e.MoveL(m68k.Abs(m68k.ADBase+m68k.ADRegData), m68k.D(0))
		e.MoveL(m68k.Abs(wr), m68k.A(0))
		e.MoveL(m68k.D(0), m68k.PostInc(0))
		e.MoveL(m68k.A(0), m68k.Abs(wr))
		e.SubL(m68k.Imm(1), m68k.Abs(cnt))
		e.Bne("ad_done")
		// Element complete (every eighth sample): advance the queue.
		e.MoveL(m68k.Imm(ADBlockingFactor), m68k.Abs(cnt))
		e.MoveL(m68k.Abs(headC), m68k.D(0))
		e.AddL(m68k.Imm(1), m68k.D(0))
		e.CmpL(m68k.Imm(adChunks), m68k.D(0))
		e.Bne("ad_nowrap")
		e.Clr(4, m68k.D(0))
		e.MoveL(m68k.Imm(int32(bufBase)), m68k.Abs(wr))
		e.Label("ad_nowrap")
		e.MoveL(m68k.D(0), m68k.Abs(headC))
		e.AddL(m68k.Imm(1), m68k.Abs(gauge))
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		e.Lea(m68k.Abs(rwait), 0)
		e.Jsr(k.WakeCellRoutine())
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.Label("ad_done")
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.Rte()
	})
	io.pokeAllVectors(m68k.VecAutovector+m68k.IRQAD, io.adIntH)
}

// SynthUnbufferedADHandler builds the ablation comparison for the
// buffered queue: the same A/D interrupt handler but with a full
// queue-element advance on EVERY sample (blocking factor 1), i.e.
// what Section 5.4 says is too expensive at 44,100 interrupts per
// second. Returns the handler's code address.
func (io *IO) SynthUnbufferedADHandler() uint32 {
	k := io.K
	q := io.adQ
	wr := q.Addr + adWrPtr
	headC := q.Addr + adHead
	rwait := q.Addr + adRWait
	gauge := q.Addr + adGauge
	bufBase := q.Addr + adBuf

	return k.C.Synthesize(nil, "ad_intr_unbuffered", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.Abs(m68k.ADBase+m68k.ADRegData), m68k.D(0))
		e.MoveL(m68k.Abs(wr), m68k.A(0))
		e.MoveL(m68k.D(0), m68k.PostInc(0))
		e.MoveL(m68k.A(0), m68k.Abs(wr))
		// Advance the queue every sample: head bump, wrap check,
		// gauge, wake — the per-element work the blocking factor
		// amortizes away.
		e.MoveL(m68k.Abs(headC), m68k.D(0))
		e.AddL(m68k.Imm(1), m68k.D(0))
		e.CmpL(m68k.Imm(adChunks*ADBlockingFactor), m68k.D(0))
		e.Bne("nowrap")
		e.Clr(4, m68k.D(0))
		e.MoveL(m68k.Imm(int32(bufBase)), m68k.Abs(wr))
		e.Label("nowrap")
		e.MoveL(m68k.D(0), m68k.Abs(headC))
		e.AddL(m68k.Imm(1), m68k.Abs(gauge))
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		e.Lea(m68k.Abs(rwait), 0)
		e.Jsr(k.WakeCellRoutine())
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.Rte()
	})
}

// ADQ exposes the buffered queue for tests and benchmarks.
func (io *IO) ADQ() *ADQueue { return io.adQ }

// Completed returns how many elements the handler has completed.
func (q *ADQueue) Completed(m *m68k.Machine) uint32 {
	return m.Peek(q.Addr+adGauge, 4)
}

// synthAD builds the /dev/ad read: whole elements only — each read
// transfers as many completed 32-byte elements as fit the caller's
// buffer, blocking until at least one is available.
// read(d1=buf, d2=len) -> d0 = bytes.
func (io *IO) synthAD(t *kernel.Thread, fd int32) uint32 {
	q := io.adQ
	headC := q.Addr + adHead
	tailC := q.Addr + adTail
	rwait := q.Addr + adRWait
	bufBase := q.Addr + adBuf

	return io.K.C.Synthesize(t.Q, "ad_read", nil, func(e *synth.Emitter) {
		// Fewer than one element's worth requested: nothing to do.
		e.CmpL(m68k.Imm(adChunkBytes), m68k.D(2))
		e.Bcc("ar_ok")
		e.Clr(4, m68k.D(0))
		e.Rte()
		e.Label("ar_ok")
		e.MoveL(m68k.D(1), m68k.A(1)) // dst
		e.MoveL(m68k.D(1), m68k.PreDec(7))

		e.Label("ar_loop")
		e.CmpL(m68k.Imm(adChunkBytes), m68k.D(2))
		e.Bcs("ar_done") // no room for another element
		// Wait for a completed element.
		e.Label("ar_wait")
		e.OrSR(iplMaskBits)
		e.MoveL(m68k.Abs(headC), m68k.D(0))
		e.Cmp(4, m68k.Abs(tailC), m68k.D(0))
		e.Bne("ar_have")
		// Return what we already moved rather than park if we have
		// at least one element.
		e.Cmp(4, m68k.Ind(7), m68k.A(1))
		e.Bhi("ar_doneMasked")
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		e.Lea(m68k.Abs(rwait), 0)
		e.Jsr(io.K.BlockOnRoutine())
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.AndSR(^uint16(iplMaskBits))
		e.Bra("ar_wait")
		e.Label("ar_have")
		e.AndSR(^uint16(iplMaskBits))
		// src = buf + tail*chunkBytes
		e.MoveL(m68k.Abs(tailC), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.D(1))
		e.LslL(m68k.Imm(5), m68k.D(1)) // *32
		e.Lea(m68k.Abs(bufBase), 0)
		e.AddL(m68k.D(1), m68k.A(0))
		// Copy one element.
		e.MoveL(m68k.Imm(adChunkBytes), m68k.D(1))
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		emitCopy(e)
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		// tail = (tail+1) % chunks
		e.AddL(m68k.Imm(1), m68k.D(0))
		e.CmpL(m68k.Imm(adChunks), m68k.D(0))
		e.Bne("ar_nw")
		e.Clr(4, m68k.D(0))
		e.Label("ar_nw")
		e.MoveL(m68k.D(0), m68k.Abs(tailC))
		e.SubL(m68k.Imm(adChunkBytes), m68k.D(2))
		e.Bra("ar_loop")

		e.Label("ar_doneMasked")
		e.AndSR(^uint16(iplMaskBits))
		e.Label("ar_done")
		e.MoveL(m68k.A(1), m68k.D(0))
		e.SubL(m68k.PostInc(7), m68k.D(0)) // bytes = cursor - base
		e.Rte()
	})
}
