package kio

import (
	"synthesis/internal/fs"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// The disk pipeline of Section 5.1: "Connected to the disk hardware we
// have a raw disk device server. The next stage in the pipeline is the
// disk scheduler, which contains the disk request queue, followed by
// the default file system cache manager ... Directly connected to the
// cache manager we have the synthesized code to read the currently
// open files."
//
// Disk-resident files are demand-loaded: the routine open synthesizes
// carries a fault prologue that checks the file's cached flag; on a
// miss it drives the raw disk server block by block — program the DMA
// registers, park on the disk wait cell, get woken by the interrupt
// handler — and then falls into the same specialized read body that
// memory-resident files use. The file geometry (start block, buffer
// address, block count, flag cell) is folded into the code at open
// time.

// installDisk synthesizes the disk interrupt handler and allocates
// the wait cell ("the disk request queue" degenerates to a single
// outstanding request: the machine has one disk and requests are
// serialized through the wait cell).
func (io *IO) installDisk() {
	k := io.K
	cell, err := k.Heap.Alloc(8)
	if err != nil {
		panic("kio: cannot allocate disk wait cell")
	}
	io.diskWait = cell
	k.M.Poke(io.diskWait, 4, 0)

	io.diskIntH = k.C.Synthesize(nil, "disk_intr", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		// Chained unblock of the thread waiting for the transfer.
		e.Lea(m68k.Abs(io.diskWait), 0)
		e.Jsr(k.WakeCellRoutine())
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.Rte()
	})
	io.pokeAllVectors(m68k.VecAutovector+m68k.IRQDisk, io.diskIntH)
}

// StoreDiskFile writes contents onto consecutive disk blocks and
// registers a disk-resident file for them. Blocks are allocated
// sequentially from the host-side cursor.
func (io *IO) StoreDiskFile(name string, contents []byte) (*fs.File, error) {
	k := io.K
	nblocks := (len(contents) + m68k.DiskBlockSize - 1) / m68k.DiskBlockSize
	if nblocks == 0 {
		nblocks = 1
	}
	start := io.nextDiskBlock
	for b := 0; b < nblocks; b++ {
		lo := b * m68k.DiskBlockSize
		hi := lo + m68k.DiskBlockSize
		if hi > len(contents) {
			hi = len(contents)
		}
		if int(start)+b >= len(k.Disk.Blocks) {
			panic("kio: disk full")
		}
		blk := k.Disk.Blocks[start+uint32(b)]
		for i := range blk {
			blk[i] = 0
		}
		copy(blk, contents[lo:hi])
	}
	io.nextDiskBlock += uint32(nblocks)
	return k.FS.CreateOnDisk(name, start, uint32(len(contents)), uint32(nblocks*m68k.DiskBlockSize))
}

// synthDiskFile builds the read/write pair for a disk-resident file:
// the plain specialized body behind a demand-load prologue.
func (io *IO) synthDiskFile(t *kernel.Thread, fd int32, f *fs.File) (read, write uint32) {
	k := io.K
	pos := kernel.FDCell(t.TTE, int(fd), kernel.FDPos)
	sizeCell := f.Entry + fs.EntSize
	data := f.Data
	nblocks := (f.Cap + m68k.DiskBlockSize - 1) / m68k.DiskBlockSize
	// The cached flag lives in the descriptor's aux cell so tests can
	// watch it; all descriptors for the same file share the cache
	// buffer but fault independently (a shared flag would need the
	// cache manager's bookkeeping; one cell per open keeps the
	// synthesized code self-contained).
	cachedCell := kernel.FDCell(t.TTE, int(fd), kernel.FDAux)
	k.M.Poke(cachedCell, 4, 0)

	read = k.C.Synthesize(t.Q, "diskfile_read", nil, func(e *synth.Emitter) {
		// Fault prologue: demand-load every block through the raw
		// disk server on first use.
		e.TstL(m68k.Abs(cachedCell))
		e.Bne("cached")
		e.MoveL(m68k.D(1), m68k.PreDec(7)) // preserve the caller's buffer/length
		e.MoveL(m68k.D(2), m68k.PreDec(7))
		e.MoveL(m68k.Imm(int32(nblocks)), m68k.D(2)) // blocks to go
		e.MoveL(m68k.Imm(int32(f.Block)), m68k.D(1)) // current block
		e.Lea(m68k.Abs(data), 1)                     // cache cursor
		e.Label("fault")
		// Program the raw disk server's DMA registers.
		e.MoveL(m68k.D(1), m68k.Abs(m68k.DiskBase+m68k.DiskRegBlock))
		e.MoveL(m68k.A(1), m68k.Abs(m68k.DiskBase+m68k.DiskRegAddr))
		e.MoveL(m68k.Imm(1), m68k.Abs(m68k.DiskBase+m68k.DiskRegCmd))
		// Park until the completion interrupt; re-check the done bit
		// under the mask so the wakeup cannot slip by.
		e.Label("wait")
		e.OrSR(iplMaskBits)
		e.MoveL(m68k.Abs(m68k.DiskBase+m68k.DiskRegStatus), m68k.D(0))
		e.Btst(m68k.Imm(1), m68k.D(0))
		e.Bne("done")
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		e.Lea(m68k.Abs(io.diskWait), 0)
		e.Jsr(k.BlockOnRoutine())
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.AndSR(^uint16(iplMaskBits))
		e.Bra("wait")
		e.Label("done")
		e.AndSR(^uint16(iplMaskBits))
		e.AddL(m68k.Imm(1), m68k.D(1))
		e.Lea(m68k.Disp(m68k.DiskBlockSize, 1), 1)
		e.SubL(m68k.Imm(1), m68k.D(2))
		e.Bne("fault")
		e.MoveL(m68k.Imm(1), m68k.Abs(cachedCell))
		e.MoveL(m68k.PostInc(7), m68k.D(2))
		e.MoveL(m68k.PostInc(7), m68k.D(1))
		e.Label("cached")

		// The specialized body, identical to the memory-resident
		// file read.
		e.MoveL(m68k.D(1), m68k.A(1))
		e.MoveL(m68k.Abs(pos), m68k.D(0))
		e.MoveL(m68k.Abs(sizeCell), m68k.D(1))
		e.SubL(m68k.D(0), m68k.D(1))
		e.Bhi("some")
		e.Clr(4, m68k.D(0))
		e.Rte()
		e.Label("some")
		e.Cmp(4, m68k.D(2), m68k.D(1))
		e.Bls("n")
		e.MoveL(m68k.D(2), m68k.D(1))
		e.Label("n")
		e.Lea(m68k.Abs(data), 0)
		e.AddL(m68k.D(0), m68k.A(0))
		e.AddL(m68k.D(1), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Abs(pos))
		e.MoveL(m68k.D(1), m68k.PreDec(7))
		emitCopy(e)
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.AddL(m68k.D(0), m68k.Abs(kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)))
		e.Rte()
	})

	// Writes go to the cache buffer (write-back: nothing is flushed
	// to the disk blocks, matching the memory-resident semantics of
	// the rest of the file system). Note the demand-load ordering: a
	// write through a descriptor that has never faulted is clobbered
	// when a later read faults the blocks in; read before writing.
	write = io.synthFileWrite(t, fd, f)
	return read, write
}
