package kio

import (
	"synthesis/internal/fs"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// The guest-visible metrics quaject: a /proc-style read-only
// pseudo-file that serves the observability registry's snapshot to VM
// programs, closing the loop between the kernel and the plane that
// watches it. Host tools see the registry through quamon
// -metrics-json; guest programs see the very same bytes by opening
// /proc/metrics (JSON) or /proc/metrics.prom (Prometheus text)
// through either the native Synthesis open or the UNIX emulator.
//
// The serving path is the paper's stream-I/O discipline applied to
// introspection. Open cuts a snapshot (refresh-on-open: every open
// re-samples the registry), renders it with the same
// metrics.Snapshot renderer the host export uses, pokes the bytes
// into a per-open kernel buffer, and synthesizes the read routine
// with the buffer's address and length bound as CONSTANTS through
// synth.Builder's hole environment — Factoring Invariants: a later
// read never consults a descriptor record, it executes code that
// already knows where the snapshot lives and how long it is. Each
// open resynthesizes the routine around the freshly cut snapshot;
// close frees the buffer (the code, as everywhere else in this
// kernel, is abandoned in code space).
//
// SynthGenericProcRead builds the SAME template with both holes bound
// to descriptor cells instead of constants and the block copy behind
// a jsr layer — the generic, layered read a traditional kernel would
// run. The bench table "proc" counts both paths on the instruction
// counter.

// Guest-visible pseudo-file names.
const (
	ProcMetricsPath     = "/proc/metrics"      // JSON snapshot
	ProcMetricsPromPath = "/proc/metrics.prom" // Prometheus text snapshot
)

// fdProcLen is the fd-slot offset (after the kernel's FDPos/FDAux/
// FDGauge/FDKind cells) where the proc open records the snapshot's
// byte length. The specialized read folds the value into an
// immediate; the generic layered read fetches it from this cell on
// every call.
const fdProcLen = 16

// installProc registers the pseudo-files in the directory. The
// entries carry no data: contents materialize per open.
func (io *IO) installProc() {
	mustCreate(io.K.FS.CreateSpecial(ProcMetricsPath, fs.SpecialMetrics))
	mustCreate(io.K.FS.CreateSpecial(ProcMetricsPromPath, fs.SpecialMetrics))
}

// renderProcSnapshot cuts and renders a fresh snapshot for the named
// pseudo-file. A nil registry renders the zero snapshot, so the file
// stays readable on kernels booted without the plane.
func (io *IO) renderProcSnapshot(name string) []byte {
	snap := io.K.Metrics.Snapshot()
	var data []byte
	var err error
	if name == ProcMetricsPromPath {
		data, err = snap.PromBytes()
	} else {
		data, err = snap.JSONBytes()
	}
	if err != nil {
		// The renderer writes to memory; an error here is a host-side
		// programming bug. Serve an empty snapshot rather than dying.
		data = []byte("{}\n")
	}
	return data
}

// synthProcRead implements the metrics quaject's open: cut + render a
// snapshot, stage it in a per-open kernel buffer, and emit the
// specialized read with the buffer geometry folded in.
func (io *IO) synthProcRead(t *kernel.Thread, fd int32, f *fs.File) uint32 {
	k := io.K
	data := io.renderProcSnapshot(f.Name)
	io.procLast = append(io.procLast[:0], data...)

	buf, err := k.Heap.Alloc(uint32(len(data)))
	if err != nil {
		// Heap exhausted: the descriptor gets the bad-fd stub. Clear the
		// aux cell so a later close does not free a stale address.
		k.M.Poke(kernel.FDCell(t.TTE, int(fd), kernel.FDAux), 4, 0)
		return 0
	}
	k.M.PokeBytes(buf, data)

	// Mirror the geometry into the descriptor slot: the generic
	// layered read (and close's buffer free) find it there.
	k.M.Poke(kernel.FDCell(t.TTE, int(fd), kernel.FDAux), 4, buf)
	k.M.Poke(kernel.FDCell(t.TTE, int(fd), fdProcLen), 4, uint32(len(data)))

	pos := kernel.FDCell(t.TTE, int(fd), kernel.FDPos)
	gauge := kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)
	return k.C.Build(t.Q, "proc_read").
		Named("kio.proc.read").
		Counted().
		Bind("snap_base", synth.ConstOf(buf)).
		Bind("snap_len", synth.ConstOf(uint32(len(data)))).
		Emit(func(e *synth.Emitter) {
			emitProcReadBody(e, pos, gauge, nil)
		})
}

// emitProcReadBody is the one template behind both instantiations:
// read(d1=buf, d2=len) -> d0 = n, copying from the snapshot buffer
// named by the "snap_base"/"snap_len" holes and advancing the pos
// cell. When copyVia is nil the block transfer is inlined (the
// collapsed, specialized shape); otherwise each call crosses into the
// copy routine at *copyVia — the layer boundary the generic build
// keeps.
func emitProcReadBody(e *synth.Emitter, pos, gauge uint32, copyVia *uint32) {
	e.MoveL(m68k.D(1), m68k.A(1))     // dst
	e.MoveL(m68k.Abs(pos), m68k.D(0)) // position
	e.LoadHole("snap_len", m68k.D(1))
	e.SubL(m68k.D(0), m68k.D(1)) // avail = len - pos
	e.Bhi("pr_some")
	e.Clr(4, m68k.D(0)) // at or past end of snapshot
	e.Rte()
	e.Label("pr_some")
	// n = min(avail, len)
	e.Cmp(4, m68k.D(2), m68k.D(1))
	e.Bls("pr_n")
	e.MoveL(m68k.D(2), m68k.D(1))
	e.Label("pr_n")
	// src = base + pos; pos += n
	e.LeaHole("snap_base", 0)
	e.AddL(m68k.D(0), m68k.A(0))
	e.AddL(m68k.D(1), m68k.D(0))
	e.MoveL(m68k.D(0), m68k.Abs(pos))
	e.MoveL(m68k.D(1), m68k.PreDec(7)) // save n
	if copyVia != nil {
		e.Jsr(*copyVia)
	} else {
		emitCopy(e)
	}
	e.MoveL(m68k.PostInc(7), m68k.D(0))
	e.AddL(m68k.D(0), m68k.Abs(gauge))
	e.Rte()
}

// SynthGenericProcRead builds the generic, layered instantiation of
// the proc read for an ALREADY-OPEN proc descriptor and installs it
// on a fresh descriptor of the same thread, sharing the open's
// snapshot buffer. Both holes bind to the descriptor cells (two extra
// memory indirections per call) and the block transfer runs behind a
// jsr into a byte-loop bcopy — the un-specialized shape a layered
// kernel executes. Returns the new descriptor, or -1.
//
// This exists for the bench table "proc" and the tests: the same
// workload reads the same snapshot through both instantiations and
// the instruction counter tells them apart.
func (io *IO) SynthGenericProcRead(t *kernel.Thread, procFD int32) int32 {
	k := io.K
	fd := allocFD(t)
	if fd < 0 {
		return -1
	}
	srcAux := kernel.FDCell(t.TTE, int(procFD), kernel.FDAux)
	srcLen := kernel.FDCell(t.TTE, int(procFD), fdProcLen)
	pos := kernel.FDCell(t.TTE, int(fd), kernel.FDPos)
	gauge := kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)
	k.M.Poke(pos, 4, 0)

	// The generic server's copy layer: D1 bytes from (A0)+ to (A1)+,
	// one byte per round — the bcopy a generic path calls instead of
	// splicing an unrolled transfer into the caller.
	bcopy := k.C.Build(t.Q, "proc_bcopy").Named("kio.proc.bcopy").Emit(func(e *synth.Emitter) {
		e.TstL(m68k.D(1))
		e.Beq("bc_done")
		e.Label("bc_loop")
		e.MoveB(m68k.PostInc(0), m68k.PostInc(1))
		e.SubL(m68k.Imm(1), m68k.D(1))
		e.Bne("bc_loop")
		e.Label("bc_done")
		e.Rts()
	})

	read := k.C.Build(t.Q, "proc_read_generic").
		Named("kio.proc.read_generic").
		Bind("snap_base", synth.CellAt(srcAux)).
		Bind("snap_len", synth.CellAt(srcLen)).
		Emit(func(e *synth.Emitter) {
			emitProcReadBody(e, pos, gauge, &bcopy)
		})

	t.FDs[fd] = kernel.FDInfo{Kind: "proc-generic", File: ProcMetricsPath, Aux: 0}
	io.installFD(t, fd, read, 0)
	return fd
}

// closeProc releases the open's snapshot buffer. The synthesized
// routine is abandoned in code space like every other per-open
// routine.
func (io *IO) closeProc(t *kernel.Thread, fd int32) {
	buf := io.K.M.Peek(kernel.FDCell(t.TTE, int(fd), kernel.FDAux), 4)
	if buf != 0 {
		_ = io.K.Heap.Free(buf)
	}
}

// ProcLast returns the bytes of the most recently cut /proc snapshot
// (what the last open staged for its reader) — the host-side truth a
// guest read is compared against in tests.
func (io *IO) ProcLast() []byte { return io.procLast }
