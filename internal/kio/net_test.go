package kio_test

import (
	"testing"

	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// emitSock opens a socket: local port D1, remote port D2, fd in D0.
func emitSock(e *synth.Emitter, local, remote int32) {
	e.MoveL(m68k.Imm(kernel.SysSock), m68k.D(0))
	e.MoveL(m68k.Imm(local), m68k.D(1))
	e.MoveL(m68k.Imm(remote), m68k.D(2))
	e.Trap(kernel.TrapSys)
}

func TestSocketLoopbackSameThread(t *testing.T) {
	k, io := boot(t)
	const res, wbuf, rbuf = 0x9000, 0x9300, 0x9700
	k.M.PokeBytes(wbuf, []byte("ping!"))
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitSock(e, 5, 9) // fd 0
		e.MoveL(m68k.D(0), m68k.Abs(res))
		emitSock(e, 9, 5) // fd 1
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		// A duplicate local port must fail.
		emitSock(e, 5, 77)
		e.MoveL(m68k.D(0), m68k.Abs(res+8))
		// Send on fd 0: the loopback NIC DMAs the frame back and the
		// receive interrupt deposits it into fd 1's queue before the
		// send trap returns.
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(5), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res+12))
		// Receive on fd 1.
		e.MoveL(m68k.Imm(rbuf), m68k.D(1))
		e.MoveL(m68k.Imm(64), m68k.D(2))
		e.Trap(kernel.TrapRead + 1)
		e.MoveL(m68k.D(0), m68k.Abs(res+16))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 20_000_000)
	if got := int32(k.M.Peek(res, 4)); got != 0 {
		t.Errorf("first socket fd = %d, want 0", got)
	}
	if got := int32(k.M.Peek(res+4, 4)); got != 1 {
		t.Errorf("second socket fd = %d, want 1", got)
	}
	if got := int32(k.M.Peek(res+8, 4)); got != -1 {
		t.Errorf("duplicate port open = %d, want -1", got)
	}
	if got := k.M.Peek(res+12, 4); got != 5 {
		t.Errorf("send = %d, want 5", got)
	}
	if got := k.M.Peek(res+16, 4); got != 5 {
		t.Errorf("recv = %d, want 5", got)
	}
	if got := string(k.M.PeekBytes(rbuf, 5)); got != "ping!" {
		t.Errorf("payload %q, want \"ping!\"", got)
	}
	if io.NetStackDrops() != 0 {
		t.Errorf("stack drops = %d", io.NetStackDrops())
	}
}

func TestSocketBlockingRecvAcrossThreads(t *testing.T) {
	k, io := boot(t)
	const res, wbuf, rbuf = 0x9000, 0x9300, 0x9700
	k.M.PokeBytes(wbuf, []byte("wake"))

	// The reader runs first and parks on its empty socket; the sender
	// then transmits and the receive interrupt's wakeup unblocks it.
	reader := k.C.Synthesize(nil, "reader", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(rbuf), m68k.D(1))
		e.MoveL(m68k.Imm(64), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		exitSeq(e)
	})
	sender := k.C.Synthesize(nil, "sender", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(4), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		exitSeq(e)
	})
	tr := k.SpawnKernel("reader", reader)
	ts := k.SpawnKernel("sender", sender)
	if io.OpenSocket(tr, 9, 5) != 0 {
		t.Fatal("reader socket fd")
	}
	if io.OpenSocket(ts, 5, 9) != 0 {
		t.Fatal("sender socket fd")
	}
	run(t, k, tr, 50_000_000)
	if got := k.M.Peek(res, 4); got != 4 {
		t.Errorf("blocked recv = %d, want 4", got)
	}
	if got := string(k.M.PeekBytes(rbuf, 4)); got != "wake" {
		t.Errorf("payload %q, want \"wake\"", got)
	}
	if got := k.M.Peek(res+4, 4); got != 4 {
		t.Errorf("send = %d, want 4", got)
	}
}

func TestSocketUnboundPortCountsStackDrop(t *testing.T) {
	k, io := boot(t)
	const wbuf = 0x9300
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitSock(e, 3, 4242) // nobody listens on 4242
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(8), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 20_000_000)
	if got := io.NetStackDrops(); got != 1 {
		t.Errorf("stack drops = %d, want 1", got)
	}
}

func TestSocketCloseRemovesDemux(t *testing.T) {
	k, io := boot(t)
	const res, wbuf = 0x9000, 0x9300
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitSock(e, 5, 9) // fd 0
		emitSock(e, 9, 5) // fd 1
		// Close the receiver; its port must vanish from the handler.
		e.MoveL(m68k.Imm(kernel.SysClose), m68k.D(0))
		e.MoveL(m68k.Imm(1), m68k.D(1))
		e.Trap(kernel.TrapSys)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(4), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 20_000_000)
	if got := int32(k.M.Peek(res, 4)); got != 0 {
		t.Errorf("close = %d, want 0", got)
	}
	if got := io.NetStackDrops(); got != 1 {
		t.Errorf("frame for closed port: stack drops = %d, want 1", got)
	}
	if n := len(io.NetSockets()); n != 1 {
		t.Errorf("open sockets = %d, want 1", n)
	}
}

func TestSocketQueueOverflowDrops(t *testing.T) {
	k, io := boot(t)
	const res, wbuf = 0x9000, 0x9300
	// Fire more frames than the receiver's queue holds while nobody
	// reads: the deposit path must drop the excess, not corrupt.
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitSock(e, 5, 9) // fd 0
		emitSock(e, 9, 5) // fd 1, never read
		e.MoveL(m68k.Imm(int32(kio.NQSlotCount)+4), m68k.D(5))
		e.Label("flood")
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(16), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		e.SubL(m68k.Imm(1), m68k.D(5))
		e.Bne("flood")
		e.MoveL(m68k.D(0), m68k.Abs(res))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 50_000_000)
	s := io.NetSockets()[1]
	if got := k.M.Peek(s.Queue+kio.NQDrops, 4); got != 4 {
		t.Errorf("queue drops = %d, want 4", got)
	}
	if got := k.M.Peek(s.Queue+kio.NQGauge, 4); got != kio.NQSlotCount {
		t.Errorf("frames deposited = %d, want %d", got, kio.NQSlotCount)
	}
}
