package kio

import (
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/metrics"
	"synthesis/internal/synth"
)

// The network watchdog quaject: the recovery plane's policy half.
//
// The data plane already degrades on its own — checksummed receive,
// bounded-retry send, counted drops. What it cannot do alone is
// notice that the *handler itself* has gone wrong: a device screaming
// interrupts at its level (an IRQ storm), or a synthesized handler
// that runs but no longer drains the ring (wedged — e.g. its code was
// clobbered). The watchdog samples the handler's gauges once per
// alarm window and responds the way Synthesis responds to everything:
// by resynthesizing the handler.
//
//   - Storm: handler entries per window exceed StormThreshold. The
//     handler is resynthesized with a coalescing front-end — only
//     every CoalesceBatch-th interrupt runs the drain, so a scream
//     costs three instructions instead of a drain attempt (Collapsing
//     Layers applied to recovery: the mitigation is folded into the
//     handler, not bolted on around it). When the rate falls below
//     half the threshold, the plain handler is resynthesized and one
//     interrupt is posted to drain whatever the batching deferred.
//
//   - Wedge: frames are pending (NIC head ahead of the kernel's
//     consumed-frame cursor) but the cursor has not moved for
//     WedgeWindows consecutive windows. The handler is resynthesized
//     in the generic layered discipline — a run-time port-table walk,
//     the way a conventional kernel demultiplexes — on the theory
//     that the specialized code path is what broke. One interrupt is
//     posted to restart the drain.
//
// Every transition is logged as a RecoveryEvent with the cycle it
// happened at; Table 7 reports recovery latency from these.

// WatchdogConfig tunes the policy.
type WatchdogConfig struct {
	WindowUS       float64 // alarm sampling window (default 500)
	StormThreshold uint32  // handler entries per window that count as a storm (default 64)
	CoalesceBatch  uint32  // drain every Nth interrupt while throttled (default 8, power of two)
	WedgeWindows   int     // stalled windows before the generic fallback (default 2)
}

// DefaultWatchdogConfig returns the standard policy settings.
func DefaultWatchdogConfig() WatchdogConfig {
	return WatchdogConfig{WindowUS: 500, StormThreshold: 64, CoalesceBatch: 8, WedgeWindows: 2}
}

// RecoveryEvent is one watchdog action, for reports and tests.
type RecoveryEvent struct {
	Cycle uint64
	Kind  string // "throttle-on", "throttle-off", "generic-fallback"
}

// Watchdog is the policy state. Policy runs in Go behind a KCALL (the
// same division as the fine-grain scheduler: gauges are bumped by
// synthesized code, the policy that reads them is host code).
type Watchdog struct {
	io  *IO
	Cfg WatchdogConfig

	Events    []RecoveryEvent
	throttled bool
	lastTail  uint32
	stalled   int
	proc      uint32 // synthesized alarm procedure

	// Metric handles (nil-safe no-ops without a wired registry).
	mEvents    *metrics.Counter
	mThrottled *metrics.Gauge
	mGeneric   *metrics.Gauge
}

const svcWatchdog = 111

// InstallWatchdog arranges for the watchdog to sample the network
// handler from the machine's alarm channel. It owns the alarm channel
// (like the scheduler's InstallAlarmDriver — install one or the
// other) and resynthesizes the receive handler so it maintains the
// storm gauge. Call before spawning threads or after; the vector
// pokes cover both.
func (io *IO) InstallWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.WindowUS <= 0 {
		cfg.WindowUS = 500
	}
	if cfg.StormThreshold == 0 {
		cfg.StormThreshold = 64
	}
	if cfg.CoalesceBatch == 0 {
		cfg.CoalesceBatch = 8
	}
	if cfg.WedgeWindows <= 0 {
		cfg.WedgeWindows = 2
	}
	k := io.K
	w := &Watchdog{io: io, Cfg: cfg}
	w.wireWatchdogMetrics()
	io.netWD = w
	io.resynthNetHandler() // now bumps the storm gauge

	cycles := int32(cfg.WindowUS * k.M.ClockMHz)
	k.M.RegisterService(svcWatchdog, func(mm *m68k.Machine) uint64 {
		w.tick()
		return 0
	})
	w.proc = k.C.Synthesize(nil, "net_watchdog", nil, func(e *synth.Emitter) {
		e.Kcall(svcWatchdog)
		e.MoveL(m68k.Imm(cycles), m68k.Abs(m68k.TimerBase+m68k.TimerRegAlarm))
		e.Rts()
	})
	k.M.Poke(kernel.GAlarmProc, 4, w.proc)
	k.Timer.Store(m68k.TimerRegAlarm, 4, uint32(cycles))
	k.M.Kick(k.Timer)
	return w
}

// tick runs one policy step: read and reset the window gauges, engage
// or release the storm throttle, detect a wedged handler.
func (w *Watchdog) tick() {
	io := w.io
	m := io.K.M
	entries := m.Peek(io.netStormCell, 4)
	m.Poke(io.netStormCell, 4, 0)

	if !w.throttled && entries >= w.Cfg.StormThreshold {
		w.throttled = true
		io.netCoalesce = w.Cfg.CoalesceBatch
		io.resynthNetHandler()
		w.event("throttle-on")
	} else if w.throttled && entries < w.Cfg.StormThreshold/2 {
		w.throttled = false
		io.netCoalesce = 0
		io.resynthNetHandler()
		// Drain whatever the batching deferred.
		m.PostInterrupt(m68k.IRQNet)
		w.event("throttle-off")
	}

	// Wedge: frames pending but the drain cursor stalled.
	tail := m.Peek(io.netTailCell, 4)
	if io.K.Net.RxPending() > 0 && tail == w.lastTail {
		w.stalled++
	} else {
		w.stalled = 0
	}
	w.lastTail = tail
	if w.stalled >= w.Cfg.WedgeWindows && !io.netGeneric {
		io.netGeneric = true
		io.resynthNetHandler()
		m.PostInterrupt(m68k.IRQNet)
		w.event("generic-fallback")
		w.stalled = 0
	}
}

func (w *Watchdog) event(kind string) {
	w.Events = append(w.Events, RecoveryEvent{Cycle: w.io.K.M.Clock(), Kind: kind})
	w.mEvents.Inc()
	w.io.reg().Counter("kio.net.recovery." + kind).Inc()
	w.mThrottled.Set(b2f(w.throttled))
	w.mGeneric.Set(b2f(w.io.netGeneric))
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Throttled reports whether the storm throttle is engaged.
func (w *Watchdog) Throttled() bool { return w.throttled }

// GenericFallback reports whether the receive path has fallen back to
// the layered table-walk handler.
func (io *IO) GenericFallback() bool { return io.netGeneric }
