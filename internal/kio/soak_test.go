package kio_test

import (
	"testing"

	"synthesis/internal/fault"
	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// TestFaultSoak is the acceptance soak: a seeded schedule of frame
// loss, wire corruption, spurious interrupts and one bus error, all
// at once. The kernel must keep serving loopback traffic — the
// faulting thread is reaped, not the machine; every acknowledged
// datagram arrives intact; corrupt frames are counted and discarded.
// The schedule is fully determined by soakSeed, so a failure replays.
func TestFaultSoak(t *testing.T) {
	const (
		soakSeed = 7
		frames   = 64
		addrQ    = 0x9000 // receive socket's packet-queue base
		addrRetx = 0x9004 // retransmission counter
		addrBad  = 0x9008 // payload-integrity mismatch counter
		wbuf     = 0x9300
		rbuf     = 0x9700
	)
	k, io := boot(t)
	inj := fault.New(fault.Plan{
		Drop:     0.15,
		Corrupt:  0.10,
		// Level 7 is the one autovector no driver claims, so these
		// land in the kernel's spurious counter.
		Spurious: []fault.Spurious{{Level: 7, MeanGap: 20_000}},
		BusErrs:  []fault.BusErr{{Dev: "disk", Nth: 1}},
	}, soakSeed)
	inj.Attach(k.M)

	// The sender runs stop-and-wait ARQ over the lossy loopback wire:
	// each datagram carries its index, a send whose deposit gauge does
	// not move was eaten by the wire and is retransmitted, and every
	// received payload is checked against the index it must carry.
	sender := k.C.Synthesize(nil, "soak", nil, func(e *synth.Emitter) {
		emitSock(e, 5, 9) // fd 0: send
		emitSock(e, 9, 5) // fd 1: receive
		e.MoveL(m68k.Abs(kernel.GCurTTE), m68k.A(0))
		e.MoveL(m68k.Disp(int32(kernel.TTEFDBase+kernel.FDSlotSize+kernel.FDAux), 0), m68k.Abs(addrQ))
		e.Clr(4, m68k.Abs(addrRetx))
		e.Clr(4, m68k.Abs(addrBad))
		e.MoveL(m68k.Imm(0), m68k.D(5))
		e.Label("loop")
		e.MoveL(m68k.Abs(addrQ), m68k.A(2))
		e.MoveL(m68k.Disp(kio.NQGauge, 2), m68k.D(4))
		e.Label("try")
		e.MoveL(m68k.D(5), m68k.Abs(wbuf)) // stamp the payload
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(16), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		e.MoveL(m68k.Abs(addrQ), m68k.A(2))
		e.MoveL(m68k.Disp(kio.NQGauge, 2), m68k.D(0))
		e.Cmp(4, m68k.D(4), m68k.D(0))
		e.Bne("arrived")
		e.AddL(m68k.Imm(1), m68k.Abs(addrRetx))
		e.Bra("try")
		e.Label("arrived")
		e.MoveL(m68k.Imm(rbuf), m68k.D(1))
		e.MoveL(m68k.Imm(64), m68k.D(2))
		e.Trap(kernel.TrapRead + 1)
		e.MoveL(m68k.Abs(rbuf), m68k.D(0))
		e.Cmp(4, m68k.D(5), m68k.D(0))
		e.Beq("intact")
		e.AddL(m68k.Imm(1), m68k.Abs(addrBad))
		e.Label("intact")
		e.AddL(m68k.Imm(1), m68k.D(5))
		e.CmpL(m68k.Imm(frames), m68k.D(5))
		e.Bne("loop")
		exitSeq(e)
	})

	// The victim pokes the disk device window in a loop; the injector
	// bus-errors the first access, which must kill this thread only.
	victimProg := k.C.Synthesize(nil, "victim", nil, func(e *synth.Emitter) {
		e.Label("again")
		e.MoveL(m68k.Abs(m68k.DiskBase), m68k.D(0))
		e.Bra("again")
	})

	th := k.SpawnKernel("soak", sender)
	victim := k.SpawnKernel("victim", victimProg)
	run(t, k, th, 200_000_000)

	// The machine survived (run would have failed the test otherwise);
	// the victim did not.
	if !victim.Dead {
		t.Error("victim thread survived its bus error")
	}
	if len(k.Faults) != 1 || k.Faults[0].Name != "victim" {
		t.Errorf("fault records = %+v, want exactly one for the victim", k.Faults)
	}
	if inj.Stats.BusErrors != 1 {
		t.Errorf("BusErrors = %d, want 1", inj.Stats.BusErrors)
	}

	// The wire really was hostile, and everything acked arrived intact.
	if inj.Stats.Dropped == 0 || inj.Stats.Corrupted == 0 {
		t.Fatalf("the wire was too kind: %+v", inj.Stats)
	}
	if retx := k.M.Peek(addrRetx, 4); retx < uint32(inj.Stats.Dropped) {
		t.Errorf("retransmits = %d for %d wire losses", retx, inj.Stats.Dropped+inj.Stats.Corrupted)
	}
	if bad := k.M.Peek(addrBad, 4); bad != 0 {
		t.Errorf("%d acked datagrams arrived with the wrong payload", bad)
	}

	// Corrupt frames were each counted once and never deposited.
	recv := io.NetSockets()[1]
	if errs := uint64(k.M.Peek(recv.Queue+kio.NQErrs, 4)); errs != inj.Stats.Corrupted {
		t.Errorf("NQErrs = %d, injector corrupted %d", errs, inj.Stats.Corrupted)
	}
	if gauge := k.M.Peek(recv.Queue+kio.NQGauge, 4); gauge != frames {
		t.Errorf("deposit gauge = %d, want %d (one per acked frame)", gauge, frames)
	}
	head, tail := k.M.Peek(recv.Queue+kio.NQHead, 4), k.M.Peek(recv.Queue+kio.NQTail, 4)
	if head != tail {
		t.Errorf("receive queue not drained: head %d, tail %d", head, tail)
	}

	// The spurious rain was delivered and shrugged off.
	if k.SpuriousIRQs() == 0 {
		t.Error("no spurious interrupts recorded")
	}
}
