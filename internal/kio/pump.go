package kio

import (
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// Kernel pump threads (Sections 2.1, 2.3 and 5.2): "Some threads
// never execute user-level code, but run entirely within the kernel
// to provide additional concurrency for some kernel operations" — and
// "a pump contains a thread that actively copies its input into its
// output. Pumps connect passive producers with passive consumers."
//
// SpawnPump synthesizes such a thread: a loop that reads from one
// pipe and writes everything it got to another, blocking on either
// side's wait cells like any stream client. The pump's own descriptor
// routines are synthesized by the same open machinery, so the loop
// body is just two traps and the bookkeeping.

// SpawnPump creates a kernel thread moving bytes from the read end of
// src to the write end of dst, using a transfer buffer of bufBytes.
// The pump runs forever (it is a kernel service thread and does not
// count toward the live-thread total).
func (io *IO) SpawnPump(name string, src, dst *Pipe, bufBytes int32) *kernel.Thread {
	k := io.K
	buf, err := k.Heap.Alloc(uint32(bufBytes))
	if err != nil {
		panic("kio: cannot allocate pump buffer")
	}

	// The thread is created first so its descriptors exist before the
	// body is synthesized (the trap numbers are compile-time
	// constants of the body).
	body := k.C.Synthesize(nil, "pump:"+name, nil, func(e *synth.Emitter) {
		e.Label("loop")
		// n = read(src fd 0, buf, bufBytes): blocks when dry.
		e.MoveL(m68k.Imm(int32(buf)), m68k.D(1))
		e.MoveL(m68k.Imm(bufBytes), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.TstL(m68k.D(0))
		e.Beq("loop")
		// write(dst fd 1, buf, n): blocks when full.
		e.MoveL(m68k.D(0), m68k.D(2))
		e.MoveL(m68k.Imm(int32(buf)), m68k.D(1))
		e.Trap(kernel.TrapWrite + 1)
		e.Bra("loop")
	})
	t := k.SpawnKernelStopped(name, body)
	if io.OpenPipeEnd(t, src, false) != 0 {
		panic("kio: pump read fd")
	}
	if io.OpenPipeEnd(t, dst, true) != 1 {
		panic("kio: pump write fd")
	}
	k.Link(t, k.Idle)
	t.Linked = true
	return t
}
