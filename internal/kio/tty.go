package kio

import (
	"synthesis/internal/fs"
	"synthesis/internal/kernel"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// The tty device server (Section 5.1): a raw server wrapping the
// hardware — its interrupt handler is the single producer of a
// dedicated input queue ("dedicated queues use the knowledge that
// only one producer is using the queue and omit the synchronization
// code") — and a cooked filter that interprets the erase and kill
// control characters. At boot the kernel collapses the layers: the
// cooked read inlines the raw get-character sequence instead of
// calling through a pipe (Section 5.4).

const (
	ttyQueueBytes = 256
	charErase     = 0x08 // backspace
	charKill      = 0x15 // ^U
	charNewline   = 0x0a
)

// installTTY builds the raw server: the input queue and the
// interrupt handler (Table 5: "Service raw TTY interrupt: 16 usec"),
// installed at IRQ 5 in the prototype vectors and all live threads.
func (io *IO) installTTY() {
	k := io.K
	q := io.NewKQueue(ttyQueueBytes)
	io.ttyQ = q.Addr

	head := q.Addr + KQHead
	tail := q.Addr + KQTail
	buf := q.Addr + KQBuf
	rwait := q.Addr + KQRWait
	gauge := q.Addr + KQGauge
	size := q.Size
	echo := io.echo

	io.ttyIntH = k.C.Build(nil, "tty_intr").Named("kio.tty_intr").Emit(func(e *synth.Emitter) {
		e.MoveL(m68k.D(0), m68k.PreDec(7))
		e.MoveL(m68k.D(1), m68k.PreDec(7))
		e.MoveL(m68k.A(0), m68k.PreDec(7))
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		// Pick up the character (the act of reading clears the
		// interrupt condition).
		e.MoveL(m68k.Abs(m68k.TTYBase+m68k.TTYRegData), m68k.D(0))
		if echo {
			// Echoing shares the output with user writes, which is
			// why the paper routes echo through an optimistic queue;
			// our output register accepts interleaved bytes, so the
			// echo is a single store.
			e.MoveB(m68k.D(0), m68k.Abs(m68k.TTYBase+m68k.TTYRegData))
		}
		// Dedicated-queue insert: this handler is the only producer.
		e.MoveL(m68k.Abs(head), m68k.D(1))
		e.Lea(m68k.Abs(buf), 0)
		e.MoveB(m68k.D(0), m68k.Idx(0, 0, 1, 1)) // buf[head] = char
		e.AddL(m68k.Imm(1), m68k.D(1))
		e.CmpL(m68k.Imm(size), m68k.D(1))
		e.Bne("nowrap")
		e.Clr(4, m68k.D(1))
		e.Label("nowrap")
		e.Cmp(4, m68k.Abs(tail), m68k.D(1))
		e.Beq("overflow") // queue full: drop the character
		e.MoveL(m68k.D(1), m68k.Abs(head))
		e.AddL(m68k.Imm(1), m68k.Abs(gauge))
		// "A waiting thread's unblocking procedure is chained to the
		// end of the interrupt handling" (Section 4.1).
		e.Lea(m68k.Abs(rwait), 0)
		e.Jsr(k.WakeCellRoutine())
		e.Label("overflow")
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.MoveL(m68k.PostInc(7), m68k.A(0))
		e.MoveL(m68k.PostInc(7), m68k.D(1))
		e.MoveL(m68k.PostInc(7), m68k.D(0))
		e.Rte()
	})
	io.pokeAllVectors(m68k.VecAutovector+m68k.IRQTTY, io.ttyIntH)

	// A raw device node alongside the cooked one.
	mustCreate(k.FS.CreateSpecial("/dev/rawtty", fs.SpecialTTY))
}

// synthTTY builds the cooked read/write pair (or the raw pair for
// /dev/rawtty, chosen by the open hook through synthRawTTY).
func (io *IO) synthTTY(t *kernel.Thread, fd int32) (read, write uint32) {
	return io.synthCookedRead(t), io.synthTTYWrite(t)
}

// synthRawTTY builds the raw pair: read is the plain bulk queue read.
func (io *IO) synthRawTTY(t *kernel.Thread, fd int32) (read, write uint32) {
	q := &KQueue{Addr: io.ttyQ, Size: ttyQueueBytes}
	g := kernel.FDCell(t.TTE, int(fd), kernel.FDGauge)
	read = io.K.C.Synthesize(t.Q, "rawtty_read", nil, func(e *synth.Emitter) {
		io.emitQueueRead(e, q, g)
	})
	return read, io.synthTTYWrite(t)
}

// synthTTYWrite emits the output path: write(d1=buf, d2=len) -> d0.
// Output goes byte by byte to the device register.
func (io *IO) synthTTYWrite(t *kernel.Thread) uint32 {
	return io.K.C.Synthesize(t.Q, "tty_write", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.D(2), m68k.D(0)) // return count
		e.TstL(m68k.D(2))
		e.Beq("tw_done")
		e.MoveL(m68k.D(1), m68k.A(0))
		e.MoveL(m68k.D(2), m68k.D(1))
		e.SubL(m68k.Imm(1), m68k.D(1))
		e.Label("tw_loop")
		e.MoveB(m68k.PostInc(0), m68k.Abs(m68k.TTYBase+m68k.TTYRegData))
		e.Dbra(1, "tw_loop")
		e.Label("tw_done")
		e.Rte()
	})
}

// SynthLayeredCookedRead builds the UN-collapsed cooked read for the
// ablation benchmarks: the line discipline is identical, but every
// character is fetched by calling a separate raw get-character
// routine — the layered structure the boot-time Collapsing Layers
// optimization of Section 5.4 eliminates. Returns the read routine's
// code address (installable on a descriptor by tests).
func (io *IO) SynthLayeredCookedRead(t *kernel.Thread) uint32 {
	q := &KQueue{Addr: io.ttyQ, Size: ttyQueueBytes}
	head := q.Addr + KQHead
	tail := q.Addr + KQTail
	buf := q.Addr + KQBuf
	rwait := q.Addr + KQRWait
	size := q.Size

	// The raw server's get-character entry point: blocks for a
	// character, returns it in D0. Clobbers D1, A0.
	getchar := io.K.C.Synthesize(t.Q, "rawtty_getchar", nil, func(e *synth.Emitter) {
		e.Label("wait")
		e.OrSR(iplMaskBits)
		e.MoveL(m68k.Abs(head), m68k.D(0))
		e.Cmp(4, m68k.Abs(tail), m68k.D(0))
		e.Bne("have")
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		e.Lea(m68k.Abs(rwait), 0)
		e.Jsr(io.K.BlockOnRoutine())
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.AndSR(^uint16(iplMaskBits))
		e.Bra("wait")
		e.Label("have")
		e.AndSR(^uint16(iplMaskBits))
		e.MoveL(m68k.Abs(tail), m68k.D(1))
		e.Lea(m68k.Abs(buf), 0)
		e.Clr(4, m68k.D(0))
		e.MoveB(m68k.Idx(0, 0, 1, 1), m68k.D(0))
		e.AddL(m68k.Imm(1), m68k.D(1))
		e.CmpL(m68k.Imm(size), m68k.D(1))
		e.Bne("nw")
		e.Clr(4, m68k.D(1))
		e.Label("nw")
		e.MoveL(m68k.D(1), m68k.Abs(tail))
		e.Rts()
	})

	return io.K.C.Synthesize(t.Q, "cooked_read_layered", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.D(1), m68k.A(1))
		e.MoveL(m68k.D(1), m68k.PreDec(7))
		e.MoveL(m68k.D(2), m68k.PreDec(7))
		e.Label("loop")
		e.TstL(m68k.D(2))
		e.Beq("done")
		e.Jsr(getchar) // the layer boundary the collapsed version inlines
		e.CmpL(m68k.Imm(charErase), m68k.D(0))
		e.Beq("erase")
		e.CmpL(m68k.Imm(charKill), m68k.D(0))
		e.Beq("kill")
		e.MoveB(m68k.D(0), m68k.PostInc(1))
		e.SubL(m68k.Imm(1), m68k.D(2))
		e.CmpL(m68k.Imm(charNewline), m68k.D(0))
		e.Beq("done")
		e.Bra("loop")
		e.Label("erase")
		e.Cmp(4, m68k.Disp(4, 7), m68k.A(1))
		e.Bls("loop")
		e.SubL(m68k.Imm(1), m68k.A(1))
		e.AddL(m68k.Imm(1), m68k.D(2))
		e.Bra("loop")
		e.Label("kill")
		e.MoveL(m68k.Disp(4, 7), m68k.A(1))
		e.MoveL(m68k.Ind(7), m68k.D(2))
		e.Bra("loop")
		e.Label("done")
		e.MoveL(m68k.A(1), m68k.D(0))
		e.SubL(m68k.Disp(4, 7), m68k.D(0))
		e.Lea(m68k.Disp(8, 7), 7)
		e.Rte()
	})
}

// synthCookedRead emits the cooked (line-discipline) read: gather
// characters into the caller's buffer, interpreting erase and kill,
// until a newline or the buffer fills. The raw get-character is
// inlined rather than called — Collapsing Layers, exactly the
// boot-time optimization Section 5.4 describes for this filter.
// read(d1=buf, d2=len) -> d0 = line length.
func (io *IO) synthCookedRead(t *kernel.Thread) uint32 {
	q := &KQueue{Addr: io.ttyQ, Size: ttyQueueBytes}
	head := q.Addr + KQHead
	tail := q.Addr + KQTail
	buf := q.Addr + KQBuf
	rwait := q.Addr + KQRWait
	size := q.Size

	return io.K.C.Synthesize(t.Q, "cooked_read", nil, func(e *synth.Emitter) {
		// Stack: [orig len][buf base] (top to bottom).
		e.MoveL(m68k.D(1), m68k.A(1)) // cursor
		e.MoveL(m68k.D(1), m68k.PreDec(7))
		e.MoveL(m68k.D(2), m68k.PreDec(7))

		e.Label("cr_loop")
		e.TstL(m68k.D(2))
		e.Beq("cr_done")
		// Inlined raw get-character with the park protected by the
		// interrupt mask (the producer is the tty interrupt).
		e.Label("cr_get")
		e.OrSR(iplMaskBits)
		e.MoveL(m68k.Abs(head), m68k.D(0))
		e.Cmp(4, m68k.Abs(tail), m68k.D(0))
		e.Bne("cr_have")
		e.MoveL(m68k.A(1), m68k.PreDec(7))
		e.Lea(m68k.Abs(rwait), 0)
		e.Jsr(io.K.BlockOnRoutine())
		e.MoveL(m68k.PostInc(7), m68k.A(1))
		e.AndSR(^uint16(iplMaskBits))
		e.Bra("cr_get")
		e.Label("cr_have")
		e.AndSR(^uint16(iplMaskBits))
		e.MoveL(m68k.Abs(tail), m68k.D(1))
		e.Lea(m68k.Abs(buf), 0)
		e.Clr(4, m68k.D(0))
		e.MoveB(m68k.Idx(0, 0, 1, 1), m68k.D(0)) // char = buf[tail]
		e.AddL(m68k.Imm(1), m68k.D(1))
		e.CmpL(m68k.Imm(size), m68k.D(1))
		e.Bne("cr_nw")
		e.Clr(4, m68k.D(1))
		e.Label("cr_nw")
		e.MoveL(m68k.D(1), m68k.Abs(tail))
		// Line discipline.
		e.CmpL(m68k.Imm(charErase), m68k.D(0))
		e.Beq("cr_erase")
		e.CmpL(m68k.Imm(charKill), m68k.D(0))
		e.Beq("cr_kill")
		e.MoveB(m68k.D(0), m68k.PostInc(1))
		e.SubL(m68k.Imm(1), m68k.D(2))
		e.CmpL(m68k.Imm(charNewline), m68k.D(0))
		e.Beq("cr_done")
		e.Bra("cr_loop")
		e.Label("cr_erase")
		e.Cmp(4, m68k.Disp(4, 7), m68k.A(1)) // cursor vs base
		e.Bls("cr_loop")                     // nothing to erase
		e.SubL(m68k.Imm(1), m68k.A(1))
		e.AddL(m68k.Imm(1), m68k.D(2))
		e.Bra("cr_loop")
		e.Label("cr_kill")
		e.MoveL(m68k.Disp(4, 7), m68k.A(1)) // cursor = base
		e.MoveL(m68k.Ind(7), m68k.D(2))     // remaining = orig len
		e.Bra("cr_loop")

		e.Label("cr_done")
		e.MoveL(m68k.A(1), m68k.D(0))
		e.SubL(m68k.Disp(4, 7), m68k.D(0)) // count = cursor - base
		e.Lea(m68k.Disp(8, 7), 7)          // drop the two saves
		e.Rte()
	})
}
