package kio_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

// bootProfiled is boot with the measurement plane attached from the
// first synthesized routine.
func bootProfiled(t *testing.T) (*kernel.Kernel, *kio.IO) {
	t.Helper()
	k := kernel.Boot(kernel.Config{
		Machine: m68k.Config{MemSize: 1 << 20, TraceDepth: 256},
		Profile: true,
	})
	io := kio.Install(k)
	return k, io
}

// TestInterruptLatencyUnderCombinedLoad drives TTY input and network
// loopback traffic at once and checks the profiler's per-level
// latency histograms: both IRQ sources must be seen, with sane
// latency bounds, while the region attribution stays complete.
func TestInterruptLatencyUnderCombinedLoad(t *testing.T) {
	k, io := bootProfiled(t)
	const nameAddr, res, wbuf, rbuf, lbuf = 0x9100, 0x9000, 0x9300, 0x9700, 0x9500
	pokeName(k, nameAddr, "/dev/tty")
	k.M.PokeBytes(wbuf, []byte("wake"))
	// TTY characters arrive while the socket traffic is in flight, so
	// both IRQ levels (TTY = 5, net = 1) fire during the run.
	k.TTY.InputString("hi!\n", 1000, 2000)

	// The reader parks on its empty socket; the sender transmits
	// (raising the net IRQ via the loopback NIC), then reads a cooked
	// line from the TTY (raising TTY IRQs per character).
	reader := k.C.Synthesize(nil, "reader", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(rbuf), m68k.D(1))
		e.MoveL(m68k.Imm(64), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		exitSeq(e)
	})
	sender := k.C.Synthesize(nil, "sender", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(4), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		emitOpen(e, nameAddr) // fd 1: /dev/tty
		e.MoveL(m68k.Imm(lbuf), m68k.D(1))
		e.MoveL(m68k.Imm(64), m68k.D(2))
		e.Trap(kernel.TrapRead + 1)
		e.MoveL(m68k.D(0), m68k.Abs(res+8))
		exitSeq(e)
	})
	tr := k.SpawnKernel("reader", reader)
	ts := k.SpawnKernel("sender", sender)
	if io.OpenSocket(tr, 9, 5) != 0 {
		t.Fatal("reader socket fd")
	}
	if io.OpenSocket(ts, 5, 9) != 0 {
		t.Fatal("sender socket fd")
	}
	run(t, k, tr, 50_000_000)

	if got := k.M.Peek(res, 4); got != 4 {
		t.Fatalf("socket recv = %d, want 4", got)
	}
	if got := k.M.Peek(res+8, 4); got != 4 {
		t.Fatalf("tty read = %d, want 4 (\"hi!\\n\")", got)
	}

	p := k.Prof
	if p == nil {
		t.Fatal("profiled boot did not attach a profiler")
	}
	tty := p.IRQ(m68k.IRQTTY)
	net := p.IRQ(m68k.IRQNet)
	if tty.Count == 0 {
		t.Error("no TTY interrupts recorded")
	}
	if net.Count == 0 {
		t.Error("no network interrupts recorded")
	}
	// An interrupt can be latched mid-instruction at the earliest, so
	// the maximum latency must be positive; and under this light load
	// nothing should sit pending for more than a handful of
	// instructions plus masked stretches — bound it generously.
	if tty.Max == 0 && tty.Count > 0 {
		t.Error("all TTY latencies zero: raise times are not being captured")
	}
	if tty.Max > 100_000 || net.Max > 100_000 {
		t.Errorf("implausible IRQ latency: tty max %d, net max %d cycles", tty.Max, net.Max)
	}
	// The handlers themselves must appear in the attribution under
	// their registered names.
	seen := map[string]bool{}
	for _, s := range p.Top(0) {
		seen[s.Name] = true
	}
	for _, want := range []string{"kio.tty_intr", "kio.net_intr"} {
		if !seen[want] {
			t.Errorf("region %q missing from attribution: %v", want, p.Top(0))
		}
	}
	if c := p.Coverage(); c < 0.95 {
		t.Errorf("coverage = %.3f, want >= 0.95", c)
	}

	// The per-socket routines are attributable by port name, and the
	// whole run exports as valid monotonic Chrome trace JSON.
	if !seen["kio.sock9.recv"] {
		t.Errorf("per-socket recv region missing: %v", p.Top(0))
	}
	var buf bytes.Buffer
	if err := p.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Ts float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace JSON: %v", err)
	}
	last := -1.0
	for _, ev := range out.TraceEvents {
		if ev.Ts < last {
			t.Fatalf("non-monotonic trace ts: %v after %v", ev.Ts, last)
		}
		last = ev.Ts
	}
}
