package kio_test

import (
	"strings"
	"testing"

	"synthesis/internal/kernel"
	"synthesis/internal/kio"
	"synthesis/internal/m68k"
	"synthesis/internal/synth"
)

func boot(t *testing.T) (*kernel.Kernel, *kio.IO) {
	t.Helper()
	k := kernel.Boot(kernel.Config{
		Machine: m68k.Config{MemSize: 1 << 20, TraceDepth: 256},
	})
	io := kio.Install(k)
	return k, io
}

func exitSeq(e *synth.Emitter) {
	e.MoveL(m68k.Imm(kernel.SysExit), m68k.D(0))
	e.Trap(kernel.TrapSys)
}

// pokeName writes a NUL-terminated string.
func pokeName(k *kernel.Kernel, addr uint32, s string) {
	for i := 0; i < len(s); i++ {
		k.M.Poke(addr+uint32(i), 1, uint32(s[i]))
	}
	k.M.Poke(addr+uint32(len(s)), 1, 0)
}

// emitOpen opens the name at nameAddr; fd lands in D0.
func emitOpen(e *synth.Emitter, nameAddr uint32) {
	e.MoveL(m68k.Imm(kernel.SysOpen), m68k.D(0))
	e.MoveL(m68k.Imm(int32(nameAddr)), m68k.D(1))
	e.Trap(kernel.TrapSys)
}

func run(t *testing.T, k *kernel.Kernel, first *kernel.Thread, budget uint64) {
	t.Helper()
	k.Start(first)
	if err := k.Run(budget); err != nil {
		t.Fatalf("run: %v\ntrace:\n%s", err, tail(k))
	}
}

func tail(k *kernel.Kernel) string {
	if k.M.Trace == nil {
		return "(no trace)"
	}
	s := k.M.Trace.String()
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) > 50 {
		lines = lines[len(lines)-50:]
	}
	return strings.Join(lines, "\n")
}

func TestOpenReadWriteNull(t *testing.T) {
	k, _ := boot(t)
	const nameAddr, res = 0x9100, 0x9000
	pokeName(k, nameAddr, "/dev/null")
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitOpen(e, nameAddr) // fd 0
		e.MoveL(m68k.D(0), m68k.Abs(res))
		// write 17 bytes -> returns 17
		e.MoveL(m68k.Imm(0x9200), m68k.D(1))
		e.MoveL(m68k.Imm(17), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		// read -> returns 0 (EOF)
		e.MoveL(m68k.Imm(0x9200), m68k.D(1))
		e.MoveL(m68k.Imm(17), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res+8))
		// close -> 0
		e.MoveL(m68k.Imm(kernel.SysClose), m68k.D(0))
		e.MoveL(m68k.Imm(0), m68k.D(1))
		e.Trap(kernel.TrapSys)
		e.MoveL(m68k.D(0), m68k.Abs(res+12))
		// read after close -> -1
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res+16))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 5_000_000)
	if got := k.M.Peek(res, 4); got != 0 {
		t.Errorf("open fd = %d, want 0", int32(got))
	}
	if got := k.M.Peek(res+4, 4); got != 17 {
		t.Errorf("null write = %d, want 17", got)
	}
	if got := k.M.Peek(res+8, 4); got != 0 {
		t.Errorf("null read = %d, want 0", got)
	}
	if got := k.M.Peek(res+12, 4); got != 0 {
		t.Errorf("close = %d, want 0", int32(got))
	}
	if got := int32(k.M.Peek(res+16, 4)); got != -1 {
		t.Errorf("read after close = %d, want -1", got)
	}
}

func TestOpenMissingFileFails(t *testing.T) {
	k, _ := boot(t)
	const nameAddr, res = 0x9100, 0x9000
	pokeName(k, nameAddr, "/no/such/file")
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitOpen(e, nameAddr)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 5_000_000)
	if got := int32(k.M.Peek(res, 4)); got != -1 {
		t.Errorf("open missing = %d, want -1", got)
	}
}

func TestFileReadWrite(t *testing.T) {
	k, _ := boot(t)
	if _, err := k.FS.CreateSized("/tmp/data", []byte("hello, synthesis"), 256); err != nil {
		t.Fatal(err)
	}
	const nameAddr, res, buf = 0x9100, 0x9000, 0x9300
	pokeName(k, nameAddr, "/tmp/data")
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitOpen(e, nameAddr) // fd 0
		// Read 5 bytes, then 100 (gets the remaining 11).
		e.MoveL(m68k.Imm(buf), m68k.D(1))
		e.MoveL(m68k.Imm(5), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		e.MoveL(m68k.Imm(buf+5), m68k.D(1))
		e.MoveL(m68k.Imm(100), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		// At EOF now: read -> 0.
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res+8))
		// Append via a second descriptor: open again (fd 1: fresh
		// position), write beyond the end by positioning with reads.
		emitOpen(e, nameAddr) // fd 1
		e.MoveL(m68k.Imm(0x9400), m68k.D(1))
		e.MoveL(m68k.Imm(16), m68k.D(2))
		e.Trap(kernel.TrapRead + 1)            // consume existing 16
		e.MoveL(m68k.Imm(nameAddr), m68k.D(1)) // write the name text
		e.MoveL(m68k.Imm(4), m68k.D(2))
		e.Trap(kernel.TrapWrite + 1)
		e.MoveL(m68k.D(0), m68k.Abs(res+12))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 10_000_000)
	if got := k.M.Peek(res, 4); got != 5 {
		t.Errorf("first read = %d, want 5", got)
	}
	if got := k.M.Peek(res+4, 4); got != 11 {
		t.Errorf("second read = %d, want 11", got)
	}
	if got := k.M.Peek(res+8, 4); got != 0 {
		t.Errorf("read at EOF = %d, want 0", got)
	}
	if got := string(k.M.PeekBytes(buf, 16)); got != "hello, synthesis" {
		t.Errorf("read back %q", got)
	}
	if got := k.M.Peek(res+12, 4); got != 4 {
		t.Errorf("append write = %d, want 4", got)
	}
	f := k.FS.Lookup("/tmp/data")
	if got := k.FS.CurrentSize(f); got != 20 {
		t.Errorf("file size after append = %d, want 20", got)
	}
	if got := string(k.M.PeekBytes(f.Data, 20)); got != "hello, synthesis/tmp" {
		t.Errorf("file contents %q", got)
	}
}

func TestPipeSameThread(t *testing.T) {
	k, _ := boot(t)
	const res, wbuf, rbuf = 0x9000, 0x9300, 0x9700
	k.M.PokeBytes(wbuf, []byte("abcdefgh"))
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(kernel.SysPipe), m68k.D(0))
		e.Trap(kernel.TrapSys) // rfd=0 in D0, wfd=1 in D1
		// Write 8 bytes into the pipe (fd 1).
		e.MoveL(m68k.Imm(wbuf), m68k.D(1))
		e.MoveL(m68k.Imm(8), m68k.D(2))
		e.Trap(kernel.TrapWrite + 1)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		// Read them back (fd 0).
		e.MoveL(m68k.Imm(rbuf), m68k.D(1))
		e.MoveL(m68k.Imm(8), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 5_000_000)
	if got := k.M.Peek(res, 4); got != 8 {
		t.Errorf("pipe write = %d, want 8", got)
	}
	if got := k.M.Peek(res+4, 4); got != 8 {
		t.Errorf("pipe read = %d, want 8", got)
	}
	if got := string(k.M.PeekBytes(rbuf, 8)); got != "abcdefgh" {
		t.Errorf("pipe data %q", got)
	}
}

func TestPipeWrapAroundManyChunks(t *testing.T) {
	k, io := boot(t)
	// A small pipe forces wraparound and blocking between two
	// threads moving a large payload.
	p := io.NewPipe(64)
	const total = 1000
	const srcBuf, dstBuf, res = 0x20000, 0x28000, 0x9000
	pattern := make([]byte, total)
	for i := range pattern {
		pattern[i] = byte(i*7 + 3)
	}
	k.M.PokeBytes(srcBuf, pattern)

	writer := k.C.Synthesize(nil, "writer", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(srcBuf), m68k.D(1))
		e.MoveL(m68k.Imm(total), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		exitSeq(e)
	})
	reader := k.C.Synthesize(nil, "reader", nil, func(e *synth.Emitter) {
		// Loop reads until `total` bytes arrived (reads may be
		// partial).
		e.MoveL(m68k.Imm(dstBuf), m68k.D(3)) // cursor
		e.MoveL(m68k.Imm(total), m68k.D(4))  // remaining
		e.Label("loop")
		e.MoveL(m68k.D(3), m68k.D(1))
		e.MoveL(m68k.D(4), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.AddL(m68k.D(0), m68k.D(3))
		e.SubL(m68k.D(0), m68k.D(4))
		e.Bne("loop")
		e.MoveL(m68k.Imm(1), m68k.Abs(res+4))
		exitSeq(e)
	})
	tw := k.SpawnKernel("writer", writer)
	tr := k.SpawnKernel("reader", reader)
	if io.OpenPipeEnd(tw, p, true) != 0 {
		t.Fatal("writer fd")
	}
	if io.OpenPipeEnd(tr, p, false) != 0 {
		t.Fatal("reader fd")
	}
	run(t, k, tw, 50_000_000)
	if got := k.M.Peek(res, 4); got != total {
		t.Errorf("writer moved %d bytes, want %d", got, total)
	}
	if k.M.Peek(res+4, 4) != 1 {
		t.Error("reader did not finish")
	}
	got := k.M.PeekBytes(dstBuf, total)
	for i := range pattern {
		if got[i] != pattern[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], pattern[i])
		}
	}
	if g := p.Q.Gauge(k.M); g == 0 {
		t.Error("pipe gauge never advanced (fine-grain scheduler would be blind)")
	}
}

func TestTTYCookedReadWithEraseAndKill(t *testing.T) {
	k, _ := boot(t)
	const nameAddr, res, buf = 0x9100, 0x9000, 0x9300
	pokeName(k, nameAddr, "/dev/tty")
	// "helX<erase>lo<kill>hi!\n" -> line should be "hi!\n"
	k.TTY.InputString("helX\x08lo\x15hi!\n", 1000, 2000)
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitOpen(e, nameAddr) // fd 0
		e.MoveL(m68k.Imm(buf), m68k.D(1))
		e.MoveL(m68k.Imm(64), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 20_000_000)
	n := k.M.Peek(res, 4)
	if n != 4 {
		t.Fatalf("cooked read = %d bytes, want 4", n)
	}
	if got := string(k.M.PeekBytes(buf, int(n))); got != "hi!\n" {
		t.Errorf("line %q, want \"hi!\\n\"", got)
	}
	// The interrupt handler echoed everything typed.
	if echoed := string(k.TTY.Output()); !strings.Contains(echoed, "hi!") {
		t.Errorf("echo output %q", echoed)
	}
}

func TestTTYWrite(t *testing.T) {
	k, _ := boot(t)
	const nameAddr, msg = 0x9100, 0x9300
	pokeName(k, nameAddr, "/dev/tty")
	k.M.PokeBytes(msg, []byte("out!"))
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitOpen(e, nameAddr)
		e.MoveL(m68k.Imm(msg), m68k.D(1))
		e.MoveL(m68k.Imm(4), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 5_000_000)
	if got := string(k.TTY.Output()); got != "out!" {
		t.Errorf("tty output %q", got)
	}
}

func TestRawTTYRead(t *testing.T) {
	k, _ := boot(t)
	const nameAddr, res, buf = 0x9100, 0x9000, 0x9300
	pokeName(k, nameAddr, "/dev/rawtty")
	k.TTY.InputString("\x08raw\x15", 1000, 2000) // control chars pass through raw
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitOpen(e, nameAddr)
		e.MoveL(m68k.Imm(buf), m68k.D(1))
		e.MoveL(m68k.Imm(5), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 20_000_000)
	n := k.M.Peek(res, 4)
	if n == 0 {
		t.Fatal("raw read got nothing")
	}
	got := string(k.M.PeekBytes(buf, int(n)))
	if !strings.HasPrefix("\x08raw\x15", got) {
		t.Errorf("raw read %q", got)
	}
}

func TestADBufferedQueue(t *testing.T) {
	k, io := boot(t)
	const nameAddr, res, buf = 0x9100, 0x9000, 0x9300
	pokeName(k, nameAddr, "/dev/ad")
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitOpen(e, nameAddr) // fd 0
		// Start the sampler.
		e.MoveL(m68k.Imm(1), m68k.Abs(m68k.ADBase+m68k.ADRegCtl))
		// Read two elements' worth (64 bytes = 16 samples); reads may
		// return one element at a time, so accumulate.
		e.MoveL(m68k.Imm(buf), m68k.D(3))
		e.MoveL(m68k.Imm(64), m68k.D(4))
		e.Label("more")
		e.MoveL(m68k.D(3), m68k.D(1))
		e.MoveL(m68k.D(4), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.AddL(m68k.D(0), m68k.D(3))
		e.SubL(m68k.D(0), m68k.D(4))
		e.Bne("more")
		e.MoveL(m68k.D(3), m68k.D(0))
		e.SubL(m68k.Imm(buf), m68k.D(0))
		e.MoveL(m68k.D(0), m68k.Abs(res))
		// Stop the sampler.
		e.MoveL(m68k.Imm(0), m68k.Abs(m68k.ADBase+m68k.ADRegCtl))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 100_000_000) // 16 samples at 44.1 kHz ~ 360 usec
	n := k.M.Peek(res, 4)
	if n != 64 {
		t.Fatalf("ad read = %d bytes, want 64", n)
	}
	// Samples are the device's deterministic ramp: ch0 increments by
	// one per sample.
	first := k.M.Peek(buf, 4) >> 16
	second := k.M.Peek(buf+4, 4) >> 16
	if second != first+1 {
		t.Errorf("samples not consecutive: %d then %d", first, second)
	}
	if io.ADQ().Completed(k.M) < 2 {
		t.Error("buffered queue completed fewer than 2 elements")
	}
	if k.AD.Dropped != 0 {
		t.Errorf("sampler dropped %d samples", k.AD.Dropped)
	}
}

func TestDiskFileDemandLoading(t *testing.T) {
	k, io := boot(t)
	// A ~2.5 KB file spanning three disk blocks.
	contents := make([]byte, 2500)
	for i := range contents {
		contents[i] = byte(i*31 + 7)
	}
	if _, err := io.StoreDiskFile("/disk/big", contents); err != nil {
		t.Fatal(err)
	}
	const nameAddr, res, buf = 0x9100, 0x9000, 0x30000
	pokeName(k, nameAddr, "/disk/big")
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		emitOpen(e, nameAddr) // fd 0
		// First read: faults all three blocks through the disk
		// interrupt path.
		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.Imm(buf), m68k.D(1))
		e.MoveL(m68k.Imm(2500), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		// Rewind and read again: cache hit, no disk traffic.
		e.MoveL(m68k.Imm(kernel.SysSeek), m68k.D(0))
		e.MoveL(m68k.Imm(0), m68k.D(1))
		e.MoveL(m68k.Imm(0), m68k.D(2))
		e.Trap(kernel.TrapSys)
		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.Imm(buf+4096), m68k.D(1))
		e.MoveL(m68k.Imm(2500), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.Kcall(kernel.SvcMark)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 100_000_000)
	if got := k.M.Peek(res, 4); got != 2500 {
		t.Fatalf("first read = %d, want 2500", got)
	}
	if got := k.M.Peek(res+4, 4); got != 2500 {
		t.Fatalf("second read = %d, want 2500", got)
	}
	for i := 0; i < 2500; i++ {
		if got := byte(k.M.Peek(buf+uint32(i), 1)); got != contents[i] {
			t.Fatalf("byte %d = %#x, want %#x", i, got, contents[i])
		}
		if got := byte(k.M.Peek(buf+4096+uint32(i), 1)); got != contents[i] {
			t.Fatalf("cached byte %d = %#x, want %#x", i, got, contents[i])
		}
	}
	d := k.MarkDeltasMicros()
	if len(d) != 2 {
		t.Fatalf("marks: %v", d)
	}
	// The faulting read includes three disk latencies (20000 cycles
	// each at 50 MHz default clock here = 400 usec each... the boot
	// config is the test default); the cached read must be much
	// cheaper.
	if d[0] < 3*d[1] {
		t.Errorf("fault read %.1f usec not much slower than cached read %.1f usec", d[0], d[1])
	}
	t.Logf("fault read %.1f usec (3 disk transfers), cached read %.1f usec", d[0], d[1])
}

func TestFDTableExhaustion(t *testing.T) {
	k, _ := boot(t)
	const nameAddr, res = 0x9100, 0x9000
	pokeName(k, nameAddr, "/dev/null")
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		// Open MaxFD times, then once more: the last must fail.
		e.MoveL(m68k.Imm(int32(kernel.MaxFD)), m68k.D(5))
		e.Label("loop")
		emitOpen(e, nameAddr)
		e.SubL(m68k.Imm(1), m68k.D(5))
		e.Bne("loop")
		emitOpen(e, nameAddr)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 50_000_000)
	if got := int32(k.M.Peek(res, 4)); got != -1 {
		t.Errorf("open past the fd table = %d, want -1", got)
	}
	if th.FDs[kernel.MaxFD-1].Kind == "" {
		t.Error("fd table not actually full")
	}
}

func TestCloseInvalidFD(t *testing.T) {
	k, _ := boot(t)
	const res = 0x9000
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(kernel.SysClose), m68k.D(0))
		e.MoveL(m68k.Imm(7), m68k.D(1)) // never opened
		e.Trap(kernel.TrapSys)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		e.MoveL(m68k.Imm(kernel.SysClose), m68k.D(0))
		e.MoveL(m68k.Imm(99), m68k.D(1)) // out of range
		e.Trap(kernel.TrapSys)
		e.MoveL(m68k.D(0), m68k.Abs(res+4))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 5_000_000)
	if got := int32(k.M.Peek(res, 4)); got != -1 {
		t.Errorf("close(7) = %d, want -1", got)
	}
	if got := int32(k.M.Peek(res+4, 4)); got != -1 {
		t.Errorf("close(99) = %d, want -1", got)
	}
}

func TestTTYQueueOverflowDropsInput(t *testing.T) {
	k, _ := boot(t)
	// Flood far beyond the 256-byte raw queue while nobody reads:
	// the interrupt handler must drop, not corrupt.
	long := make([]byte, 600)
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	k.TTY.InputString(string(long), 1000, 300)
	const nameAddr, res, buf = 0x9100, 0x9000, 0x9300
	pokeName(k, nameAddr, "/dev/rawtty")
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		// Spin long enough for all input to arrive (and overflow).
		e.MoveL(m68k.Imm(kernel.SysYield), m68k.D(0))
		e.Trap(kernel.TrapSys)
		e.MoveL(m68k.Imm(60000), m68k.D(3))
		e.Label("spin")
		e.Dbra(3, "spin")
		emitOpen(e, nameAddr)
		e.MoveL(m68k.Imm(buf), m68k.D(1))
		e.MoveL(m68k.Imm(600), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.MoveL(m68k.D(0), m68k.Abs(res))
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 300_000_000)
	n := k.M.Peek(res, 4)
	if n == 0 || n > 255 {
		t.Errorf("read %d bytes from a 256-byte queue under overflow", n)
	}
	// Whatever survived must be a prefix-consistent alphabet run.
	got := k.M.PeekBytes(buf, int(n))
	for i, c := range got {
		if c != byte('a'+i%26) {
			t.Fatalf("byte %d corrupted: %q", i, got[:i+1])
		}
	}
}

func TestLookupRoutineHonorsHashFold(t *testing.T) {
	// The VM lookup and the Go-side fs.Hash must agree: create files
	// whose names differ only in the LAST character (the first byte
	// compared backwards) and open each through the system call.
	k, _ := boot(t)
	names := []string{"/x/aaa", "/x/aab", "/x/aac", "/x/aad"}
	for i, n := range names {
		if _, err := k.FS.Create(n, []byte{byte('0' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	const base, res = 0x9100, 0x9000
	for i, n := range names {
		pokeName(k, base+uint32(i)*16, n)
	}
	prog := k.C.Synthesize(nil, "main", nil, func(e *synth.Emitter) {
		for i := range names {
			emitOpen(e, base+uint32(i)*16)
			e.MoveL(m68k.Imm(0x9300), m68k.D(1))
			e.MoveL(m68k.Imm(1), m68k.D(2))
			e.Trap(uint8(kernel.TrapRead + i))
			e.MoveB(m68k.Abs(0x9300), m68k.D(0))
			e.MoveL(m68k.D(0), m68k.Abs(res+uint32(i)*4))
		}
		exitSeq(e)
	})
	th := k.SpawnKernel("main", prog)
	run(t, k, th, 50_000_000)
	for i := range names {
		if got := k.M.Peek(res+uint32(i)*4, 4); got != uint32('0'+i) {
			t.Errorf("file %s read %c, want %c", names[i], got, '0'+i)
		}
	}
}

func TestKernelPumpThread(t *testing.T) {
	// Producer -> pipe A -> [kernel pump thread] -> pipe B ->
	// consumer: the pump "never executes user-level code, but runs
	// entirely within the kernel" moving the stream along.
	k, io := boot(t)
	pa := io.NewPipe(256)
	pb := io.NewPipe(256)
	io.SpawnPump("pumpAB", pa, pb, 64)

	const total = 3000
	const srcBuf, dstBuf, res = 0x20000, 0x28000, 0x9000
	pattern := make([]byte, total)
	for i := range pattern {
		pattern[i] = byte(i*5 + 1)
	}
	k.M.PokeBytes(srcBuf, pattern)

	producer := k.C.Synthesize(nil, "prod", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(srcBuf), m68k.D(1))
		e.MoveL(m68k.Imm(total), m68k.D(2))
		e.Trap(kernel.TrapWrite + 0)
		exitSeq(e)
	})
	consumer := k.C.Synthesize(nil, "cons", nil, func(e *synth.Emitter) {
		e.MoveL(m68k.Imm(dstBuf), m68k.D(3))
		e.MoveL(m68k.Imm(total), m68k.D(4))
		e.Label("loop")
		e.MoveL(m68k.D(3), m68k.D(1))
		e.MoveL(m68k.D(4), m68k.D(2))
		e.Trap(kernel.TrapRead + 0)
		e.AddL(m68k.D(0), m68k.D(3))
		e.SubL(m68k.D(0), m68k.D(4))
		e.Bne("loop")
		e.MoveL(m68k.Imm(1), m68k.Abs(res))
		exitSeq(e)
	})
	tp := k.SpawnKernel("prod", producer)
	tc := k.SpawnKernel("cons", consumer)
	if io.OpenPipeEnd(tp, pa, true) != 0 {
		t.Fatal("producer fd")
	}
	if io.OpenPipeEnd(tc, pb, false) != 0 {
		t.Fatal("consumer fd")
	}
	run(t, k, tp, 200_000_000)
	if k.M.Peek(res, 4) != 1 {
		t.Fatal("consumer did not finish")
	}
	got := k.M.PeekBytes(dstBuf, total)
	for i := range pattern {
		if got[i] != pattern[i] {
			t.Fatalf("byte %d = %#x, want %#x (pump corrupted the stream)", i, got[i], pattern[i])
		}
	}
}
